//===- bench/Programs.h - The paper's benchmark programs --------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MG sources of the four benchmark programs of §6, shared by the test
/// suite, the table benchmarks, and the examples:
///
///  - typereg:   type registration and comparison using structural
///               equivalence (as in the authors' Modula-3 runtime); many
///               short procedures with frequent calls.
///  - FieldList: command parsing for a UNIX shell — texts, word lists,
///               pipes, quoting.
///  - takl:      Gabriel's Takeuchi function on lists.
///  - destroy:   builds a complete tree of given branching factor and
///               depth, then repeatedly replaces a pseudo-randomly chosen
///               subtree at a fixed intermediate depth with a fresh one,
///               triggering frequent collections.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_BENCH_PROGRAMS_H
#define MGC_BENCH_PROGRAMS_H

namespace mgc {
namespace programs {

extern const char *TypeRegSource;
extern const char *FieldListSource;
extern const char *TaklSource;
extern const char *DestroySource;

/// Expected outputs (used by tests to pin semantics across every compiler
/// configuration).
extern const char *TypeRegExpected;
extern const char *FieldListExpected;
extern const char *TaklExpected;
extern const char *DestroyExpected;

struct NamedProgram {
  const char *Name;
  const char *Source;
  const char *Expected;
};

/// The four programs in the paper's order.
extern const NamedProgram All[4];

} // namespace programs
} // namespace mgc

#endif // MGC_BENCH_PROGRAMS_H
