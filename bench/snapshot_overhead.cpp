//===- bench/snapshot_overhead.cpp - Heap snapshot cost gate ---------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the two costs the snapshot subsystem may add and gates both on
/// the generational workloads:
///
///   - attribution maintenance: per-object site/age attribution is
///     header-borne (vm/Heap.h) and maintained by the collector's own
///     header copy, so the measured cost is the delta in total collection
///     time (VMStats::GcNanos) between a tracer with Attribution off and
///     on — structurally ~0, and the gate keeps it that way.  Gate: <= 2%
///     of collection time (min-of-N, interleaved).
///
///   - capture: a full heap snapshot taken at a full-collection gc-point
///     (the worst realistic moment: live-peak heap, full stacks) must cost
///     no more than one full-collection pause — the user can afford a
///     snapshot whenever they can afford a collection.  Gate: fastest
///     capture <= slowest full-collection pause, per workload.
///
/// Also records at-exit snapshot sizes (nodes, edges, live and encoded
/// bytes) for the four §6 benchmark programs, writes everything to
/// BENCH_snapshot.json, and exits 1 on any gate failure.
///
///   MGC_SNAP_RUNS=N   timing repetitions (default 5)
///   MGC_SNAP_DIR=DIR  also write each §6 at-exit snapshot to
///                     DIR/<name>.snap (for mgc-heapsnap analysis in
///                     tools/check.sh)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "Programs.h"

#include "gc/Snapshot.h"
#include "obs/HeapSnapshot.h"
#include "obs/Trace.h"
#include "support/Provenance.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

using namespace mgc;

namespace {

std::string bigDestroy(int Branch, int Depth, int Iters) {
  std::string S(programs::DestroySource);
  auto Replace = [&](const std::string &From, const std::string &To) {
    size_t Pos = S.find(From);
    if (Pos != std::string::npos)
      S.replace(Pos, From.size(), To);
  };
  Replace("Branch = 3", "Branch = " + std::to_string(Branch));
  Replace("Depth = 6", "Depth = " + std::to_string(Depth));
  Replace("Iters = 60", "Iters = " + std::to_string(Iters));
  return S;
}

struct Workload {
  const char *Name;
  std::string Source;
  size_t HeapBytes;
  size_t NurseryBytes;
};

std::vector<Workload> &workloads() {
  static std::vector<Workload> W = {
      {"destroy", bigDestroy(3, 6, 60), 48u << 10, 4u << 10},
      {"destroy-big", bigDestroy(3, 7, 200), 160u << 10, 8u << 10},
      {"typereg", std::string(programs::TypeRegSource), 32u << 10, 4u << 10},
  };
  return W;
}

uint64_t nowNs() {
  timespec T{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &T);
  return static_cast<uint64_t>(T.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(T.tv_nsec);
}

struct GenRun {
  uint64_t GcNanos = 0;        ///< Total collection time this run.
  uint64_t MinCaptureNs = 0;   ///< Fastest full-collection capture (0: none).
  uint64_t MaxFullPauseNs = 0; ///< Slowest full-collection pause.
  uint64_t Captures = 0;
  uint64_t SnapNodes = 0; ///< Nodes in the last captured snapshot.
};

/// One generational run with the tracer enabled.  With \p Attribution the
/// persistent side table is maintained; with \p Capture a snapshot is
/// taken (and timed) at every full-collection gc-point, reusing one
/// snapshot object so steady-state captures run out of grown buffers.
GenRun runGen(const vm::Program &Prog, const Workload &W, bool Attribution,
              bool Capture) {
  vm::VMOptions VO;
  VO.HeapBytes = W.HeapBytes;
  VO.StackWords = 1u << 20;
  VO.GenGc = true;
  VO.NurseryBytes = W.NurseryBytes;
  vm::VM M(Prog, VO);
  gc::installPreciseCollector(M, {});

  obs::TracerConfig TC;
  TC.Sites = &Prog.SiteTab;
  TC.GenGc = true;
  TC.Attribution = Attribution;
  obs::Tracer Tracer(std::move(TC));
  Tracer.enable(/*Stream=*/nullptr);
  M.Tracer = &Tracer;

  GenRun R;
  obs::HeapSnapshot Snap;
  uint64_t FullSeen = 0;
  if (Capture) {
    M.PostGcHook = [&](vm::VM &Inner) {
      uint64_t Full =
          Inner.Stats.Collections - Inner.Stats.MinorCollections;
      if (Full == FullSeen)
        return; // minor collection: capture only at full-collection points
      FullSeen = Full;
      std::string Err;
      uint64_t T0 = nowNs();
      if (!gc::captureHeapSnapshot(Inner, Snap, /*WalkStacks=*/true, Err)) {
        std::fprintf(stderr, "snapshot_overhead: capture failed: %s\n",
                     Err.c_str());
        std::exit(1);
      }
      uint64_t Ns = nowNs() - T0;
      if (!R.Captures || Ns < R.MinCaptureNs)
        R.MinCaptureNs = Ns;
      ++R.Captures;
      R.SnapNodes = Snap.Nodes.size();
    };
  }

  if (!M.run()) {
    std::fprintf(stderr, "snapshot_overhead: %s: run failed: %s\n", W.Name,
                 M.Error.c_str());
    std::exit(1);
  }
  R.GcNanos = M.Stats.GcNanos;
  R.MaxFullPauseNs = Tracer.pausePercentiles(2).Max;
  return R;
}

struct SizeRow {
  const char *Name;
  uint64_t Nodes = 0, Edges = 0, Roots = 0;
  uint64_t LiveBytes = 0, EncodedBytes = 0;
};

void ji(std::string &Out, const char *Key, uint64_t V, bool First = false) {
  if (!First)
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}

void jf(std::string &Out, const char *Key, double V, bool First = false) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%.3f", First ? "" : ",", Key, V);
  Out += Buf;
}

} // namespace

int main() {
  int Runs = 5;
  if (const char *E = std::getenv("MGC_SNAP_RUNS"))
    Runs = std::atoi(E);
  if (Runs < 1)
    Runs = 1;

  constexpr double AttrLimitPct = 2.0;

  std::vector<std::unique_ptr<vm::Program>> Progs;
  for (const Workload &W : workloads()) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    CO.WriteBarriers = true;
    Progs.push_back(bench::compileOrDie(W.Name, W.Source.c_str(), CO));
  }

  size_t NW = workloads().size();
  // Min-of-N collection time per (workload, attribution?); capture
  // statistics from the attribution+capture runs.
  std::vector<uint64_t> GcBase(NW, UINT64_MAX), GcAttr(NW, UINT64_MAX);
  std::vector<uint64_t> MinCap(NW, UINT64_MAX), MaxPause(NW, 0),
      Nodes(NW, 0);

  for (size_t I = 0; I != NW; ++I)
    runGen(*Progs[I], workloads()[I], false, false); // warmup
  auto Round = [&] {
    for (size_t I = 0; I != NW; ++I) {
      GenRun A = runGen(*Progs[I], workloads()[I], false, false);
      if (A.GcNanos < GcBase[I])
        GcBase[I] = A.GcNanos;
      GenRun B = runGen(*Progs[I], workloads()[I], true, false);
      if (B.GcNanos < GcAttr[I])
        GcAttr[I] = B.GcNanos;
      GenRun C = runGen(*Progs[I], workloads()[I], true, true);
      if (C.Captures && C.MinCaptureNs < MinCap[I])
        MinCap[I] = C.MinCaptureNs;
      if (C.MaxFullPauseNs > MaxPause[I])
        MaxPause[I] = C.MaxFullPauseNs;
      Nodes[I] = C.SnapNodes;
    }
  };
  for (int R = 0; R != Runs; ++R)
    Round();

  auto AttrPct = [&] {
    uint64_t Base = 0, Attr = 0;
    for (size_t I = 0; I != NW; ++I) {
      Base += GcBase[I];
      Attr += GcAttr[I];
    }
    return 100.0 * (static_cast<double>(Attr) - static_cast<double>(Base)) /
           static_cast<double>(Base);
  };
  auto CaptureOk = [&] {
    for (size_t I = 0; I != NW; ++I)
      if (MinCap[I] != UINT64_MAX && MinCap[I] > MaxPause[I])
        return false;
    return true;
  };
  // Minima only tighten: when a noisy round leaves a gate failing, buy
  // bounded extra rounds before concluding the cost is real.
  for (int Extra = 0;
       (AttrPct() > AttrLimitPct || !CaptureOk()) && Extra < 3 * Runs;
       ++Extra)
    Round();

  bool GatePass = AttrPct() <= AttrLimitPct && CaptureOk();

  // At-exit snapshot sizes on the §6 benchmark programs (two-space, -O2).
  std::vector<SizeRow> Sizes;
  for (const auto &P : programs::All) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    auto Prog = bench::compileOrDie(P.Name, P.Source, CO);
    vm::VMOptions VO;
    VO.HeapBytes = 4u << 20;
    VO.StackWords = 1u << 20;
    vm::VM M(*Prog, VO);
    gc::installPreciseCollector(M, {});
    obs::TracerConfig TC;
    TC.Sites = &Prog->SiteTab;
    TC.Attribution = true;
    obs::Tracer Tracer(std::move(TC));
    Tracer.enable(nullptr);
    M.Tracer = &Tracer;
    if (!M.run()) {
      std::fprintf(stderr, "snapshot_overhead: %s: run failed: %s\n", P.Name,
                   M.Error.c_str());
      return 1;
    }
    obs::HeapSnapshot Snap;
    std::string Err;
    if (!gc::captureHeapSnapshot(M, Snap, /*WalkStacks=*/true, Err) ||
        !gc::crosscheckSnapshot(M, Snap, /*WalkStacks=*/true, Err)) {
      std::fprintf(stderr, "snapshot_overhead: %s: %s\n", P.Name,
                   Err.c_str());
      return 1;
    }
    std::vector<uint8_t> Blob;
    obs::encodeSnapshot(Snap, Blob);
    if (const char *Dir = std::getenv("MGC_SNAP_DIR")) {
      std::string Path = std::string(Dir) + "/" + P.Name + ".snap";
      std::FILE *F = std::fopen(Path.c_str(), "wb");
      if (!F || std::fwrite(Blob.data(), 1, Blob.size(), F) != Blob.size()) {
        std::fprintf(stderr, "snapshot_overhead: cannot write %s\n",
                     Path.c_str());
        if (F)
          std::fclose(F);
        return 1;
      }
      std::fclose(F);
    }
    SizeRow Row;
    Row.Name = P.Name;
    Row.Nodes = Snap.Nodes.size();
    Row.Edges = Snap.Edges.size();
    Row.Roots = Snap.Roots.size();
    Row.LiveBytes = Snap.totalBytes();
    Row.EncodedBytes = Blob.size();
    Sizes.push_back(Row);
  }

  std::string Json = "{\"provenance\":";
  Json += support::provenanceJson();
  ji(Json, "runs", static_cast<uint64_t>(Runs));
  Json += ",\"workloads\":[";
  for (size_t I = 0; I != NW; ++I) {
    if (I)
      Json += ',';
    Json += "{\"name\":\"";
    Json += workloads()[I].Name;
    Json += '"';
    ji(Json, "gc_base_ns", GcBase[I]);
    ji(Json, "gc_attr_ns", GcAttr[I]);
    ji(Json, "capture_min_ns", MinCap[I] == UINT64_MAX ? 0 : MinCap[I]);
    ji(Json, "full_pause_max_ns", MaxPause[I]);
    ji(Json, "snap_nodes", Nodes[I]);
    Json += '}';
  }
  Json += "],\"sizes\":[";
  for (size_t I = 0; I != Sizes.size(); ++I) {
    if (I)
      Json += ',';
    Json += "{\"name\":\"";
    Json += Sizes[I].Name;
    Json += '"';
    ji(Json, "nodes", Sizes[I].Nodes);
    ji(Json, "edges", Sizes[I].Edges);
    ji(Json, "roots", Sizes[I].Roots);
    ji(Json, "live_bytes", Sizes[I].LiveBytes);
    ji(Json, "encoded_bytes", Sizes[I].EncodedBytes);
    Json += '}';
  }
  Json += "],\"gate\":{";
  jf(Json, "attr_limit_pct", AttrLimitPct, /*First=*/true);
  jf(Json, "attr_pct", AttrPct());
  Json += ",\"capture_within_pause\":";
  Json += CaptureOk() ? "true" : "false";
  Json += ",\"pass\":";
  Json += GatePass ? "true" : "false";
  Json += "}}\n";

  if (std::FILE *F = std::fopen("BENCH_snapshot.json", "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
  } else {
    std::fprintf(stderr,
                 "snapshot_overhead: cannot write BENCH_snapshot.json\n");
    return 1;
  }

  for (size_t I = 0; I != NW; ++I)
    std::printf("snapshot_overhead[%s]: gc %.3f ms -> %.3f ms with "
                "attribution; capture min %.1f us vs full pause max %.1f us "
                "(%llu nodes)\n",
                workloads()[I].Name, static_cast<double>(GcBase[I]) / 1e6,
                static_cast<double>(GcAttr[I]) / 1e6,
                MinCap[I] == UINT64_MAX
                    ? 0.0
                    : static_cast<double>(MinCap[I]) / 1e3,
                static_cast<double>(MaxPause[I]) / 1e3,
                static_cast<unsigned long long>(Nodes[I]));
  for (const SizeRow &S : Sizes)
    std::printf("snapshot_overhead[%s]: %llu nodes, %llu edges, %llu live "
                "bytes, %llu encoded bytes\n",
                S.Name, static_cast<unsigned long long>(S.Nodes),
                static_cast<unsigned long long>(S.Edges),
                static_cast<unsigned long long>(S.LiveBytes),
                static_cast<unsigned long long>(S.EncodedBytes));

  if (!GatePass) {
    std::fprintf(stderr,
                 "snapshot_overhead: FAIL: attribution %+.2f%% (limit "
                 "%.1f%%), capture within pause: %s\n",
                 AttrPct(), AttrLimitPct, CaptureOk() ? "yes" : "no");
    return 1;
  }
  std::printf("snapshot_overhead: ok (attribution %+.2f%% <= %.1f%%, "
              "capture within one full pause)\n",
              AttrPct(), AttrLimitPct);
  return 0;
}
