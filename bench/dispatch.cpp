//===- bench/dispatch.cpp - Dispatch-tier mutator throughput gate ----------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures mutator-only throughput (instructions/second, GC time
/// subtracted via VMStats::GcNanos) for the §6 benchmark programs under
/// both execution tiers — the reference switch interpreter and the
/// pre-decoded computed-goto tier — at -O2 under two-space collection.
///
/// Timing is min-of-N with the tiers interleaved, so a machine-wide
/// slowdown hits both equally.  Before any timing is trusted, the two
/// tiers must agree bit-identically on output, instruction count, and
/// collection count for every program; a mismatch is a correctness bug
/// and fails immediately.  Writes BENCH_dispatch.json and *fails*
/// (exit 1) when the geometric-mean speedup of threaded over switch
/// drops below the issue gate of 1.5x.  In a build without computed
/// goto the threaded tier silently executes as switch, so the gate is
/// vacuous and reported as skipped.
///
///   MGC_DISPATCH_RUNS=N   timing repetitions (default 5)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "Programs.h"
#include "support/Provenance.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

using namespace mgc;

namespace {

constexpr double GateSpeedup = 1.5;

struct RunResult {
  uint64_t WallNanos = 0;
  uint64_t GcNanos = 0;
  uint64_t Instrs = 0;
  uint64_t Collections = 0;
  std::string Out;
};

RunResult runOnce(const vm::Program &Prog, vm::DispatchTier Tier) {
  vm::VMOptions VO;
  VO.HeapBytes = 1u << 20;
  VO.StackWords = 1u << 20;
  VO.Dispatch = Tier;
  gc::CollectorOptions GCO;
  GCO.CrossCheck = false;
  vm::VM M(Prog, VO);
  gc::installPreciseCollector(M, GCO);

  // CPU time, not wall time: single-threaded and immune to scheduler
  // preemption, which matters for a ratio gate on a shared machine.
  timespec T0{}, T1{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &T0);
  bool Ok = M.run();
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &T1);
  if (!Ok) {
    std::fprintf(stderr, "dispatch: %s (%s): run failed: %s\n",
                 Prog.Name.c_str(), vm::dispatchTierName(Tier),
                 M.Error.c_str());
    std::exit(1);
  }
  RunResult R;
  R.WallNanos = static_cast<uint64_t>(
      (T1.tv_sec - T0.tv_sec) * 1000000000ll + (T1.tv_nsec - T0.tv_nsec));
  R.GcNanos = M.Stats.GcNanos;
  R.Instrs = M.Stats.Instrs;
  R.Collections = M.Stats.Collections;
  R.Out = M.Out;
  return R;
}

/// GC time subtracted; clamped at 1 ns (GcNanos is steady-clock while the
/// outer timer is CPU time, so a sliver of skew is possible).
uint64_t mutatorNanos(const RunResult &R) {
  return R.WallNanos > R.GcNanos ? R.WallNanos - R.GcNanos : 1;
}

void jf(std::string &Out, const char *Key, double V, bool First = false) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%.3f", First ? "" : ",", Key, V);
  Out += Buf;
}

void ji(std::string &Out, const char *Key, uint64_t V, bool First = false) {
  if (!First)
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}

} // namespace

int main() {
  int Runs = 5;
  if (const char *E = std::getenv("MGC_DISPATCH_RUNS"))
    Runs = std::atoi(E);
  if (Runs < 1)
    Runs = 1;

  const bool HaveGoto = MGC_COMPUTED_GOTO != 0;

  std::vector<std::unique_ptr<vm::Program>> Progs;
  for (const programs::NamedProgram &P : programs::All) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    Progs.push_back(bench::compileOrDie(P.Name, P.Source, CO));
  }
  const size_t NP = Progs.size();

  // Correctness first: the tiers must agree bit-identically before their
  // relative speed means anything.
  std::vector<RunResult> SwRef(NP);
  for (size_t I = 0; I != NP; ++I) {
    SwRef[I] = runOnce(*Progs[I], vm::DispatchTier::Switch);
    RunResult Th = runOnce(*Progs[I], vm::DispatchTier::Threaded);
    if (Th.Out != SwRef[I].Out || Th.Out != programs::All[I].Expected ||
        Th.Instrs != SwRef[I].Instrs ||
        Th.Collections != SwRef[I].Collections) {
      std::fprintf(stderr,
                   "dispatch: FAIL: tiers diverge on %s "
                   "(instrs %llu vs %llu, collections %llu vs %llu)\n",
                   programs::All[I].Name,
                   static_cast<unsigned long long>(SwRef[I].Instrs),
                   static_cast<unsigned long long>(Th.Instrs),
                   static_cast<unsigned long long>(SwRef[I].Collections),
                   static_cast<unsigned long long>(Th.Collections));
      return 1;
    }
  }

  // Min mutator time per (program, tier); interleaved rounds.
  std::vector<uint64_t> MinSw(NP, UINT64_MAX), MinTh(NP, UINT64_MAX);
  std::vector<uint64_t> GcSw(NP, 0), GcTh(NP, 0);
  auto Round = [&] {
    for (size_t I = 0; I != NP; ++I) {
      RunResult Sw = runOnce(*Progs[I], vm::DispatchTier::Switch);
      RunResult Th = runOnce(*Progs[I], vm::DispatchTier::Threaded);
      if (mutatorNanos(Sw) < MinSw[I]) {
        MinSw[I] = mutatorNanos(Sw);
        GcSw[I] = Sw.GcNanos;
      }
      if (mutatorNanos(Th) < MinTh[I]) {
        MinTh[I] = mutatorNanos(Th);
        GcTh[I] = Th.GcNanos;
      }
    }
  };
  for (int R = 0; R != Runs; ++R)
    Round();

  auto Geomean = [&] {
    double LogSum = 0;
    for (size_t I = 0; I != NP; ++I)
      LogSum += std::log(static_cast<double>(MinSw[I]) /
                         static_cast<double>(MinTh[I]));
    return std::exp(LogSum / static_cast<double>(NP));
  };
  // Minima only tighten with more samples: when a noisy round leaves the
  // ratio under the gate, buy more rounds (bounded) before concluding the
  // speedup is not there.
  if (HaveGoto)
    for (int Extra = 0; Geomean() < GateSpeedup && Extra < 3 * Runs; ++Extra)
      Round();
  double GM = Geomean();
  bool GatePass = !HaveGoto || GM >= GateSpeedup;

  std::string Json = "{\"provenance\":";
  Json += support::provenanceJson();
  ji(Json, "runs", static_cast<uint64_t>(Runs));
  Json += ",\"computed_goto\":";
  Json += HaveGoto ? "true" : "false";
  Json += ",\"programs\":[";
  for (size_t I = 0; I != NP; ++I) {
    double IpsSw = static_cast<double>(SwRef[I].Instrs) /
                   (static_cast<double>(MinSw[I]) / 1e9);
    double IpsTh = static_cast<double>(SwRef[I].Instrs) /
                   (static_cast<double>(MinTh[I]) / 1e9);
    if (I)
      Json += ',';
    Json += "{\"name\":\"";
    Json += programs::All[I].Name;
    Json += '"';
    ji(Json, "instrs", SwRef[I].Instrs);
    ji(Json, "collections", SwRef[I].Collections);
    ji(Json, "mutator_switch_ns", MinSw[I]);
    ji(Json, "mutator_threaded_ns", MinTh[I]);
    ji(Json, "gc_switch_ns", GcSw[I]);
    ji(Json, "gc_threaded_ns", GcTh[I]);
    jf(Json, "ips_switch", IpsSw);
    jf(Json, "ips_threaded", IpsTh);
    jf(Json, "speedup", static_cast<double>(MinSw[I]) /
                            static_cast<double>(MinTh[I]));
    Json += '}';
    std::printf("dispatch[%s]: %llu instrs, switch %.3f ms (%.1f Mips), "
                "threaded %.3f ms (%.1f Mips), speedup %.2fx\n",
                programs::All[I].Name,
                static_cast<unsigned long long>(SwRef[I].Instrs),
                static_cast<double>(MinSw[I]) / 1e6, IpsSw / 1e6,
                static_cast<double>(MinTh[I]) / 1e6, IpsTh / 1e6,
                static_cast<double>(MinSw[I]) /
                    static_cast<double>(MinTh[I]));
  }
  Json += "],\"gate\":{";
  jf(Json, "min_speedup", GateSpeedup, /*First=*/true);
  jf(Json, "geomean_speedup", GM);
  Json += ",\"skipped\":";
  Json += HaveGoto ? "false" : "true";
  Json += ",\"pass\":";
  Json += GatePass ? "true" : "false";
  Json += "}}\n";

  if (std::FILE *F = std::fopen("BENCH_dispatch.json", "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
  } else {
    std::fprintf(stderr, "dispatch: cannot write BENCH_dispatch.json\n");
    return 1;
  }

  if (!HaveGoto) {
    std::printf("dispatch: gate skipped (no computed goto; threaded tier "
                "executes as switch)\n");
    return 0;
  }
  if (!GatePass) {
    std::fprintf(stderr,
                 "dispatch: FAIL: geomean mutator speedup %.2fx < %.1fx\n",
                 GM, GateSpeedup);
    return 1;
  }
  std::printf("dispatch: ok (geomean mutator speedup %.2fx >= %.1fx)\n", GM,
              GateSpeedup);
  return 0;
}
