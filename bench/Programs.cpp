//===- bench/Programs.cpp -------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "Programs.h"

using namespace mgc;

//===----------------------------------------------------------------------===//
// typereg: structural-equivalence type registration
//===----------------------------------------------------------------------===//

const char *programs::TypeRegSource = R"MG(
MODULE TypeReg;
(* Type registration and comparison using structural equivalence, in the
   style of the Modula-3 runtime's type registry.  Lots of small
   procedures, frequent calls, heavy allocation of small records. *)

CONST KInt = 0; KBool = 1; KRef = 2; KArr = 3; KRec = 4;

TYPE Ty = REF TyRec;
     Field = REF FieldRec;
     TyRec = RECORD
       kind: INTEGER;
       lo, hi: INTEGER;
       elem: Ty;
       fields: Field
     END;
     FieldRec = RECORD fname: INTEGER; ftype: Ty; next: Field END;
     Reg = REF RegRec;
     RegRec = RECORD t: Ty; id: INTEGER; next: Reg END;
     Assum = REF AssumRec;
     AssumRec = RECORD a, b: Ty; next: Assum END;

VAR registry: Reg; nextId: INTEGER; hits, misses, compares: INTEGER;

PROCEDURE MkTy(kind: INTEGER): Ty;
VAR t: Ty;
BEGIN
  t := NEW(Ty);
  t^.kind := kind;
  t^.elem := NIL;
  t^.fields := NIL;
  RETURN t
END MkTy;

PROCEDURE MkInt(): Ty;
BEGIN
  RETURN MkTy(KInt)
END MkInt;

PROCEDURE MkBool(): Ty;
BEGIN
  RETURN MkTy(KBool)
END MkBool;

PROCEDURE MkRef(e: Ty): Ty;
VAR t: Ty;
BEGIN
  t := MkTy(KRef);
  t^.elem := e;
  RETURN t
END MkRef;

PROCEDURE MkArr(lo, hi: INTEGER; e: Ty): Ty;
VAR t: Ty;
BEGIN
  t := MkTy(KArr);
  t^.lo := lo;
  t^.hi := hi;
  t^.elem := e;
  RETURN t
END MkArr;

PROCEDURE MkRec(): Ty;
BEGIN
  RETURN MkTy(KRec)
END MkRec;

PROCEDURE AddField(r: Ty; name: INTEGER; ft: Ty);
VAR f, p: Field;
BEGIN
  f := NEW(Field);
  f^.fname := name;
  f^.ftype := ft;
  f^.next := NIL;
  IF r^.fields = NIL THEN
    r^.fields := f
  ELSE
    p := r^.fields;
    WHILE p^.next # NIL DO p := p^.next END;
    p^.next := f
  END
END AddField;

PROCEDURE Assumed(x, y: Ty; s: Assum): BOOLEAN;
BEGIN
  WHILE s # NIL DO
    IF (s^.a = x) AND (s^.b = y) THEN RETURN TRUE END;
    s := s^.next
  END;
  RETURN FALSE
END Assumed;

PROCEDURE Assume(x, y: Ty; s: Assum): Assum;
VAR n: Assum;
BEGIN
  n := NEW(Assum);
  n^.a := x;
  n^.b := y;
  n^.next := s;
  RETURN n
END Assume;

PROCEDURE FieldsEqual(f, g: Field; s: Assum): BOOLEAN;
BEGIN
  WHILE (f # NIL) AND (g # NIL) DO
    IF f^.fname # g^.fname THEN RETURN FALSE END;
    IF NOT EqualRec(f^.ftype, g^.ftype, s) THEN RETURN FALSE END;
    f := f^.next;
    g := g^.next
  END;
  RETURN (f = NIL) AND (g = NIL)
END FieldsEqual;

PROCEDURE EqualRec(a, b: Ty; s: Assum): BOOLEAN;
BEGIN
  INC(compares);
  IF a = b THEN RETURN TRUE END;
  IF (a = NIL) OR (b = NIL) THEN RETURN FALSE END;
  IF a^.kind # b^.kind THEN RETURN FALSE END;
  IF Assumed(a, b, s) THEN RETURN TRUE END;
  s := Assume(a, b, s);
  IF a^.kind = KRef THEN RETURN EqualRec(a^.elem, b^.elem, s) END;
  IF a^.kind = KArr THEN
    IF (a^.lo # b^.lo) OR (a^.hi # b^.hi) THEN RETURN FALSE END;
    RETURN EqualRec(a^.elem, b^.elem, s)
  END;
  IF a^.kind = KRec THEN RETURN FieldsEqual(a^.fields, b^.fields, s) END;
  RETURN TRUE
END EqualRec;

PROCEDURE Equal(a, b: Ty): BOOLEAN;
BEGIN
  RETURN EqualRec(a, b, NIL)
END Equal;

PROCEDURE Register(t: Ty): INTEGER;
VAR r: Reg;
BEGIN
  r := registry;
  WHILE r # NIL DO
    IF Equal(r^.t, t) THEN
      INC(hits);
      RETURN r^.id
    END;
    r := r^.next
  END;
  INC(misses);
  r := NEW(Reg);
  r^.t := t;
  r^.id := nextId;
  INC(nextId);
  r^.next := registry;
  registry := r;
  RETURN r^.id
END Register;

PROCEDURE BuildListTy(depth: INTEGER): Ty;
(* A recursive "list of arrays" type: the knot is tied through a REF. *)
VAR rec, arr: Ty;
BEGIN
  rec := MkRec();
  arr := MkArr(1, depth, MkInt());
  AddField(rec, 1, arr);
  AddField(rec, 2, MkRef(rec));
  RETURN MkRef(rec)
END BuildListTy;

PROCEDURE BuildNested(n: INTEGER): Ty;
VAR t: Ty; i: INTEGER;
BEGIN
  t := MkInt();
  FOR i := 1 TO n DO
    IF i MOD 3 = 0 THEN
      t := MkArr(0, i, t)
    ELSIF i MOD 3 = 1 THEN
      t := MkRef(t)
    ELSE
      t := MkArr(1, 4, t)
    END
  END;
  RETURN t
END BuildNested;

PROCEDURE BuildRecordTy(w: INTEGER): Ty;
VAR r: Ty; i: INTEGER;
BEGIN
  r := MkRec();
  FOR i := 1 TO w DO
    AddField(r, i, BuildNested(i))
  END;
  RETURN r
END BuildRecordTy;

PROCEDURE Round(n: INTEGER);
VAR i, id: INTEGER;
BEGIN
  FOR i := 1 TO n DO
    id := Register(BuildNested(i));
    id := Register(BuildListTy(i));
    id := Register(BuildRecordTy(i MOD 7 + 1))
  END
END Round;

BEGIN
  registry := NIL;
  nextId := 0;
  hits := 0;
  misses := 0;
  compares := 0;
  Round(12);
  Round(12);   (* second round: everything structurally known already *)
  Round(12);
  PutInt(nextId); PutChar(32);
  PutInt(hits); PutChar(32);
  PutInt(misses); PutLn();
END TypeReg.
)MG";

//===----------------------------------------------------------------------===//
// FieldList: command parsing for a UNIX shell
//===----------------------------------------------------------------------===//

const char *programs::FieldListSource = R"MG(
MODULE FieldList;
(* Splits command lines into pipelines of commands, each a list of words;
   supports single-quoted words.  Texts are heap arrays; every slice
   allocates. *)

TYPE Text = REF ARRAY OF INTEGER;
     Word = REF WordRec;
     WordRec = RECORD chars: Text; next: Word END;
     Cmd = REF CmdRec;
     CmdRec = RECORD words: Word; nwords: INTEGER; next: Cmd END;

CONST Blank = 32; Tab = 9; Pipe = 124; Quote = 39;

VAR totalCmds, totalWords, totalChars: INTEGER;

PROCEDURE IsBlank(c: INTEGER): BOOLEAN;
BEGIN
  RETURN (c = Blank) OR (c = Tab)
END IsBlank;

PROCEDURE SubText(t: Text; from, limit: INTEGER): Text;
VAR s: Text; i: INTEGER;
BEGIN
  s := NEW(Text, limit - from);
  FOR i := from TO limit - 1 DO
    s[i - from] := t[i]
  END;
  RETURN s
END SubText;

PROCEDURE SkipBlanks(t: Text; VAR pos: INTEGER);
BEGIN
  WHILE (pos < NUMBER(t)) AND IsBlank(t[pos]) DO INC(pos) END
END SkipBlanks;

PROCEDURE ScanWord(t: Text; VAR pos: INTEGER): Text;
VAR start: INTEGER;
BEGIN
  IF t[pos] = Quote THEN
    INC(pos);
    start := pos;
    WHILE (pos < NUMBER(t)) AND (t[pos] # Quote) DO INC(pos) END;
    IF pos < NUMBER(t) THEN
      INC(pos);
      RETURN SubText(t, start, pos - 1)
    END;
    RETURN SubText(t, start, pos)
  END;
  start := pos;
  WHILE (pos < NUMBER(t)) AND (NOT IsBlank(t[pos])) AND (t[pos] # Pipe) DO
    INC(pos)
  END;
  RETURN SubText(t, start, pos)
END ScanWord;

PROCEDURE ParseCommand(t: Text; VAR pos: INTEGER): Cmd;
VAR c: Cmd; w, last: Word;
BEGIN
  c := NEW(Cmd);
  c^.words := NIL;
  c^.nwords := 0;
  c^.next := NIL;
  last := NIL;
  LOOP
    SkipBlanks(t, pos);
    IF (pos >= NUMBER(t)) OR (t[pos] = Pipe) THEN EXIT END;
    w := NEW(Word);
    w^.chars := ScanWord(t, pos);
    w^.next := NIL;
    IF last = NIL THEN c^.words := w ELSE last^.next := w END;
    last := w;
    INC(c^.nwords)
  END;
  RETURN c
END ParseCommand;

PROCEDURE ParseLine(t: Text): Cmd;
VAR first, last, c: Cmd; pos: INTEGER;
BEGIN
  first := NIL;
  last := NIL;
  pos := 0;
  LOOP
    c := ParseCommand(t, pos);
    IF first = NIL THEN first := c ELSE last^.next := c END;
    last := c;
    IF (pos < NUMBER(t)) AND (t[pos] = Pipe) THEN
      INC(pos)
    ELSE
      EXIT
    END
  END;
  RETURN first
END ParseLine;

PROCEDURE CountChars(w: Word): INTEGER;
VAR n: INTEGER;
BEGIN
  n := 0;
  WHILE w # NIL DO
    n := n + NUMBER(w^.chars);
    w := w^.next
  END;
  RETURN n
END CountChars;

PROCEDURE Tally(line: Text);
VAR c: Cmd;
BEGIN
  c := ParseLine(line);
  WHILE c # NIL DO
    INC(totalCmds);
    totalWords := totalWords + c^.nwords;
    totalChars := totalChars + CountChars(c^.words);
    c := c^.next
  END
END Tally;

PROCEDURE Run();
VAR i: INTEGER;
BEGIN
  FOR i := 1 TO 40 DO
    Tally("ls -l /usr/local/bin");
    Tally("cat foo.txt | grep -v bar | wc -l");
    Tally("find . -name '*.m3' -print | xargs grep TYPECASE | sort -u");
    Tally("echo 'hello   world' | tr a-z A-Z");
    Tally("   spaced    out   command   ");
    Tally("make -j4 all 2>&1 | tee build.log | tail -20")
  END
END Run;

BEGIN
  totalCmds := 0;
  totalWords := 0;
  totalChars := 0;
  Run();
  PutInt(totalCmds); PutChar(32);
  PutInt(totalWords); PutChar(32);
  PutInt(totalChars); PutLn();
END FieldList.
)MG";

//===----------------------------------------------------------------------===//
// takl: Gabriel's Takeuchi function on lists
//===----------------------------------------------------------------------===//

const char *programs::TaklSource = R"MG(
MODULE Takl;
(* The Gabriel takl benchmark: the Takeuchi function computed on list
   lengths. *)

TYPE List = REF ListRec;
     ListRec = RECORD head: INTEGER; tail: List END;

PROCEDURE Listn(n: INTEGER): List;
VAR l: List;
BEGIN
  IF n = 0 THEN RETURN NIL END;
  l := NEW(List);
  l^.head := n;
  l^.tail := Listn(n - 1);
  RETURN l
END Listn;

PROCEDURE Shorterp(x, y: List): BOOLEAN;
BEGIN
  IF y = NIL THEN RETURN FALSE END;
  IF x = NIL THEN RETURN TRUE END;
  RETURN Shorterp(x^.tail, y^.tail)
END Shorterp;

PROCEDURE Mas(x, y, z: List): List;
BEGIN
  IF NOT Shorterp(y, x) THEN RETURN z END;
  RETURN Mas(Mas(x^.tail, y, z), Mas(y^.tail, z, x), Mas(z^.tail, x, y))
END Mas;

PROCEDURE Length(l: List): INTEGER;
VAR n: INTEGER;
BEGIN
  n := 0;
  WHILE l # NIL DO
    INC(n);
    l := l^.tail
  END;
  RETURN n
END Length;

VAR r: List;
BEGIN
  r := Mas(Listn(18), Listn(12), Listn(6));
  PutInt(Length(r)); PutLn();
END Takl.
)MG";

//===----------------------------------------------------------------------===//
// destroy: tree building and replacement
//===----------------------------------------------------------------------===//

const char *programs::DestroySource = R"MG(
MODULE Destroy;
(* Builds a complete tree of branching factor Branch and depth Depth, then
   repeatedly builds a new subtree at fixed intermediate depth ReplDepth
   and replaces a pseudo-randomly chosen subtree of the same height.
   Heavily recursive; triggers garbage collection frequently. *)

CONST Branch = 3; Depth = 6; ReplDepth = 2; Iters = 60;

TYPE Node = REF NodeRec;
     Kids = REF ARRAY OF Node;
     NodeRec = RECORD value: INTEGER; kids: Kids END;

VAR seed: INTEGER; root: Node; built: INTEGER;

PROCEDURE Rand(m: INTEGER): INTEGER;
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN seed MOD m
END Rand;

PROCEDURE MakeTree(d: INTEGER): Node;
VAR n: Node; i: INTEGER;
BEGIN
  n := NEW(Node);
  INC(built);
  n^.value := d;
  IF d > 0 THEN
    n^.kids := NEW(Kids, Branch);
    FOR i := 0 TO Branch - 1 DO
      n^.kids[i] := MakeTree(d - 1)
    END
  ELSE
    n^.kids := NIL
  END;
  RETURN n
END MakeTree;

PROCEDURE PickAt(n: Node; d: INTEGER): Node;
(* The parent of a random subtree rooted at depth d+1. *)
BEGIN
  WHILE d > 0 DO
    n := n^.kids[Rand(Branch)];
    DEC(d)
  END;
  RETURN n
END PickAt;

PROCEDURE CountNodes(n: Node): INTEGER;
VAR i, total: INTEGER;
BEGIN
  IF n = NIL THEN RETURN 0 END;
  total := 1;
  IF n^.kids # NIL THEN
    FOR i := 0 TO NUMBER(n^.kids) - 1 DO
      total := total + CountNodes(n^.kids[i])
    END
  END;
  RETURN total
END CountNodes;

PROCEDURE Replace();
VAR parent: Node; fresh: Node;
BEGIN
  (* A fresh subtree of the same height as those rooted at ReplDepth+1. *)
  fresh := MakeTree(Depth - ReplDepth - 1);
  parent := PickAt(root, ReplDepth);
  parent^.kids[Rand(Branch)] := fresh
END Replace;

PROCEDURE Run();
VAR i: INTEGER;
BEGIN
  root := MakeTree(Depth);
  FOR i := 1 TO Iters DO
    Replace()
  END
END Run;

BEGIN
  seed := 12345;
  built := 0;
  Run();
  PutInt(CountNodes(root)); PutChar(32);
  PutInt(built); PutLn();
END Destroy.
)MG";

//===----------------------------------------------------------------------===//
// Expected outputs
//===----------------------------------------------------------------------===//

// Reference outputs, cross-checked by the test suite across every
// compiler configuration.  destroy's node count is the complete ternary
// tree of depth 6: (3^7 - 1) / 2 = 1093.
const char *programs::TypeRegExpected = "31 77 31\n";
const char *programs::FieldListExpected = "520 1440 6320\n";
const char *programs::TaklExpected = "7\n";
const char *programs::DestroyExpected = "1093 3493\n";

const programs::NamedProgram programs::All[4] = {
    {"typereg", programs::TypeRegSource, programs::TypeRegExpected},
    {"FieldList", programs::FieldListSource, programs::FieldListExpected},
    {"takl", programs::TaklSource, programs::TaklExpected},
    {"destroy", programs::DestroySource, programs::DestroyExpected},
};
