//===- bench/trace_overhead.cpp - Observability overhead gate --------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the observability tracer costs the mutator on the gengc
/// workloads, in three configurations per collector mode:
///
///   none      no tracer attached (the shipping default),
///   disabled  tracer attached but not enabled (one extra branch per
///             allocation),
///   enabled   tracer enabled, recording site counters, survival pending
///             records, and collection events (no output stream).
///
/// Timing is min-of-N with the configurations interleaved, so a machine-
/// wide slowdown hits all three equally.  Writes BENCH_trace.json with the
/// wall times, the overhead percentages, and the pause p50/p95 per
/// collector mode from the enabled run's tracer, then *fails* (exit 1)
/// when the generational-mode aggregate overhead exceeds the issue gates:
/// 1% attached-disabled, 3% enabled.
///
///   MGC_TRACE_RUNS=N   timing repetitions (default 7)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "Programs.h"

#include "obs/Trace.h"
#include "support/Provenance.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

using namespace mgc;

namespace {

std::string bigDestroy(int Branch, int Depth, int Iters) {
  std::string S(programs::DestroySource);
  auto Replace = [&](const std::string &From, const std::string &To) {
    size_t Pos = S.find(From);
    if (Pos != std::string::npos)
      S.replace(Pos, From.size(), To);
  };
  Replace("Branch = 3", "Branch = " + std::to_string(Branch));
  Replace("Depth = 6", "Depth = " + std::to_string(Depth));
  Replace("Iters = 60", "Iters = " + std::to_string(Iters));
  return S;
}

struct Workload {
  const char *Name;
  std::string Source;
  size_t HeapBytes;
  size_t NurseryBytes;
};

std::vector<Workload> &workloads() {
  static std::vector<Workload> W = {
      {"destroy", bigDestroy(3, 6, 60), 48u << 10, 4u << 10},
      {"destroy-big", bigDestroy(3, 7, 200), 160u << 10, 8u << 10},
      {"typereg", std::string(programs::TypeRegSource), 32u << 10, 4u << 10},
  };
  return W;
}

enum class Config { None, Disabled, Enabled };

struct RunResult {
  uint64_t WallNanos = 0;
  obs::Tracer::Percentiles MinorPauses;
  obs::Tracer::Percentiles FullPauses;
};

/// One timed program run.  Compilation is outside the timed region; the
/// tracer (when attached) is constructed outside it too, as a real run
/// attaches once and runs for a long time.
RunResult runOnce(const vm::Program &Prog, const Workload &W, bool Gen,
                  Config C) {
  vm::VMOptions VO;
  VO.HeapBytes = W.HeapBytes;
  VO.StackWords = 1u << 20;
  VO.GenGc = Gen;
  VO.NurseryBytes = Gen ? W.NurseryBytes : 0;
  gc::CollectorOptions GCO;
  GCO.CrossCheck = false;

  vm::VM M(Prog, VO);
  gc::installPreciseCollector(M, GCO);

  std::unique_ptr<obs::Tracer> Tracer;
  if (C != Config::None) {
    obs::TracerConfig TC;
    TC.Sites = &Prog.SiteTab;
    TC.GenGc = Gen;
    TC.SiteTableBytes = Prog.Sizes.SiteTableBytes;
    Tracer = std::make_unique<obs::Tracer>(std::move(TC));
    if (C == Config::Enabled)
      Tracer->enable(/*Stream=*/nullptr);
    M.Tracer = Tracer.get();
  }

  // CPU time, not wall time: the run is single-threaded, and process CPU
  // time is immune to scheduler preemption — the overhead gates are tight
  // (1% / 3%) and wall-clock noise on a shared machine swamps them.
  timespec T0{}, T1{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &T0);
  bool Ok = M.run();
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &T1);
  if (!Ok) {
    std::fprintf(stderr, "trace_overhead: %s (%s): run failed: %s\n", W.Name,
                 Gen ? "gen" : "two-space", M.Error.c_str());
    std::exit(1);
  }

  RunResult R;
  R.WallNanos = static_cast<uint64_t>(
      (T1.tv_sec - T0.tv_sec) * 1000000000ll + (T1.tv_nsec - T0.tv_nsec));
  if (C == Config::Enabled) {
    R.MinorPauses = Tracer->pausePercentiles(1);
    R.FullPauses = Tracer->pausePercentiles(2);
  }
  return R;
}

void jf(std::string &Out, const char *Key, double V, bool First = false) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%.3f", First ? "" : ",", Key, V);
  Out += Buf;
}

void ji(std::string &Out, const char *Key, uint64_t V, bool First = false) {
  if (!First)
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}

} // namespace

int main() {
  int Runs = 7;
  if (const char *E = std::getenv("MGC_TRACE_RUNS"))
    Runs = std::atoi(E);
  if (Runs < 1)
    Runs = 1;

  constexpr double EnabledLimitPct = 3.0;
  constexpr double DisabledLimitPct = 1.0;

  // Compile each workload once per mode (barriers differ).
  struct Compiled {
    std::unique_ptr<vm::Program> TwoSpace, Gen;
  };
  std::vector<Compiled> Progs;
  for (const Workload &W : workloads()) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    Compiled C;
    CO.WriteBarriers = false;
    C.TwoSpace = bench::compileOrDie(W.Name, W.Source.c_str(), CO);
    CO.WriteBarriers = true;
    C.Gen = bench::compileOrDie(W.Name, W.Source.c_str(), CO);
    Progs.push_back(std::move(C));
  }

  std::string Json = "{\"provenance\":";
  Json += support::provenanceJson();
  ji(Json, "runs", static_cast<uint64_t>(Runs));
  Json += ",\"modes\":[";

  bool GatePass = true;
  double GenEnabledPct = 0, GenDisabledPct = 0;

  for (bool Gen : {true, false}) {
    size_t NW = workloads().size();
    // Min wall time per (workload, config).
    std::vector<std::vector<uint64_t>> Min(
        NW, std::vector<uint64_t>(3, UINT64_MAX));
    std::vector<RunResult> EnabledLast(NW);

    // Warmup pass, then interleaved timing.
    for (size_t I = 0; I != NW; ++I)
      runOnce(Gen ? *Progs[I].Gen : *Progs[I].TwoSpace, workloads()[I], Gen,
              Config::None);
    auto Round = [&] {
      for (size_t I = 0; I != NW; ++I)
        for (Config C : {Config::None, Config::Disabled, Config::Enabled}) {
          RunResult RR = runOnce(Gen ? *Progs[I].Gen : *Progs[I].TwoSpace,
                                 workloads()[I], Gen, C);
          uint64_t &M = Min[I][static_cast<size_t>(C)];
          if (RR.WallNanos < M)
            M = RR.WallNanos;
          if (C == Config::Enabled)
            EnabledLast[I] = RR;
        }
    };
    for (int R = 0; R != Runs; ++R)
      Round();

    uint64_t TotNone = 0, TotDis = 0, TotEn = 0;
    auto Totals = [&] {
      TotNone = TotDis = TotEn = 0;
      for (size_t I = 0; I != NW; ++I) {
        TotNone += Min[I][0];
        TotDis += Min[I][1];
        TotEn += Min[I][2];
      }
    };
    Totals();
    auto DisPctOf = [&] {
      return 100.0 * (static_cast<double>(TotDis) - TotNone) / TotNone;
    };
    auto EnPctOf = [&] {
      return 100.0 * (static_cast<double>(TotEn) - TotNone) / TotNone;
    };
    if (Gen) {
      // The gate compares minima, which only tighten with more samples, so
      // when a noisy round leaves the gated mode over a limit, buy more
      // rounds (bounded) before concluding the overhead is real.
      for (int Extra = 0;
           (DisPctOf() > DisabledLimitPct || EnPctOf() > EnabledLimitPct) &&
           Extra < 3 * Runs;
           ++Extra) {
        Round();
        Totals();
      }
      GenDisabledPct = DisPctOf();
      GenEnabledPct = EnPctOf();
      if (GenDisabledPct > DisabledLimitPct ||
          GenEnabledPct > EnabledLimitPct)
        GatePass = false;
    }
    double DisPct = DisPctOf(), EnPct = EnPctOf();

    // Pause percentiles per collector mode, pooled over the workloads'
    // final enabled runs.
    auto Pool = [&](bool Minor) {
      obs::Tracer::Percentiles P;
      // Report the worst (max) of the per-workload percentiles, which is
      // conservative and avoids misleadingly pooling unlike heaps.
      for (size_t I = 0; I != NW; ++I) {
        const obs::Tracer::Percentiles &Q =
            Minor ? EnabledLast[I].MinorPauses : EnabledLast[I].FullPauses;
        P.Count += Q.Count;
        if (Q.P50 > P.P50)
          P.P50 = Q.P50;
        if (Q.P95 > P.P95)
          P.P95 = Q.P95;
        if (Q.Max > P.Max)
          P.Max = Q.Max;
      }
      return P;
    };
    obs::Tracer::Percentiles MinorP = Pool(true), FullP = Pool(false);

    if (Gen)
      Json += "{";
    else
      Json += ",{";
    Json += "\"mode\":\"";
    Json += Gen ? "gen" : "two-space";
    Json += "\",\"workloads\":[";
    for (size_t I = 0; I != NW; ++I) {
      if (I)
        Json += ',';
      Json += "{\"name\":\"";
      Json += workloads()[I].Name;
      Json += '"';
      ji(Json, "wall_none_ns", Min[I][0]);
      ji(Json, "wall_disabled_ns", Min[I][1]);
      ji(Json, "wall_enabled_ns", Min[I][2]);
      Json += '}';
    }
    Json += ']';
    ji(Json, "total_none_ns", TotNone);
    ji(Json, "total_disabled_ns", TotDis);
    ji(Json, "total_enabled_ns", TotEn);
    jf(Json, "overhead_disabled_pct", DisPct);
    jf(Json, "overhead_enabled_pct", EnPct);
    ji(Json, "minor_pauses", MinorP.Count);
    ji(Json, "minor_pause_p50_ns", MinorP.P50);
    ji(Json, "minor_pause_p95_ns", MinorP.P95);
    ji(Json, "minor_pause_max_ns", MinorP.Max);
    ji(Json, "full_pauses", FullP.Count);
    ji(Json, "full_pause_p50_ns", FullP.P50);
    ji(Json, "full_pause_p95_ns", FullP.P95);
    ji(Json, "full_pause_max_ns", FullP.Max);
    Json += '}';

    std::printf("trace_overhead[%s]: none %.3f ms, disabled %.3f ms "
                "(%+.2f%%), enabled %.3f ms (%+.2f%%)\n",
                Gen ? "gen" : "two-space", static_cast<double>(TotNone) / 1e6,
                static_cast<double>(TotDis) / 1e6, DisPct,
                static_cast<double>(TotEn) / 1e6, EnPct);
    std::printf("  pauses (enabled): minor p50 %llu ns p95 %llu ns (%llu), "
                "full p50 %llu ns p95 %llu ns (%llu)\n",
                static_cast<unsigned long long>(MinorP.P50),
                static_cast<unsigned long long>(MinorP.P95),
                static_cast<unsigned long long>(MinorP.Count),
                static_cast<unsigned long long>(FullP.P50),
                static_cast<unsigned long long>(FullP.P95),
                static_cast<unsigned long long>(FullP.Count));
  }

  Json += "],\"gate\":{";
  jf(Json, "disabled_limit_pct", DisabledLimitPct, /*First=*/true);
  jf(Json, "enabled_limit_pct", EnabledLimitPct);
  jf(Json, "gen_disabled_pct", GenDisabledPct);
  jf(Json, "gen_enabled_pct", GenEnabledPct);
  Json += ",\"pass\":";
  Json += GatePass ? "true" : "false";
  Json += "}}\n";

  if (std::FILE *F = std::fopen("BENCH_trace.json", "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
  } else {
    std::fprintf(stderr, "trace_overhead: cannot write BENCH_trace.json\n");
    return 1;
  }

  if (!GatePass) {
    std::fprintf(stderr,
                 "trace_overhead: FAIL: generational-mode overhead "
                 "disabled %.2f%% (limit %.1f%%), enabled %.2f%% (limit "
                 "%.1f%%)\n",
                 GenDisabledPct, DisabledLimitPct, GenEnabledPct,
                 EnabledLimitPct);
    return 1;
  }
  std::printf("trace_overhead: ok (gen disabled %+.2f%% <= %.1f%%, enabled "
              "%+.2f%% <= %.1f%%)\n",
              GenDisabledPct, DisabledLimitPct, GenEnabledPct,
              EnabledLimitPct);
  return 0;
}
