//===- bench/prof.cpp - Sampling-profiler overhead + accuracy gate ---------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gates the sampling profiler (obs/Profile.h) on three properties:
///
///   overhead   mutator cost on the gengc workloads in three configurations
///              — none (no profiler), disabled (attached, Enabled=false:
///              one predicted-not-taken branch per hook site), enabled
///              (default 4096-instruction interval).  Gates: disabled <=1%,
///              enabled <=5% over none.
///   accuracy   a directed workload whose Work() procedure retires nearly
///              all instructions must receive >=90% of the sampled mutator
///              weight with Work as the leaf function, with zero walk
///              errors (every sampled stack verified against the gc-map
///              chain walk).
///   identity   the encoded profile *body* from the threaded and switch
///              dispatch tiers must be byte-identical (samples fire at
///              instruction ordinals, not wall clock).
///
/// Timing is min-of-N process-CPU-time with configurations interleaved, so
/// machine-wide slowdowns hit all cells equally.  Writes BENCH_prof.json
/// (with the shared provenance header) and exits 1 on any gate failure.
///
///   MGC_PROF_RUNS=N   timing repetitions (default 7)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "Programs.h"

#include "obs/Profile.h"
#include "support/Provenance.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

using namespace mgc;

namespace {

std::string bigDestroy(int Branch, int Depth, int Iters) {
  std::string S(programs::DestroySource);
  auto Replace = [&](const std::string &From, const std::string &To) {
    size_t Pos = S.find(From);
    if (Pos != std::string::npos)
      S.replace(Pos, From.size(), To);
  };
  Replace("Branch = 3", "Branch = " + std::to_string(Branch));
  Replace("Depth = 6", "Depth = " + std::to_string(Depth));
  Replace("Iters = 60", "Iters = " + std::to_string(Iters));
  return S;
}

/// Ground-truth program: Work() allocates and folds every loop iteration,
/// so practically all instructions (and all gc-points) retire inside it;
/// the main body only loops and accumulates.
const char *HotSource = R"(MODULE Hot;
TYPE
  Cell = REF CellRec;
  CellRec = RECORD v: INTEGER; next: Cell END;
VAR
  sink, r: INTEGER;

PROCEDURE Work(n: INTEGER): INTEGER;
VAR c: Cell; s, i: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO n DO
    c := NEW(Cell);
    c^.v := i;
    s := (s + c^.v + i * i) MOD 1000000007
  END;
  RETURN s
END Work;

BEGIN
  sink := 0;
  FOR r := 1 TO 300 DO
    sink := (sink + Work(400)) MOD 1000000007
  END;
  PutInt(sink); PutLn()
END Hot.
)";

struct Workload {
  const char *Name;
  std::string Source;
  size_t HeapBytes;
  size_t NurseryBytes;
};

std::vector<Workload> &workloads() {
  static std::vector<Workload> W = {
      {"destroy", bigDestroy(3, 6, 60), 48u << 10, 4u << 10},
      {"destroy-big", bigDestroy(3, 7, 200), 160u << 10, 8u << 10},
      {"typereg", std::string(programs::TypeRegSource), 32u << 10, 4u << 10},
  };
  return W;
}

enum class Config { None, Disabled, Enabled };

/// One timed run.  The profiler (when attached) is constructed outside the
/// timed region — a real run attaches once and runs for a long time.
uint64_t runOnce(const vm::Program &Prog, const Workload &W, Config C) {
  vm::VMOptions VO;
  VO.HeapBytes = W.HeapBytes;
  VO.StackWords = 1u << 20;
  VO.GenGc = true;
  VO.NurseryBytes = W.NurseryBytes;
  gc::CollectorOptions GCO;
  GCO.CrossCheck = false;

  vm::VM M(Prog, VO);
  gc::installPreciseCollector(M, GCO);

  std::unique_ptr<obs::Profiler> Prof;
  if (C != Config::None) {
    obs::ProfilerConfig PC;
    PC.Enabled = C == Config::Enabled;
    Prof = std::make_unique<obs::Profiler>(Prog, PC);
    M.Profiler = Prof.get();
  }

  // Process CPU time, not wall time: the gates are tight and wall-clock
  // noise on a shared machine swamps them (same policy as trace_overhead).
  timespec T0{}, T1{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &T0);
  bool Ok = M.run();
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &T1);
  if (!Ok) {
    std::fprintf(stderr, "prof: %s: run failed: %s\n", W.Name,
                 M.Error.c_str());
    std::exit(1);
  }
  return static_cast<uint64_t>((T1.tv_sec - T0.tv_sec) * 1000000000ll +
                               (T1.tv_nsec - T0.tv_nsec));
}

/// Runs the ground-truth program under \p Tier and returns the profile.
obs::Profile profiledRun(const vm::Program &Prog, vm::DispatchTier Tier,
                         uint64_t Interval) {
  vm::VMOptions VO;
  VO.HeapBytes = 64u << 10;
  VO.StackWords = 1u << 20;
  VO.Dispatch = Tier;
  gc::CollectorOptions GCO;
  vm::VM M(Prog, VO);
  gc::installPreciseCollector(M, GCO);
  obs::ProfilerConfig PC;
  PC.IntervalInstrs = Interval;
  obs::Profiler Prof(Prog, PC);
  M.Profiler = &Prof;
  bool Ok = M.run();
  if (!Ok) {
    std::fprintf(stderr, "prof: hot ground-truth run failed: %s\n",
                 M.Error.c_str());
    std::exit(1);
  }
  Prof.finish(Ok, M.Error, M.Stats.Instrs);
  return Prof.buildProfile();
}

/// Fraction of the sampled mutator weight whose leaf function is \p Func.
double leafWeightPct(const obs::Profile &P, const char *Func) {
  uint32_t Target = 0xFFFFFFFFu;
  for (uint32_t I = 0; I != P.FuncNames.size(); ++I)
    if (P.FuncNames[I] == Func)
      Target = I;
  uint64_t Hot = 0, Total = 0;
  for (const obs::Profile::MutRow &R : P.Mutator) {
    Total += R.Weight;
    const obs::Profile::Stack &S = P.Stacks[R.StackId];
    if (S.NumFrames && P.Frames[S.FirstFrame].Func == Target)
      Hot += R.Weight;
  }
  return Total ? 100.0 * static_cast<double>(Hot) /
                     static_cast<double>(Total)
               : 0.0;
}

void jf(std::string &Out, const char *Key, double V, bool First = false) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%.3f", First ? "" : ",", Key, V);
  Out += Buf;
}

void ji(std::string &Out, const char *Key, uint64_t V, bool First = false) {
  if (!First)
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}

} // namespace

int main() {
  int Runs = 7;
  if (const char *E = std::getenv("MGC_PROF_RUNS"))
    Runs = std::atoi(E);
  if (Runs < 1)
    Runs = 1;

  constexpr double DisabledLimitPct = 1.0;
  constexpr double EnabledLimitPct = 5.0;
  constexpr double HotLimitPct = 90.0;

  std::vector<std::unique_ptr<vm::Program>> Progs;
  for (const Workload &W : workloads()) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    CO.WriteBarriers = true;
    Progs.push_back(bench::compileOrDie(W.Name, W.Source.c_str(), CO));
  }

  //===--- 1. Overhead ------------------------------------------------------===
  const size_t NW = workloads().size();
  std::vector<std::vector<uint64_t>> Min(NW,
                                         std::vector<uint64_t>(3, UINT64_MAX));
  for (size_t I = 0; I != NW; ++I) // warmup
    runOnce(*Progs[I], workloads()[I], Config::None);
  auto Round = [&] {
    for (size_t I = 0; I != NW; ++I)
      for (Config C : {Config::None, Config::Disabled, Config::Enabled}) {
        uint64_t Ns = runOnce(*Progs[I], workloads()[I], C);
        uint64_t &M = Min[I][static_cast<size_t>(C)];
        if (Ns < M)
          M = Ns;
      }
  };
  for (int R = 0; R != Runs; ++R)
    Round();

  uint64_t TotNone = 0, TotDis = 0, TotEn = 0;
  auto Totals = [&] {
    TotNone = TotDis = TotEn = 0;
    for (size_t I = 0; I != NW; ++I) {
      TotNone += Min[I][0];
      TotDis += Min[I][1];
      TotEn += Min[I][2];
    }
  };
  Totals();
  auto DisPct = [&] {
    return 100.0 * (static_cast<double>(TotDis) - TotNone) / TotNone;
  };
  auto EnPct = [&] {
    return 100.0 * (static_cast<double>(TotEn) - TotNone) / TotNone;
  };
  // Minima only tighten with more samples: when a noisy round leaves a cell
  // over its limit, buy bounded extra rounds before calling it real.
  for (int Extra = 0;
       (DisPct() > DisabledLimitPct || EnPct() > EnabledLimitPct) &&
       Extra < 3 * Runs;
       ++Extra) {
    Round();
    Totals();
  }

  //===--- 2. Accuracy + cross-tier identity --------------------------------===
  driver::CompilerOptions HotCO;
  HotCO.OptLevel = 2;
  std::unique_ptr<vm::Program> Hot =
      bench::compileOrDie("hot", HotSource, HotCO);
  obs::Profile Threaded =
      profiledRun(*Hot, vm::DispatchTier::Threaded, /*Interval=*/512);
  obs::Profile Switch =
      profiledRun(*Hot, vm::DispatchTier::Switch, /*Interval=*/512);

  double HotPct = leafWeightPct(Threaded, "Work");
  std::vector<uint8_t> BodyA, BodyB;
  obs::encodeProfileBody(Threaded, BodyA);
  obs::encodeProfileBody(Switch, BodyB);
  bool TierIdentical = BodyA == BodyB;

  bool GatePass = DisPct() <= DisabledLimitPct && EnPct() <= EnabledLimitPct &&
                  HotPct >= HotLimitPct && TierIdentical &&
                  Threaded.WalkErrors == 0;

  //===--- Report -----------------------------------------------------------===
  std::string Json = "{\"provenance\":";
  Json += support::provenanceJson();
  ji(Json, "runs", static_cast<uint64_t>(Runs));
  Json += ",\"workloads\":[";
  for (size_t I = 0; I != NW; ++I) {
    if (I)
      Json += ',';
    Json += "{\"name\":\"";
    Json += workloads()[I].Name;
    Json += '"';
    ji(Json, "wall_none_ns", Min[I][0]);
    ji(Json, "wall_disabled_ns", Min[I][1]);
    ji(Json, "wall_enabled_ns", Min[I][2]);
    Json += '}';
  }
  Json += ']';
  ji(Json, "total_none_ns", TotNone);
  ji(Json, "total_disabled_ns", TotDis);
  ji(Json, "total_enabled_ns", TotEn);
  jf(Json, "overhead_disabled_pct", DisPct());
  jf(Json, "overhead_enabled_pct", EnPct());
  Json += ",\"ground_truth\":{";
  ji(Json, "samples", Threaded.Samples, /*First=*/true);
  ji(Json, "sample_weight", Threaded.SampleWeight);
  ji(Json, "total_instrs", Threaded.TotalInstrs);
  ji(Json, "walk_errors", Threaded.WalkErrors);
  ji(Json, "frames_sampled", Threaded.FramesSampled);
  jf(Json, "hot_leaf_pct", HotPct);
  Json += ",\"tier_identical\":";
  Json += TierIdentical ? "true" : "false";
  Json += "}";
  Json += ",\"gate\":{";
  jf(Json, "disabled_limit_pct", DisabledLimitPct, /*First=*/true);
  jf(Json, "enabled_limit_pct", EnabledLimitPct);
  jf(Json, "hot_limit_pct", HotLimitPct);
  Json += ",\"pass\":";
  Json += GatePass ? "true" : "false";
  Json += "}}\n";

  if (std::FILE *F = std::fopen("BENCH_prof.json", "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
  } else {
    std::fprintf(stderr, "prof: cannot write BENCH_prof.json\n");
    return 1;
  }

  std::printf("prof: none %.3f ms, disabled %.3f ms (%+.2f%%), enabled "
              "%.3f ms (%+.2f%%)\n",
              static_cast<double>(TotNone) / 1e6,
              static_cast<double>(TotDis) / 1e6, DisPct(),
              static_cast<double>(TotEn) / 1e6, EnPct());
  std::printf("prof: ground truth %llu samples, hot-leaf %.1f%% (>=%.0f%%), "
              "walk errors %llu, tiers %s\n",
              static_cast<unsigned long long>(Threaded.Samples), HotPct,
              HotLimitPct,
              static_cast<unsigned long long>(Threaded.WalkErrors),
              TierIdentical ? "byte-identical" : "DIVERGED");

  if (!GatePass) {
    std::fprintf(stderr,
                 "prof: FAIL: disabled %+.2f%% (limit %.1f%%), enabled "
                 "%+.2f%% (limit %.1f%%), hot-leaf %.1f%% (floor %.0f%%), "
                 "walk errors %llu, tier identity %s\n",
                 DisPct(), DisabledLimitPct, EnPct(), EnabledLimitPct, HotPct,
                 HotLimitPct,
                 static_cast<unsigned long long>(Threaded.WalkErrors),
                 TierIdentical ? "ok" : "FAILED");
    return 1;
  }
  std::printf("prof: ok\n");
  return 0;
}
