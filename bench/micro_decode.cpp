//===- bench/micro_decode.cpp - Table decode microbenchmarks ---------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark harness for the decode-time side of §5.1/§6.3: the
/// byte-packing codec, gc-point lookup, and full gc-point decoding
/// (including the identical-to-previous chain walk) on the real tables of
/// the destroy and typereg benchmarks.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "Programs.h"

#include "gcmaps/MapIndex.h"
#include "support/Provenance.h"

#include <benchmark/benchmark.h>

using namespace mgc;

namespace {

//===----------------------------------------------------------------------===//
// Byte packing codec
//===----------------------------------------------------------------------===//

void BM_PackWord(benchmark::State &State) {
  std::vector<uint8_t> Out;
  int32_t V = static_cast<int32_t>(State.range(0));
  for (auto _ : State) {
    Out.clear();
    appendPacked(Out, V);
    benchmark::DoNotOptimize(Out.data());
  }
}
BENCHMARK(BM_PackWord)->Arg(5)->Arg(300)->Arg(100000)->Arg(-100000);

void BM_UnpackWord(benchmark::State &State) {
  std::vector<uint8_t> Bytes;
  appendPacked(Bytes, static_cast<int32_t>(State.range(0)));
  for (auto _ : State) {
    size_t Pos = 0;
    int32_t V = readPacked(Bytes.data(), Bytes.size(), Pos);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_UnpackWord)->Arg(5)->Arg(300)->Arg(100000)->Arg(-100000);

//===----------------------------------------------------------------------===//
// GC-point lookup and decode on real program tables
//===----------------------------------------------------------------------===//

struct ProgramFixture {
  std::unique_ptr<vm::Program> Prog;
  /// Function with the most gc-points, and its busiest ordinals.
  const gcmaps::EncodedFuncMaps *Busiest = nullptr;
  const gcmaps::FuncMapIndex *BusiestIndex = nullptr;
  unsigned BusiestFunc = 0;

  explicit ProgramFixture(const char *Source) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    Prog = bench::compileOrDie("micro", Source, CO);
    size_t Best = 0;
    for (unsigned F = 0; F != Prog->Maps.size(); ++F)
      if (Prog->Maps[F].RetPCs.size() > Best) {
        Best = Prog->Maps[F].RetPCs.size();
        Busiest = &Prog->Maps[F];
        BusiestIndex = &Prog->MapIndexes[F];
        BusiestFunc = F;
      }
  }
};

ProgramFixture &destroyFixture() {
  static ProgramFixture F(programs::DestroySource);
  return F;
}

ProgramFixture &typeregFixture() {
  static ProgramFixture F(programs::TypeRegSource);
  return F;
}

void BM_FindGcPoint(benchmark::State &State) {
  ProgramFixture &F = destroyFixture();
  const auto &Maps = *F.Busiest;
  uint32_t Target = Maps.RetPCs[Maps.RetPCs.size() / 2];
  for (auto _ : State) {
    int Ord = gcmaps::findGcPoint(Maps, Target);
    benchmark::DoNotOptimize(Ord);
  }
}
BENCHMARK(BM_FindGcPoint);

/// Decoding the first gc-point (no chain to walk) vs the last (the full
/// identical-to-previous chain): the cost the paper trades against table
/// size in §5.1.
void BM_DecodeGcPoint(benchmark::State &State) {
  ProgramFixture &F = State.range(1) ? typeregFixture() : destroyFixture();
  const auto &Maps = *F.Busiest;
  unsigned Ordinal =
      State.range(0) == 0
          ? 0
          : static_cast<unsigned>(Maps.RetPCs.size()) - 1;
  for (auto _ : State) {
    gcmaps::GcPointInfo Info = gcmaps::decodeGcPoint(Maps, Ordinal);
    benchmark::DoNotOptimize(Info.RegMask);
  }
  State.SetLabel(State.range(1) ? "typereg" : "destroy");
}
BENCHMARK(BM_DecodeGcPoint)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});

/// The same decode through the load-time side index: the chain walk and
/// ground-table re-expansion disappear; only the point's own payloads are
/// read.
void BM_DecodeGcPointIndexed(benchmark::State &State) {
  ProgramFixture &F = State.range(1) ? typeregFixture() : destroyFixture();
  const auto &Maps = *F.Busiest;
  const auto &Index = *F.BusiestIndex;
  unsigned Ordinal =
      State.range(0) == 0
          ? 0
          : static_cast<unsigned>(Maps.RetPCs.size()) - 1;
  gcmaps::GcPointInfo Info; // Reused: capacity persists across decodes.
  for (auto _ : State) {
    gcmaps::decodeGcPointIndexed(Maps, Index, Ordinal, Info);
    benchmark::DoNotOptimize(Info.RegMask);
  }
  State.SetLabel(State.range(1) ? "typereg" : "destroy");
}
BENCHMARK(BM_DecodeGcPointIndexed)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});

/// The collector's steady-state path: the decoded-point cache hit, which
/// returns a const reference without touching the blob at all.
void BM_DecodeGcPointCached(benchmark::State &State) {
  ProgramFixture &F = State.range(1) ? typeregFixture() : destroyFixture();
  const auto &Maps = *F.Busiest;
  const auto &Index = *F.BusiestIndex;
  unsigned Ordinal =
      State.range(0) == 0
          ? 0
          : static_cast<unsigned>(Maps.RetPCs.size()) - 1;
  gcmaps::DecodedPointCache Cache;
  gcmaps::decodeGcPointIndexed(Maps, Index, Ordinal,
                               Cache.insert(F.BusiestFunc, Ordinal));
  for (auto _ : State) {
    const gcmaps::GcPointInfo *Info = Cache.lookup(F.BusiestFunc, Ordinal);
    benchmark::DoNotOptimize(Info);
  }
  State.SetLabel(State.range(1) ? "typereg" : "destroy");
}
BENCHMARK(BM_DecodeGcPointCached)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});

/// Decoding every gc-point of every function: the per-collection table
/// work for a whole program, amortized.
void BM_DecodeAllPoints(benchmark::State &State) {
  ProgramFixture &F = destroyFixture();
  for (auto _ : State) {
    size_t Total = 0;
    for (const auto &Maps : F.Prog->Maps)
      for (unsigned K = 0; K != Maps.RetPCs.size(); ++K) {
        gcmaps::GcPointInfo Info = gcmaps::decodeGcPoint(Maps, K);
        Total += Info.LiveSlots.size();
      }
    benchmark::DoNotOptimize(Total);
  }
}
BENCHMARK(BM_DecodeAllPoints);

/// Every gc-point of every function through the index (scratch reused):
/// the O(points²) chain replay of the reference decoder becomes O(points).
void BM_DecodeAllPointsIndexed(benchmark::State &State) {
  ProgramFixture &F = destroyFixture();
  gcmaps::GcPointInfo Info;
  for (auto _ : State) {
    size_t Total = 0;
    for (size_t FI = 0; FI != F.Prog->Maps.size(); ++FI) {
      const auto &Maps = F.Prog->Maps[FI];
      const auto &Index = F.Prog->MapIndexes[FI];
      for (unsigned K = 0; K != Maps.RetPCs.size(); ++K) {
        gcmaps::decodeGcPointIndexed(Maps, Index, K, Info);
        Total += Info.LiveSlots.size();
      }
    }
    benchmark::DoNotOptimize(Total);
  }
}
BENCHMARK(BM_DecodeAllPointsIndexed);

/// What programs pay for the acceleration: index construction itself.
void BM_BuildMapIndex(benchmark::State &State) {
  ProgramFixture &F = destroyFixture();
  for (auto _ : State) {
    size_t Points = 0;
    for (const auto &Maps : F.Prog->Maps) {
      gcmaps::FuncMapIndex Index = gcmaps::buildFuncMapIndex(Maps);
      Points += Index.Points.size();
    }
    benchmark::DoNotOptimize(Points);
  }
}
BENCHMARK(BM_BuildMapIndex);

//===----------------------------------------------------------------------===//
// Whole-collection cost (precise, table-driven)
//===----------------------------------------------------------------------===//

void BM_FullCollection(benchmark::State &State) {
  ProgramFixture &F = destroyFixture();
  // Run destroy once to a mid-execution heap, then measure explicit
  // collections on the final state.  Arg 0 selects the decoder: 0 = the
  // reference walk-from-start decoder, 1 = index + decoded-point cache.
  gc::CollectorOptions GCO;
  GCO.UseMapIndex = State.range(0) != 0;
  vm::VMOptions VO;
  VO.HeapBytes = 1u << 20;
  VO.StackWords = 1u << 20;
  vm::VM M(*F.Prog, VO);
  gc::installPreciseCollector(M, GCO);
  if (!M.run()) {
    State.SkipWithError(M.Error.c_str());
    return;
  }
  for (auto _ : State) {
    M.collectNow();
    benchmark::DoNotOptimize(M.Stats.Collections);
  }
  State.SetLabel(GCO.UseMapIndex ? "indexed" : "reference");
}
BENCHMARK(BM_FullCollection)->Arg(0)->Arg(1);

} // namespace

int main(int argc, char **argv) {
  benchmark::AddCustomContext("tool_version", mgc::support::ToolVersion);
  benchmark::AddCustomContext("build_flags", mgc::support::buildFlags());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
