//===- bench/table1_stats.cpp - Regenerates Table 1 ------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1 of the paper: per-benchmark statistics — program size in bytes,
/// number of gc-points with non-empty tables (NGC), total pointer homes
/// (NPTRS), and the number of delta / register / derivations tables emitted
/// (NDEL / NREG / NDER) — for typereg, FieldList, takl and destroy, each
/// unoptimized and optimized ("-opt").
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "Programs.h"

using namespace mgc;
using namespace mgc::bench;

int main() {
  std::printf("Table 1: statistics of each of the benchmark programs\n");
  std::printf("(cf. Diwan/Moss/Hudson PLDI'92, Table 1; Size is the "
              "serialized VM code image)\n\n");
  std::printf("%-15s %8s %6s %7s %6s %6s %6s\n", "Program", "Size", "NGC",
              "NPTRS", "NDEL", "NREG", "NDER");
  printRule();

  for (const auto &P : programs::All) {
    for (int Opt : {0, 2}) {
      driver::CompilerOptions CO;
      CO.OptLevel = Opt;
      auto Prog = compileOrDie(P.Name, P.Source, CO);
      std::string Name = std::string(P.Name) + (Opt ? "-opt" : "");
      const auto &S = Prog->Stats;
      std::printf("%-15s %8zu %6u %7u %6u %6u %6u\n", Name.c_str(),
                  Prog->codeSizeBytes(), S.NGC, S.NPTRS, S.NDEL, S.NREG,
                  S.NDER);
    }
  }
  printRule();
  std::printf("NGC:   gc-points with at least one non-empty table\n"
              "NPTRS: distinct pointer homes (ground entries + pointer "
              "registers)\n"
              "NDEL/NREG/NDER: delta / register / derivations tables "
              "emitted under the\n"
              "       operational encoding (empty and identical-to-previous "
              "tables are not\n"
              "       emitted, as in the paper's descriptor scheme)\n");
  return 0;
}
