//===- bench/fig2_disambiguation.cpp - Fig. 2 / §4: ambiguous derivations --===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper offers two solutions to ambiguous derivations (§4, Fig. 2):
/// path variables (extra assignments, chosen by the authors) and path
/// splitting (duplicated loops, more code).  This harness compiles the
/// canonical ambiguous-derivation program under both strategies and
/// reports their overheads: path-variable assignments executed vs code
/// growth, table sizes, and that both run correctly under forced
/// collections.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace mgc;
using namespace mgc::bench;

namespace {
const char *AmbigSource = R"MG(
MODULE Ambig;
(* The paper's §4 example shape: a loop-invariant conditional selects
   which array a loop reads; after hoisting and cross-jumping one derived
   value has two possible derivations. *)
TYPE Arr = REF ARRAY [1..64] OF INTEGER;
VAR a, b: Arr; r: INTEGER;

PROCEDURE Use(x: INTEGER): INTEGER;
VAR junk: Arr;
BEGIN
  junk := NEW(Arr);     (* a real allocation: every call is a gc-point *)
  RETURN x
END Use;

PROCEDURE Work(inv: BOOLEAN; p, q: Arr): INTEGER;
VAR i, s, v: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 64 DO
    IF inv THEN v := p[i] ELSE v := q[i] END;
    s := s + Use(v)
  END;
  RETURN s
END Work;

BEGIN
  a := NEW(Arr);
  b := NEW(Arr);
  FOR i := 1 TO 64 DO
    a[i] := i;
    b[i] := 1000 + i
  END;
  r := Work(TRUE, a, b) + Work(FALSE, a, b);
  PutInt(r); PutLn();
END Ambig.
)MG";
} // namespace

int main() {
  std::printf("Figure 2 / Section 4: ambiguous derivations — path "
              "variables vs path splitting\n\n");
  std::printf("%-18s %10s %12s %12s %10s %10s %8s\n", "strategy",
              "code B", "pathvars", "pathassign", "tables B", "colls",
              "output");
  printRule(88);

  for (int Mode = 0; Mode != 2; ++Mode) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    CO.Mode = Mode ? driver::Disambiguation::PathSplitting
                   : driver::Disambiguation::PathVariables;
    auto Prog = compileOrDie("Ambig", AmbigSource, CO);

    vm::VMOptions VO;
    VO.HeapBytes = 24u << 10; // Forces collections through Use's churn.
    vm::VM M(*Prog, VO);
    gc::installPreciseCollector(M);
    if (!M.run()) {
      std::fprintf(stderr, "run failed: %s\n", M.Error.c_str());
      return 1;
    }
    std::string Out = M.Out;
    if (!Out.empty() && Out.back() == '\n')
      Out.pop_back();
    std::printf("%-18s %10zu %12u %12u %10zu %10llu %8s\n",
                Mode ? "path-splitting" : "path-variables",
                Prog->codeSizeBytes(), Prog->PathVars, Prog->PathAssigns,
                Prog->Sizes.DeltaPP,
                static_cast<unsigned long long>(M.Stats.Collections),
                Out.c_str());
  }
  printRule(88);
  std::printf("\n(The paper chose path variables: ambiguous derivations "
              "are rare, so the run-time\ncost of the extra assignments is "
              "insignificant, while splitting duplicates code.)\n");
  return 0;
}
