//===- bench/pause.cpp - Bounded-pause benchmark gate ----------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures stop-the-world pause times (p50/p99/max) and the minimum
/// mutator utilization (MMU) curve for the §6 benchmark programs plus a
/// high-thread-count spin mix, at --gc-threads 1, 2, and 4.  Pauses are
/// the tracer's per-event TotalNanos (rendezvous + collector span);
/// pause *intervals* for the MMU computation are reconstructed from the
/// VM's PostGcHook, which fires at the end of every pause.
///
/// Correctness gates (always enforced, exit 1 on failure):
///  - an explicit --gc-threads 1 run is bit-identical to the default
///    (option-free) collector on every deterministic GC observable,
///    including the decode-cache counters;
///  - N=2 and N=4 reproduce N=1's output, instruction count, collection
///    count, roots, frames, objects/bytes copied, and derived
///    adjustments (per-worker decode caches legitimately shift the
///    cache hit/miss split, so those two counters are excluded at N>1);
///  - an N=4 run under --gc-crosscheck and one under the switch dispatch
///    tier agree as well.
///
/// Speedup gate: --gc-threads 4 must cut the max pause by >= 1.5x vs
/// --gc-threads 1 on the large-live-set §6 workloads (typereg, destroy).
/// Parallel speedup needs parallel hardware: on hosts with fewer than 4
/// cores the gate is recorded but skipped (same convention as
/// bench/dispatch's no-computed-goto skip).  Writes BENCH_pause.json.
///
///   MGC_PAUSE_RUNS=N   timing repetitions (default 3)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "Programs.h"

#include "obs/Trace.h"
#include "support/Provenance.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace mgc;

namespace {

constexpr double GatePauseRatio = 1.5;

/// The high-thread-count mix: Main churns a small self-looped list (only
/// the head survives, so collections are frequent and cheap) while six
/// Spin threads run allocation-free loops whose compiler-inserted polls
/// are each rendezvous' gc-points.
const char *SpinMixSource = R"(
MODULE SpinMix;
TYPE R = REF RECORD v: INTEGER; n: R END;
VAR done: BOOLEAN; head: R;

PROCEDURE Spin();
VAR i: INTEGER;
BEGIN
  i := 0;
  WHILE NOT done DO INC(i) END
END Spin;

BEGIN
  done := FALSE;
  FOR k := 1 TO 30000 DO
    head := NEW(R);
    head^.v := k;
    head^.n := head
  END;
  done := TRUE;
  PutInt(head^.v); PutLn();
END SpinMix.)";
constexpr unsigned SpinMixThreads = 6;

struct Workload {
  std::string Name;
  std::unique_ptr<vm::Program> Prog;
  size_t HeapBytes = 1u << 20;
  unsigned SpawnFunc = 0;  ///< Function each extra thread runs (spin mix).
  unsigned SpawnCount = 0; ///< Extra threads to spawn.
  bool LargeLive = false;  ///< Subject to the max-pause speedup gate.
};

/// The deterministic GC observables one run produces.  CacheHits/Misses
/// are compared only where the collector guarantees them (N=1 vs default).
struct Observables {
  std::string Out;
  uint64_t Instrs = 0, Collections = 0, RootsTraced = 0, FramesTraced = 0,
           ObjectsCopied = 0, BytesCopied = 0, DerivedAdjusted = 0,
           RendezvousSteps = 0, CacheHits = 0, CacheMisses = 0;
  bool coreEq(const Observables &O) const {
    return Out == O.Out && Instrs == O.Instrs &&
           Collections == O.Collections && RootsTraced == O.RootsTraced &&
           FramesTraced == O.FramesTraced &&
           ObjectsCopied == O.ObjectsCopied &&
           BytesCopied == O.BytesCopied &&
           DerivedAdjusted == O.DerivedAdjusted &&
           RendezvousSteps == O.RendezvousSteps;
  }
};

struct PauseInterval {
  uint64_t Start, End; ///< Nanos since the run's T0.
};

struct PauseRun {
  Observables Obs;
  std::vector<uint64_t> Pauses; ///< TotalNanos per collection.
  std::vector<PauseInterval> Intervals;
  uint64_t RunSpanNanos = 0;
};

PauseRun runOnce(const Workload &W, unsigned GcThreads, bool CrossCheck,
                 vm::DispatchTier Tier, bool UseDefaultOptions = false) {
  using Clock = std::chrono::steady_clock;
  vm::VMOptions VO;
  VO.HeapBytes = W.HeapBytes;
  VO.StackWords = 1u << 20;
  VO.Dispatch = Tier;
  gc::CollectorOptions GCO;
  if (!UseDefaultOptions) {
    GCO.Threads = GcThreads;
    GCO.CrossCheck = CrossCheck;
  }
  vm::VM M(*W.Prog, VO);
  gc::installPreciseCollector(M, GCO);
  for (unsigned I = 0; I != W.SpawnCount; ++I)
    M.spawnThread(W.SpawnFunc);

  obs::TracerConfig TC;
  TC.ProgramName = W.Name;
  obs::Tracer Tr(TC);
  Tr.enable(nullptr);
  M.Tracer = &Tr;

  PauseRun R;
  Clock::time_point T0;
  M.PostGcHook = [&](vm::VM &) {
    const obs::GcEvent *Ev = Tr.lastCommitted();
    if (!Ev)
      return;
    uint64_t End = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             T0)
            .count());
    uint64_t Start = End > Ev->TotalNanos ? End - Ev->TotalNanos : 0;
    R.Pauses.push_back(Ev->TotalNanos);
    R.Intervals.push_back({Start, End});
  };

  T0 = Clock::now();
  bool Ok = M.run();
  R.RunSpanNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - T0)
          .count());
  if (!Ok) {
    std::fprintf(stderr, "pause: %s (gc-threads %u): run failed: %s\n",
                 W.Name.c_str(), GcThreads, M.Error.c_str());
    std::exit(1);
  }
  R.Obs.Out = M.Out;
  R.Obs.Instrs = M.Stats.Instrs;
  R.Obs.Collections = M.Stats.Collections;
  R.Obs.RootsTraced = M.Stats.RootsTraced;
  R.Obs.FramesTraced = M.Stats.FramesTraced;
  R.Obs.ObjectsCopied = M.Stats.ObjectsCopied;
  R.Obs.BytesCopied = M.Stats.BytesCopied;
  R.Obs.DerivedAdjusted = M.Stats.DerivedAdjusted;
  R.Obs.RendezvousSteps = M.Stats.RendezvousSteps;
  R.Obs.CacheHits = M.Stats.DecodeCacheHits;
  R.Obs.CacheMisses = M.Stats.DecodeCacheMisses;
  return R;
}

uint64_t percentile(std::vector<uint64_t> V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t I =
      static_cast<size_t>(P * static_cast<double>(V.size() - 1) + 0.5);
  return V[std::min(I, V.size() - 1)];
}

/// Minimum mutator utilization over every window of \p WindowNs within the
/// run: 1 - (pause time inside the worst window) / window.  The minimum is
/// attained by a window anchored at a pause boundary, so O(P^2) over the
/// boundary anchors is exact.
double mmuAt(const std::vector<PauseInterval> &Pauses, uint64_t SpanNs,
             uint64_t WindowNs) {
  if (WindowNs == 0 || WindowNs > SpanNs)
    return 1.0;
  auto BusyIn = [&](uint64_t Lo, uint64_t Hi) {
    uint64_t Busy = 0;
    for (const PauseInterval &P : Pauses) {
      uint64_t S = std::max(P.Start, Lo), E = std::min(P.End, Hi);
      if (S < E)
        Busy += E - S;
    }
    return Busy;
  };
  double Mmu = 1.0;
  auto Consider = [&](uint64_t Anchor) {
    if (Anchor + WindowNs > SpanNs)
      Anchor = SpanNs - WindowNs;
    uint64_t Busy = BusyIn(Anchor, Anchor + WindowNs);
    double U = 1.0 - static_cast<double>(Busy) / static_cast<double>(WindowNs);
    if (U < Mmu)
      Mmu = U;
  };
  Consider(0);
  for (const PauseInterval &P : Pauses) {
    Consider(P.Start);
    Consider(P.End >= WindowNs ? P.End - WindowNs : 0);
  }
  return Mmu < 0 ? 0 : Mmu;
}

void jf(std::string &Out, const char *Key, double V, bool First = false) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%.4f", First ? "" : ",", Key, V);
  Out += Buf;
}

void ji(std::string &Out, const char *Key, uint64_t V, bool First = false) {
  if (!First)
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}

} // namespace

int main() {
  int Runs = 3;
  if (const char *E = std::getenv("MGC_PAUSE_RUNS"))
    Runs = std::atoi(E);
  if (Runs < 1)
    Runs = 1;

  const unsigned Cores = std::max(1u, std::thread::hardware_concurrency());
  const bool GateEnforced = Cores >= 4;
  const unsigned NLevels[] = {1, 2, 4};
  const uint64_t MmuWindows[] = {1'000'000, 5'000'000, 20'000'000};

  std::vector<Workload> Work;
  for (const programs::NamedProgram &P : programs::All) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    Workload W;
    W.Name = P.Name;
    W.Prog = bench::compileOrDie(P.Name, P.Source, CO);
    // Heaps sized well below bench/dispatch's 1 MiB so every workload
    // actually collects mid-run — this is a pause benchmark, and a run
    // with zero collections has no pauses to measure.
    // takl's whole live set is ~36 list cells, so it never collects at
    // any legal heap size; it still exercises the identity gates.
    W.HeapBytes = 64u << 10;
    W.LargeLive = W.Name == "typereg" || W.Name == "destroy";
    Work.push_back(std::move(W));
  }
  {
    // The spin mix needs loop polls: each poll is the gc-point the §5.3
    // per-thread handshakes step the spinners to.
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    CO.ThreadedPolls = true;
    Workload W;
    W.Name = "spinmix";
    W.Prog = bench::compileOrDie("spinmix", SpinMixSource, CO);
    W.HeapBytes = 64u << 10;
    W.SpawnCount = SpinMixThreads;
    for (unsigned I = 0; I != W.Prog->Funcs.size(); ++I)
      if (W.Prog->Funcs[I].Name == "Spin")
        W.SpawnFunc = I;
    Work.push_back(std::move(W));
  }

  // --- Correctness gates (before any timing is trusted) -------------------
  std::vector<Observables> Base(Work.size());
  for (size_t I = 0; I != Work.size(); ++I) {
    const Workload &W = Work[I];
    // Default options vs explicit --gc-threads 1: every observable,
    // including the decode-cache counters, must be bit-identical — N=1 is
    // the pre-parallel collector.
    PauseRun Def = runOnce(W, 1, false, vm::DispatchTier::Threaded,
                           /*UseDefaultOptions=*/true);
    PauseRun N1 = runOnce(W, 1, false, vm::DispatchTier::Threaded);
    if (!N1.Obs.coreEq(Def.Obs) || N1.Obs.CacheHits != Def.Obs.CacheHits ||
        N1.Obs.CacheMisses != Def.Obs.CacheMisses) {
      std::fprintf(stderr,
                   "pause: FAIL: --gc-threads 1 diverges from the default "
                   "collector on %s\n",
                   W.Name.c_str());
      return 1;
    }
    Base[I] = N1.Obs;
    // N=2/4 determinism (cache split excluded), N=4 with the decode
    // cross-check on, and N=4 under the switch tier.
    for (unsigned N : {2u, 4u}) {
      PauseRun R = runOnce(W, N, false, vm::DispatchTier::Threaded);
      if (!R.Obs.coreEq(Base[I])) {
        std::fprintf(stderr,
                     "pause: FAIL: --gc-threads %u diverges on %s "
                     "(collections %llu vs %llu, bytes %llu vs %llu)\n",
                     N, W.Name.c_str(),
                     static_cast<unsigned long long>(Base[I].Collections),
                     static_cast<unsigned long long>(R.Obs.Collections),
                     static_cast<unsigned long long>(Base[I].BytesCopied),
                     static_cast<unsigned long long>(R.Obs.BytesCopied));
        return 1;
      }
    }
    PauseRun XC = runOnce(W, 4, true, vm::DispatchTier::Threaded);
    PauseRun Sw = runOnce(W, 4, false, vm::DispatchTier::Switch);
    if (!XC.Obs.coreEq(Base[I]) || !Sw.Obs.coreEq(Base[I])) {
      std::fprintf(stderr,
                   "pause: FAIL: crosscheck/switch-tier run diverges on %s\n",
                   W.Name.c_str());
      return 1;
    }
  }

  // --- Timing: best (min) pause profile per (workload, N) over interleaved
  // rounds; MMU from the same best round.
  struct Cell {
    uint64_t P50 = 0, P99 = 0, Max = UINT64_MAX;
    double Mmu[3] = {0, 0, 0};
    uint64_t Collections = 0;
  };
  std::vector<std::vector<Cell>> Cells(Work.size(),
                                       std::vector<Cell>(3));
  auto Round = [&] {
    for (size_t I = 0; I != Work.size(); ++I)
      for (size_t L = 0; L != 3; ++L) {
        PauseRun R =
            runOnce(Work[I], NLevels[L], false, vm::DispatchTier::Threaded);
        Cell &C = Cells[I][L];
        uint64_t Max = percentile(R.Pauses, 1.0);
        if (Max < C.Max) {
          C.Max = Max;
          C.P50 = percentile(R.Pauses, 0.50);
          C.P99 = percentile(R.Pauses, 0.99);
          C.Collections = R.Pauses.size();
          for (size_t M = 0; M != 3; ++M)
            C.Mmu[M] = mmuAt(R.Intervals, R.RunSpanNanos, MmuWindows[M]);
        }
      }
  };
  for (int R = 0; R != Runs; ++R)
    Round();

  // The gate ratio: best max pause at N=1 over best at N=4, geomean-free
  // (each large-live workload must individually clear it).
  auto GatePass = [&] {
    for (size_t I = 0; I != Work.size(); ++I) {
      if (!Work[I].LargeLive)
        continue;
      double Ratio = static_cast<double>(Cells[I][0].Max) /
                     static_cast<double>(std::max<uint64_t>(Cells[I][2].Max,
                                                            1));
      if (Ratio < GatePauseRatio)
        return false;
    }
    return true;
  };
  // Minima only tighten: buy extra rounds (bounded) before concluding the
  // speedup is not there.
  if (GateEnforced)
    for (int Extra = 0; !GatePass() && Extra < 3 * Runs; ++Extra)
      Round();
  bool Pass = !GateEnforced || GatePass();

  // --- Report -------------------------------------------------------------
  std::string Json = "{\"provenance\":";
  Json += support::provenanceJson();
  ji(Json, "runs", static_cast<uint64_t>(Runs));
  ji(Json, "hardware_concurrency", Cores);
  Json += ",\"workloads\":[";
  for (size_t I = 0; I != Work.size(); ++I) {
    if (I)
      Json += ',';
    Json += "{\"name\":\"" + Work[I].Name + "\",\"levels\":[";
    for (size_t L = 0; L != 3; ++L) {
      const Cell &C = Cells[I][L];
      if (L)
        Json += ',';
      Json += '{';
      ji(Json, "gc_threads", NLevels[L], /*First=*/true);
      ji(Json, "collections", C.Collections);
      ji(Json, "pause_p50_ns", C.P50);
      ji(Json, "pause_p99_ns", C.P99);
      ji(Json, "pause_max_ns", C.Max);
      jf(Json, "mmu_1ms", C.Mmu[0]);
      jf(Json, "mmu_5ms", C.Mmu[1]);
      jf(Json, "mmu_20ms", C.Mmu[2]);
      Json += '}';
      std::printf("pause[%s] gc-threads %u: %llu collections, p50 %.1f us, "
                  "p99 %.1f us, max %.1f us, MMU(5ms) %.3f\n",
                  Work[I].Name.c_str(), NLevels[L],
                  static_cast<unsigned long long>(C.Collections),
                  static_cast<double>(C.P50) / 1e3,
                  static_cast<double>(C.P99) / 1e3,
                  static_cast<double>(C.Max) / 1e3, C.Mmu[1]);
    }
    Json += "]}";
  }
  Json += "],\"gate\":{";
  jf(Json, "min_pause_ratio", GatePauseRatio, /*First=*/true);
  Json += ",\"ratios\":{";
  bool FirstR = true;
  for (size_t I = 0; I != Work.size(); ++I) {
    if (!Work[I].LargeLive)
      continue;
    double Ratio = static_cast<double>(Cells[I][0].Max) /
                   static_cast<double>(std::max<uint64_t>(Cells[I][2].Max,
                                                          1));
    jf(Json, Work[I].Name.c_str(), Ratio, FirstR);
    FirstR = false;
    std::printf("pause[%s]: max-pause ratio N1/N4 = %.2fx\n",
                Work[I].Name.c_str(), Ratio);
  }
  Json += "},\"skipped\":";
  Json += GateEnforced ? "false" : "true";
  Json += ",\"pass\":";
  Json += Pass ? "true" : "false";
  Json += "}}\n";

  if (std::FILE *F = std::fopen("BENCH_pause.json", "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
  } else {
    std::fprintf(stderr, "pause: cannot write BENCH_pause.json\n");
    return 1;
  }

  if (!GateEnforced) {
    std::printf("pause: speedup gate skipped (%u hardware threads < 4; "
                "identity/crosscheck gates enforced)\n",
                Cores);
    return 0;
  }
  if (!Pass) {
    std::fprintf(stderr,
                 "pause: FAIL: --gc-threads 4 max pause not >= %.1fx better "
                 "than --gc-threads 1 on a large-live-set workload\n",
                 GatePauseRatio);
    return 1;
  }
  std::printf("pause: ok (max-pause ratios >= %.1fx on large-live-set "
              "workloads)\n",
              GatePauseRatio);
  return 0;
}
