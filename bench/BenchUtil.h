//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef MGC_BENCH_BENCHUTIL_H
#define MGC_BENCH_BENCHUTIL_H

#include "driver/Compiler.h"
#include "gc/Collector.h"
#include "vm/VM.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

namespace mgc {
namespace bench {

/// Compiles \p Source, aborting the benchmark binary on errors.
inline std::unique_ptr<vm::Program>
compileOrDie(const char *Name, const char *Source,
             driver::CompilerOptions Options = {}) {
  auto R = driver::compile(Source, Options);
  if (!R.Prog) {
    std::fprintf(stderr, "%s: compilation failed:\n%s\n", Name,
                 R.Diags.str().c_str());
    std::exit(1);
  }
  return std::move(R.Prog);
}

inline void printRule(unsigned Width = 78) {
  for (unsigned I = 0; I != Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace bench
} // namespace mgc

#endif // MGC_BENCH_BENCHUTIL_H
