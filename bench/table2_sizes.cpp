//===- bench/table2_sizes.cpp - Regenerates Table 2 ------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2 of the paper: gc table sizes as a percentage of code size for
/// every encoding scheme — full information (plain, byte-packed) and
/// δ-main (plain, identical-to-previous, byte-packed, and both).  The
/// paper's result: δ-main with Packing+Previous ("PP") compresses the
/// tables from ~45% of the optimized code to ~16%.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "Programs.h"

using namespace mgc;
using namespace mgc::bench;

namespace {
double pct(size_t Part, size_t Whole) {
  return Whole == 0 ? 0.0 : 100.0 * static_cast<double>(Part) /
                                static_cast<double>(Whole);
}
} // namespace

int main() {
  std::printf("Table 2: table sizes as a percentage of code size\n");
  std::printf("(cf. Diwan/Moss/Hudson PLDI'92, Table 2; pc-map bytes "
              "included in every scheme)\n\n");
  std::printf("%-15s | %9s %9s | %9s %9s %9s %9s\n", "", "Full Info", "",
              "delta-main", "", "", "");
  std::printf("%-15s | %9s %9s | %9s %9s %9s %9s\n", "Program", "Plain",
              "Packing", "Plain", "Previous", "Packing", "PP");
  printRule(86);

  double SumPlainOpt = 0, SumPPOpt = 0;
  unsigned NOpt = 0;

  for (const auto &P : programs::All) {
    for (int Opt : {0, 2}) {
      driver::CompilerOptions CO;
      CO.OptLevel = Opt;
      auto Prog = compileOrDie(P.Name, P.Source, CO);
      std::string Name = std::string(P.Name) + (Opt ? "-opt" : "");
      size_t Code = Prog->codeSizeBytes();
      const auto &Z = Prog->Sizes;
      size_t Map = Z.PcMapBytes;
      std::printf("%-15s | %8.1f%% %8.1f%% | %8.1f%% %8.1f%% %8.1f%% "
                  "%8.1f%%\n",
                  Name.c_str(), pct(Z.FullPlain + Map, Code),
                  pct(Z.FullPack + Map, Code), pct(Z.DeltaPlain + Map, Code),
                  pct(Z.DeltaPrev + Map, Code), pct(Z.DeltaPack + Map, Code),
                  pct(Z.DeltaPP + Map, Code));
      if (Opt == 2) {
        SumPlainOpt += pct(Z.DeltaPlain + Map, Code);
        SumPPOpt += pct(Z.DeltaPP + Map, Code);
        ++NOpt;
      }
    }
  }
  printRule(86);
  std::printf("\nOptimized-code averages: delta-main Plain %.1f%%  ->  PP "
              "%.1f%%\n",
              SumPlainOpt / NOpt, SumPPOpt / NOpt);
  std::printf("(paper: ~45%% -> ~16%%; the shape to check is the "
              "compression factor, ~%0.1fx here vs ~2.8x in the paper)\n",
              SumPlainOpt / SumPPOpt);

  // Observability support, reported separately: the allocation-site table
  // is not a gc-table scheme and is never added into the columns above —
  // the paper's table-size-vs-code-size figures stay untouched.
  std::printf("\nAllocation-site tables (observability; excluded from every "
              "column above):\n");
  for (const auto &P : programs::All) {
    for (int Opt : {0, 2}) {
      driver::CompilerOptions CO;
      CO.OptLevel = Opt;
      auto Prog = compileOrDie(P.Name, P.Source, CO);
      std::string Name = std::string(P.Name) + (Opt ? "-opt" : "");
      std::printf("  %-15s %5zuB (%zu sites, %.1f%% of code)\n", Name.c_str(),
                  Prog->Sizes.SiteTableBytes, Prog->SiteTab.Sites.size(),
                  pct(Prog->Sizes.SiteTableBytes, Prog->codeSizeBytes()));
    }
  }
  return 0;
}
