//===- bench/leak.cpp - Online leak-detector gate --------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gates the online growth detector (obs/Trace.h LeakConfig) on four
/// axes:
///
///  1. Overhead.  The gengc workloads run with an enabled tracer in three
///     configurations — no leak config (base), detector configured but
///     disabled (off), detector enabled (on) — interleaved, min-of-N,
///     CPU-time clocked.  Generational-mode gates: off adds <=1% over
///     base, on adds <=3%.
///
///  2. Detection.  An injected-leak program (a global chain growing by
///     one cell per iteration under heavy transient churn) must be
///     flagged at the correct allocation site — the NEW inside Grow(),
///     not the churn site — within K = Window full collections of the
///     run's start (two-space mode, where every collection is full and
///     the leaked site is past MinBytes by the first sample).
///
///  3. False positives.  The paper's §6 suite (typereg, FieldList, takl,
///     destroy) is leak-free: run under collection pressure with the
///     detector on, none of them may flag any site.
///
///  4. Determinism.  The detector's inputs are per-site integer sums
///     accumulated as the collector copies objects (order- and
///     partition-independent), so its output is a pure function of the
///     collection schedule: within each collector mode the full flag
///     serialization must be byte-identical across --gc-threads 1/2/4
///     and both dispatch tiers.
///
/// Writes BENCH_leak.json and fails (exit 1) when any gate fails.
///
///   MGC_LEAK_RUNS=N   timing repetitions (default 7)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "Programs.h"

#include "obs/Trace.h"
#include "support/Provenance.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

using namespace mgc;

namespace {

/// The injected-leak program: Grow() prepends one cell to a global chain
/// that is never trimmed (the leak), Churn() allocates transient cells
/// that die immediately (collection pressure).  Grow's NEW is the one
/// site the detector must flag.  The periodic GcCollect() guarantees
/// full collections under gen-gc, where the transients die in the
/// nursery and the promoted chain alone never fills the old space.
const char *LeakSource = R"MG(
MODULE LeakBench;

TYPE
  Cell = REF CellRec;
  CellRec = RECORD v: INTEGER; next: Cell END;

VAR
  leak: Cell;
  i, s: INTEGER;

PROCEDURE Grow(l: Cell; n: INTEGER): Cell;
VAR c: Cell;
BEGIN
  c := NEW(Cell);
  c^.v := n;
  c^.next := l;
  RETURN c
END Grow;

PROCEDURE Churn(n: INTEGER): INTEGER;
VAR t: Cell; j, s: INTEGER;
BEGIN
  s := 0;
  FOR j := 1 TO n DO
    t := NEW(Cell);
    t^.v := j;
    s := (s + t^.v) MOD 1000000007
  END;
  RETURN s
END Churn;

BEGIN
  s := 0;
  FOR i := 1 TO 600 DO
    leak := Grow(leak, i);
    s := (s + Churn(40)) MOD 1000000007;
    IF i MOD 25 = 0 THEN GcCollect() END
  END;
  PutInt(s);
  PutLn()
END LeakBench.
)MG";

std::string bigDestroy(int Branch, int Depth, int Iters) {
  std::string S(programs::DestroySource);
  auto Replace = [&](const std::string &From, const std::string &To) {
    size_t Pos = S.find(From);
    if (Pos != std::string::npos)
      S.replace(Pos, From.size(), To);
  };
  Replace("Branch = 3", "Branch = " + std::to_string(Branch));
  Replace("Depth = 6", "Depth = " + std::to_string(Depth));
  Replace("Iters = 60", "Iters = " + std::to_string(Iters));
  return S;
}

struct Workload {
  const char *Name;
  std::string Source;
  size_t HeapBytes;
  size_t NurseryBytes;
};

std::vector<Workload> &workloads() {
  // Heaps are sized several times the live set — unlike the per-allocation
  // tracer gate (bench/trace_overhead, which wants maximal collection
  // pressure), the detector's only costs are a per-object add inside the
  // full-collection copy loop and an O(sites) merge per full collection,
  // so its honest denominator is a run where fulls are periodic, as in a
  // production heap, not back-to-back as in a pressure-cooker heap.
  static std::vector<Workload> W = {
      {"destroy", bigDestroy(3, 6, 220), 160u << 10, 8u << 10},
      {"destroy-big", bigDestroy(3, 7, 200), 640u << 10, 16u << 10},
      {"typereg", std::string(programs::TypeRegSource), 128u << 10, 8u << 10},
  };
  return W;
}

/// Overhead configurations: the tracer itself is enabled in all three
/// (trace_overhead gates the tracer's own cost); this bench isolates the
/// detector's delta on top of it.
enum class Config { Base, Off, On };

uint64_t runTimed(const vm::Program &Prog, const Workload &W, bool Gen,
                  Config C) {
  vm::VMOptions VO;
  VO.HeapBytes = W.HeapBytes;
  VO.StackWords = 1u << 20;
  VO.GenGc = Gen;
  VO.NurseryBytes = Gen ? W.NurseryBytes : 0;
  gc::CollectorOptions GCO;
  GCO.CrossCheck = false;

  vm::VM M(Prog, VO);
  gc::installPreciseCollector(M, GCO);

  obs::TracerConfig TC;
  TC.Sites = &Prog.SiteTab;
  TC.GenGc = Gen;
  if (C != Config::Base) {
    TC.Leak.Enabled = C == Config::On;
    TC.Leak.Window = 8;
    TC.Leak.MinBytes = 4096;
  }
  obs::Tracer Tracer(std::move(TC));
  Tracer.enable(/*Stream=*/nullptr);
  M.Tracer = &Tracer;

  // CPU time, not wall time: single-threaded run, and the 1%/3% gates are
  // far below wall-clock noise on a shared machine.
  timespec T0{}, T1{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &T0);
  bool Ok = M.run();
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &T1);
  if (!Ok) {
    std::fprintf(stderr, "leak: %s (%s): run failed: %s\n", W.Name,
                 Gen ? "gen" : "two-space", M.Error.c_str());
    std::exit(1);
  }
  return static_cast<uint64_t>((T1.tv_sec - T0.tv_sec) * 1000000000ll +
                               (T1.tv_nsec - T0.tv_nsec));
}

/// One detector-enabled functional run; returns the flag list plus the
/// serialized form the determinism matrix byte-compares (the same
/// "site:slope:live:first;" shape the fuzz oracle uses).
struct DetectResult {
  std::vector<obs::Tracer::LeakFlag> Flags;
  std::string Serialized;
  uint64_t Collections = 0;
  std::string Output;
};

DetectResult runDetect(const vm::Program &Prog, size_t HeapBytes, bool Gen,
                       size_t NurseryBytes, unsigned GcThreads,
                       vm::DispatchTier Tier, uint32_t Window,
                       uint64_t MinBytes) {
  vm::VMOptions VO;
  VO.HeapBytes = HeapBytes;
  VO.StackWords = 1u << 20;
  VO.GenGc = Gen;
  VO.NurseryBytes = Gen ? NurseryBytes : 0;
  VO.Dispatch = Tier;
  gc::CollectorOptions GCO;
  GCO.CrossCheck = false;
  GCO.Threads = GcThreads;

  vm::VM M(Prog, VO);
  gc::installPreciseCollector(M, GCO);

  obs::TracerConfig TC;
  TC.Sites = &Prog.SiteTab;
  TC.GenGc = Gen;
  TC.Leak.Enabled = true;
  TC.Leak.Window = Window;
  TC.Leak.MinBytes = MinBytes;
  obs::Tracer Tracer(std::move(TC));
  Tracer.enable(/*Stream=*/nullptr);
  M.Tracer = &Tracer;

  if (!M.run()) {
    std::fprintf(stderr, "leak: %s: detection run failed: %s\n",
                 Prog.Name.c_str(), M.Error.c_str());
    std::exit(1);
  }

  DetectResult R;
  R.Flags = Tracer.leakFlags();
  for (const obs::Tracer::LeakFlag &F : R.Flags) {
    R.Serialized += std::to_string(F.Site);
    R.Serialized += ':';
    R.Serialized += std::to_string(F.SlopeBytes);
    R.Serialized += ':';
    R.Serialized += std::to_string(F.LiveBytes);
    R.Serialized += ':';
    R.Serialized += std::to_string(F.FirstFlagged);
    R.Serialized += ';';
  }
  R.Collections = M.Stats.Collections;
  R.Output = M.Out;
  return R;
}

/// The site ids whose allocation lives in function \p FuncName.
std::vector<uint32_t> sitesInFunc(const vm::Program &Prog,
                                  const char *FuncName) {
  std::vector<uint32_t> Ids;
  for (uint32_t Id = 0; Id != Prog.SiteTab.Sites.size(); ++Id) {
    uint32_t F = Prog.SiteTab.Sites[Id].Func;
    if (F < Prog.Funcs.size() && Prog.Funcs[F].Name == FuncName)
      Ids.push_back(Id);
  }
  return Ids;
}

void jf(std::string &Out, const char *Key, double V, bool First = false) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%.3f", First ? "" : ",", Key, V);
  Out += Buf;
}

void ji(std::string &Out, const char *Key, uint64_t V, bool First = false) {
  if (!First)
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}

} // namespace

int main() {
  int Runs = 7;
  if (const char *E = std::getenv("MGC_LEAK_RUNS"))
    Runs = std::atoi(E);
  if (Runs < 1)
    Runs = 1;

  constexpr double OnLimitPct = 3.0;
  constexpr double OffLimitPct = 1.0;
  constexpr uint32_t Window = 8; // K: the detection-latency bound.

  bool AllPass = true;
  std::string Json = "{\"provenance\":";
  Json += support::provenanceJson();
  ji(Json, "runs", static_cast<uint64_t>(Runs));
  ji(Json, "window", Window);

  //===--- 1. Overhead ------------------------------------------------------===

  struct Compiled {
    std::unique_ptr<vm::Program> TwoSpace, Gen;
  };
  std::vector<Compiled> Progs;
  for (const Workload &W : workloads()) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    Compiled C;
    CO.WriteBarriers = false;
    C.TwoSpace = bench::compileOrDie(W.Name, W.Source.c_str(), CO);
    CO.WriteBarriers = true;
    C.Gen = bench::compileOrDie(W.Name, W.Source.c_str(), CO);
    Progs.push_back(std::move(C));
  }

  Json += ",\"modes\":[";
  bool GatePass = true;
  double GenOffPct = 0, GenOnPct = 0;

  for (bool Gen : {true, false}) {
    size_t NW = workloads().size();
    std::vector<std::vector<uint64_t>> Min(
        NW, std::vector<uint64_t>(3, UINT64_MAX));

    for (size_t I = 0; I != NW; ++I)
      runTimed(Gen ? *Progs[I].Gen : *Progs[I].TwoSpace, workloads()[I], Gen,
               Config::Base);
    auto Round = [&] {
      for (size_t I = 0; I != NW; ++I)
        for (Config C : {Config::Base, Config::Off, Config::On}) {
          uint64_t Nanos = runTimed(Gen ? *Progs[I].Gen : *Progs[I].TwoSpace,
                                    workloads()[I], Gen, C);
          uint64_t &M = Min[I][static_cast<size_t>(C)];
          if (Nanos < M)
            M = Nanos;
        }
    };
    for (int R = 0; R != Runs; ++R)
      Round();

    uint64_t TotBase = 0, TotOff = 0, TotOn = 0;
    auto Totals = [&] {
      TotBase = TotOff = TotOn = 0;
      for (size_t I = 0; I != NW; ++I) {
        TotBase += Min[I][0];
        TotOff += Min[I][1];
        TotOn += Min[I][2];
      }
    };
    Totals();
    auto OffPctOf = [&] {
      return 100.0 * (static_cast<double>(TotOff) - TotBase) / TotBase;
    };
    auto OnPctOf = [&] {
      return 100.0 * (static_cast<double>(TotOn) - TotBase) / TotBase;
    };
    if (Gen) {
      // Minima only tighten with more samples: buy bounded extra rounds
      // before concluding a gate overage is real overhead, not noise.
      for (int Extra = 0;
           (OffPctOf() > OffLimitPct || OnPctOf() > OnLimitPct) &&
           Extra < 3 * Runs;
           ++Extra) {
        Round();
        Totals();
      }
      GenOffPct = OffPctOf();
      GenOnPct = OnPctOf();
      if (GenOffPct > OffLimitPct || GenOnPct > OnLimitPct)
        GatePass = false;
    }
    double OffPct = OffPctOf(), OnPct = OnPctOf();

    if (Gen)
      Json += "{";
    else
      Json += ",{";
    Json += "\"mode\":\"";
    Json += Gen ? "gen" : "two-space";
    Json += "\",\"workloads\":[";
    for (size_t I = 0; I != NW; ++I) {
      if (I)
        Json += ',';
      Json += "{\"name\":\"";
      Json += workloads()[I].Name;
      Json += '"';
      ji(Json, "wall_base_ns", Min[I][0]);
      ji(Json, "wall_off_ns", Min[I][1]);
      ji(Json, "wall_on_ns", Min[I][2]);
      Json += '}';
    }
    Json += ']';
    ji(Json, "total_base_ns", TotBase);
    ji(Json, "total_off_ns", TotOff);
    ji(Json, "total_on_ns", TotOn);
    jf(Json, "overhead_off_pct", OffPct);
    jf(Json, "overhead_on_pct", OnPct);
    Json += '}';

    std::printf("leak[%s]: base %.3f ms, detector-off %.3f ms (%+.2f%%), "
                "detector-on %.3f ms (%+.2f%%)\n",
                Gen ? "gen" : "two-space", static_cast<double>(TotBase) / 1e6,
                static_cast<double>(TotOff) / 1e6, OffPct,
                static_cast<double>(TotOn) / 1e6, OnPct);
  }
  Json += ']';
  if (!GatePass)
    AllPass = false;

  //===--- 2. Detection on the injected leak --------------------------------===

  driver::CompilerOptions LeakCO;
  LeakCO.OptLevel = 2;
  LeakCO.WriteBarriers = false;
  auto LeakProg = bench::compileOrDie("leakbench", LeakSource, LeakCO);
  LeakCO.WriteBarriers = true;
  auto LeakProgWB = bench::compileOrDie("leakbench", LeakSource, LeakCO);

  std::vector<uint32_t> GrowSites = sitesInFunc(*LeakProg, "Grow");
  if (GrowSites.size() != 1) {
    std::fprintf(stderr, "leak: expected exactly 1 site in Grow, got %zu\n",
                 GrowSites.size());
    return 1;
  }

  // Two-space, small heap: every collection is full (one detector sample
  // each), churn forces one every few dozen iterations, and the chain is
  // past MinBytes=64 by the first sample — so the earliest possible flag
  // is the Window-th collection, and "within K collections" is exact.
  DetectResult D = runDetect(*LeakProg, 32u << 10, /*Gen=*/false, 0,
                             /*GcThreads=*/1, vm::DispatchTier::Threaded,
                             Window, /*MinBytes=*/64);
  bool DetectPass = true;
  if (D.Flags.size() != 1 || D.Flags[0].Site != GrowSites[0]) {
    DetectPass = false;
    std::fprintf(stderr,
                 "leak: FAIL: expected exactly the Grow site (%u) flagged, "
                 "got %zu flag(s)%s\n",
                 GrowSites[0], D.Flags.size(),
                 D.Flags.empty()
                     ? ""
                     : (" first site " + std::to_string(D.Flags[0].Site))
                           .c_str());
  } else if (D.Flags[0].FirstFlagged > Window) {
    DetectPass = false;
    std::fprintf(stderr,
                 "leak: FAIL: injected leak flagged at collection %llu, "
                 "bound is K=%u\n",
                 static_cast<unsigned long long>(D.Flags[0].FirstFlagged),
                 Window);
  } else {
    std::printf("leak: injected leak flagged at site %u, collection %llu/%llu "
                "(K=%u), slope %+lld B/gc\n",
                D.Flags[0].Site,
                static_cast<unsigned long long>(D.Flags[0].FirstFlagged),
                static_cast<unsigned long long>(D.Collections), Window,
                static_cast<long long>(D.Flags[0].SlopeBytes));
  }
  if (!DetectPass)
    AllPass = false;

  Json += ",\"detect\":{";
  ji(Json, "grow_site", GrowSites[0], /*First=*/true);
  ji(Json, "flags", D.Flags.size());
  ji(Json, "first_flagged", D.Flags.empty() ? 0 : D.Flags[0].FirstFlagged);
  ji(Json, "collections", D.Collections);
  Json += ",\"pass\":";
  Json += DetectPass ? "true" : "false";
  Json += '}';

  //===--- 3. Leak-free suite: zero flags ------------------------------------===

  bool CleanPass = true;
  Json += ",\"leak_free\":[";
  bool FirstClean = true;
  for (const programs::NamedProgram &P : programs::All) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    auto Prog = bench::compileOrDie(P.Name, P.Source, CO);
    // 64 KiB (bench/pause's sizing) keeps every program collecting
    // mid-run; takl's tiny live set never collects, which trivially (and
    // correctly) produces zero flags.
    DetectResult R = runDetect(*Prog, 64u << 10, /*Gen=*/false, 0,
                               /*GcThreads=*/1, vm::DispatchTier::Threaded,
                               Window, /*MinBytes=*/4096);
    if (!R.Flags.empty()) {
      CleanPass = false;
      std::fprintf(stderr,
                   "leak: FAIL: leak-free program %s flagged %zu site(s), "
                   "first site %u slope %+lld B/gc\n",
                   P.Name, R.Flags.size(), R.Flags[0].Site,
                   static_cast<long long>(R.Flags[0].SlopeBytes));
    }
    if (!FirstClean)
      Json += ',';
    FirstClean = false;
    Json += "{\"name\":\"";
    Json += P.Name;
    Json += '"';
    ji(Json, "collections", R.Collections);
    ji(Json, "flags", R.Flags.size());
    Json += '}';
  }
  Json += ']';
  if (CleanPass)
    std::printf("leak: leak-free suite clean (0 flags on all %zu programs)\n",
                std::size(programs::All));
  else
    AllPass = false;

  //===--- 4. Determinism across threads and tiers ---------------------------===

  // Within one collector mode the collection schedule is fixed, so the
  // detector's serialized flags must be byte-identical across gc-thread
  // counts and dispatch tiers.  (Across modes the schedules differ, so
  // gen and two-space are each their own equivalence class.)
  bool DetPass = true;
  uint64_t Variants = 0;
  for (bool Gen : {false, true}) {
    std::string Ref;
    bool HaveRef = false;
    std::string RefOut;
    for (unsigned Threads : {1u, 2u, 4u})
      for (vm::DispatchTier Tier :
           {vm::DispatchTier::Threaded, vm::DispatchTier::Switch}) {
        DetectResult R =
            runDetect(Gen ? *LeakProgWB : *LeakProg, 32u << 10, Gen,
                      4u << 10, Threads, Tier, Window, /*MinBytes=*/64);
        ++Variants;
        if (!HaveRef) {
          Ref = R.Serialized;
          RefOut = R.Output;
          HaveRef = true;
          if (Gen && R.Flags.empty()) {
            // The gen run must still catch the leak (samples come from
            // full collections only; the growing chain forces them).
            DetPass = false;
            std::fprintf(stderr,
                         "leak: FAIL: gen-mode detection run flagged "
                         "nothing\n");
          }
          continue;
        }
        if (R.Serialized != Ref || R.Output != RefOut) {
          DetPass = false;
          std::fprintf(stderr,
                       "leak: FAIL: nondeterministic flags (%s, %u threads, "
                       "%s tier):\n  ref  \"%s\"\n  got  \"%s\"\n",
                       Gen ? "gen" : "two-space", Threads,
                       vm::dispatchTierName(Tier), Ref.c_str(),
                       R.Serialized.c_str());
        }
      }
  }
  if (DetPass)
    std::printf("leak: flags byte-identical across %llu "
                "thread/tier variants\n",
                static_cast<unsigned long long>(Variants));
  else
    AllPass = false;

  Json += ",\"determinism\":{";
  ji(Json, "variants", Variants, /*First=*/true);
  Json += ",\"pass\":";
  Json += DetPass ? "true" : "false";
  Json += '}';

  //===--- Gate summary ------------------------------------------------------===

  Json += ",\"gate\":{";
  jf(Json, "off_limit_pct", OffLimitPct, /*First=*/true);
  jf(Json, "on_limit_pct", OnLimitPct);
  jf(Json, "gen_off_pct", GenOffPct);
  jf(Json, "gen_on_pct", GenOnPct);
  Json += ",\"overhead_pass\":";
  Json += GatePass ? "true" : "false";
  Json += ",\"pass\":";
  Json += AllPass ? "true" : "false";
  Json += "}}\n";

  if (std::FILE *F = std::fopen("BENCH_leak.json", "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
  } else {
    std::fprintf(stderr, "leak: cannot write BENCH_leak.json\n");
    return 1;
  }

  if (!GatePass)
    std::fprintf(stderr,
                 "leak: FAIL: generational-mode overhead detector-off "
                 "%.2f%% (limit %.1f%%), detector-on %.2f%% (limit %.1f%%)\n",
                 GenOffPct, OffLimitPct, GenOnPct, OnLimitPct);
  if (!AllPass)
    return 1;
  std::printf("leak: ok (gen off %+.2f%% <= %.1f%%, on %+.2f%% <= %.1f%%; "
              "detect + leak-free + determinism pass)\n",
              GenOffPct, OffLimitPct, GenOnPct, OnLimitPct);
  return 0;
}
