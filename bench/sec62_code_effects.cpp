//===- bench/sec62_code_effects.cpp - §6.2: effects on generated code ------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §6.2 of the paper measures how the gc restrictions change the generated
/// code:
///   - optimized code: *no* changes on any benchmark;
///   - unoptimized VAX code: indirect references must be preserved in
///     registers (12 cases in typereg, 32 in FieldList), and the dead-base
///     rule adds a couple of moves.
/// This harness reports, per benchmark: whether the optimized instruction
/// stream is identical with tables on/off, and the CISC addressing-fold
/// counters (folds applied without gc, folds blocked by the gc
/// restriction).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "Programs.h"

using namespace mgc;
using namespace mgc::bench;

int main() {
  std::printf("Section 6.2: effects of gc support on the generated code\n\n");

  std::printf("%-12s %28s %18s %18s %10s\n", "Program",
              "optimized code identical?", "folds (no gc)",
              "folds (gc-safe)", "preserved");
  printRule(92);
  for (const auto &P : programs::All) {
    // (a) Optimized code with and without tables (no CISC folding):
    driver::CompilerOptions On;
    On.OptLevel = 2;
    On.GcTables = true;
    driver::CompilerOptions Off = On;
    Off.GcTables = false;
    auto ProgOn = compileOrDie(P.Name, P.Source, On);
    auto ProgOff = compileOrDie(P.Name, P.Source, Off);
    bool Identical = ProgOn->Image.Bytes == ProgOff->Image.Bytes;

    // (b) Unoptimized code with CISC folding: the gc restriction blocks
    // folds whose folded value is a derivation base (the paper's
    //   movl (r7),r1 ; addl2 r1,r0   vs   addl2 (r7),r0
    // effect).
    driver::CompilerOptions CiscOff;
    CiscOff.OptLevel = 0;
    CiscOff.CiscFold = true;
    CiscOff.GcTables = false;
    driver::CompilerOptions CiscOn = CiscOff;
    CiscOn.GcTables = true;
    auto ProgCiscOff = compileOrDie(P.Name, P.Source, CiscOff);
    auto ProgCiscOn = compileOrDie(P.Name, P.Source, CiscOn);

    std::printf("%-12s %28s %18u %18u %10u\n", P.Name,
                Identical ? "yes" : "NO (unexpected!)",
                ProgCiscOff->CiscFoldsApplied, ProgCiscOn->CiscFoldsApplied,
                ProgCiscOn->CiscFoldsBlocked);
  }
  printRule(92);
  std::printf(
      "\n'preserved' = intermediate references kept in a register/slot "
      "because the loaded\npointer is the base of a derived value (§4's "
      "indirect references; the paper reports\n12 such cases in typereg and "
      "32 in FieldList on the VAX).\n");

  // Dead-base moves / path variables on the benchmarks (§6.2 reports 2
  // dead-base moves in unoptimized FieldList, and zero path variables).
  std::printf("\n%-12s %12s %14s\n", "Program", "path vars",
              "path assigns");
  printRule(44);
  for (const auto &P : programs::All) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    auto Prog = compileOrDie(P.Name, P.Source, CO);
    std::printf("%-12s %12u %14u\n", P.Name, Prog->PathVars,
                Prog->PathAssigns);
  }
  printRule(44);
  std::printf("(paper: none of the benchmarks had ambiguous derivations)\n");
  return 0;
}
