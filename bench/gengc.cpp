//===- bench/gengc.cpp - Generational vs full-collection pauses ------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pause-time comparison for the table-driven generational collector: the
/// same allocation-heavy benchmark programs run in default two-space mode
/// (every collection copies the whole live set) and in generational mode
/// (minor collections trace only the nursery plus the remembered set).
/// The claim to reproduce is that the average minor-collection pause is
/// well below the average full-collection pause, with bit-identical
/// program output.
///
/// Before any timing, every program is run in both modes with
/// --gc-crosscheck semantics on; an output mismatch or a cross-check
/// failure (stale remembered set, decode disagreement) exits non-zero so
/// tools/check.sh fails.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "Programs.h"

#include "support/Provenance.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace mgc;

namespace {

/// destroy scaled as in sec63_tracing so collections are frequent.
std::string bigDestroy(int Branch, int Depth, int Iters) {
  std::string S(programs::DestroySource);
  auto Replace = [&](const std::string &From, const std::string &To) {
    size_t Pos = S.find(From);
    if (Pos != std::string::npos)
      S.replace(Pos, From.size(), To);
  };
  Replace("Branch = 3", "Branch = " + std::to_string(Branch));
  Replace("Depth = 6", "Depth = " + std::to_string(Depth));
  Replace("Iters = 60", "Iters = " + std::to_string(Iters));
  return S;
}

struct Workload {
  const char *Name;
  std::string Source;
  const char *Expected; ///< Null when scaled away from the pinned output.
  size_t HeapBytes;
  size_t NurseryBytes;
};

std::vector<Workload> &workloads() {
  static std::vector<Workload> W = {
      {"destroy", bigDestroy(3, 6, 60), nullptr, 48u << 10, 4u << 10},
      {"destroy-big", bigDestroy(3, 7, 200), nullptr, 160u << 10, 8u << 10},
      {"typereg", programs::TypeRegSource, programs::TypeRegExpected,
       32u << 10, 4u << 10},
  };
  return W;
}

struct ModeRun {
  vm::VMStats Stats;
  std::string Out;
};

ModeRun runMode(const Workload &W, bool Gen, bool Stress = false,
                bool Check = true) {
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  CO.WriteBarriers = Gen;
  auto Prog = bench::compileOrDie(W.Name, W.Source.c_str(), CO);

  vm::VMOptions VO;
  VO.HeapBytes = W.HeapBytes;
  VO.StackWords = 1u << 20;
  VO.GenGc = Gen;
  VO.NurseryBytes = Gen ? W.NurseryBytes : 0;
  VO.GcStress = Stress;
  gc::CollectorOptions GCO;
  // Every decode + every minor collection verified during the
  // verification phase; off in the timed runs (the minor-collection
  // cross-check is a whole-heap reachability traversal).
  GCO.CrossCheck = Check;

  vm::VM M(*Prog, VO);
  gc::installPreciseCollector(M, GCO);
  if (!M.run()) {
    std::fprintf(stderr, "gengc: %s (%s mode): run failed: %s\n", W.Name,
                 Gen ? "generational" : "two-space", M.Error.c_str());
    std::exit(1);
  }
  return {M.Stats, M.Out};
}

/// Both modes must produce identical output (and match the pinned
/// expected output where one exists); exits non-zero on divergence.
void verifyModes() {
  for (const Workload &W : workloads()) {
    ModeRun Full = runMode(W, /*Gen=*/false);
    ModeRun Gen = runMode(W, /*Gen=*/true);
    if (Full.Out != Gen.Out ||
        (W.Expected && Gen.Out != W.Expected)) {
      std::fprintf(stderr,
                   "gengc: %s: output diverges between two-space and "
                   "generational mode\n",
                   W.Name);
      std::exit(1);
    }
  }
  // Under stress with a heap large enough that only the stress-induced
  // collections happen, both modes collect at exactly the same gc-points
  // and must gather exactly the same table-driven root set.
  Workload Stressed{"takl-stress", programs::TaklSource,
                    programs::TaklExpected, 4u << 20, 0};
  ModeRun Full = runMode(Stressed, /*Gen=*/false, /*Stress=*/true);
  ModeRun Gen = runMode(Stressed, /*Gen=*/true, /*Stress=*/true);
  if (Full.Out != Gen.Out || Full.Stats.RootsTraced != Gen.Stats.RootsTraced ||
      Full.Stats.DerivedAdjusted != Gen.Stats.DerivedAdjusted ||
      Full.Stats.FramesTraced != Gen.Stats.FramesTraced) {
    std::fprintf(stderr,
                 "gengc: stressed root enumeration diverges between modes "
                 "(roots %llu vs %llu, derived %llu vs %llu)\n",
                 static_cast<unsigned long long>(Full.Stats.RootsTraced),
                 static_cast<unsigned long long>(Gen.Stats.RootsTraced),
                 static_cast<unsigned long long>(Full.Stats.DerivedAdjusted),
                 static_cast<unsigned long long>(Gen.Stats.DerivedAdjusted));
    std::exit(1);
  }
  std::printf("gengc: cross-check ok: identical output in both modes on all "
              "workloads,\n       identical root/derived counts under "
              "stress\n\n");
}

/// Average full-collection pause in default two-space mode.  Manual time:
/// one iteration = one whole program run; the reported time is the mean
/// pause of its collections.
void BM_FullGcPause(benchmark::State &State) {
  const Workload &W = workloads()[static_cast<size_t>(State.range(0))];
  vm::VMStats S;
  for (auto _ : State) {
    ModeRun R = runMode(W, /*Gen=*/false, /*Stress=*/false,
                        /*Check=*/false);
    S = R.Stats;
    double Pause =
        S.Collections ? static_cast<double>(S.GcNanos) * 1e-9 /
                            static_cast<double>(S.Collections)
                      : 0.0;
    State.SetIterationTime(Pause);
  }
  State.SetLabel(W.Name);
  State.counters["collections"] = static_cast<double>(S.Collections);
  State.counters["bytes_copied"] = static_cast<double>(S.BytesCopied);
}
BENCHMARK(BM_FullGcPause)->DenseRange(0, 2)->UseManualTime()->Iterations(3);

/// Average minor-collection pause in generational mode on the same
/// workloads (full-collection fallbacks excluded from the mean).
void BM_MinorGcPause(benchmark::State &State) {
  const Workload &W = workloads()[static_cast<size_t>(State.range(0))];
  vm::VMStats S;
  for (auto _ : State) {
    ModeRun R = runMode(W, /*Gen=*/true, /*Stress=*/false,
                        /*Check=*/false);
    S = R.Stats;
    double Pause =
        S.MinorCollections ? static_cast<double>(S.MinorGcNanos) * 1e-9 /
                                 static_cast<double>(S.MinorCollections)
                           : 0.0;
    State.SetIterationTime(Pause);
  }
  State.SetLabel(W.Name);
  State.counters["minor"] = static_cast<double>(S.MinorCollections);
  State.counters["full"] =
      static_cast<double>(S.Collections - S.MinorCollections);
  State.counters["barriers_run"] = static_cast<double>(S.WriteBarriersRun);
  State.counters["remset_peak"] = static_cast<double>(S.RemSetPeak);
}
BENCHMARK(BM_MinorGcPause)->DenseRange(0, 2)->UseManualTime()->Iterations(3);

} // namespace

int main(int argc, char **argv) {
  verifyModes();
  benchmark::AddCustomContext("tool_version", mgc::support::ToolVersion);
  benchmark::AddCustomContext("build_flags", mgc::support::buildFlags());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
