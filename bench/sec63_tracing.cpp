//===- bench/sec63_tracing.cpp - §6.3: stack tracing timings ---------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §6.3 times the table-driven stack tracing on the destroy benchmark:
/// 470µs per collection (90% confidence < 1710µs), 27–98µs per frame
/// traced, and stack tracing under 1.7–6% of total gc time.  Absolute
/// numbers on a modern host under an interpreter differ wildly from a
/// VAXStation 3500; the *shape* to reproduce is that locating + decoding
/// the tables and enumerating roots is a small fraction of total
/// collection time, even in the gc-intensive destroy workload.
///
/// As an ablation this harness also times a Boehm-style conservative scan
/// of the same stacks (every word a potential pointer) at each collection.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "Programs.h"

using namespace mgc;
using namespace mgc::bench;

namespace {

/// destroy scaled up so collections are frequent and stacks deep.
std::string bigDestroy(int Branch, int Depth, int Iters) {
  std::string S(programs::DestroySource);
  auto Replace = [&](const std::string &From, const std::string &To) {
    size_t Pos = S.find(From);
    if (Pos != std::string::npos)
      S.replace(Pos, From.size(), To);
  };
  Replace("Branch = 3", "Branch = " + std::to_string(Branch));
  Replace("Depth = 6", "Depth = " + std::to_string(Depth));
  Replace("Iters = 60", "Iters = " + std::to_string(Iters));
  return S;
}

struct Row {
  const char *Label;
  vm::VMStats Stats;
  gc::ConservativeStats Conservative;
  unsigned ConservativeRuns = 0;
};

Row runWorkload(const char *Label, const std::string &Source,
                size_t HeapBytes, const gc::CollectorOptions &GCO = {}) {
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  auto Prog = compileOrDie(Label, Source.c_str(), CO);

  vm::VMOptions VO;
  VO.HeapBytes = HeapBytes;
  VO.StackWords = 1u << 20;
  vm::VM M(*Prog, VO);
  gc::installPreciseCollector(M, GCO);

  // Wrap the precise collector with a timed conservative scan of the same
  // machine state, for the precise-vs-ambiguous-roots ablation.
  Row R;
  R.Label = Label;
  auto Precise = M.Collector;
  M.Collector = [&R, Precise](vm::VM &Inner) {
    gc::ConservativeStats C = gc::conservativeTrace(Inner);
    R.Conservative.WordsScanned += C.WordsScanned;
    R.Conservative.CandidatePointers += C.CandidatePointers;
    R.Conservative.ObjectsReached += C.ObjectsReached;
    R.Conservative.Nanos += C.Nanos;
    ++R.ConservativeRuns;
    Precise(Inner);
  };

  if (!M.run()) {
    std::fprintf(stderr, "%s: run failed: %s\n", Label, M.Error.c_str());
    std::exit(1);
  }
  R.Stats = M.Stats;
  return R;
}

void printRow(const Row &R) {
  const vm::VMStats &S = R.Stats;
  if (S.Collections == 0) {
    std::printf("%-22s (no collections)\n", R.Label);
    return;
  }
  double TraceUs = S.StackTraceNanos / 1000.0 / S.Collections;
  double GcUs = S.GcNanos / 1000.0 / S.Collections;
  double Frames = static_cast<double>(S.FramesTraced) / S.Collections;
  double PerFrameUs =
      S.FramesTraced ? S.StackTraceNanos / 1000.0 / S.FramesTraced : 0.0;
  double Fraction = 100.0 * S.StackTraceNanos / S.GcNanos;
  std::printf("%-22s %6llu %10.1f %10.1f %7.1f%% %8.1f %9.3f\n", R.Label,
              static_cast<unsigned long long>(S.Collections), TraceUs, GcUs,
              Fraction, Frames, PerFrameUs);
}

} // namespace

int main() {
  std::printf("Section 6.3: stack tracing cost on the destroy benchmark\n");
  std::printf("(paper, VAXStation 3500: 470us/collection tracing, 27-98us "
              "per frame,\n tracing <1.7%%-6%% of total gc time)\n\n");
  std::printf("%-22s %6s %10s %10s %8s %8s %9s\n", "workload", "colls",
              "trace us", "gc us", "trace%", "frames", "us/frame");
  printRule(80);

  gc::CollectorOptions Reference;
  Reference.UseMapIndex = false;
  gc::CollectorOptions Indexed; // Defaults: index + cache.

  struct Workload {
    const char *Label;
    std::string Source;
    size_t HeapBytes;
  };
  std::vector<Workload> Workloads;
  // Paper-scale destroy plus two heavier variants.
  Workloads.push_back(
      {"destroy(3,6,60)", bigDestroy(3, 6, 60), 48u << 10});
  Workloads.push_back(
      {"destroy(3,7,200)", bigDestroy(3, 7, 200), 160u << 10});
  Workloads.push_back(
      {"destroy(2,12,80)", bigDestroy(2, 12, 80), 400u << 10});
  // A less gc-intensive program for the paper's "five times lower gc cost"
  // remark.
  Workloads.push_back({"typereg", programs::TypeRegSource, 64u << 10});

  // Reference decoder: the §6.3 measured artifact.
  std::vector<Row> Rows;
  for (const Workload &W : Workloads)
    Rows.push_back(
        runWorkload(W.Label, W.Source, W.HeapBytes, Reference));
  for (const Row &R : Rows)
    printRow(R);
  printRule(80);

  // The same workloads through the load-time index + decoded-point cache.
  std::printf("\nDecode acceleration: same workloads, load-time index + "
              "decoded-point cache\n");
  std::printf("%-22s %10s %10s %8s %9s %9s %10s\n", "workload", "trace us",
              "speedup", "hit%", "misses", "skippedKB", "roots==ref");
  printRule(84);
  for (size_t I = 0; I != Workloads.size(); ++I) {
    const Workload &W = Workloads[I];
    Row R = runWorkload(W.Label, W.Source, W.HeapBytes, Indexed);
    const vm::VMStats &S = R.Stats;
    const vm::VMStats &Ref = Rows[I].Stats;
    if (S.Collections == 0)
      continue;
    // Identical semantics is part of the contract: the accelerated walk
    // must enumerate exactly the reference roots and derived values.
    bool Same = S.RootsTraced == Ref.RootsTraced &&
                S.DerivedAdjusted == Ref.DerivedAdjusted &&
                S.FramesTraced == Ref.FramesTraced;
    if (!Same) {
      std::fprintf(stderr,
                   "%s: indexed trace diverged from reference "
                   "(roots %llu vs %llu)\n",
                   W.Label, static_cast<unsigned long long>(S.RootsTraced),
                   static_cast<unsigned long long>(Ref.RootsTraced));
      return 1;
    }
    double TraceUs = S.StackTraceNanos / 1000.0 / S.Collections;
    double Speedup = S.StackTraceNanos
                         ? static_cast<double>(Ref.StackTraceNanos) /
                               static_cast<double>(S.StackTraceNanos)
                         : 0.0;
    double HitPct = 100.0 * static_cast<double>(S.DecodeCacheHits) /
                    static_cast<double>(S.DecodeCacheHits +
                                        S.DecodeCacheMisses);
    std::printf("%-22s %10.1f %9.2fx %7.1f%% %9llu %10.1f %10s\n", W.Label,
                TraceUs, Speedup, HitPct,
                static_cast<unsigned long long>(S.DecodeCacheMisses),
                S.DecodeBytesSkipped / 1024.0, "yes");
  }
  printRule(84);

  // Cross-check mode: every decode of all four benchmark programs is also
  // run through the reference decoder; any disagreement aborts.
  gc::CollectorOptions Checked;
  Checked.CrossCheck = true;
  std::printf("\nCross-check (cached == reference on every decode): ");
  for (const programs::NamedProgram &P : programs::All)
    runWorkload(P.Name, P.Source, 96u << 10, Checked);
  std::printf("ok on all four benchmark programs\n");

  std::printf("\nAblation: precise (table-driven) root enumeration vs "
              "conservative whole-stack scan\n");
  std::printf("%-22s %14s %14s %14s %12s\n", "workload", "precise us/coll",
              "conserv us/scan", "words/scan", "cand ptrs");
  printRule(82);
  for (const Row &R : Rows) {
    if (R.ConservativeRuns == 0)
      continue;
    std::printf("%-22s %14.1f %14.1f %14.0f %12.0f\n", R.Label,
                R.Stats.StackTraceNanos / 1000.0 / R.Stats.Collections,
                R.Conservative.Nanos / 1000.0 / R.ConservativeRuns,
                static_cast<double>(R.Conservative.WordsScanned) /
                    R.ConservativeRuns,
                static_cast<double>(R.Conservative.CandidatePointers) /
                    R.ConservativeRuns);
  }
  printRule(82);
  std::printf("\n(The conservative scan visits every stack word; the "
              "precise walk touches only\ntable-described locations but "
              "pays table decoding. The paper's claim is that the\nprecise "
              "cost is a small fraction of total gc time.)\n");
  return 0;
}
