//===- bench/server.cpp - Server-workload benchmark gate ------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives generated MG server programs (src/workload) to steady state and
/// reports requests/sec, per-request latency percentiles (p50/p99/max,
/// with GC pause attribution from the tracer's per-phase nanos), and
/// mutator utilization, swept across heap-sizing policies x --gc-threads
/// {1,2,4} x both dispatch tiers.  Writes BENCH_server.json.
///
/// Everything gated is virtual-time deterministic (instruction counts,
/// outputs, collection counts); wall-clock figures are reported only.
/// Correctness gates (always enforced, exit 1 on failure):
///  - within one (workload, policy) cell, all 6 tier x thread runs agree
///    on output, request count, per-request service instructions, and
///    collection count;
///  - across policies, program output is identical, and for workloads
///    without spin threads the service samples are too (policies only
///    move collections, never retired instructions, single-threaded);
///  - per-request GC attribution plus the unattributed tail equals the
///    tracer's total across events, in every cell;
///  - a --gc-threads 4 run under --gc-crosscheck agrees;
///  - a same-seed rerun is bit-identical (no wall-clock leakage into the
///    virtual-time samples).
///
///   MGC_SERVER_RUNS=N   timing repetitions (default 2)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workload/Server.h"
#include "support/Provenance.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace mgc;
using namespace mgc::workload;

namespace {

constexpr uint64_t ProgramSeed = 20260808; ///< Server-program shape seed.
constexpr uint64_t ScheduleSeed = 41;      ///< Arrival-schedule seed.
constexpr unsigned RequestCount = 2000;
constexpr size_t HeapBytes = 32u << 10; ///< Small: collections must happen.

struct BenchWorkload {
  std::string Name;
  ServerProgramConfig PC;
  ScheduleConfig Sched;
  unsigned SpinThreads = 0;
  std::unique_ptr<vm::Program> Prog;
};

struct BenchPolicy {
  std::string Name;
  bool GenGc = false;
  unsigned GrowthPct = 0;
  size_t MaxBytes = 0;
  bool NurseryAuto = false;
};

ServerRunConfig cellConfig(const BenchWorkload &W, const BenchPolicy &P,
                           vm::DispatchTier Tier, unsigned GcThreads,
                           bool CrossCheck = false) {
  ServerRunConfig C;
  C.VO.HeapBytes = HeapBytes;
  C.VO.GenGc = P.GenGc;
  C.VO.HeapGrowthPct = P.GrowthPct;
  C.VO.HeapMaxBytes = P.MaxBytes;
  C.VO.NurseryAuto = P.NurseryAuto;
  C.VO.Dispatch = Tier;
  C.GCO.Threads = GcThreads;
  C.GCO.CrossCheck = CrossCheck;
  C.Sched = W.Sched;
  C.SpinThreads = W.SpinThreads;
  return C;
}

ServerRunResult runOrDie(const BenchWorkload &W, const ServerRunConfig &C,
                         const char *What) {
  ServerRunResult R = runServer(*W.Prog, C);
  if (!R.Ok) {
    std::fprintf(stderr, "server: %s (%s): run failed: %s\n", W.Name.c_str(),
                 What, R.Error.c_str());
    std::exit(1);
  }
  return R;
}

bool sameVirtual(const ServerRunResult &A, const ServerRunResult &B) {
  return A.Out == B.Out && A.Stats.Requests == B.Stats.Requests &&
         A.Stats.Collections == B.Stats.Collections &&
         A.ServiceInstrs == B.ServiceInstrs &&
         A.LatencyInstrs == B.LatencyInstrs;
}

bool attributionExact(const ServerRunResult &R) {
  uint64_t Attributed = 0;
  for (uint64_t G : R.GcNanos)
    Attributed += G;
  return Attributed + R.UnattributedGcNanos == R.TracerGcNanosTotal;
}

void jf(std::string &Out, const char *Key, double V, bool First = false) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%.4f", First ? "" : ",", Key, V);
  Out += Buf;
}

void ji(std::string &Out, const char *Key, uint64_t V, bool First = false) {
  if (!First)
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}

void js(std::string &Out, const char *Key, const std::string &V,
        bool First = false) {
  if (!First)
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":\"";
  Out += V;
  Out += '"';
}

} // namespace

int main() {
  int Runs = 2;
  if (const char *E = std::getenv("MGC_SERVER_RUNS"))
    Runs = std::atoi(E);
  if (Runs < 1)
    Runs = 1;

  // --- Workloads: uniform arrivals, bursty arrivals, and a spin-thread
  // mix (two allocation-free mutator threads raising rendezvous cost).
  std::vector<BenchWorkload> Work;
  {
    BenchWorkload W;
    W.Name = "uniform";
    W.PC.Seed = ProgramSeed;
    W.PC.Requests = RequestCount;
    W.Sched.Kind = ArrivalKind::Uniform;
    W.Sched.Seed = ScheduleSeed;
    Work.push_back(std::move(W));
  }
  {
    BenchWorkload W;
    W.Name = "bursty";
    W.PC.Seed = ProgramSeed + 1;
    W.PC.Requests = RequestCount;
    W.Sched.Kind = ArrivalKind::Bursty;
    W.Sched.Seed = ScheduleSeed + 1;
    Work.push_back(std::move(W));
  }
  {
    BenchWorkload W;
    W.Name = "spinmix";
    W.PC.Seed = ProgramSeed + 2;
    W.PC.Requests = RequestCount;
    W.PC.Spin = true;
    W.Sched.Kind = ArrivalKind::Uniform;
    W.Sched.Seed = ScheduleSeed + 2;
    W.SpinThreads = 2;
    Work.push_back(std::move(W));
  }
  for (BenchWorkload &W : Work) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    CO.WriteBarriers = true; // No-op under two-space: one program, all cells.
    CO.ThreadedPolls = W.PC.Spin;
    std::string Src = generateServerProgram(W.PC);
    W.Prog = bench::compileOrDie(W.Name.c_str(), Src.c_str(), CO);
  }

  const BenchPolicy Policies[] = {
      {"two-fixed", false, 0, 0, false},
      {"two-growth", false, 70, HeapBytes * 8, false},
      {"gen-fixed", true, 0, 0, false},
      {"gen-auto", true, 70, HeapBytes * 8, true},
  };
  const vm::DispatchTier Tiers[] = {vm::DispatchTier::Threaded,
                                    vm::DispatchTier::Switch};
  const unsigned NLevels[] = {1, 2, 4};

  // --- Correctness gates ---------------------------------------------------
  for (const BenchWorkload &W : Work) {
    ServerRunResult PolicyRef; // two-fixed reference for cross-policy gates.
    for (const BenchPolicy &P : Policies) {
      ServerRunResult CellRef;
      bool HaveRef = false;
      for (vm::DispatchTier Tier : Tiers)
        for (unsigned N : NLevels) {
          ServerRunResult R =
              runOrDie(W, cellConfig(W, P, Tier, N), P.Name.c_str());
          if (R.Stats.Requests != RequestCount) {
            std::fprintf(stderr,
                         "server: FAIL: %s/%s: %llu requests completed, "
                         "expected %u\n",
                         W.Name.c_str(), P.Name.c_str(),
                         static_cast<unsigned long long>(R.Stats.Requests),
                         RequestCount);
            return 1;
          }
          if (!attributionExact(R)) {
            std::fprintf(stderr,
                         "server: FAIL: %s/%s: GC attribution does not sum "
                         "to the tracer total\n",
                         W.Name.c_str(), P.Name.c_str());
            return 1;
          }
          if (!HaveRef) {
            CellRef = R;
            HaveRef = true;
            // Same-seed rerun: bit-identical virtual-time samples.
            ServerRunResult Again =
                runOrDie(W, cellConfig(W, P, Tier, N), "rerun");
            if (!sameVirtual(R, Again)) {
              std::fprintf(stderr,
                           "server: FAIL: %s/%s: same-seed rerun diverged\n",
                           W.Name.c_str(), P.Name.c_str());
              return 1;
            }
          } else if (!sameVirtual(R, CellRef)) {
            std::fprintf(stderr,
                         "server: FAIL: %s/%s: tier/thread cell diverges "
                         "(switch=%d gc-threads=%u)\n",
                         W.Name.c_str(), P.Name.c_str(),
                         Tier == vm::DispatchTier::Switch, N);
            return 1;
          }
        }
      // Crosscheck run: decode cross-check on at the widest thread count.
      ServerRunResult XC = runOrDie(
          W, cellConfig(W, P, vm::DispatchTier::Threaded, 4, true),
          "crosscheck");
      if (!sameVirtual(XC, CellRef)) {
        std::fprintf(stderr, "server: FAIL: %s/%s: crosscheck run diverged\n",
                     W.Name.c_str(), P.Name.c_str());
        return 1;
      }
      if (PolicyRef.ServiceInstrs.empty()) {
        PolicyRef = CellRef;
      } else {
        if (CellRef.Out != PolicyRef.Out) {
          std::fprintf(stderr,
                       "server: FAIL: %s: policy %s changes program output\n",
                       W.Name.c_str(), P.Name.c_str());
          return 1;
        }
        // Policies only move collections; with no spin threads the retired
        // instruction stream (and so every service sample) is invariant.
        if (W.SpinThreads == 0 &&
            CellRef.ServiceInstrs != PolicyRef.ServiceInstrs) {
          std::fprintf(stderr,
                       "server: FAIL: %s: policy %s changes service "
                       "samples\n",
                       W.Name.c_str(), P.Name.c_str());
          return 1;
        }
      }
    }
  }
  std::printf("server: identity/attribution/crosscheck gates ok (%zu "
              "workloads x %zu policies x 6 cells)\n",
              Work.size(), std::size(Policies));

  // --- Timing: best (max rps) per (workload, policy, gc-threads) over
  // rounds, threaded tier (the switch tier is identity-gated above and
  // not separately timed into the report cells).
  struct Cell {
    double Rps = 0, Utilization = 0;
    uint64_t P50Ns = 0, P99Ns = 0, MaxNs = 0;
    uint64_t P50Instr = 0, P99Instr = 0, MaxInstr = 0;
    uint64_t Collections = 0, HeapGrowths = 0, NurseryResizes = 0,
             FinalHeapBytes = 0, UnattributedGcNs = 0, GcNs = 0;
  };
  const size_t NP = std::size(Policies), NL = std::size(NLevels);
  std::vector<std::vector<std::vector<Cell>>> Cells(
      Work.size(), std::vector<std::vector<Cell>>(NP, std::vector<Cell>(NL)));
  for (int Round = 0; Round != Runs; ++Round)
    for (size_t WI = 0; WI != Work.size(); ++WI)
      for (size_t PI = 0; PI != NP; ++PI)
        for (size_t LI = 0; LI != NL; ++LI) {
          ServerRunResult R = runOrDie(
              Work[WI],
              cellConfig(Work[WI], Policies[PI], vm::DispatchTier::Threaded,
                         NLevels[LI]),
              "timing");
          Cell &C = Cells[WI][PI][LI];
          if (R.Rps <= C.Rps)
            continue;
          C.Rps = R.Rps;
          C.Utilization = R.Utilization;
          C.P50Ns = R.LatP50Ns;
          C.P99Ns = R.LatP99Ns;
          C.MaxNs = R.LatMaxNs;
          C.P50Instr = R.LatP50Instr;
          C.P99Instr = R.LatP99Instr;
          C.MaxInstr = R.LatMaxInstr;
          C.Collections = R.Stats.Collections;
          C.HeapGrowths = R.HeapGrowths;
          C.NurseryResizes = R.NurseryResizes;
          C.FinalHeapBytes = R.FinalHeapBytes;
          C.GcNs = R.TracerGcNanosTotal;
          C.UnattributedGcNs = R.UnattributedGcNanos;
        }

  // --- Report --------------------------------------------------------------
  // The header documents every seed so BENCH_server.json is reproducible
  // bit for bit on the virtual-time fields (wall-time fields vary).
  std::string Json = "{\"provenance\":";
  Json += support::provenanceJson(ProgramSeed);
  ji(Json, "runs", static_cast<uint64_t>(Runs));
  ji(Json, "program_seed", ProgramSeed);
  ji(Json, "schedule_seed", ScheduleSeed);
  ji(Json, "requests", RequestCount);
  ji(Json, "heap_bytes", HeapBytes);
  Json += ",\"workloads\":[";
  for (size_t WI = 0; WI != Work.size(); ++WI) {
    if (WI)
      Json += ',';
    Json += '{';
    js(Json, "name", Work[WI].Name, /*First=*/true);
    js(Json, "arrivals",
       Work[WI].Sched.Kind == ArrivalKind::Bursty ? "bursty" : "uniform");
    ji(Json, "spin_threads", Work[WI].SpinThreads);
    Json += ",\"policies\":[";
    for (size_t PI = 0; PI != NP; ++PI) {
      if (PI)
        Json += ',';
      Json += '{';
      js(Json, "name", Policies[PI].Name, /*First=*/true);
      Json += ",\"levels\":[";
      for (size_t LI = 0; LI != NL; ++LI) {
        const Cell &C = Cells[WI][PI][LI];
        if (LI)
          Json += ',';
        Json += '{';
        ji(Json, "gc_threads", NLevels[LI], /*First=*/true);
        jf(Json, "rps", C.Rps);
        jf(Json, "utilization", C.Utilization);
        ji(Json, "lat_p50_ns", C.P50Ns);
        ji(Json, "lat_p99_ns", C.P99Ns);
        ji(Json, "lat_max_ns", C.MaxNs);
        ji(Json, "lat_p50_instr", C.P50Instr);
        ji(Json, "lat_p99_instr", C.P99Instr);
        ji(Json, "lat_max_instr", C.MaxInstr);
        ji(Json, "collections", C.Collections);
        ji(Json, "gc_ns", C.GcNs);
        ji(Json, "gc_unattributed_ns", C.UnattributedGcNs);
        ji(Json, "heap_growths", C.HeapGrowths);
        ji(Json, "nursery_resizes", C.NurseryResizes);
        ji(Json, "final_heap_bytes", C.FinalHeapBytes);
        Json += '}';
        std::printf("server[%s/%s] gc-threads %u: %.0f rps, p50 %.1f us, "
                    "p99 %.1f us, max %.1f us, util %.3f, %llu collections"
                    "%s\n",
                    Work[WI].Name.c_str(), Policies[PI].Name.c_str(),
                    NLevels[LI], C.Rps, static_cast<double>(C.P50Ns) / 1e3,
                    static_cast<double>(C.P99Ns) / 1e3,
                    static_cast<double>(C.MaxNs) / 1e3, C.Utilization,
                    static_cast<unsigned long long>(C.Collections),
                    C.HeapGrowths || C.NurseryResizes ? " (policy active)"
                                                      : "");
      }
      Json += "]}";
    }
    Json += "]}";
  }
  Json += "],\"pass\":true}\n";

  if (std::FILE *F = std::fopen("BENCH_server.json", "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
  } else {
    std::fprintf(stderr, "server: cannot write BENCH_server.json\n");
    return 1;
  }
  std::printf("server: ok\n");
  return 0;
}
