
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/derived_pointers.cpp" "examples/CMakeFiles/derived_pointers.dir/derived_pointers.cpp.o" "gcc" "examples/CMakeFiles/derived_pointers.dir/derived_pointers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/mgc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/mgc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mgc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mgc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/gcsafety/CMakeFiles/mgc_gcsafety.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/mgc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/gcmaps/CMakeFiles/mgc_gcmaps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mgc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/mgc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mgc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
