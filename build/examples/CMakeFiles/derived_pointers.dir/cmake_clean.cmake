file(REMOVE_RECURSE
  "CMakeFiles/derived_pointers.dir/derived_pointers.cpp.o"
  "CMakeFiles/derived_pointers.dir/derived_pointers.cpp.o.d"
  "derived_pointers"
  "derived_pointers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derived_pointers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
