# Empty dependencies file for derived_pointers.
# This may be replaced when dependencies are built.
