file(REMOVE_RECURSE
  "CMakeFiles/table_dump.dir/table_dump.cpp.o"
  "CMakeFiles/table_dump.dir/table_dump.cpp.o.d"
  "table_dump"
  "table_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
