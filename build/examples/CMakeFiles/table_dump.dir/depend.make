# Empty dependencies file for table_dump.
# This may be replaced when dependencies are built.
