file(REMOVE_RECURSE
  "CMakeFiles/gc_rendezvous.dir/gc_rendezvous.cpp.o"
  "CMakeFiles/gc_rendezvous.dir/gc_rendezvous.cpp.o.d"
  "gc_rendezvous"
  "gc_rendezvous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_rendezvous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
