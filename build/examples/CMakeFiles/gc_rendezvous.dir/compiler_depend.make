# Empty compiler generated dependencies file for gc_rendezvous.
# This may be replaced when dependencies are built.
