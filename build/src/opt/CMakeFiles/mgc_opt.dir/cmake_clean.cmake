file(REMOVE_RECURSE
  "CMakeFiles/mgc_opt.dir/Diamond.cpp.o"
  "CMakeFiles/mgc_opt.dir/Diamond.cpp.o.d"
  "CMakeFiles/mgc_opt.dir/LoopOpts.cpp.o"
  "CMakeFiles/mgc_opt.dir/LoopOpts.cpp.o.d"
  "CMakeFiles/mgc_opt.dir/Scalar.cpp.o"
  "CMakeFiles/mgc_opt.dir/Scalar.cpp.o.d"
  "libmgc_opt.a"
  "libmgc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
