# Empty compiler generated dependencies file for mgc_opt.
# This may be replaced when dependencies are built.
