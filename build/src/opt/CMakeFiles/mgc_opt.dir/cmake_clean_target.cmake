file(REMOVE_RECURSE
  "libmgc_opt.a"
)
