file(REMOVE_RECURSE
  "CMakeFiles/mgc_gcmaps.dir/GcTables.cpp.o"
  "CMakeFiles/mgc_gcmaps.dir/GcTables.cpp.o.d"
  "libmgc_gcmaps.a"
  "libmgc_gcmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc_gcmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
