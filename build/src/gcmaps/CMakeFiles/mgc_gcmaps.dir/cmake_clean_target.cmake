file(REMOVE_RECURSE
  "libmgc_gcmaps.a"
)
