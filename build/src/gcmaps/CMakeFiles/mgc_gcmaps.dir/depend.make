# Empty dependencies file for mgc_gcmaps.
# This may be replaced when dependencies are built.
