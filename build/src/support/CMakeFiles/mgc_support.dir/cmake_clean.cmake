file(REMOVE_RECURSE
  "CMakeFiles/mgc_support.dir/ByteCodec.cpp.o"
  "CMakeFiles/mgc_support.dir/ByteCodec.cpp.o.d"
  "CMakeFiles/mgc_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/mgc_support.dir/Diagnostics.cpp.o.d"
  "libmgc_support.a"
  "libmgc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
