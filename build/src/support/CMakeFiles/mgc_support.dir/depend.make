# Empty dependencies file for mgc_support.
# This may be replaced when dependencies are built.
