file(REMOVE_RECURSE
  "libmgc_support.a"
)
