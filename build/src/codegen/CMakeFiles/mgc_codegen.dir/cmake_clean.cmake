file(REMOVE_RECURSE
  "CMakeFiles/mgc_codegen.dir/Disasm.cpp.o"
  "CMakeFiles/mgc_codegen.dir/Disasm.cpp.o.d"
  "CMakeFiles/mgc_codegen.dir/Emit.cpp.o"
  "CMakeFiles/mgc_codegen.dir/Emit.cpp.o.d"
  "CMakeFiles/mgc_codegen.dir/Machine.cpp.o"
  "CMakeFiles/mgc_codegen.dir/Machine.cpp.o.d"
  "CMakeFiles/mgc_codegen.dir/RegAlloc.cpp.o"
  "CMakeFiles/mgc_codegen.dir/RegAlloc.cpp.o.d"
  "CMakeFiles/mgc_codegen.dir/Serialize.cpp.o"
  "CMakeFiles/mgc_codegen.dir/Serialize.cpp.o.d"
  "libmgc_codegen.a"
  "libmgc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
