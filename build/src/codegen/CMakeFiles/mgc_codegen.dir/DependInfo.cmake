
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/Disasm.cpp" "src/codegen/CMakeFiles/mgc_codegen.dir/Disasm.cpp.o" "gcc" "src/codegen/CMakeFiles/mgc_codegen.dir/Disasm.cpp.o.d"
  "/root/repo/src/codegen/Emit.cpp" "src/codegen/CMakeFiles/mgc_codegen.dir/Emit.cpp.o" "gcc" "src/codegen/CMakeFiles/mgc_codegen.dir/Emit.cpp.o.d"
  "/root/repo/src/codegen/Machine.cpp" "src/codegen/CMakeFiles/mgc_codegen.dir/Machine.cpp.o" "gcc" "src/codegen/CMakeFiles/mgc_codegen.dir/Machine.cpp.o.d"
  "/root/repo/src/codegen/RegAlloc.cpp" "src/codegen/CMakeFiles/mgc_codegen.dir/RegAlloc.cpp.o" "gcc" "src/codegen/CMakeFiles/mgc_codegen.dir/RegAlloc.cpp.o.d"
  "/root/repo/src/codegen/Serialize.cpp" "src/codegen/CMakeFiles/mgc_codegen.dir/Serialize.cpp.o" "gcc" "src/codegen/CMakeFiles/mgc_codegen.dir/Serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mgc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mgc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/gcsafety/CMakeFiles/mgc_gcsafety.dir/DependInfo.cmake"
  "/root/repo/build/src/gcmaps/CMakeFiles/mgc_gcmaps.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
