# Empty dependencies file for mgc_codegen.
# This may be replaced when dependencies are built.
