file(REMOVE_RECURSE
  "libmgc_codegen.a"
)
