file(REMOVE_RECURSE
  "CMakeFiles/mgc_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/mgc_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/mgc_frontend.dir/Lower.cpp.o"
  "CMakeFiles/mgc_frontend.dir/Lower.cpp.o.d"
  "CMakeFiles/mgc_frontend.dir/Parser.cpp.o"
  "CMakeFiles/mgc_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/mgc_frontend.dir/Sema.cpp.o"
  "CMakeFiles/mgc_frontend.dir/Sema.cpp.o.d"
  "CMakeFiles/mgc_frontend.dir/Type.cpp.o"
  "CMakeFiles/mgc_frontend.dir/Type.cpp.o.d"
  "libmgc_frontend.a"
  "libmgc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
