# Empty dependencies file for mgc_frontend.
# This may be replaced when dependencies are built.
