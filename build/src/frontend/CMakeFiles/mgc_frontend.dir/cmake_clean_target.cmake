file(REMOVE_RECURSE
  "libmgc_frontend.a"
)
