file(REMOVE_RECURSE
  "libmgc_ir.a"
)
