# Empty dependencies file for mgc_ir.
# This may be replaced when dependencies are built.
