file(REMOVE_RECURSE
  "CMakeFiles/mgc_ir.dir/IR.cpp.o"
  "CMakeFiles/mgc_ir.dir/IR.cpp.o.d"
  "CMakeFiles/mgc_ir.dir/Printer.cpp.o"
  "CMakeFiles/mgc_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/mgc_ir.dir/Verifier.cpp.o"
  "CMakeFiles/mgc_ir.dir/Verifier.cpp.o.d"
  "libmgc_ir.a"
  "libmgc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
