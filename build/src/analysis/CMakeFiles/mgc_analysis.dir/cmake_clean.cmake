file(REMOVE_RECURSE
  "CMakeFiles/mgc_analysis.dir/Derivations.cpp.o"
  "CMakeFiles/mgc_analysis.dir/Derivations.cpp.o.d"
  "CMakeFiles/mgc_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/mgc_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/mgc_analysis.dir/Loops.cpp.o"
  "CMakeFiles/mgc_analysis.dir/Loops.cpp.o.d"
  "libmgc_analysis.a"
  "libmgc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
