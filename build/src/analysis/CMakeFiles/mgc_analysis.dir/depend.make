# Empty dependencies file for mgc_analysis.
# This may be replaced when dependencies are built.
