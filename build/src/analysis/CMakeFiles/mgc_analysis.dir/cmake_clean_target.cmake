file(REMOVE_RECURSE
  "libmgc_analysis.a"
)
