file(REMOVE_RECURSE
  "libmgc_gc.a"
)
