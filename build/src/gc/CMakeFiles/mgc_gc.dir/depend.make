# Empty dependencies file for mgc_gc.
# This may be replaced when dependencies are built.
