file(REMOVE_RECURSE
  "CMakeFiles/mgc_gc.dir/Collector.cpp.o"
  "CMakeFiles/mgc_gc.dir/Collector.cpp.o.d"
  "libmgc_gc.a"
  "libmgc_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
