# Empty compiler generated dependencies file for mgc_vm.
# This may be replaced when dependencies are built.
