file(REMOVE_RECURSE
  "CMakeFiles/mgc_vm.dir/Heap.cpp.o"
  "CMakeFiles/mgc_vm.dir/Heap.cpp.o.d"
  "CMakeFiles/mgc_vm.dir/VM.cpp.o"
  "CMakeFiles/mgc_vm.dir/VM.cpp.o.d"
  "libmgc_vm.a"
  "libmgc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
