file(REMOVE_RECURSE
  "libmgc_vm.a"
)
