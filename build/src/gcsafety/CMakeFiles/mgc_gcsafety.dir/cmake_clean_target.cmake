file(REMOVE_RECURSE
  "libmgc_gcsafety.a"
)
