file(REMOVE_RECURSE
  "CMakeFiles/mgc_gcsafety.dir/GcSafety.cpp.o"
  "CMakeFiles/mgc_gcsafety.dir/GcSafety.cpp.o.d"
  "CMakeFiles/mgc_gcsafety.dir/Interproc.cpp.o"
  "CMakeFiles/mgc_gcsafety.dir/Interproc.cpp.o.d"
  "libmgc_gcsafety.a"
  "libmgc_gcsafety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc_gcsafety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
