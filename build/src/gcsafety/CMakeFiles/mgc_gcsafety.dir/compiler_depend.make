# Empty compiler generated dependencies file for mgc_gcsafety.
# This may be replaced when dependencies are built.
