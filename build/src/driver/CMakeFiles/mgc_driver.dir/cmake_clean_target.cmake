file(REMOVE_RECURSE
  "libmgc_driver.a"
)
