# Empty compiler generated dependencies file for mgc_driver.
# This may be replaced when dependencies are built.
