file(REMOVE_RECURSE
  "CMakeFiles/mgc_driver.dir/Compiler.cpp.o"
  "CMakeFiles/mgc_driver.dir/Compiler.cpp.o.d"
  "libmgc_driver.a"
  "libmgc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
