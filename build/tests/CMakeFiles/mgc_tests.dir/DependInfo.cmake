
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalysisTest.cpp" "tests/CMakeFiles/mgc_tests.dir/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/AnalysisTest.cpp.o.d"
  "/root/repo/tests/ByteCodecTest.cpp" "tests/CMakeFiles/mgc_tests.dir/ByteCodecTest.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/ByteCodecTest.cpp.o.d"
  "/root/repo/tests/EndToEndTest.cpp" "tests/CMakeFiles/mgc_tests.dir/EndToEndTest.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/EndToEndTest.cpp.o.d"
  "/root/repo/tests/ExtrasTest.cpp" "tests/CMakeFiles/mgc_tests.dir/ExtrasTest.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/ExtrasTest.cpp.o.d"
  "/root/repo/tests/FrontendTest.cpp" "tests/CMakeFiles/mgc_tests.dir/FrontendTest.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/FrontendTest.cpp.o.d"
  "/root/repo/tests/GCTest.cpp" "tests/CMakeFiles/mgc_tests.dir/GCTest.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/GCTest.cpp.o.d"
  "/root/repo/tests/GcMapsTest.cpp" "tests/CMakeFiles/mgc_tests.dir/GcMapsTest.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/GcMapsTest.cpp.o.d"
  "/root/repo/tests/InterprocTest.cpp" "tests/CMakeFiles/mgc_tests.dir/InterprocTest.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/InterprocTest.cpp.o.d"
  "/root/repo/tests/OptTest.cpp" "tests/CMakeFiles/mgc_tests.dir/OptTest.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/OptTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/mgc_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/SampleProgramsTest.cpp" "tests/CMakeFiles/mgc_tests.dir/SampleProgramsTest.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/SampleProgramsTest.cpp.o.d"
  "/root/repo/tests/Sec62Test.cpp" "tests/CMakeFiles/mgc_tests.dir/Sec62Test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/Sec62Test.cpp.o.d"
  "/root/repo/tests/ThreadsTest.cpp" "tests/CMakeFiles/mgc_tests.dir/ThreadsTest.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/ThreadsTest.cpp.o.d"
  "/root/repo/tests/VMTest.cpp" "tests/CMakeFiles/mgc_tests.dir/VMTest.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/VMTest.cpp.o.d"
  "/root/repo/bench/Programs.cpp" "tests/CMakeFiles/mgc_tests.dir/__/bench/Programs.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/__/bench/Programs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/mgc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/mgc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mgc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mgc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/gcsafety/CMakeFiles/mgc_gcsafety.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/mgc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/gcmaps/CMakeFiles/mgc_gcmaps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mgc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/mgc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mgc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
