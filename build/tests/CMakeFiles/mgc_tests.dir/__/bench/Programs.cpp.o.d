tests/CMakeFiles/mgc_tests.dir/__/bench/Programs.cpp.o: \
 /root/repo/bench/Programs.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/Programs.h
