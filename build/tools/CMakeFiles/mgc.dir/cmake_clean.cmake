file(REMOVE_RECURSE
  "CMakeFiles/mgc.dir/mgc.cpp.o"
  "CMakeFiles/mgc.dir/mgc.cpp.o.d"
  "mgc"
  "mgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
