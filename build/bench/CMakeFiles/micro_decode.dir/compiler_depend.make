# Empty compiler generated dependencies file for micro_decode.
# This may be replaced when dependencies are built.
