file(REMOVE_RECURSE
  "CMakeFiles/micro_decode.dir/micro_decode.cpp.o"
  "CMakeFiles/micro_decode.dir/micro_decode.cpp.o.d"
  "micro_decode"
  "micro_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
