# Empty compiler generated dependencies file for mgc_programs.
# This may be replaced when dependencies are built.
