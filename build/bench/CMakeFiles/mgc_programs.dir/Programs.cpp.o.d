bench/CMakeFiles/mgc_programs.dir/Programs.cpp.o: \
 /root/repo/bench/Programs.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/Programs.h
