file(REMOVE_RECURSE
  "libmgc_programs.a"
)
