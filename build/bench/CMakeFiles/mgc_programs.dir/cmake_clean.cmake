file(REMOVE_RECURSE
  "CMakeFiles/mgc_programs.dir/Programs.cpp.o"
  "CMakeFiles/mgc_programs.dir/Programs.cpp.o.d"
  "libmgc_programs.a"
  "libmgc_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgc_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
