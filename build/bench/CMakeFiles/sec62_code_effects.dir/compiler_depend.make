# Empty compiler generated dependencies file for sec62_code_effects.
# This may be replaced when dependencies are built.
