file(REMOVE_RECURSE
  "CMakeFiles/sec62_code_effects.dir/sec62_code_effects.cpp.o"
  "CMakeFiles/sec62_code_effects.dir/sec62_code_effects.cpp.o.d"
  "sec62_code_effects"
  "sec62_code_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_code_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
