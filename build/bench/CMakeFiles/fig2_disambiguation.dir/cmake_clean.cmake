file(REMOVE_RECURSE
  "CMakeFiles/fig2_disambiguation.dir/fig2_disambiguation.cpp.o"
  "CMakeFiles/fig2_disambiguation.dir/fig2_disambiguation.cpp.o.d"
  "fig2_disambiguation"
  "fig2_disambiguation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_disambiguation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
