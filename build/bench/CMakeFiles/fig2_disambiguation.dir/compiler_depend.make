# Empty compiler generated dependencies file for fig2_disambiguation.
# This may be replaced when dependencies are built.
