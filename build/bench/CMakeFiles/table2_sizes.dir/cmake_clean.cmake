file(REMOVE_RECURSE
  "CMakeFiles/table2_sizes.dir/table2_sizes.cpp.o"
  "CMakeFiles/table2_sizes.dir/table2_sizes.cpp.o.d"
  "table2_sizes"
  "table2_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
