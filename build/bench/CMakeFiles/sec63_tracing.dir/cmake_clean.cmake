file(REMOVE_RECURSE
  "CMakeFiles/sec63_tracing.dir/sec63_tracing.cpp.o"
  "CMakeFiles/sec63_tracing.dir/sec63_tracing.cpp.o.d"
  "sec63_tracing"
  "sec63_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec63_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
