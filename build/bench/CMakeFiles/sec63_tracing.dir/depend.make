# Empty dependencies file for sec63_tracing.
# This may be replaced when dependencies are built.
