MODULE WordCount;
(* Builds a frequency table (association list) over words of a few command
   lines; strings are heap arrays, list cells churn constantly. *)
TYPE Text = REF ARRAY OF INTEGER;
     Entry = REF EntryRec;
     EntryRec = RECORD word: Text; count: INTEGER; next: Entry END;
VAR table: Entry; distinct, total: INTEGER;

PROCEDURE SameText(a, b: Text): BOOLEAN;
VAR i: INTEGER;
BEGIN
  IF NUMBER(a) # NUMBER(b) THEN RETURN FALSE END;
  FOR i := 0 TO NUMBER(a) - 1 DO
    IF a[i] # b[i] THEN RETURN FALSE END
  END;
  RETURN TRUE
END SameText;

PROCEDURE Bump(w: Text);
VAR e: Entry;
BEGIN
  e := table;
  WHILE e # NIL DO
    IF SameText(e^.word, w) THEN
      INC(e^.count);
      INC(total);
      RETURN
    END;
    e := e^.next
  END;
  e := NEW(Entry);
  e^.word := w;
  e^.count := 1;
  e^.next := table;
  table := e;
  INC(distinct);
  INC(total)
END Bump;

PROCEDURE Split(line: Text);
VAR i, start: INTEGER; w: Text; j: INTEGER;
BEGIN
  i := 0;
  WHILE i < NUMBER(line) DO
    WHILE (i < NUMBER(line)) AND (line[i] = 32) DO INC(i) END;
    start := i;
    WHILE (i < NUMBER(line)) AND (line[i] # 32) DO INC(i) END;
    IF i > start THEN
      w := NEW(Text, i - start);
      FOR j := start TO i - 1 DO w[j - start] := line[j] END;
      Bump(w)
    END
  END
END Split;

BEGIN
  table := NIL;
  distinct := 0;
  total := 0;
  Split("the quick brown fox jumps over the lazy dog");
  Split("the dog barks and the fox runs");
  Split("quick quick slow");
  PutInt(distinct); PutChar(32); PutInt(total); PutLn();
END WordCount.
