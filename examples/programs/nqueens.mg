MODULE NQueens;
(* Counts solutions to the N-queens problem; the board is a heap array
   passed by reference through the recursion, so every level of the search
   holds live pointers across allocating calls. *)
CONST N = 7;
TYPE Board = REF ARRAY OF INTEGER;
VAR solutions: INTEGER;

PROCEDURE Safe(b: Board; row, col: INTEGER): BOOLEAN;
VAR r: INTEGER;
BEGIN
  FOR r := 0 TO row - 1 DO
    IF (b[r] = col) OR (ABS(b[r] - col) = row - r) THEN
      RETURN FALSE
    END
  END;
  RETURN TRUE
END Safe;

PROCEDURE Copy(b: Board): Board;
VAR c: Board; i: INTEGER;
BEGIN
  c := NEW(Board, NUMBER(b));
  FOR i := 0 TO NUMBER(b) - 1 DO c[i] := b[i] END;
  RETURN c
END Copy;

PROCEDURE Place(b: Board; row: INTEGER);
VAR col: INTEGER; next: Board;
BEGIN
  IF row = N THEN
    INC(solutions);
    RETURN
  END;
  FOR col := 0 TO N - 1 DO
    IF Safe(b, row, col) THEN
      next := Copy(b);        (* fresh board per branch: heavy churn *)
      next[row] := col;
      Place(next, row + 1)
    END
  END
END Place;

VAR empty: Board;
BEGIN
  solutions := 0;
  empty := NEW(Board, N);
  Place(empty, 0);
  PutInt(solutions); PutLn();
END NQueens.
