MODULE Sieve;
(* Sieve of Eratosthenes on a heap array; prints the number of primes
   below Limit and the largest one found. *)
CONST Limit = 2000;
TYPE Flags = REF ARRAY OF BOOLEAN;
VAR flags: Flags; count, largest, j: INTEGER;
BEGIN
  flags := NEW(Flags, Limit);
  FOR i := 2 TO Limit - 1 DO flags[i] := TRUE END;
  FOR i := 2 TO Limit - 1 DO
    IF flags[i] THEN
      j := i + i;
      WHILE j < Limit DO
        flags[j] := FALSE;
        j := j + i
      END
    END
  END;
  count := 0;
  largest := 0;
  FOR i := 2 TO Limit - 1 DO
    IF flags[i] THEN
      INC(count);
      largest := i
    END
  END;
  PutInt(count); PutChar(32); PutInt(largest); PutLn();
END Sieve.
