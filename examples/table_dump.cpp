//===- examples/table_dump.cpp - objdump for MG programs -------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small objdump-style tool: compiles an MG module (from a file path
/// argument, or the embedded takl benchmark by default) and dumps the
/// machine code with each gc-point's decoded tables inline, plus the
/// per-function table-size summary of §5.
///
/// Usage:  table_dump [file.mg] [--noopt]
///
//===----------------------------------------------------------------------===//

#include "codegen/Disasm.h"
#include "driver/Compiler.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace mgc;

namespace {
const char *DefaultSource = R"MG(
MODULE Takl;
TYPE List = REF ListRec;
     ListRec = RECORD head: INTEGER; tail: List END;

PROCEDURE Listn(n: INTEGER): List;
VAR l: List;
BEGIN
  IF n = 0 THEN RETURN NIL END;
  l := NEW(List);
  l^.head := n;
  l^.tail := Listn(n - 1);
  RETURN l
END Listn;

PROCEDURE Shorterp(x, y: List): BOOLEAN;
BEGIN
  IF y = NIL THEN RETURN FALSE END;
  IF x = NIL THEN RETURN TRUE END;
  RETURN Shorterp(x^.tail, y^.tail)
END Shorterp;

PROCEDURE Mas(x, y, z: List): List;
BEGIN
  IF NOT Shorterp(y, x) THEN RETURN z END;
  RETURN Mas(Mas(x^.tail, y, z), Mas(y^.tail, z, x), Mas(z^.tail, x, y))
END Mas;

VAR r: List;
BEGIN
  r := Mas(Listn(18), Listn(12), Listn(6));
END Takl.
)MG";
} // namespace

int main(int argc, char **argv) {
  std::string Source = DefaultSource;
  driver::CompilerOptions Options;
  Options.OptLevel = 2;
  for (int A = 1; A < argc; ++A) {
    if (std::strcmp(argv[A], "--noopt") == 0) {
      Options.OptLevel = 0;
      continue;
    }
    std::ifstream In(argv[A]);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", argv[A]);
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  auto Compiled = driver::compile(Source, Options);
  if (!Compiled.Prog) {
    std::fprintf(stderr, "compile errors:\n%s", Compiled.Diags.str().c_str());
    return 1;
  }
  vm::Program &Prog = *Compiled.Prog;

  std::printf("module %s: %zu code bytes, %u functions\n\n",
              Prog.Name.c_str(), Prog.codeSizeBytes(),
              static_cast<unsigned>(Prog.Funcs.size()));
  for (unsigned F = 0; F != Prog.Funcs.size(); ++F)
    std::printf("%s\n",
                codegen::disassembleFunction(Prog, F, /*WithTables=*/true)
                    .c_str());

  std::printf("table summary: NGC=%u NPTRS=%u NDEL=%u NREG=%u NDER=%u\n",
              Prog.Stats.NGC, Prog.Stats.NPTRS, Prog.Stats.NDEL,
              Prog.Stats.NREG, Prog.Stats.NDER);
  std::printf("sizes: full-info plain=%zuB packed=%zuB | delta-main "
              "plain=%zuB previous=%zuB packed=%zuB pp=%zuB (+%zuB pc map)\n",
              Prog.Sizes.FullPlain, Prog.Sizes.FullPack,
              Prog.Sizes.DeltaPlain, Prog.Sizes.DeltaPrev,
              Prog.Sizes.DeltaPack, Prog.Sizes.DeltaPP,
              Prog.Sizes.PcMapBytes);
  return 0;
}
