//===- examples/quickstart.cpp - Compile and run an MG program -------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 60-second tour of the public API: compile an MG module, install the
/// precise collector, run it, and look at the statistics.  The program
/// builds linked lists in a heap too small to hold all of them, so the
/// collector must actually reclaim and compact.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "gc/Collector.h"
#include "vm/VM.h"

#include <cstdio>

using namespace mgc;

namespace {
const char *Source = R"MG(
MODULE Quickstart;
TYPE List = REF ListRec;
     ListRec = RECORD head: INTEGER; tail: List END;

PROCEDURE Range(lo, hi: INTEGER): List;
VAR l: List;
BEGIN
  IF lo > hi THEN RETURN NIL END;
  l := NEW(List);
  l^.head := lo;
  l^.tail := Range(lo + 1, hi);
  RETURN l
END Range;

PROCEDURE Sum(l: List): INTEGER;
VAR s: INTEGER;
BEGIN
  s := 0;
  WHILE l # NIL DO
    s := s + l^.head;
    l := l^.tail
  END;
  RETURN s
END Sum;

VAR total: INTEGER;
BEGIN
  total := 0;
  FOR k := 1 TO 200 DO
    total := total + Sum(Range(1, k))   (* each list dies immediately *)
  END;
  PutInt(total); PutLn();
END Quickstart.
)MG";
} // namespace

int main() {
  // 1. Compile.  Options select optimization level, gc tables, the
  //    disambiguation strategy, CISC folding, and threaded-mode polls.
  driver::CompilerOptions Options;
  Options.OptLevel = 2;
  driver::CompileResult Compiled = driver::compile(Source, Options);
  if (!Compiled.Prog) {
    std::fprintf(stderr, "compile errors:\n%s", Compiled.Diags.str().c_str());
    return 1;
  }
  vm::Program &Prog = *Compiled.Prog;

  std::printf("compiled %s: %zu code bytes, %u gc-points, "
              "%zu bytes of gc tables (delta-main, packed)\n",
              Prog.Name.c_str(), Prog.codeSizeBytes(), Prog.Stats.NGC,
              Prog.Sizes.DeltaPP);

  // 2. Run on the VM with the table-driven precise collector and a heap
  //    far too small for the garbage the program produces.
  vm::VMOptions VO;
  VO.HeapBytes = 16u << 10;
  vm::VM Machine(Prog, VO);
  gc::installPreciseCollector(Machine);
  if (!Machine.run()) {
    std::fprintf(stderr, "runtime error: %s\n", Machine.Error.c_str());
    return 1;
  }

  // 3. Results.
  std::printf("program output: %s", Machine.Out.c_str());
  std::printf("collections: %llu, bytes copied: %llu, frames traced: %llu, "
              "derived values adjusted: %llu\n",
              static_cast<unsigned long long>(Machine.Stats.Collections),
              static_cast<unsigned long long>(Machine.Stats.BytesCopied),
              static_cast<unsigned long long>(Machine.Stats.FramesTraced),
              static_cast<unsigned long long>(Machine.Stats.DerivedAdjusted));
  return 0;
}
