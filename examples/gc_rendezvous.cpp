//===- examples/gc_rendezvous.cpp - §5.3: threads reach gc-points ----------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-threaded gc-point story of §5.3.  Threads are pre-empted at
/// arbitrary instructions; when one triggers a collection, the others are
/// resumed until each reaches a gc-point.  A loop with no calls would make
/// that wait unbounded, so the compiler inserts a poll in every loop
/// without a guaranteed gc-point.  This example runs the same program both
/// ways: with polls it completes; without them the rendezvous fails.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "gc/Collector.h"
#include "vm/VM.h"

#include <cstdio>

using namespace mgc;

namespace {
const char *Source = R"MG(
MODULE Rendezvous;
TYPE R = REF RECORD v: INTEGER; n: R END;
VAR produced: INTEGER; done: BOOLEAN; head: R;

PROCEDURE Consumer();
(* A long computation with no calls and no allocation: the paper's worst
   case for the rendezvous.  Only a compiler-inserted loop poll lets this
   thread reach a gc-point in bounded time. *)
VAR i, acc: INTEGER;
BEGIN
  i := 0;
  acc := 0;
  WHILE NOT done DO
    acc := (acc + i * i) MOD 65521;
    INC(i)
  END;
  produced := produced + acc MOD 2  (* keep acc observable *)
END Consumer;

BEGIN
  done := FALSE;
  produced := 0;
  FOR k := 1 TO 600 DO
    head := NEW(R);            (* allocation pressure forces collections *)
    head^.v := k;
    INC(produced)
  END;
  done := TRUE;
  PutInt(produced); PutLn();
END Rendezvous.
)MG";

int runOnce(bool WithPolls) {
  driver::CompilerOptions Options;
  Options.ThreadedPolls = WithPolls;
  auto Compiled = driver::compile(Source, Options);
  if (!Compiled.Prog) {
    std::fprintf(stderr, "compile errors:\n%s", Compiled.Diags.str().c_str());
    return 1;
  }
  vm::Program &Prog = *Compiled.Prog;

  unsigned ConsumerIdx = 0;
  for (unsigned F = 0; F != Prog.Funcs.size(); ++F)
    if (Prog.Funcs[F].Name == "Consumer")
      ConsumerIdx = F;

  vm::VMOptions VO;
  VO.HeapBytes = 8u << 10; // Tiny: main collects many times.
  vm::VM Machine(Prog, VO);
  gc::installPreciseCollector(Machine);
  Machine.spawnThread(ConsumerIdx);
  Machine.spawnThread(ConsumerIdx);

  bool Ok = Machine.run();
  std::printf("  loop polls inserted: %u\n", Prog.LoopPolls);
  if (Ok) {
    std::printf("  completed: output=%s  collections=%llu  rendezvous "
                "steps=%llu\n",
                Machine.Out.substr(0, Machine.Out.find('\n')).c_str(),
                static_cast<unsigned long long>(Machine.Stats.Collections),
                static_cast<unsigned long long>(
                    Machine.Stats.RendezvousSteps));
  } else {
    std::printf("  FAILED as predicted: %s\n", Machine.Error.c_str());
  }
  return 0;
}
} // namespace

int main() {
  std::printf("With loop polls (ThreadedPolls=true):\n");
  runOnce(true);
  std::printf("\nWithout loop polls (ThreadedPolls=false):\n");
  runOnce(false);
  std::printf("\nThe poll is the paper's bound on how long a pre-empted "
              "thread can keep the\ncollector waiting (§5.3).\n");
  return 0;
}
