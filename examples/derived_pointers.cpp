//===- examples/derived_pointers.cpp - Figure 1 in action ------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the derived-value machinery of §2/§3 end to end:
///
///  1. A procedure whose optimized loop walks a heap array with a
///     strength-reduced pointer (`*p++`-style) — plus a WITH alias, an
///     interior pointer.
///  2. The compiler's derivations tables for its gc-points, printed in the
///     spirit of Figure 1 ("a = +b1 +b3 -b2 + E").
///  3. A stressed run where every one of those derived values is
///     un-derived and re-derived around real object motion.
///
//===----------------------------------------------------------------------===//

#include "codegen/Disasm.h"
#include "driver/Compiler.h"
#include "gc/Collector.h"
#include "vm/VM.h"

#include <cstdio>

using namespace mgc;

namespace {
const char *Source = R"MG(
MODULE Derived;
TYPE A = REF ARRAY [1..24] OF INTEGER;
     R = REF RECORD x, y, z: INTEGER END;
VAR arr: A; rec: R; junk: R; total: INTEGER;

PROCEDURE Fill(p: A);
(* Optimizes to a pointer walk: p's element address is a derived value,
   self-updated each iteration, whose base must stay live (§4 dead base). *)
VAR i: INTEGER;
BEGIN
  FOR i := 1 TO 24 DO
    GcCollect();           (* collection with the walking pointer live *)
    p[i] := i
  END
END Fill;

PROCEDURE Bump(VAR cell: INTEGER);
(* The call-by-reference interior pointer: live at exactly one gc-point,
   the call (§5.1). *)
BEGIN
  junk := NEW(R);
  cell := cell + 100
END Bump;

BEGIN
  arr := NEW(A);
  rec := NEW(R);
  Fill(arr);
  WITH field = rec^.z DO    (* WITH alias: an interior pointer *)
    field := 5;
    junk := NEW(R);
    GcCollect();
    field := field + 2
  END;
  Bump(arr[7]);
  total := 0;
  FOR i := 1 TO 24 DO total := total + arr[i] END;
  PutInt(total); PutChar(32); PutInt(rec^.z); PutLn();
END Derived.
)MG";
} // namespace

int main() {
  driver::CompilerOptions Options;
  Options.OptLevel = 2;
  auto Compiled = driver::compile(Source, Options);
  if (!Compiled.Prog) {
    std::fprintf(stderr, "compile errors:\n%s", Compiled.Diags.str().c_str());
    return 1;
  }
  vm::Program &Prog = *Compiled.Prog;

  std::printf("=== Derivations tables (Figure 1 style) ===\n\n");
  std::printf("Every gc-point annotation below shows the live tidy pointer "
              "locations and, for\neach live derived value, its derivation "
              "'target = +base1 -base2 ... + E'.\n\n");
  for (unsigned F = 0; F != Prog.Funcs.size(); ++F) {
    // Only show functions that actually have derivations.
    bool HasDerivs = false;
    for (unsigned K = 0; K != Prog.Maps[F].RetPCs.size(); ++K)
      if (!gcmaps::decodeGcPoint(Prog.Maps[F], K).Derivs.empty())
        HasDerivs = true;
    if (HasDerivs)
      std::printf("%s\n",
                  codegen::disassembleFunction(Prog, F, /*WithTables=*/true)
                      .c_str());
  }

  std::printf("=== Stressed run ===\n\n");
  vm::VMOptions VO;
  VO.GcStress = true; // Collect before every allocation, too.
  VO.HeapBytes = 64u << 10;
  vm::VM Machine(Prog, VO);
  gc::installPreciseCollector(Machine);
  if (!Machine.run()) {
    std::fprintf(stderr, "runtime error: %s\n", Machine.Error.c_str());
    return 1;
  }
  std::printf("output (expected '400 7'): %s", Machine.Out.c_str());
  std::printf("collections: %llu, derived values adjusted: %llu\n",
              static_cast<unsigned long long>(Machine.Stats.Collections),
              static_cast<unsigned long long>(Machine.Stats.DerivedAdjusted));
  std::printf("\nEvery adjustment subtracted the base values before the "
              "move and re-added the\nrelocated bases afterwards (§3's "
              "two-step update), so interior and even\nout-of-object "
              "pointers survived compaction.\n");
  return 0;
}
