//===- tests/PauseTest.cpp - Bounded-pause accounting and parallel GC ------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pause-event invariants and parallel-collector determinism:
///
///  - every committed GcEvent's phase nanos partition its TotalNanos, its
///    RendezvousSteps are the per-collection delta of the VM counter, and
///    committed events correspond 1:1 with VMStats::Collections — at
///    --gc-threads 1, 2, and 4 over the §6 programs and the frozen corpus;
///  - --gc-threads 1 is bit-identical to the default collector (including
///    the decode-cache counters); higher thread counts reproduce every
///    deterministic observable except the per-worker cache split;
///  - the §5.3 per-thread handshake's budget-exhaustion diagnostic is
///    deterministic and identical across both dispatch tiers, and failed
///    runs still flush a parseable trace in both tiers;
///  - mgc-report's renderer handles a zero-collection trace.
///
/// These suites carry the `gc` ctest label (see tests/CMakeLists.txt) and
/// are the ones tools/check.sh additionally builds under ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#include "Corpus.h"
#include "Programs.h"
#include "TestUtil.h"

#include "obs/Report.h"
#include "obs/Trace.h"

#include <sstream>

using namespace mgc;
using namespace mgc::test;

namespace {

//===----------------------------------------------------------------------===//
// Traced parallel-run helper
//===----------------------------------------------------------------------===//

struct PauseRun {
  bool Ok = false;
  std::string Out;
  std::string Error;
  vm::VMStats Stats;
  std::vector<obs::GcEvent> Events; ///< Committed events, oldest first.
  uint64_t EventCount = 0;
  std::string Trace; ///< Full JSONL text.
};

/// Compiles and runs \p Source with a tracer attached and the collector at
/// \p GcThreads workers.  Honours MGC_TEST_GEN_GC like
/// test::compileAndRun, so the tier-1 generational sweep also exercises
/// the parallel root walk in front of minor collections.
PauseRun runPause(const std::string &Source, unsigned GcThreads,
                  size_t HeapBytes,
                  vm::DispatchTier Tier = vm::DispatchTier::Threaded,
                  bool CrossCheck = false, bool UseDefaultCollector = false,
                  uint64_t RendezvousBudget = 0, unsigned SpawnSpin = 0) {
  PauseRun R;
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  CO.ThreadedPolls = SpawnSpin != 0 && RendezvousBudget == 0;
  vm::VMOptions VO;
  VO.HeapBytes = HeapBytes;
  VO.Dispatch = Tier;
  if (RendezvousBudget)
    VO.RendezvousBudget = RendezvousBudget;
  gc::CollectorOptions GCO;
  if (!UseDefaultCollector) {
    GCO.Threads = GcThreads;
    GCO.CrossCheck = CrossCheck;
  }
  if (std::getenv("MGC_TEST_GEN_GC")) {
    CO.WriteBarriers = true;
    VO.GenGc = true;
    VO.NurseryBytes = 4u << 10;
    GCO.CrossCheck = true;
  }
  auto C = driver::compile(Source, CO);
  if (!C.Prog) {
    ADD_FAILURE() << "compilation failed:\n" << C.Diags.str();
    return R;
  }
  vm::VM M(*C.Prog, VO);
  gc::installPreciseCollector(M, GCO);
  if (SpawnSpin) {
    unsigned SpinIdx = 0;
    for (unsigned I = 0; I != C.Prog->Funcs.size(); ++I)
      if (C.Prog->Funcs[I].Name == "Spin")
        SpinIdx = I;
    for (unsigned I = 0; I != SpawnSpin; ++I)
      M.spawnThread(SpinIdx);
  }

  obs::TracerConfig TC;
  TC.ProgramName = "pause-test";
  obs::Tracer Tracer(std::move(TC));
  std::ostringstream OS;
  Tracer.enable(&OS);
  M.Tracer = &Tracer;

  R.Ok = M.run();
  Tracer.finish(R.Ok, M.Error);
  R.Out = M.Out;
  R.Error = M.Error;
  R.Stats = M.Stats;
  R.Events = Tracer.retainedEvents();
  R.EventCount = Tracer.eventCount();
  R.Trace = OS.str();
  return R;
}

/// The deterministic observables the parallel collector must reproduce at
/// any worker count (the per-worker decode-cache hit/miss split is
/// checked separately: it is only pinned at one worker).
void expectCoreEqual(const PauseRun &A, const PauseRun &B) {
  EXPECT_EQ(A.Out, B.Out);
  EXPECT_EQ(A.Stats.Instrs, B.Stats.Instrs);
  EXPECT_EQ(A.Stats.Collections, B.Stats.Collections);
  EXPECT_EQ(A.Stats.RootsTraced, B.Stats.RootsTraced);
  EXPECT_EQ(A.Stats.FramesTraced, B.Stats.FramesTraced);
  EXPECT_EQ(A.Stats.ObjectsCopied, B.Stats.ObjectsCopied);
  EXPECT_EQ(A.Stats.BytesCopied, B.Stats.BytesCopied);
  EXPECT_EQ(A.Stats.DerivedAdjusted, B.Stats.DerivedAdjusted);
  EXPECT_EQ(A.Stats.RendezvousSteps, B.Stats.RendezvousSteps);
}

//===----------------------------------------------------------------------===//
// Pause-event invariants
//===----------------------------------------------------------------------===//

void checkEventInvariants(const PauseRun &R, unsigned GcThreads) {
  // Committed events correspond 1:1 with collections: beginEvent fires
  // only after a successful rendezvous, commitEvent before control
  // returns to the mutator.
  EXPECT_EQ(R.EventCount, R.Stats.Collections);
  uint64_t StepSum = 0, HitSum = 0, MissSum = 0;
  for (const obs::GcEvent &Ev : R.Events) {
    // The six phase timers partition the pause: they are carved out of
    // the same two clock readings that produce TotalNanos, with no gap
    // and no overlap.
    uint64_t PhaseSum = Ev.Phases.Rendezvous + Ev.Phases.StackTrace +
                        Ev.Phases.Underive + Ev.Phases.Copy +
                        Ev.Phases.RemsetRebuild + Ev.Phases.Rederive;
    EXPECT_EQ(PhaseSum, Ev.TotalNanos) << "event " << Ev.Seq;
    EXPECT_EQ(Ev.Workers, GcThreads) << "event " << Ev.Seq;
    for (unsigned W = Ev.Workers; W != obs::MaxGcWorkers; ++W) {
      EXPECT_EQ(Ev.WorkerTraceNanos[W], 0u);
      EXPECT_EQ(Ev.WorkerCopyNanos[W], 0u);
    }
    StepSum += Ev.RendezvousSteps;
    HitSum += Ev.CacheHits;
    MissSum += Ev.CacheMisses;
  }
  if (R.EventCount == R.Events.size()) {
    // Per-event counters are deltas of the VM counters; with no events
    // dropped from the ring they must sum back to the totals.
    EXPECT_EQ(StepSum, R.Stats.RendezvousSteps);
    EXPECT_EQ(HitSum, R.Stats.DecodeCacheHits);
    EXPECT_EQ(MissSum, R.Stats.DecodeCacheMisses);
  }
  if (GcThreads == 1) {
    // Serially, every traced frame is exactly one cache probe.
    EXPECT_EQ(R.Stats.DecodeCacheHits + R.Stats.DecodeCacheMisses,
              R.Stats.FramesTraced);
  }
}

TEST(PauseInvariants, Section6Programs) {
  for (const programs::NamedProgram &P : programs::All) {
    for (unsigned N : {1u, 2u, 4u}) {
      SCOPED_TRACE(std::string(P.Name) + " gc-threads " + std::to_string(N));
      PauseRun R = runPause(P.Source, N, /*HeapBytes=*/64u << 10);
      ASSERT_TRUE(R.Ok) << R.Error;
      EXPECT_EQ(R.Out, P.Expected);
      checkEventInvariants(R, N);
    }
  }
}

TEST(PauseInvariants, FrozenCorpus) {
  ASSERT_FALSE(corpus().empty());
  for (const CorpusProgram &P : corpus()) {
    for (unsigned N : {1u, 2u, 4u}) {
      SCOPED_TRACE(P.Name + " gc-threads " + std::to_string(N));
      PauseRun R = runPause(P.Source, N, /*HeapBytes=*/64u << 10);
      ASSERT_TRUE(R.Ok) << R.Error;
      checkEventInvariants(R, N);
    }
  }
}

//===----------------------------------------------------------------------===//
// Parallel-collector determinism
//===----------------------------------------------------------------------===//

TEST(PauseParallel, ThreadsOneIsBitIdenticalToDefault) {
  for (const programs::NamedProgram &P : programs::All) {
    SCOPED_TRACE(P.Name);
    PauseRun Def = runPause(P.Source, 1, /*HeapBytes=*/64u << 10,
                            vm::DispatchTier::Threaded, /*CrossCheck=*/false,
                            /*UseDefaultCollector=*/true);
    PauseRun N1 = runPause(P.Source, 1, /*HeapBytes=*/64u << 10);
    ASSERT_TRUE(Def.Ok) << Def.Error;
    ASSERT_TRUE(N1.Ok) << N1.Error;
    expectCoreEqual(Def, N1);
    // One worker runs the pre-parallel serial path: even the cache
    // counters are pinned.
    EXPECT_EQ(Def.Stats.DecodeCacheHits, N1.Stats.DecodeCacheHits);
    EXPECT_EQ(Def.Stats.DecodeCacheMisses, N1.Stats.DecodeCacheMisses);
  }
}

TEST(PauseParallel, HigherWorkerCountsReproduceObservables) {
  for (const programs::NamedProgram &P : programs::All) {
    SCOPED_TRACE(P.Name);
    PauseRun N1 = runPause(P.Source, 1, /*HeapBytes=*/64u << 10);
    ASSERT_TRUE(N1.Ok) << N1.Error;
    for (unsigned N : {2u, 4u}) {
      PauseRun R = runPause(P.Source, N, /*HeapBytes=*/64u << 10);
      ASSERT_TRUE(R.Ok) << R.Error;
      expectCoreEqual(N1, R);
    }
    // And with the §3 decode cross-check auditing every parallel trace.
    PauseRun XC = runPause(P.Source, 4, /*HeapBytes=*/64u << 10,
                           vm::DispatchTier::Threaded, /*CrossCheck=*/true);
    ASSERT_TRUE(XC.Ok) << XC.Error;
    expectCoreEqual(N1, XC);
    // The switch tier shares the collector and the handshake engine.
    PauseRun Sw = runPause(P.Source, 4, /*HeapBytes=*/64u << 10,
                           vm::DispatchTier::Switch);
    ASSERT_TRUE(Sw.Ok) << Sw.Error;
    expectCoreEqual(N1, Sw);
  }
}

//===----------------------------------------------------------------------===//
// Rendezvous-budget diagnostic (§5.3 per-thread handshakes)
//===----------------------------------------------------------------------===//

/// Main allocates; Spin loops without ever reaching a gc-point when
/// compiled without loop polls.
const char *NoPollSpinSource = R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER; n: R END;
VAR done: BOOLEAN; head: R;

PROCEDURE Spin();
VAR i: INTEGER;
BEGIN
  i := 0;
  WHILE NOT done DO INC(i) END
END Spin;

BEGIN
  done := FALSE;
  FOR k := 1 TO 400 DO
    head := NEW(R);
    head^.v := k
  END;
  done := TRUE;
  PutInt(head^.v); PutLn();
END M.)";

TEST(PauseRendezvous, BudgetExhaustionDiagnosticIsDeterministic) {
  auto Run = [&](vm::DispatchTier Tier) {
    return runPause(NoPollSpinSource, 1, /*HeapBytes=*/8u << 10, Tier,
                    /*CrossCheck=*/false, /*UseDefaultCollector=*/false,
                    /*RendezvousBudget=*/1000, /*SpawnSpin=*/1);
  };
  PauseRun A = Run(vm::DispatchTier::Threaded);
  ASSERT_FALSE(A.Ok);
  EXPECT_NE(A.Error.find("rendezvous budget exhausted"), std::string::npos)
      << A.Error;
  EXPECT_NE(A.Error.find("thread 1"), std::string::npos) << A.Error;
  EXPECT_NE(A.Error.find("loop polls"), std::string::npos) << A.Error;

  // Deterministic: the same run produces the same diagnostic (same
  // offending thread, same pc), and both dispatch tiers agree — the
  // handshake engine is shared.
  PauseRun B = Run(vm::DispatchTier::Threaded);
  EXPECT_EQ(A.Error, B.Error);
  PauseRun C = Run(vm::DispatchTier::Switch);
  EXPECT_EQ(A.Error, C.Error);
  expectCoreEqual(A, C);

  // The failed partial run still flushes coherent stats and a parseable
  // trace: the budget fails the rendezvous *before* the collection is
  // counted, so events == Collections holds and the mutator's progress
  // up to the failing gc-point is preserved.
  for (const PauseRun *R : {&A, &C}) {
    EXPECT_EQ(R->EventCount, R->Stats.Collections);
    std::istringstream In(R->Trace);
    obs::TraceReport Report;
    std::string Err;
    ASSERT_TRUE(obs::readTrace(In, Report, Err)) << Err;
    ASSERT_TRUE(Report.HasRun);
    EXPECT_FALSE(Report.RunOk);
    EXPECT_NE(Report.RunError.find("rendezvous budget exhausted"),
              std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// Threaded-tier error-path flush
//===----------------------------------------------------------------------===//

TEST(PauseThreadedFlush, FailedRunFlushesTraceInBothTiers) {
  // Unbounded list growth: dies with "heap exhausted" after several
  // successful collections.  Both tiers must leave a complete trace.
  const char *Leak = R"(MODULE Leak;
TYPE Node = REF RECORD next: Node; pad: INTEGER END;
VAR head: Node; n: Node;
BEGIN
  WHILE TRUE DO
    n := NEW(Node);
    n.next := head;
    head := n
  END;
END Leak.
)";
  for (vm::DispatchTier Tier :
       {vm::DispatchTier::Threaded, vm::DispatchTier::Switch}) {
    for (unsigned N : {1u, 4u}) {
      SCOPED_TRACE(std::string(vm::dispatchTierName(Tier)) + " gc-threads " +
                   std::to_string(N));
      PauseRun R = runPause(Leak, N, /*HeapBytes=*/8u << 10, Tier);
      ASSERT_FALSE(R.Ok);
      EXPECT_NE(R.Error.find("heap exhausted"), std::string::npos)
          << R.Error;
      EXPECT_GT(R.Stats.Collections, 0u);
      checkEventInvariants(R, N);
      std::istringstream In(R.Trace);
      obs::TraceReport Report;
      std::string Err;
      ASSERT_TRUE(obs::readTrace(In, Report, Err)) << Err;
      ASSERT_TRUE(Report.HasRun);
      EXPECT_FALSE(Report.RunOk);
      EXPECT_EQ(Report.Events.size(), R.Stats.Collections);
      std::string Rendered = obs::renderReport(Report, /*TopN=*/5);
      EXPECT_NE(Rendered.find("FAILED"), std::string::npos);
    }
  }
}

//===----------------------------------------------------------------------===//
// Zero-collection report
//===----------------------------------------------------------------------===//

TEST(PauseReport, ZeroCollectionTraceRendersCleanly) {
  const char *Tiny = R"(MODULE Tiny;
VAR x: INTEGER;
BEGIN
  x := 41;
  PutInt(x + 1); PutLn();
END Tiny.
)";
  // 4 MiB default heap: no collection ever triggers.
  PauseRun R = runPause(Tiny, 1, /*HeapBytes=*/4u << 20);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "42\n");
  EXPECT_EQ(R.Stats.Collections, 0u);
  std::istringstream In(R.Trace);
  obs::TraceReport Report;
  std::string Err;
  ASSERT_TRUE(obs::readTrace(In, Report, Err)) << Err;
  EXPECT_TRUE(Report.Events.empty());
  std::string Rendered = obs::renderReport(Report, /*TopN=*/5);
  EXPECT_NE(Rendered.find("no collections recorded"), std::string::npos)
      << Rendered;
}

} // namespace
