//===- tests/GCTest.cpp - Precise collection correctness -------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each test forces collections at interesting moments (GcCollect calls or
/// GcStress mode) and checks both the program result and collector
/// statistics.  Frames are poisoned and tidy roots assert-validated, so an
/// imprecise table crashes rather than silently passing.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mgc;
using namespace mgc::test;

namespace {

RunResult runStressed(const std::string &Src, driver::CompilerOptions CO = {},
                      size_t HeapBytes = 1u << 16) {
  vm::VMOptions VO;
  VO.GcStress = true;
  VO.HeapBytes = HeapBytes;
  return compileAndRun(Src, CO, VO);
}

TEST(GC, MovesObjectsAndUpdatesTidyPointers) {
  RunResult R = runStressed(R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER; next: R END;
VAR head, n: R; s: INTEGER;
BEGIN
  head := NIL;
  FOR i := 1 TO 50 DO
    n := NEW(R);
    n^.v := i;
    n^.next := head;
    head := n
  END;
  s := 0;
  WHILE head # NIL DO s := s + head^.v; head := head^.next END;
  PutInt(s); PutLn();
END M.)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "1275\n");
  EXPECT_GT(R.Stats.Collections, 10u);
  EXPECT_GT(R.Stats.BytesCopied, 0u);
}

TEST(GC, CollectionAtExplicitGcPointWithLiveDerived) {
  // A strength-reduced array walk with a collection inside the loop: the
  // derived pointer must be un-derived and re-derived around every move.
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  RunResult R = compileAndRun(R"(
MODULE M;
TYPE A = REF ARRAY [1..16] OF INTEGER;
PROCEDURE Fill(p: A);
VAR i: INTEGER;
BEGIN
  FOR i := 1 TO 16 DO
    GcCollect();       (* gc-point inside the strength-reduced loop *)
    p[i] := i * 3
  END
END Fill;
PROCEDURE Sum(p: A): INTEGER;
VAR i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 16 DO
    s := s + p[i];
    GcCollect()
  END;
  RETURN s
END Sum;
VAR a: A;
BEGIN
  a := NEW(A);
  Fill(a);
  PutInt(Sum(a)); PutLn();
END M.)",
                              CO);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "408\n");
  EXPECT_GE(R.Stats.Collections, 32u);
  EXPECT_GT(R.Stats.DerivedAdjusted, 0u)
      << "the optimized loop should carry a derived pointer across the "
         "collection";
}

TEST(GC, VirtualOriginPointerOutsideObjectSurvives) {
  // ARRAY [7..13]: the virtual origin points *before* the object; it must
  // still be adjusted correctly.
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  RunResult R = compileAndRun(R"(
MODULE M;
TYPE A = REF ARRAY [7..13] OF INTEGER;
PROCEDURE Sum(p: A): INTEGER;
VAR s, i: INTEGER;
BEGIN
  s := 0;
  FOR i := 7 TO 13 DO
    GcCollect();
    s := s + p[i]
  END;
  RETURN s
END Sum;
VAR a: A;
BEGIN
  a := NEW(A);
  FOR i := 7 TO 13 DO a[i] := i END;
  PutInt(Sum(a)); PutLn();
END M.)",
                              CO);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "70\n");
  EXPECT_GT(R.Stats.DerivedAdjusted, 0u);
}

TEST(GC, InteriorPointerFromWithSurvivesCollection) {
  // WITH binds the address of a heap record field: an untidy interior
  // pointer live across collections.
  RunResult R = runStressed(R"(
MODULE M;
TYPE R = REF RECORD a, b, c: INTEGER END;
VAR r: R; junk: R;
BEGIN
  r := NEW(R);
  WITH f = r^.c DO
    f := 1;
    junk := NEW(R);     (* may move r while f's address is live *)
    f := f + 10;
    junk := NEW(R);
    f := f + 100
  END;
  PutInt(r^.c); PutLn();
END M.)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "111\n");
  EXPECT_GT(R.Stats.DerivedAdjusted, 0u);
}

TEST(GC, VarParameterIntoHeapUpdatedAcrossCollection) {
  // The call-by-reference case the paper highlights: the argument is an
  // interior pointer live at the call gc-point; the callee allocates, so
  // the object moves while the callee holds the address.
  RunResult R = runStressed(R"(
MODULE M;
TYPE A = REF ARRAY [1..8] OF INTEGER;
VAR a: A;
PROCEDURE Fill(VAR x: INTEGER; v: INTEGER);
VAR junk: A;
BEGIN
  junk := NEW(A);    (* forces a move under stress *)
  x := v;
  junk := NEW(A);
  x := x + 1
END Fill;
BEGIN
  a := NEW(A);
  Fill(a[5], 41);
  PutInt(a[5]); PutLn();
END M.)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "42\n");
}

TEST(GC, VarParameterForwardingChain) {
  // VAR params forwarded through two frames: the derivation chain
  // (outgoing slot <- incoming slot <- caller's derived arg) must update
  // innermost-first and re-derive outermost-first (§3's ordering).
  RunResult R = runStressed(R"(
MODULE M;
TYPE A = REF ARRAY [1..4] OF INTEGER;
VAR a: A;
PROCEDURE Leaf(VAR x: INTEGER);
VAR junk: A;
BEGIN
  junk := NEW(A);
  x := x * 2;
  junk := NEW(A);
  x := x + 1
END Leaf;
PROCEDURE Mid(VAR y: INTEGER);
VAR junk: A;
BEGIN
  junk := NEW(A);
  Leaf(y);
  junk := NEW(A)
END Mid;
BEGIN
  a := NEW(A);
  a[2] := 10;
  Mid(a[2]);
  PutInt(a[2]); PutLn();
END M.)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "21\n");
}

TEST(GC, DeadBaseKeptAliveForDerivedValue) {
  // After strength reduction the array base has no explicit uses inside
  // the loop; the dead-base rule must keep it live so the walking pointer
  // can be updated.
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  RunResult R = compileAndRun(R"(
MODULE M;
TYPE A = REF ARRAY [1..12] OF INTEGER;
PROCEDURE Init(p: A);
VAR i: INTEGER;
BEGIN
  FOR i := 1 TO 12 DO
    p[i] := 13;
    GcCollect()
  END
END Init;
VAR a: A; s: INTEGER;
BEGIN
  a := NEW(A);
  Init(a);
  s := 0;
  FOR i := 1 TO 12 DO s := s + a[i] END;
  PutInt(s); PutLn();
END M.)",
                              CO);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "156\n");
  EXPECT_GT(R.Stats.DerivedAdjusted, 0u);
}

TEST(GC, AmbiguousDerivationResolvedByPathVariable) {
  const char *Src = R"(
MODULE M;
TYPE Arr = REF ARRAY [1..8] OF INTEGER;
VAR a, b: Arr; r: INTEGER;

PROCEDURE Use(x: INTEGER): INTEGER;
VAR junk: Arr;
BEGIN
  junk := NEW(Arr);    (* every call collects under stress *)
  RETURN x
END Use;

PROCEDURE Work(inv: BOOLEAN; p, q: Arr): INTEGER;
VAR i, s, v: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 8 DO
    IF inv THEN v := p[i] ELSE v := q[i] END;
    s := s + Use(v)
  END;
  RETURN s
END Work;

BEGIN
  a := NEW(Arr);
  b := NEW(Arr);
  FOR i := 1 TO 8 DO
    a[i] := i;
    b[i] := 10 * i
  END;
  r := Work(TRUE, a, b) * 1000 + Work(FALSE, a, b);
  PutInt(r); PutLn();
END M.)";

  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  CO.Mode = driver::Disambiguation::PathVariables;
  vm::VMOptions VO;
  VO.GcStress = true;
  VO.HeapBytes = 1u << 16;
  RunResult R = compileAndRun(Src, CO, VO);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "36360\n");
  EXPECT_GT(R.PathVars, 0u) << "the scenario must create a path variable";
  EXPECT_GT(R.Stats.Collections, 16u);

  // Path splitting gives the same behavior with no path variables but more
  // code (Fig. 2's trade-off).
  driver::CompilerOptions Split = CO;
  Split.Mode = driver::Disambiguation::PathSplitting;
  RunResult RS = compileAndRun(Src, Split, VO);
  ASSERT_TRUE(RS.Ok) << RS.Error;
  EXPECT_EQ(RS.Out, "36360\n");
  EXPECT_EQ(RS.PathVars, 0u);
  EXPECT_GT(RS.CodeBytes, R.CodeBytes);
}

TEST(GC, GlobalRootsUpdated) {
  RunResult R = runStressed(R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER END;
VAR g1, g2: R;
PROCEDURE Churn();
VAR t: R;
BEGIN
  FOR i := 1 TO 30 DO
    t := NEW(R);
    t^.v := i
  END
END Churn;
BEGIN
  g1 := NEW(R); g1^.v := 7;
  g2 := NEW(R); g2^.v := 9;
  Churn();
  PutInt(g1^.v * 10 + g2^.v); PutLn();
END M.)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "79\n");
}

TEST(GC, PointersInFrameAggregatesTraced) {
  // A local array of REFs lives in frame slots; each contained pointer is
  // a separate ground-table entry.
  RunResult R = runStressed(R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER END;
VAR s: INTEGER;
PROCEDURE Work(): INTEGER;
VAR box: ARRAY [0..4] OF R; t: INTEGER;
BEGIN
  FOR i := 0 TO 4 DO
    box[i] := NEW(R);
    box[i]^.v := i + 1
  END;
  t := 0;
  FOR i := 0 TO 4 DO t := t + box[i]^.v END;
  RETURN t
END Work;
BEGIN
  s := Work();
  PutInt(s); PutLn();
END M.)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "15\n");
}

TEST(GC, OpenArrayOfRefsScanned) {
  RunResult R = runStressed(R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER END;
     V = REF ARRAY OF R;
VAR v: V; s: INTEGER;
BEGIN
  v := NEW(V, 20);
  FOR i := 0 TO 19 DO
    v[i] := NEW(R);
    v[i]^.v := i
  END;
  s := 0;
  FOR i := 0 TO 19 DO s := s + v[i]^.v END;
  PutInt(s); PutLn();
END M.)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "190\n");
}

TEST(GC, DeepCallChainReconstructsRegisters) {
  // Pointers held in callee-saved registers across nested calls must be
  // found through the save areas during the stack walk.
  RunResult R = runStressed(R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER; n: R END;
PROCEDURE Deep(d: INTEGER; keep: R): INTEGER;
VAR mine: R;
BEGIN
  IF d = 0 THEN RETURN keep^.v END;
  mine := NEW(R);
  mine^.v := d;
  mine^.n := keep;
  RETURN Deep(d - 1, mine) + keep^.v
END Deep;
VAR root: R;
BEGIN
  root := NEW(R);
  root^.v := 100;
  root^.n := NIL;
  PutInt(Deep(12, root)); PutLn();
END M.)");
  ASSERT_TRUE(R.Ok) << R.Error;
  // Values: keep chain carries d..1 then root; result sums them plus the
  // leaf's keep^.v.
  EXPECT_FALSE(R.Out.empty());
  EXPECT_GT(R.Stats.FramesTraced, 50u);
}

TEST(GC, UnreachableDataIsActuallyReclaimed) {
  // Allocate far more than a semispace holds, keeping only a window live:
  // without reclamation this exhausts the heap.
  driver::CompilerOptions CO;
  vm::VMOptions VO;
  VO.HeapBytes = 32u << 10;
  RunResult R = compileAndRun(R"(
MODULE M;
TYPE R = REF RECORD a, b, c, d: INTEGER END;
VAR keep: R; s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 5000 DO
    keep := NEW(R);
    keep^.a := i
  END;
  PutInt(keep^.a); PutLn();
END M.)",
                              CO, VO);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "5000\n");
  EXPECT_GT(R.Stats.Collections, 5u);
}

TEST(GC, StatsTrackFramesAndRoots) {
  RunResult R = runStressed(R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER END;
PROCEDURE A(x: R): INTEGER;
BEGIN
  RETURN B(x) + 1
END A;
PROCEDURE B(x: R): INTEGER;
VAR t: R;
BEGIN
  t := NEW(R);
  t^.v := x^.v;
  RETURN t^.v
END B;
VAR r: R;
BEGIN
  r := NEW(R);
  r^.v := 5;
  PutInt(A(r)); PutLn();
END M.)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "6\n");
  EXPECT_GT(R.Stats.FramesTraced, 0u);
  EXPECT_GT(R.Stats.RootsTraced, 0u);
  EXPECT_GT(R.Stats.GcNanos, 0u);
}

TEST(GC, DecoderModesAgreeUnderStress) {
  // The same stressed workload through the reference decoder, the
  // index+cache, and the cross-checking mode: identical output, identical
  // root enumeration; only the accelerated run touches the cache.
  const std::string Src = R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER; next: R END;
PROCEDURE Build(n: INTEGER): R;
VAR h, c: R;
BEGIN
  h := NIL;
  FOR i := 1 TO n DO
    c := NEW(R); c^.v := i; c^.next := h; h := c
  END;
  RETURN h
END Build;
PROCEDURE Sum(h: R): INTEGER;
VAR s: INTEGER;
BEGIN
  s := 0;
  WHILE h # NIL DO s := s + h^.v; h := h^.next END;
  RETURN s
END Sum;
VAR t: INTEGER;
BEGIN
  t := 0;
  FOR k := 1 TO 8 DO
    t := t + Sum(Build(20))
  END;
  PutInt(t); PutLn();
END M.)";
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  vm::VMOptions VO;
  VO.GcStress = true;
  VO.HeapBytes = 1u << 16;

  gc::CollectorOptions Reference;
  Reference.UseMapIndex = false;
  RunResult Ref = compileAndRun(Src, CO, VO, Reference);
  ASSERT_TRUE(Ref.Ok) << Ref.Error;
  EXPECT_EQ(Ref.Out, "1680\n");
  EXPECT_GT(Ref.Stats.Collections, 0u);
  EXPECT_EQ(Ref.Stats.DecodeCacheHits, 0u);
  EXPECT_EQ(Ref.Stats.DecodeCacheMisses, 0u);

  RunResult Fast = compileAndRun(Src, CO, VO);
  ASSERT_TRUE(Fast.Ok) << Fast.Error;
  EXPECT_EQ(Fast.Out, Ref.Out);
  EXPECT_EQ(Fast.Stats.RootsTraced, Ref.Stats.RootsTraced);
  EXPECT_EQ(Fast.Stats.DerivedAdjusted, Ref.Stats.DerivedAdjusted);
  EXPECT_EQ(Fast.Stats.FramesTraced, Ref.Stats.FramesTraced);
  // Stress mode revisits the same gc-points constantly: the cache must
  // serve the steady state.
  EXPECT_GT(Fast.Stats.DecodeCacheHits, Fast.Stats.DecodeCacheMisses);
  EXPECT_GT(Fast.Stats.DecodeBytesSkipped, 0u);

  gc::CollectorOptions Checked;
  Checked.CrossCheck = true;
  RunResult Cross = compileAndRun(Src, CO, VO, Checked);
  ASSERT_TRUE(Cross.Ok) << Cross.Error;
  EXPECT_EQ(Cross.Out, Ref.Out);
  EXPECT_EQ(Cross.Stats.RootsTraced, Ref.Stats.RootsTraced);
}

//===----------------------------------------------------------------------===//
// Allocation-path hardening
//===----------------------------------------------------------------------===//

TEST(GC, OversizedAllocationFailsDeterministically) {
  // An object larger than any space can never be satisfied by collecting;
  // the VM must fail up front instead of spinning the collect-retry loop.
  driver::CompilerOptions CO;
  vm::VMOptions VO;
  VO.HeapBytes = 32u << 10;
  RunResult R = compileAndRun(R"(
MODULE M;
TYPE V = REF ARRAY OF INTEGER;
VAR v: V;
BEGIN
  v := NEW(V, 100000);
  PutInt(0); PutLn();
END M.)",
                              CO, VO);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of memory: object of"), std::string::npos)
      << R.Error;
  EXPECT_NE(R.Error.find("exceeds heap capacity"), std::string::npos)
      << R.Error;
}

TEST(GC, OverflowingAllocationSizeFailsDeterministically) {
  // A length whose byte size overflows size_t must not wrap into a small
  // allocation that bypasses the space check.
  driver::CompilerOptions CO;
  vm::VMOptions VO;
  VO.HeapBytes = 32u << 10;
  RunResult R = compileAndRun(R"(
MODULE M;
TYPE V = REF ARRAY OF INTEGER;
VAR v: V;
BEGIN
  v := NEW(V, 4611686018427387904);
  PutInt(0); PutLn();
END M.)",
                              CO, VO);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of memory: object of"), std::string::npos)
      << R.Error;
}

TEST(GC, ZeroLengthOpenArraysSurviveCollection) {
  // Zero-length open arrays are real two-word objects (header + length);
  // they must allocate, move, and scan without confusing the collector.
  RunResult R = runStressed(R"(
MODULE M;
TYPE E = REF ARRAY OF INTEGER;
     V = REF ARRAY OF E;
VAR box: V; t: E; n: INTEGER;
BEGIN
  box := NEW(V, 8);
  FOR i := 0 TO 7 DO
    box[i] := NEW(E, 0)
  END;
  t := NEW(E, 3);
  n := 0;
  FOR i := 0 TO 7 DO
    IF box[i] # NIL THEN n := n + 1 END
  END;
  PutInt(n); PutLn();
END M.)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "8\n");
  EXPECT_GT(R.Stats.Collections, 0u);
}

TEST(GC, AllocationExactlyFillingASpace) {
  // An allocation of exactly the largest representable object must
  // succeed; one element more must fail deterministically.  The largest
  // object is a whole semispace (default mode) or a semispace minus the
  // old-space promotion reserve of one nursery half (generational mode;
  // see Heap::maxObjectBytes).
  bool Gen = std::getenv("MGC_TEST_GEN_GC") != nullptr;
  size_t Space = 32u << 10;
  size_t MaxObj = Gen ? Space - Space / 8 : Space;
  size_t Len = (MaxObj - 2 * sizeof(vm::Word)) / sizeof(vm::Word);

  driver::CompilerOptions CO;
  vm::VMOptions VO;
  VO.HeapBytes = Space;
  RunResult Fit = compileAndRun("MODULE M;\n"
                                "TYPE V = REF ARRAY OF INTEGER;\n"
                                "VAR v: V;\n"
                                "BEGIN\n"
                                "  v := NEW(V, " + std::to_string(Len) +
                                ");\n"
                                "  v[0] := 7;\n"
                                "  PutInt(v[0]); PutLn();\n"
                                "END M.",
                                CO, VO);
  ASSERT_TRUE(Fit.Ok) << Fit.Error;
  EXPECT_EQ(Fit.Out, "7\n");

  RunResult Over = compileAndRun("MODULE M;\n"
                                 "TYPE V = REF ARRAY OF INTEGER;\n"
                                 "VAR v: V;\n"
                                 "BEGIN\n"
                                 "  v := NEW(V, " + std::to_string(Len + 1) +
                                 ");\n"
                                 "  PutInt(0); PutLn();\n"
                                 "END M.",
                                 CO, VO);
  EXPECT_FALSE(Over.Ok);
  EXPECT_NE(Over.Error.find("out of memory"), std::string::npos)
      << Over.Error;
}

//===----------------------------------------------------------------------===//
// Generational mode
//===----------------------------------------------------------------------===//

driver::CompilerOptions genCompilerOptions() {
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  CO.WriteBarriers = true;
  return CO;
}

vm::VMOptions genVMOptions(size_t HeapBytes, size_t NurseryBytes) {
  vm::VMOptions VO;
  VO.GenGc = true;
  VO.HeapBytes = HeapBytes;
  VO.NurseryBytes = NurseryBytes;
  return VO;
}

TEST(GenGC, OldToYoungEdgesSurviveMinorCollections) {
  // A long-lived list is extended at the tail: once the tail is promoted,
  // every append is an old→young store that only the write barrier and
  // remembered set keep alive across minor collections.
  const std::string Src = R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER; next: R END;
VAR head, tail, n: R; s: INTEGER;
BEGIN
  head := NEW(R); head^.v := 0; head^.next := NIL;
  tail := head;
  FOR i := 1 TO 500 DO
    n := NEW(R);
    n^.v := i;
    n^.next := NIL;
    tail^.next := n;
    tail := n
  END;
  s := 0;
  n := head;
  WHILE n # NIL DO s := s + n^.v; n := n^.next END;
  PutInt(s); PutLn();
END M.)";

  gc::CollectorOptions Checked;
  Checked.CrossCheck = true;
  RunResult Gen = compileAndRun(Src, genCompilerOptions(),
                                genVMOptions(64u << 10, 1u << 10), Checked);
  ASSERT_TRUE(Gen.Ok) << Gen.Error;
  EXPECT_EQ(Gen.Out, "125250\n");
  EXPECT_GT(Gen.Stats.MinorCollections, 0u);
  EXPECT_GT(Gen.Stats.WriteBarriersRun, 0u);
  EXPECT_GT(Gen.Stats.RemSetRecords, 0u)
      << "tail^.next := n from a promoted tail must hit the remembered set";

  // The same program in default two-space mode produces the same output.
  // (Under MGC_TEST_GEN_GC=1 this run is forced generational too, so only
  // the output is compared, not the collection mix.)
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  vm::VMOptions VO;
  VO.HeapBytes = 64u << 10;
  RunResult Ref = compileAndRun(Src, CO, VO, Checked);
  ASSERT_TRUE(Ref.Ok) << Ref.Error;
  EXPECT_EQ(Ref.Out, Gen.Out);
}

TEST(GenGC, CollectionMidForLoopWithLiveDerived_BothModes) {
  // The §3 un-derive/re-derive protocol around a collection triggered
  // mid-FOR, exercised in both the default and the generational heap: the
  // strength-reduced walking pointer must stay correct when the array
  // moves within the nursery, is promoted, or is evacuated by a full
  // collection.
  const std::string Src = R"(
MODULE M;
TYPE A = REF ARRAY [1..16] OF INTEGER;
     R = REF RECORD v: INTEGER END;
PROCEDURE Fill(p: A);
VAR i: INTEGER; junk: R;
BEGIN
  FOR i := 1 TO 16 DO
    junk := NEW(R);    (* allocation mid-loop: gc-point with live derived *)
    p[i] := i * 3
  END
END Fill;
VAR a: A; s: INTEGER;
BEGIN
  a := NEW(A);
  Fill(a);
  s := 0;
  FOR i := 1 TO 16 DO s := s + a[i] END;
  PutInt(s); PutLn();
END M.)";

  gc::CollectorOptions Checked;
  Checked.CrossCheck = true;

  // Default two-space mode, stressed so every mid-loop gc-point collects.
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  vm::VMOptions VO;
  VO.HeapBytes = 1u << 16;
  VO.GcStress = true;
  RunResult Ref = compileAndRun(Src, CO, VO, Checked);
  ASSERT_TRUE(Ref.Ok) << Ref.Error;
  EXPECT_EQ(Ref.Out, "408\n");
  EXPECT_GT(Ref.Stats.DerivedAdjusted, 0u);

  // Generational mode, stressed: the same gc-points run minor collections.
  vm::VMOptions GenVO = genVMOptions(1u << 16, 1u << 10);
  GenVO.GcStress = true;
  RunResult Gen = compileAndRun(Src, genCompilerOptions(), GenVO, Checked);
  ASSERT_TRUE(Gen.Ok) << Gen.Error;
  EXPECT_EQ(Gen.Out, Ref.Out);
  EXPECT_GT(Gen.Stats.DerivedAdjusted, 0u);
  EXPECT_GT(Gen.Stats.MinorCollections, 0u);
}

TEST(GenGC, PromotionAndFullCollectionFallback) {
  // Each round builds a list that stays live across several minor
  // collections (so its nodes age and get promoted), then drops it.  The
  // promoted garbage accumulates in old space until the minor-headroom
  // check fails and the full Cheney fallback reclaims it, clearing the
  // remembered set.
  const std::string Src = R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER; next: R END;
VAR h, n: R; s: INTEGER;
BEGIN
  s := 0;
  FOR r := 1 TO 40 DO
    h := NIL;
    FOR i := 1 TO 120 DO
      n := NEW(R); n^.v := i; n^.next := h; h := n
    END;
    WHILE h # NIL DO s := s + 1; h := h^.next END
  END;
  PutInt(s); PutLn();
END M.)";
  gc::CollectorOptions Checked;
  Checked.CrossCheck = true;
  RunResult R = compileAndRun(Src, genCompilerOptions(),
                              genVMOptions(32u << 10, 1u << 10), Checked);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "4800\n");
  EXPECT_GT(R.Stats.MinorCollections, 0u);
  EXPECT_GT(R.Stats.Collections, R.Stats.MinorCollections)
      << "old space must fill up and fall back to a full collection";
}

TEST(GenGC, StressedRootCountsMatchDefaultMode) {
  // With a heap large enough that only stress-mode collections happen,
  // both modes collect at exactly the same gc-points and gather the same
  // table-driven root set: the counts must agree exactly.
  const std::string Src = R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER; next: R END;
VAR h, c: R; s: INTEGER;
BEGIN
  h := NIL;
  FOR i := 1 TO 40 DO
    c := NEW(R); c^.v := i; c^.next := h; h := c
  END;
  s := 0;
  WHILE h # NIL DO s := s + h^.v; h := h^.next END;
  PutInt(s); PutLn();
END M.)";
  gc::CollectorOptions Checked;
  Checked.CrossCheck = true;

  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  vm::VMOptions VO;
  VO.HeapBytes = 1u << 20;
  VO.GcStress = true;
  RunResult Ref = compileAndRun(Src, CO, VO, Checked);
  ASSERT_TRUE(Ref.Ok) << Ref.Error;
  EXPECT_EQ(Ref.Out, "820\n");

  vm::VMOptions GenVO = genVMOptions(1u << 20, 0);
  GenVO.GcStress = true;
  RunResult Gen = compileAndRun(Src, genCompilerOptions(), GenVO, Checked);
  ASSERT_TRUE(Gen.Ok) << Gen.Error;
  EXPECT_EQ(Gen.Out, Ref.Out);
  EXPECT_EQ(Gen.Stats.Collections, Ref.Stats.Collections);
  EXPECT_EQ(Gen.Stats.RootsTraced, Ref.Stats.RootsTraced);
  EXPECT_EQ(Gen.Stats.DerivedAdjusted, Ref.Stats.DerivedAdjusted);
  EXPECT_EQ(Gen.Stats.FramesTraced, Ref.Stats.FramesTraced);
}

TEST(GenGC, AmbiguousDerivationBasesStraddleNurseryAndOldSpace) {
  // The §4 diamond (v := p[i] or q[i] resolved by a path variable), but
  // under generational collection with the two alternative bases in
  // *different spaces*: `a` is allocated first and aged past several
  // minor collections (promoted to old space) while `b` is nursery-fresh
  // at the call.  A minor collection at Use's allocation must re-derive v
  // from whichever base the path variable names — moving nursery base or
  // stationary promoted base — without confusing the two.
  const char *Src = R"(
MODULE M;
TYPE Arr = REF ARRAY [1..8] OF INTEGER;
     Cell = REF RECORD v: INTEGER END;
VAR a, b: Arr; junkg: Cell; r: INTEGER;

PROCEDURE Use(x: INTEGER): INTEGER;
VAR junk: Arr;
BEGIN
  junk := NEW(Arr);    (* every call runs a minor collection under stress *)
  RETURN x
END Use;

PROCEDURE Work(inv: BOOLEAN; p, q: Arr): INTEGER;
VAR i, s, v: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 8 DO
    IF inv THEN v := p[i] ELSE v := q[i] END;
    s := s + Use(v)
  END;
  RETURN s
END Work;

BEGIN
  a := NEW(Arr);
  FOR i := 1 TO 8 DO a[i] := i END;
  (* Age `a` across many stress-driven minor collections so it promotes
     out of the nursery before Work runs. *)
  FOR i := 1 TO 32 DO junkg := NEW(Cell) END;
  b := NEW(Arr);
  FOR i := 1 TO 8 DO b[i] := 10 * i END;
  r := Work(TRUE, a, b) * 1000 + Work(FALSE, a, b);
  PutInt(r); PutLn();
END M.)";

  gc::CollectorOptions Checked;
  Checked.CrossCheck = true;
  driver::CompilerOptions CO = genCompilerOptions();
  CO.Mode = driver::Disambiguation::PathVariables;
  vm::VMOptions VO = genVMOptions(1u << 20, 1u << 10);
  VO.GcStress = true;
  RunResult R = compileAndRun(Src, CO, VO, Checked);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "36360\n");
  EXPECT_GT(R.PathVars, 0u) << "the diamond must create a path variable";
  EXPECT_GT(R.Stats.MinorCollections, 16u)
      << "both Work calls must see minor collections";
  EXPECT_GT(R.Stats.DerivedAdjusted, 0u);

  // Path splitting must agree under the same generational pressure.
  driver::CompilerOptions Split = CO;
  Split.Mode = driver::Disambiguation::PathSplitting;
  RunResult RS = compileAndRun(Src, Split, VO, Checked);
  ASSERT_TRUE(RS.Ok) << RS.Error;
  EXPECT_EQ(RS.Out, "36360\n");
  EXPECT_EQ(RS.PathVars, 0u);
}

} // namespace
