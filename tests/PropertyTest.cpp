//===- tests/PropertyTest.cpp - Parameterized invariant sweeps -------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style sweeps: generated tree/list workloads run across many
/// (shape × heap size × optimization) combinations; the invariant is that
/// the checksum never depends on when or how often the collector ran.
///
//===----------------------------------------------------------------------===//

#include "Corpus.h"
#include "TestUtil.h"

#include "Programs.h"
#include "gcmaps/MapIndex.h"

using namespace mgc;
using namespace mgc::test;

namespace {

std::string treeProgram(int Branch, int Depth, int Iters) {
  std::string S = R"(
MODULE Sweep;
CONST Branch = )" + std::to_string(Branch) +
                  "; Depth = " + std::to_string(Depth) +
                  "; Iters = " + std::to_string(Iters) + R"(;
TYPE Node = REF NodeRec;
     Kids = REF ARRAY OF Node;
     NodeRec = RECORD value: INTEGER; kids: Kids END;
VAR seed: INTEGER; root: Node;

PROCEDURE Rand(m: INTEGER): INTEGER;
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN seed MOD m
END Rand;

PROCEDURE MakeTree(d: INTEGER): Node;
VAR n: Node; i: INTEGER;
BEGIN
  n := NEW(Node);
  n^.value := d + 1;
  IF d > 0 THEN
    n^.kids := NEW(Kids, Branch);
    FOR i := 0 TO Branch - 1 DO
      n^.kids[i] := MakeTree(d - 1)
    END
  END;
  RETURN n
END MakeTree;

PROCEDURE Checksum(n: Node): INTEGER;
VAR i, s: INTEGER;
BEGIN
  IF n = NIL THEN RETURN 7 END;
  s := n^.value;
  IF n^.kids # NIL THEN
    FOR i := 0 TO NUMBER(n^.kids) - 1 DO
      s := s * 31 + Checksum(n^.kids[i])
    END
  END;
  RETURN s MOD 1000000007
END Checksum;

BEGIN
  seed := 42;
  root := MakeTree(Depth);
  FOR i := 1 TO Iters DO
    IF Depth > 1 THEN
      root^.kids[Rand(Branch)] := MakeTree(Depth - 1)
    END
  END;
  PutInt(Checksum(root)); PutLn();
END Sweep.
)";
  return S;
}

struct Shape {
  int Branch, Depth, Iters;
};

class TreeSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(TreeSweep, ChecksumIndependentOfCollector) {
  Shape S = GetParam();
  std::string Src = treeProgram(S.Branch, S.Depth, S.Iters);

  // Reference: roomy heap, no stress, -O0.
  driver::CompilerOptions Ref;
  Ref.OptLevel = 0;
  vm::VMOptions RefVO;
  RefVO.HeapBytes = 8u << 20;
  RefVO.StackWords = 1u << 20;
  RunResult Reference = compileAndRun(Src, Ref, RefVO);
  ASSERT_TRUE(Reference.Ok) << Reference.Error;
  ASSERT_FALSE(Reference.Out.empty());

  for (int Opt : {0, 2}) {
    for (size_t Heap : {128u << 10, 512u << 10}) {
      driver::CompilerOptions CO;
      CO.OptLevel = Opt;
      vm::VMOptions VO;
      VO.HeapBytes = Heap;
      VO.StackWords = 1u << 20;
      RunResult R = compileAndRun(Src, CO, VO);
      ASSERT_TRUE(R.Ok) << "opt=" << Opt << " heap=" << Heap << ": "
                        << R.Error;
      EXPECT_EQ(R.Out, Reference.Out) << "opt=" << Opt << " heap=" << Heap;
    }
    // Stress mode: a collection before every allocation.
    driver::CompilerOptions CO;
    CO.OptLevel = Opt;
    vm::VMOptions VO;
    VO.GcStress = true;
    VO.HeapBytes = 1u << 20;
    VO.StackWords = 1u << 20;
    RunResult R = compileAndRun(Src, CO, VO);
    ASSERT_TRUE(R.Ok) << "stress opt=" << Opt << ": " << R.Error;
    EXPECT_EQ(R.Out, Reference.Out) << "stress opt=" << Opt;
    EXPECT_GT(R.Stats.Collections, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeSweep,
    ::testing::Values(Shape{2, 2, 4}, Shape{2, 5, 12}, Shape{3, 4, 8},
                      Shape{4, 3, 10}, Shape{2, 8, 6}, Shape{5, 2, 20},
                      Shape{1, 10, 5}, Shape{3, 6, 3}),
    [](const ::testing::TestParamInfo<Shape> &Info) {
      return "b" + std::to_string(Info.param.Branch) + "d" +
             std::to_string(Info.param.Depth) + "i" +
             std::to_string(Info.param.Iters);
    });

//===----------------------------------------------------------------------===//
// List churn with interior pointers
//===----------------------------------------------------------------------===//

class ChurnSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChurnSweep, InteriorPointersSurviveChurn) {
  int N = GetParam();
  std::string Src = R"(
MODULE Churn;
CONST N = )" + std::to_string(N) + R"(;
TYPE Cell = REF RECORD a, b: INTEGER END;
     Arr = REF ARRAY [1..10] OF INTEGER;
VAR junk: Cell; total: INTEGER;

PROCEDURE Work(v: Arr): INTEGER;
VAR s, i: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 10 DO
    junk := NEW(Cell);      (* churn at every step *)
    WITH e = v[i] DO
      junk := NEW(Cell);
      e := e + i
    END;
    s := s + v[i]
  END;
  RETURN s
END Work;

VAR v: Arr; k: INTEGER;
BEGIN
  v := NEW(Arr);
  FOR i := 1 TO 10 DO v[i] := 0 END;
  total := 0;
  FOR k := 1 TO N DO
    total := total + Work(v)
  END;
  PutInt(total); PutLn();
END Churn.
)";
  // Closed form: after k rounds v[i] = k*i, so Work returns 55*k and the
  // total is 55 * N(N+1)/2.
  long long Expect = 55LL * N * (N + 1) / 2;
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  vm::VMOptions VO;
  VO.GcStress = true; // Collect at every allocation.
  VO.HeapBytes = 1u << 20;
  RunResult R = compileAndRun(Src, CO, VO);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, std::to_string(Expect) + "\n");
  EXPECT_GT(R.Stats.Collections, 0u);
  EXPECT_GT(R.Stats.DerivedAdjusted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Rounds, ChurnSweep,
                         ::testing::Values(1, 2, 5, 10, 25, 50));

//===----------------------------------------------------------------------===//
// Decode equivalence: reference decoder == indexed/cached decode
//===----------------------------------------------------------------------===//

/// Every gc-point of every function of all four benchmark programs, at
/// both optimization levels, must decode identically through the reference
/// walk-from-start decoder, the load-time index, and the decoded-point
/// cache — including same-as-previous chains and all-empty descriptors.
/// Shared sweep body: every gc-point of every function must decode
/// identically through the reference walk-from-start decoder, the
/// load-time index, and the decoded-point cache.
void checkDecodeEquivalence(const std::string &Name,
                            const std::string &Source,
                            driver::CompilerOptions CO) {
  auto C = driver::compile(Source, CO);
  ASSERT_TRUE(C.Prog) << Name << " failed to compile:\n" << C.Diags.str();
  vm::Program &Prog = *C.Prog;
  ASSERT_EQ(Prog.MapIndexes.size(), Prog.Maps.size());

  // A deliberately tiny cache so eviction and re-fill are exercised too.
  gcmaps::DecodedPointCache Cache(4);
  unsigned PointsChecked = 0, SamePoints = 0, EmptyPoints = 0;
  for (unsigned F = 0; F != Prog.Maps.size(); ++F) {
    const gcmaps::EncodedFuncMaps &Maps = Prog.Maps[F];
    const gcmaps::FuncMapIndex &Index = Prog.MapIndexes[F];
    ASSERT_EQ(Index.Points.size(), Maps.RetPCs.size()) << "func " << F;

    for (unsigned K = 0; K != Maps.RetPCs.size(); ++K) {
      gcmaps::GcPointInfo Ref = gcmaps::decodeGcPoint(Maps, K);

      gcmaps::GcPointInfo Indexed;
      gcmaps::decodeGcPointIndexed(Maps, Index, K, Indexed);
      EXPECT_TRUE(Indexed == Ref) << Name << " func " << F << " point "
                                  << K << ": indexed decode diverged";

      const gcmaps::GcPointInfo *Cached = Cache.lookup(F, K);
      if (!Cached) {
        gcmaps::decodeGcPointIndexed(Maps, Index, K, Cache.insert(F, K));
        Cached = Cache.lookup(F, K);
      }
      ASSERT_NE(Cached, nullptr);
      EXPECT_TRUE(*Cached == Ref) << Name << " func " << F << " point "
                                  << K << ": cached decode diverged";

      ++PointsChecked;
      const gcmaps::PointIndexEntry &E = Index.Points[K];
      if (K > 0 && (E.DeltaOff == Index.Points[K - 1].DeltaOff ||
                    E.DerivOff == Index.Points[K - 1].DerivOff))
        ++SamePoints;
      if (E.DeltaOff == gcmaps::EmptyPayload &&
          E.RegOff == gcmaps::EmptyPayload &&
          E.DerivOff == gcmaps::EmptyPayload)
        ++EmptyPoints;
    }
  }
  // The sweep must actually cover the interesting encodings.
  EXPECT_GT(PointsChecked, 0u) << Name;
  EXPECT_GT(SamePoints + EmptyPoints, 0u)
      << Name << ": expected same-as-previous or empty descriptors";
}

class DecodeEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DecodeEquivalence, ReferenceEqualsIndexedAndCached) {
  const programs::NamedProgram &P = programs::All[std::get<0>(GetParam())];
  driver::CompilerOptions CO;
  CO.OptLevel = std::get<1>(GetParam());
  checkDecodeEquivalence(P.Name, P.Source, CO);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, DecodeEquivalence,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Values(0, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &Info) {
      return std::string(programs::All[std::get<0>(Info.param)].Name) +
             "_O" + std::to_string(std::get<1>(Info.param));
    });

/// The same sweep over the checked-in fuzz corpus: bigger programs with
/// WITH-bound derived pointers, ambiguous diamonds, threads, and loop
/// polls stress encodings the four benchmarks never emit.  Honors
/// MGC_TEST_GEN_GC=1 (write barriers change the gc-point population).
class CorpusDecodeEquivalence
    : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusDecodeEquivalence, ReferenceEqualsIndexedAndCached) {
  const CorpusProgram &P = corpusProgram(GetParam());
  for (int Opt : {0, 2}) {
    driver::CompilerOptions CO;
    CO.OptLevel = Opt;
    CO.ThreadedPolls = P.HasSpin;
    if (std::getenv("MGC_TEST_GEN_GC"))
      CO.WriteBarriers = true;
    checkDecodeEquivalence(P.Name + "_O" + std::to_string(Opt), P.Source,
                           CO);
  }
}

INSTANTIATE_TEST_SUITE_P(FuzzCorpus, CorpusDecodeEquivalence,
                         ::testing::ValuesIn(corpusNames()),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           return I.param;
                         });

} // namespace
