//===- tests/ProfileTest.cpp - Sampling-profiler tests --------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gc-map-driven sampling profiler (obs/Profile.h) must be:
///  - deterministic: samples fire at instruction ordinals, so the encoded
///    profile *body* is byte-identical across dispatch tiers, gc-thread
///    counts, and the indexed/reference decoders — on the §6 benchmarks
///    and the frozen fuzz corpus alike;
///  - verified: every sampled stack is decoded through the gc-map tables
///    and cross-checked against the incrementally maintained call chain —
///    zero walk errors anywhere in the matrix;
///  - accurate: a directed workload whose Work() procedure retires nearly
///    all instructions pins >=90% of the sampled weight to it;
///  - attributable: server runs yield one profile request row per ReqDone
///    marker, conserving the global sample counters;
///  - strict on disk: the codec round-trips every field, and truncation,
///    trailing bytes, bad magic/version, and out-of-range indices are
///    decode errors, never best-effort results;
///  - honest about failures: a crashed run still yields a profile, marked
///    RunOk=false with the VM error preserved.
///
//===----------------------------------------------------------------------===//

#include "Corpus.h"
#include "Programs.h"
#include "TestUtil.h"

#include "obs/Profile.h"
#include "workload/Server.h"

#include <gtest/gtest.h>

#include <memory>

using namespace mgc;
using namespace mgc::test;

namespace {

/// Hot-function ground-truth program: Work() allocates and folds every
/// iteration, the main body only loops and accumulates.
const char *HotSource = R"(MODULE Hot;
TYPE
  Cell = REF CellRec;
  CellRec = RECORD v: INTEGER; next: Cell END;
VAR
  sink, r: INTEGER;

PROCEDURE Work(n: INTEGER): INTEGER;
VAR c: Cell; s, i: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO n DO
    c := NEW(Cell);
    c^.v := i;
    s := (s + c^.v + i * i) MOD 1000000007
  END;
  RETURN s
END Work;

BEGIN
  sink := 0;
  FOR r := 1 TO 100 DO
    sink := (sink + Work(200)) MOD 1000000007
  END;
  PutInt(sink); PutLn()
END Hot.
)";

struct ProfOutcome {
  bool Ok = false;
  std::string Error;
  obs::Profile P;
  std::vector<uint8_t> Body;
};

/// Runs an already-compiled program with the profiler attached under one
/// configuration and returns the built profile plus its encoded body.
ProfOutcome runProfiled(const vm::Program &Prog, vm::VMOptions VO,
                        gc::CollectorOptions GCO, uint64_t Interval = 256,
                        bool SpawnSpin = false, bool CrossCheck = false) {
  vm::VM M(Prog, VO);
  gc::installPreciseCollector(M, GCO);
  if (SpawnSpin) {
    int Idx = -1;
    for (unsigned F = 0; F != Prog.Funcs.size(); ++F)
      if (Prog.Funcs[F].Name == "Spin")
        Idx = static_cast<int>(F);
    if (Idx >= 0)
      M.spawnThread(static_cast<unsigned>(Idx));
  }
  obs::ProfilerConfig PC;
  PC.IntervalInstrs = Interval;
  PC.UseMapIndex = GCO.UseMapIndex;
  PC.CrossCheck = CrossCheck;
  obs::Profiler Prof(Prog, PC);
  M.Profiler = &Prof;
  ProfOutcome O;
  O.Ok = M.run();
  O.Error = M.Error;
  Prof.finish(O.Ok, M.Error, M.Stats.Instrs);
  O.P = Prof.buildProfile();
  obs::encodeProfileBody(O.P, O.Body);
  return O;
}

/// Fraction of the sampled mutator weight whose leaf function is \p Func.
double leafWeightPct(const obs::Profile &P, const std::string &Func) {
  uint32_t Target = 0xFFFFFFFFu;
  for (uint32_t I = 0; I != P.FuncNames.size(); ++I)
    if (P.FuncNames[I] == Func)
      Target = I;
  uint64_t Hot = 0, Total = 0;
  for (const obs::Profile::MutRow &R : P.Mutator) {
    Total += R.Weight;
    const obs::Profile::Stack &S = P.Stacks[R.StackId];
    if (S.NumFrames && P.Frames[S.FirstFrame].Func == Target)
      Hot += R.Weight;
  }
  return Total
             ? 100.0 * static_cast<double>(Hot) / static_cast<double>(Total)
             : 0.0;
}

//===----------------------------------------------------------------------===//
// Determinism: bodies byte-identical across the whole execution matrix
//===----------------------------------------------------------------------===//

TEST(ProfIdentity, Sec6AcrossTiersThreadsAndDecoders) {
  for (const programs::NamedProgram &Prog : programs::All) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    CO.WriteBarriers = true;
    auto C = driver::compile(Prog.Source, CO);
    ASSERT_TRUE(C.Prog != nullptr) << Prog.Name << ": " << C.Diags.str();

    vm::VMOptions VO;
    VO.HeapBytes = 64u << 10;
    VO.GenGc = true;
    VO.NurseryBytes = 8u << 10;
    gc::CollectorOptions GCO;

    VO.Dispatch = vm::DispatchTier::Threaded;
    ProfOutcome Ref = runProfiled(*C.Prog, VO, GCO);
    ASSERT_TRUE(Ref.Ok) << Prog.Name << ": " << Ref.Error;
    EXPECT_EQ(Ref.P.WalkErrors, 0u) << Prog.Name;
    EXPECT_GT(Ref.P.Samples, 0u) << Prog.Name;

    auto Expect = [&](const ProfOutcome &O, const char *Ctx) {
      ASSERT_TRUE(O.Ok) << Prog.Name << " " << Ctx << ": " << O.Error;
      EXPECT_EQ(O.P.WalkErrors, 0u) << Prog.Name << " " << Ctx;
      EXPECT_EQ(O.Body, Ref.Body)
          << Prog.Name << ": profile body diverged under " << Ctx;
    };

    // Switch tier.
    vm::VMOptions V2 = VO;
    V2.Dispatch = vm::DispatchTier::Switch;
    Expect(runProfiled(*C.Prog, V2, GCO), "switch dispatch");

    // Parallel collection.
    for (unsigned Threads : {2u, 4u}) {
      gc::CollectorOptions G2 = GCO;
      G2.Threads = Threads;
      Expect(runProfiled(*C.Prog, VO, G2),
             Threads == 2 ? "gc-threads 2" : "gc-threads 4");
    }

    // Reference (walk-from-start) decoder.
    gc::CollectorOptions G3 = GCO;
    G3.UseMapIndex = false;
    Expect(runProfiled(*C.Prog, VO, G3), "reference decoder");

    // Indexed decode cross-checked against the reference per sample.
    Expect(runProfiled(*C.Prog, VO, GCO, 256, false, /*CrossCheck=*/true),
           "decode crosscheck");
  }
}

TEST(ProfIdentity, CorpusCrossTier) {
  for (const CorpusProgram &CP : corpus()) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    CO.WriteBarriers = true;
    if (CP.HasSpin)
      CO.ThreadedPolls = true;
    auto C = driver::compile(CP.Source, CO);
    ASSERT_TRUE(C.Prog != nullptr) << CP.Name << ": " << C.Diags.str();

    vm::VMOptions VO;
    VO.HeapBytes = 1u << 20;
    VO.GenGc = true;
    VO.NurseryBytes = 16u << 10;
    VO.InstrBudget = 50'000'000;
    gc::CollectorOptions GCO;

    VO.Dispatch = vm::DispatchTier::Threaded;
    ProfOutcome Th = runProfiled(*C.Prog, VO, GCO, 128, CP.HasSpin);
    VO.Dispatch = vm::DispatchTier::Switch;
    ProfOutcome Sw = runProfiled(*C.Prog, VO, GCO, 128, CP.HasSpin);

    ASSERT_EQ(Th.Ok, Sw.Ok) << CP.Name;
    EXPECT_EQ(Th.Error, Sw.Error) << CP.Name;
    EXPECT_EQ(Th.P.WalkErrors, 0u) << CP.Name;
    EXPECT_EQ(Sw.P.WalkErrors, 0u) << CP.Name;
    EXPECT_EQ(Th.Body, Sw.Body)
        << CP.Name << ": profile body diverged across tiers";
  }
}

//===----------------------------------------------------------------------===//
// Accuracy: the known-hot function dominates the sampled weight
//===----------------------------------------------------------------------===//

TEST(ProfGroundTruth, HotFunctionDominates) {
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  auto C = driver::compile(HotSource, CO);
  ASSERT_TRUE(C.Prog != nullptr) << C.Diags.str();

  vm::VMOptions VO;
  VO.HeapBytes = 64u << 10;
  ProfOutcome O = runProfiled(*C.Prog, VO, {}, /*Interval=*/512);
  ASSERT_TRUE(O.Ok) << O.Error;

  EXPECT_GE(O.P.Samples, 100u);
  EXPECT_EQ(O.P.WalkErrors, 0u);
  EXPECT_GT(O.P.FramesSampled, O.P.Samples); // stacks have >1 frame
  // Sampled weight covers the span between first and last sample — at
  // most the run, and with a 512-instr interval nearly all of it.
  EXPECT_LE(O.P.SampleWeight, O.P.TotalInstrs);
  EXPECT_GE(O.P.SampleWeight, O.P.TotalInstrs * 9 / 10);
  EXPECT_GE(leafWeightPct(O.P, "Work"), 90.0);
  // Every allocation happened in Work: the alloc rows must agree.
  ASSERT_FALSE(O.P.Alloc.empty());
  uint64_t Allocs = 0;
  for (const obs::Profile::AllocRow &R : O.P.Alloc)
    Allocs += R.Count;
  EXPECT_EQ(Allocs, O.P.Allocs);
  EXPECT_EQ(O.P.Allocs, 100u * 200u);
}

//===----------------------------------------------------------------------===//
// Per-request attribution through the server harness
//===----------------------------------------------------------------------===//

TEST(ProfRequests, ServerRowsConserveCounters) {
  workload::ServerProgramConfig SPC;
  SPC.Seed = 11;
  SPC.Requests = 120;
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  CO.WriteBarriers = true;
  auto C = driver::compile(workload::generateServerProgram(SPC), CO);
  ASSERT_TRUE(C.Prog != nullptr) << C.Diags.str();

  workload::ServerRunConfig RC;
  RC.VO.HeapBytes = 16u << 10;
  RC.Profile = true;
  RC.ProfileInterval = 128;
  workload::ServerRunResult R = workload::runServer(*C.Prog, RC);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(R.HasProf);

  // One profile row per completed request, in sequence order.
  ASSERT_EQ(R.Prof.Requests.size(), R.ServiceInstrs.size());
  uint64_t Samples = 0, Weight = 0, Allocs = 0;
  for (size_t I = 0; I != R.Prof.Requests.size(); ++I) {
    EXPECT_EQ(R.Prof.Requests[I].Seq, I + 1);
    Samples += R.Prof.Requests[I].Samples;
    Weight += R.Prof.Requests[I].Weight;
    Allocs += R.Prof.Requests[I].Allocs;
  }
  // Request rows partition the samples taken up to the last marker; the
  // tail after it stays in the global counters only.
  EXPECT_LE(Samples, R.Prof.Samples);
  EXPECT_LE(Weight, R.Prof.SampleWeight);
  EXPECT_LE(Allocs, R.Prof.Allocs);
  EXPECT_GT(Samples, 0u);
  EXPECT_GT(Allocs, 0u);
  EXPECT_EQ(R.Prof.RequestsDropped, 0u);

  // The profile is part of the run's determinism envelope: a switch-tier
  // re-run must reproduce the body bit for bit.
  workload::ServerRunConfig RC2 = RC;
  RC2.VO.Dispatch = vm::DispatchTier::Switch;
  workload::ServerRunResult R2 = workload::runServer(*C.Prog, RC2);
  ASSERT_TRUE(R2.Ok) << R2.Error;
  std::vector<uint8_t> A, B;
  obs::encodeProfileBody(R.Prof, A);
  obs::encodeProfileBody(R2.Prof, B);
  EXPECT_EQ(A, B);
}

//===----------------------------------------------------------------------===//
// Codec: round-trip + strict decode
//===----------------------------------------------------------------------===//

TEST(ProfCodec, RoundTripPreservesEverything) {
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  auto C = driver::compile(HotSource, CO);
  ASSERT_TRUE(C.Prog != nullptr) << C.Diags.str();
  vm::VMOptions VO;
  VO.HeapBytes = 64u << 10;
  ProfOutcome O = runProfiled(*C.Prog, VO, {});
  ASSERT_TRUE(O.Ok) << O.Error;

  std::vector<uint8_t> Blob;
  obs::encodeProfile(O.P, Blob);
  obs::Profile D;
  std::string Err;
  ASSERT_TRUE(obs::decodeProfile(Blob, D, Err)) << Err;

  EXPECT_EQ(D.ToolVersion, O.P.ToolVersion);
  EXPECT_EQ(D.BuildFlags, O.P.BuildFlags);
  EXPECT_EQ(D.Seed, O.P.Seed);
  EXPECT_EQ(D.Program, O.P.Program);
  EXPECT_EQ(D.RunOk, O.P.RunOk);
  EXPECT_EQ(D.Samples, O.P.Samples);
  EXPECT_EQ(D.SampleWeight, O.P.SampleWeight);
  EXPECT_EQ(D.Allocs, O.P.Allocs);
  EXPECT_EQ(D.AllocBytes, O.P.AllocBytes);
  EXPECT_EQ(D.FuncNames, O.P.FuncNames);
  EXPECT_EQ(D.Mutator.size(), O.P.Mutator.size());
  EXPECT_EQ(D.Alloc.size(), O.P.Alloc.size());
  EXPECT_EQ(D.Stacks.size(), O.P.Stacks.size());
  EXPECT_EQ(D.Frames.size(), O.P.Frames.size());
  // The decoded profile re-encodes to the same body (full fidelity) and
  // the same digest (what the fuzz oracle compares).
  std::vector<uint8_t> Body2;
  obs::encodeProfileBody(D, Body2);
  EXPECT_EQ(Body2, O.Body);
  EXPECT_EQ(obs::profileSummary(D), obs::profileSummary(O.P));
  // Rendering a decoded profile works without the live program.
  EXPECT_NE(obs::renderProfile(D, 5).find("Work"), std::string::npos);
  EXPECT_NE(obs::renderFolded(D, false).find("Work"), std::string::npos);
}

TEST(ProfCodec, StrictDecodeRejectsMalformedInput) {
  driver::CompilerOptions CO;
  auto C = driver::compile(HotSource, CO);
  ASSERT_TRUE(C.Prog != nullptr) << C.Diags.str();
  vm::VMOptions VO;
  VO.HeapBytes = 64u << 10;
  ProfOutcome O = runProfiled(*C.Prog, VO, {});
  std::vector<uint8_t> Blob;
  obs::encodeProfile(O.P, Blob);

  obs::Profile D;
  std::string Err;

  // Bad magic.
  {
    std::vector<uint8_t> B = Blob;
    B[0] ^= 0xFF;
    EXPECT_FALSE(obs::decodeProfile(B, D, Err));
  }
  // Bad version.
  {
    std::vector<uint8_t> B = Blob;
    B[4] ^= 0x01;
    EXPECT_FALSE(obs::decodeProfile(B, D, Err));
  }
  // Truncation at every eighth prefix length (cheap but thorough).
  for (size_t Len = 0; Len < Blob.size(); Len += 8) {
    std::vector<uint8_t> B(Blob.begin(), Blob.begin() + Len);
    EXPECT_FALSE(obs::decodeProfile(B, D, Err)) << "prefix " << Len;
  }
  // Trailing garbage.
  {
    std::vector<uint8_t> B = Blob;
    B.push_back(0);
    EXPECT_FALSE(obs::decodeProfile(B, D, Err));
  }
  // Out-of-range stack id in a mutator row: rebuild a tiny profile by
  // hand so the offset is known.
  {
    obs::Profile P;
    P.Program = "t";
    P.FuncNames = {"f"};
    P.Frames.push_back({2, 0});
    P.Stacks.push_back({0, 0}); // overflow bucket
    P.Stacks.push_back({0, 1});
    P.Mutator.push_back({7, 1, 1}); // stack id 7 does not exist
    std::vector<uint8_t> B;
    obs::encodeProfile(P, B);
    EXPECT_FALSE(obs::decodeProfile(B, D, Err));
    EXPECT_NE(Err.find("stack"), std::string::npos) << Err;
  }
}

//===----------------------------------------------------------------------===//
// Failure paths: partial profiles survive VM errors
//===----------------------------------------------------------------------===//

TEST(ProfError, FailedRunYieldsPartialProfile) {
  const char *Src = R"(MODULE M;
TYPE R = REF RECORD x: INTEGER END;
VAR r: R; i, s: INTEGER;
PROCEDURE Burn(n: INTEGER): INTEGER;
VAR a: R; j, t: INTEGER;
BEGIN
  t := 0;
  FOR j := 1 TO n DO a := NEW(R); a^.x := j; t := t + a^.x END;
  RETURN t
END Burn;
BEGIN
  s := 0;
  FOR i := 1 TO 50 DO s := s + Burn(100) END;
  r := NIL;
  PutInt(r^.x)
END M.)";
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  auto C = driver::compile(Src, CO);
  ASSERT_TRUE(C.Prog != nullptr) << C.Diags.str();

  vm::VMOptions VO;
  VO.HeapBytes = 64u << 10;
  ProfOutcome O = runProfiled(*C.Prog, VO, {}, /*Interval=*/128);
  ASSERT_FALSE(O.Ok);

  // The profile survived the crash, carries the failure, and round-trips.
  EXPECT_FALSE(O.P.RunOk);
  EXPECT_NE(O.P.RunError.find("NIL"), std::string::npos) << O.P.RunError;
  EXPECT_GT(O.P.Samples, 0u);
  EXPECT_GT(O.P.Allocs, 0u);
  EXPECT_EQ(O.P.WalkErrors, 0u);
  std::vector<uint8_t> Blob;
  obs::encodeProfile(O.P, Blob);
  obs::Profile D;
  std::string Err;
  ASSERT_TRUE(obs::decodeProfile(Blob, D, Err)) << Err;
  EXPECT_FALSE(D.RunOk);
  EXPECT_EQ(D.RunError, O.P.RunError);
  // The report self-describes the partial data.
  EXPECT_NE(obs::renderProfile(D, 5).find("FAILED"), std::string::npos);
}

} // namespace
