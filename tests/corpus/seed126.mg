MODULE Fz;
(* generated: mgc-fuzz seed 26 *)

TYPE
  Cell = REF CellRec;
  CellRec = RECORD v: INTEGER; next: Cell END;
  Node = REF NodeRec;
  Kids = REF ARRAY OF Node;
  NodeRec = RECORD value: INTEGER; kids: Kids END;
  IArr = REF ARRAY OF INTEGER;
  FArr = REF ARRAY [1..8] OF INTEGER;
  Pair = REF PairRec;
  PairRec = RECORD a, b: INTEGER; left, right: Pair END;
  SCache = REF ARRAY OF Cell;

VAR sink, t0, t1, t2, t3: INTEGER;
    gl: Cell;
    sc: SCache;
    ga: IArr;
    gn: Node;
    gp: Pair;
    fa, fb: FArr;
    done: BOOLEAN;

PROCEDURE BuildList(n: INTEGER): Cell;
VAR l, c: Cell; i: INTEGER;
BEGIN
  l := NIL;
  FOR i := 1 TO n DO
    c := NEW(Cell);
    c^.v := i;
    c^.next := l;
    l := c
  END;
  RETURN l
END BuildList;

PROCEDURE SumList(l: Cell): INTEGER;
VAR s: INTEGER; t: Cell;
BEGIN
  s := 0;
  WHILE l # NIL DO
    WITH w = l^.v DO
      t := NEW(Cell);
      t^.v := w;
      s := (s + w + t^.v) MOD 1000000007
    END;
    l := l^.next
  END;
  RETURN s
END SumList;

PROCEDURE Fill(a: IArr);
VAR i: INTEGER;
BEGIN
  FOR i := 0 TO NUMBER(a) - 1 DO
    a[i] := i * 3 + 1
  END
END Fill;

PROCEDURE SumArr(a: IArr): INTEGER;
VAR s, i: INTEGER;
BEGIN
  s := 0;
  FOR i := 0 TO NUMBER(a) - 1 DO
    WITH e = a[i] DO
      gl := NEW(Cell);
      gl^.v := e;
      s := (s + e + gl^.v) MOD 1000000007
    END
  END;
  RETURN s
END SumArr;

PROCEDURE MakeTree(d: INTEGER): Node;
VAR n: Node; i: INTEGER;
BEGIN
  n := NEW(Node);
  n^.value := d;
  IF d > 0 THEN
    n^.kids := NEW(Kids, 2);
    FOR i := 0 TO 1 DO
      n^.kids[i] := MakeTree(d - 1)
    END
  ELSE
    n^.kids := NIL
  END;
  RETURN n
END MakeTree;

PROCEDURE CountTree(n: Node): INTEGER;
VAR i, total: INTEGER;
BEGIN
  IF n = NIL THEN
    RETURN 0
  END;
  total := 1;
  IF n^.kids # NIL THEN
    FOR i := 0 TO NUMBER(n^.kids) - 1 DO
      total := total + CountTree(n^.kids[i])
    END
  END;
  RETURN total
END CountTree;

BEGIN
  FOR i0 := 1 TO 2 DO
    gl := BuildList(i0);
    IF t0 MOD 2 = 0 THEN
      t0 := (t0 + 1) MOD 1000000007
    ELSE
      t2 := (t2 + i0) MOD 1000000007
    END;
    FOR i1 := 1 TO 2 DO
      t0 := (t0 + i0 * i1) MOD 1000000007
    END;
    t0 := (t0 + i0 * 8 + 7) MOD 1000000007
  END;
  ga := NEW(IArr, 10);
  Fill(ga);
  t2 := (t2 + SumArr(ga)) MOD 1000000007;
  ga := NEW(IArr, 12);
  Fill(ga);
  t1 := (t1 + SumArr(ga)) MOD 1000000007;
  gl := BuildList(6);
  t1 := (t1 + SumList(gl)) MOD 1000000007;
  gn := MakeTree(4);
  t2 := (t2 + CountTree(gn)) MOD 1000000007;
  sc := NEW(SCache, 5);
  FOR i2 := 1 TO 8 DO
    gl := BuildList(1 + ((i2 * 7) MOD 3));
    sc[i2 MOD 5] := gl;
    sink := (sink + SumList(gl)) MOD 1000000007;
    IF i2 MOD 2 = 0 THEN
      sc[(i2 * 3) MOD 5] := NIL
    END;
    ReqDone()
  END;
  PutInt((sink + t0 + t1 + t2 + t3) MOD 1000000007);
  PutChar(32);
  PutInt(t0 + t1);
  PutChar(32);
  PutInt(t2 + t3);
  PutLn()
END Fz.
