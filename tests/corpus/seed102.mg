MODULE Fz;
(* generated: mgc-fuzz seed 2 *)

TYPE
  Cell = REF CellRec;
  CellRec = RECORD v: INTEGER; next: Cell END;
  Node = REF NodeRec;
  Kids = REF ARRAY OF Node;
  NodeRec = RECORD value: INTEGER; kids: Kids END;
  IArr = REF ARRAY OF INTEGER;
  FArr = REF ARRAY [1..8] OF INTEGER;
  Pair = REF PairRec;
  PairRec = RECORD a, b: INTEGER; left, right: Pair END;
  SCache = REF ARRAY OF Cell;

VAR sink, t0, t1, t2, t3: INTEGER;
    gl: Cell;
    sc: SCache;
    ga: IArr;
    gn: Node;
    gp: Pair;
    fa, fb: FArr;
    done: BOOLEAN;

PROCEDURE BuildList(n: INTEGER): Cell;
VAR l, c: Cell; i: INTEGER;
BEGIN
  l := NIL;
  FOR i := 1 TO n DO
    c := NEW(Cell);
    c^.v := i;
    c^.next := l;
    l := c
  END;
  RETURN l
END BuildList;

PROCEDURE SumList(l: Cell): INTEGER;
VAR s: INTEGER; t: Cell;
BEGIN
  s := 0;
  WHILE l # NIL DO
    WITH w = l^.v DO
      t := NEW(Cell);
      t^.v := w;
      s := (s + w + t^.v) MOD 1000000007
    END;
    l := l^.next
  END;
  RETURN s
END SumList;

PROCEDURE LinkPairs(n: INTEGER): Pair;
VAR h, p: Pair; i: INTEGER;
BEGIN
  h := NEW(Pair);
  h^.a := 1;
  FOR i := 1 TO n DO
    p := NEW(Pair);
    p^.a := i;
    p^.b := i * 2;
    p^.left := h^.left;
    p^.right := h;
    h^.left := p
  END;
  RETURN h
END LinkPairs;

PROCEDURE WalkPairs(p: Pair): INTEGER;
VAR s: INTEGER;
BEGIN
  s := 0;
  WHILE p # NIL DO
    s := (s + p^.a + p^.b) MOD 1000000007;
    p := p^.left
  END;
  RETURN s
END WalkPairs;

PROCEDURE Use(x: INTEGER): INTEGER;
VAR junk: FArr;
BEGIN
  junk := NEW(FArr);
  RETURN x
END Use;

PROCEDURE Work(inv: BOOLEAN; p, q: FArr): INTEGER;
VAR i, s, v: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 8 DO
    IF inv THEN
      v := p[i]
    ELSE
      v := q[i]
    END;
    s := (s + Use(v)) MOD 1000000007
  END;
  RETURN s
END Work;

PROCEDURE Spin();
VAR i: INTEGER;
BEGIN
  i := 0;
  WHILE NOT done DO
    INC(i);
    IF i > 1000000 THEN
      i := 0
    END
  END
END Spin;

BEGIN
  gp := LinkPairs(6);
  t2 := (t2 + WalkPairs(gp)) MOD 1000000007;
  fa := NEW(FArr);
  fb := NEW(FArr);
  FOR i0 := 1 TO 8 DO
    fa[i0] := i0 * 4;
    fb[i0] := i0 * 9
  END;
  sink := (sink + Work(TRUE, fa, fb) * 1000 + Work(FALSE, fa, fb)) MOD 1000000007;
  gl := BuildList(4);
  t1 := (t1 + SumList(gl)) MOD 1000000007;
  fa := NEW(FArr);
  fb := NEW(FArr);
  FOR i1 := 1 TO 8 DO
    fa[i1] := i1 * 8;
    fb[i1] := i1 * 7
  END;
  sink := (sink + Work(TRUE, fa, fb) * 1000 + Work(FALSE, fa, fb)) MOD 1000000007;
  FOR i2 := 1 TO 2 DO
    t1 := (t1 + SumList(gl)) MOD 1000000007;
    t1 := (t1 + i2 * 7 + 78) MOD 1000000007;
    IF t2 MOD 2 = 0 THEN
      t2 := (t2 + 1) MOD 1000000007
    ELSE
      t0 := (t0 + i2) MOD 1000000007
    END
  END;
  sc := NEW(SCache, 4);
  FOR i3 := 1 TO 16 DO
    gl := BuildList(1 + ((i3 * 5) MOD 5));
    sc[i3 MOD 4] := gl;
    sink := (sink + SumList(gl)) MOD 1000000007;
    IF i3 MOD 2 = 0 THEN
      sc[(i3 * 3) MOD 4] := NIL
    END;
    ReqDone()
  END;
  done := TRUE;
  PutInt((sink + t0 + t1 + t2 + t3) MOD 1000000007);
  PutChar(32);
  PutInt(t0 + t1);
  PutChar(32);
  PutInt(t2 + t3);
  PutLn()
END Fz.
