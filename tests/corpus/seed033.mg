MODULE Fz;
(* generated: mgc-fuzz seed 33 *)

TYPE
  Cell = REF CellRec;
  CellRec = RECORD v: INTEGER; next: Cell END;
  Node = REF NodeRec;
  Kids = REF ARRAY OF Node;
  NodeRec = RECORD value: INTEGER; kids: Kids END;
  IArr = REF ARRAY OF INTEGER;
  FArr = REF ARRAY [1..8] OF INTEGER;
  Pair = REF PairRec;
  PairRec = RECORD a, b: INTEGER; left, right: Pair END;

VAR sink, t0, t1, t2, t3: INTEGER;
    gl: Cell;
    ga: IArr;
    gn: Node;
    gp: Pair;
    fa, fb: FArr;
    done: BOOLEAN;

PROCEDURE BuildList(n: INTEGER): Cell;
VAR l, c: Cell; i: INTEGER;
BEGIN
  l := NIL;
  FOR i := 1 TO n DO
    c := NEW(Cell);
    c^.v := i;
    c^.next := l;
    l := c
  END;
  RETURN l
END BuildList;

PROCEDURE Fill(a: IArr);
VAR i: INTEGER;
BEGIN
  FOR i := 0 TO NUMBER(a) - 1 DO
    a[i] := i * 3 + 1
  END
END Fill;

PROCEDURE SumArr(a: IArr): INTEGER;
VAR s, i: INTEGER;
BEGIN
  s := 0;
  FOR i := 0 TO NUMBER(a) - 1 DO
    WITH e = a[i] DO
      gl := NEW(Cell);
      gl^.v := e;
      s := (s + e + gl^.v) MOD 1000000007
    END
  END;
  RETURN s
END SumArr;

PROCEDURE LinkPairs(n: INTEGER): Pair;
VAR h, p: Pair; i: INTEGER;
BEGIN
  h := NEW(Pair);
  h^.a := 1;
  FOR i := 1 TO n DO
    p := NEW(Pair);
    p^.a := i;
    p^.b := i * 2;
    p^.left := h^.left;
    p^.right := h;
    h^.left := p
  END;
  RETURN h
END LinkPairs;

PROCEDURE WalkPairs(p: Pair): INTEGER;
VAR s: INTEGER;
BEGIN
  s := 0;
  WHILE p # NIL DO
    s := (s + p^.a + p^.b) MOD 1000000007;
    p := p^.left
  END;
  RETURN s
END WalkPairs;

PROCEDURE Bump(VAR x: INTEGER; n: INTEGER);
VAR c: Cell;
BEGIN
  c := NEW(Cell);
  c^.v := n;
  x := (x + c^.v) MOD 1000000007
END Bump;

BEGIN
  gp := LinkPairs(3);
  t3 := (t3 + WalkPairs(gp)) MOD 1000000007;
  FOR i0 := 1 TO 3 DO
    IF t0 MOD 2 = 0 THEN
      t0 := (t0 + 1) MOD 1000000007
    ELSE
      t1 := (t1 + i0) MOD 1000000007
    END
  END;
  ga := NEW(IArr, 4);
  Fill(ga);
  t1 := (t1 + SumArr(ga)) MOD 1000000007;
  gp := LinkPairs(9);
  t3 := (t3 + WalkPairs(gp)) MOD 1000000007;
  Bump(t1, 57);
  FOR i1 := 1 TO 3 DO
    FOR i2 := 1 TO 4 DO
      t1 := (t1 + i1 * i2) MOD 1000000007
    END;
    gl := BuildList(i1);
    gl := BuildList(i1);
    t1 := (t1 + i1 * 2 + 81) MOD 1000000007
  END;
  Bump(t2, 6);
  Bump(t2, 98);
  PutInt((sink + t0 + t1 + t2 + t3) MOD 1000000007);
  PutChar(32);
  PutInt(t0 + t1);
  PutChar(32);
  PutInt(t2 + t3);
  PutLn()
END Fz.
