MODULE Fz;
(* generated: mgc-fuzz seed 19 *)

TYPE
  Cell = REF CellRec;
  CellRec = RECORD v: INTEGER; next: Cell END;
  Node = REF NodeRec;
  Kids = REF ARRAY OF Node;
  NodeRec = RECORD value: INTEGER; kids: Kids END;
  IArr = REF ARRAY OF INTEGER;
  FArr = REF ARRAY [1..8] OF INTEGER;
  Pair = REF PairRec;
  PairRec = RECORD a, b: INTEGER; left, right: Pair END;

VAR sink, t0, t1, t2, t3: INTEGER;
    gl: Cell;
    ga: IArr;
    gn: Node;
    gp: Pair;
    fa, fb: FArr;
    done: BOOLEAN;

PROCEDURE BuildList(n: INTEGER): Cell;
VAR l, c: Cell; i: INTEGER;
BEGIN
  l := NIL;
  FOR i := 1 TO n DO
    c := NEW(Cell);
    c^.v := i;
    c^.next := l;
    l := c
  END;
  RETURN l
END BuildList;

PROCEDURE MakeTree(d: INTEGER): Node;
VAR n: Node; i: INTEGER;
BEGIN
  n := NEW(Node);
  n^.value := d;
  IF d > 0 THEN
    n^.kids := NEW(Kids, 3);
    FOR i := 0 TO 2 DO
      n^.kids[i] := MakeTree(d - 1)
    END
  ELSE
    n^.kids := NIL
  END;
  RETURN n
END MakeTree;

PROCEDURE CountTree(n: Node): INTEGER;
VAR i, total: INTEGER;
BEGIN
  IF n = NIL THEN
    RETURN 0
  END;
  total := 1;
  IF n^.kids # NIL THEN
    FOR i := 0 TO NUMBER(n^.kids) - 1 DO
      total := total + CountTree(n^.kids[i])
    END
  END;
  RETURN total
END CountTree;

PROCEDURE Use(x: INTEGER): INTEGER;
VAR junk: FArr;
BEGIN
  junk := NEW(FArr);
  RETURN x
END Use;

PROCEDURE Work(inv: BOOLEAN; p, q: FArr): INTEGER;
VAR i, s, v: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 8 DO
    IF inv THEN
      v := p[i]
    ELSE
      v := q[i]
    END;
    s := (s + Use(v)) MOD 1000000007
  END;
  RETURN s
END Work;

BEGIN
  gn := MakeTree(4);
  t1 := (t1 + CountTree(gn)) MOD 1000000007;
  FOR i0 := 1 TO 6 DO
    gl := BuildList(i0);
    FOR i1 := 1 TO 3 DO
      t3 := (t3 + i0 * i1) MOD 1000000007
    END;
    FOR i2 := 1 TO 5 DO
      t2 := (t2 + i0 * i2) MOD 1000000007
    END
  END;
  fa := NEW(FArr);
  fb := NEW(FArr);
  FOR i3 := 1 TO 8 DO
    fa[i3] := i3 * 9;
    fb[i3] := i3 * 8
  END;
  sink := (sink + Work(TRUE, fa, fb) * 1000 + Work(FALSE, fa, fb)) MOD 1000000007;
  fa := NEW(FArr);
  fb := NEW(FArr);
  FOR i4 := 1 TO 8 DO
    fa[i4] := i4 * 2;
    fb[i4] := i4 * 8
  END;
  sink := (sink + Work(TRUE, fa, fb) * 1000 + Work(FALSE, fa, fb)) MOD 1000000007;
  gn := MakeTree(3);
  t3 := (t3 + CountTree(gn)) MOD 1000000007;
  gn := MakeTree(2);
  t3 := (t3 + CountTree(gn)) MOD 1000000007;
  PutInt((sink + t0 + t1 + t2 + t3) MOD 1000000007);
  PutChar(32);
  PutInt(t0 + t1);
  PutChar(32);
  PutInt(t2 + t3);
  PutLn()
END Fz.
