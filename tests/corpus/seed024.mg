MODULE Fz;
(* generated: mgc-fuzz seed 24 *)

TYPE
  Cell = REF CellRec;
  CellRec = RECORD v: INTEGER; next: Cell END;
  Node = REF NodeRec;
  Kids = REF ARRAY OF Node;
  NodeRec = RECORD value: INTEGER; kids: Kids END;
  IArr = REF ARRAY OF INTEGER;
  FArr = REF ARRAY [1..8] OF INTEGER;
  Pair = REF PairRec;
  PairRec = RECORD a, b: INTEGER; left, right: Pair END;

VAR sink, t0, t1, t2, t3: INTEGER;
    gl: Cell;
    ga: IArr;
    gn: Node;
    gp: Pair;
    fa, fb: FArr;
    done: BOOLEAN;

PROCEDURE BuildList(n: INTEGER): Cell;
VAR l, c: Cell; i: INTEGER;
BEGIN
  l := NIL;
  FOR i := 1 TO n DO
    c := NEW(Cell);
    c^.v := i;
    c^.next := l;
    l := c
  END;
  RETURN l
END BuildList;

PROCEDURE SumList(l: Cell): INTEGER;
VAR s: INTEGER; t: Cell;
BEGIN
  s := 0;
  WHILE l # NIL DO
    WITH w = l^.v DO
      t := NEW(Cell);
      t^.v := w;
      s := (s + w + t^.v) MOD 1000000007
    END;
    l := l^.next
  END;
  RETURN s
END SumList;

PROCEDURE Fill(a: IArr);
VAR i: INTEGER;
BEGIN
  FOR i := 0 TO NUMBER(a) - 1 DO
    a[i] := i * 3 + 1
  END
END Fill;

PROCEDURE SumArr(a: IArr): INTEGER;
VAR s, i: INTEGER;
BEGIN
  s := 0;
  FOR i := 0 TO NUMBER(a) - 1 DO
    WITH e = a[i] DO
      gl := NEW(Cell);
      gl^.v := e;
      s := (s + e + gl^.v) MOD 1000000007
    END
  END;
  RETURN s
END SumArr;

PROCEDURE MakeTree(d: INTEGER): Node;
VAR n: Node; i: INTEGER;
BEGIN
  n := NEW(Node);
  n^.value := d;
  IF d > 0 THEN
    n^.kids := NEW(Kids, 2);
    FOR i := 0 TO 1 DO
      n^.kids[i] := MakeTree(d - 1)
    END
  ELSE
    n^.kids := NIL
  END;
  RETURN n
END MakeTree;

PROCEDURE CountTree(n: Node): INTEGER;
VAR i, total: INTEGER;
BEGIN
  IF n = NIL THEN
    RETURN 0
  END;
  total := 1;
  IF n^.kids # NIL THEN
    FOR i := 0 TO NUMBER(n^.kids) - 1 DO
      total := total + CountTree(n^.kids[i])
    END
  END;
  RETURN total
END CountTree;

PROCEDURE LinkPairs(n: INTEGER): Pair;
VAR h, p: Pair; i: INTEGER;
BEGIN
  h := NEW(Pair);
  h^.a := 1;
  FOR i := 1 TO n DO
    p := NEW(Pair);
    p^.a := i;
    p^.b := i * 2;
    p^.left := h^.left;
    p^.right := h;
    h^.left := p
  END;
  RETURN h
END LinkPairs;

PROCEDURE WalkPairs(p: Pair): INTEGER;
VAR s: INTEGER;
BEGIN
  s := 0;
  WHILE p # NIL DO
    s := (s + p^.a + p^.b) MOD 1000000007;
    p := p^.left
  END;
  RETURN s
END WalkPairs;

PROCEDURE Bump(VAR x: INTEGER; n: INTEGER);
VAR c: Cell;
BEGIN
  c := NEW(Cell);
  c^.v := n;
  x := (x + c^.v) MOD 1000000007
END Bump;

PROCEDURE Use(x: INTEGER): INTEGER;
VAR junk: FArr;
BEGIN
  junk := NEW(FArr);
  RETURN x
END Use;

PROCEDURE Work(inv: BOOLEAN; p, q: FArr): INTEGER;
VAR i, s, v: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 8 DO
    IF inv THEN
      v := p[i]
    ELSE
      v := q[i]
    END;
    s := (s + Use(v)) MOD 1000000007
  END;
  RETURN s
END Work;

BEGIN
  ga := NEW(IArr, 8);
  Fill(ga);
  t2 := (t2 + SumArr(ga)) MOD 1000000007;
  gl := BuildList(6);
  t0 := (t0 + SumList(gl)) MOD 1000000007;
  Bump(t2, 57);
  fa := NEW(FArr);
  fb := NEW(FArr);
  FOR i0 := 1 TO 8 DO
    fa[i0] := i0 * 7;
    fb[i0] := i0 * 1
  END;
  sink := (sink + Work(TRUE, fa, fb) * 1000 + Work(FALSE, fa, fb)) MOD 1000000007;
  gl := BuildList(8);
  t0 := (t0 + SumList(gl)) MOD 1000000007;
  gp := LinkPairs(5);
  t3 := (t3 + WalkPairs(gp)) MOD 1000000007;
  gp := LinkPairs(4);
  t0 := (t0 + WalkPairs(gp)) MOD 1000000007;
  gl := BuildList(4);
  t2 := (t2 + SumList(gl)) MOD 1000000007;
  gn := MakeTree(4);
  t0 := (t0 + CountTree(gn)) MOD 1000000007;
  FOR i1 := 1 TO 6 DO
    t2 := (t2 + i1 * 4 + 47) MOD 1000000007;
    t3 := (t3 + i1 * 9 + 59) MOD 1000000007
  END;
  PutInt((sink + t0 + t1 + t2 + t3) MOD 1000000007);
  PutChar(32);
  PutInt(t0 + t1);
  PutChar(32);
  PutInt(t2 + t3);
  PutLn()
END Fz.
