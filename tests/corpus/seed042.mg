MODULE Fz;
(* generated: mgc-fuzz seed 42 *)

TYPE
  Cell = REF CellRec;
  CellRec = RECORD v: INTEGER; next: Cell END;
  Node = REF NodeRec;
  Kids = REF ARRAY OF Node;
  NodeRec = RECORD value: INTEGER; kids: Kids END;
  IArr = REF ARRAY OF INTEGER;
  FArr = REF ARRAY [1..8] OF INTEGER;
  Pair = REF PairRec;
  PairRec = RECORD a, b: INTEGER; left, right: Pair END;

VAR sink, t0, t1, t2, t3: INTEGER;
    gl: Cell;
    ga: IArr;
    gn: Node;
    gp: Pair;
    fa, fb: FArr;
    done: BOOLEAN;

PROCEDURE BuildList(n: INTEGER): Cell;
VAR l, c: Cell; i: INTEGER;
BEGIN
  l := NIL;
  FOR i := 1 TO n DO
    c := NEW(Cell);
    c^.v := i;
    c^.next := l;
    l := c
  END;
  RETURN l
END BuildList;

PROCEDURE SumList(l: Cell): INTEGER;
VAR s: INTEGER; t: Cell;
BEGIN
  s := 0;
  WHILE l # NIL DO
    WITH w = l^.v DO
      t := NEW(Cell);
      t^.v := w;
      s := (s + w + t^.v) MOD 1000000007
    END;
    l := l^.next
  END;
  RETURN s
END SumList;

PROCEDURE LinkPairs(n: INTEGER): Pair;
VAR h, p: Pair; i: INTEGER;
BEGIN
  h := NEW(Pair);
  h^.a := 1;
  FOR i := 1 TO n DO
    p := NEW(Pair);
    p^.a := i;
    p^.b := i * 2;
    p^.left := h^.left;
    p^.right := h;
    h^.left := p
  END;
  RETURN h
END LinkPairs;

PROCEDURE WalkPairs(p: Pair): INTEGER;
VAR s: INTEGER;
BEGIN
  s := 0;
  WHILE p # NIL DO
    s := (s + p^.a + p^.b) MOD 1000000007;
    p := p^.left
  END;
  RETURN s
END WalkPairs;

BEGIN
  FOR i0 := 1 TO 4 DO
    FOR i1 := 1 TO 4 DO
      t1 := (t1 + i0 * i1) MOD 1000000007
    END;
    gl := BuildList(i0)
  END;
  FOR i2 := 1 TO 5 DO
    IF t2 MOD 2 = 0 THEN
      t2 := (t2 + 1) MOD 1000000007
    ELSE
      t1 := (t1 + i2) MOD 1000000007
    END;
    IF t3 MOD 2 = 0 THEN
      t3 := (t3 + 1) MOD 1000000007
    ELSE
      t0 := (t0 + i2) MOD 1000000007
    END;
    gl := BuildList(i2);
    IF t1 MOD 2 = 0 THEN
      t1 := (t1 + 1) MOD 1000000007
    ELSE
      t1 := (t1 + i2) MOD 1000000007
    END
  END;
  gp := LinkPairs(4);
  t1 := (t1 + WalkPairs(gp)) MOD 1000000007;
  gp := LinkPairs(10);
  t3 := (t3 + WalkPairs(gp)) MOD 1000000007;
  gl := BuildList(8);
  t1 := (t1 + SumList(gl)) MOD 1000000007;
  PutInt((sink + t0 + t1 + t2 + t3) MOD 1000000007);
  PutChar(32);
  PutInt(t0 + t1);
  PutChar(32);
  PutInt(t2 + t3);
  PutLn()
END Fz.
