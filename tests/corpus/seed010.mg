MODULE Fz;
(* generated: mgc-fuzz seed 10 *)

TYPE
  Cell = REF CellRec;
  CellRec = RECORD v: INTEGER; next: Cell END;
  Node = REF NodeRec;
  Kids = REF ARRAY OF Node;
  NodeRec = RECORD value: INTEGER; kids: Kids END;
  IArr = REF ARRAY OF INTEGER;
  FArr = REF ARRAY [1..8] OF INTEGER;
  Pair = REF PairRec;
  PairRec = RECORD a, b: INTEGER; left, right: Pair END;

VAR sink, t0, t1, t2, t3: INTEGER;
    gl: Cell;
    ga: IArr;
    gn: Node;
    gp: Pair;
    fa, fb: FArr;
    done: BOOLEAN;

PROCEDURE MakeTree(d: INTEGER): Node;
VAR n: Node; i: INTEGER;
BEGIN
  n := NEW(Node);
  n^.value := d;
  IF d > 0 THEN
    n^.kids := NEW(Kids, 3);
    FOR i := 0 TO 2 DO
      n^.kids[i] := MakeTree(d - 1)
    END
  ELSE
    n^.kids := NIL
  END;
  RETURN n
END MakeTree;

PROCEDURE CountTree(n: Node): INTEGER;
VAR i, total: INTEGER;
BEGIN
  IF n = NIL THEN
    RETURN 0
  END;
  total := 1;
  IF n^.kids # NIL THEN
    FOR i := 0 TO NUMBER(n^.kids) - 1 DO
      total := total + CountTree(n^.kids[i])
    END
  END;
  RETURN total
END CountTree;

PROCEDURE LinkPairs(n: INTEGER): Pair;
VAR h, p: Pair; i: INTEGER;
BEGIN
  h := NEW(Pair);
  h^.a := 1;
  FOR i := 1 TO n DO
    p := NEW(Pair);
    p^.a := i;
    p^.b := i * 2;
    p^.left := h^.left;
    p^.right := h;
    h^.left := p
  END;
  RETURN h
END LinkPairs;

PROCEDURE WalkPairs(p: Pair): INTEGER;
VAR s: INTEGER;
BEGIN
  s := 0;
  WHILE p # NIL DO
    s := (s + p^.a + p^.b) MOD 1000000007;
    p := p^.left
  END;
  RETURN s
END WalkPairs;

PROCEDURE Bump(VAR x: INTEGER; n: INTEGER);
VAR c: Cell;
BEGIN
  c := NEW(Cell);
  c^.v := n;
  x := (x + c^.v) MOD 1000000007
END Bump;

PROCEDURE Use(x: INTEGER): INTEGER;
VAR junk: FArr;
BEGIN
  junk := NEW(FArr);
  RETURN x
END Use;

PROCEDURE Work(inv: BOOLEAN; p, q: FArr): INTEGER;
VAR i, s, v: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 8 DO
    IF inv THEN
      v := p[i]
    ELSE
      v := q[i]
    END;
    s := (s + Use(v)) MOD 1000000007
  END;
  RETURN s
END Work;

PROCEDURE Spin();
VAR i: INTEGER;
BEGIN
  i := 0;
  WHILE NOT done DO
    INC(i);
    IF i > 1000000 THEN
      i := 0
    END
  END
END Spin;

BEGIN
  fa := NEW(FArr);
  fb := NEW(FArr);
  FOR i0 := 1 TO 8 DO
    fa[i0] := i0 * 2;
    fb[i0] := i0 * 7
  END;
  sink := (sink + Work(TRUE, fa, fb) * 1000 + Work(FALSE, fa, fb)) MOD 1000000007;
  gn := MakeTree(3);
  t1 := (t1 + CountTree(gn)) MOD 1000000007;
  gp := LinkPairs(3);
  t0 := (t0 + WalkPairs(gp)) MOD 1000000007;
  fa := NEW(FArr);
  fb := NEW(FArr);
  FOR i1 := 1 TO 8 DO
    fa[i1] := i1 * 8;
    fb[i1] := i1 * 2
  END;
  sink := (sink + Work(TRUE, fa, fb) * 1000 + Work(FALSE, fa, fb)) MOD 1000000007;
  gn := MakeTree(2);
  t3 := (t3 + CountTree(gn)) MOD 1000000007;
  fa := NEW(FArr);
  fb := NEW(FArr);
  FOR i2 := 1 TO 8 DO
    fa[i2] := i2 * 6;
    fb[i2] := i2 * 6
  END;
  sink := (sink + Work(TRUE, fa, fb) * 1000 + Work(FALSE, fa, fb)) MOD 1000000007;
  Bump(t3, 47);
  FOR i3 := 1 TO 6 DO
    IF t2 MOD 2 = 0 THEN
      t2 := (t2 + 1) MOD 1000000007
    ELSE
      t3 := (t3 + i3) MOD 1000000007
    END;
    FOR i4 := 1 TO 5 DO
      t2 := (t2 + i3 * i4) MOD 1000000007
    END;
    FOR i5 := 1 TO 2 DO
      t1 := (t1 + i3 * i5) MOD 1000000007
    END;
    IF t1 MOD 2 = 0 THEN
      t1 := (t1 + 1) MOD 1000000007
    ELSE
      t3 := (t3 + i3) MOD 1000000007
    END
  END;
  FOR i6 := 1 TO 3 DO
    t1 := (t1 + i6 * 4 + 3) MOD 1000000007;
    FOR i7 := 1 TO 2 DO
      t1 := (t1 + i6 * i7) MOD 1000000007
    END;
    FOR i8 := 1 TO 2 DO
      t3 := (t3 + i6 * i8) MOD 1000000007
    END
  END;
  done := TRUE;
  PutInt((sink + t0 + t1 + t2 + t3) MOD 1000000007);
  PutChar(32);
  PutInt(t0 + t1);
  PutChar(32);
  PutInt(t2 + t3);
  PutLn()
END Fz.
