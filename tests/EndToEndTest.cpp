//===- tests/EndToEndTest.cpp - Benchmark programs, full matrix ------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "Programs.h"

using namespace mgc;
using namespace mgc::test;

namespace {

struct Config {
  int Program;   ///< Index into programs::All.
  int OptLevel;  ///< 0 or 2.
  bool Stress;
  bool CiscFold;
  bool Split;    ///< Path splitting instead of path variables.
};

std::string configName(const ::testing::TestParamInfo<Config> &Info) {
  const Config &C = Info.param;
  std::string S = programs::All[C.Program].Name;
  S += C.OptLevel ? "_opt" : "_noopt";
  if (C.Stress)
    S += "_stress";
  if (C.CiscFold)
    S += "_cisc";
  if (C.Split)
    S += "_split";
  return S;
}

class BenchmarkMatrix : public ::testing::TestWithParam<Config> {};

TEST_P(BenchmarkMatrix, ProducesExpectedOutput) {
  const Config &C = GetParam();
  const auto &P = programs::All[C.Program];

  driver::CompilerOptions CO;
  CO.OptLevel = C.OptLevel;
  CO.CiscFold = C.CiscFold;
  CO.Mode = C.Split ? driver::Disambiguation::PathSplitting
                    : driver::Disambiguation::PathVariables;

  vm::VMOptions VO;
  VO.GcStress = C.Stress;
  VO.HeapBytes = C.Stress ? (1u << 20) : (48u << 10);
  VO.StackWords = 1u << 20;

  RunResult R = compileAndRun(P.Source, CO, VO);
  ASSERT_TRUE(R.Ok) << P.Name << ": " << R.Error;
  EXPECT_EQ(R.Out, P.Expected) << P.Name;
  // takl allocates only three small lists and legitimately never fills
  // the heap; the other three programs must collect for real.
  if (!C.Stress && std::string(P.Name) != "takl")
    EXPECT_GT(R.Stats.Collections, 0u)
        << P.Name << ": the heap is sized to force real collections";
}

std::vector<Config> allConfigs() {
  std::vector<Config> Out;
  for (int P = 0; P != 4; ++P)
    for (int Opt : {0, 2})
      for (bool Stress : {false, true})
        for (bool Cisc : {false, true})
          Out.push_back({P, Opt, Stress, Cisc, false});
  // The split mode only differs when ambiguity machinery runs; cover it at
  // -O2 without stress for each program.
  for (int P = 0; P != 4; ++P)
    Out.push_back({P, 2, false, false, true});
  return Out;
}

INSTANTIATE_TEST_SUITE_P(All, BenchmarkMatrix,
                         ::testing::ValuesIn(allConfigs()), configName);

//===----------------------------------------------------------------------===//
// Table sanity on the real programs
//===----------------------------------------------------------------------===//

TEST(EndToEnd, TableStatisticsAreNonTrivial) {
  for (const auto &P : programs::All) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    auto C = driver::compile(P.Source, CO);
    ASSERT_TRUE(C.Prog != nullptr) << P.Name;
    const auto &S = C.Prog->Stats;
    EXPECT_GT(S.NGC, 0u) << P.Name;
    EXPECT_GT(S.NPTRS, 0u) << P.Name;
    EXPECT_GT(S.NDEL + S.NREG + S.NDER, 0u) << P.Name;
    const auto &Z = C.Prog->Sizes;
    EXPECT_GT(Z.DeltaPP, 0u) << P.Name;
    // The compression chain must be monotone.
    EXPECT_LE(Z.DeltaPP, Z.DeltaPack) << P.Name;
    EXPECT_LE(Z.DeltaPack, Z.DeltaPlain) << P.Name;
    EXPECT_LE(Z.DeltaPrev, Z.DeltaPlain) << P.Name;
    EXPECT_LE(Z.DeltaPP, Z.DeltaPrev) << P.Name;
    EXPECT_LE(Z.FullPack, Z.FullPlain) << P.Name;
  }
}

TEST(EndToEnd, PackedTablesAreModestFractionOfCode) {
  // The paper's headline result: packing plus previous-compression brings
  // δ-main tables to a modest fraction of optimized code size (~16% for
  // them; we only require the same order of magnitude and that the
  // uncompressed form is several times larger).
  for (const auto &P : programs::All) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    auto C = driver::compile(P.Source, CO);
    ASSERT_TRUE(C.Prog != nullptr) << P.Name;
    double Code = static_cast<double>(C.Prog->codeSizeBytes());
    double PP = static_cast<double>(C.Prog->Sizes.DeltaPP);
    double Plain = static_cast<double>(C.Prog->Sizes.DeltaPlain);
    EXPECT_LT(PP / Code, 0.60) << P.Name << " PP% = " << 100 * PP / Code;
    EXPECT_GT(Plain / PP, 2.0)
        << P.Name << ": compression should win a factor of a few";
  }
}

TEST(EndToEnd, EveryCallSiteIsAKnownGcPoint) {
  // Decoding must succeed for every recorded gc-point of every function.
  for (const auto &P : programs::All) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    auto C = driver::compile(P.Source, CO);
    ASSERT_TRUE(C.Prog != nullptr);
    for (const auto &Maps : C.Prog->Maps)
      for (unsigned K = 0; K != Maps.RetPCs.size(); ++K) {
        gcmaps::GcPointInfo Info = gcmaps::decodeGcPoint(Maps, K);
        // Locations must decode to something resolvable.
        for (const auto &L : Info.LiveSlots)
          EXPECT_NE(L.K, vm::Location::Kind::None);
        for (const auto &D : Info.Derivs) {
          EXPECT_NE(D.Target.K, vm::Location::Kind::None);
          if (!D.Ambiguous)
            EXPECT_FALSE(D.Bases.empty());
        }
      }
  }
}

TEST(EndToEnd, OutputsIdenticalAcrossHeapSizes) {
  // Collection timing must never affect results: run destroy with heaps
  // from tight to roomy.
  for (size_t Heap : {48u << 10, 64u << 10, 256u << 10, 4u << 20}) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    vm::VMOptions VO;
    VO.HeapBytes = Heap;
    VO.StackWords = 1u << 20;
    RunResult R = compileAndRun(programs::DestroySource, CO, VO);
    ASSERT_TRUE(R.Ok) << "heap=" << Heap << ": " << R.Error;
    EXPECT_EQ(R.Out, programs::DestroyExpected) << "heap=" << Heap;
  }
}

} // namespace
