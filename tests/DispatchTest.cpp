//===- tests/DispatchTest.cpp - Cross-tier execution equivalence ----------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The threaded dispatch tier must be *bit-identical* to the reference
/// switch interpreter on everything the VM can observe: program output,
/// exit status, and every non-timing VMStats field — including the
/// table-driven collection counts, which only match if gc-point ordinals,
/// SuspendPCs, and the per-collection Stats.Instrs snapshots agree.  The
/// suite sweeps the §6 benchmarks and the frozen fuzz corpus across
/// -O0/-O2 × two-space/gen-gc, and directs a stressed, cross-checked
/// collection storm through the threaded executor so every root/derived
/// decode happens at a PC the threaded tier published mid-quantum.
///
//===----------------------------------------------------------------------===//

#include "Corpus.h"
#include "Programs.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace mgc;
using namespace mgc::test;

namespace {

struct TierOutcome {
  bool Ok = false;
  std::string Out;
  std::string Error;
  vm::VMStats S;
};

/// Runs an already-compiled program under one dispatch tier.
TierOutcome runTier(const vm::Program &Prog, vm::DispatchTier Tier,
                    vm::VMOptions VO, gc::CollectorOptions GCO,
                    bool SpawnSpin = false) {
  VO.Dispatch = Tier;
  vm::VM M(Prog, VO);
  gc::installPreciseCollector(M, GCO);
  if (SpawnSpin) {
    int Idx = -1;
    for (unsigned F = 0; F != Prog.Funcs.size(); ++F)
      if (Prog.Funcs[F].Name == "Spin")
        Idx = static_cast<int>(F);
    if (Idx >= 0)
      M.spawnThread(static_cast<unsigned>(Idx));
  }
  TierOutcome O;
  O.Ok = M.run();
  O.Out = M.Out;
  O.Error = M.Error;
  O.S = M.Stats;
  return O;
}

/// Asserts the two tiers agree on every non-timing observable.  Timing
/// fields (GcNanos etc.) necessarily differ; everything else must not.
void expectIdentical(const TierOutcome &Sw, const TierOutcome &Th,
                     const std::string &Ctx) {
  EXPECT_EQ(Sw.Ok, Th.Ok) << Ctx;
  EXPECT_EQ(Sw.Out, Th.Out) << Ctx;
  EXPECT_EQ(Sw.Error, Th.Error) << Ctx;
#define CMP(F) EXPECT_EQ(Sw.S.F, Th.S.F) << Ctx << " (" #F ")"
  CMP(Instrs);
  CMP(Collections);
  CMP(MinorCollections);
  CMP(FramesTraced);
  CMP(BytesCopied);
  CMP(ObjectsCopied);
  CMP(WriteBarriersRun);
  CMP(RemSetRecords);
  CMP(RemSetPeak);
  CMP(DerivedAdjusted);
  CMP(RootsTraced);
  CMP(DecodeCacheHits);
  CMP(DecodeCacheMisses);
  CMP(DecodeBytesSkipped);
  CMP(StackTraceStartInstrs);
  CMP(RendezvousSteps);
#undef CMP
}

/// Compiles \p Source and runs it under both tiers with identical options,
/// asserting bit-identical outcomes.  Returns the threaded outcome for
/// extra expectations.
TierOutcome compareTiers(const std::string &Source,
                         driver::CompilerOptions CO, vm::VMOptions VO,
                         gc::CollectorOptions GCO, const std::string &Ctx,
                         bool SpawnSpin = false) {
  auto C = driver::compile(Source, CO);
  if (!C.Prog) {
    ADD_FAILURE() << Ctx << " compilation failed:\n" << C.Diags.str();
    return {};
  }
  TierOutcome Sw =
      runTier(*C.Prog, vm::DispatchTier::Switch, VO, GCO, SpawnSpin);
  TierOutcome Th =
      runTier(*C.Prog, vm::DispatchTier::Threaded, VO, GCO, SpawnSpin);
  expectIdentical(Sw, Th, Ctx);
  return Th;
}

//===----------------------------------------------------------------------===//
// §6 benchmarks: -O0/-O2 × two-space/gen-gc
//===----------------------------------------------------------------------===//

TEST(DispatchEquivalence, Sec6Benchmarks) {
  uint64_t TotalCollections = 0;
  for (const programs::NamedProgram &P : programs::All) {
    for (int Opt : {0, 2}) {
      for (bool GenGc : {false, true}) {
        driver::CompilerOptions CO;
        CO.OptLevel = Opt;
        CO.WriteBarriers = GenGc;
        vm::VMOptions VO;
        VO.GenGc = GenGc;
        // Small enough that the allocation-heavy benchmarks collect
        // repeatedly (48 KiB is the e2e sweep's non-stress pressure size).
        VO.HeapBytes = 48u << 10;
        gc::CollectorOptions GCO;
        GCO.CrossCheck = true;
        std::string Ctx = std::string(P.Name) + " -O" +
                          std::to_string(Opt) +
                          (GenGc ? " gen-gc" : " two-space");
        TierOutcome Th = compareTiers(P.Source, CO, VO, GCO, Ctx);
        EXPECT_TRUE(Th.Ok) << Ctx << ": " << Th.Error;
        EXPECT_EQ(Th.Out, P.Expected) << Ctx;
        TotalCollections += Th.S.Collections;
      }
    }
  }
  // The sweep as a whole must exercise cross-tier collections, even if an
  // individual benchmark fits the pressure heap without collecting.
  EXPECT_GT(TotalCollections, 0u);
}

//===----------------------------------------------------------------------===//
// Frozen fuzz corpus, stressed and under heap pressure
//===----------------------------------------------------------------------===//

class DispatchCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(DispatchCorpus, TiersBitIdentical) {
  const CorpusProgram &P = corpusProgram(GetParam());
  for (int Opt : {0, 2}) {
    for (bool GenGc : {false, true}) {
      driver::CompilerOptions CO;
      CO.OptLevel = Opt;
      CO.WriteBarriers = GenGc;
      CO.ThreadedPolls = P.HasSpin;
      vm::VMOptions VO;
      VO.GenGc = GenGc;
      VO.HeapBytes = 1u << 20;
      VO.GcStress = true;
      VO.InstrBudget = 50'000'000;
      gc::CollectorOptions GCO;
      GCO.CrossCheck = true;
      std::string Ctx = P.Name + " -O" + std::to_string(Opt) +
                        (GenGc ? " gen-gc" : " two-space") + " stress";
      // Spin programs also spawn their thread: the §5.3 rendezvous (and
      // its RendezvousSteps ordinal) must agree across tiers too.
      compareTiers(P.Source, CO, VO, GCO, Ctx, P.HasSpin);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, DispatchCorpus,
                         ::testing::ValuesIn(corpusNames()),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           return I.param;
                         });

//===----------------------------------------------------------------------===//
// Directed: collections triggered mid-threaded-execution
//===----------------------------------------------------------------------===//

TEST(DispatchDirected, MidExecutionCollectionCrosscheck) {
  // Allocation inside a call chain inside a loop: every collection is
  // triggered from deep inside a threaded quantum, so the gc-point PC the
  // executor publishes (and the frames the tables describe there) is
  // exercised at many distinct call depths.  --gc-crosscheck makes the
  // collector verify every accelerated root/derived decode against the
  // reference decoder, aborting on mismatch.
  const char *Source = R"(
MODULE M;
TYPE Node = REF RECORD next: Node; val: INTEGER END;

PROCEDURE Build(n: INTEGER): Node;
VAR head, p: Node; i: INTEGER;
BEGIN
  head := NIL;
  FOR i := 0 TO n - 1 DO
    p := NEW(Node);
    p^.next := head;
    p^.val := i;
    head := p
  END;
  RETURN head
END Build;

PROCEDURE Sum(l: Node): INTEGER;
VAR s: INTEGER;
BEGIN
  s := 0;
  WHILE l # NIL DO s := s + l^.val; l := l^.next END;
  RETURN s
END Sum;

VAR r, k: INTEGER;
BEGIN
  r := 0;
  FOR k := 1 TO 40 DO
    r := r + Sum(Build(50))
  END;
  PutInt(r); PutLn();
END M.)";
  for (bool GenGc : {false, true}) {
    driver::CompilerOptions CO;
    CO.WriteBarriers = GenGc;
    vm::VMOptions VO;
    VO.GenGc = GenGc;
    VO.HeapBytes = 256u << 10;
    VO.GcStress = true;
    gc::CollectorOptions GCO;
    GCO.CrossCheck = true;
    auto C = driver::compile(Source, CO);
    ASSERT_TRUE(C.Prog) << C.Diags.str();
    TierOutcome Th = runTier(*C.Prog, vm::DispatchTier::Threaded, VO, GCO);
    ASSERT_TRUE(Th.Ok) << Th.Error;
    EXPECT_EQ(Th.Out, "49000\n");
    EXPECT_GT(Th.S.Collections, 100u)
        << "stress mode must collect at every allocation";
    // And the tiers agree on the storm, collection for collection.
    TierOutcome Sw = runTier(*C.Prog, vm::DispatchTier::Switch, VO, GCO);
    expectIdentical(Sw, Th, GenGc ? "directed gen-gc" : "directed two-space");
  }
}

//===----------------------------------------------------------------------===//
// Tier selection plumbing
//===----------------------------------------------------------------------===//

TEST(DispatchTier, NamesAndActiveSelection) {
  EXPECT_STREQ(vm::dispatchTierName(vm::DispatchTier::Threaded), "threaded");
  EXPECT_STREQ(vm::dispatchTierName(vm::DispatchTier::Switch), "switch");

  driver::CompilerOptions CO;
  auto C =
      driver::compile("MODULE M;\nBEGIN PutInt(1); PutLn();\nEND M.", CO);
  ASSERT_TRUE(C.Prog) << C.Diags.str();
  vm::VMOptions VO;
  VO.Dispatch = vm::DispatchTier::Switch;
  vm::VM M(*C.Prog, VO);
  EXPECT_EQ(M.activeDispatch(), vm::DispatchTier::Switch);
  vm::VMOptions VT; // default
  vm::VM N(*C.Prog, VT);
#if MGC_COMPUTED_GOTO
  EXPECT_EQ(N.activeDispatch(), vm::DispatchTier::Threaded);
#else
  EXPECT_EQ(N.activeDispatch(), vm::DispatchTier::Switch);
#endif
}

} // namespace
