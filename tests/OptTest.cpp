//===- tests/OptTest.cpp - Optimization passes -----------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "frontend/Lower.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "analysis/Loops.h"
#include "opt/Passes.h"

using namespace mgc;
using namespace mgc::ir;
using namespace mgc::test;

namespace {

std::unique_ptr<IRModule> lower(const std::string &Src) {
  Diagnostics D;
  auto AST = parseModule(Src, D);
  EXPECT_TRUE(AST != nullptr) << D.str();
  if (!AST)
    return nullptr;
  EXPECT_TRUE(checkModule(*AST, D)) << D.str();
  return lowerModule(*AST);
}

Function *findFunc(IRModule &M, const std::string &Name) {
  for (auto &F : M.Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

unsigned countOpcode(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Op)
        ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Scalar passes
//===----------------------------------------------------------------------===//

TEST(Opt, ConstantFoldingCollapsesArithmetic) {
  auto M = lower(R"(
MODULE M;
VAR x: INTEGER;
BEGIN
  x := 2 + 3 * 4
END M.)");
  Function *Main = findFunc(*M, "@main");
  bool Changed = true;
  while (Changed) {
    Changed = opt::foldConstants(*Main);
    Changed |= opt::propagateCopiesLocal(*Main);
    Changed |= opt::eliminateDeadCode(*Main);
  }
  EXPECT_EQ(countOpcode(*Main, Opcode::Mul), 0u) << toString(*Main);
  EXPECT_EQ(countOpcode(*Main, Opcode::Add), 0u) << toString(*Main);
  EXPECT_TRUE(isValid(*M));
}

TEST(Opt, BranchOnConstantBecomesJump) {
  auto M = lower(R"(
MODULE M;
VAR x: INTEGER;
BEGIN
  IF TRUE THEN x := 1 ELSE x := 2 END
END M.)");
  Function *Main = findFunc(*M, "@main");
  bool Changed = true;
  while (Changed) {
    Changed = opt::foldConstants(*Main);
    Changed |= opt::propagateCopiesLocal(*Main);
    Changed |= opt::simplifyCFG(*Main);
  }
  EXPECT_EQ(countOpcode(*Main, Opcode::Branch), 0u) << toString(*Main);
}

TEST(Opt, LocalCseSharesAddressComputations) {
  // The paper's CSE example: A[i,j] and A[i,k] share &A[i].
  auto M = lower(R"(
MODULE M;
TYPE Mat = REF ARRAY OF ARRAY [0..9] OF INTEGER;
PROCEDURE Set(a: Mat; i, j, k: INTEGER);
BEGIN
  a[i, j] := 10;
  a[i, k] := 20
END Set;
VAR m: Mat;
BEGIN
  m := NEW(Mat, 10);
  Set(m, 1, 2, 3)
END M.)");
  Function *Main = findFunc(*M, "Set");
  unsigned Before = countOpcode(*Main, Opcode::DeriveAdd);
  bool Changed = true;
  while (Changed) {
    Changed = opt::cseLocal(*Main);
    Changed |= opt::propagateCopiesLocal(*Main);
    Changed |= opt::eliminateDeadCode(*Main);
  }
  unsigned After = countOpcode(*Main, Opcode::DeriveAdd);
  EXPECT_LT(After, Before) << toString(*Main);
}

TEST(Opt, DeadCodeKeepsSideEffects) {
  auto M = lower(R"(
MODULE M;
PROCEDURE P(x: INTEGER);
VAR y: INTEGER;
BEGIN
  y := x + 2;   (* dead: y is never read *)
  PutInt(x)
END P;
BEGIN
  P(1)
END M.)");
  Function *F = findFunc(*M, "P");
  opt::propagateCopiesLocal(*F);
  opt::eliminateDeadCode(*F);
  EXPECT_EQ(countOpcode(*F, Opcode::CallRt), 1u);
  EXPECT_EQ(countOpcode(*F, Opcode::Add), 0u) << toString(*F);
}

//===----------------------------------------------------------------------===//
// Loop passes
//===----------------------------------------------------------------------===//

TEST(Opt, LicmHoistsInvariantDerive) {
  auto M = lower(R"(
MODULE M;
TYPE A = REF ARRAY [1..8] OF INTEGER;
VAR a: A; s: INTEGER;
PROCEDURE Work(p: A): INTEGER;
VAR i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 8 DO
    s := s + p[i]
  END;
  RETURN s
END Work;
BEGIN
  a := NEW(A);
  s := Work(a)
END M.)");
  Function *Work = findFunc(*M, "Work");
  opt::rewriteVirtualOrigins(*Work);
  // The virtual origin (p - lo*stride) is loop invariant; LICM hoists it.
  EXPECT_TRUE(opt::hoistLoopInvariants(*Work));
  EXPECT_TRUE(isValid(*M)) << toString(*Work);
  // After hoisting, the loop body (blocks in the loop) contains no
  // DeriveSub.
  analysis::LoopInfo LI(*Work);
  ASSERT_FALSE(LI.loops().empty());
  const analysis::Loop &L = LI.loops()[0];
  unsigned InLoop = 0;
  L.Blocks.forEach([&](size_t B) {
    for (const Instr &I : Work->Blocks[B]->Instrs)
      if (I.Op == Opcode::DeriveSub)
        ++InLoop;
  });
  EXPECT_EQ(InLoop, 0u) << toString(*Work);
}

TEST(Opt, VirtualArrayOriginCreatesOutOfObjectPointer) {
  // §2's virtual array origin: ARRAY [7..13] accessed via a pointer to
  // (virtual) element 0, which lies outside the object.
  auto M = lower(R"(
MODULE M;
TYPE A = REF ARRAY [7..13] OF INTEGER;
PROCEDURE Get(p: A; i: INTEGER): INTEGER;
BEGIN
  RETURN p[i]
END Get;
VAR a: A; v: INTEGER;
BEGIN
  a := NEW(A);
  a[9] := 42;
  v := Get(a, 9)
END M.)");
  Function *Get = findFunc(*M, "Get");
  EXPECT_EQ(countOpcode(*Get, Opcode::DeriveSub), 0u);
  EXPECT_TRUE(opt::rewriteVirtualOrigins(*Get));
  EXPECT_EQ(countOpcode(*Get, Opcode::DeriveSub), 1u) << toString(*Get);
  // The old i - lo subtraction is now dead; DCE removes it.
  opt::eliminateDeadCode(*Get);
  EXPECT_EQ(countOpcode(*Get, Opcode::Sub), 0u)
      << "the i - lo subtraction is gone:\n"
      << toString(*Get);
  EXPECT_TRUE(isValid(*M));
}

TEST(Opt, StrengthReductionCreatesSelfUpdatingPointer) {
  // §2's strength reduction: the loop walks the array with a derived
  // pointer updated by the element stride.
  auto M = lower(R"(
MODULE M;
TYPE A = REF ARRAY [1..10] OF INTEGER;
PROCEDURE Fill(p: A);
VAR i: INTEGER;
BEGIN
  FOR i := 1 TO 10 DO
    p[i] := 13
  END
END Fill;
VAR a: A;
BEGIN
  a := NEW(A);
  Fill(a)
END M.)");
  Function *Fill = findFunc(*M, "Fill");
  opt::rewriteVirtualOrigins(*Fill);
  opt::hoistLoopInvariants(*Fill);
  bool Changed = opt::reduceStrength(*Fill);
  EXPECT_TRUE(Changed) << toString(*Fill);
  EXPECT_TRUE(isValid(*M)) << toString(*Fill);
  // A derived vreg now updates itself: deriveadd %d, %d, const.
  bool FoundSelfUpdate = false;
  for (const auto &BB : Fill->Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::DeriveAdd && I.A.isReg() && I.A.R == I.Dst)
        FoundSelfUpdate = true;
  EXPECT_TRUE(FoundSelfUpdate) << toString(*Fill);
  // The multiply in the loop dies once DCE runs.
  opt::propagateCopiesLocal(*Fill);
  opt::eliminateDeadCode(*Fill);
  analysis::LoopInfo LI(*Fill);
  ASSERT_FALSE(LI.loops().empty());
  unsigned MulsInLoop = 0;
  LI.loops()[0].Blocks.forEach([&](size_t B) {
    for (const Instr &I : Fill->Blocks[B]->Instrs)
      if (I.Op == Opcode::Mul)
        ++MulsInLoop;
  });
  EXPECT_EQ(MulsInLoop, 0u) << toString(*Fill);
}

//===----------------------------------------------------------------------===//
// Diamond passes
//===----------------------------------------------------------------------===//

const char *AmbigSource = R"(
MODULE M;
TYPE Arr = REF ARRAY [1..8] OF INTEGER;
PROCEDURE Use(x: INTEGER): INTEGER;
BEGIN
  RETURN x
END Use;
PROCEDURE Work(inv: BOOLEAN; p, q: Arr): INTEGER;
VAR i, s, v: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 8 DO
    IF inv THEN v := p[i] ELSE v := q[i] END;
    s := s + Use(v)
  END;
  RETURN s
END Work;
VAR a, b: Arr; r: INTEGER;
BEGIN
  a := NEW(Arr); b := NEW(Arr);
  r := Work(TRUE, a, b)
END M.)";

TEST(Opt, TailMergeUnifiesDiamondArms) {
  auto M = lower(AmbigSource);
  Function *Work = findFunc(*M, "Work");
  // Prepare: VAO + LICM make the per-arm address bases invariant and
  // hoisted; the arms become structurally identical modulo those bases.
  bool Changed = true;
  while (Changed) {
    Changed = opt::rewriteVirtualOrigins(*Work);
    Changed |= opt::hoistLoopInvariants(*Work);
    Changed |= opt::cseLocal(*Work);
    Changed |= opt::propagateCopiesLocal(*Work);
    Changed |= opt::eliminateDeadCode(*Work);
    Changed |= opt::simplifyCFG(*Work);
  }
  EXPECT_TRUE(opt::mergeDiamondTails(*Work)) << toString(*Work);
  EXPECT_TRUE(isValid(*M)) << toString(*Work);
}

TEST(Opt, UnswitchDuplicatesLoopBody) {
  auto M = lower(AmbigSource);
  Function *Work = findFunc(*M, "Work");
  size_t BlocksBefore = Work->Blocks.size();
  EXPECT_TRUE(opt::unswitchLoops(*Work));
  EXPECT_TRUE(isValid(*M)) << toString(*Work);
  EXPECT_GT(Work->Blocks.size(), BlocksBefore)
      << "path splitting duplicates the loop (Fig. 2)";
  // After unswitching no invariant branch remains inside the loop.
  EXPECT_FALSE(opt::unswitchLoops(*Work));
}

//===----------------------------------------------------------------------===//
// Whole-pipeline semantic preservation
//===----------------------------------------------------------------------===//

/// Programs whose -O0 and -O2 outputs must agree exactly (the pipeline may
/// transform arbitrarily but not change meaning).
class PipelineEquivalence : public ::testing::TestWithParam<const char *> {};

TEST_P(PipelineEquivalence, OutputsAgree) {
  driver::CompilerOptions O0;
  O0.OptLevel = 0;
  RunResult R0 = compileAndRun(GetParam(), O0);
  ASSERT_TRUE(R0.Ok) << R0.Error;

  driver::CompilerOptions O2;
  O2.OptLevel = 2;
  RunResult R2 = compileAndRun(GetParam(), O2);
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_EQ(R0.Out, R2.Out);

  driver::CompilerOptions OSplit = O2;
  OSplit.Mode = driver::Disambiguation::PathSplitting;
  RunResult RS = compileAndRun(GetParam(), OSplit);
  ASSERT_TRUE(RS.Ok) << RS.Error;
  EXPECT_EQ(R0.Out, RS.Out);
}

INSTANTIATE_TEST_SUITE_P(
    Snippets, PipelineEquivalence,
    ::testing::Values(
        R"(MODULE M;
VAR s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 100 DO s := s + i * i END;
  PutInt(s); PutLn();
END M.)",
        R"(MODULE M;
TYPE A = REF ARRAY [3..17] OF INTEGER;
VAR a: A; s: INTEGER;
BEGIN
  a := NEW(A);
  FOR i := 3 TO 17 DO a[i] := i * 2 END;
  s := 0;
  FOR i := 3 TO 17 DO s := s + a[i] END;
  PutInt(s); PutLn();
END M.)",
        R"(MODULE M;
TYPE L = REF R; R = RECORD v: INTEGER; n: L END;
VAR h, t: L; s: INTEGER;
BEGIN
  h := NIL;
  FOR i := 1 TO 20 DO
    t := NEW(L);
    t^.v := i;
    t^.n := h;
    h := t
  END;
  s := 0;
  WHILE h # NIL DO s := s + h^.v; h := h^.n END;
  PutInt(s); PutLn();
END M.)",
        R"(MODULE M;
TYPE Arr = REF ARRAY [1..6] OF INTEGER;
PROCEDURE Pick(c: BOOLEAN; x, y: Arr): INTEGER;
VAR s, v: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 6 DO
    IF c THEN v := x[i] ELSE v := y[i] END;
    s := s + v
  END;
  RETURN s
END Pick;
VAR a, b: Arr; t: INTEGER;
BEGIN
  a := NEW(Arr); b := NEW(Arr);
  FOR i := 1 TO 6 DO a[i] := i; b[i] := 100 * i END;
  t := Pick(TRUE, a, b) * 1000 + Pick(FALSE, a, b);
  PutInt(t); PutLn();
END M.)"));

} // namespace
