//===- tests/ThreadsTest.cpp - §5.3: threads and gc-point rendezvous -------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mgc;
using namespace mgc::test;

namespace {

/// A module whose Main allocates heavily while Spin runs a long
/// allocation-free loop.  Without loop polls, Spin cannot reach a gc-point
/// when Main triggers a collection.
const char *ThreadedSource = R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER; n: R END;
VAR spun: INTEGER; done: BOOLEAN; head: R;

PROCEDURE Spin();
VAR i: INTEGER;
BEGIN
  i := 0;
  WHILE NOT done DO
    INC(i);
    IF i MOD 1000 = 0 THEN INC(spun, 1000) END
  END
END Spin;

BEGIN
  done := FALSE;
  spun := 0;
  FOR k := 1 TO 400 DO
    head := NEW(R);
    head^.v := k
  END;
  done := TRUE;
  PutInt(head^.v); PutLn();
END M.)";

struct ThreadRun {
  bool Ok;
  std::string Out, Error;
  vm::VMStats Stats;
  unsigned LoopPolls;
};

ThreadRun runThreaded(bool Polls, size_t HeapBytes) {
  driver::CompilerOptions CO;
  CO.ThreadedPolls = Polls;
  auto C = driver::compile(ThreadedSource, CO);
  EXPECT_TRUE(C.Prog != nullptr) << C.Diags.str();
  ThreadRun R{false, "", "", {}, 0};
  if (!C.Prog)
    return R;
  R.LoopPolls = C.Prog->LoopPolls;

  // Find the Spin procedure.
  unsigned SpinIdx = 0;
  for (unsigned I = 0; I != C.Prog->Funcs.size(); ++I)
    if (C.Prog->Funcs[I].Name == "Spin")
      SpinIdx = I;

  vm::VMOptions VO;
  VO.HeapBytes = HeapBytes;
  vm::VM M(*C.Prog, VO);
  gc::installPreciseCollector(M);
  M.spawnThread(SpinIdx);
  R.Ok = M.run();
  R.Out = M.Out;
  R.Error = M.Error;
  R.Stats = M.Stats;
  return R;
}

TEST(Threads, LoopPollsAreInsertedForThreadedMode) {
  ThreadRun R = runThreaded(/*Polls=*/true, /*HeapBytes=*/8u << 10);
  EXPECT_GT(R.LoopPolls, 0u)
      << "the allocation-free WHILE loop needs a poll (§5.3)";
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "400\n");
  EXPECT_GT(R.Stats.Collections, 0u)
      << "the heap is sized to force collections mid-run";
}

TEST(Threads, WithoutPollsRendezvousFails) {
  // The same program compiled without loop polls: when Main triggers a
  // collection while Spin is inside its loop, Spin never reaches a
  // gc-point and the rendezvous budget trips — the failure mode §5.3's
  // rule exists to prevent.
  ThreadRun R = runThreaded(/*Polls=*/false, /*HeapBytes=*/8u << 10);
  if (R.Stats.Collections == 0 && !R.Ok) {
    EXPECT_NE(R.Error.find("rendezvous"), std::string::npos) << R.Error;
  } else {
    EXPECT_FALSE(R.Ok);
    EXPECT_NE(R.Error.find("rendezvous"), std::string::npos) << R.Error;
  }
}

TEST(Threads, PollsHaveNoEffectSingleThreaded) {
  driver::CompilerOptions CO;
  CO.ThreadedPolls = true;
  RunResult R = compileAndRun(R"(
MODULE M;
VAR s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 1000 DO s := s + i END;
  PutInt(s); PutLn();
END M.)",
                              CO);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "500500\n");
}

TEST(Threads, GuaranteedGcPointSuppressesPoll) {
  // A loop that calls an allocating procedure on every iteration already
  // has a guaranteed gc-point; no poll should be added for it.
  driver::CompilerOptions CO;
  CO.ThreadedPolls = true;
  CO.OptLevel = 0;
  auto C = driver::compile(R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER END;
VAR t: R;
PROCEDURE Alloc(): R;
BEGIN
  RETURN NEW(R)
END Alloc;
BEGIN
  FOR i := 1 TO 10 DO
    t := Alloc()
  END;
  PutInt(1); PutLn();
END M.)",
                          CO);
  ASSERT_TRUE(C.Prog != nullptr) << C.Diags.str();
  EXPECT_EQ(C.Prog->LoopPolls, 0u)
      << "the unconditional call dominates the latch";
}

TEST(Threads, TwoAllocatingThreadsInterleave) {
  const char *Src = R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER; n: R END;
VAR total: INTEGER;

PROCEDURE Churn();
VAR t: R; i: INTEGER;
BEGIN
  FOR i := 1 TO 200 DO
    t := NEW(R);
    t^.v := i;
    INC(total)
  END
END Churn;

BEGIN
  Churn();
  PutInt(total); PutLn();
END M.)";
  driver::CompilerOptions CO;
  CO.ThreadedPolls = true;
  auto C = driver::compile(Src, CO);
  ASSERT_TRUE(C.Prog != nullptr) << C.Diags.str();
  unsigned ChurnIdx = 0;
  for (unsigned I = 0; I != C.Prog->Funcs.size(); ++I)
    if (C.Prog->Funcs[I].Name == "Churn")
      ChurnIdx = I;
  vm::VMOptions VO;
  VO.HeapBytes = 8u << 10;
  vm::VM M(*C.Prog, VO);
  gc::installPreciseCollector(M);
  M.spawnThread(ChurnIdx);
  M.spawnThread(ChurnIdx);
  ASSERT_TRUE(M.run()) << M.Error;
  // Main's 200 plus two extra threads' 200 each; Main prints whatever has
  // accumulated by its end, so just require a sane prefix and successful
  // completion with collections.
  EXPECT_GT(M.Stats.Collections, 0u);
  EXPECT_FALSE(M.Out.empty());
}

} // namespace
