//===- tests/AnalysisTest.cpp - Liveness, loops, derivations ---------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Derivations.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "frontend/Lower.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace mgc;
using namespace mgc::ir;
using namespace mgc::analysis;

namespace {

std::unique_ptr<IRModule> lower(const std::string &Src) {
  Diagnostics D;
  auto AST = parseModule(Src, D);
  EXPECT_TRUE(AST != nullptr) << D.str();
  if (!AST)
    return nullptr;
  EXPECT_TRUE(checkModule(*AST, D)) << D.str();
  auto M = lowerModule(*AST);
  EXPECT_TRUE(isValid(*M)) << toString(*M);
  return M;
}

Function *findFunc(IRModule &M, const std::string &Name) {
  for (auto &F : M.Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Hand-built IR helpers
//===----------------------------------------------------------------------===//

/// func(p: Tidy): derived d = p + 8; gc-point; use d.
std::unique_ptr<Function> makeDerivedFunction() {
  auto F = std::make_unique<Function>();
  F->Name = "test";
  F->Params.push_back({"p", PtrKind::Tidy, false});
  VReg P = F->newVReg(PtrKind::Tidy, "p", true);
  (void)P;
  BasicBlock *BB = F->newBlock();
  VReg D = F->newVReg(PtrKind::Derived, "d");
  VReg V = F->newVReg(PtrKind::NonPtr, "v");
  BB->Instrs.push_back(
      Instr::bin(Opcode::DeriveAdd, D, Operand::reg(0), Operand::imm(8)));
  Instr Poll;
  Poll.Op = Opcode::GcPoll;
  BB->Instrs.push_back(Poll);
  BB->Instrs.push_back(Instr::load(V, D, 0));
  BB->Instrs.push_back(Instr::ret(Operand::reg(V)));
  F->HasRet = true;
  return F;
}

TEST(Liveness, DerivedValueKeepsBaseAliveAtGcPoint) {
  auto F = makeDerivedFunction();
  // Without the dead-base extension the base p (vreg 0) is dead after the
  // DeriveAdd...
  Liveness Plain(*F);
  DynBitset AtPoll = Plain.liveBefore(0, 1);
  EXPECT_FALSE(AtPoll.test(0));
  EXPECT_TRUE(AtPoll.test(1)); // d is live.

  // ...but with it, the use of d at the load also uses p (§4's dead base
  // solution).
  DerivationAnalysis DA(*F);
  auto Extra = DA.computeExtraUses();
  EXPECT_FALSE(Extra.empty());
  Liveness Extended(*F, &Extra);
  DynBitset AtPoll2 = Extended.liveBefore(0, 1);
  EXPECT_TRUE(AtPoll2.test(0)) << "base must stay live while d lives";
}

TEST(Derivations, SimpleBase) {
  auto F = makeDerivedFunction();
  DerivationAnalysis DA(*F);
  DerivMap S = DA.stateBefore(0, 1);
  ASSERT_TRUE(S.count(1));
  EXPECT_EQ(S[1].K, DerivState::Kind::Single);
  ASSERT_EQ(S[1].D.Bases.size(), 1u);
  EXPECT_EQ(S[1].D.Bases[0].first, 0);
  EXPECT_EQ(S[1].D.Bases[0].second, 1);
}

TEST(Derivations, SelfUpdateKeepsUltimateBase) {
  // p' = p + 8; loop { p' = p' + 8 }: bases stay {+p} (the strength
  // reduction shape).
  auto F = std::make_unique<Function>();
  F->Params.push_back({"p", PtrKind::Tidy, false});
  F->newVReg(PtrKind::Tidy, "p", true);
  VReg D = F->newVReg(PtrKind::Derived, "d");
  BasicBlock *Entry = F->newBlock();
  BasicBlock *Loop = F->newBlock();
  BasicBlock *Exit = F->newBlock();
  Entry->Instrs.push_back(
      Instr::bin(Opcode::DeriveAdd, D, Operand::reg(0), Operand::imm(8)));
  Entry->Instrs.push_back(Instr::jump(Loop->Id));
  Loop->Instrs.push_back(
      Instr::bin(Opcode::DeriveAdd, D, Operand::reg(D), Operand::imm(8)));
  VReg C = F->newVReg(PtrKind::NonPtr, "c");
  Loop->Instrs.push_back(
      Instr::bin(Opcode::CmpLt, C, Operand::reg(D), Operand::reg(D)));
  Loop->Instrs.push_back(Instr::branch(C, Loop->Id, Exit->Id));
  Exit->Instrs.push_back(Instr::ret(Operand()));

  DerivationAnalysis DA(*F);
  DerivMap S = DA.blockIn(Loop->Id);
  ASSERT_TRUE(S.count(D));
  EXPECT_EQ(S[D].K, DerivState::Kind::Single);
  ASSERT_EQ(S[D].D.Bases.size(), 1u);
  EXPECT_EQ(S[D].D.Bases[0].first, 0) << "base collapses to the original p";
}

TEST(Derivations, DeriveDiffUnionsNegatedBases) {
  // t = p - q (double indexing): bases {+p, -q}.
  auto F = std::make_unique<Function>();
  F->Params.push_back({"p", PtrKind::Tidy, false});
  F->Params.push_back({"q", PtrKind::Tidy, false});
  F->newVReg(PtrKind::Tidy, "p", true);
  F->newVReg(PtrKind::Tidy, "q", true);
  VReg D = F->newVReg(PtrKind::Derived, "t");
  BasicBlock *BB = F->newBlock();
  BB->Instrs.push_back(
      Instr::bin(Opcode::DeriveDiff, D, Operand::reg(0), Operand::reg(1)));
  BB->Instrs.push_back(Instr::ret(Operand()));

  DerivationAnalysis DA(*F);
  DerivMap S = DA.stateBefore(0, 1);
  ASSERT_TRUE(S.count(D));
  EXPECT_EQ(S[D].K, DerivState::Kind::Single);
  ASSERT_EQ(S[D].D.Bases.size(), 2u);
  EXPECT_EQ(S[D].D.Bases[0], (std::pair<VReg, int>{0, 1}));
  EXPECT_EQ(S[D].D.Bases[1], (std::pair<VReg, int>{1, -1}));
}

TEST(Derivations, CancellationWhenBasesCoincide) {
  // d1 = p + 8, d2 = p + 16, t = d1 - d2: the +p and -p cancel; t is pure E
  // and needs no adjustment.
  auto F = std::make_unique<Function>();
  F->Params.push_back({"p", PtrKind::Tidy, false});
  F->newVReg(PtrKind::Tidy, "p", true);
  VReg D1 = F->newVReg(PtrKind::Derived, "d1");
  VReg D2 = F->newVReg(PtrKind::Derived, "d2");
  VReg T = F->newVReg(PtrKind::Derived, "t");
  BasicBlock *BB = F->newBlock();
  BB->Instrs.push_back(
      Instr::bin(Opcode::DeriveAdd, D1, Operand::reg(0), Operand::imm(8)));
  BB->Instrs.push_back(
      Instr::bin(Opcode::DeriveAdd, D2, Operand::reg(0), Operand::imm(16)));
  BB->Instrs.push_back(
      Instr::bin(Opcode::DeriveDiff, T, Operand::reg(D1), Operand::reg(D2)));
  BB->Instrs.push_back(Instr::ret(Operand()));

  DerivationAnalysis DA(*F);
  DerivMap S = DA.stateBefore(0, 3);
  ASSERT_TRUE(S.count(T));
  EXPECT_EQ(S[T].K, DerivState::Kind::Single);
  EXPECT_TRUE(S[T].D.Bases.empty());
}

TEST(Derivations, JoinOfDifferentDerivationsIsAmbiguous) {
  // if c: t = Mov d_p else t = Mov d_q; join: Ambiguous{{+p},{+q}}.
  auto F = std::make_unique<Function>();
  F->Params.push_back({"p", PtrKind::Tidy, false});
  F->Params.push_back({"q", PtrKind::Tidy, false});
  F->Params.push_back({"c", PtrKind::NonPtr, false});
  F->newVReg(PtrKind::Tidy, "p", true);
  F->newVReg(PtrKind::Tidy, "q", true);
  F->newVReg(PtrKind::NonPtr, "c", true);
  VReg DP = F->newVReg(PtrKind::Derived, "dp");
  VReg DQ = F->newVReg(PtrKind::Derived, "dq");
  VReg T = F->newVReg(PtrKind::Derived, "t");
  BasicBlock *Entry = F->newBlock();
  BasicBlock *A1 = F->newBlock();
  BasicBlock *A2 = F->newBlock();
  BasicBlock *J = F->newBlock();
  Entry->Instrs.push_back(
      Instr::bin(Opcode::DeriveAdd, DP, Operand::reg(0), Operand::imm(8)));
  Entry->Instrs.push_back(
      Instr::bin(Opcode::DeriveAdd, DQ, Operand::reg(1), Operand::imm(8)));
  Entry->Instrs.push_back(Instr::branch(2, A1->Id, A2->Id));
  A1->Instrs.push_back(Instr::mov(T, Operand::reg(DP)));
  A1->Instrs.push_back(Instr::jump(J->Id));
  A2->Instrs.push_back(Instr::mov(T, Operand::reg(DQ)));
  A2->Instrs.push_back(Instr::jump(J->Id));
  J->Instrs.push_back(Instr::ret(Operand()));

  DerivationAnalysis DA(*F);
  DerivMap S = DA.blockIn(J->Id);
  ASSERT_TRUE(S.count(T));
  EXPECT_EQ(S[T].K, DerivState::Kind::Ambiguous);
  EXPECT_EQ(S[T].Alts.size(), 2u);
  std::vector<VReg> Bases = S[T].baseVRegs();
  EXPECT_EQ(Bases, (std::vector<VReg>{0, 1}));
}

//===----------------------------------------------------------------------===//
// Loop detection on lowered code
//===----------------------------------------------------------------------===//

TEST(Loops, NestedLoopsDetectedWithDepths) {
  auto M = lower(R"(
MODULE M;
VAR s: INTEGER;
BEGIN
  FOR i := 1 TO 3 DO
    FOR j := 1 TO 3 DO
      s := s + i * j
    END
  END
END M.)");
  ASSERT_TRUE(M != nullptr);
  Function *Main = findFunc(*M, "@main");
  ASSERT_TRUE(Main != nullptr);
  LoopInfo LI(*Main);
  ASSERT_EQ(LI.loops().size(), 2u);
  unsigned MaxDepth = 0;
  for (const Loop &L : LI.loops())
    MaxDepth = std::max(MaxDepth, L.Depth);
  EXPECT_EQ(MaxDepth, 2u);
}

TEST(Loops, PreheaderCreationIdempotent) {
  auto M = lower(R"(
MODULE M;
VAR s, i: INTEGER;
BEGIN
  i := 0;
  WHILE i < 10 DO INC(i) END;
  s := i
END M.)");
  Function *Main = findFunc(*M, "@main");
  LoopInfo LI(*Main);
  ASSERT_EQ(LI.loops().size(), 1u);
  unsigned Pre1 = ensurePreheader(*Main, LI.loops()[0]);
  LoopInfo LI2(*Main);
  unsigned Pre2 = ensurePreheader(*Main, LI2.loops()[0]);
  EXPECT_EQ(Pre1, Pre2) << "an existing preheader is reused";
  EXPECT_TRUE(isValid(*M));
}

//===----------------------------------------------------------------------===//
// Lowered pointer kinds
//===----------------------------------------------------------------------===//

TEST(Lowering, HeapIndexingEmitsDerives) {
  auto M = lower(R"(
MODULE M;
TYPE A = REF ARRAY [1..10] OF INTEGER;
VAR a: A; s, k: INTEGER;
BEGIN
  a := NEW(A);
  k := 3;
  s := a[k]
END M.)");
  std::string IR = toString(*findFunc(*M, "@main"));
  EXPECT_NE(IR.find("deriveadd"), std::string::npos) << IR;
}

TEST(Lowering, VarParamsAreIncomingAddr) {
  auto M = lower(R"(
MODULE M;
PROCEDURE P(VAR x: INTEGER; y: INTEGER);
BEGIN
  x := y
END P;
VAR g: INTEGER;
BEGIN
  P(g, 3)
END M.)");
  Function *P = findFunc(*M, "P");
  ASSERT_TRUE(P != nullptr);
  EXPECT_EQ(P->kindOf(0), PtrKind::IncomingAddr);
  EXPECT_EQ(P->kindOf(1), PtrKind::NonPtr);
}

TEST(Lowering, FrameAddressesAreNotHeapPointers) {
  auto M = lower(R"(
MODULE M;
PROCEDURE P(VAR x: INTEGER);
BEGIN
  x := 1
END P;
VAR l: INTEGER;
BEGIN
  P(l)
END M.)");
  // The address of a module variable passed VAR is FrameAddr
  // (collector-invisible: the global area does not move).
  std::string IR = toString(*findFunc(*M, "@main"));
  EXPECT_NE(IR.find("addrglobal"), std::string::npos) << IR;
  EXPECT_NE(IR.find(":fa"), std::string::npos) << IR;
}

TEST(Lowering, RefLocalsAreTidy) {
  auto M = lower(R"(
MODULE M;
TYPE R = REF RECORD x: INTEGER END;
VAR r: R;
BEGIN
  r := NEW(R)
END M.)");
  std::string IR = toString(*findFunc(*M, "@main"));
  EXPECT_NE(IR.find(":t"), std::string::npos) << IR;
}

} // namespace
