//===- tests/SnapshotTest.cpp - Heap snapshot tests ------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for precise heap snapshots (obs/HeapSnapshot.h + gc/Snapshot.h):
/// exact node/edge/root ground truth for a handwritten program across the
/// -O0/-O2 x two-space/gen-gc matrix, dominator/retained-size unit tests
/// on a hand-built diamond+cycle graph, persistent-attribution ages,
/// NoSite behavior for objects predating site linking, snapshot diffing
/// of an induced leak, codec round-trips and mutation strictness over the
/// frozen corpus, and the capture-vs-recount-vs-conservative cross-check
/// on the §6 benchmarks and the corpus in all four configurations.
///
/// Every suite name starts with "Snap" — tests/CMakeLists.txt gives them
/// the `snap` ctest label.
///
//===----------------------------------------------------------------------===//

#include "Corpus.h"
#include "Programs.h"
#include "TestUtil.h"

#include "gc/Snapshot.h"
#include "obs/HeapSnapshot.h"
#include "obs/Trace.h"

#include <memory>

using namespace mgc;
using namespace mgc::test;

namespace {

//===----------------------------------------------------------------------===//
// Helper: compile, run, capture the at-exit snapshot
//===----------------------------------------------------------------------===//

struct SnapRun {
  bool Ok = false;
  std::string Out;
  std::string Error;
  vm::VMStats Stats;
  obs::HeapSnapshot Snap;
  bool Captured = false;
  bool CrosscheckOk = false;
  std::string SnapErr;
};

/// Compiles \p Source at \p Opt, runs it under the given collector mode
/// with an attribution tracer attached, then captures and cross-checks
/// the at-exit snapshot.
SnapRun runAndSnapshot(const std::string &Source, int Opt, bool Gen,
                       size_t HeapBytes = 1u << 20,
                       size_t NurseryBytes = 8u << 10, bool Stress = false,
                       bool WithTracer = true) {
  SnapRun R;
  driver::CompilerOptions CO;
  CO.OptLevel = Opt;
  CO.WriteBarriers = Gen;
  auto C = driver::compile(Source, CO);
  if (!C.Prog) {
    ADD_FAILURE() << "compilation failed:\n" << C.Diags.str();
    return R;
  }
  vm::VMOptions VO;
  VO.HeapBytes = HeapBytes;
  VO.GenGc = Gen;
  VO.NurseryBytes = Gen ? NurseryBytes : 0;
  VO.GcStress = Stress;
  vm::VM M(*C.Prog, VO);
  gc::CollectorOptions GCO;
  GCO.CrossCheck = true;
  gc::installPreciseCollector(M, GCO);

  std::unique_ptr<obs::Tracer> Tracer;
  if (WithTracer) {
    obs::TracerConfig TC;
    TC.Sites = &C.Prog->SiteTab;
    for (const auto &F : C.Prog->Funcs)
      TC.FuncNames.push_back(F.Name);
    TC.ProgramName = "test";
    TC.GenGc = Gen;
    TC.Attribution = true;
    Tracer = std::make_unique<obs::Tracer>(std::move(TC));
    Tracer->enable(nullptr);
    M.Tracer = Tracer.get();
  }

  R.Ok = M.run();
  R.Out = M.Out;
  R.Error = M.Error;
  R.Stats = M.Stats;
  if (!R.Ok)
    return R;
  R.Captured = gc::captureHeapSnapshot(M, R.Snap, /*WalkStacks=*/true,
                                       R.SnapErr);
  if (R.Captured)
    R.CrosscheckOk =
        gc::crosscheckSnapshot(M, R.Snap, /*WalkStacks=*/true, R.SnapErr);
  return R;
}

/// Sum of retained sizes over the super-root's immediate children.
uint64_t rootRetained(const obs::HeapSnapshot &S) {
  std::vector<int32_t> Idom = obs::computeIdoms(S);
  std::vector<uint64_t> Ret = obs::retainedSizes(S, Idom);
  uint64_t Total = 0;
  for (size_t I = 0; I != S.Nodes.size(); ++I)
    if (Idom[I] == obs::IdomRoot)
      Total += Ret[I];
  return Total;
}

//===----------------------------------------------------------------------===//
// Ground truth: exact nodes, edges, roots
//===----------------------------------------------------------------------===//

// At exit exactly three objects are reachable from the globals: a PairRec
// 'a' pointing twice at PairRec 'b' (left and right), and a 4-element open
// integer array.  The temporary 't' dies inside Build.
const char *GroundTruthSource = R"MG(MODULE SnapGT;
TYPE
  Pair = REF PairRec;
  PairRec = RECORD v: INTEGER; left, right: Pair END;
  IArr = REF ARRAY OF INTEGER;
VAR a, b: Pair; arr: IArr; sink: INTEGER;
PROCEDURE Build();
VAR t: Pair;
BEGIN
  a := NEW(Pair);
  b := NEW(Pair);
  t := NEW(Pair);
  t^.v := 9;
  a^.v := 1;
  b^.v := 2;
  a^.left := b;
  a^.right := b;
  arr := NEW(IArr, 4);
  arr^[0] := 7;
  GcCollect();
  sink := t^.v
END Build;
BEGIN
  Build()
END SnapGT.
)MG";

struct GroundTruthIds {
  size_t A = 0, B = 0, Arr = 0;
};

/// Identifies the three nodes structurally: 'a' is the node with two
/// edges, 'b' its (sole) target, 'arr' the edgeless open array.
GroundTruthIds identify(const obs::HeapSnapshot &S) {
  GroundTruthIds Ids;
  bool FoundA = false, FoundArr = false;
  for (size_t I = 0; I != S.Nodes.size(); ++I) {
    if (S.Nodes[I].NumEdges == 2) {
      Ids.A = I;
      Ids.B = S.Edges[S.Nodes[I].FirstEdge].Target;
      FoundA = true;
    } else if (S.Nodes[I].ShallowBytes == 48) {
      Ids.Arr = I;
      FoundArr = true;
    }
  }
  EXPECT_TRUE(FoundA && FoundArr) << "ground-truth shape not found";
  return Ids;
}

TEST(SnapGroundTruth, ExactGraphAcrossConfigs) {
  for (int Opt : {0, 2})
    for (bool Gen : {false, true}) {
      SCOPED_TRACE("O" + std::to_string(Opt) + (Gen ? " gen" : " two"));
      SnapRun R = runAndSnapshot(GroundTruthSource, Opt, Gen);
      ASSERT_TRUE(R.Ok) << R.Error;
      ASSERT_TRUE(R.Captured) << R.SnapErr;
      EXPECT_TRUE(R.CrosscheckOk) << R.SnapErr;
      const obs::HeapSnapshot &S = R.Snap;

      // Exactly: three live objects, two edges (a->b twice), three global
      // roots, 32+32+48 live bytes.
      ASSERT_EQ(S.Nodes.size(), 3u);
      ASSERT_EQ(S.Edges.size(), 2u);
      ASSERT_EQ(S.Roots.size(), 3u);
      EXPECT_EQ(S.totalBytes(), 112u);
      EXPECT_EQ(S.GenGc, Gen);
      EXPECT_TRUE(S.StacksWalked);

      GroundTruthIds Ids = identify(S);
      const auto &A = S.Nodes[Ids.A];
      const auto &B = S.Nodes[Ids.B];
      const auto &Arr = S.Nodes[Ids.Arr];
      EXPECT_EQ(A.ShallowBytes, 32u);
      EXPECT_EQ(B.ShallowBytes, 32u);
      EXPECT_EQ(B.NumEdges, 0u);
      EXPECT_EQ(Arr.NumEdges, 0u);
      // Both of a's edges hit b, at the left/right payload words (v is
      // word 1; header is word 0).
      EXPECT_EQ(S.Edges[A.FirstEdge].Slot, 2u);
      EXPECT_EQ(S.Edges[A.FirstEdge + 1].Slot, 3u);
      EXPECT_EQ(S.Edges[A.FirstEdge].Target, S.Edges[A.FirstEdge + 1].Target);

      // All three roots are globals, rooting exactly {a, b, arr}.
      std::vector<char> Rooted(S.Nodes.size(), 0);
      for (const auto &Rt : S.Roots) {
        EXPECT_EQ(Rt.Kind, obs::HeapSnapshot::RootKind::Global);
        EXPECT_EQ(Rt.Func, obs::NoFunc);
        Rooted[Rt.Node] = 1;
      }
      EXPECT_TRUE(Rooted[Ids.A] && Rooted[Ids.B] && Rooted[Ids.Arr]);

      // Attribution: a and b come from distinct NEW(Pair) sites; the array
      // from a third.  All survived the explicit collection.
      EXPECT_NE(A.Site, obs::NoSite);
      EXPECT_NE(B.Site, obs::NoSite);
      EXPECT_NE(Arr.Site, obs::NoSite);
      EXPECT_NE(A.Site, B.Site);
      EXPECT_NE(A.Site, Arr.Site);
      ASSERT_LT(A.Site, S.Sites.size());
      EXPECT_NE(S.Sites[A.Site].Line, S.Sites[B.Site].Line);

      // Retained sizes: b is independently rooted, so a retains only
      // itself; the root-retained sum covers the whole live heap.
      std::vector<int32_t> Idom = obs::computeIdoms(S);
      std::vector<uint64_t> Ret = obs::retainedSizes(S, Idom);
      EXPECT_EQ(Idom[Ids.A], obs::IdomRoot);
      EXPECT_EQ(Idom[Ids.B], obs::IdomRoot);
      EXPECT_EQ(Ret[Ids.A], 32u);
      EXPECT_EQ(Ret[Ids.B], 32u);
      EXPECT_EQ(rootRetained(S), S.totalBytes());

      // Determinism: a second identical run yields a bit-identical
      // snapshot and encoding.
      SnapRun R2 = runAndSnapshot(GroundTruthSource, Opt, Gen);
      ASSERT_TRUE(R2.Captured) << R2.SnapErr;
      EXPECT_TRUE(R.Snap == R2.Snap);
      std::vector<uint8_t> B1, B2;
      obs::encodeSnapshot(R.Snap, B1);
      obs::encodeSnapshot(R2.Snap, B2);
      EXPECT_EQ(B1, B2);
    }
}

TEST(SnapGroundTruth, RenderAndPathTo) {
  SnapRun R = runAndSnapshot(GroundTruthSource, 2, false);
  ASSERT_TRUE(R.Captured) << R.SnapErr;
  std::string Text = obs::renderSnapshot(R.Snap, 10);
  EXPECT_NE(Text.find("3 nodes"), std::string::npos) << Text;
  EXPECT_NE(Text.find("equals live bytes"), std::string::npos) << Text;
  GroundTruthIds Ids = identify(R.Snap);
  std::string Path =
      obs::renderPathTo(R.Snap, static_cast<uint32_t>(Ids.B));
  // b is rooted directly: the shortest path is zero hops from a global.
  EXPECT_NE(Path.find("0 hop(s)"), std::string::npos) << Path;
  EXPECT_NE(Path.find("global word"), std::string::npos) << Path;
  EXPECT_NE(obs::renderPathTo(R.Snap, 999).find("out of range"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Dominators and retained sizes on a hand-built graph
//===----------------------------------------------------------------------===//

/// Builds the test graph: diamond A->{B,C}->D plus cycle D->E->F->D, every
/// node 8 shallow bytes, rooted as given.  With \p WithUnreachable a node
/// G (with an edge back into the cycle) is appended but never rooted.
obs::HeapSnapshot diamondCycle(const std::vector<uint32_t> &RootNodes,
                               bool WithUnreachable) {
  obs::HeapSnapshot S;
  S.Program = "unit";
  auto AddNode = [&](std::vector<uint32_t> Targets) {
    obs::HeapSnapshot::Node N;
    N.OffsetWords = S.Nodes.size() * 2;
    N.ShallowBytes = 8;
    N.FirstEdge = static_cast<uint32_t>(S.Edges.size());
    N.NumEdges = static_cast<uint32_t>(Targets.size());
    for (uint32_t T : Targets)
      S.Edges.push_back({1, T});
    S.Nodes.push_back(N);
  };
  AddNode({1, 2}); // A -> B, C
  AddNode({3});    // B -> D
  AddNode({3});    // C -> D
  AddNode({4});    // D -> E
  AddNode({5});    // E -> F
  AddNode({3});    // F -> D (cycle)
  if (WithUnreachable)
    AddNode({3}); // G -> D, never rooted
  for (uint32_t N : RootNodes) {
    obs::HeapSnapshot::Root R;
    R.Kind = obs::HeapSnapshot::RootKind::Global;
    R.Index = static_cast<int32_t>(N);
    R.Node = N;
    S.Roots.push_back(R);
  }
  return S;
}

TEST(SnapDominators, DiamondAndCycle) {
  obs::HeapSnapshot S = diamondCycle({0}, /*WithUnreachable=*/false);
  std::vector<int32_t> Idom = obs::computeIdoms(S);
  ASSERT_EQ(Idom.size(), 6u);
  EXPECT_EQ(Idom[0], obs::IdomRoot);
  EXPECT_EQ(Idom[1], 0); // B: only via A
  EXPECT_EQ(Idom[2], 0); // C: only via A
  EXPECT_EQ(Idom[3], 0); // D: joins B/C paths -> A
  EXPECT_EQ(Idom[4], 3); // E: only via D
  EXPECT_EQ(Idom[5], 4); // F: only via E

  std::vector<uint64_t> Ret = obs::retainedSizes(S, Idom);
  EXPECT_EQ(Ret[5], 8u);
  EXPECT_EQ(Ret[4], 16u);
  EXPECT_EQ(Ret[3], 24u); // D retains the whole cycle
  EXPECT_EQ(Ret[1], 8u);
  EXPECT_EQ(Ret[2], 8u);
  EXPECT_EQ(Ret[0], 48u); // A retains everything
  EXPECT_EQ(rootRetained(S), S.totalBytes());
}

TEST(SnapDominators, SecondRootSplitsRetention) {
  // Rooting D directly re-parents the cycle to the super-root: A now
  // retains only the diamond top, and the retained sums still partition
  // the live bytes.
  obs::HeapSnapshot S = diamondCycle({0, 3}, /*WithUnreachable=*/false);
  std::vector<int32_t> Idom = obs::computeIdoms(S);
  EXPECT_EQ(Idom[0], obs::IdomRoot);
  EXPECT_EQ(Idom[3], obs::IdomRoot);
  EXPECT_EQ(Idom[4], 3);
  EXPECT_EQ(Idom[5], 4);
  std::vector<uint64_t> Ret = obs::retainedSizes(S, Idom);
  EXPECT_EQ(Ret[0], 24u); // A, B, C
  EXPECT_EQ(Ret[3], 24u); // D, E, F
  EXPECT_EQ(rootRetained(S), S.totalBytes());
}

TEST(SnapDominators, UnreachableNodeRetainsNothing) {
  obs::HeapSnapshot S = diamondCycle({0}, /*WithUnreachable=*/true);
  std::vector<int32_t> Idom = obs::computeIdoms(S);
  ASSERT_EQ(Idom.size(), 7u);
  EXPECT_EQ(Idom[6], obs::IdomUnreachable);
  // G's edge into the cycle must not perturb the reachable dominators.
  EXPECT_EQ(Idom[3], 0);
  EXPECT_EQ(Idom[4], 3);
  std::vector<uint64_t> Ret = obs::retainedSizes(S, Idom);
  EXPECT_EQ(Ret[6], 0u);
  EXPECT_EQ(rootRetained(S), S.totalBytes() - 8u);
}

//===----------------------------------------------------------------------===//
// Persistent attribution: collection-count ages
//===----------------------------------------------------------------------===//

TEST(SnapAttribution, AgeCountsCollectionsSurvived) {
  const char *Source = R"MG(MODULE SnapAge;
TYPE Pair = REF PairRec;
     PairRec = RECORD v: INTEGER; left, right: Pair END;
VAR g: Pair; i: INTEGER;
BEGIN
  g := NEW(Pair);
  g^.v := 1;
  FOR i := 1 TO 5 DO GcCollect() END
END SnapAge.
)MG";
  SnapRun R = runAndSnapshot(Source, 2, /*Gen=*/false);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(R.Captured) << R.SnapErr;
  EXPECT_EQ(R.Stats.Collections, 5u);
  ASSERT_EQ(R.Snap.Nodes.size(), 1u);
  EXPECT_EQ(R.Snap.Nodes[0].Age, 5u);
  EXPECT_NE(R.Snap.Nodes[0].Site, obs::NoSite);
}

//===----------------------------------------------------------------------===//
// NoSite: attribution gaps must degrade, not drop or crash
//===----------------------------------------------------------------------===//

const char *NoSiteSource = R"MG(MODULE SnapNS;
TYPE Pair = REF PairRec;
     PairRec = RECORD v: INTEGER; left, right: Pair END;
     IArr = REF ARRAY OF INTEGER;
VAR g: Pair; h: IArr;
BEGIN
  g := NEW(Pair);
  g^.v := 1;
  GcCollect();
  GcCollect();
  h := NEW(IArr, 4);
  h^[0] := 2;
  GcCollect()
END SnapNS.
)MG";

TEST(SnapNoSite, TracerFreeCaptureIsFullyAttributed) {
  // Attribution is header-borne, so a capture with no tracer attached at
  // all still sees exact sites and ages: 'g' survives all three
  // collections (age 3), 'h' only the last (age 1).
  SnapRun R = runAndSnapshot(NoSiteSource, 2, /*Gen=*/false, 1u << 20,
                             8u << 10, /*Stress=*/false,
                             /*WithTracer=*/false);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(R.Captured) << R.SnapErr;
  EXPECT_TRUE(R.CrosscheckOk) << R.SnapErr;
  ASSERT_EQ(R.Snap.Nodes.size(), 2u);
  const obs::HeapSnapshot::Node *G = nullptr, *H = nullptr;
  for (const auto &N : R.Snap.Nodes)
    (N.ShallowBytes == 48 ? H : G) = &N;
  ASSERT_TRUE(G && H);
  EXPECT_NE(G->Site, obs::NoSite);
  EXPECT_NE(H->Site, obs::NoSite);
  EXPECT_NE(G->Site, H->Site);
  EXPECT_EQ(G->Age, 3u);
  EXPECT_EQ(H->Age, 1u);
}

TEST(SnapNoSite, ObjectsPredatingSiteLinking) {
  // Strip the compiled program's site linking — every allocation
  // instruction reverts to the NoAllocSite sentinel and the site table
  // goes away, as for code built before the driver links attributions.
  // Every object must still appear in the snapshot, as NoSite with a
  // correct age, and the cross-check must hold.
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  auto C = driver::compile(NoSiteSource, CO);
  ASSERT_TRUE(C.Prog != nullptr) << C.Diags.str();
  for (vm::MInstr &I : C.Prog->Code)
    I.Site = vm::NoAllocSite;
  C.Prog->SiteTab.Sites.clear();
  C.Prog->SiteTab.Attrs.clear();

  vm::VM M(*C.Prog, {});
  gc::installPreciseCollector(M, {});

  obs::TracerConfig TC;
  TC.Sites = &C.Prog->SiteTab;
  TC.ProgramName = "test";
  TC.Attribution = true;
  obs::Tracer Tracer(std::move(TC));
  Tracer.enable(nullptr);
  M.Tracer = &Tracer;

  ASSERT_TRUE(M.run()) << M.Error;
  EXPECT_EQ(Tracer.unattributedCount(), 2u);

  obs::HeapSnapshot S;
  std::string Err;
  ASSERT_TRUE(gc::captureHeapSnapshot(M, S, /*WalkStacks=*/true, Err))
      << Err;
  EXPECT_TRUE(gc::crosscheckSnapshot(M, S, /*WalkStacks=*/true, Err))
      << Err;
  ASSERT_EQ(S.Nodes.size(), 2u);
  const obs::HeapSnapshot::Node *G = nullptr, *H = nullptr;
  for (const auto &N : S.Nodes)
    (N.ShallowBytes == 48 ? H : G) = &N;
  ASSERT_TRUE(G && H);
  EXPECT_EQ(G->Site, obs::NoSite);
  EXPECT_EQ(H->Site, obs::NoSite);
  EXPECT_EQ(G->Age, 3u);
  EXPECT_EQ(H->Age, 1u);
}

//===----------------------------------------------------------------------===//
// Diffing: induced leak
//===----------------------------------------------------------------------===//

std::string leakSource(int Iters) {
  std::string S = R"MG(MODULE Leak;
TYPE Cell = REF CellRec; CellRec = RECORD v: INTEGER; next: Cell END;
     Big = REF BigRec; BigRec = RECORD a, b, c: INTEGER; next: Big END;
VAR keep: Big; sink: INTEGER;
PROCEDURE Grab(): Big;
BEGIN
  RETURN NEW(Big)
END Grab;
PROCEDURE Loop(n: INTEGER);
VAR i: INTEGER; t: Cell; k: Big;
BEGIN
  FOR i := 1 TO n DO
    t := NEW(Cell);
    t^.v := i;
    sink := sink + t^.v;
    IF i MOD 10 = 0 THEN
      k := Grab();
      k^.next := keep;
      keep := k
    END
  END
END Loop;
BEGIN
  Loop(@N@)
END Leak.
)MG";
  size_t P = S.find("@N@");
  S.replace(P, 3, std::to_string(Iters));
  return S;
}

TEST(SnapDiff, PinpointsLeakingSite) {
  SnapRun Old = runAndSnapshot(leakSource(100), 2, false, 256u << 10);
  SnapRun New = runAndSnapshot(leakSource(1000), 2, false, 256u << 10);
  ASSERT_TRUE(Old.Captured && New.Captured)
      << Old.SnapErr << New.SnapErr;
  // Every 10th iteration leaks one Big through Grab: 10 vs 100 retained.
  EXPECT_EQ(Old.Snap.Nodes.size(), 10u);
  EXPECT_EQ(New.Snap.Nodes.size(), 100u);
  std::string D = obs::diffSnapshots(Old.Snap, New.Snap, 5);
  // The top growth row must name the allocation inside Grab.
  size_t Header = D.find("site\n");
  ASSERT_NE(Header, std::string::npos) << D;
  size_t FirstRow = Header + 5;
  size_t RowEnd = D.find('\n', FirstRow);
  std::string Row = D.substr(FirstRow, RowEnd - FirstRow);
  EXPECT_NE(Row.find("Grab:"), std::string::npos) << D;
  EXPECT_NE(Row.find("+90"), std::string::npos) << D;
}

TEST(SnapDiff, NoGrowthWhenIdentical) {
  SnapRun A = runAndSnapshot(leakSource(100), 2, false, 256u << 10);
  SnapRun B = runAndSnapshot(leakSource(100), 2, false, 256u << 10);
  ASSERT_TRUE(A.Captured && B.Captured);
  std::string D = obs::diffSnapshots(A.Snap, B.Snap, 5);
  EXPECT_NE(D.find("(+0)"), std::string::npos) << D;
}

//===----------------------------------------------------------------------===//
// Codec: round-trip and strictness over the frozen corpus
//===----------------------------------------------------------------------===//

TEST(SnapCodec, RoundTripOverCorpus) {
  for (const CorpusProgram &P : corpus()) {
    SCOPED_TRACE(P.Name);
    SnapRun R = runAndSnapshot(P.Source, 2, /*Gen=*/false, 256u << 10);
    ASSERT_TRUE(R.Ok) << R.Error;
    ASSERT_TRUE(R.Captured) << R.SnapErr;
    std::vector<uint8_t> Blob;
    obs::encodeSnapshot(R.Snap, Blob);
    obs::HeapSnapshot D;
    std::string Err;
    ASSERT_TRUE(obs::decodeSnapshot(Blob, D, Err)) << Err;
    EXPECT_TRUE(D == R.Snap) << "decode(encode(S)) != S";
  }
}

TEST(SnapCodec, StrictOnMutation) {
  SnapRun R = runAndSnapshot(corpus().front().Source, 2, false, 256u << 10);
  ASSERT_TRUE(R.Captured) << R.SnapErr;
  std::vector<uint8_t> Blob;
  obs::encodeSnapshot(R.Snap, Blob);
  ASSERT_GT(Blob.size(), 8u);

  obs::HeapSnapshot D;
  std::string Err;
  // Every truncation must be rejected, never crash.
  for (size_t Len = 0; Len < Blob.size(); ++Len) {
    std::vector<uint8_t> T(Blob.begin(), Blob.begin() + Len);
    EXPECT_FALSE(obs::decodeSnapshot(T, D, Err)) << "len " << Len;
  }
  // Trailing garbage is rejected.
  {
    std::vector<uint8_t> T = Blob;
    T.push_back(0);
    EXPECT_FALSE(obs::decodeSnapshot(T, D, Err));
  }
  // Bad magic is rejected.
  {
    std::vector<uint8_t> T = Blob;
    T[0] ^= 0xff;
    EXPECT_FALSE(obs::decodeSnapshot(T, D, Err));
  }
  // Single-byte corruption anywhere either fails cleanly or yields a
  // snapshot that re-encodes consistently — never a crash or a torn
  // structure.
  for (size_t I = 0; I < Blob.size(); ++I) {
    std::vector<uint8_t> T = Blob;
    T[I] ^= 0x40;
    obs::HeapSnapshot M;
    if (obs::decodeSnapshot(T, M, Err)) {
      std::vector<uint8_t> Re;
      obs::encodeSnapshot(M, Re);
      obs::HeapSnapshot M2;
      EXPECT_TRUE(obs::decodeSnapshot(Re, M2, Err)) << "byte " << I;
      EXPECT_TRUE(M2 == M) << "byte " << I;
    }
  }
}

//===----------------------------------------------------------------------===//
// Cross-check over the §6 benchmarks and the corpus, all four configs
//===----------------------------------------------------------------------===//

TEST(SnapCrosscheck, BenchmarksAllConfigs) {
  for (const auto &P : programs::All)
    for (int Opt : {0, 2})
      for (bool Gen : {false, true}) {
        SCOPED_TRACE(std::string(P.Name) + " O" + std::to_string(Opt) +
                     (Gen ? " gen" : " two"));
        SnapRun R = runAndSnapshot(P.Source, Opt, Gen, 4u << 20, 32u << 10);
        ASSERT_TRUE(R.Ok) << R.Error;
        EXPECT_EQ(R.Out, P.Expected);
        ASSERT_TRUE(R.Captured) << R.SnapErr;
        EXPECT_TRUE(R.CrosscheckOk) << R.SnapErr;
        EXPECT_EQ(rootRetained(R.Snap), R.Snap.totalBytes());
      }
}

TEST(SnapCrosscheck, CorpusAllConfigs) {
  for (const CorpusProgram &P : corpus())
    for (int Opt : {0, 2})
      for (bool Gen : {false, true}) {
        SCOPED_TRACE(P.Name + " O" + std::to_string(Opt) +
                     (Gen ? " gen" : " two"));
        SnapRun R = runAndSnapshot(P.Source, Opt, Gen, 512u << 10);
        ASSERT_TRUE(R.Ok) << R.Error;
        ASSERT_TRUE(R.Captured) << R.SnapErr;
        EXPECT_TRUE(R.CrosscheckOk) << R.SnapErr;
        EXPECT_EQ(rootRetained(R.Snap), R.Snap.totalBytes());
      }
}

} // namespace
