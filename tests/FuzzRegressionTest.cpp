//===- tests/FuzzRegressionTest.cpp - Differential fuzzer regression -------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer as a regression suite: the checked-in corpus runs through
/// the full differential mode matrix, the campaign is bit-for-bit
/// deterministic, the generator keeps producing valid programs, and —
/// the end-to-end self-test — an intentionally injected gc-table bug is
/// caught by the oracle and reduced to a small repro.
///
//===----------------------------------------------------------------------===//

#include "Corpus.h"

#include "fuzz/Fuzzer.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace mgc;
using namespace mgc::test;
using namespace mgc::fuzz;

namespace {

//===----------------------------------------------------------------------===//
// Corpus through the oracle matrix
//===----------------------------------------------------------------------===//

class FuzzCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzCorpus, OracleMatrixAgrees) {
  const CorpusProgram &P = corpusProgram(GetParam());
  OracleResult Res = checkSource(P.Source, P.HasSpin);
  EXPECT_FALSE(Res.RefFailed) << P.Name << " no longer compiles/runs:\n"
                              << Res.Report;
  EXPECT_FALSE(Res.Diverged) << P.Name << " diverged:\n" << Res.Report;
}

INSTANTIATE_TEST_SUITE_P(Corpus, FuzzCorpus,
                         ::testing::ValuesIn(corpusNames()),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           return I.param;
                         });

// The steady-state cell must not be vacuous: a server-loop program has to
// actually reach the third ReqDone marker and snapshot a non-empty
// globals-reachable graph there.  Guards against the matrix "agreeing"
// only because every cell silently recorded zeros.
TEST(FuzzOracle, MidRunSnapshotCapturesServerLoop) {
  const CorpusProgram &P = corpusProgram("seed126");
  ASSERT_NE(P.Source.find("ReqDone()"), std::string::npos)
      << "seed126 lost its server loop";
  std::vector<RunSpec> Matrix = buildMatrix(P.HasSpin);
  ASSERT_TRUE(Matrix.front().IsRef);
  driver::CompileResult C =
      std::move(driver::compileBatch(P.Source, {Matrix.front().CO}).front());
  ASSERT_TRUE(C.Prog) << C.Diags.str();
  RunOutcome O = runSandboxed(*C.Prog, Matrix.front());
  ASSERT_EQ(O.St, RunOutcome::Ok) << O.Error;
  EXPECT_FALSE(O.MidViolation) << O.MidError;
  EXPECT_GE(O.MidRequests, 3u);
  EXPECT_GT(O.MidNodes, 0u);
  EXPECT_GT(O.MidBytes, 0u);
}

//===----------------------------------------------------------------------===//
// Generator validity
//===----------------------------------------------------------------------===//

TEST(FuzzGenerator, ProducesValidPrograms) {
  // Seeds disjoint from the corpus range: every generated program must
  // compile at both optimization levels.
  for (uint64_t Seed = 60; Seed != 80; ++Seed) {
    GProgram P = generateProgram(Seed);
    std::string Source = P.render();
    for (int Opt : {0, 2}) {
      driver::CompilerOptions CO;
      CO.OptLevel = Opt;
      CO.ThreadedPolls = P.HasSpin;
      auto C = driver::compile(Source, CO);
      ASSERT_TRUE(C.Prog) << "seed " << Seed << " -O" << Opt << ":\n"
                          << C.Diags.str() << "\n"
                          << Source;
    }
  }
}

TEST(FuzzGenerator, RenderIsDeterministic) {
  for (uint64_t Seed : {1u, 7u, 19u, 42u}) {
    EXPECT_EQ(generateProgram(Seed).render(), generateProgram(Seed).render())
        << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Campaign determinism
//===----------------------------------------------------------------------===//

std::map<std::string, std::string> readDir(const std::filesystem::path &D) {
  std::map<std::string, std::string> Files;
  for (const auto &E : std::filesystem::directory_iterator(D)) {
    std::ifstream In(E.path(), std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Files[E.path().filename().string()] = Buf.str();
  }
  return Files;
}

TEST(FuzzCampaign, DeterministicAcrossRuns) {
  namespace fs = std::filesystem;
  fs::path A = fs::temp_directory_path() / "mgc-fuzz-det-a";
  fs::path B = fs::temp_directory_path() / "mgc-fuzz-det-b";
  fs::remove_all(A);
  fs::remove_all(B);

  FuzzOptions Opts;
  Opts.Seed = 1;
  Opts.Count = 5;
  Opts.DumpAll = true;
  FuzzSummary S1, S2;
  Opts.OutDir = A.string();
  S1 = runFuzz(Opts);
  Opts.OutDir = B.string();
  S2 = runFuzz(Opts);

  // The log (everything except wall-clock timing, which lives only in
  // the JSON) and every artifact byte must match.
  EXPECT_EQ(S1.Log, S2.Log);
  EXPECT_EQ(S1.Divergences, 0u) << S1.Log;
  EXPECT_EQ(S1.GeneratorDefects, 0u) << S1.Log;
  EXPECT_EQ(readDir(A), readDir(B));

  fs::remove_all(A);
  fs::remove_all(B);
}

//===----------------------------------------------------------------------===//
// Injected-bug self-test
//===----------------------------------------------------------------------===//

TEST(FuzzSelfTest, InjectedDeltaBitBugCaughtAndReduced) {
  // MGC_FUZZ_DROP_DELTA_BIT makes the table emitter clear the highest set
  // bit of each gc-point's last delta byte: a live root silently vanishes
  // from the maps.  Both decoders read the same broken table, so only
  // behavioral divergence can catch it — which is exactly the fuzzer's
  // job.  Forked oracle children inherit the variable.
  GProgram P = generateProgram(1);
  std::string Source = P.render();

  // Sanity: the program is clean without the bug.
  OracleResult Clean = checkSource(Source, P.HasSpin);
  ASSERT_FALSE(Clean.RefFailed) << Clean.Report;
  ASSERT_FALSE(Clean.Diverged) << Clean.Report;

  ASSERT_EQ(setenv("MGC_FUZZ_DROP_DELTA_BIT", "1", 1), 0);
  OracleResult Broken = checkSource(Source, P.HasSpin);
  EXPECT_FALSE(Broken.RefFailed) << Broken.Report;
  EXPECT_TRUE(Broken.Diverged)
      << "the injected table bug must produce a divergence";

  GProgram Reduced = P;
  if (Broken.Diverged) {
    auto StillFails = [](const GProgram &Q) {
      OracleResult R = checkSource(Q.render(), Q.HasSpin, /*FailFast=*/true);
      return R.Diverged && !R.RefFailed;
    };
    ReduceStats RS;
    Reduced = reduceProgram(P, StillFails, 1500, &RS);
    std::string Repro = Reduced.render();
    unsigned Lines = 0;
    for (char C : Repro)
      Lines += C == '\n';
    EXPECT_LE(Lines, 30u) << "reduced repro too large:\n" << Repro;
    EXPECT_GT(RS.Accepted, 0u);
  }
  ASSERT_EQ(unsetenv("MGC_FUZZ_DROP_DELTA_BIT"), 0);

  // With the flag gone the reduced program must be clean again: the
  // divergence was the injected bug, not a generator artifact.
  OracleResult After = checkSource(Reduced.render(), Reduced.HasSpin);
  EXPECT_FALSE(After.Diverged) << After.Report;
}

} // namespace
