//===- tests/InterprocTest.cpp - §5.3 interprocedural gc-points ------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future-work refinement: "If the compiler performs
/// inter-procedural analysis then it can determine that some procedures
/// never allocate any heap storage and thus calls to them need not be
/// gc-points."
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "Programs.h"
#include "frontend/Lower.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "gcsafety/Interproc.h"

using namespace mgc;
using namespace mgc::test;

namespace {

const char *MixedSource = R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER END;
VAR g: R;

PROCEDURE PureMath(x: INTEGER): INTEGER;    (* never triggers *)
BEGIN
  RETURN x * x + 1
END PureMath;

PROCEDURE AlsoPure(x: INTEGER): INTEGER;    (* calls only PureMath *)
BEGIN
  RETURN PureMath(x) + PureMath(x + 1)
END AlsoPure;

PROCEDURE Allocates(): R;                   (* triggers *)
BEGIN
  RETURN NEW(R)
END Allocates;

PROCEDURE Indirect(): R;                    (* triggers via Allocates *)
BEGIN
  RETURN Allocates()
END Indirect;

PROCEDURE Recursive(n: INTEGER): INTEGER;   (* recursion, no allocation *)
BEGIN
  IF n = 0 THEN RETURN 0 END;
  RETURN Recursive(n - 1) + 1
END Recursive;

VAR s: INTEGER;
BEGIN
  g := Indirect();
  g^.v := AlsoPure(3);
  s := Recursive(10) + PureMath(2);
  PutInt(g^.v + s); PutLn();
END M.)";

TEST(Interproc, TriggerAnalysisClassifiesFunctions) {
  Diagnostics D;
  auto AST = parseModule(MixedSource, D);
  ASSERT_TRUE(AST != nullptr) << D.str();
  ASSERT_TRUE(checkModule(*AST, D)) << D.str();
  auto M = lowerModule(*AST);

  std::vector<bool> Triggers = gcsafety::computeMayTriggerGc(*M);
  auto TriggersOf = [&](const std::string &Name) {
    for (const auto &F : M->Functions)
      if (F->Name == Name)
        return static_cast<bool>(Triggers[F->Index]);
    ADD_FAILURE() << "no function " << Name;
    return false;
  };
  EXPECT_FALSE(TriggersOf("PureMath"));
  EXPECT_FALSE(TriggersOf("AlsoPure"));
  EXPECT_FALSE(TriggersOf("Recursive"));
  EXPECT_TRUE(TriggersOf("Allocates"));
  EXPECT_TRUE(TriggersOf("Indirect"));
  EXPECT_TRUE(TriggersOf("@main")); // Calls Indirect.
}

TEST(Interproc, ElisionShrinksTables) {
  driver::CompilerOptions Base;
  Base.OptLevel = 2;
  driver::CompilerOptions WithIp = Base;
  WithIp.InterprocGcPoints = true;

  auto CBase = driver::compile(MixedSource, Base);
  auto CIp = driver::compile(MixedSource, WithIp);
  ASSERT_TRUE(CBase.Prog && CIp.Prog);
  EXPECT_EQ(CBase.Prog->GcPointsElided, 0u);
  EXPECT_GT(CIp.Prog->GcPointsElided, 0u);
  EXPECT_LE(CIp.Prog->Stats.NGC, CBase.Prog->Stats.NGC);
  EXPECT_LE(CIp.Prog->Sizes.DeltaPP, CBase.Prog->Sizes.DeltaPP)
      << "fewer gc-points means smaller tables";
  // The code itself is unchanged: only tables differ.
  EXPECT_EQ(CIp.Prog->Image.Bytes.size(), CBase.Prog->Image.Bytes.size());
}

TEST(Interproc, SemanticsPreservedUnderStress) {
  for (int Opt : {0, 2}) {
    driver::CompilerOptions CO;
    CO.OptLevel = Opt;
    CO.InterprocGcPoints = true;
    vm::VMOptions VO;
    VO.GcStress = true;
    RunResult R = compileAndRun(MixedSource, CO, VO);
    ASSERT_TRUE(R.Ok) << R.Error;
    // AlsoPure(3)=10+17=27; Recursive(10)+PureMath(2)=10+5=15.
    EXPECT_EQ(R.Out, "42\n");
  }
}

TEST(Interproc, BenchmarksRunCorrectlyWithElision) {
  for (const auto &P : programs::All) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    CO.InterprocGcPoints = true;
    vm::VMOptions VO;
    VO.GcStress = true;
    VO.HeapBytes = 1u << 20;
    VO.StackWords = 1u << 20;
    RunResult R = compileAndRun(P.Source, CO, VO);
    ASSERT_TRUE(R.Ok) << P.Name << ": " << R.Error;
    EXPECT_EQ(R.Out, P.Expected) << P.Name;
  }
}

TEST(Interproc, PollsRestoreDemotedCalls) {
  // A non-allocating procedure containing a loop gains a poll in threaded
  // mode; calls to it must then be gc-points again, or the collector could
  // not walk the caller's frame while the callee blocks at the poll.
  const char *Src = R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER END;
VAR g: R;

PROCEDURE SpinSum(n: INTEGER): INTEGER;
VAR i, s: INTEGER;
BEGIN
  s := 0;
  i := 0;
  WHILE i < n DO
    s := s + i;
    INC(i)
  END;
  RETURN s
END SpinSum;

BEGIN
  g := NEW(R);
  g^.v := SpinSum(100);
  PutInt(g^.v); PutLn();
END M.)";

  driver::CompilerOptions CO;
  CO.InterprocGcPoints = true;
  CO.ThreadedPolls = true;
  auto C = driver::compile(Src, CO);
  ASSERT_TRUE(C.Prog != nullptr) << C.Diags.str();
  EXPECT_GT(C.Prog->LoopPolls, 0u);
  // The call to SpinSum was provisionally demoted, then restored because
  // of the poll: nothing may remain elided in this module.
  EXPECT_EQ(C.Prog->GcPointsElided, 0u);

  vm::VMOptions VO;
  VO.GcStress = true;
  RunResult R = compileAndRun(Src, CO, VO);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "4950\n");
}

} // namespace
