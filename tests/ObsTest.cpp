//===- tests/ObsTest.cpp - Observability subsystem tests -------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the gc observability subsystem (src/obs + the site tables of
/// src/gcmaps/SiteTable.h): site-table codec round-trips, exact
/// allocation-site attribution against a directed ground truth at -O0 and
/// -O2 in both collector modes, VMStats/trace invariants across the §6
/// benchmark programs and the frozen corpus, JSONL round-tripping through
/// obs::readTrace with zero parse errors, and the error-path flush (a
/// failed run must still produce a complete, parseable trace).
///
/// Every suite name starts with "Obs" — tests/CMakeLists.txt gives them
/// the `obs` ctest label.
///
//===----------------------------------------------------------------------===//

#include "Corpus.h"
#include "Programs.h"
#include "TestUtil.h"

#include "obs/Report.h"
#include "obs/Trace.h"

#include <sstream>

using namespace mgc;
using namespace mgc::test;

namespace {

//===----------------------------------------------------------------------===//
// Site-table codec
//===----------------------------------------------------------------------===//

TEST(ObsSiteTable, EncodeDecodeRoundTrip) {
  gcmaps::SiteTable T;
  T.Sites.push_back({/*Func=*/0, /*Line=*/3, /*Col=*/7, /*Desc=*/1});
  T.Sites.push_back({/*Func=*/0, /*Line=*/12, /*Col=*/3, /*Desc=*/2});
  T.Sites.push_back({/*Func=*/2, /*Line=*/200, /*Col=*/40, /*Desc=*/0});
  T.Sites.push_back({/*Func=*/9, /*Line=*/100000, /*Col=*/1, /*Desc=*/300});
  T.Attrs.push_back({/*PC=*/4, /*Site=*/0});
  T.Attrs.push_back({/*PC=*/90, /*Site=*/1});
  T.Attrs.push_back({/*PC=*/91, /*Site=*/3});
  T.Attrs.push_back({/*PC=*/5000, /*Site=*/2});

  std::vector<uint8_t> Blob = gcmaps::encodeSiteTable(T);
  gcmaps::SiteTable D = gcmaps::decodeSiteTable(Blob);

  ASSERT_EQ(D.Sites.size(), T.Sites.size());
  for (size_t I = 0; I != T.Sites.size(); ++I)
    EXPECT_TRUE(D.Sites[I] == T.Sites[I]) << "site " << I;
  ASSERT_EQ(D.Attrs.size(), T.Attrs.size());
  for (size_t I = 0; I != T.Attrs.size(); ++I) {
    EXPECT_EQ(D.Attrs[I].PC, T.Attrs[I].PC) << "attr " << I;
    EXPECT_EQ(D.Attrs[I].Site, T.Attrs[I].Site) << "attr " << I;
  }
}

TEST(ObsSiteTable, EmptyRoundTrip) {
  gcmaps::SiteTable D = gcmaps::decodeSiteTable(gcmaps::encodeSiteTable({}));
  EXPECT_TRUE(D.Sites.empty());
  EXPECT_TRUE(D.Attrs.empty());
}

//===----------------------------------------------------------------------===//
// Traced-run helper
//===----------------------------------------------------------------------===//

struct TracedRun {
  bool Ok = false;
  std::string Out;
  std::string Error;
  vm::VMStats Stats;
  gcmaps::SiteTable SiteTab;
  std::vector<obs::SiteCounters> Counters;
  uint64_t Unattributed = 0;
  uint64_t Events = 0;
  uint64_t MinorEvents = 0;
  uint64_t FullEvents = 0;
  std::string Trace; ///< The full JSONL text.
};

/// Compiles \p Source and runs it with an enabled tracer streaming into a
/// string; fails the current test on compile errors.
TracedRun runTraced(const std::string &Source, int Opt, bool Gen,
                    size_t HeapBytes, size_t NurseryBytes = 4u << 10,
                    bool Stress = false) {
  TracedRun R;
  driver::CompilerOptions CO;
  CO.OptLevel = Opt;
  CO.WriteBarriers = Gen;
  auto C = driver::compile(Source, CO);
  if (!C.Prog) {
    ADD_FAILURE() << "compilation failed:\n" << C.Diags.str();
    return R;
  }
  R.SiteTab = C.Prog->SiteTab;

  vm::VMOptions VO;
  VO.HeapBytes = HeapBytes;
  VO.GenGc = Gen;
  VO.NurseryBytes = Gen ? NurseryBytes : 0;
  VO.GcStress = Stress;
  vm::VM M(*C.Prog, VO);
  gc::CollectorOptions GCO;
  GCO.CrossCheck = true;
  gc::installPreciseCollector(M, GCO);

  obs::TracerConfig TC;
  TC.Sites = &C.Prog->SiteTab;
  for (const auto &F : C.Prog->Funcs)
    TC.FuncNames.push_back(F.Name);
  TC.ProgramName = "test";
  TC.GenGc = Gen;
  TC.SiteTableBytes = C.Prog->Sizes.SiteTableBytes;
  obs::Tracer Tracer(std::move(TC));
  std::ostringstream OS;
  Tracer.enable(&OS);
  M.Tracer = &Tracer;

  R.Ok = M.run();
  Tracer.finish(R.Ok, M.Error);
  R.Out = M.Out;
  R.Error = M.Error;
  R.Stats = M.Stats;
  R.Counters = Tracer.siteCounters();
  R.Unattributed = Tracer.unattributedCount();
  R.Events = Tracer.eventCount();
  R.MinorEvents = Tracer.pausePercentiles(/*Kind=*/1).Count;
  R.FullEvents = Tracer.pausePercentiles(/*Kind=*/2).Count;
  R.Trace = OS.str();
  return R;
}

/// 1-based source line of the first occurrence of \p Needle.
uint32_t lineOf(const std::string &Source, const std::string &Needle) {
  size_t Pos = Source.find(Needle);
  EXPECT_NE(Pos, std::string::npos) << Needle;
  uint32_t Line = 1;
  for (size_t I = 0; I < Pos; ++I)
    if (Source[I] == '\n')
      ++Line;
  return Line;
}

//===----------------------------------------------------------------------===//
// Exact allocation-site attribution
//===----------------------------------------------------------------------===//

/// Three allocation sites with statically known execution counts and no
/// other allocation anywhere (no texts, no implicit temporaries).
const char *SitesSource = R"(MODULE Sites;
TYPE
  Pair = REF RECORD a, b: INTEGER END;
  Arr = REF ARRAY OF INTEGER;
VAR p: Pair; v: Arr; keep: Arr; sum: INTEGER;
BEGIN
  keep := NEW(Arr, 8);
  FOR i := 1 TO 200 DO
    p := NEW(Pair);
    p.a := i; p.b := i + i;
    keep[0] := keep[0] + p.a
  END;
  FOR i := 1 TO 60 DO
    v := NEW(Arr, 4);
    v[0] := i;
    sum := sum + v[0]
  END;
  PutInt(keep[0]); PutChar(32); PutInt(sum); PutLn();
END Sites.
)";

TEST(ObsAttribution, ThreeSitesExactCounts) {
  const uint32_t KeepLine = lineOf(SitesSource, "keep := NEW(Arr, 8)");
  const uint32_t PairLine = lineOf(SitesSource, "p := NEW(Pair)");
  const uint32_t ArrLine = lineOf(SitesSource, "v := NEW(Arr, 4)");

  for (int Opt : {0, 2})
    for (bool Gen : {false, true}) {
      SCOPED_TRACE(testing::Message()
                   << "O" << Opt << (Gen ? " gen" : " two-space"));
      // Heap small enough that the Pair loop collects several times: the
      // attribution must survive object motion.
      TracedRun R = runTraced(SitesSource, Opt, Gen, /*HeapBytes=*/4u << 10,
                              /*NurseryBytes=*/1u << 10);
      ASSERT_TRUE(R.Ok) << R.Error;
      EXPECT_EQ(R.Out, "20100 1830\n");
      EXPECT_GT(R.Stats.Collections, 0u);

      // Exactly the three NEW expressions, dedup'd, in deterministic
      // (sorted) order — identical ids at -O0 and -O2.
      ASSERT_EQ(R.SiteTab.Sites.size(), 3u);
      ASSERT_EQ(R.Counters.size(), 3u);
      EXPECT_EQ(R.Unattributed, 0u);

      uint64_t ByLine[3] = {0, 0, 0}; // keep, pair, arr
      for (size_t I = 0; I != R.SiteTab.Sites.size(); ++I) {
        uint32_t Line = R.SiteTab.Sites[I].Line;
        uint64_t Count = R.Counters[I].Count;
        if (Line == KeepLine)
          ByLine[0] += Count;
        else if (Line == PairLine)
          ByLine[1] += Count;
        else if (Line == ArrLine)
          ByLine[2] += Count;
        else
          ADD_FAILURE() << "unexpected site line " << Line;
      }
      EXPECT_EQ(ByLine[0], 1u);
      EXPECT_EQ(ByLine[1], 200u);
      EXPECT_EQ(ByLine[2], 60u);
      for (const obs::SiteCounters &C : R.Counters)
        EXPECT_GT(C.Bytes, 0u);
    }
}

//===----------------------------------------------------------------------===//
// VMStats / trace invariants
//===----------------------------------------------------------------------===//

void checkInvariants(const TracedRun &R, bool Gen) {
  // Committed trace events correspond 1:1 with collections, split by kind.
  EXPECT_EQ(R.Events, R.Stats.Collections);
  EXPECT_EQ(R.MinorEvents, R.Stats.MinorCollections);
  EXPECT_EQ(R.FullEvents, R.Stats.Collections - R.Stats.MinorCollections);
  EXPECT_LE(R.Stats.MinorCollections, R.Stats.Collections);
  if (!Gen) {
    EXPECT_EQ(R.Stats.MinorCollections, 0u);
    EXPECT_EQ(R.Stats.WriteBarriersRun, 0u);
  }
  // A remembered-set record requires a barrier execution that hit.
  EXPECT_GE(R.Stats.WriteBarriersRun, R.Stats.RemSetRecords);
  // Under the map index (the default), every traced frame decodes through
  // the point cache: hit or miss, nothing else touches the counters.
  EXPECT_EQ(R.Stats.DecodeCacheHits + R.Stats.DecodeCacheMisses,
            R.Stats.FramesTraced);
}

/// Parses \p R's JSONL trace, expecting zero errors, and checks that the
/// stream agrees with the in-memory counters.
void checkTraceRoundTrip(const TracedRun &R) {
  std::istringstream In(R.Trace);
  obs::TraceReport Report;
  std::string Err;
  ASSERT_TRUE(obs::readTrace(In, Report, Err)) << Err;
  EXPECT_EQ(Report.Events.size(), R.Stats.Collections);
  ASSERT_TRUE(Report.HasRun);
  EXPECT_EQ(Report.RunOk, R.Ok);
  uint64_t Minor = 0, Full = 0;
  for (const obs::GcEvent &Ev : Report.Events)
    (Ev.Minor ? Minor : Full) += 1;
  EXPECT_EQ(Minor, R.Stats.MinorCollections);
  EXPECT_EQ(Full, R.Stats.Collections - R.Stats.MinorCollections);
}

struct NamedSource {
  std::string Name;
  std::string Source;
  size_t HeapBytes;
};

std::vector<NamedSource> invariantPrograms() {
  std::vector<NamedSource> Out;
  // The §6 benchmark programs, heaps sized to force collections where the
  // default live sets allow it.
  for (const auto &P : programs::All) {
    size_t Heap = 64u << 10;
    if (std::string(P.Name) == "destroy")
      Heap = 48u << 10;
    Out.push_back({P.Name, P.Source, Heap});
  }
  // The frozen fuzz corpus (single-threaded runs; Spin programs just never
  // start the extra thread).
  for (const CorpusProgram &P : corpus())
    Out.push_back({P.Name, P.Source, 64u << 10});
  return Out;
}

TEST(ObsInvariants, BenchAndCorpusBothModes) {
  for (const NamedSource &P : invariantPrograms())
    for (bool Gen : {false, true}) {
      SCOPED_TRACE(P.Name + (Gen ? " gen" : " two-space"));
      TracedRun R = runTraced(P.Source, /*Opt=*/2, Gen, P.HeapBytes);
      ASSERT_TRUE(R.Ok) << R.Error;
      checkInvariants(R, Gen);
      checkTraceRoundTrip(R);
    }
}

TEST(ObsInvariants, StressedDestroyBothModes) {
  // GcStress collects before every allocation: the densest event stream
  // the tracer ever sees, and far more events than the ring retains.
  for (bool Gen : {false, true}) {
    SCOPED_TRACE(Gen ? "gen" : "two-space");
    TracedRun R = runTraced(programs::DestroySource, /*Opt=*/2, Gen,
                            /*HeapBytes=*/64u << 10, /*NurseryBytes=*/4u << 10,
                            /*Stress=*/true);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_GT(R.Stats.Collections, 1000u);
    checkInvariants(R, Gen);
    checkTraceRoundTrip(R);
  }
}

//===----------------------------------------------------------------------===//
// Ring wrap-around: the drop counter must be loud everywhere
//===----------------------------------------------------------------------===//

TEST(ObsRingWrap, DropCounterSurfacedInSummaryAndReport) {
  // A tiny ring under a collection-heavy run: most events are dropped,
  // and every surface (summary JSON fields, run record, mgc-report text
  // and JSON) must carry the exact drop count so truncated pause/volume
  // sections are never mistaken for complete ones.
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  CO.WriteBarriers = true;
  auto C = driver::compile(programs::DestroySource, CO);
  ASSERT_TRUE(C.Prog != nullptr) << C.Diags.str();

  constexpr size_t Cap = 8;
  vm::VMOptions VO;
  VO.HeapBytes = 48u << 10;
  VO.GenGc = true;
  VO.NurseryBytes = 4u << 10;
  vm::VM M(*C.Prog, VO);
  gc::installPreciseCollector(M, {});

  obs::TracerConfig TC;
  TC.Sites = &C.Prog->SiteTab;
  for (const auto &F : C.Prog->Funcs)
    TC.FuncNames.push_back(F.Name);
  TC.ProgramName = "ringwrap";
  TC.GenGc = true;
  TC.RingCapacity = Cap;
  obs::Tracer Tracer(std::move(TC));
  std::ostringstream OS;
  Tracer.enable(&OS);
  M.Tracer = &Tracer;

  ASSERT_TRUE(M.run()) << M.Error;
  Tracer.finish(true, "");

  ASSERT_GT(Tracer.eventCount(), Cap) << "workload too small to wrap";
  uint64_t Dropped = Tracer.eventsDropped();
  EXPECT_EQ(Dropped, Tracer.eventCount() - Cap);

  // --stats-json surface.
  std::string Fields = Tracer.summaryJsonFields();
  EXPECT_NE(Fields.find("\"events_dropped_from_ring\":" +
                        std::to_string(Dropped)),
            std::string::npos)
      << Fields;

  // The JSONL stream itself carries every event (records are written
  // live); the ring bounds only the tracer's retained in-memory view, so
  // the run record must advertise what its own percentiles cover.
  std::istringstream In(OS.str());
  obs::TraceReport Report;
  std::string Err;
  ASSERT_TRUE(obs::readTrace(In, Report, Err)) << Err;
  ASSERT_TRUE(Report.HasRun);
  EXPECT_EQ(Report.Events.size(), Tracer.eventCount());
  EXPECT_EQ(static_cast<uint64_t>(Report.Run.getInt("events_retained")),
            static_cast<uint64_t>(Cap));
  EXPECT_EQ(static_cast<uint64_t>(
                Report.Run.getInt("events_dropped_from_ring")),
            Dropped);
  EXPECT_EQ(static_cast<uint64_t>(Report.Run.getInt("events")),
            Tracer.eventCount());

  // mgc-report surfaces: a visible warning in the text report and the
  // counter in the JSON mirror.
  std::string Rendered = obs::renderReport(Report, /*TopN=*/5);
  EXPECT_NE(Rendered.find("WARNING"), std::string::npos) << Rendered;
  EXPECT_NE(Rendered.find("dropped from the ring buffer"),
            std::string::npos);
  std::string Json = obs::renderReportJson(Report, /*TopN=*/5);
  EXPECT_NE(Json.find("\"events_dropped_from_ring\":" +
                      std::to_string(Dropped)),
            std::string::npos)
      << Json;
}

TEST(ObsRingWrap, NoDropsWhenRingCovers) {
  // Control: a ring larger than the event count reports zero drops and
  // no warning banner.
  TracedRun R = runTraced(programs::DestroySource, /*Opt=*/2, /*Gen=*/false,
                          /*HeapBytes=*/64u << 10);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_LE(R.Events, 1024u) << "default ring no longer covers this run";
  std::istringstream In(R.Trace);
  obs::TraceReport Report;
  std::string Err;
  ASSERT_TRUE(obs::readTrace(In, Report, Err)) << Err;
  ASSERT_TRUE(Report.HasRun);
  EXPECT_EQ(Report.Run.getInt("events_dropped_from_ring"), 0);
  EXPECT_EQ(obs::renderReport(Report, 5).find("dropped from the ring"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Error-path flush
//===----------------------------------------------------------------------===//

TEST(ObsErrorPath, FailedRunStillFlushesTrace) {
  // Unbounded list growth: the run dies with "heap exhausted" after
  // several successful collections.
  const char *Source = R"(MODULE Leak;
TYPE Node = REF RECORD next: Node; pad: INTEGER END;
VAR head: Node; n: Node;
BEGIN
  WHILE TRUE DO
    n := NEW(Node);
    n.next := head;
    head := n
  END;
END Leak.
)";
  for (bool Gen : {false, true}) {
    SCOPED_TRACE(Gen ? "gen" : "two-space");
    TracedRun R = runTraced(Source, /*Opt=*/2, Gen, /*HeapBytes=*/8u << 10,
                            /*NurseryBytes=*/1u << 10);
    ASSERT_FALSE(R.Ok);
    EXPECT_NE(R.Error.find("heap exhausted"), std::string::npos) << R.Error;
    EXPECT_GT(R.Stats.Collections, 0u);

    // The partial trace must still parse completely and carry the error.
    std::istringstream In(R.Trace);
    obs::TraceReport Report;
    std::string Err;
    ASSERT_TRUE(obs::readTrace(In, Report, Err)) << Err;
    ASSERT_TRUE(Report.HasRun);
    EXPECT_FALSE(Report.RunOk);
    EXPECT_NE(Report.RunError.find("heap exhausted"), std::string::npos);
    EXPECT_EQ(Report.Events.size(), R.Stats.Collections);

    // And the renderer must cope with a failed run (banner, no crash).
    std::string Rendered = obs::renderReport(Report, /*TopN=*/5);
    EXPECT_NE(Rendered.find("FAILED"), std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// Survival accounting
//===----------------------------------------------------------------------===//

TEST(ObsSurvival, RetainedVsDroppedSites) {
  // Site A's objects are all retained; site B's are garbage by the next
  // collection.  An explicit collection resolves survival for everything
  // allocated so far.
  const char *Source = R"(MODULE Survive;
TYPE Node = REF RECORD v: INTEGER END;
     Vec = REF ARRAY OF Node;
VAR keep: Vec; tmp: Node;
BEGIN
  keep := NEW(Vec, 32);
  FOR i := 0 TO 31 DO
    keep[i] := NEW(Node)
  END;
  FOR i := 1 TO 32 DO
    tmp := NEW(Node);
    tmp.v := i
  END;
  tmp := NIL;
  GcCollect();
  PutInt(NUMBER(keep)); PutLn();
END Survive.
)";
  const uint32_t KeptLine = lineOf(Source, "keep[i] := NEW(Node)");
  const uint32_t TmpLine = lineOf(Source, "tmp := NEW(Node)");
  TracedRun R = runTraced(Source, /*Opt=*/2, /*Gen=*/false,
                          /*HeapBytes=*/64u << 10);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_GE(R.Stats.Collections, 1u);
  bool SawKept = false, SawTmp = false;
  for (size_t I = 0; I != R.SiteTab.Sites.size(); ++I) {
    if (R.SiteTab.Sites[I].Line == KeptLine) {
      SawKept = true;
      EXPECT_EQ(R.Counters[I].Count, 32u);
      EXPECT_EQ(R.Counters[I].Survived, 32u);
    } else if (R.SiteTab.Sites[I].Line == TmpLine) {
      SawTmp = true;
      EXPECT_EQ(R.Counters[I].Count, 32u);
      // The last tmp Node may be held live by a stale stack slot, but the
      // 31 replaced ones are unreachable garbage.
      EXPECT_LE(R.Counters[I].Survived, 1u);
    }
  }
  EXPECT_TRUE(SawKept);
  EXPECT_TRUE(SawTmp);
}

//===----------------------------------------------------------------------===//
// Deterministic site-table ordering
//===----------------------------------------------------------------------===//

TEST(ObsReportOrdering, TiedSitesRenderInIdOrder) {
  // Sites with identical byte totals must render in site-id order — the
  // report's tables stable-sort with an id tiebreak, so the output is a
  // pure function of the trace regardless of sort implementation.
  obs::TraceReport R;
  R.Program = "ties";
  for (uint32_t Id = 0; Id != 4; ++Id) {
    obs::TraceReport::Site S;
    S.Id = Id;
    S.Func = "f" + std::to_string(Id);
    S.Line = Id + 1;
    S.Count = 10;
    S.Bytes = 4096;          // all tied
    S.Survived = 5;
    S.SurvivedBytes = 2048;  // all tied
    R.Sites.push_back(S);
  }
  R.HasRun = true;
  R.RunOk = true;

  std::string Rendered = obs::renderReport(R, /*TopN=*/4);
  size_t P0 = Rendered.find("f0:");
  size_t P1 = Rendered.find("f1:");
  size_t P2 = Rendered.find("f2:");
  size_t P3 = Rendered.find("f3:");
  ASSERT_NE(P0, std::string::npos);
  ASSERT_NE(P1, std::string::npos);
  ASSERT_NE(P2, std::string::npos);
  ASSERT_NE(P3, std::string::npos);
  EXPECT_LT(P0, P1);
  EXPECT_LT(P1, P2);
  EXPECT_LT(P2, P3);

  // The JSON mirror uses the same ordering.
  std::string Json = obs::renderReportJson(R, /*TopN=*/4);
  size_t J0 = Json.find("\"f0:");
  size_t J1 = Json.find("\"f1:");
  ASSERT_NE(J0, std::string::npos);
  ASSERT_NE(J1, std::string::npos);
  EXPECT_LT(J0, J1);
}

} // namespace
