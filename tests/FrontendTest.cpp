//===- tests/FrontendTest.cpp - Lexer, parser, Sema, types -----------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "frontend/Type.h"

#include <gtest/gtest.h>

using namespace mgc;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

std::vector<Token> lexAll(const std::string &Src, Diagnostics &Diags) {
  Lexer L(Src, Diags);
  std::vector<Token> Out;
  while (true) {
    Token T = L.next();
    Out.push_back(T);
    if (T.is(TokKind::Eof))
      return Out;
  }
}

TEST(Lexer, KeywordsAndIdentifiers) {
  Diagnostics D;
  auto Toks = lexAll("MODULE foo BEGIN END while WHILE", D);
  ASSERT_EQ(Toks.size(), 7u);
  EXPECT_EQ(Toks[0].Kind, TokKind::KwModule);
  EXPECT_EQ(Toks[1].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[1].Text, "foo");
  EXPECT_EQ(Toks[2].Kind, TokKind::KwBegin);
  EXPECT_EQ(Toks[3].Kind, TokKind::KwEnd);
  // Keywords are case sensitive (Modula style): "while" is an identifier.
  EXPECT_EQ(Toks[4].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[5].Kind, TokKind::KwWhile);
  EXPECT_FALSE(D.hasErrors());
}

TEST(Lexer, CompositeOperators) {
  Diagnostics D;
  auto Toks = lexAll(":= <= >= .. . # ^", D);
  EXPECT_EQ(Toks[0].Kind, TokKind::Assign);
  EXPECT_EQ(Toks[1].Kind, TokKind::LessEq);
  EXPECT_EQ(Toks[2].Kind, TokKind::GreaterEq);
  EXPECT_EQ(Toks[3].Kind, TokKind::DotDot);
  EXPECT_EQ(Toks[4].Kind, TokKind::Dot);
  EXPECT_EQ(Toks[5].Kind, TokKind::NotEqual);
  EXPECT_EQ(Toks[6].Kind, TokKind::Caret);
}

TEST(Lexer, NestedComments) {
  Diagnostics D;
  auto Toks = lexAll("a (* x (* nested *) y *) b", D);
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
  EXPECT_FALSE(D.hasErrors());
}

TEST(Lexer, UnterminatedCommentReported) {
  Diagnostics D;
  lexAll("a (* never closed", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(Lexer, IntegerLiterals) {
  Diagnostics D;
  auto Toks = lexAll("0 42 123456789", D);
  EXPECT_EQ(Toks[0].IntValue, 0);
  EXPECT_EQ(Toks[1].IntValue, 42);
  EXPECT_EQ(Toks[2].IntValue, 123456789);
}

TEST(Lexer, StringLiteralsWithEscapes) {
  Diagnostics D;
  auto Toks = lexAll("\"hi there\" \"a\\nb\" \"q\\\"q\"", D);
  EXPECT_EQ(Toks[0].Kind, TokKind::StrLit);
  EXPECT_EQ(Toks[0].Text, "hi there");
  EXPECT_EQ(Toks[1].Text, "a\nb");
  EXPECT_EQ(Toks[2].Text, "q\"q");
  EXPECT_FALSE(D.hasErrors());
}

TEST(Lexer, TracksLineNumbers) {
  Diagnostics D;
  auto Toks = lexAll("a\nb\n  c", D);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[2].Loc.Line, 3u);
  EXPECT_EQ(Toks[2].Loc.Col, 3u);
}

//===----------------------------------------------------------------------===//
// Parser and Sema
//===----------------------------------------------------------------------===//

std::unique_ptr<ModuleAST> parseOk(const std::string &Src) {
  Diagnostics D;
  auto M = parseModule(Src, D);
  EXPECT_TRUE(M != nullptr) << D.str();
  return M;
}

void expectParseError(const std::string &Src, const std::string &Fragment) {
  Diagnostics D;
  auto M = parseModule(Src, D);
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(D.str().find(Fragment), std::string::npos)
      << "diagnostics were:\n"
      << D.str();
}

void expectSemaError(const std::string &Src, const std::string &Fragment) {
  Diagnostics D;
  auto M = parseModule(Src, D);
  ASSERT_TRUE(M != nullptr) << D.str();
  EXPECT_FALSE(checkModule(*M, D));
  EXPECT_NE(D.str().find(Fragment), std::string::npos)
      << "diagnostics were:\n"
      << D.str();
}

std::unique_ptr<ModuleAST> checkOk(const std::string &Src) {
  Diagnostics D;
  auto M = parseModule(Src, D);
  EXPECT_TRUE(M != nullptr) << D.str();
  if (M)
    EXPECT_TRUE(checkModule(*M, D)) << D.str();
  return M;
}

TEST(Parser, EmptyModule) {
  auto M = parseOk("MODULE M; BEGIN END M.");
  EXPECT_EQ(M->Name, "M");
  EXPECT_TRUE(M->MainBody.empty());
}

TEST(Parser, TrailerMismatchReported) {
  expectParseError("MODULE M; BEGIN END N.", "does not match");
}

TEST(Parser, RecursiveTypesThroughRef) {
  auto M = parseOk(R"(
MODULE M;
TYPE List = REF ListRec;
     ListRec = RECORD head: INTEGER; tail: List END;
BEGIN END M.)");
  ASSERT_TRUE(M != nullptr);
}

TEST(Parser, MutuallyRecursiveTypes) {
  parseOk(R"(
MODULE M;
TYPE A = REF ARec;
     B = REF BRec;
     ARec = RECORD b: B END;
     BRec = RECORD a: A END;
BEGIN END M.)");
}

TEST(Parser, RecursionMustPassThroughRef) {
  expectParseError(R"(
MODULE M;
TYPE R = RECORD x: R END;
BEGIN END M.)",
                   "before its definition is complete");
}

TEST(Parser, OpenArrayOnlyUnderRef) {
  expectParseError(R"(
MODULE M;
VAR a: ARRAY OF INTEGER;
BEGIN END M.)",
                   "only permitted under REF");
}

TEST(Parser, ConstExpressionsFold) {
  auto M = parseOk(R"(
MODULE M;
CONST N = 4 * 3 + 2; Lo = -N;
TYPE A = ARRAY [Lo .. N] OF INTEGER;
VAR a: A;
BEGIN END M.)");
  ASSERT_EQ(M->Globals.size(), 1u);
  EXPECT_EQ(M->Globals[0]->Ty->lo(), -14);
  EXPECT_EQ(M->Globals[0]->Ty->hi(), 14);
}

TEST(Parser, MultiIndexSugar) {
  // a[i, j] parses as a[i][j].
  checkOk(R"(
MODULE M;
VAR a: ARRAY [0..3] OF ARRAY [0..3] OF INTEGER; x: INTEGER;
BEGIN x := a[1, 2]; a[2, 1] := x END M.)");
}

TEST(Sema, UnknownIdentifier) {
  expectSemaError("MODULE M; BEGIN x := 1 END M.", "unknown identifier");
}

TEST(Sema, TypeMismatchOnAssign) {
  expectSemaError(R"(
MODULE M;
VAR b: BOOLEAN;
BEGIN b := 3 END M.)",
                  "cannot assign");
}

TEST(Sema, RefComparableOnlyWithEqual) {
  expectSemaError(R"(
MODULE M;
TYPE R = REF INTEGER;
VAR a, b: R; c: BOOLEAN;
BEGIN c := a < b END M.)",
                  "ordering comparison");
}

TEST(Sema, NilAssignableToAnyRef) {
  checkOk(R"(
MODULE M;
TYPE R = REF INTEGER;
VAR a: R;
BEGIN a := NIL END M.)");
}

TEST(Sema, VarArgumentMustBeDesignator) {
  expectSemaError(R"(
MODULE M;
PROCEDURE P(VAR x: INTEGER); BEGIN x := 1 END P;
BEGIN P(3 + 4) END M.)",
                  "VAR argument must be a designator");
}

TEST(Sema, CallArgumentCountChecked) {
  expectSemaError(R"(
MODULE M;
PROCEDURE P(x: INTEGER); BEGIN END P;
BEGIN P(1, 2) END M.)",
                  "argument(s)");
}

TEST(Sema, ProperProcedureNotAnExpression) {
  expectSemaError(R"(
MODULE M;
PROCEDURE P(); BEGIN END P;
VAR x: INTEGER;
BEGIN x := P() END M.)",
                  "used in an expression");
}

TEST(Sema, NewRequiresRefTypeName) {
  expectSemaError(R"(
MODULE M;
TYPE T = RECORD x: INTEGER END;
VAR r: REF T;
BEGIN r := NEW(T) END M.)",
                  "REF type name");
}

TEST(Sema, NewOpenArrayNeedsLength) {
  expectSemaError(R"(
MODULE M;
TYPE A = REF ARRAY OF INTEGER;
VAR a: A;
BEGIN a := NEW(A) END M.)",
                  "length");
}

TEST(Sema, ForIndexImplicitlyDeclared) {
  checkOk(R"(
MODULE M;
VAR s: INTEGER;
BEGIN FOR i := 1 TO 10 DO s := s + i END END M.)");
}

TEST(Sema, ExitOutsideLoopRejected) {
  expectSemaError("MODULE M; BEGIN EXIT END M.", "EXIT outside");
}

TEST(Sema, WithBindsAlias) {
  checkOk(R"(
MODULE M;
TYPE R = REF RECORD x: INTEGER END;
VAR r: R;
BEGIN
  r := NEW(R);
  WITH f = r^.x DO f := 3 END
END M.)");
}

TEST(Sema, StructuralEquivalenceAcrossNames) {
  // Two distinct names for structurally identical types are assignable.
  checkOk(R"(
MODULE M;
TYPE P1 = REF RECORD x: INTEGER END;
     P2 = REF RECORD x: INTEGER END;
VAR a: P1; b: P2;
BEGIN a := NEW(P1); b := a END M.)");
}

TEST(Sema, AggregateAssignmentRejected) {
  expectSemaError(R"(
MODULE M;
VAR a, b: ARRAY [0..3] OF INTEGER;
BEGIN a := b END M.)",
                  "scalar");
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TEST(Types, SizesAndPointerOffsets) {
  TypeContext Ctx;
  const Type *IntTy = Ctx.integerType();
  const Type *RefTy = Ctx.getRef(IntTy);
  const Type *Rec = Ctx.getRecord({{"a", IntTy, 0},
                                   {"r", RefTy, 0},
                                   {"b", IntTy, 0},
                                   {"s", RefTy, 0}});
  EXPECT_EQ(Rec->sizeInWords(), 4u);
  std::vector<unsigned> Offs;
  Rec->collectPointerOffsets(0, Offs);
  EXPECT_EQ(Offs, (std::vector<unsigned>{1, 3}));

  const Type *Arr = Ctx.getArray(1, 3, Rec);
  EXPECT_EQ(Arr->sizeInWords(), 12u);
  Offs.clear();
  Arr->collectPointerOffsets(0, Offs);
  // Each contained pointer is a separate offset (the paper's per-element
  // treatment).
  EXPECT_EQ(Offs, (std::vector<unsigned>{1, 3, 5, 7, 9, 11}));
}

TEST(Types, StructuralEqualityWithCycles) {
  TypeContext Ctx;
  // Two independently built recursive list types.
  Type *RecA = Ctx.beginRecord();
  const Type *RefA = Ctx.getRef(RecA);
  Ctx.completeRecord(RecA, {{"head", Ctx.integerType(), 0},
                            {"tail", RefA, 0}});
  Type *RecB = Ctx.beginRecord();
  const Type *RefB = Ctx.getRef(RecB);
  Ctx.completeRecord(RecB, {{"head", Ctx.integerType(), 0},
                            {"tail", RefB, 0}});
  EXPECT_TRUE(Type::structurallyEqual(RecA, RecB));
  EXPECT_TRUE(Type::structurallyEqual(RefA, RefB));

  // A list of BOOLEAN differs.
  Type *RecC = Ctx.beginRecord();
  const Type *RefC = Ctx.getRef(RecC);
  Ctx.completeRecord(RecC, {{"head", Ctx.booleanType(), 0},
                            {"tail", RefC, 0}});
  EXPECT_FALSE(Type::structurallyEqual(RecA, RecC));
}

TEST(Types, FieldNamesMatterStructurally) {
  TypeContext Ctx;
  const Type *A = Ctx.getRecord({{"x", Ctx.integerType(), 0}});
  const Type *B = Ctx.getRecord({{"y", Ctx.integerType(), 0}});
  EXPECT_FALSE(Type::structurallyEqual(A, B));
}

TEST(Types, ArrayBoundsMatter) {
  TypeContext Ctx;
  const Type *A = Ctx.getArray(0, 9, Ctx.integerType());
  const Type *B = Ctx.getArray(1, 10, Ctx.integerType());
  EXPECT_FALSE(Type::structurallyEqual(A, B));
  EXPECT_EQ(A->length(), B->length());
}

} // namespace
