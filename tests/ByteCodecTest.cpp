//===- tests/ByteCodecTest.cpp - Figure 3 byte packing ---------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ByteCodec.h"

#include <gtest/gtest.h>

using namespace mgc;

namespace {

int32_t roundTrip(int32_t V) {
  std::vector<uint8_t> Bytes;
  appendPacked(Bytes, V);
  size_t Pos = 0;
  int32_t Back = readPacked(Bytes.data(), Bytes.size(), Pos);
  EXPECT_EQ(Pos, Bytes.size()) << "decoder consumed wrong byte count";
  return Back;
}

TEST(ByteCodec, SmallNonNegativeValuesFitOneByte) {
  for (int32_t V = 0; V <= 63; ++V)
    EXPECT_EQ(packedSize(V), 1u) << V;
  EXPECT_EQ(packedSize(64), 2u);
}

TEST(ByteCodec, SmallNegativeValuesFitOneByte) {
  // The first byte is sign-extended (Fig. 3): 7 payload bits cover -64..63.
  for (int32_t V = -64; V < 0; ++V)
    EXPECT_EQ(packedSize(V), 1u) << V;
  EXPECT_EQ(packedSize(-65), 2u);
}

TEST(ByteCodec, SizeBoundaries) {
  EXPECT_EQ(packedSize(8191), 2u);    // 2^13 - 1
  EXPECT_EQ(packedSize(8192), 3u);
  EXPECT_EQ(packedSize(-8192), 2u);
  EXPECT_EQ(packedSize(-8193), 3u);
  EXPECT_EQ(packedSize(1048575), 3u); // 2^20 - 1
  EXPECT_EQ(packedSize(1048576), 4u);
  EXPECT_EQ(packedSize(INT32_MAX), 5u);
  EXPECT_EQ(packedSize(INT32_MIN), 5u);
}

TEST(ByteCodec, ContinuationBitMarksAllButLastByte) {
  std::vector<uint8_t> Bytes;
  appendPacked(Bytes, 300); // Needs two bytes.
  ASSERT_EQ(Bytes.size(), 2u);
  EXPECT_NE(Bytes[0] & 0x80, 0) << "first byte must set the continuation bit";
  EXPECT_EQ(Bytes[1] & 0x80, 0) << "last byte must clear it";
}

TEST(ByteCodec, BytesAreMostSignificantFirst) {
  // 300 = 0b100101100: groups (msb first) 0000010, 0101100.
  std::vector<uint8_t> Bytes;
  appendPacked(Bytes, 300);
  ASSERT_EQ(Bytes.size(), 2u);
  EXPECT_EQ(Bytes[0] & 0x7f, 0b0000010);
  EXPECT_EQ(Bytes[1] & 0x7f, 0b0101100);
}

TEST(ByteCodec, NegativeOneIsSingleAllOnesPayload) {
  std::vector<uint8_t> Bytes;
  appendPacked(Bytes, -1);
  ASSERT_EQ(Bytes.size(), 1u);
  EXPECT_EQ(Bytes[0], 0x7f);
  EXPECT_EQ(roundTrip(-1), -1);
}

TEST(ByteCodec, RoundTripExtremes) {
  for (int32_t V : {0, 1, -1, 63, 64, -64, -65, 127, 128, 8191, 8192, -8192,
                    -8193, 1 << 20, -(1 << 20), INT32_MAX, INT32_MIN,
                    INT32_MAX - 1, INT32_MIN + 1})
    EXPECT_EQ(roundTrip(V), V) << V;
}

TEST(ByteCodec, RoundTripExhaustive16Bit) {
  for (int32_t V = -32768; V <= 32767; ++V)
    ASSERT_EQ(roundTrip(V), V) << V;
}

TEST(ByteCodec, SequentialWordsDecodeInOrder) {
  std::vector<uint8_t> Bytes;
  std::vector<int32_t> Values = {0, -1, 42, 100000, -99999, 7, INT32_MIN};
  for (int32_t V : Values)
    appendPacked(Bytes, V);
  size_t Pos = 0;
  for (int32_t V : Values)
    EXPECT_EQ(readPacked(Bytes.data(), Bytes.size(), Pos), V);
  EXPECT_EQ(Pos, Bytes.size());
}

TEST(ByteCodec, WriterMixesPackedAndRawWords) {
  PackedWriter W;
  W.writePacked(-5);
  W.writeWord32(123456789);
  W.writeByte(0xab);
  PackedReader R(W.bytes());
  EXPECT_EQ(R.readPackedWord(), -5);
  EXPECT_EQ(R.readWord32(), 123456789);
  EXPECT_EQ(R.readByte(), 0xab);
  EXPECT_TRUE(R.atEnd());
}

/// Property sweep: round-trip across a dense sample of the 32-bit range.
class PackingSweep : public ::testing::TestWithParam<int32_t> {};

TEST_P(PackingSweep, RoundTripsAndMinimal) {
  int32_t Base = GetParam();
  for (int32_t Delta = -3; Delta <= 3; ++Delta) {
    int64_t V64 = static_cast<int64_t>(Base) + Delta;
    if (V64 < INT32_MIN || V64 > INT32_MAX)
      continue;
    int32_t V = static_cast<int32_t>(V64);
    EXPECT_EQ(roundTrip(V), V);
    // Minimality: one fewer byte must not be able to represent the value.
    unsigned N = packedSize(V);
    if (N > 1) {
      unsigned Bits = 7 * (N - 1);
      int64_t Lo = -(int64_t(1) << (Bits - 1));
      int64_t Hi = (int64_t(1) << (Bits - 1)) - 1;
      EXPECT_TRUE(V < Lo || V > Hi) << V << " should not fit " << N - 1;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, PackingSweep,
    ::testing::Values(0, 63, 64, -64, -65, 8191, 8192, -8192, -8193,
                      1 << 20, -(1 << 20), (1 << 27) - 1, 1 << 27,
                      -(1 << 27), INT32_MAX, INT32_MIN, 1234567, -7654321));

} // namespace
