//===- tests/ServerTest.cpp - Server-workload harness tests ---------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server-workload harness (src/workload) must be deterministic in
/// virtual time and honest about GC attribution:
///  - every completed request yields exactly one latency sample;
///  - per-request GC nanos plus the unattributed tail equal the tracer's
///    total across all collection events;
///  - the percentile math agrees with a from-scratch sorted reference;
///  - arrival schedules are seeded, sorted, and wall-clock free;
///  - request outputs and service-instruction samples are identical
///    across -O0/-O2, two-space/gen-gc, both dispatch tiers, and
///    --gc-threads 1/4;
///  - the heap-sizing policies (--heap-growth, --nursery-auto) never
///    shrink below the live set, respect the nursery floor/cap, keep
///    program outputs unchanged, and leave the oversize-allocation
///    diagnostic deterministic.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "workload/Server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

using namespace mgc;
using namespace mgc::workload;

namespace {

std::unique_ptr<vm::Program> compileServer(const ServerProgramConfig &PC,
                                           int OptLevel = 2) {
  driver::CompilerOptions CO;
  CO.OptLevel = OptLevel;
  // Barriers are no-ops under two-space, so one compile serves both
  // collectors with an identical instruction stream; polls make spawned
  // Spin threads reach gc-points.
  CO.WriteBarriers = true;
  if (PC.Spin)
    CO.ThreadedPolls = true;
  auto R = driver::compile(generateServerProgram(PC), CO);
  EXPECT_TRUE(R.Prog != nullptr) << R.Diags.str();
  return std::move(R.Prog);
}

ServerRunConfig smallHeapConfig() {
  ServerRunConfig C;
  C.VO.HeapBytes = 16u << 10; // Collect mid-run: this is a GC harness.
  return C;
}

//===----------------------------------------------------------------------===//
// Harness invariants
//===----------------------------------------------------------------------===//

TEST(ServerHarnessTest, RequestsEqualLatencySamples) {
  ServerProgramConfig PC;
  PC.Seed = 3;
  PC.Requests = 200;
  auto Prog = compileServer(PC);
  ASSERT_TRUE(Prog);
  ServerRunResult R = runServer(*Prog, smallHeapConfig());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Stats.Requests, 200u);
  EXPECT_EQ(R.ServiceInstrs.size(), 200u);
  EXPECT_EQ(R.GcNanos.size(), 200u);
  EXPECT_EQ(R.Collections.size(), 200u);
  EXPECT_EQ(R.LatencyInstrs.size(), 200u);
  // A queued request can never complete before its own service demand.
  for (size_t I = 0; I != R.ServiceInstrs.size(); ++I)
    EXPECT_GE(R.LatencyInstrs[I], R.ServiceInstrs[I]);
}

TEST(ServerHarnessTest, GcAttributionSumsToTracerTotal) {
  ServerProgramConfig PC;
  PC.Seed = 5;
  PC.Requests = 300;
  auto Prog = compileServer(PC);
  ASSERT_TRUE(Prog);
  ServerRunResult R = runServer(*Prog, smallHeapConfig());
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_GT(R.Stats.Collections, 0u) << "heap too large: nothing to attribute";
  uint64_t Attributed = 0, Colls = 0;
  for (size_t I = 0; I != R.GcNanos.size(); ++I) {
    Attributed += R.GcNanos[I];
    Colls += R.Collections[I];
  }
  // Every nanosecond the tracer charged to a collection event lands in
  // exactly one request window or in the post-final-marker tail.
  EXPECT_EQ(Attributed + R.UnattributedGcNanos, R.TracerGcNanosTotal);
  EXPECT_LE(Colls, R.Stats.Collections);
  EXPECT_GT(R.TracerGcNanosTotal, 0u);
}

TEST(ServerHarnessTest, PercentileMatchesSortedReference) {
  std::vector<uint64_t> V = {9, 2, 44, 7, 7, 100, 3, 15, 8, 1, 61};
  std::vector<uint64_t> Sorted = V;
  std::sort(Sorted.begin(), Sorted.end());
  for (double P : {0.0, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    size_t I =
        static_cast<size_t>(P * static_cast<double>(Sorted.size() - 1) + 0.5);
    EXPECT_EQ(percentile(V, P), Sorted[std::min(I, Sorted.size() - 1)])
        << "P=" << P;
  }
  EXPECT_EQ(percentile({}, 0.5), 0u);
  EXPECT_EQ(percentile({42}, 0.99), 42u);
}

TEST(ServerHarnessTest, ArrivalScheduleDeterministicAndSorted) {
  for (ArrivalKind K : {ArrivalKind::Uniform, ArrivalKind::Bursty}) {
    ScheduleConfig C;
    C.Kind = K;
    C.Seed = 11;
    std::vector<uint64_t> A = arrivalSchedule(C, 500);
    std::vector<uint64_t> B = arrivalSchedule(C, 500);
    ASSERT_EQ(A.size(), 500u);
    EXPECT_EQ(A, B) << "same seed must give identical arrivals";
    EXPECT_TRUE(std::is_sorted(A.begin(), A.end()));
    C.Seed = 12;
    EXPECT_NE(arrivalSchedule(C, 500), A)
        << "different seed must move the arrivals";
  }
  // Bursty schedules really are bursty: back-to-back arrivals exist.
  ScheduleConfig C;
  C.Kind = ArrivalKind::Bursty;
  std::vector<uint64_t> A = arrivalSchedule(C, 64);
  bool SawZeroGap = false;
  for (size_t I = 1; I != A.size(); ++I)
    SawZeroGap |= A[I] == A[I - 1];
  EXPECT_TRUE(SawZeroGap);
}

//===----------------------------------------------------------------------===//
// Cross-mode identity
//===----------------------------------------------------------------------===//

TEST(ServerMatrixTest, IdenticalAcrossModes) {
  ServerProgramConfig PC;
  PC.Seed = 7;
  PC.Requests = 250;
  std::string RefOut;
  for (int Opt : {0, 2}) {
    auto Prog = compileServer(PC, Opt);
    ASSERT_TRUE(Prog);
    for (bool Gen : {false, true}) {
      // Virtual-time service demand is a compile-time artifact plus the
      // collector's gc-point schedule — never the dispatch tier's or the
      // worker count's.  Within one (opt, collector) cell every
      // tier/thread combination must match the (threaded, 1) run exactly.
      std::vector<uint64_t> RefService;
      for (vm::DispatchTier Tier :
           {vm::DispatchTier::Threaded, vm::DispatchTier::Switch})
        for (unsigned Threads : {1u, 4u}) {
          ServerRunConfig C = smallHeapConfig();
          C.VO.GenGc = Gen;
          C.VO.Dispatch = Tier;
          C.GCO.Threads = Threads;
          ServerRunResult R = runServer(*Prog, C);
          ASSERT_TRUE(R.Ok)
              << R.Error << " (gen=" << Gen << " threads=" << Threads << ")";
          if (RefOut.empty())
            RefOut = R.Out;
          EXPECT_EQ(R.Out, RefOut)
              << "output diverged (opt=" << Opt << " gen=" << Gen
              << " threads=" << Threads << ")";
          EXPECT_EQ(R.Stats.Requests, 250u);
          if (RefService.empty())
            RefService = R.ServiceInstrs;
          EXPECT_EQ(R.ServiceInstrs, RefService)
              << "service samples diverged (opt=" << Opt << " gen=" << Gen
              << " switch=" << (Tier == vm::DispatchTier::Switch)
              << " threads=" << Threads << ")";
        }
    }
  }
}

//===----------------------------------------------------------------------===//
// Heap-sizing policies
//===----------------------------------------------------------------------===//

TEST(ServerHeapPolicyTest, GrowthNeverShrinksAndCoversLive) {
  ServerProgramConfig PC;
  PC.Seed = 9;
  PC.Requests = 300;
  auto Prog = compileServer(PC);
  ASSERT_TRUE(Prog);

  // Reference: a fixed heap big enough to finish.
  ServerRunConfig Fixed;
  Fixed.VO.HeapBytes = 1u << 20;
  ServerRunResult FR = runServer(*Prog, Fixed);
  ASSERT_TRUE(FR.Ok) << FR.Error;

  // Policy run: start tiny, grow on the 70% occupancy trigger.
  vm::VMOptions VO;
  VO.HeapBytes = 16u << 10;
  VO.HeapGrowthPct = 70;
  VO.HeapMaxBytes = 1u << 20;
  vm::VM M(*Prog, VO);
  gc::installPreciseCollector(M);
  size_t LastCap = M.TheHeap.capacityBytes();
  M.PostGcHook = [&](vm::VM &V) {
    size_t Cap = V.TheHeap.capacityBytes();
    EXPECT_GE(Cap, LastCap) << "growth policy must never shrink the heap";
    EXPECT_GE(Cap, V.TheHeap.usedBytes());
    EXPECT_LE(Cap, size_t(1u << 20));
    LastCap = Cap;
  };
  ASSERT_TRUE(M.run()) << M.Error;
  EXPECT_EQ(M.Out, FR.Out) << "heap policy must not change program results";
  EXPECT_GT(M.TheHeap.HeapGrowths, 0u) << "a 16 KiB heap must have grown";
  EXPECT_GT(M.TheHeap.capacityBytes(), size_t(16u << 10));
}

TEST(ServerHeapPolicyTest, NurseryAutoRespectsFloorAndCap) {
  ServerProgramConfig PC;
  PC.Seed = 13;
  PC.Requests = 400;
  auto Prog = compileServer(PC);
  ASSERT_TRUE(Prog);

  ServerRunConfig Fixed;
  Fixed.VO.HeapBytes = 256u << 10;
  Fixed.VO.GenGc = true;
  ServerRunResult FR = runServer(*Prog, Fixed);
  ASSERT_TRUE(FR.Ok) << FR.Error;

  vm::VMOptions VO;
  VO.HeapBytes = 256u << 10;
  VO.GenGc = true;
  VO.NurseryBytes = 4u << 10; // Floor: auto-sizing may grow, never below.
  VO.NurseryAuto = true;
  vm::VM M(*Prog, VO);
  gc::installPreciseCollector(M);
  const size_t Floor = M.TheHeap.nurseryCapacityBytes();
  EXPECT_EQ(Floor, size_t(4u << 10)) << "--nursery-bytes sets the half size";
  const size_t Cap = std::max(Floor, (VO.HeapBytes / 4) & ~size_t(7));
  M.PostGcHook = [&](vm::VM &V) {
    size_t Half = V.TheHeap.nurseryCapacityBytes();
    EXPECT_GE(Half, Floor);
    EXPECT_LE(Half, Cap);
  };
  ASSERT_TRUE(M.run()) << M.Error;
  EXPECT_EQ(M.Out, FR.Out) << "nursery auto-sizing must not change results";
  EXPECT_GT(M.Stats.Collections, 0u);
  EXPECT_GT(M.TheHeap.NurseryResizes, 0u)
      << "an 8 KiB nursery under this churn must have resized";
}

TEST(ServerHeapPolicyTest, OversizeDiagnosticDeterministicUnderPolicies) {
  // An allocation over every policy's capacity cap must fail with the
  // same diagnostic regardless of policy and dispatch tier: the cap is a
  // run constant, so the failure cannot depend on when the heap grew.
  const char *Source = R"(
MODULE Big;
TYPE IArr = REF ARRAY OF INTEGER;
VAR a: IArr;
BEGIN
  a := NEW(IArr, 10000000);
  PutInt(NUMBER(a)); PutLn()
END Big.)";
  driver::CompilerOptions CO;
  CO.WriteBarriers = true;
  auto R = driver::compile(Source, CO);
  ASSERT_TRUE(R.Prog) << R.Diags.str();

  struct Policy {
    bool Gen;
    unsigned GrowthPct;
    bool NurAuto;
  };
  const Policy Policies[] = {
      {false, 0, false}, {false, 70, false}, {true, 0, false}, {true, 70, true}};
  std::string RefErr;
  for (const Policy &P : Policies)
    for (vm::DispatchTier Tier :
         {vm::DispatchTier::Threaded, vm::DispatchTier::Switch}) {
      vm::VMOptions VO;
      VO.HeapBytes = 64u << 10;
      VO.GenGc = P.Gen;
      VO.HeapGrowthPct = P.GrowthPct;
      VO.NurseryAuto = P.NurAuto;
      VO.Dispatch = Tier;
      vm::VM M(*R.Prog, VO);
      gc::installPreciseCollector(M);
      EXPECT_FALSE(M.run());
      EXPECT_NE(M.Error.find("out of memory"), std::string::npos) << M.Error;
      if (RefErr.empty())
        RefErr = M.Error;
      EXPECT_EQ(M.Error, RefErr)
          << "oversize diagnostic must not depend on policy/tier";
      EXPECT_TRUE(M.Out.empty());
    }
}

} // namespace
