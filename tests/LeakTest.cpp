//===- tests/LeakTest.cpp - Leak-triage subsystem tests --------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the leak-triage pipeline: the online growth detector
/// (obs/Trace.h LeakConfig) — injected-leak flagging at the correct site
/// within its K = Window bound, zero flags on the leak-free §6 suite,
/// full-collection-only sampling under gen-gc, and byte-identical flags
/// across --gc-threads and dispatch tiers — plus the flat JSONL leak
/// records round-tripping through obs::readTrace into renderLeaks /
/// renderReportJson, snapshot streams captured under gen-gc minors and
/// --heap-growth feeding watchSnapshots, and strict rejection of
/// malformed snapshot files.
///
/// Every suite name starts with "Leak" — tests/CMakeLists.txt gives them
/// the `leak` ctest label.
///
//===----------------------------------------------------------------------===//

#include "Programs.h"
#include "TestUtil.h"

#include "gc/Snapshot.h"
#include "obs/HeapSnapshot.h"
#include "obs/Report.h"
#include "obs/Trace.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

using namespace mgc;
using namespace mgc::test;

namespace {

/// The injected-leak program: Grow() prepends one cell to a global chain
/// that is never trimmed, Churn() allocates transient garbage so the run
/// collects frequently.  Grow's NEW is the one site a correct detector
/// flags; Churn's must stay clean (its live set is one cell).  The
/// periodic GcCollect() forces full collections: under gen-gc the
/// transients die in the nursery and the promoted chain alone never
/// fills the old space, so without it a leaking run sees only minor
/// collections — exactly the situation the full-collection-only sampler
/// needs a periodic full to observe (mgc --leak-detect documents the
/// same requirement).
const char *LeakSource = R"(MODULE LeakCase;
TYPE
  Cell = REF RECORD v: INTEGER; next: Cell END;
VAR leak: Cell; i, s: INTEGER;

PROCEDURE Grow(l: Cell; n: INTEGER): Cell;
VAR c: Cell;
BEGIN
  c := NEW(Cell);
  c^.v := n;
  c^.next := l;
  RETURN c
END Grow;

PROCEDURE Churn(n: INTEGER): INTEGER;
VAR t: Cell; j, s: INTEGER;
BEGIN
  s := 0;
  FOR j := 1 TO n DO
    t := NEW(Cell);
    t^.v := j;
    s := (s + t^.v) MOD 1000000007
  END;
  RETURN s
END Churn;

BEGIN
  s := 0;
  FOR i := 1 TO 400 DO
    leak := Grow(leak, i);
    s := (s + Churn(40)) MOD 1000000007;
    IF i MOD 25 = 0 THEN GcCollect() END
  END;
  PutInt(s);
  PutLn()
END LeakCase.
)";

struct LeakRun {
  bool Ok = false;
  std::string Out;
  std::string Error;
  vm::VMStats Stats;
  gcmaps::SiteTable SiteTab;
  std::vector<std::string> FuncNames;
  std::vector<obs::Tracer::LeakFlag> Flags;
  uint64_t Scans = 0;
  uint64_t Samples = 0;
  std::string Trace; ///< JSONL text (only when \p WithStream).
};

/// Compiles \p Source and runs it with a leak-enabled tracer.
LeakRun runLeak(const std::string &Source, bool Gen, size_t HeapBytes,
                uint32_t Window, uint64_t MinBytes, unsigned GcThreads = 1,
                vm::DispatchTier Tier = vm::DispatchTier::Threaded,
                bool WithStream = false) {
  LeakRun R;
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  CO.WriteBarriers = Gen;
  auto C = driver::compile(Source, CO);
  if (!C.Prog) {
    ADD_FAILURE() << "compilation failed:\n" << C.Diags.str();
    return R;
  }
  R.SiteTab = C.Prog->SiteTab;
  for (const auto &F : C.Prog->Funcs)
    R.FuncNames.push_back(F.Name);

  vm::VMOptions VO;
  VO.HeapBytes = HeapBytes;
  VO.GenGc = Gen;
  VO.NurseryBytes = Gen ? 4u << 10 : 0;
  VO.Dispatch = Tier;
  vm::VM M(*C.Prog, VO);
  gc::CollectorOptions GCO;
  GCO.CrossCheck = true;
  GCO.Threads = GcThreads;
  gc::installPreciseCollector(M, GCO);

  obs::TracerConfig TC;
  TC.Sites = &C.Prog->SiteTab;
  for (const auto &F : C.Prog->Funcs)
    TC.FuncNames.push_back(F.Name);
  TC.ProgramName = "leaktest";
  TC.GenGc = Gen;
  TC.Leak.Enabled = true;
  TC.Leak.Window = Window;
  TC.Leak.MinBytes = MinBytes;
  obs::Tracer Tracer(std::move(TC));
  std::ostringstream OS;
  Tracer.enable(WithStream ? &OS : nullptr);
  M.Tracer = &Tracer;

  R.Ok = M.run();
  Tracer.finish(R.Ok, M.Error);
  R.Out = M.Out;
  R.Error = M.Error;
  R.Stats = M.Stats;
  R.Flags = Tracer.leakFlags();
  R.Scans = Tracer.leakScans();
  R.Samples = Tracer.leakSamples();
  R.Trace = OS.str();
  return R;
}

/// The function name owning site \p Id.
std::string siteFunc(const LeakRun &R, uint32_t Id) {
  if (Id >= R.SiteTab.Sites.size())
    return "<bad site>";
  uint32_t F = R.SiteTab.Sites[Id].Func;
  return F < R.FuncNames.size() ? R.FuncNames[F] : "<bad func>";
}

std::string serializeFlags(const std::vector<obs::Tracer::LeakFlag> &Flags) {
  std::string S;
  for (const obs::Tracer::LeakFlag &F : Flags) {
    S += std::to_string(F.Site) + ":" + std::to_string(F.SlopeBytes) + ":" +
         std::to_string(F.LiveBytes) + ":" + std::to_string(F.FirstFlagged) +
         ";";
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Online growth detector
//===----------------------------------------------------------------------===//

TEST(LeakDetector, FlagsInjectedLeakAtCorrectSiteWithinWindow) {
  // Two-space: every collection is full (one detector sample each), and
  // the chain is past MinBytes by the first sample, so the earliest
  // possible flag — and the bound "within K = Window collections" — is
  // exactly the Window-th collection.
  constexpr uint32_t Window = 4;
  LeakRun R = runLeak(LeakSource, /*Gen=*/false, /*HeapBytes=*/32u << 10,
                      Window, /*MinBytes=*/64);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_GE(R.Stats.Collections, Window);
  EXPECT_EQ(R.Samples, R.Stats.Collections); // all full in two-space
  ASSERT_EQ(R.Flags.size(), 1u) << serializeFlags(R.Flags);
  EXPECT_EQ(siteFunc(R, R.Flags[0].Site), "Grow");
  EXPECT_GT(R.Flags[0].SlopeBytes, 0);
  EXPECT_GE(R.Flags[0].LiveBytes, 64u);
  EXPECT_LE(R.Flags[0].FirstFlagged, Window);
  EXPECT_GE(R.Flags[0].FirstFlagged, 1u);
}

TEST(LeakDetector, GenGcFlagsLeakAndSamplesFullCollectionsOnly) {
  constexpr uint32_t Window = 4;
  LeakRun R = runLeak(LeakSource, /*Gen=*/true, /*HeapBytes=*/32u << 10,
                      Window, /*MinBytes=*/64);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Every pause is scanned; only full collections contribute samples.
  EXPECT_EQ(R.Scans, R.Stats.Collections);
  EXPECT_EQ(R.Samples, R.Stats.Collections - R.Stats.MinorCollections);
  EXPECT_GT(R.Stats.MinorCollections, 0u);
  ASSERT_EQ(R.Flags.size(), 1u) << serializeFlags(R.Flags);
  EXPECT_EQ(siteFunc(R, R.Flags[0].Site), "Grow");
}

TEST(LeakDetector, ZeroFlagsOnLeakFreeSuite) {
  for (const programs::NamedProgram &P : programs::All) {
    SCOPED_TRACE(P.Name);
    size_t Heap = std::string(P.Name) == "destroy" ? 48u << 10 : 64u << 10;
    for (bool Gen : {false, true}) {
      SCOPED_TRACE(Gen ? "gen" : "two-space");
      LeakRun R = runLeak(P.Source, Gen, Heap, /*Window=*/8,
                          /*MinBytes=*/4096);
      ASSERT_TRUE(R.Ok) << R.Error;
      EXPECT_EQ(R.Out, P.Expected);
      EXPECT_TRUE(R.Flags.empty()) << serializeFlags(R.Flags);
    }
  }
}

TEST(LeakDetector, FlagsByteIdenticalAcrossThreadsAndTiers) {
  // The detector's inputs are per-site sums over a single-threaded heap
  // walk, so within one collector mode (fixed collection schedule) the
  // flag list is a pure function of the program.
  for (bool Gen : {false, true}) {
    SCOPED_TRACE(Gen ? "gen" : "two-space");
    std::string Ref;
    bool HaveRef = false;
    for (unsigned Threads : {1u, 2u, 4u})
      for (vm::DispatchTier Tier :
           {vm::DispatchTier::Threaded, vm::DispatchTier::Switch}) {
        SCOPED_TRACE(testing::Message()
                     << Threads << " threads, "
                     << vm::dispatchTierName(Tier) << " tier");
        LeakRun R = runLeak(LeakSource, Gen, /*HeapBytes=*/32u << 10,
                            /*Window=*/4, /*MinBytes=*/64, Threads, Tier);
        ASSERT_TRUE(R.Ok) << R.Error;
        ASSERT_FALSE(R.Flags.empty());
        std::string S = serializeFlags(R.Flags);
        if (!HaveRef) {
          Ref = S;
          HaveRef = true;
        } else {
          EXPECT_EQ(S, Ref);
        }
      }
  }
}

//===----------------------------------------------------------------------===//
// Flat leak records through the report layer
//===----------------------------------------------------------------------===//

TEST(LeakReport, FlatRecordsRoundTripAndRender) {
  LeakRun R = runLeak(LeakSource, /*Gen=*/false, /*HeapBytes=*/32u << 10,
                      /*Window=*/4, /*MinBytes=*/64, /*GcThreads=*/1,
                      vm::DispatchTier::Threaded, /*WithStream=*/true);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Flags.size(), 1u);

  std::istringstream In(R.Trace);
  obs::TraceReport Report;
  std::string Err;
  ASSERT_TRUE(obs::readTrace(In, Report, Err)) << Err;
  ASSERT_EQ(Report.Leaks.size(), 1u);
  EXPECT_EQ(Report.Leaks[0].Site, R.Flags[0].Site);
  EXPECT_EQ(Report.Leaks[0].SlopeBytes, R.Flags[0].SlopeBytes);
  EXPECT_EQ(Report.Leaks[0].LiveBytes, R.Flags[0].LiveBytes);
  EXPECT_EQ(Report.Leaks[0].FirstFlagged, R.Flags[0].FirstFlagged);
  EXPECT_EQ(Report.Leaks[0].Window, 4u);

  // renderLeaks names the flagged site; the full report embeds the table.
  std::string Leaks = obs::renderLeaks(Report);
  EXPECT_NE(Leaks.find("suspected leak sites"), std::string::npos) << Leaks;
  EXPECT_NE(Leaks.find("Grow"), std::string::npos) << Leaks;
  std::string Full = obs::renderReport(Report);
  EXPECT_NE(Full.find("suspected leak sites"), std::string::npos);

  // The JSON mirror carries the same flag.
  std::string Json = obs::renderReportJson(Report);
  EXPECT_NE(Json.find("\"leaks\":["), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"slope_bytes\":" +
                      std::to_string(R.Flags[0].SlopeBytes)),
            std::string::npos)
      << Json;
  EXPECT_EQ(Json.back(), '\n');
  EXPECT_EQ(Json[Json.size() - 2], '}');
}

TEST(LeakReport, CleanTraceRendersNoLeakTable) {
  LeakRun R = runLeak(programs::DestroySource, /*Gen=*/false,
                      /*HeapBytes=*/48u << 10, /*Window=*/8,
                      /*MinBytes=*/4096, /*GcThreads=*/1,
                      vm::DispatchTier::Threaded, /*WithStream=*/true);
  ASSERT_TRUE(R.Ok) << R.Error;
  std::istringstream In(R.Trace);
  obs::TraceReport Report;
  std::string Err;
  ASSERT_TRUE(obs::readTrace(In, Report, Err)) << Err;
  EXPECT_TRUE(Report.Leaks.empty());
  EXPECT_NE(obs::renderLeaks(Report).find("no suspected leak sites"),
            std::string::npos);
  EXPECT_EQ(obs::renderReport(Report).find("suspected leak sites"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Snapshot streams + watch mode
//===----------------------------------------------------------------------===//

/// Runs the injected-leak program under gen-gc with heap growth enabled,
/// capturing a snapshot every \p Every collections (what `mgc
/// --heap-snapshot F --snapshot-every N` does).
std::vector<obs::HeapSnapshot> captureStream(unsigned Every, bool &Ok,
                                             std::string &Error) {
  std::vector<obs::HeapSnapshot> Stream;
  driver::CompilerOptions CO;
  CO.OptLevel = 2;
  CO.WriteBarriers = true;
  auto C = driver::compile(LeakSource, CO);
  if (!C.Prog) {
    ADD_FAILURE() << "compilation failed:\n" << C.Diags.str();
    Ok = false;
    return Stream;
  }
  vm::VMOptions VO;
  VO.HeapBytes = 24u << 10;
  VO.GenGc = true;
  VO.NurseryBytes = 2u << 10;
  VO.HeapGrowthPct = 70;
  vm::VM M(*C.Prog, VO);
  gc::CollectorOptions GCO;
  GCO.CrossCheck = true;
  gc::installPreciseCollector(M, GCO);

  obs::TracerConfig TC;
  TC.Sites = &C.Prog->SiteTab;
  for (const auto &F : C.Prog->Funcs)
    TC.FuncNames.push_back(F.Name);
  TC.ProgramName = "leaktest";
  TC.GenGc = true;
  obs::Tracer Tracer(std::move(TC));
  Tracer.enable(nullptr);
  M.Tracer = &Tracer;

  M.PostGcHook = [&](vm::VM &V) {
    if (V.Stats.Collections % Every != 0)
      return;
    obs::HeapSnapshot Snap;
    std::string Err;
    if (!gc::captureHeapSnapshot(V, Snap, /*WalkStacks=*/true, Err))
      ADD_FAILURE() << "capture failed: " << Err;
    else
      Stream.push_back(std::move(Snap));
  };
  Ok = M.run();
  Error = M.Error;
  return Stream;
}

TEST(LeakWatch, StreamUnderGenGcMinorsAndHeapGrowth) {
  bool Ok = false;
  std::string Error;
  std::vector<obs::HeapSnapshot> Stream = captureStream(/*Every=*/8, Ok,
                                                        Error);
  ASSERT_TRUE(Ok) << Error;
  ASSERT_GE(Stream.size(), 3u);

  // Stream ordinals are strictly monotone — no dropped or duplicated
  // capture points — and stride exactly the capture period.
  for (size_t I = 0; I != Stream.size(); ++I) {
    EXPECT_EQ(Stream[I].Collections, 8u * (I + 1)) << "snapshot " << I;
    EXPECT_TRUE(Stream[I].GenGc);
  }

  // Each snapshot independently satisfies the watch crosscheck, and the
  // leaked chain's growth shows up in the cumulative section.
  bool CrosscheckOk = false;
  std::string Report = obs::watchSnapshots(Stream, /*TopN=*/5, CrosscheckOk);
  EXPECT_TRUE(CrosscheckOk) << Report;
  EXPECT_NE(Report.find("watch: program"), std::string::npos);
  EXPECT_NE(Report.find("incremental growth"), std::string::npos);
  EXPECT_NE(Report.find("retaining-path churn"), std::string::npos);
  EXPECT_NE(Report.find("Grow"), std::string::npos) << Report;
  EXPECT_EQ(Report.find("MISMATCH"), std::string::npos) << Report;
}

TEST(LeakWatch, RoundTripsThroughCodec) {
  // The watch report over decoded files must equal the in-memory one —
  // what mgc-heapsnap --watch actually consumes.
  bool Ok = false;
  std::string Error;
  std::vector<obs::HeapSnapshot> Stream = captureStream(/*Every=*/16, Ok,
                                                        Error);
  ASSERT_TRUE(Ok) << Error;
  ASSERT_GE(Stream.size(), 2u);

  std::vector<obs::HeapSnapshot> Decoded;
  for (const obs::HeapSnapshot &S : Stream) {
    std::vector<uint8_t> Blob;
    obs::encodeSnapshot(S, Blob);
    obs::HeapSnapshot D;
    std::string Err;
    ASSERT_TRUE(obs::decodeSnapshot(Blob, D, Err)) << Err;
    Decoded.push_back(std::move(D));
  }
  bool OkA = false, OkB = false;
  std::string A = obs::watchSnapshots(Stream, /*TopN=*/5, OkA);
  std::string B = obs::watchSnapshots(Decoded, /*TopN=*/5, OkB);
  EXPECT_TRUE(OkA);
  EXPECT_TRUE(OkB);
  EXPECT_EQ(A, B);
}

TEST(LeakWatch, RejectsShortStream) {
  bool CrosscheckOk = true;
  std::string Report =
      obs::watchSnapshots({}, /*TopN=*/5, CrosscheckOk);
  EXPECT_FALSE(CrosscheckOk);
  EXPECT_NE(Report.find("need at least 2 snapshots"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Malformed snapshot files
//===----------------------------------------------------------------------===//

TEST(LeakSnapFiles, MalformedFilesRejectedWithDiagnostic) {
  std::string Dir = testing::TempDir();

  // Garbage bytes: bad magic.
  std::string Garbage = Dir + "/leaktest-garbage.mghs";
  {
    std::ofstream Out(Garbage, std::ios::binary);
    Out << "this is not a snapshot";
  }
  obs::HeapSnapshot S;
  std::string Err;
  EXPECT_FALSE(obs::readSnapshotFile(Garbage, S, Err));
  EXPECT_FALSE(Err.empty());

  // A valid snapshot truncated mid-body: strict decoders must reject it.
  bool Ok = false;
  std::string Error;
  std::vector<obs::HeapSnapshot> Stream = captureStream(/*Every=*/16, Ok,
                                                        Error);
  ASSERT_TRUE(Ok) << Error;
  ASSERT_FALSE(Stream.empty());
  std::vector<uint8_t> Blob;
  obs::encodeSnapshot(Stream[0], Blob);
  ASSERT_GT(Blob.size(), 8u);
  std::string Truncated = Dir + "/leaktest-truncated.mghs";
  {
    std::ofstream Out(Truncated, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(Blob.data()),
              static_cast<std::streamsize>(Blob.size() / 2));
  }
  Err.clear();
  EXPECT_FALSE(obs::readSnapshotFile(Truncated, S, Err));
  EXPECT_FALSE(Err.empty());

  // Nonexistent path.
  Err.clear();
  EXPECT_FALSE(
      obs::readSnapshotFile(Dir + "/leaktest-missing.mghs", S, Err));
  EXPECT_FALSE(Err.empty());

  std::remove(Garbage.c_str());
  std::remove(Truncated.c_str());
}

} // namespace
