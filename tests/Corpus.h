//===- tests/Corpus.h - Checked-in fuzz corpus loader -----------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads the checked-in seed corpus (tests/corpus/*.mg) — programs the
/// fuzzer generator produced, curated for feature diversity and frozen so
/// the suite keeps exercising them even as the generator evolves.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_TESTS_CORPUS_H
#define MGC_TESTS_CORPUS_H

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace mgc {
namespace test {

struct CorpusProgram {
  std::string Name;   ///< File stem, e.g. "seed001".
  std::string Source; ///< Full MG source text.
  bool HasSpin;       ///< Program defines the Spin thread procedure.
};

/// All corpus programs in name order.  The directory is located through
/// the MGC_SOURCE_DIR compile definition, so the tests run from any build
/// directory.
inline const std::vector<CorpusProgram> &corpus() {
  static const std::vector<CorpusProgram> Programs = [] {
    namespace fs = std::filesystem;
    std::vector<CorpusProgram> Out;
    fs::path Dir = fs::path(MGC_SOURCE_DIR) / "tests" / "corpus";
    for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
      if (E.path().extension() != ".mg")
        continue;
      std::ifstream In(E.path(), std::ios::binary);
      std::ostringstream Buf;
      Buf << In.rdbuf();
      CorpusProgram P;
      P.Name = E.path().stem().string();
      P.Source = Buf.str();
      P.HasSpin = P.Source.find("PROCEDURE Spin") != std::string::npos;
      Out.push_back(std::move(P));
    }
    std::sort(Out.begin(), Out.end(),
              [](const CorpusProgram &A, const CorpusProgram &B) {
                return A.Name < B.Name;
              });
    return Out;
  }();
  return Programs;
}

/// Corpus names, for parameterized-test instantiation.
inline std::vector<std::string> corpusNames() {
  std::vector<std::string> Names;
  for (const CorpusProgram &P : corpus())
    Names.push_back(P.Name);
  return Names;
}

/// Looks up one corpus program by name; aborts if absent.
inline const CorpusProgram &corpusProgram(const std::string &Name) {
  for (const CorpusProgram &P : corpus())
    if (P.Name == Name)
      return P;
  std::abort();
}

} // namespace test
} // namespace mgc

#endif // MGC_TESTS_CORPUS_H
