//===- tests/VMTest.cpp - Language and machine semantics -------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mgc;
using namespace mgc::test;

namespace {

/// Runs at both -O0 and -O2 and expects the same output (every VM test
/// doubles as an optimizer-soundness check).
void expectOutput(const std::string &Src, const std::string &Expected) {
  for (int Opt : {0, 2}) {
    driver::CompilerOptions CO;
    CO.OptLevel = Opt;
    RunResult R = compileAndRun(Src, CO);
    EXPECT_TRUE(R.Ok) << "opt=" << Opt << " error: " << R.Error;
    EXPECT_EQ(R.Out, Expected) << "opt=" << Opt << "\nIR:\n" << R.IRDump;
  }
}

void expectRuntimeError(const std::string &Src, const std::string &Fragment) {
  for (int Opt : {0, 2}) {
    driver::CompilerOptions CO;
    CO.OptLevel = Opt;
    RunResult R = compileAndRun(Src, CO);
    EXPECT_FALSE(R.Ok) << "opt=" << Opt;
    EXPECT_NE(R.Error.find(Fragment), std::string::npos)
        << "opt=" << Opt << " actual error: " << R.Error;
  }
}

TEST(VM, ArithmeticAndPrecedence) {
  expectOutput(R"(
MODULE M;
BEGIN
  PutInt(2 + 3 * 4); PutLn();
  PutInt((2 + 3) * 4); PutLn();
  PutInt(17 DIV 5); PutChar(32); PutInt(17 MOD 5); PutLn();
  PutInt(-7); PutChar(32); PutInt(ABS(-7)); PutLn();
END M.)",
               "14\n20\n3 2\n-7 7\n");
}

TEST(VM, ComparisonsAndBooleans) {
  expectOutput(R"(
MODULE M;
VAR b: BOOLEAN;
BEGIN
  b := (1 < 2) AND (2 <= 2) AND (3 > 2) AND (3 >= 3) AND (1 # 2) AND (4 = 4);
  IF b THEN PutInt(1) ELSE PutInt(0) END;
  IF NOT b THEN PutInt(1) ELSE PutInt(0) END;
  PutLn();
END M.)",
               "10\n");
}

TEST(VM, ShortCircuitEvaluation) {
  // The second operand must not be evaluated: it would divide by zero.
  expectOutput(R"(
MODULE M;
VAR z: INTEGER;
BEGIN
  z := 0;
  IF (z # 0) AND (10 DIV z > 1) THEN PutInt(1) ELSE PutInt(2) END;
  IF (z = 0) OR (10 DIV z > 1) THEN PutInt(3) ELSE PutInt(4) END;
  PutLn();
END M.)",
               "23\n");
}

TEST(VM, WhileRepeatLoopExit) {
  expectOutput(R"(
MODULE M;
VAR i, s: INTEGER;
BEGIN
  i := 0; s := 0;
  WHILE i < 5 DO s := s + i; INC(i) END;
  PutInt(s); PutChar(32);
  REPEAT DEC(i) UNTIL i = 0;
  PutInt(i); PutChar(32);
  LOOP
    INC(i);
    IF i = 7 THEN EXIT END
  END;
  PutInt(i); PutLn();
END M.)",
               "10 0 7\n");
}

TEST(VM, ForLoopVariants) {
  expectOutput(R"(
MODULE M;
VAR s: INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO 10 DO s := s + i END;
  PutInt(s); PutChar(32);
  s := 0;
  FOR i := 10 TO 1 BY -2 DO s := s + i END;
  PutInt(s); PutChar(32);
  s := 0;
  FOR i := 5 TO 4 DO s := s + 1 END;  (* zero-trip *)
  PutInt(s); PutLn();
END M.)",
               "55 30 0\n");
}

TEST(VM, ProceduresAndRecursion) {
  expectOutput(R"(
MODULE M;
PROCEDURE Fib(n: INTEGER): INTEGER;
BEGIN
  IF n < 2 THEN RETURN n END;
  RETURN Fib(n - 1) + Fib(n - 2)
END Fib;
BEGIN
  PutInt(Fib(15)); PutLn();
END M.)",
               "610\n");
}

TEST(VM, VarParametersUpdateCaller) {
  expectOutput(R"(
MODULE M;
VAR g: INTEGER;
PROCEDURE Bump(VAR x: INTEGER; by: INTEGER);
BEGIN
  x := x + by
END Bump;
PROCEDURE Twice(VAR y: INTEGER);
BEGIN
  Bump(y, 1);   (* forwarding a VAR parameter *)
  Bump(y, 1)
END Twice;
VAR l: INTEGER;
BEGIN
  g := 10; l := 20;
  Bump(g, 5);
  Twice(l);
  PutInt(g); PutChar(32); PutInt(l); PutLn();
END M.)",
               "15 22\n");
}

TEST(VM, VarParameterOnHeapElement) {
  expectOutput(R"(
MODULE M;
TYPE A = REF ARRAY [1..4] OF INTEGER;
PROCEDURE Inc2(VAR x: INTEGER);
BEGIN
  INC(x, 2)
END Inc2;
VAR a: A;
BEGIN
  a := NEW(A);
  a[3] := 40;
  Inc2(a[3]);    (* interior pointer argument *)
  PutInt(a[3]); PutLn();
END M.)",
               "42\n");
}

TEST(VM, FixedArraysWithOddBounds) {
  expectOutput(R"(
MODULE M;
VAR a: ARRAY [7..13] OF INTEGER; s: INTEGER;
BEGIN
  FOR i := 7 TO 13 DO a[i] := i * i END;
  s := 0;
  FOR i := FIRST(a) TO LAST(a) DO s := s + a[i] END;
  PutInt(s); PutChar(32); PutInt(NUMBER(a)); PutLn();
END M.)",
               "728 7\n");
}

TEST(VM, OpenArraysAndNumber) {
  expectOutput(R"(
MODULE M;
TYPE V = REF ARRAY OF INTEGER;
VAR v: V; s: INTEGER;
BEGIN
  v := NEW(V, 6);
  FOR i := 0 TO NUMBER(v) - 1 DO v[i] := i + 1 END;
  s := 0;
  FOR i := FIRST(v) TO LAST(v) DO s := s + v[i] END;
  PutInt(s); PutLn();
END M.)",
               "21\n");
}

TEST(VM, RecordsAndNestedAggregates) {
  expectOutput(R"(
MODULE M;
TYPE Pt = RECORD x, y: INTEGER END;
     Box = RECORD lo, hi: Pt; tag: INTEGER END;
VAR b: Box;
BEGIN
  b.lo.x := 1; b.lo.y := 2; b.hi.x := 3; b.hi.y := 4; b.tag := 9;
  PutInt(b.lo.x + b.lo.y * 10 + b.hi.x * 100 + b.hi.y * 1000 + b.tag * 10000);
  PutLn();
END M.)",
               "94321\n");
}

TEST(VM, HeapRecordsAndSharing) {
  expectOutput(R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER; next: R END;
VAR a, b: R;
BEGIN
  a := NEW(R); b := NEW(R);
  a^.v := 1; a^.next := b;
  b^.v := 2; b^.next := NIL;
  a^.next^.v := 5;           (* through the alias *)
  PutInt(b^.v); PutChar(32);
  IF a^.next = b THEN PutInt(1) ELSE PutInt(0) END;
  PutLn();
END M.)",
               "5 1\n");
}

TEST(VM, WithStatementAliases) {
  expectOutput(R"(
MODULE M;
TYPE R = REF RECORD x, y: INTEGER END;
VAR r: R; a: ARRAY [0..4] OF INTEGER;
BEGIN
  r := NEW(R);
  WITH f = r^.y DO
    f := 21;
    f := f * 2
  END;
  PutInt(r^.y); PutChar(32);
  a[2] := 5;
  WITH e = a[2] DO INC(e, 10) END;
  PutInt(a[2]); PutLn();
END M.)",
               "42 15\n");
}

TEST(VM, StringLiterals) {
  expectOutput(R"(
MODULE M;
TYPE T = REF ARRAY OF INTEGER;
VAR s: T;
BEGIN
  s := "Hi!";
  PutInt(NUMBER(s)); PutChar(32);
  FOR i := 0 TO NUMBER(s) - 1 DO PutChar(s[i]) END;
  PutLn();
END M.)",
               "3 Hi!\n");
}

TEST(VM, GlobalsAcrossProcedures) {
  expectOutput(R"(
MODULE M;
TYPE Box = REF RECORD v: INTEGER END;
VAR count: INTEGER; top: Box;
PROCEDURE Touch();
BEGIN
  INC(count);
  top^.v := count
END Touch;
BEGIN
  count := 0;
  top := NEW(Box);
  Touch(); Touch(); Touch();
  PutInt(top^.v); PutLn();
END M.)",
               "3\n");
}

TEST(VM, TwoDimensionalIndexing) {
  expectOutput(R"(
MODULE M;
TYPE Mat = REF ARRAY OF ARRAY [0..3] OF INTEGER;
VAR m: Mat; s: INTEGER;
BEGIN
  m := NEW(Mat, 3);
  FOR i := 0 TO 2 DO
    FOR j := 0 TO 3 DO
      m[i, j] := i * 10 + j
    END
  END;
  s := 0;
  FOR i := 0 TO 2 DO
    FOR j := 0 TO 3 DO
      s := s + m[i, j]
    END
  END;
  PutInt(s); PutLn();
END M.)",
               "138\n");
}

//===----------------------------------------------------------------------===//
// Runtime errors
//===----------------------------------------------------------------------===//

TEST(VM, NilDereferenceTraps) {
  expectRuntimeError(R"(
MODULE M;
TYPE R = REF RECORD x: INTEGER END;
VAR r: R;
BEGIN
  r := NIL;
  PutInt(r^.x);
END M.)",
                     "NIL dereference");
}

TEST(VM, DivisionByZeroTraps) {
  expectRuntimeError(R"(
MODULE M;
VAR a, b: INTEGER;
BEGIN
  a := 1; b := 0;
  PutInt(a DIV b);
END M.)",
                     "division by zero");
}

TEST(VM, MissingReturnTraps) {
  expectRuntimeError(R"(
MODULE M;
PROCEDURE F(x: INTEGER): INTEGER;
BEGIN
  IF x > 0 THEN RETURN 1 END
END F;
BEGIN
  PutInt(F(-1));
END M.)",
                     "without RETURN");
}

TEST(VM, StackOverflowTraps) {
  driver::CompilerOptions CO;
  vm::VMOptions VO;
  VO.StackWords = 4096;
  RunResult R = compileAndRun(R"(
MODULE M;
PROCEDURE Loop(n: INTEGER): INTEGER;
BEGIN
  RETURN Loop(n + 1)
END Loop;
BEGIN
  PutInt(Loop(0));
END M.)",
                              CO, VO);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("stack overflow"), std::string::npos) << R.Error;
}

TEST(VM, HeapExhaustionReported) {
  driver::CompilerOptions CO;
  vm::VMOptions VO;
  VO.HeapBytes = 2048;
  RunResult R = compileAndRun(R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER; next: R END;
VAR head, n: R;
BEGIN
  head := NIL;
  LOOP
    n := NEW(R);
    n^.next := head;
    head := n        (* everything stays live *)
  END;
END M.)",
                              CO, VO);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("heap exhausted"), std::string::npos) << R.Error;
}

} // namespace
