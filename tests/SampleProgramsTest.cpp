//===- tests/SampleProgramsTest.cpp - The shipped .mg sample programs ------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <fstream>
#include <sstream>

using namespace mgc;
using namespace mgc::test;

namespace {

std::string readProgram(const std::string &Name) {
  std::string Path = std::string(MGC_SOURCE_DIR) + "/examples/programs/" +
                     Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

struct Sample {
  const char *File;
  const char *Expected;
};

class SamplePrograms : public ::testing::TestWithParam<Sample> {};

TEST_P(SamplePrograms, RunsIdenticallyAcrossConfigurations) {
  const Sample &S = GetParam();
  std::string Src = readProgram(S.File);
  ASSERT_FALSE(Src.empty());
  for (int Opt : {0, 2}) {
    for (int Stress : {0, 1}) {
      driver::CompilerOptions CO;
      CO.OptLevel = Opt;
      CO.InterprocGcPoints = Opt == 2; // Exercise the elision too.
      vm::VMOptions VO;
      VO.GcStress = Stress != 0;
      VO.HeapBytes = 4u << 20;
      VO.StackWords = 1u << 20;
      RunResult R = compileAndRun(Src, CO, VO);
      ASSERT_TRUE(R.Ok) << S.File << " opt=" << Opt << " stress=" << Stress
                        << ": " << R.Error;
      EXPECT_EQ(R.Out, S.Expected)
          << S.File << " opt=" << Opt << " stress=" << Stress;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Files, SamplePrograms,
    ::testing::Values(Sample{"sieve.mg", "303 1999\n"},
                      Sample{"nqueens.mg", "40\n"},
                      Sample{"wordcount.mg", "12 19\n"}),
    [](const ::testing::TestParamInfo<Sample> &Info) {
      std::string Name = Info.param.File;
      return Name.substr(0, Name.find('.'));
    });

} // namespace
