//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef MGC_TESTS_TESTUTIL_H
#define MGC_TESTS_TESTUTIL_H

#include "driver/Compiler.h"
#include "gc/Collector.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace mgc {
namespace test {

struct RunResult {
  bool Ok = false;
  std::string Out;
  std::string Error;
  vm::VMStats Stats;
  unsigned PathVars = 0;
  unsigned PathAssigns = 0;
  size_t CodeBytes = 0;
  std::string IRDump;
};

/// Compiles and runs \p Source; fails the current test on compile errors.
inline RunResult compileAndRun(const std::string &Source,
                               driver::CompilerOptions CO = {},
                               vm::VMOptions VO = {},
                               gc::CollectorOptions GCO = {}) {
  // tools/check.sh runs the tier-1 suite a second time with
  // MGC_TEST_GEN_GC=1: every gc-tables test program goes through
  // generational mode (nursery + barriers + minor collections) with the
  // decode and remembered-set cross-checks on.  Outputs must not change.
  if (std::getenv("MGC_TEST_GEN_GC") && CO.GcTables) {
    CO.WriteBarriers = true;
    VO.GenGc = true;
    GCO.CrossCheck = true;
  }
  RunResult R;
  auto C = driver::compile(Source, CO);
  if (!C.Prog) {
    ADD_FAILURE() << "compilation failed:\n" << C.Diags.str();
    return R;
  }
  R.PathVars = C.Prog->PathVars;
  R.PathAssigns = C.Prog->PathAssigns;
  R.CodeBytes = C.Prog->codeSizeBytes();
  R.IRDump = C.IRDump;
  vm::VM M(*C.Prog, VO);
  gc::installPreciseCollector(M, GCO);
  R.Ok = M.run();
  R.Out = M.Out;
  R.Error = M.Error;
  R.Stats = M.Stats;
  return R;
}

/// Number of occurrences of \p Needle in \p Haystack.
inline unsigned countOccurrences(const std::string &Haystack,
                                 const std::string &Needle) {
  unsigned N = 0;
  size_t Pos = 0;
  while ((Pos = Haystack.find(Needle, Pos)) != std::string::npos) {
    ++N;
    Pos += Needle.size();
  }
  return N;
}

} // namespace test
} // namespace mgc

#endif // MGC_TESTS_TESTUTIL_H
