//===- tests/Sec62Test.cpp - §6.2: effects on generated code ---------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "Programs.h"

using namespace mgc;
using namespace mgc::test;

namespace {

/// The paper's indirect-reference scenario: a VAR argument whose address is
/// derived from a pointer that itself was just loaded from memory
/// (a^[2]'s row pointer).  With CISC folding and no gc restriction the
/// intermediate load folds into the consumer; gc-safety forces it to stay
/// in a register/slot.
const char *IndirectSource = R"(
MODULE M;
TYPE Row = REF ARRAY [5..9] OF INTEGER;
     Grid = REF ARRAY [1..5] OF Row;
VAR g: Grid;

PROCEDURE Foo(VAR x: INTEGER);
BEGIN
  x := x + 1
END Foo;

PROCEDURE Touch(a: Grid);
BEGIN
  Foo(a[2][6])
END Touch;

BEGIN
  g := NEW(Grid);
  g[2] := NEW(Row);
  g[2][6] := 41;
  Touch(g);
  PutInt(g[2][6]); PutLn();
END M.)";

TEST(Sec62, GcRestrictionBlocksIndirectFold) {
  driver::CompilerOptions WithGc;
  WithGc.OptLevel = 0;
  WithGc.CiscFold = true;
  WithGc.GcTables = true;
  auto CG = driver::compile(IndirectSource, WithGc);
  ASSERT_TRUE(CG.Prog != nullptr) << CG.Diags.str();

  driver::CompilerOptions NoGc = WithGc;
  NoGc.GcTables = false;
  auto CN = driver::compile(IndirectSource, NoGc);
  ASSERT_TRUE(CN.Prog != nullptr) << CN.Diags.str();

  EXPECT_GT(CG.Prog->CiscFoldsBlocked, 0u)
      << "gc-safety must preserve the intermediate reference";
  EXPECT_GT(CN.Prog->CiscFoldsApplied, CG.Prog->CiscFoldsApplied);
  // The preserved load costs code size: the gc-safe binary is larger, by
  // roughly one instruction per blocked fold.
  EXPECT_GT(CG.Prog->codeSizeBytes(), CN.Prog->codeSizeBytes());

  // And the gc-safe program still runs (with collections forced).
  vm::VMOptions VO;
  VO.GcStress = true;
  vm::VM M(*CG.Prog, VO);
  gc::installPreciseCollector(M);
  ASSERT_TRUE(M.run()) << M.Error;
  EXPECT_EQ(M.Out, "42\n");
}

TEST(Sec62, OptimizedCodeUnchangedByGcTables) {
  // §6.2's headline: "Our schemes have no effect on the optimized code
  // produced for any of our benchmarks."  Without CISC folding the
  // instruction stream must be byte-identical with tables on or off.
  for (const auto &P : programs::All) {
    driver::CompilerOptions On;
    On.OptLevel = 2;
    On.GcTables = true;
    driver::CompilerOptions Off = On;
    Off.GcTables = false;
    auto COn = driver::compile(P.Source, On);
    auto COff = driver::compile(P.Source, Off);
    ASSERT_TRUE(COn.Prog && COff.Prog) << P.Name;
    EXPECT_EQ(COn.Prog->Image.Bytes, COff.Prog->Image.Bytes)
        << P.Name << ": gc tables must not perturb optimized code";
  }
}

TEST(Sec62, BenchmarksHaveNoAmbiguousDerivations) {
  // "None of our benchmarks had any ambiguous derivations and therefore
  // the compiler introduced no path variables."
  for (const auto &P : programs::All) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    auto C = driver::compile(P.Source, CO);
    ASSERT_TRUE(C.Prog != nullptr) << P.Name;
    EXPECT_EQ(C.Prog->PathVars, 0u) << P.Name;
    EXPECT_EQ(C.Prog->PathAssigns, 0u) << P.Name;
  }
}

TEST(Sec62, UnoptimizedCiscCountsOnBenchmarks) {
  // The paper reports indirect-reference preserves in the unoptimized VAX
  // code (12 in typereg, 32 in FieldList).  Our magnitudes differ but the
  // counters exist and behave: folds happen, and blocking only occurs
  // with tables on.
  unsigned TotalApplied = 0;
  for (const auto &P : programs::All) {
    driver::CompilerOptions CO;
    CO.OptLevel = 0;
    CO.CiscFold = true;
    CO.GcTables = false;
    auto C = driver::compile(P.Source, CO);
    ASSERT_TRUE(C.Prog != nullptr) << P.Name;
    EXPECT_EQ(C.Prog->CiscFoldsBlocked, 0u) << P.Name;
    TotalApplied += C.Prog->CiscFoldsApplied;
  }
  EXPECT_GT(TotalApplied, 0u);
}

TEST(Sec62, CiscFoldPreservesSemantics) {
  for (const auto &P : programs::All) {
    driver::CompilerOptions CO;
    CO.OptLevel = 2;
    CO.CiscFold = true;
    RunResult R = compileAndRun(P.Source, CO);
    ASSERT_TRUE(R.Ok) << P.Name << ": " << R.Error;
    EXPECT_EQ(R.Out, P.Expected) << P.Name;
  }
}

} // namespace
