//===- tests/ExtrasTest.cpp - Spills, element scans, verifier, disasm ------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "codegen/Disasm.h"
#include "frontend/Lower.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/Verifier.h"

using namespace mgc;
using namespace mgc::test;

namespace {

//===----------------------------------------------------------------------===//
// Register pressure: spilled tidy pointers must appear in the stack tables
//===----------------------------------------------------------------------===//

TEST(RegAlloc, SpilledPointersSurviveCollection) {
  // Twenty simultaneously live REFs exceed the 12 allocatable registers;
  // the spilled ones live in liveness-tracked frame slots.  All must be
  // traced and updated across stressed collections.
  std::string Src = R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER END;
PROCEDURE Mk(v: INTEGER): R;
VAR r: R;
BEGIN
  r := NEW(R);
  r^.v := v;
  RETURN r
END Mk;
PROCEDURE Sum20(): INTEGER;
VAR a, b, c, d, e, f, g, h, i, j, k, l, m, n, o, p, q, r, s, t: R;
BEGIN
  a := Mk(1); b := Mk(2); c := Mk(3); d := Mk(4); e := Mk(5);
  f := Mk(6); g := Mk(7); h := Mk(8); i := Mk(9); j := Mk(10);
  k := Mk(11); l := Mk(12); m := Mk(13); n := Mk(14); o := Mk(15);
  p := Mk(16); q := Mk(17); r := Mk(18); s := Mk(19); t := Mk(20);
  RETURN a^.v + b^.v + c^.v + d^.v + e^.v + f^.v + g^.v + h^.v + i^.v +
         j^.v + k^.v + l^.v + m^.v + n^.v + o^.v + p^.v + q^.v + r^.v +
         s^.v + t^.v
END Sum20;
BEGIN
  PutInt(Sum20()); PutLn();
END M.)";
  for (int Opt : {0, 2}) {
    driver::CompilerOptions CO;
    CO.OptLevel = Opt;
    vm::VMOptions VO;
    VO.GcStress = true;
    RunResult R = compileAndRun(Src, CO, VO);
    ASSERT_TRUE(R.Ok) << "opt=" << Opt << ": " << R.Error;
    EXPECT_EQ(R.Out, "210\n") << "opt=" << Opt;
    EXPECT_GT(R.Stats.Collections, 15u);
  }
}

TEST(RegAlloc, ManyLiveIntegersSpillCorrectly) {
  // Non-pointer spills: values must be preserved but never traced.
  std::string Src = R"(
MODULE M;
PROCEDURE Mix(base: INTEGER): INTEGER;
VAR a, b, c, d, e, f, g, h, i, j, k, l, m, n, o, p: INTEGER;
BEGIN
  a := base + 1; b := a * 2; c := b + 3; d := c * 2; e := d + 5;
  f := e * 2; g := f + 7; h := g * 2; i := h + 9; j := i * 2;
  k := j + 11; l := k * 2; m := l + 13; n := m * 2; o := n + 15;
  p := o * 2;
  RETURN a + b + c + d + e + f + g + h + i + j + k + l + m + n + o + p
END Mix;
BEGIN
  PutInt(Mix(1)); PutLn();
END M.)";
  RunResult R0 = compileAndRun(Src, [] {
    driver::CompilerOptions CO;
    CO.OptLevel = 0;
    return CO;
  }());
  ASSERT_TRUE(R0.Ok) << R0.Error;
  driver::CompilerOptions C2;
  RunResult R2 = compileAndRun(Src, C2);
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_EQ(R0.Out, R2.Out);
}

//===----------------------------------------------------------------------===//
// Open arrays of records containing pointers (element pointer offsets)
//===----------------------------------------------------------------------===//

TEST(GC, OpenArrayOfRecordsWithPointersScanned) {
  // Elements are multi-word records with an interior REF: the type
  // descriptor's element stride and element pointer offsets drive the
  // scan.
  RunResult R = [] {
    driver::CompilerOptions CO;
    vm::VMOptions VO;
    VO.GcStress = true;
    VO.HeapBytes = 1u << 16;
    return compileAndRun(R"(
MODULE M;
TYPE Leaf = REF RECORD v: INTEGER END;
     Entry = RECORD tag: INTEGER; leaf: Leaf; weight: INTEGER END;
     Table = REF ARRAY OF Entry;
VAR t: Table; s: INTEGER;
BEGIN
  t := NEW(Table, 12);
  FOR i := 0 TO 11 DO
    t[i].tag := i;
    t[i].leaf := NEW(Leaf);
    t[i].leaf^.v := 100 + i;
    t[i].weight := i * 2
  END;
  s := 0;
  FOR i := 0 TO 11 DO
    s := s + t[i].leaf^.v + t[i].weight
  END;
  PutInt(s); PutLn();
END M.)",
                         CO, VO);
  }();
  ASSERT_TRUE(R.Ok) << R.Error;
  // sum(100..111) + sum(0,2,..,22) = 1266 + 132.
  EXPECT_EQ(R.Out, "1398\n");
  EXPECT_GT(R.Stats.Collections, 10u);
}

TEST(GC, FixedArrayInsideHeapRecordScanned) {
  RunResult R = [] {
    driver::CompilerOptions CO;
    vm::VMOptions VO;
    VO.GcStress = true;
    return compileAndRun(R"(
MODULE M;
TYPE Leaf = REF RECORD v: INTEGER END;
     Node = REF RECORD kids: ARRAY [0..3] OF Leaf; n: INTEGER END;
VAR node: Node; s: INTEGER;
BEGIN
  node := NEW(Node);
  FOR i := 0 TO 3 DO
    node^.kids[i] := NEW(Leaf);
    node^.kids[i]^.v := 10 * (i + 1)
  END;
  s := 0;
  FOR i := 0 TO 3 DO s := s + node^.kids[i]^.v END;
  PutInt(s); PutLn();
END M.)",
                         CO, VO);
  }();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "100\n");
}

//===----------------------------------------------------------------------===//
// Verifier negatives
//===----------------------------------------------------------------------===//

TEST(Verifier, RejectsArithmeticOnHeapPointers) {
  ir::IRModule M;
  ir::Function *F = M.newFunction("bad");
  ir::VReg P = F->newVReg(ir::PtrKind::Tidy, "p");
  ir::VReg X = F->newVReg(ir::PtrKind::NonPtr, "x");
  ir::BasicBlock *BB = F->newBlock();
  BB->Instrs.push_back(ir::Instr::bin(ir::Opcode::Add, X,
                                      ir::Operand::reg(P),
                                      ir::Operand::imm(8)));
  BB->Instrs.push_back(ir::Instr::ret(ir::Operand()));
  auto Issues = ir::verifyModule(M);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].find("Derive"), std::string::npos) << Issues[0];
}

TEST(Verifier, RejectsDeriveWithNonDerivedResult) {
  ir::IRModule M;
  ir::Function *F = M.newFunction("bad");
  ir::VReg P = F->newVReg(ir::PtrKind::Tidy, "p");
  ir::VReg T = F->newVReg(ir::PtrKind::Tidy, "t"); // Should be Derived.
  ir::BasicBlock *BB = F->newBlock();
  BB->Instrs.push_back(ir::Instr::bin(ir::Opcode::DeriveAdd, T,
                                      ir::Operand::reg(P),
                                      ir::Operand::imm(8)));
  BB->Instrs.push_back(ir::Instr::ret(ir::Operand()));
  EXPECT_FALSE(ir::isValid(M));
}

TEST(Verifier, RejectsMissingTerminator) {
  ir::IRModule M;
  ir::Function *F = M.newFunction("bad");
  F->newBlock(); // Empty block: no terminator.
  EXPECT_FALSE(ir::isValid(M));
}

TEST(Verifier, RejectsBranchTargetOutOfRange) {
  ir::IRModule M;
  ir::Function *F = M.newFunction("bad");
  ir::BasicBlock *BB = F->newBlock();
  BB->Instrs.push_back(ir::Instr::jump(7));
  EXPECT_FALSE(ir::isValid(M));
}

TEST(Verifier, AcceptsBenchmarkModules) {
  Diagnostics D;
  auto AST = parseModule(R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER END;
VAR g: R;
BEGIN
  g := NEW(R);
  g^.v := 1
END M.)",
                         D);
  ASSERT_TRUE(AST && checkModule(*AST, D)) << D.str();
  auto M = lowerModule(*AST);
  EXPECT_TRUE(ir::isValid(*M)) << ir::verifyModule(*M).front();
}

//===----------------------------------------------------------------------===//
// Disassembler
//===----------------------------------------------------------------------===//

TEST(Disasm, ListsCodeAndTables) {
  driver::CompilerOptions CO;
  auto C = driver::compile(R"(
MODULE M;
TYPE R = REF RECORD v: INTEGER END;
PROCEDURE Get(r: R): INTEGER;
BEGIN
  RETURN r^.v
END Get;
VAR g: R;
BEGIN
  g := NEW(R);
  g^.v := 9;
  PutInt(Get(g)); PutLn();
END M.)",
                          CO);
  ASSERT_TRUE(C.Prog != nullptr) << C.Diags.str();
  std::string Main = codegen::disassembleFunction(
      *C.Prog, C.Prog->MainFunc, /*WithTables=*/true);
  EXPECT_NE(Main.find("newobj"), std::string::npos) << Main;
  EXPECT_NE(Main.find("call Get"), std::string::npos) << Main;
  EXPECT_NE(Main.find("gc-point"), std::string::npos) << Main;
  EXPECT_NE(Main.find("PutInt"), std::string::npos) << Main;
  std::string Get;
  for (unsigned F = 0; F != C.Prog->Funcs.size(); ++F)
    if (C.Prog->Funcs[F].Name == "Get")
      Get = codegen::disassembleFunction(*C.Prog, F, true);
  EXPECT_NE(Get.find("ap[0]"), std::string::npos)
      << "parameters live in AP slots:\n"
      << Get;
}

//===----------------------------------------------------------------------===//
// Negative FOR steps and deep WITH nesting (language corners under GC)
//===----------------------------------------------------------------------===//

TEST(GC, NestedWithAliasesBothAdjusted) {
  RunResult R = [] {
    driver::CompilerOptions CO;
    vm::VMOptions VO;
    VO.GcStress = true;
    return compileAndRun(R"(
MODULE M;
TYPE R = REF RECORD a, b: INTEGER END;
VAR r1, r2, junk: R;
BEGIN
  r1 := NEW(R);
  r2 := NEW(R);
  WITH x = r1^.b DO
    WITH y = r2^.a DO
      x := 1;
      junk := NEW(R);
      y := 2;
      junk := NEW(R);
      x := x + 10;
      y := y + 20
    END
  END;
  PutInt(r1^.b * 100 + r2^.a); PutLn();
END M.)",
                         CO, VO);
  }();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "1122\n");
  EXPECT_GE(R.Stats.DerivedAdjusted, 2u);
}

//===----------------------------------------------------------------------===//
// Regression: strength reduction and nested loop indices
//===----------------------------------------------------------------------===//

TEST(Opt, InnerLoopIndexNotAnOuterIV) {
  // Regression test: an inner FOR index has both its definitions (init and
  // increment) inside the enclosing loop; treating it as an induction
  // variable of the *outer* loop hoisted a reduced pointer's
  // initialization to a point where the index was uninitialized.  Found
  // via examples/programs/wordcount.mg.
  const char *Src = R"(
MODULE M;
TYPE Text = REF ARRAY OF INTEGER;
VAR total: INTEGER;

PROCEDURE CopyTails(line: Text): INTEGER;
VAR i, j, s: INTEGER; w: Text;
BEGIN
  s := 0;
  i := 0;
  WHILE i < NUMBER(line) DO
    IF line[i] > 0 THEN
      w := NEW(Text, NUMBER(line) - i);
      FOR j := i TO NUMBER(line) - 1 DO
        w[j - i] := line[j]        (* line[j]: inner index, outer-invariant base *)
      END;
      s := s + w[0]
    END;
    INC(i)
  END;
  RETURN s
END CopyTails;

VAR t: Text;
BEGIN
  t := NEW(Text, 6);
  FOR k := 0 TO 5 DO t[k] := 10 * (k + 1) END;
  total := CopyTails(t);
  PutInt(total); PutLn();
END M.)";
  // Expected: sum of t[i] for all i = 10+20+...+60 = 210.
  for (int Opt : {0, 2}) {
    for (int Stress : {0, 1}) {
      driver::CompilerOptions CO;
      CO.OptLevel = Opt;
      vm::VMOptions VO;
      VO.GcStress = Stress != 0;
      RunResult R = compileAndRun(Src, CO, VO);
      ASSERT_TRUE(R.Ok) << "opt=" << Opt << " stress=" << Stress << ": "
                        << R.Error;
      EXPECT_EQ(R.Out, "210\n") << "opt=" << Opt << " stress=" << Stress;
    }
  }
}

} // namespace
