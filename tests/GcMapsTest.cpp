//===- tests/GcMapsTest.cpp - Table encoding and decoding ------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "gcmaps/GcTables.h"
#include "gcmaps/MapIndex.h"

#include <gtest/gtest.h>

using namespace mgc;
using namespace mgc::gcmaps;
using namespace mgc::vm;

namespace {

//===----------------------------------------------------------------------===//
// Figure 4: location encoding
//===----------------------------------------------------------------------===//

TEST(GcMaps, LocationEncodingFig4) {
  // Low two bits select the base register; the rest is the word offset.
  EXPECT_EQ(encodeLocation(Location::fpSlot(5)), (5 << 2) | 0);
  EXPECT_EQ(encodeLocation(Location::apSlot(2)), (2 << 2) | 2);
  EXPECT_EQ(encodeLocation(Location::reg(7)), (7 << 2) | 3);

  for (int Off : {0, 1, 7, 31, 100}) {
    EXPECT_EQ(decodeLocation(encodeLocation(Location::fpSlot(Off))),
              Location::fpSlot(Off));
    EXPECT_EQ(decodeLocation(encodeLocation(Location::apSlot(Off))),
              Location::apSlot(Off));
  }
  for (int R = 0; R != 16; ++R)
    EXPECT_EQ(decodeLocation(encodeLocation(Location::reg(R))),
              Location::reg(R));
}

TEST(GcMaps, SmallGroundEntriesFitOneByte) {
  // Fig. 4's point: most entries pack into a single byte (offset < 16
  // words leaves the encoded value under 64).
  EXPECT_EQ(packedSize(encodeLocation(Location::fpSlot(10))), 1u);
  EXPECT_EQ(packedSize(encodeLocation(Location::apSlot(3))), 1u);
  EXPECT_EQ(packedSize(encodeLocation(Location::fpSlot(100))), 2u);
}

//===----------------------------------------------------------------------===//
// Encode / decode round trips
//===----------------------------------------------------------------------===//

FuncTableData makeSampleData() {
  FuncTableData Data;
  GcPointData P0;
  P0.RetPC = 10;
  P0.LiveSlots = {Location::fpSlot(3), Location::apSlot(0)};
  P0.RegMask = 0b101;
  DerivationRecord R;
  R.Target = Location::reg(2);
  R.Bases = {{Location::fpSlot(3), 1}, {Location::apSlot(0), -1}};
  P0.Derivs.push_back(R);
  Data.Points.push_back(P0);

  GcPointData P1 = P0; // Identical: exercises "same as previous".
  P1.RetPC = 14;
  Data.Points.push_back(P1);

  GcPointData P2;
  P2.RetPC = 20; // Everything empty.
  Data.Points.push_back(P2);

  GcPointData P3;
  P3.RetPC = 33;
  P3.LiveSlots = {Location::fpSlot(3)};
  Data.Points.push_back(P3);
  return Data;
}

TEST(GcMaps, RoundTripAllPoints) {
  SchemeSizes Sizes;
  TableStats Stats;
  FuncTableData Data = makeSampleData();
  EncodedFuncMaps Maps = encodeFunction(Data, Sizes, Stats);

  ASSERT_EQ(Maps.RetPCs.size(), 4u);
  EXPECT_EQ(findGcPoint(Maps, 10), 0);
  EXPECT_EQ(findGcPoint(Maps, 14), 1);
  EXPECT_EQ(findGcPoint(Maps, 20), 2);
  EXPECT_EQ(findGcPoint(Maps, 33), 3);
  EXPECT_EQ(findGcPoint(Maps, 11), -1);

  for (unsigned P = 0; P != 4; ++P) {
    GcPointInfo Info = decodeGcPoint(Maps, P);
    const GcPointData &Want = Data.Points[P];
    // Live slot sets agree (order may differ; ours preserves ground
    // order).
    std::vector<Location> Got = Info.LiveSlots;
    std::vector<Location> Expect = Want.LiveSlots;
    std::sort(Got.begin(), Got.end());
    std::sort(Expect.begin(), Expect.end());
    EXPECT_EQ(Got, Expect) << "point " << P;
    EXPECT_EQ(Info.RegMask, Want.RegMask) << "point " << P;
    ASSERT_EQ(Info.Derivs.size(), Want.Derivs.size()) << "point " << P;
    for (size_t K = 0; K != Info.Derivs.size(); ++K) {
      EXPECT_EQ(Info.Derivs[K].Target, Want.Derivs[K].Target);
      ASSERT_EQ(Info.Derivs[K].Bases.size(), Want.Derivs[K].Bases.size());
      for (size_t B = 0; B != Info.Derivs[K].Bases.size(); ++B) {
        EXPECT_EQ(Info.Derivs[K].Bases[B].Loc, Want.Derivs[K].Bases[B].Loc);
        EXPECT_EQ(Info.Derivs[K].Bases[B].Coeff,
                  Want.Derivs[K].Bases[B].Coeff);
      }
    }
  }
}

TEST(GcMaps, AmbiguousRecordRoundTrip) {
  FuncTableData Data;
  GcPointData P;
  P.RetPC = 5;
  DerivationRecord R;
  R.Target = Location::fpSlot(7);
  R.Ambiguous = true;
  R.PathVar = Location::fpSlot(9);
  R.Alts = {{0, {{Location::apSlot(0), 1}}},
            {1, {{Location::apSlot(1), 1}}},
            {7, {{Location::apSlot(0), 1}, {Location::apSlot(1), -1}}}};
  P.Derivs.push_back(R);
  Data.Points.push_back(P);

  SchemeSizes Sizes;
  TableStats Stats;
  EncodedFuncMaps Maps = encodeFunction(Data, Sizes, Stats);
  GcPointInfo Info = decodeGcPoint(Maps, 0);
  ASSERT_EQ(Info.Derivs.size(), 1u);
  const DerivationRecord &Got = Info.Derivs[0];
  EXPECT_TRUE(Got.Ambiguous);
  EXPECT_EQ(Got.PathVar, Location::fpSlot(9));
  ASSERT_EQ(Got.Alts.size(), 3u);
  EXPECT_EQ(Got.Alts[0].PathValue, 0);
  EXPECT_EQ(Got.Alts[2].PathValue, 7);
  ASSERT_EQ(Got.Alts[2].Bases.size(), 2u);
  EXPECT_EQ(Got.Alts[2].Bases[1].Coeff, -1);
}

TEST(GcMaps, CoefficientMagnitudeEncodedByRepetition) {
  FuncTableData Data;
  GcPointData P;
  P.RetPC = 1;
  DerivationRecord R;
  R.Target = Location::reg(0);
  R.Bases = {{Location::fpSlot(1), 2}}; // +2 * base
  P.Derivs.push_back(R);
  Data.Points.push_back(P);
  SchemeSizes Sizes;
  TableStats Stats;
  EncodedFuncMaps Maps = encodeFunction(Data, Sizes, Stats);
  GcPointInfo Info = decodeGcPoint(Maps, 0);
  ASSERT_EQ(Info.Derivs.size(), 1u);
  int Total = 0;
  for (const BaseRef &B : Info.Derivs[0].Bases) {
    EXPECT_EQ(B.Loc, Location::fpSlot(1));
    Total += B.Coeff;
  }
  EXPECT_EQ(Total, 2);
}

//===----------------------------------------------------------------------===//
// Compression behavior (the Table 2 machinery)
//===----------------------------------------------------------------------===//

TEST(GcMaps, PreviousCompressionShrinksIdenticalRuns) {
  // Many identical gc-points: with Previous, all but the first cost one
  // descriptor byte each.
  FuncTableData Data;
  for (unsigned I = 0; I != 20; ++I) {
    GcPointData P;
    P.RetPC = I * 3 + 1;
    P.LiveSlots = {Location::fpSlot(2), Location::fpSlot(4),
                   Location::fpSlot(6)};
    P.RegMask = 0b11;
    Data.Points.push_back(P);
  }
  SchemeSizes Sizes;
  TableStats Stats;
  EncodedFuncMaps Maps = encodeFunction(Data, Sizes, Stats);

  EXPECT_LT(Sizes.DeltaPP, Sizes.DeltaPack)
      << "previous-compression must help on identical runs";
  EXPECT_LT(Sizes.DeltaPack, Sizes.DeltaPlain);
  EXPECT_LT(Sizes.FullPack, Sizes.FullPlain);
  // Only the first point emits tables.
  EXPECT_EQ(Stats.NDEL, 1u);
  EXPECT_EQ(Stats.NREG, 1u);
  EXPECT_EQ(Stats.NGC, 20u);
  // All 20 points decode to the same content.
  for (unsigned P = 0; P != 20; ++P) {
    GcPointInfo Info = decodeGcPoint(Maps, P);
    EXPECT_EQ(Info.LiveSlots.size(), 3u);
    EXPECT_EQ(Info.RegMask, 0b11);
  }
}

TEST(GcMaps, EmptyTablesCostOnlyDescriptor) {
  FuncTableData Data;
  for (unsigned I = 0; I != 10; ++I) {
    GcPointData P;
    P.RetPC = I + 1;
    Data.Points.push_back(P);
  }
  SchemeSizes Sizes;
  TableStats Stats;
  EncodedFuncMaps Maps = encodeFunction(Data, Sizes, Stats);
  // Blob: 1 byte ground count + 10 descriptor bytes.
  EXPECT_EQ(Maps.Blob.size(), 11u);
  EXPECT_EQ(Stats.NGC, 0u);
  EXPECT_EQ(Stats.NPTRS, 0u);
}

TEST(GcMaps, StatsCountPointerHomes) {
  FuncTableData Data = makeSampleData();
  SchemeSizes Sizes;
  TableStats Stats;
  encodeFunction(Data, Sizes, Stats);
  // Ground entries: FP+3, AP+0 -> 2; register union 0b101 -> 2 regs.
  EXPECT_EQ(Stats.NPTRS, 4u);
  // P0, P1, P3 have non-empty tables; P2 is entirely empty.
  EXPECT_EQ(Stats.NGC, 3u);
}

TEST(GcMaps, GroundTableRunLengthCompression) {
  // §5.2's array-pattern design: a frame array of pointers becomes one
  // (start, count) group instead of N entries.
  FuncTableData Wide, Narrow;
  GcPointData P;
  P.RetPC = 1;
  for (int K = 0; K != 24; ++K)
    P.LiveSlots.push_back(Location::fpSlot(4 + K)); // Consecutive.
  Wide.Points.push_back(P);
  GcPointData Q;
  Q.RetPC = 1;
  for (int K = 0; K != 24; ++K)
    Q.LiveSlots.push_back(Location::fpSlot(4 + 2 * K)); // Gaps: no runs.
  Narrow.Points.push_back(Q);

  SchemeSizes SW, SN;
  TableStats TW, TN;
  EncodedFuncMaps MW = encodeFunction(Wide, SW, TW);
  EncodedFuncMaps MN = encodeFunction(Narrow, SN, TN);
  EXPECT_LT(MW.Blob.size(), MN.Blob.size())
      << "24 consecutive slots must encode as one run";
  EXPECT_EQ(TW.NPTRS, 24u);
  EXPECT_EQ(TN.NPTRS, 24u);

  // Both decode back to their full entry lists.
  GcPointInfo IW = decodeGcPoint(MW, 0);
  EXPECT_EQ(IW.LiveSlots.size(), 24u);
  for (int K = 0; K != 24; ++K)
    EXPECT_EQ(IW.LiveSlots[static_cast<size_t>(K)], Location::fpSlot(4 + K));
  GcPointInfo IN = decodeGcPoint(MN, 0);
  EXPECT_EQ(IN.LiveSlots.size(), 24u);
}

TEST(GcMaps, MixedRunsAndSinglesRoundTrip) {
  FuncTableData Data;
  GcPointData P;
  P.RetPC = 9;
  // A register escape, two singles, and a 3-run, deliberately unsorted.
  P.LiveSlots = {Location::fpSlot(9), Location::apSlot(1),
                 Location::fpSlot(3), Location::fpSlot(4),
                 Location::fpSlot(5), Location::fpSlot(20)};
  Data.Points.push_back(P);
  SchemeSizes S;
  TableStats T;
  EncodedFuncMaps M = encodeFunction(Data, S, T);
  GcPointInfo I = decodeGcPoint(M, 0);
  std::vector<Location> Got = I.LiveSlots;
  std::vector<Location> Want = P.LiveSlots;
  std::sort(Got.begin(), Got.end());
  std::sort(Want.begin(), Want.end());
  EXPECT_EQ(Got, Want);
}

TEST(GcMaps, PcMapAccountsTwoBytesPerPoint) {
  FuncTableData Data = makeSampleData();
  SchemeSizes Sizes;
  TableStats Stats;
  encodeFunction(Data, Sizes, Stats);
  EXPECT_EQ(Sizes.PcMapBytes, 4u + 2u * 4u);
}

//===----------------------------------------------------------------------===//
// Load-time index + decoded-point cache (the acceleration layer)
//===----------------------------------------------------------------------===//

TEST(MapIndex, IndexedDecodeMatchesReference) {
  SchemeSizes Sizes;
  TableStats Stats;
  FuncTableData Data = makeSampleData();
  EncodedFuncMaps Maps = encodeFunction(Data, Sizes, Stats);
  FuncMapIndex Index = buildFuncMapIndex(Maps);

  ASSERT_EQ(Index.Points.size(), 4u);
  EXPECT_EQ(Index.Ground.size(), Maps.GroundCount);
  for (unsigned P = 0; P != 4; ++P)
    EXPECT_TRUE(crossCheckPoint(Maps, Index, P)) << "point " << P;
}

TEST(MapIndex, SameAsPreviousChainsCollapseToOneHop) {
  // 20 identical points: the reference decoder replays the whole chain;
  // the index resolves every ordinal to point 0's payload offsets.
  FuncTableData Data;
  for (unsigned I = 0; I != 20; ++I) {
    GcPointData P;
    P.RetPC = I * 3 + 1;
    P.LiveSlots = {Location::fpSlot(2), Location::fpSlot(4)};
    P.RegMask = 0b11;
    DerivationRecord R;
    R.Target = Location::reg(2);
    R.Bases = {{Location::fpSlot(2), 1}};
    P.Derivs.push_back(R);
    Data.Points.push_back(P);
  }
  SchemeSizes Sizes;
  TableStats Stats;
  EncodedFuncMaps Maps = encodeFunction(Data, Sizes, Stats);
  FuncMapIndex Index = buildFuncMapIndex(Maps);

  ASSERT_EQ(Index.Points.size(), 20u);
  for (unsigned P = 1; P != 20; ++P) {
    EXPECT_EQ(Index.Points[P].DeltaOff, Index.Points[0].DeltaOff);
    EXPECT_EQ(Index.Points[P].RegOff, Index.Points[0].RegOff);
    EXPECT_EQ(Index.Points[P].DerivOff, Index.Points[0].DerivOff);
    EXPECT_TRUE(crossCheckPoint(Maps, Index, P));
  }
}

TEST(MapIndex, EmptyTablesIndexAsEmptyPayloads) {
  FuncTableData Data;
  for (unsigned I = 0; I != 5; ++I) {
    GcPointData P;
    P.RetPC = I + 1;
    Data.Points.push_back(P);
  }
  SchemeSizes Sizes;
  TableStats Stats;
  EncodedFuncMaps Maps = encodeFunction(Data, Sizes, Stats);
  FuncMapIndex Index = buildFuncMapIndex(Maps);
  for (const PointIndexEntry &E : Index.Points) {
    EXPECT_EQ(E.DeltaOff, EmptyPayload);
    EXPECT_EQ(E.RegOff, EmptyPayload);
    EXPECT_EQ(E.DerivOff, EmptyPayload);
  }
  for (unsigned P = 0; P != 5; ++P)
    EXPECT_TRUE(crossCheckPoint(Maps, Index, P));

  // A function compiled without tables has no blob at all.
  EncodedFuncMaps NoTables;
  FuncMapIndex EmptyIndex = buildFuncMapIndex(NoTables);
  EXPECT_TRUE(EmptyIndex.Points.empty());
  EXPECT_TRUE(EmptyIndex.Ground.empty());
}

TEST(MapIndex, IndexedDecodeSkipsChainBytes) {
  FuncTableData Data = makeSampleData();
  SchemeSizes Sizes;
  TableStats Stats;
  EncodedFuncMaps Maps = encodeFunction(Data, Sizes, Stats);
  FuncMapIndex Index = buildFuncMapIndex(Maps);

  // The last ordinal: the reference decoder walks the whole blob; the
  // indexed decode reads only this point's payloads.
  GcPointInfo Info;
  uint64_t Skipped = 0;
  decodeGcPointIndexed(Maps, Index, 3, Info, &Skipped);
  EXPECT_GT(Skipped, 0u);
  EXPECT_LT(Skipped, Maps.Blob.size());
}

TEST(MapIndex, DecodedPointCacheHitsAndEvicts) {
  SchemeSizes Sizes;
  TableStats Stats;
  FuncTableData Data = makeSampleData();
  EncodedFuncMaps Maps = encodeFunction(Data, Sizes, Stats);
  FuncMapIndex Index = buildFuncMapIndex(Maps);

  DecodedPointCache Cache(4);
  EXPECT_EQ(Cache.lookup(0, 0), nullptr); // Cold miss.
  decodeGcPointIndexed(Maps, Index, 0, Cache.insert(0, 0));
  const GcPointInfo *Hit = Cache.lookup(0, 0);
  ASSERT_NE(Hit, nullptr);
  EXPECT_TRUE(*Hit == decodeGcPoint(Maps, 0));
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);

  // Direct-mapped: a colliding (func, ordinal) evicts, and a re-inserted
  // entry is correct again.
  decodeGcPointIndexed(Maps, Index, 1, Cache.insert(0, 1));
  decodeGcPointIndexed(Maps, Index, 0, Cache.insert(0, 0));
  const GcPointInfo *Again = Cache.lookup(0, 0);
  ASSERT_NE(Again, nullptr);
  EXPECT_TRUE(*Again == decodeGcPoint(Maps, 0));
}

//===----------------------------------------------------------------------===//
// Ambiguous-derivation selection (alts sorted at encode, binary search)
//===----------------------------------------------------------------------===//

TEST(MapIndex, AltsEncodedSortedAndSelectedByBinarySearch) {
  // >2 alternatives, deliberately emitted out of order: the encoder must
  // sort by path value and findDerivationAlt must select each one.
  FuncTableData Data;
  GcPointData P;
  P.RetPC = 5;
  DerivationRecord R;
  R.Target = Location::fpSlot(7);
  R.Ambiguous = true;
  R.PathVar = Location::fpSlot(9);
  R.Alts = {{7, {{Location::apSlot(3), 1}}},
            {0, {{Location::apSlot(0), 1}}},
            {3, {{Location::apSlot(2), 1}, {Location::apSlot(0), -1}}},
            {1, {{Location::apSlot(1), 1}}}};
  P.Derivs.push_back(R);
  Data.Points.push_back(P);

  SchemeSizes Sizes;
  TableStats Stats;
  EncodedFuncMaps Maps = encodeFunction(Data, Sizes, Stats);
  GcPointInfo Info = decodeGcPoint(Maps, 0);
  ASSERT_EQ(Info.Derivs.size(), 1u);
  const DerivationRecord &Got = Info.Derivs[0];
  ASSERT_EQ(Got.Alts.size(), 4u);
  for (size_t K = 1; K != Got.Alts.size(); ++K)
    EXPECT_LT(Got.Alts[K - 1].PathValue, Got.Alts[K].PathValue)
        << "alts must decode sorted by path value";

  // Every original alternative is found and maps to its own bases.
  for (const DerivationAlt &Want : R.Alts) {
    const DerivationAlt *Found = findDerivationAlt(Got, Want.PathValue);
    ASSERT_NE(Found, nullptr) << "path value " << Want.PathValue;
    EXPECT_EQ(Found->PathValue, Want.PathValue);
    ASSERT_EQ(Found->Bases.size(), Want.Bases.size());
    for (size_t B = 0; B != Want.Bases.size(); ++B) {
      EXPECT_EQ(Found->Bases[B].Loc, Want.Bases[B].Loc);
      EXPECT_EQ(Found->Bases[B].Coeff, Want.Bases[B].Coeff);
    }
  }
  // Path values between/outside the encoded ones select nothing.
  EXPECT_EQ(findDerivationAlt(Got, 2), nullptr);
  EXPECT_EQ(findDerivationAlt(Got, 5), nullptr);
  EXPECT_EQ(findDerivationAlt(Got, -1), nullptr);
  EXPECT_EQ(findDerivationAlt(Got, 100), nullptr);

  // The indexed decode agrees on the ambiguous record too.
  FuncMapIndex Index = buildFuncMapIndex(Maps);
  EXPECT_TRUE(crossCheckPoint(Maps, Index, 0));
}

} // namespace
