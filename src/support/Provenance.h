//===- support/Provenance.h - Build/run provenance stamping -----*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One shared answer to "which build produced this artifact?".  Every
/// persistent artifact the toolchain writes — JSONL traces, heap-snapshot
/// files, profile files, and the BENCH_*.json gate outputs — stamps the
/// same three fields so artifacts from different builds (or different
/// seeds) can never be silently compared:
///
///   tool_version  the mgc release string (bumped with the format),
///   build_flags   compiler identity + assertion state of this binary,
///   seed          the run's deterministic seed (0 when the run has none).
///
/// The fields are provenance only: binary codecs keep them in a header
/// *outside* the byte-identity contract (profiles must stay bit-identical
/// across dispatch tiers even when the command lines differ), and the
/// JSONL re-parser treats them as ordinary string/int fields.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_SUPPORT_PROVENANCE_H
#define MGC_SUPPORT_PROVENANCE_H

#include <cstdint>
#include <string>

namespace mgc {
namespace support {

/// The tool release string.  Bump when an artifact format changes.
constexpr const char *ToolVersion = "mgc 0.10.0";

/// Compiler identity and assertion state of this binary, as one compact
/// string.  Computed at compile time of this translation unit, so two
/// binaries from different toolchains stamp different values.
inline const std::string &buildFlags() {
  static const std::string Flags = [] {
    std::string F = "cc=";
#if defined(__VERSION__)
    F += __VERSION__;
#else
    F += "unknown";
#endif
#if defined(NDEBUG)
    F += ";assertions=off";
#else
    F += ";assertions=on";
#endif
    return F;
  }();
  return Flags;
}

/// The three provenance fields as a JSON object (with surrounding braces):
/// {"tool_version":"...","build_flags":"...","seed":N}.  For embedding
/// under a "provenance" key in BENCH_*.json and --stats-json.
inline std::string provenanceJson(uint64_t Seed = 0) {
  std::string Out = "{\"tool_version\":\"";
  Out += ToolVersion;
  Out += "\",\"build_flags\":\"";
  for (char C : buildFlags()) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += "\",\"seed\":";
  Out += std::to_string(Seed);
  Out += '}';
  return Out;
}

} // namespace support
} // namespace mgc

#endif // MGC_SUPPORT_PROVENANCE_H
