//===- support/ByteCodec.cpp ----------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ByteCodec.h"

#include <cassert>

using namespace mgc;

/// The smallest number of 7-bit groups whose sign extension reproduces
/// \p Word.  A group count N covers values representable in 7*N bits as a
/// signed quantity.
unsigned mgc::packedSize(int32_t Word) {
  int64_t V = Word;
  for (unsigned N = 1; N <= 4; ++N) {
    unsigned Bits = 7 * N;
    int64_t Lo = -(int64_t(1) << (Bits - 1));
    int64_t Hi = (int64_t(1) << (Bits - 1)) - 1;
    if (V >= Lo && V <= Hi)
      return N;
  }
  return 5;
}

void mgc::appendPacked(std::vector<uint8_t> &Out, int32_t Word) {
  unsigned N = packedSize(Word);
  uint64_t U = static_cast<uint64_t>(static_cast<int64_t>(Word)) &
               ((uint64_t(1) << (7 * N)) - 1);
  // Most significant group first; continuation bit set on all but the last.
  for (unsigned I = N; I-- > 0;) {
    uint8_t Group = static_cast<uint8_t>((U >> (7 * I)) & 0x7f);
    if (I != 0)
      Group |= 0x80;
    Out.push_back(Group);
  }
}

int32_t mgc::readPacked(const uint8_t *Data, size_t Size, size_t &Pos) {
  assert(Pos < Size && "packed read past end of table");
  uint8_t First = Data[Pos++];
  // Sign-extend the first byte's 7 payload bits.
  int64_t V = static_cast<int8_t>(static_cast<uint8_t>(First << 1)) >> 1;
  while (First & 0x80) {
    assert(Pos < Size && "truncated packed word");
    First = Data[Pos++];
    V = (V << 7) | (First & 0x7f);
  }
  return static_cast<int32_t>(V);
}
