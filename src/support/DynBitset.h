//===- support/DynBitset.h - Dynamic bitset ---------------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-capacity bitset used by the dataflow analyses (live vreg
/// sets, loop block sets).
///
//===----------------------------------------------------------------------===//

#ifndef MGC_SUPPORT_DYNBITSET_H
#define MGC_SUPPORT_DYNBITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mgc {

class DynBitset {
public:
  DynBitset() = default;
  explicit DynBitset(size_t Size) : NumBits(Size), Words((Size + 63) / 64) {}

  size_t size() const { return NumBits; }

  bool test(size_t I) const {
    assert(I < NumBits);
    return (Words[I >> 6] >> (I & 63)) & 1;
  }

  void set(size_t I) {
    assert(I < NumBits);
    Words[I >> 6] |= uint64_t(1) << (I & 63);
  }

  void reset(size_t I) {
    assert(I < NumBits);
    Words[I >> 6] &= ~(uint64_t(1) << (I & 63));
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Set union; returns true if this set changed.
  bool unionWith(const DynBitset &O) {
    assert(NumBits == O.NumBits);
    bool Changed = false;
    for (size_t I = 0; I != Words.size(); ++I) {
      uint64_t Before = Words[I];
      Words[I] |= O.Words[I];
      Changed |= Words[I] != Before;
    }
    return Changed;
  }

  bool operator==(const DynBitset &O) const {
    return NumBits == O.NumBits && Words == O.Words;
  }

  /// Iterates set bits in ascending order.
  template <typename Fn> void forEach(Fn &&F) const {
    for (size_t WI = 0; WI != Words.size(); ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        F(WI * 64 + Bit);
        W &= W - 1;
      }
    }
  }

  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

private:
  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace mgc

#endif // MGC_SUPPORT_DYNBITSET_H
