//===- support/Diagnostics.cpp --------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace mgc;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<no-loc>";
  return std::to_string(Line) + ":" + std::to_string(Col);
}

std::string Diagnostics::str() const {
  std::string Out;
  for (const Entry &E : Errors) {
    Out += E.Loc.str();
    Out += ": error: ";
    Out += E.Message;
    Out += '\n';
  }
  return Out;
}
