//===- support/Diagnostics.h - Source locations and diagnostics -*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal source-location and diagnostic machinery shared by the front end
/// and the later phases.  The project does not use exceptions; phases report
/// through a Diagnostics sink and callers check hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef MGC_SUPPORT_DIAGNOSTICS_H
#define MGC_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace mgc {

/// A 1-based line/column position in the single source buffer being
/// compiled.  Line 0 denotes "no location" (used by synthesized constructs).
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

/// Accumulates error messages with locations.  A phase that encounters an
/// error reports it and returns a best-effort result; the driver stops the
/// pipeline when hasErrors() becomes true.
class Diagnostics {
public:
  struct Entry {
    SourceLoc Loc;
    std::string Message;
  };

  void error(SourceLoc Loc, const std::string &Message) {
    Errors.push_back({Loc, Message});
  }

  bool hasErrors() const { return !Errors.empty(); }
  const std::vector<Entry> &errors() const { return Errors; }

  /// Renders all diagnostics, one per line, for test assertions and the
  /// command-line tools.
  std::string str() const;

private:
  std::vector<Entry> Errors;
};

} // namespace mgc

#endif // MGC_SUPPORT_DIAGNOSTICS_H
