//===- support/ByteCodec.h - Byte-packed word encoding ----------*- C++ -*-===//
//
// Part of the mgc project: a reproduction of Diwan, Moss & Hudson,
// "Compiler Support for Garbage Collection in a Statically Typed Language"
// (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-packing scheme of Figure 3 of the paper.  GC tables are first
/// produced as tables of 32-bit words; a second phase packs each word into a
/// minimal sequence of bytes.  Every byte carries 7 payload bits; the high
/// bit of a byte is set when another byte of the same word follows (a
/// "continuation" bit).  Bytes are stored most-significant first and the
/// first byte is sign-extended, since many frame offsets are negative.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_SUPPORT_BYTECODEC_H
#define MGC_SUPPORT_BYTECODEC_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mgc {

/// Returns the number of bytes the packed encoding of \p Word occupies
/// (between 1 and 5 for 32-bit words).
unsigned packedSize(int32_t Word);

/// Appends the packed encoding of \p Word to \p Out.
void appendPacked(std::vector<uint8_t> &Out, int32_t Word);

/// Reads one packed word starting at \p Pos in \p Data, advancing \p Pos
/// past it.  The caller must guarantee a complete encoding is present.
int32_t readPacked(const uint8_t *Data, size_t Size, size_t &Pos);

/// A convenience writer that accumulates byte-packed words.  Used by the gc
/// table emitters; the "plain" (unpacked) emitters write raw 32-bit words
/// through appendWord32 instead.
class PackedWriter {
public:
  void writePacked(int32_t Word) { appendPacked(Bytes, Word); }

  /// Writes a raw little-endian 32-bit word (the phase-one "table of words"
  /// representation).
  void writeWord32(int32_t Word) {
    uint32_t U = static_cast<uint32_t>(Word);
    Bytes.push_back(static_cast<uint8_t>(U & 0xff));
    Bytes.push_back(static_cast<uint8_t>((U >> 8) & 0xff));
    Bytes.push_back(static_cast<uint8_t>((U >> 16) & 0xff));
    Bytes.push_back(static_cast<uint8_t>((U >> 24) & 0xff));
  }

  void writeByte(uint8_t B) { Bytes.push_back(B); }

  size_t size() const { return Bytes.size(); }
  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> takeBytes() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

//===----------------------------------------------------------------------===//
// Untrusted-input helpers (binary artifact files)
//===----------------------------------------------------------------------===//
//
// The persistent artifact codecs (heap snapshots, profiles) reuse the
// Figure-3 packing but face untrusted files, so they layer unsigned/64-bit/
// string conveniences over appendPacked and decode through a bounds-checked
// reader that fails cleanly where readPacked would assert.

/// Appends \p V packed as a 32-bit word (values >= 2^31 round-trip through
/// the signed packing unchanged).
inline void appendPackedU32(std::vector<uint8_t> &Out, uint32_t V) {
  appendPacked(Out, static_cast<int32_t>(V));
}

/// Appends \p V as two packed 32-bit words, low half first.
inline void appendPackedU64(std::vector<uint8_t> &Out, uint64_t V) {
  appendPackedU32(Out, static_cast<uint32_t>(V));
  appendPackedU32(Out, static_cast<uint32_t>(V >> 32));
}

/// Appends a packed length followed by the raw bytes.
template <typename StringT>
inline void appendPackedStr(std::vector<uint8_t> &Out, const StringT &S) {
  appendPackedU32(Out, static_cast<uint32_t>(S.size()));
  Out.insert(Out.end(), S.begin(), S.end());
}

/// Bounds-checked varint reader: readPacked asserts on truncation, but a
/// decoder facing untrusted files must fail cleanly instead.  Once any
/// read fails, every subsequent read reports failure and returns zero.
class SafeReader {
public:
  explicit SafeReader(const std::vector<uint8_t> &B) : B(B) {}

  bool failed() const { return Fail; }
  size_t position() const { return Pos; }
  size_t remaining() const { return Fail ? 0 : B.size() - Pos; }

  uint8_t byte() {
    if (Pos >= B.size()) {
      Fail = true;
      return 0;
    }
    return B[Pos++];
  }

  int32_t word() {
    uint8_t First = byte();
    if (Fail)
      return 0;
    // Sign-extend the first byte's 7 payload bits (Figure 3).
    int64_t V = static_cast<int8_t>(static_cast<uint8_t>(First << 1)) >> 1;
    unsigned Groups = 1;
    while (First & 0x80) {
      if (++Groups > 5) {
        Fail = true;
        return 0;
      }
      First = byte();
      if (Fail)
        return 0;
      V = (V << 7) | (First & 0x7f);
    }
    return static_cast<int32_t>(V);
  }

  uint32_t u32() { return static_cast<uint32_t>(word()); }

  uint64_t u64() {
    uint64_t Lo = u32();
    uint64_t Hi = u32();
    return (Hi << 32) | Lo;
  }

  std::string str() {
    int32_t Len = word();
    if (Len < 0 || static_cast<size_t>(Len) > remaining()) {
      Fail = true;
      return {};
    }
    std::string S(reinterpret_cast<const char *>(B.data()) + Pos,
                  static_cast<size_t>(Len));
    Pos += static_cast<size_t>(Len);
    return S;
  }

  /// A count of items each at least one byte long can never exceed the
  /// remaining bytes; reject early so hostile counts cannot force huge
  /// allocations.
  bool countOk(uint32_t N) {
    if (Fail || N > remaining()) {
      Fail = true;
      return false;
    }
    return true;
  }

private:
  const std::vector<uint8_t> &B;
  size_t Pos = 0;
  bool Fail = false;
};

/// Sequential reader over a byte-packed table blob.
class PackedReader {
public:
  PackedReader(const uint8_t *Data, size_t Size)
      : Data(Data), Size(Size), Pos(0) {}
  explicit PackedReader(const std::vector<uint8_t> &Blob)
      : Data(Blob.data()), Size(Blob.size()), Pos(0) {}

  int32_t readPackedWord() { return readPacked(Data, Size, Pos); }

  int32_t readWord32() {
    uint32_t U = 0;
    for (unsigned I = 0; I != 4; ++I)
      U |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return static_cast<int32_t>(U);
  }

  uint8_t readByte() { return Data[Pos++]; }

  bool atEnd() const { return Pos >= Size; }
  size_t position() const { return Pos; }
  void seek(size_t NewPos) { Pos = NewPos; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos;
};

} // namespace mgc

#endif // MGC_SUPPORT_BYTECODEC_H
