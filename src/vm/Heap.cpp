//===- vm/Heap.cpp --------------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Heap.h"

#include <cassert>
#include <cstring>

using namespace mgc;
using namespace mgc::vm;

namespace {
constexpr Word ForwardBit = 1;

Word headerOf(Word Obj) { return *reinterpret_cast<Word *>(Obj); }
void setHeader(Word Obj, Word H) { *reinterpret_cast<Word *>(Obj) = H; }
} // namespace

Heap::Heap(size_t SemispaceBytes, const std::vector<ir::TypeDesc> &Descs)
    : SpaceBytes((SemispaceBytes + 7) & ~size_t(7)), Descs(Descs) {
  Space0.reset(new uint8_t[SpaceBytes]);
  Space1.reset(new uint8_t[SpaceBytes]);
  FromBase = reinterpret_cast<Word>(Space0.get());
  ToBase = reinterpret_cast<Word>(Space1.get());
  AllocPtr = FromBase;
  ToAlloc = ToBase;
}

size_t Heap::objectWords(Word Obj) const {
  const ir::TypeDesc &D = descOf(Obj);
  size_t Words = 1 + D.SizeWords;
  if (D.IsOpenArray) {
    int64_t Len = static_cast<int64_t>(
        reinterpret_cast<Word *>(Obj)[1]);
    Words += static_cast<size_t>(Len) * D.ElemSizeWords;
  }
  return Words;
}

const ir::TypeDesc &Heap::descOf(Word Obj) const {
  Word H = headerOf(Obj);
  assert(!(H & ForwardBit) && "descOf on a forwarded object");
  size_t Idx = static_cast<size_t>(H >> 1);
  assert(Idx < Descs.size() && "corrupt object header");
  return Descs[Idx];
}

Word Heap::allocate(unsigned DescIdx, int64_t Length) {
  assert(DescIdx < Descs.size());
  const ir::TypeDesc &D = Descs[DescIdx];
  size_t Words = 1 + D.SizeWords;
  if (D.IsOpenArray) {
    assert(Length >= 0 && "negative open array length");
    Words += static_cast<size_t>(Length) * D.ElemSizeWords;
  }
  size_t Bytes = Words * sizeof(Word);
  if (AllocPtr + Bytes > FromBase + SpaceBytes)
    return 0;
  Word Obj = AllocPtr;
  AllocPtr += Bytes;
  std::memset(reinterpret_cast<void *>(Obj), 0, Bytes);
  setHeader(Obj, static_cast<Word>(DescIdx) << 1);
  if (D.IsOpenArray)
    reinterpret_cast<Word *>(Obj)[1] = static_cast<Word>(Length);
  BytesAllocated += Bytes;
  ++ObjectsAllocated;
  return Obj;
}

Word Heap::forward(Word Obj) {
  assert(inFromSpace(Obj) && "forwarding a non-heap pointer");
  Word H = headerOf(Obj);
  if (H & ForwardBit)
    return H & ~ForwardBit;
  size_t Words = objectWords(Obj);
  Word New = ToAlloc;
  assert(New + Words * sizeof(Word) <= ToBase + SpaceBytes &&
         "to-space overflow during collection");
  ToAlloc += Words * sizeof(Word);
  std::memcpy(reinterpret_cast<void *>(New),
              reinterpret_cast<const void *>(Obj), Words * sizeof(Word));
  setHeader(Obj, New | ForwardBit);
  return New;
}

void Heap::endCollection() {
  std::swap(FromBase, ToBase);
  AllocPtr = ToAlloc;
  ToAlloc = ToBase;
}

bool Heap::plausibleObject(Word P) const {
  if (P < FromBase || P >= AllocPtr)
    return false;
  if ((P - FromBase) % sizeof(Word) != 0)
    return false;
  Word H = headerOf(P);
  if (H & ForwardBit)
    return false;
  return (H >> 1) < Descs.size();
}
