//===- vm/Heap.cpp --------------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/Heap.h"

#include <cassert>
#include <cstring>

using namespace mgc;
using namespace mgc::vm;

namespace {
Word headerOf(Word Obj) { return *reinterpret_cast<Word *>(Obj); }
void setHeader(Word Obj, Word H) { *reinterpret_cast<Word *>(Obj) = H; }

/// a * b, or SIZE_MAX on overflow.
size_t mulChecked(size_t A, size_t B) {
  size_t R;
  if (__builtin_mul_overflow(A, B, &R))
    return Heap::BadAlloc;
  return R;
}

/// a + b, or SIZE_MAX on overflow.
size_t addChecked(size_t A, size_t B) {
  size_t R;
  if (__builtin_add_overflow(A, B, &R))
    return Heap::BadAlloc;
  return R;
}
} // namespace

Heap::Heap(size_t SemispaceBytes, const std::vector<ir::TypeDesc> &Descs,
           bool Generational, size_t NurseryBytes, HeapPolicy P)
    : SpaceBytes((SemispaceBytes + 7) & ~size_t(7)), Policy(P),
      Gen(Generational), Descs(Descs) {
  assert(Descs.size() <= DescMask + 1 &&
         "type descriptor index overflows the header field");
  // Resolve the growth cap once so maxObjectBytes() is a run constant:
  // default 8x the initial semispace, never below it, 8-aligned.  Without
  // a growth trigger the cap is pinned to the (fixed) semispace size.
  if (Policy.GrowthPct) {
    if (Policy.MaxBytes == 0)
      Policy.MaxBytes = SpaceBytes * 8;
    Policy.MaxBytes &= ~size_t(7);
    if (Policy.MaxBytes < SpaceBytes)
      Policy.MaxBytes = SpaceBytes;
  } else {
    Policy.MaxBytes = SpaceBytes;
  }
  ToSpaceBytes = SpaceBytes;
  FromSpace.reset(new uint8_t[SpaceBytes]);
  ToSpace.reset(new uint8_t[ToSpaceBytes]);
  FromBase = reinterpret_cast<Word>(FromSpace.get());
  ToBase = reinterpret_cast<Word>(ToSpace.get());
  AllocPtr = FromBase;
  ToAlloc = ToBase;
  OldLimit = FromBase + SpaceBytes;
  if (Gen) {
    // Each nursery half defaults to an eighth of a semispace, and is
    // clamped so old space keeps room to absorb a full nursery of
    // promotions (maxObjectBytes stays positive).  Auto-sizing treats the
    // resolved value as its floor.
    size_t Half = NurseryBytes ? NurseryBytes : SpaceBytes / 8;
    Half = (Half + 7) & ~size_t(7);
    if (Half < 512)
      Half = 512;
    if (Half > SpaceBytes / 2)
      Half = (SpaceBytes / 2) & ~size_t(7);
    NurFromHalfBytes = NurToHalfBytes = NurFloorBytes = Half;
    NurFromBuf.reset(new uint8_t[NurFromHalfBytes]);
    NurToBuf.reset(new uint8_t[NurToHalfBytes]);
    NurFromBase = reinterpret_cast<Word>(NurFromBuf.get());
    NurToBase = reinterpret_cast<Word>(NurToBuf.get());
    NurAlloc = NurFromBase;
    NurToAlloc = NurToBase;
    OldLimit = FromBase + SpaceBytes - NurFromHalfBytes;
  }
}

size_t Heap::allocationBytes(unsigned DescIdx, int64_t Length) const {
  assert(DescIdx < Descs.size());
  const ir::TypeDesc &D = Descs[DescIdx];
  size_t Words = 1 + D.SizeWords;
  if (D.IsOpenArray) {
    if (Length < 0)
      return BadAlloc;
    size_t Elems = mulChecked(static_cast<size_t>(Length), D.ElemSizeWords);
    Words = addChecked(Words, Elems);
  }
  return mulChecked(Words, sizeof(Word));
}

size_t Heap::objectWords(Word Obj) const {
  const ir::TypeDesc &D = descOf(Obj);
  size_t Words = 1 + D.SizeWords;
  if (D.IsOpenArray) {
    int64_t Len = static_cast<int64_t>(reinterpret_cast<Word *>(Obj)[1]);
    assert(Len >= 0 && "corrupt open-array length");
    size_t Elems = mulChecked(static_cast<size_t>(Len), D.ElemSizeWords);
    Words = addChecked(Words, Elems);
    assert(Words != BadAlloc && "open-array length does not round-trip");
  }
  return Words;
}

const ir::TypeDesc &Heap::descOf(Word Obj) const {
  Word H = headerOf(Obj);
  assert(!(H & ForwardBit) && "descOf on a forwarded object");
  size_t Idx = headerDesc(H);
  assert(Idx < Descs.size() && "corrupt object header");
  return Descs[Idx];
}

Word Heap::bumpAllocate(Word &Bump, Word Limit, unsigned DescIdx,
                        int64_t Length, uint32_t Site) {
  const ir::TypeDesc &D = Descs[DescIdx];
  size_t Bytes = allocationBytes(DescIdx, Length);
  // Overflowed or oversized requests fail like an exhausted space; the VM
  // reports them deterministically before ever retrying.  (Bump can sit
  // past Limit after a full collection that overran the old-space reserve,
  // so the comparison must not rely on Limit - Bump.)
  if (Bytes == BadAlloc || Bump > Limit || Bytes > Limit - Bump)
    return 0;
  Word Obj = Bump;
  Bump += Bytes;
  std::memset(reinterpret_cast<void *>(Obj), 0, Bytes);
  setHeader(Obj, makeHeader(DescIdx, 0, Site));
  if (D.IsOpenArray)
    reinterpret_cast<Word *>(Obj)[1] = static_cast<Word>(Length);
  BytesAllocated += Bytes;
  ++ObjectsAllocated;
  return Obj;
}

Word Heap::allocate(unsigned DescIdx, int64_t Length, uint32_t Site) {
  assert(DescIdx < Descs.size());
  if (Gen) {
    // Invariant: old-used + nursery-used never exceeds a semispace, so a
    // full collection's to-space copy always fits.  The nursery limit
    // shrinks when old space has overrun its reserve.
    size_t Used = (AllocPtr - FromBase) + (NurAlloc - NurFromBase);
    size_t Budget = Used < SpaceBytes ? SpaceBytes - Used : 0;
    Word Limit = NurAlloc + Budget;
    if (Limit > NurFromBase + NurFromHalfBytes)
      Limit = NurFromBase + NurFromHalfBytes;
    return bumpAllocate(NurAlloc, Limit, DescIdx, Length, Site);
  }
  return bumpAllocate(AllocPtr, FromBase + SpaceBytes, DescIdx, Length, Site);
}

Word Heap::allocateOld(unsigned DescIdx, int64_t Length, uint32_t Site) {
  assert(Gen && "allocateOld is a generational-mode path");
  assert(DescIdx < Descs.size());
  return bumpAllocate(AllocPtr, OldLimit, DescIdx, Length, Site);
}

Word Heap::forward(Word Obj) {
  assert(inFromSpace(Obj) && "forwarding a non-heap pointer");
  Word H = headerOf(Obj);
  if (H & ForwardBit)
    return H & ~ForwardBit;
  size_t Words = objectWords(Obj);
  Word New = ToAlloc;
  assert(New + Words * sizeof(Word) <= ToBase + ToSpaceBytes &&
         "to-space overflow during collection");
  ToAlloc += Words * sizeof(Word);
  std::memcpy(reinterpret_cast<void *>(New),
              reinterpret_cast<const void *>(Obj), Words * sizeof(Word));
  // The header (site, descriptor, age) rides the copy; the age bump is the
  // whole of attribution maintenance.  Ages are monotonic across the
  // object's lifetime — the promotion policy only ever consults nursery
  // objects, whose ages restart at 0 on allocation.
  setHeader(New, agedHeader(H));
  setHeader(Obj, New | ForwardBit);
  return New;
}

namespace {
/// objectWords computed from a saved header value rather than the header
/// in memory: during a parallel collection the in-memory header of a
/// claimed object is a bare ForwardBit marker, but the open-array length
/// word (Obj[1]) is untouched until the winner finishes copying, so size
/// stays computable from (saved header, Obj).
size_t objectWordsFromHdr(const std::vector<ir::TypeDesc> &Descs, Word Hdr,
                          Word Obj) {
  size_t Idx = Heap::headerDesc(Hdr);
  assert(Idx < Descs.size() && "corrupt object header");
  const ir::TypeDesc &D = Descs[Idx];
  size_t Words = 1 + D.SizeWords;
  if (D.IsOpenArray) {
    int64_t Len = static_cast<int64_t>(reinterpret_cast<Word *>(Obj)[1]);
    assert(Len >= 0 && "corrupt open-array length");
    Words += static_cast<size_t>(Len) * D.ElemSizeWords;
  }
  return Words;
}
} // namespace

Word Heap::forwardParallel(Word Obj, bool &Copied, size_t &BytesOut) {
  Copied = false;
  BytesOut = 0;
  assert(inFromSpace(Obj) && "forwarding a non-heap pointer");
  Word *HdrP = reinterpret_cast<Word *>(Obj);
  Word H = __atomic_load_n(HdrP, __ATOMIC_ACQUIRE);
  for (;;) {
    if (H & ForwardBit) {
      // Forwarded — or claimed with the copy still in flight (the marker
      // is a bare ForwardBit, never a valid to-space address).  Spin until
      // the winner publishes the real forwarding pointer.
      Word Target = H & ~ForwardBit;
      while (Target == 0) {
        H = __atomic_load_n(HdrP, __ATOMIC_ACQUIRE);
        Target = H & ~ForwardBit;
      }
      return Target;
    }
    // Try to claim: header -> bare ForwardBit.  On failure H is reloaded
    // and the loop re-dispatches (another worker claimed or forwarded it).
    if (__atomic_compare_exchange_n(HdrP, &H, ForwardBit, /*weak=*/false,
                                    __ATOMIC_ACQ_REL, __ATOMIC_ACQUIRE))
      break;
  }
  // We own the copy.  H is the pre-claim header; the length word (for open
  // arrays) is still intact in from-space.
  size_t Words = objectWordsFromHdr(Descs, H, Obj);
  size_t Bytes = Words * sizeof(Word);
  Word New = __atomic_fetch_add(&ToAlloc, Bytes, __ATOMIC_RELAXED);
  assert(New + Bytes <= ToBase + ToSpaceBytes &&
         "to-space overflow during collection");
  // Copy payload words only — the destination header is written fresh, and
  // the source header now holds the claim marker anyway.
  if (Words > 1)
    std::memcpy(reinterpret_cast<void *>(New + sizeof(Word)),
                reinterpret_cast<const void *>(Obj + sizeof(Word)),
                (Words - 1) * sizeof(Word));
  setHeader(New, agedHeader(H));
  // Publish: losers spinning above (and scanners reading fields that point
  // here) see a fully-copied object once they observe this store.
  __atomic_store_n(HdrP, New | ForwardBit, __ATOMIC_RELEASE);
  Copied = true;
  BytesOut = Bytes;
  return New;
}

void Heap::beginCollection() {
  // Growth decision, made before the copy so the Cheney invariant
  // (live <= to-space) is preserved by construction: double the to-space
  // when occupancy crossed the trigger or a demand growth is armed.
  // Growth-only — the semispaces never shrink below what is live, because
  // the target is always >= the current size.
  size_t Target = SpaceBytes;
  if (Policy.GrowthPct && SpaceBytes < Policy.MaxBytes &&
      (GrowRequested || static_cast<uint64_t>(usedBytes()) * 100 >=
                            static_cast<uint64_t>(SpaceBytes) *
                                Policy.GrowthPct)) {
    Target = SpaceBytes * 2;
    if (Target > Policy.MaxBytes)
      Target = Policy.MaxBytes;
    ++HeapGrowths;
  }
  GrowRequested = false;
  if (Target != ToSpaceBytes) {
    ToSpace.reset(new uint8_t[Target]);
    ToBase = reinterpret_cast<Word>(ToSpace.get());
    ToSpaceBytes = Target;
  }
  ToAlloc = ToBase;
}

void Heap::endCollection() {
  std::swap(FromBase, ToBase);
  std::swap(FromSpace, ToSpace);
  std::swap(SpaceBytes, ToSpaceBytes);
  AllocPtr = ToAlloc;
  if (ToSpaceBytes != SpaceBytes) {
    // The pair stays symmetric: the idle semispace must be able to absorb
    // a full copy of the (now larger) from-space at the next collection.
    ToSpace.reset(new uint8_t[SpaceBytes]);
    ToBase = reinterpret_cast<Word>(ToSpace.get());
    ToSpaceBytes = SpaceBytes;
  }
  ToAlloc = ToBase;
  OldLimit = Gen ? FromBase + SpaceBytes - nurseryReserveBytes()
                 : FromBase + SpaceBytes;
  if (Gen) {
    NurAlloc = NurFromBase; // The nursery was fully evacuated.
    RemSet.clear();         // Everything is old now.
  }
}

Word Heap::forwardYoung(Word Obj) {
  assert(inNursery(Obj) && "minor collection forwarding a non-nursery object");
  Word H = headerOf(Obj);
  if (H & ForwardBit)
    return H & ~ForwardBit;
  size_t Bytes = objectWords(Obj) * sizeof(Word);
  unsigned Age = headerAge(H) + 1;
  Word New;
  if (Age >= PromoteAge) {
    New = AllocPtr;
    assert(New + Bytes <= OldLimit &&
           "promotion overflow: minor collection started without headroom");
    AllocPtr += Bytes;
    ++ObjectsPromoted;
    BytesPromoted += Bytes;
  } else {
    New = NurToAlloc;
    assert(New + Bytes <= NurToBase + NurToHalfBytes &&
           "survivor-half overflow during minor collection");
    NurToAlloc += Bytes;
  }
  std::memcpy(reinterpret_cast<void *>(New),
              reinterpret_cast<const void *>(Obj), Bytes);
  // Ages are never reset on promotion: they keep counting evacuations for
  // the snapshot age attribution, and promoted objects (age >= PromoteAge,
  // now in old space) are out of forwardYoung's reach for good.
  setHeader(New, agedHeader(H));
  setHeader(Obj, New | ForwardBit);
  return New;
}

void Heap::endMinorCollection() {
  std::swap(NurFromBase, NurToBase);
  std::swap(NurFromBuf, NurToBuf);
  std::swap(NurFromHalfBytes, NurToHalfBytes);
  NurAlloc = NurToAlloc;
  NurToAlloc = NurToBase;
  if (Policy.NurseryAuto)
    resizeIdleNurseryHalf();
}

void Heap::resizeIdleNurseryHalf() {
  // Survivor-volume controller: grow when more than a quarter of the
  // active half survived the minor collection that just ended (promotion
  // pressure), shrink when less than a sixteenth did.  Only the idle
  // (empty) survivor half is resized; after the next swap the controller
  // sees the other half, so both converge within two minors.  The floor
  // is the configured --nursery-bytes size, the cap a quarter of the
  // current semispace.
  size_t Active = NurFromHalfBytes;
  size_t Survivors = NurAlloc - NurFromBase;
  size_t Target = Active;
  if (Survivors * 4 > Active)
    Target = Active * 2;
  else if (Survivors * 16 < Active)
    Target = Active / 2;
  Target = (Target + 7) & ~size_t(7);
  size_t Cap = nurseryAutoCapBytes(SpaceBytes);
  if (Target < NurFloorBytes)
    Target = NurFloorBytes;
  if (Target > Cap)
    Target = Cap;
  if (Target == NurToHalfBytes)
    return;
  NurToBuf.reset(new uint8_t[Target]);
  NurToBase = reinterpret_cast<Word>(NurToBuf.get());
  NurToAlloc = NurToBase;
  NurToHalfBytes = Target;
  ++NurseryResizes;
  // The old-space reserve follows the larger half; AllocPtr may already
  // sit past a shrunken OldLimit, which bumpAllocate tolerates (the next
  // allocateOld simply fails into a full collection).
  OldLimit = FromBase + SpaceBytes - nurseryReserveBytes();
}

bool Heap::plausibleObject(Word P) const {
  bool InOldUsed = P >= FromBase && P < AllocPtr;
  bool InNurUsed = Gen && P >= NurFromBase && P < NurAlloc;
  if (!InOldUsed && !InNurUsed)
    return false;
  Word Base = InOldUsed ? FromBase : NurFromBase;
  if ((P - Base) % sizeof(Word) != 0)
    return false;
  Word H = headerOf(P);
  if (H & ForwardBit)
    return false;
  // The site field restores most of the entropy the desc-field mask gave
  // up: a random word only passes when both its descriptor index and its
  // site id are in range.
  uint32_t Site = headerSite(H);
  if (Site != NoSiteHdr && Site >= SiteCount)
    return false;
  return headerDesc(H) < Descs.size();
}
