//===- vm/Heap.h - Two-space heap with type descriptors ---------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap the collector compacts.  Objects carry a one-word header
/// holding their type descriptor index (Modula-3 requires descriptors in
/// heap objects — §2's requirement (i)/(ii)); during collection the header
/// is overlaid with a low-bit-tagged forwarding pointer.  Tidy pointers
/// point at the header.  Layout:
///
///     [header][payload words...]                 fixed-shape objects
///     [header][length][elements...]              open arrays
///
//===----------------------------------------------------------------------===//

#ifndef MGC_VM_HEAP_H
#define MGC_VM_HEAP_H

#include "ir/IR.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace mgc {
namespace vm {

using Word = uint64_t;

class Heap {
public:
  Heap(size_t SemispaceBytes, const std::vector<ir::TypeDesc> &Descs);

  /// Bump-allocates an object of descriptor \p DescIdx (\p Length elements
  /// for open arrays).  Returns 0 when the from-space is exhausted — the
  /// caller must collect and retry.  Payload words are zeroed (all-NIL).
  Word allocate(unsigned DescIdx, int64_t Length);

  /// Total words of an object, header included.
  size_t objectWords(Word Obj) const;

  const ir::TypeDesc &descOf(Word Obj) const;

  bool inFromSpace(Word P) const {
    return P >= FromBase && P < FromBase + SpaceBytes;
  }
  bool inToSpace(Word P) const {
    return P >= ToBase && P < ToBase + SpaceBytes;
  }

  size_t usedBytes() const { return AllocPtr - FromBase; }
  size_t capacityBytes() const { return SpaceBytes; }

  //===--- Collector interface ---------------------------------------------===

  /// Begins a collection: resets the to-space allocation pointer.
  void beginCollection() { ToAlloc = ToBase; }
  /// Copies \p Obj to to-space (or returns its forwarding pointer).
  Word forward(Word Obj);
  /// Cheney scan pointer management.
  Word scanStart() const { return ToBase; }
  Word toAlloc() const { return ToAlloc; }
  /// Ends a collection: swaps the spaces.
  void endCollection();

  /// Whether \p P looks like a valid object pointer (used by assertions
  /// and the conservative baseline collector).
  bool plausibleObject(Word P) const;

  uint64_t BytesAllocated = 0;
  uint64_t ObjectsAllocated = 0;

private:
  size_t SpaceBytes;
  std::unique_ptr<uint8_t[]> Space0, Space1;
  Word FromBase, ToBase;
  Word AllocPtr; ///< Bump pointer in from-space.
  Word ToAlloc;  ///< Bump pointer in to-space during collection.
  const std::vector<ir::TypeDesc> &Descs;
};

} // namespace vm
} // namespace mgc

#endif // MGC_VM_HEAP_H
