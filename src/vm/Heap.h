//===- vm/Heap.h - Two-space heap with type descriptors ---------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap the collector compacts.  Objects carry a one-word header
/// holding their type descriptor index (Modula-3 requires descriptors in
/// heap objects — §2's requirement (i)/(ii)); during collection the header
/// is overlaid with a low-bit-tagged forwarding pointer.  Tidy pointers
/// point at the header.  Layout:
///
///     [header][payload words...]                 fixed-shape objects
///     [header][length][elements...]              open arrays
///
/// Header word: bit 0 is the forwarding tag; bits 1..16 hold the object's
/// age — the number of collections it has been evacuated through,
/// saturating, consulted both by the generational promotion policy and by
/// the heap-snapshot age attribution; bits 17..40 hold the descriptor
/// index; bits 41..63 hold the allocation-site id (gcmaps/SiteTable.h;
/// all-ones = unattributed).  Site and age ride the header through every
/// copy, so per-object attribution survives collections with no side
/// table and no cost beyond the copy itself (the ≤2%-of-collection-time
/// gate in bench/snapshot_overhead.cpp).
///
/// The heap runs in one of two modes:
///
///  - Two-space (default): a classic pair of semispaces; every collection
///    is a full Cheney copy from from-space to to-space.
///  - Generational: a bump-allocated nursery (itself split in two halves
///    so minor collections can copy survivors within it) in front of the
///    two "old" semispaces.  Minor collections evacuate live nursery
///    objects into the other nursery half, promoting them into old space
///    once they have survived PromoteAge copies; a remembered set of
///    old-space slots that may hold young pointers (maintained by the
///    compiler-emitted write barriers) supplies the extra roots.  Full
///    collections fall back to the Cheney copy over nursery + old space
///    and clear the remembered set.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_VM_HEAP_H
#define MGC_VM_HEAP_H

#include "ir/IR.h"

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_set>
#include <vector>

namespace mgc {
namespace vm {

using Word = uint64_t;

/// Heap-sizing policy (mgc --heap-growth / --heap-max / --nursery-auto).
/// Every decision is byte-count driven, so sizing is identical across
/// dispatch tiers and --gc-threads counts.
struct HeapPolicy {
  /// Occupancy percentage of the semispace at which a full collection
  /// doubles it (growth-only; capped by MaxBytes).  0 = fixed-size heap.
  unsigned GrowthPct = 0;
  /// Semispace growth cap.  0 = 8x the initial size when GrowthPct is
  /// set; ignored (pinned to the initial size) otherwise.
  size_t MaxBytes = 0;
  /// Generational mode: resize the nursery from minor-collection survivor
  /// volume, between the configured size (floor) and a quarter semispace.
  bool NurseryAuto = false;
};

class Heap {
public:
  /// Returned by allocationBytes when the size computation overflows.
  static constexpr size_t BadAlloc = std::numeric_limits<size_t>::max();

  /// Header encoding (shared with the collector's scan loop).
  static constexpr Word ForwardBit = 1;
  static constexpr unsigned AgeShift = 1;
  static constexpr Word AgeMask = 0xFFFF; ///< 16 bits: evacuation count.
  static constexpr unsigned DescShift = 17;
  static constexpr Word DescMask = 0xFFFFFF; ///< 24 bits: descriptor index.
  static constexpr unsigned SiteShift = 41;
  static constexpr Word SiteMask = 0x7FFFFF; ///< 23 bits: allocation site.
  /// The site field's all-ones pattern: no attribution (no site table, or
  /// an allocation instruction predating site linking).  The obs layer's
  /// obs::NoSite (32-bit all-ones) maps to this on the way in and back out.
  static constexpr uint32_t NoSiteHdr = static_cast<uint32_t>(SiteMask);
  /// Survivals of a minor collection before promotion to old space.
  static constexpr unsigned PromoteAge = 2;

  static size_t headerDesc(Word H) {
    return static_cast<size_t>((H >> DescShift) & DescMask);
  }
  static unsigned headerAge(Word H) {
    return static_cast<unsigned>((H >> AgeShift) & AgeMask);
  }
  static uint32_t headerSite(Word H) {
    return static_cast<uint32_t>((H >> SiteShift) & SiteMask);
  }
  static Word makeHeader(size_t DescIdx, unsigned Age,
                         uint32_t Site = NoSiteHdr) {
    return (static_cast<Word>(Site) << SiteShift) |
           (static_cast<Word>(DescIdx) << DescShift) |
           (static_cast<Word>(Age) << AgeShift);
  }
  /// \p H with its age bumped by one evacuation (saturating): the whole of
  /// attribution maintenance during a collection.
  static Word agedHeader(Word H) {
    return headerAge(H) == AgeMask ? H : H + (Word(1) << AgeShift);
  }
  /// Narrows a 32-bit site id (e.g. codegen's NoAllocSite) to the header
  /// field: anything that does not fit reads as unattributed.
  static uint32_t clampSite(uint32_t Site) {
    return Site >= NoSiteHdr ? NoSiteHdr : Site;
  }

  /// \p NurseryBytes is the size of *each* nursery half; 0 selects a
  /// default proportional to the semispace size.  Ignored unless
  /// \p Generational.  Under \p P.NurseryAuto the resolved value becomes
  /// the auto-sizing floor.
  Heap(size_t SemispaceBytes, const std::vector<ir::TypeDesc> &Descs,
       bool Generational = false, size_t NurseryBytes = 0,
       HeapPolicy P = HeapPolicy());

  bool generational() const { return Gen; }
  const HeapPolicy &policy() const { return Policy; }

  /// Exact bytes an allocation of descriptor \p DescIdx (\p Length
  /// elements for open arrays) needs, header included, or BadAlloc when
  /// the computation overflows size_t.
  size_t allocationBytes(unsigned DescIdx, int64_t Length) const;

  /// Largest single object this heap can ever hold; requests above it can
  /// never succeed, no matter how much is collected *or how much the heap
  /// grows* — under a growth policy the bound is the cap, so the oversize
  /// diagnostic stays deterministic under every policy.
  size_t maxObjectBytes() const {
    size_t Cap = Policy.GrowthPct ? Policy.MaxBytes : SpaceBytes;
    if (!Gen)
      return Cap;
    // The old-space reserve at full growth: the fixed half size, or the
    // auto-sizing cap relative to the capped semispace.
    size_t Reserve = Policy.NurseryAuto ? nurseryAutoCapBytes(Cap)
                                        : nurseryReserveBytes();
    return Cap - Reserve;
  }

  /// Arms one demand doubling for the next full collection (the VM's
  /// allocation-retry escalation).  False when the policy forbids growth
  /// or the semispace is already at its cap.
  bool requestGrowth() {
    if (!Policy.GrowthPct || SpaceBytes >= Policy.MaxBytes)
      return false;
    GrowRequested = true;
    return true;
  }

  /// Bump-allocates an object of descriptor \p DescIdx (\p Length elements
  /// for open arrays).  Returns 0 when the allocation space (nursery in
  /// generational mode, from-space otherwise) is exhausted or the size
  /// computation overflows — the caller must collect and retry.  Payload
  /// words are zeroed (all-NIL).  \p Site is stamped into the header (the
  /// snapshot/profiling attribution; NoSiteHdr = unattributed).
  Word allocate(unsigned DescIdx, int64_t Length, uint32_t Site = NoSiteHdr);

  /// Generational mode: allocates directly in old space (objects too large
  /// for the nursery).  Returns 0 when old space is exhausted.
  Word allocateOld(unsigned DescIdx, int64_t Length,
                   uint32_t Site = NoSiteHdr);

  /// Total words of an object, header included.
  size_t objectWords(Word Obj) const;

  const ir::TypeDesc &descOf(Word Obj) const;

  /// Any space new objects or survivors currently live in (old from-space
  /// and, in generational mode, the active nursery half).
  bool inFromSpace(Word P) const {
    return (P >= FromBase && P < FromBase + SpaceBytes) ||
           (Gen && inNursery(P));
  }
  bool inToSpace(Word P) const {
    return P >= ToBase && P < ToBase + ToSpaceBytes;
  }

  //===--- Generational queries --------------------------------------------===

  /// The active (allocation) nursery half.
  bool inNursery(Word P) const {
    return Gen && P >= NurFromBase && P < NurFromBase + NurFromHalfBytes;
  }
  /// The survivor half filled during a minor collection.
  bool inNurseryTo(Word P) const {
    return Gen && P >= NurToBase && P < NurToBase + NurToHalfBytes;
  }
  /// The allocated portion of old space.
  bool inOld(Word P) const {
    return Gen && P >= FromBase && P < AllocPtr;
  }

  /// Space base addresses, for address→(space, offset) normalization in
  /// heap snapshots (offsets are deterministic across runs; addresses are
  /// not).
  Word fromSpaceBase() const { return FromBase; }
  Word nurseryBase() const { return NurFromBase; }

  size_t usedBytes() const {
    size_t Used = AllocPtr - FromBase;
    if (Gen)
      Used += NurAlloc - NurFromBase;
    return Used;
  }
  size_t capacityBytes() const { return SpaceBytes; }
  size_t nurseryCapacityBytes() const { return NurFromHalfBytes; }
  size_t nurseryUsedBytes() const { return Gen ? NurAlloc - NurFromBase : 0; }
  size_t oldUsedBytes() const { return AllocPtr - FromBase; }

  /// The old-space reserve: room for a full nursery of promotions.  With
  /// auto-sizing the halves can differ transiently; the reserve covers the
  /// larger one.
  size_t nurseryReserveBytes() const {
    return NurFromHalfBytes > NurToHalfBytes ? NurFromHalfBytes
                                             : NurToHalfBytes;
  }
  /// The largest half size nursery auto-sizing may reach over a semispace
  /// of \p Cap bytes (the floor when a quarter semispace is below it).
  size_t nurseryAutoCapBytes(size_t Cap) const {
    size_t Quarter = (Cap / 4) & ~size_t(7);
    return Quarter > NurFloorBytes ? Quarter : NurFloorBytes;
  }

  /// Whether a minor collection is guaranteed room both to promote every
  /// surviving nursery object into old space (worst case: all of them)
  /// and to fit them all in the survivor half.
  bool minorHeadroomOk() const {
    size_t NurUsed = NurAlloc - NurFromBase;
    return (AllocPtr - FromBase) + NurUsed <=
               SpaceBytes - nurseryReserveBytes() &&
           NurUsed <= NurToHalfBytes;
  }

  //===--- Write barrier / remembered set ----------------------------------===

  /// The compiler-emitted barrier: records \p SlotAddr in the remembered
  /// set when it is an old-space slot now holding a nursery pointer.
  /// Returns true when a new entry was recorded.
  bool writeBarrier(Word SlotAddr) {
    if (!inOld(SlotAddr))
      return false;
    Word V = *reinterpret_cast<const Word *>(SlotAddr);
    if (!inNursery(V))
      return false;
    return RemSet.insert(SlotAddr).second;
  }

  std::unordered_set<Word> &remSet() { return RemSet; }
  const std::unordered_set<Word> &remSet() const { return RemSet; }

  uint64_t ObjectsPromoted = 0;
  uint64_t BytesPromoted = 0;
  /// Semispace doublings performed (growth policy).
  uint64_t HeapGrowths = 0;
  /// Nursery half resizes performed (auto-sizing policy).
  uint64_t NurseryResizes = 0;

  //===--- Full-collection (Cheney) interface ------------------------------===

  /// Begins a full collection: resets the to-space allocation pointer,
  /// first growing the to-space when the sizing policy triggers (occupancy
  /// above GrowthPct, or an armed demand growth).
  void beginCollection();
  /// Copies \p Obj to to-space (or returns its forwarding pointer).  In
  /// generational mode the source may be either old from-space or the
  /// nursery; everything lands in old to-space.
  Word forward(Word Obj);
  /// Thread-safe variant of forward() for the parallel full collection
  /// (--gc-threads > 1).  Claim-then-copy: the header word is CASed to a
  /// bare ForwardBit ("claimed, copy in flight") before any bytes move, so
  /// exactly one worker copies each object; losers spin until the winner
  /// publishes the forwarding pointer.  To-space is carved by an exact-fit
  /// atomic bump, so the to-space image has no holes and every linear heap
  /// walk (forEachObject, plausibleObject, snapshots) stays valid.  Sets
  /// \p Copied iff this call performed the copy — the caller that copied
  /// owns scanning the new object exactly once.  \p BytesOut receives the
  /// object's size when copied (for per-worker stat accounting).
  Word forwardParallel(Word Obj, bool &Copied, size_t &BytesOut);
  /// Cheney scan pointer management.
  Word scanStart() const { return ToBase; }
  Word toAlloc() const { return ToAlloc; }
  /// Ends a full collection: swaps the old spaces; generational mode also
  /// empties the nursery and clears the remembered set.
  void endCollection();

  //===--- Minor-collection interface (generational mode) ------------------===

  /// Begins a minor collection: resets the survivor half's bump pointer
  /// and records where promoted objects will start in old space.
  void beginMinorCollection() {
    NurToAlloc = NurToBase;
    MinorOldScanStart = AllocPtr;
  }
  /// Copies nursery object \p Obj into the survivor half — or into old
  /// space once it has survived PromoteAge minor collections — and leaves
  /// a forwarding pointer.  Asserts headroom: callers must check
  /// minorHeadroomOk() before starting a minor collection.
  Word forwardYoung(Word Obj);
  /// Survivor-half scan pointers.
  Word nurScanStart() const { return NurToBase; }
  Word nurToAlloc() const { return NurToAlloc; }
  /// Promoted-region scan pointers (grows during the minor scan).
  Word oldScanStart() const { return MinorOldScanStart; }
  Word oldAllocPtr() const { return AllocPtr; }
  /// Ends a minor collection: swaps the nursery halves.
  void endMinorCollection();

  /// Whether \p P looks like a valid object pointer (used by assertions
  /// and the conservative baseline collector).
  bool plausibleObject(Word P) const;

  /// Number of allocation sites in the running program, for the header
  /// site-field plausibility check (a valid header's site is either
  /// NoSiteHdr or below this).  The VM sets it from the program's site
  /// table at construction.
  void setSiteCount(uint32_t N) { SiteCount = N; }

  /// Applies \p Fn to the tidy pointer of every allocated object, in
  /// address order: the old/from space first, then (generational mode) the
  /// active nursery half.  Callers own the liveness caveat: between
  /// collections these regions also hold objects that have died since the
  /// last collection swept their space.  Must not run mid-collection
  /// (headers would carry forwarding overlays).
  template <typename FnT> void forEachObject(FnT Fn) const {
    for (Word P = FromBase; P < AllocPtr; P += objectWords(P) * sizeof(Word))
      Fn(P);
    if (Gen)
      for (Word P = NurFromBase; P < NurAlloc;
           P += objectWords(P) * sizeof(Word))
        Fn(P);
  }

  uint64_t BytesAllocated = 0;
  uint64_t ObjectsAllocated = 0;

private:
  Word bumpAllocate(Word &Bump, Word Limit, unsigned DescIdx, int64_t Length,
                    uint32_t Site);

  /// Auto-sizing controller: retargets the (empty) idle nursery half from
  /// the survivor volume of the minor collection that just ended.
  void resizeIdleNurseryHalf();

  size_t SpaceBytes;       ///< From-space size (grows under the policy).
  size_t ToSpaceBytes = 0; ///< To-space size (== SpaceBytes outside growth).
  HeapPolicy Policy;
  bool GrowRequested = false; ///< Demand growth armed (requestGrowth).
  uint32_t SiteCount = 0;
  bool Gen;
  size_t NurFromHalfBytes = 0; ///< Active nursery half size.
  size_t NurToHalfBytes = 0;   ///< Survivor nursery half size.
  size_t NurFloorBytes = 0;    ///< Auto-sizing floor (resolved ctor size).
  /// The semispace buffers, swapped with the bases at endCollection so the
  /// growth path can reallocate exactly the idle one.
  std::unique_ptr<uint8_t[]> FromSpace, ToSpace;
  std::unique_ptr<uint8_t[]> NurFromBuf, NurToBuf;
  Word FromBase, ToBase;
  Word AllocPtr; ///< Bump pointer in old from-space.
  Word ToAlloc;  ///< Bump pointer in old to-space during collection.
  /// Old-space allocation limit: in generational mode the last nursery's
  /// worth of old space is reserved so a full collection's to-space copy
  /// (old live + nursery live) always fits.
  Word OldLimit;
  Word NurFromBase = 0, NurToBase = 0;
  Word NurAlloc = 0;   ///< Bump pointer in the active nursery half.
  Word NurToAlloc = 0; ///< Bump pointer in the survivor half (minor gc).
  Word MinorOldScanStart = 0;
  /// Old-space slot addresses that may hold nursery pointers.  Slots are
  /// stable between full collections (old objects only move then), which
  /// is what makes raw addresses a sound representation.
  std::unordered_set<Word> RemSet;
  const std::vector<ir::TypeDesc> &Descs;
};

} // namespace vm
} // namespace mgc

#endif // MGC_VM_HEAP_H
