//===- vm/Threaded.h - Pre-decoded instruction stream -----------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM's second execution tier: at load time the `MInstr` stream is
/// translated, one-to-one, into a pre-decoded direct-threaded form.  Each
/// `DInstr` carries
///
///   - a handler address (a GCC/Clang `&&label` inside the computed-goto
///     executor; null in portable builds, which fall back to the switch
///     loop), and
///   - fully resolved operands: every non-memory operand reads/writes as
///     `Bases[O.Base][O.Index]`, where `Bases` is a 5-entry table of word
///     pointers (registers, FP frame, AP args, globals, and a constant
///     pool holding the immediates) that the executor refreshes only when
///     FP/AP change.  Memory operands add a displacement and one
///     indirection on top of the same base/index pair.  The hot path
///     never switches on `Operand::Kind`.
///
/// The translation is deliberately *index-preserving*: `DInstr` k derives
/// from `MInstr` k, so `ThreadContext::PC`, gc-point ordinals, SuspendPCs,
/// `FuncMapIndex` decode, snapshots, the rendezvous loop, `InstrBudget`
/// and `VMStats::Instrs` are bit-identical across dispatch tiers — the
/// threaded-index ↔ MInstr-PC mapping is the identity, which is what lets
/// every gc-map keyed by a return PC keep working unchanged.  Both tiers
/// share this representation: the reference switch interpreter (`VM::step`)
/// executes the same resolved operands, so the only difference between the
/// tiers is the dispatch mechanism itself.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_VM_THREADED_H
#define MGC_VM_THREADED_H

#include "codegen/Machine.h"
#include "vm/Heap.h"

#include <vector>

/// Direct threading needs GNU computed goto (`&&label`).  Portable builds
/// compile the same pre-decoded stream but dispatch it through the switch
/// loop (VM::runQuantumSwitch).
#if defined(__GNUC__) || defined(__clang__)
#define MGC_COMPUTED_GOTO 1
#else
#define MGC_COMPUTED_GOTO 0
#endif

namespace mgc {
namespace vm {

struct Program;

/// Which execution engine runs the mutator.  Both produce bit-identical
/// observable state (output, VMStats, gc-point PCs, root/derived sets).
enum class DispatchTier : uint8_t {
  Switch,   ///< Reference interpreter: per-instruction switch on MOp.
  Threaded, ///< Pre-decoded stream, computed-goto handlers.
};

inline const char *dispatchTierName(DispatchTier T) {
  return T == DispatchTier::Threaded ? "threaded" : "switch";
}

/// Frame poison: new frames are filled with this recognizable non-pointer
/// pattern so over-approximating tables crash the collector loudly.
constexpr Word FramePoison = 0xDEADBEEFDEADBEEFull;
/// Return-PC sentinel marking the root frame of a thread.
constexpr uint32_t SentinelRetPC = 0xFFFFFFFFu;
/// Addresses below this are treated as NIL dereferences.
constexpr Word NilGuard = 4096;

/// Base-table indices for resolved operands.
enum : uint8_t {
  DBaseReg = 0,    ///< ThreadContext::R
  DBaseFP = 1,     ///< Stack + FP
  DBaseAP = 2,     ///< Stack + AP
  DBaseGlobal = 3, ///< VM::Globals
  DBaseConst = 4,  ///< DecodedProgram::ConstPool (immediates; slot 0 is 0)
  DNumBases = 5,
};

/// A resolved operand: one indexed load (or store) off a base pointer,
/// plus an optional memory indirection.  `None` operands decode to the
/// constant pool's zero slot so a stray access is harmless.
struct DOperand {
  int64_t Disp = 0;          ///< Memory forms: byte displacement.
  int32_t Index = 0;         ///< Word index from the base.
  uint8_t Base = DBaseConst; ///< DBase* selector.
  bool Mem = false;          ///< Indirect through the base value.
};

/// One pre-decoded instruction.  Index-parallel to Program::Code.
struct DInstr {
  const void *Handler = nullptr; ///< Computed-goto label (threaded tier).
  DOperand D, A, B;
  int64_t AuxImm = 0; ///< AddrSlot/AddrGlobal: A.Imm; WriteBarrier: B.Imm.
  int32_t Index = -1; ///< Callee / descriptor / intrinsic / trap code.
  uint32_t Target0 = 0, Target1 = 0;
  uint32_t Site = NoAllocSite;
  /// Call: the caller's FrameWords (replaces the funcOfPC binary search).
  uint32_t CallerFrameWords = 0;
  /// Ret: index of the containing function (for SavedRegs restore).
  uint32_t FuncIdx = 0;
  uint16_t ArgBase = 0;
  MOp Op = MOp::Trap;
  /// MInstr::isGcPoint() of the source instruction, pre-decoded so the
  /// sampling profiler's due-check needs no re-derivation on hot paths.
  bool IsGcPoint = false;
};

/// The pre-decoded program: instruction records plus the immediate pool
/// the DBaseConst operands index into.
struct DecodedProgram {
  std::vector<DInstr> Code;   ///< Parallel to Program::Code.
  std::vector<Word> ConstPool; ///< Slot 0 is always 0 (None operands).
};

/// Translates \p P.  Handler pointers are left null; the VM installs them
/// (per dispatch tier) after construction.
DecodedProgram decodeProgram(const Program &P);

} // namespace vm
} // namespace mgc

#endif // MGC_VM_THREADED_H
