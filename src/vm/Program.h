//===- vm/Program.h - Linked executable program -----------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linked output of the compiler: flat code, function metadata, heap
/// type descriptors, the global area layout, and the per-function gc maps
/// (plus the statistics the benchmarks report).
///
//===----------------------------------------------------------------------===//

#ifndef MGC_VM_PROGRAM_H
#define MGC_VM_PROGRAM_H

#include "codegen/Machine.h"
#include "codegen/Serialize.h"
#include "gcmaps/GcTables.h"
#include "gcmaps/MapIndex.h"
#include "gcmaps/SiteTable.h"
#include "ir/IR.h"

#include <cassert>
#include <memory>
#include <vector>

namespace mgc {
namespace vm {

struct Program {
  std::string Name;
  std::vector<MInstr> Code; ///< Flat; targets are global indices.
  std::vector<CompiledFunction> Funcs; ///< Sorted by EntryIndex.
  unsigned MainFunc = 0;
  std::vector<ir::TypeDesc> TypeDescs;
  unsigned GlobalAreaWords = 0;
  std::vector<unsigned> GlobalPtrWords;

  /// Per-function gc maps (RetPCs are global instruction indices); empty
  /// blobs when compiled without gc tables.
  std::vector<gcmaps::EncodedFuncMaps> Maps;
  /// Load-time decode acceleration: one side index per function, built at
  /// install time (buildMapIndexes).  Parallel to Maps; empty until built.
  std::vector<gcmaps::FuncMapIndex> MapIndexes;
  gcmaps::SchemeSizes Sizes;
  gcmaps::TableStats Stats;

  /// The allocation-site table (observability): deduplicated sites plus the
  /// pc -> site attributions, installed from the decoded blob so every
  /// compile exercises the codec.  Sizes.SiteTableBytes holds the encoded
  /// size; each NewObj/NewArr's MInstr::Site indexes SiteTab.Sites.
  gcmaps::SiteTable SiteTab;

  codegen::CodeImage Image;

  // Compilation statistics for the §6.2 experiment.
  unsigned CiscFoldsApplied = 0;
  unsigned CiscFoldsBlocked = 0;
  unsigned LoopPolls = 0;
  unsigned GcPointsElided = 0;
  unsigned PathVars = 0;
  unsigned PathAssigns = 0;
  unsigned WriteBarriersEmitted = 0;

  /// Builds the per-function decode indexes (idempotent).  Called by the
  /// driver at install time; cheap — one forward walk per blob.
  void buildMapIndexes() {
    if (MapIndexes.size() == Maps.size())
      return;
    MapIndexes.clear();
    MapIndexes.reserve(Maps.size());
    for (const gcmaps::EncodedFuncMaps &M : Maps)
      MapIndexes.push_back(gcmaps::buildFuncMapIndex(M));
  }

  /// The function containing global instruction index \p PC.
  unsigned funcOfPC(uint32_t PC) const {
    assert(!Funcs.empty());
    unsigned Lo = 0, Hi = static_cast<unsigned>(Funcs.size());
    while (Hi - Lo > 1) {
      unsigned Mid = (Lo + Hi) / 2;
      if (Funcs[Mid].EntryIndex <= PC)
        Lo = Mid;
      else
        Hi = Mid;
    }
    return Lo;
  }

  size_t codeSizeBytes() const { return Image.Bytes.size(); }
};

} // namespace vm
} // namespace mgc

#endif // MGC_VM_PROGRAM_H
