//===- vm/VM.h - The abstract machine interpreter ---------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiled programs.  The machine is deliberately VAX-like (see
/// codegen/Machine.h).  Several properties matter to the reproduction:
///
///  - Values are raw 64-bit words; nothing is tagged.  Heap pointers are
///    real host addresses into the semispaces, so a collection genuinely
///    moves objects and stale pointers genuinely break — only the
///    compile-time tables make precise collection possible.
///  - New frames are poisoned with a recognizable non-pointer pattern, so
///    a table that over-approximates liveness crashes the collector
///    instead of silently working.
///  - Threads are pre-emptible at any instruction (a round-robin quantum),
///    reproducing §5.3: when one thread triggers a collection the others
///    are resumed until each reaches a gc-point; loop polls bound that
///    wait.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_VM_VM_H
#define MGC_VM_VM_H

#include "vm/Heap.h"
#include "vm/Program.h"
#include "vm/Threaded.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mgc {
namespace obs {
class Profiler;
class Tracer;
} // namespace obs
namespace vm {

struct VMOptions {
  size_t HeapBytes = 4u << 20;
  size_t StackWords = 1u << 16;
  /// Run the heap in generational mode: nursery allocation, minor
  /// collections driven by the remembered set, write barriers active.
  /// Programs must be compiled with write barriers (CompilerOptions::
  /// WriteBarriers) for this to be sound.
  bool GenGc = false;
  /// Size of each nursery half in generational mode (0 = auto).
  size_t NurseryBytes = 0;
  /// Collect before every allocation (stress testing).
  bool GcStress = false;
  /// Thread scheduler quantum in instructions (multi-threaded runs).
  uint64_t Quantum = 61;
  /// Upper bound on instructions a thread may run while the collector
  /// waits for it to reach a gc-point; exceeding it is a runtime error
  /// (demonstrating why §5.3 requires loop polls).
  uint64_t RendezvousBudget = 2'000'000;
  /// Deterministic whole-run instruction limit (0 = unlimited); exceeding
  /// it is a runtime error.  The differential fuzzer sets this so that a
  /// non-terminating reducer candidate fails identically everywhere
  /// instead of hanging the oracle.
  uint64_t InstrBudget = 0;
  /// Execution engine (vm/Threaded.h).  Threaded is the default; builds
  /// without computed goto silently execute Switch (activeDispatch()
  /// reports what actually ran).  Both tiers are observably identical.
  DispatchTier Dispatch = DispatchTier::Threaded;
  /// Heap-sizing policy (vm/Heap.h): occupancy percentage at which a full
  /// collection doubles the semispace (0 = fixed-size heap), the semispace
  /// growth cap (0 = 8x the initial size when growth is on), and nursery
  /// auto-sizing from survivor volume (generational mode).
  unsigned HeapGrowthPct = 0;
  size_t HeapMaxBytes = 0;
  bool NurseryAuto = false;
};

struct VMStats {
  uint64_t Instrs = 0;
  uint64_t Collections = 0;      ///< All collections (minor + full).
  uint64_t MinorCollections = 0; ///< Generational mode: nursery-only.
  uint64_t FramesTraced = 0;
  uint64_t BytesCopied = 0;
  uint64_t ObjectsCopied = 0; ///< Objects evacuated (minor + full).
  uint64_t StackTraceNanos = 0; ///< Table decode + root enumeration time.
  uint64_t GcNanos = 0;         ///< Total collection time.
  uint64_t MinorGcNanos = 0;    ///< Portion of GcNanos in minor collections.
  // Generational-mode counters.
  uint64_t WriteBarriersRun = 0; ///< Barrier instructions executed.
  uint64_t RemSetRecords = 0;    ///< Barrier hits that recorded a new slot.
  uint64_t RemSetPeak = 0;       ///< Largest remembered set seen at a gc.
  uint64_t DerivedAdjusted = 0; ///< Derived-value un/re-derivations.
  uint64_t RootsTraced = 0;
  // Decode acceleration counters (zero when the reference decoder is in
  // use; see gc::CollectorOptions).
  uint64_t DecodeCacheHits = 0;   ///< Decoded-point cache hits.
  uint64_t DecodeCacheMisses = 0; ///< Decoded-point cache misses.
  uint64_t DecodeBytesSkipped = 0; ///< Blob bytes the index let us skip.
  /// Instruction count at the start of the current collection's stack
  /// trace, for the §6.3 "instructions per frame" figure.
  uint64_t StackTraceStartInstrs = 0;
  /// Instructions the *other* threads executed during rendezvous, running
  /// forward to their next gc-point (§5.3; bounded by RendezvousBudget).
  uint64_t RendezvousSteps = 0;
  /// Server-workload request boundaries retired (RtFn::ReqDone).
  uint64_t Requests = 0;
};

/// One thread of execution.
struct ThreadContext {
  std::unique_ptr<Word[]> Stack;
  size_t StackWords = 0;
  Word R[NumRegs] = {};
  uint32_t PC = 0;
  uint32_t FP = 0;
  uint32_t AP = 0;
  bool Live = false;
  bool Finished = false;

  /// Sampling-profiler state (obs/Profile.h): the interned prefix-tree id
  /// of this thread's current call chain, and the shadow stack of parent
  /// ids that makes Ret pops O(1) and correct even when the profiler's
  /// node table is capped.  Maintained only while an enabled Profiler is
  /// attached; plain data so the vm stays link-independent of obs.
  uint32_t ProfNode = 0;
  uint32_t ProfDepth = 0;
  std::vector<uint32_t> ProfShadow;
};

/// What the VM is asking the installed collector for.
enum class GcKind : uint8_t {
  Full,  ///< Evacuate everything (the two-space Cheney path).
  Minor, ///< Generational mode: nursery only, extra roots from the remset.
};

class VM {
public:
  VM(const Program &Prog, VMOptions Opts = VMOptions());

  /// Runs main to completion (plus any spawned threads).  Returns true on
  /// success; on a trap or runtime error, Error is set.
  bool run();

  /// Spawns a thread executing parameterless function \p FuncIdx; threads
  /// are scheduled round-robin with instruction-level pre-emption once run()
  /// starts.  Call before run().
  void spawnThread(unsigned FuncIdx);

  /// Forces a collection (testing hook; must not be called mid-run).
  void collectNow();

  /// The dispatch tier that actually executes: Opts.Dispatch, demoted to
  /// Switch when the build has no computed goto.
  DispatchTier activeDispatch() const {
#if MGC_COMPUTED_GOTO
    return Opts.Dispatch;
#else
    return DispatchTier::Switch;
#endif
  }

  //===--- State exposed to the collector ----------------------------------===

  const Program &Prog;
  VMOptions Opts;
  Heap TheHeap;
  std::vector<Word> Globals;
  std::vector<std::unique_ptr<ThreadContext>> Threads;
  unsigned CurThread = 0;

  /// Per-thread table pc: the gc-point return address at which each live
  /// thread is suspended during a collection.
  std::vector<uint32_t> SuspendPCs;

  /// The collection kind the VM requested of the installed collector
  /// (valid while Collector runs).
  GcKind RequestedGc = GcKind::Full;

  std::string Out;   ///< PutInt/PutChar/PutLn output.
  std::string Error; ///< Set on trap/runtime error.
  VMStats Stats;

  /// The installed collector: invoked with the VM; every live thread is
  /// suspended at a gc-point (SuspendPCs).  Installed by the gc library.
  std::function<void(VM &)> Collector;

  /// Optional observability tracer (obs/Trace.h): null in ordinary runs.
  /// When attached, the allocation path pays one extra branch; when also
  /// enabled, allocations and collections are recorded.  Not owned.
  obs::Tracer *Tracer = nullptr;

  /// Optional sampling profiler (obs/Profile.h): null in ordinary runs.
  /// When attached, Call/Ret and every gc-point pay one predicted branch;
  /// when also enabled, call chains are interned and samples fire at
  /// gc-point granularity on the retired-instruction clock — at the same
  /// instruction ordinals under both dispatch tiers.  Not owned.
  obs::Profiler *Profiler = nullptr;

  /// Invoked after each successful collection, once the collector has
  /// returned and the event is committed but before the mutator resumes:
  /// every live thread is still suspended at a gc-point (SuspendPCs valid)
  /// and the heap is freshly compacted — the safe moment to capture a heap
  /// snapshot (mgc --snapshot-every).  Must not allocate from this heap.
  std::function<void(VM &)> PostGcHook;

  /// Site id of the allocation instruction currently in allocate() — the
  /// trigger attribution for collections it causes.  NoAllocSite between
  /// allocations (so explicit GcCollect collections carry no site).
  uint32_t CurAllocSite = NoAllocSite;

  /// One completed request, as observed at its ReqDone() marker.  Instrs
  /// is the virtual-time service demand (instructions retired since the
  /// previous marker, all threads); GcNanos/Collections are the collection
  /// work attributed to that window.
  struct ReqSample {
    uint64_t Seq = 0;         ///< 1-based request ordinal.
    uint64_t Instrs = 0;      ///< Service demand in instructions.
    uint64_t GcNanos = 0;     ///< Rendezvous + collection nanos in window.
    uint64_t Collections = 0; ///< Collections (minor + full) in window.
  };

  /// Invoked at every ReqDone() marker, from the executing thread with the
  /// instruction counters synced (both dispatch tiers).  The heap is in a
  /// normal mutator state — safe for globals-only snapshots, not for stack
  /// walks.  Must not allocate from this heap.
  std::function<void(VM &, const ReqSample &)> RequestHook;

  /// The pre-decoded instruction stream (vm/Threaded.h), index-parallel
  /// to Prog.Code.  Both dispatch tiers execute from it.
  DecodedProgram DProg;

private:
  ThreadContext &ctx() { return *Threads[CurThread]; }

  /// Resolved-operand access (vm/Threaded.h): one indexed load/store off
  /// the per-thread base table, no Operand::Kind switch.  A failing
  /// memory read yields 0 with Error set; a failing write is dropped —
  /// exactly the reference readOperand/writeOperand semantics.
  Word readD(const DOperand &O, Word *const *Bases);
  void writeD(const DOperand &O, Word *const *Bases, Word V);

  /// Executes one instruction of thread \p T.  Returns false when the
  /// thread finished or an error occurred.
  bool step(ThreadContext &T);

  /// One scheduler quantum (at most \p Max instructions) of thread \p T
  /// under the reference switch dispatch.
  void runQuantumSwitch(ThreadContext &T, uint64_t Max);

  /// The same quantum under computed-goto dispatch (vm/Threaded.cpp);
  /// falls back to runQuantumSwitch in portable builds.
  void runQuantumThreaded(ThreadContext &T, uint64_t Max);

  /// The computed-goto executor.  With \p LabelsOut set it only exports
  /// the handler-label table (indexed by MOp) and runs nothing; otherwise
  /// it executes up to \p Max instructions of \p T.
  bool execThreaded(ThreadContext *T, uint64_t Max,
                    const void *const **LabelsOut);

  /// Fills DProg's handler pointers for the active tier (no-op when the
  /// switch tier runs).
  void installHandlers();

  /// Runs the rendezvous protocol and the collector; \p TriggerRetPC is the
  /// gc-point of the triggering thread.
  bool collect(uint32_t TriggerRetPC, GcKind Kind = GcKind::Full);

  /// One per-thread handshake of the §5.3 rendezvous: steps thread \p TI
  /// forward until it is about to execute a gc-point instruction (or
  /// finishes), then publishes its table pc in SuspendPCs[TI].  Returns
  /// false — with a deterministic diagnostic naming the thread, budget,
  /// and pc — when the thread exhausts Opts.RendezvousBudget without
  /// reaching a gc-point, or when stepping it hits a runtime error.
  bool handshakeThread(size_t TI);

  Word allocate(unsigned DescIdx, int64_t Length, uint32_t RetPC);

  /// Retires one ReqDone() marker: accounts the request window against the
  /// current counters, records it with the tracer, and runs RequestHook.
  /// Callers must have Stats.Instrs synced (threaded tier: MGC_SYNC).
  void finishRequest();

  bool fail(const std::string &Msg);

  bool InCollect = false;

  /// ReqDone bookkeeping: counter marks at the previous request boundary
  /// and the collection nanos accumulated since (fed by collect()).
  uint64_t ReqMarkInstrs = 0;
  uint64_t ReqMarkCollections = 0;
  uint64_t ReqGcNanosAccum = 0;
};

inline Word VM::readD(const DOperand &O, Word *const *Bases) {
  Word V = Bases[O.Base][O.Index];
  if (!O.Mem)
    return V;
  Word Addr = V + static_cast<Word>(O.Disp);
  if (Addr < NilGuard) {
    fail("NIL dereference (address " + std::to_string(Addr) + ")");
    return 0;
  }
  return *reinterpret_cast<Word *>(Addr);
}

inline void VM::writeD(const DOperand &O, Word *const *Bases, Word V) {
  Word *P = &Bases[O.Base][O.Index];
  if (!O.Mem) {
    *P = V;
    return;
  }
  Word Addr = *P + static_cast<Word>(O.Disp);
  if (Addr < NilGuard) {
    fail("NIL dereference (address " + std::to_string(Addr) + ")");
    return;
  }
  *reinterpret_cast<Word *>(Addr) = V;
}

} // namespace vm
} // namespace mgc

#endif // MGC_VM_VM_H
