//===- vm/VM.cpp ----------------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
//
// The reference (switch-dispatch) interpreter.  Since the threaded tier
// landed, both engines execute the *pre-decoded* stream (vm/Threaded.h):
// step() switches on MOp but accesses operands through the resolved
// base/index form, so per-operand Kind switches are gone from the hot
// path of this tier too, and the two tiers differ only in dispatch.
// step() is also the single-step engine the rendezvous loop (§5.3) uses
// to run other threads forward to their gc-points, in both tiers.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "obs/Profile.h"
#include "obs/Trace.h"

#include <cassert>
#include <chrono>
#include <cinttypes>

using namespace mgc;
using namespace mgc::vm;

VM::VM(const Program &Prog, VMOptions Opts)
    : Prog(Prog), Opts(Opts),
      TheHeap(Opts.HeapBytes, Prog.TypeDescs, Opts.GenGc, Opts.NurseryBytes,
              HeapPolicy{Opts.HeapGrowthPct, Opts.HeapMaxBytes,
                         Opts.NurseryAuto}),
      Globals(Prog.GlobalAreaWords, 0), DProg(decodeProgram(Prog)) {
  TheHeap.setSiteCount(static_cast<uint32_t>(Prog.SiteTab.Sites.size()));
  installHandlers();
  spawnThread(Prog.MainFunc);
}

void VM::spawnThread(unsigned FuncIdx) {
  assert(FuncIdx < Prog.Funcs.size());
  const CompiledFunction &F = Prog.Funcs[FuncIdx];
  assert(F.NumParams == 0 && "threads run parameterless procedures");
  auto T = std::make_unique<ThreadContext>();
  T->StackWords = Opts.StackWords;
  T->Stack.reset(new Word[T->StackWords]);
  for (size_t I = 0; I != T->StackWords; ++I)
    T->Stack[I] = FramePoison;
  // Pseudo control area for the root frame.
  T->Stack[0] = 0;             // saved AP
  T->Stack[1] = 0;             // saved FP
  T->Stack[2] = SentinelRetPC; // return address
  T->FP = CtlWords;
  T->AP = 0;
  T->PC = F.EntryIndex;
  // The root frame has no caller-provided save area; registers start dead.
  for (unsigned I = 0; I != NumRegs; ++I)
    T->R[I] = FramePoison;
  T->Live = true;
  Threads.push_back(std::move(T));
}

bool VM::fail(const std::string &Msg) {
  if (Error.empty())
    Error = Msg;
  return false;
}

Word VM::allocate(unsigned DescIdx, int64_t Length, uint32_t RetPC) {
  // Overflowing or over-capacity requests can never be satisfied by
  // collecting; fail deterministically instead of spinning the retry loop.
  size_t Bytes = TheHeap.allocationBytes(DescIdx, Length);
  if (Bytes == Heap::BadAlloc || Bytes > TheHeap.maxObjectBytes()) {
    std::string Size = Bytes == Heap::BadAlloc
                           ? "more than SIZE_MAX"
                           : std::to_string(Bytes);
    fail("out of memory: object of " + Size + " bytes exceeds heap capacity");
    return 0;
  }

  // Sampling profiler: charge the allocation to site + full stack (and
  // take any due mutator sample) before a collection this allocation may
  // trigger can run.  Both tiers reach here with Stats.Instrs synced, so
  // samples land at bit-identical instruction ordinals.
  if (__builtin_expect(Profiler != nullptr, 0))
    Profiler->onAlloc(*this, ctx(), RetPC, CurAllocSite, Bytes);

  if (Opts.GcStress) {
    if (!collect(RetPC, TheHeap.generational() && TheHeap.minorHeadroomOk()
                            ? GcKind::Minor
                            : GcKind::Full))
      return 0;
  }

  // The allocation instruction's site id rides in the object header from
  // birth (codegen's NoAllocSite narrows to the header's NoSiteHdr), where
  // every subsequent copy preserves it — heap snapshots and live-by-site
  // stats read attribution straight off the heap, tracer or not.
  uint32_t HdrSite = Heap::clampSite(CurAllocSite);

  // Observability: one predicted branch when no tracer is attached.  The
  // next collection will move any nursery/from-space object, so survival
  // tracking is sound everywhere except direct-to-old allocations (which a
  // minor collection leaves in place).
  auto Record = [&](Word Obj, bool TrackSurvival) {
    if (Tracer)
      Tracer->recordAlloc(CurAllocSite, Obj, Bytes, TrackSurvival);
    return Obj;
  };

  if (!TheHeap.generational()) {
    Word Obj = TheHeap.allocate(DescIdx, Length, HdrSite);
    if (Obj != 0)
      return Record(Obj, /*TrackSurvival=*/true);
    if (!collect(RetPC))
      return 0;
    Obj = TheHeap.allocate(DescIdx, Length, HdrSite);
    // Demand escalation under a growth policy: each extra collection
    // doubles the semispace until the request fits or the cap is reached.
    while (Obj == 0 && TheHeap.requestGrowth()) {
      if (!collect(RetPC))
        return 0;
      Obj = TheHeap.allocate(DescIdx, Length, HdrSite);
    }
    if (Obj == 0) {
      fail("heap exhausted: " + std::to_string(TheHeap.usedBytes()) +
           " bytes live of " + std::to_string(TheHeap.capacityBytes()));
      return 0;
    }
    return Record(Obj, /*TrackSurvival=*/true);
  }

  // Generational mode.  Objects too large for the nursery go straight to
  // old space; everything else bump-allocates in the nursery, escalating
  // nursery-exhaustion to a minor collection and only then to a full one.
  if (Bytes > TheHeap.nurseryCapacityBytes()) {
    Word Obj = TheHeap.allocateOld(DescIdx, Length, HdrSite);
    if (Obj != 0)
      return Record(Obj, /*TrackSurvival=*/false);
    if (!collect(RetPC, GcKind::Full))
      return 0;
    Obj = TheHeap.allocateOld(DescIdx, Length, HdrSite);
    while (Obj == 0 && TheHeap.requestGrowth()) {
      if (!collect(RetPC, GcKind::Full))
        return 0;
      Obj = TheHeap.allocateOld(DescIdx, Length, HdrSite);
    }
    if (Obj == 0) {
      fail("heap exhausted: " + std::to_string(TheHeap.usedBytes()) +
           " bytes live of " + std::to_string(TheHeap.capacityBytes()));
      return 0;
    }
    return Record(Obj, /*TrackSurvival=*/false);
  }

  Word Obj = TheHeap.allocate(DescIdx, Length, HdrSite);
  if (Obj != 0)
    return Record(Obj, /*TrackSurvival=*/true);
  if (TheHeap.minorHeadroomOk()) {
    if (!collect(RetPC, GcKind::Minor))
      return 0;
    Obj = TheHeap.allocate(DescIdx, Length, HdrSite);
    if (Obj != 0)
      return Record(Obj, /*TrackSurvival=*/true);
  }
  if (!collect(RetPC, GcKind::Full))
    return 0;
  Obj = TheHeap.allocate(DescIdx, Length, HdrSite);
  while (Obj == 0 && TheHeap.requestGrowth()) {
    if (!collect(RetPC, GcKind::Full))
      return 0;
    Obj = TheHeap.allocate(DescIdx, Length, HdrSite);
  }
  if (Obj == 0) {
    fail("heap exhausted: " + std::to_string(TheHeap.usedBytes()) +
         " bytes live of " + std::to_string(TheHeap.capacityBytes()));
    return 0;
  }
  return Record(Obj, /*TrackSurvival=*/true);
}

bool VM::collect(uint32_t TriggerRetPC, GcKind Kind) {
  if (!Collector)
    return fail("allocation failed and no collector is installed");
  assert(!InCollect && "recursive collection");
  InCollect = true;
  RequestedGc = Kind;
  if (TheHeap.remSet().size() > Stats.RemSetPeak)
    Stats.RemSetPeak = TheHeap.remSet().size();

  using Clock = std::chrono::steady_clock;
  bool Tracing = Tracer && Tracer->enabled();
  // Rendezvous is timed in every run, not just traced ones: per-request GC
  // attribution (ReqDone markers) charges rendezvous + collection nanos to
  // the current request window using exactly the value a tracer event
  // would carry in TotalNanos.
  Clock::time_point RendT0 = Clock::now();
  uint64_t RendStepsBefore = Stats.RendezvousSteps;

  // Rendezvous (§5.3): a handshake per live thread, each stepping its
  // thread independently until it is about to execute a gc-point
  // instruction; its table pc is that instruction's return address.  Loop
  // polls bound each handshake.  On any failure the suspension map is
  // discarded whole — a failed rendezvous must not leave the VM looking
  // half-suspended (partial SuspendPCs would let a later walk scan threads
  // stopped at stale pcs).
  SuspendPCs.assign(Threads.size(), 0);
  SuspendPCs[CurThread] = TriggerRetPC;
  for (size_t TI = 0; TI != Threads.size(); ++TI) {
    if (TI == CurThread || !Threads[TI]->Live)
      continue;
    if (!handshakeThread(TI)) {
      SuspendPCs.clear();
      InCollect = false;
      return false;
    }
  }

  ++Stats.Collections;
  uint64_t RendNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           RendT0)
          .count());
  uint64_t GcNanosBefore = Stats.GcNanos;
  // A failed rendezvous returns above without an event, so committed
  // events correspond 1:1 with Stats.Collections.
  VMStats Snap;
  uint64_t PromObjSnap = 0, PromBytesSnap = 0;
  if (Tracing) {
    obs::GcEvent &Ev = Tracer->beginEvent(
        Stats.Collections, Kind == GcKind::Minor,
        CurAllocSite == NoAllocSite ? obs::NoSite : CurAllocSite);
    Ev.Phases.Rendezvous = RendNanos;
    Ev.HeapBeforeBytes = TheHeap.usedBytes();
    Snap = Stats;
    PromObjSnap = TheHeap.ObjectsPromoted;
    PromBytesSnap = TheHeap.BytesPromoted;
  }
  Stats.StackTraceStartInstrs = Stats.Instrs;
  Collector(*this);
  // The same total a tracer event carries: the per-request attribution
  // must sum exactly to the tracer's per-event TotalNanos.
  ReqGcNanosAccum += RendNanos + (Stats.GcNanos - GcNanosBefore);
  if (Tracing) {
    obs::GcEvent *Ev = Tracer->current();
    assert(Ev && "collection event vanished during the collector");
    Ev->HeapAfterBytes = TheHeap.usedBytes();
    Ev->FramesTraced = Stats.FramesTraced - Snap.FramesTraced;
    Ev->RootsTraced = Stats.RootsTraced - Snap.RootsTraced;
    Ev->ObjectsCopied = Stats.ObjectsCopied - Snap.ObjectsCopied;
    Ev->BytesCopied = Stats.BytesCopied - Snap.BytesCopied;
    Ev->ObjectsPromoted = TheHeap.ObjectsPromoted - PromObjSnap;
    Ev->BytesPromoted = TheHeap.BytesPromoted - PromBytesSnap;
    Ev->DerivedAdjusted = Stats.DerivedAdjusted - Snap.DerivedAdjusted;
    Ev->RendezvousSteps = Stats.RendezvousSteps - RendStepsBefore;
    Ev->CacheHits = Stats.DecodeCacheHits - Snap.DecodeCacheHits;
    Ev->CacheMisses = Stats.DecodeCacheMisses - Snap.DecodeCacheMisses;
    Ev->TotalNanos = RendNanos + (Stats.GcNanos - GcNanosBefore);
    Tracer->commitEvent();
  }
  if (PostGcHook && Error.empty())
    PostGcHook(*this);
  InCollect = false;
  return Error.empty();
}

bool VM::handshakeThread(size_t TI) {
  ThreadContext &T = *Threads[TI];
  uint64_t Budget = Opts.RendezvousBudget;
  while (!Prog.Code[T.PC].isGcPoint()) {
    if (Budget-- == 0)
      // Deterministic (the interpreter is deterministic, so the pc at
      // exhaustion is reproducible) — like the PR-2 OOM diagnostics, this
      // fails the run cleanly: the caller discards SuspendPCs, the error
      // propagates through both dispatch tiers, and the driver flushes
      // partial stats/trace.
      return fail("rendezvous budget exhausted: thread " +
                  std::to_string(TI) + " ran " +
                  std::to_string(Opts.RendezvousBudget) +
                  " instructions without reaching a gc-point (pc " +
                  std::to_string(T.PC) + "; compile with loop polls)");
    ++Stats.RendezvousSteps;
    if (!step(T)) {
      if (!Error.empty())
        return false;
      break; // Thread finished; no frames to scan.
    }
    if (T.Finished)
      break;
  }
  SuspendPCs[TI] = T.Finished ? SentinelRetPC : T.PC + 1;
  return true;
}

void VM::collectNow() {
  ThreadContext &T = ctx();
  // The current instruction must be a gc-point (GcCollect runtime call).
  collect(T.PC + 1);
}

bool VM::step(ThreadContext &T) {
  const DInstr &I = DProg.Code[T.PC];
  ++Stats.Instrs;
  Word *const Bases[DNumBases] = {T.R, T.Stack.get() + T.FP,
                                  T.Stack.get() + T.AP, Globals.data(),
                                  DProg.ConstPool.data()};
  switch (I.Op) {
  case MOp::Mov:
    writeD(I.D, Bases, readD(I.A, Bases));
    break;
  case MOp::Add: {
    Word A = readD(I.A, Bases), B = readD(I.B, Bases);
    writeD(I.D, Bases, A + B);
    break;
  }
  case MOp::Sub: {
    Word A = readD(I.A, Bases), B = readD(I.B, Bases);
    writeD(I.D, Bases, A - B);
    break;
  }
  case MOp::Mul: {
    Word A = readD(I.A, Bases), B = readD(I.B, Bases);
    writeD(I.D, Bases,
           static_cast<Word>(static_cast<int64_t>(A) *
                             static_cast<int64_t>(B)));
    break;
  }
  case MOp::Div: {
    int64_t B = static_cast<int64_t>(readD(I.B, Bases));
    if (B == 0)
      return fail("integer division by zero");
    writeD(I.D, Bases,
           static_cast<Word>(static_cast<int64_t>(readD(I.A, Bases)) / B));
    break;
  }
  case MOp::Mod: {
    int64_t B = static_cast<int64_t>(readD(I.B, Bases));
    if (B == 0)
      return fail("integer modulus by zero");
    writeD(I.D, Bases,
           static_cast<Word>(static_cast<int64_t>(readD(I.A, Bases)) % B));
    break;
  }
  case MOp::Neg:
    writeD(I.D, Bases,
           static_cast<Word>(-static_cast<int64_t>(readD(I.A, Bases))));
    break;
  case MOp::Not:
    writeD(I.D, Bases, readD(I.A, Bases) == 0 ? 1 : 0);
    break;
  case MOp::CmpEq: {
    Word A = readD(I.A, Bases), B = readD(I.B, Bases);
    writeD(I.D, Bases, A == B ? 1 : 0);
    break;
  }
  case MOp::CmpNe: {
    Word A = readD(I.A, Bases), B = readD(I.B, Bases);
    writeD(I.D, Bases, A != B ? 1 : 0);
    break;
  }
  case MOp::CmpLt: {
    Word A = readD(I.A, Bases), B = readD(I.B, Bases);
    writeD(I.D, Bases,
           static_cast<int64_t>(A) < static_cast<int64_t>(B) ? 1 : 0);
    break;
  }
  case MOp::CmpLe: {
    Word A = readD(I.A, Bases), B = readD(I.B, Bases);
    writeD(I.D, Bases,
           static_cast<int64_t>(A) <= static_cast<int64_t>(B) ? 1 : 0);
    break;
  }
  case MOp::CmpGt: {
    Word A = readD(I.A, Bases), B = readD(I.B, Bases);
    writeD(I.D, Bases,
           static_cast<int64_t>(A) > static_cast<int64_t>(B) ? 1 : 0);
    break;
  }
  case MOp::CmpGe: {
    Word A = readD(I.A, Bases), B = readD(I.B, Bases);
    writeD(I.D, Bases,
           static_cast<int64_t>(A) >= static_cast<int64_t>(B) ? 1 : 0);
    break;
  }
  case MOp::AddrSlot:
    writeD(I.D, Bases,
           reinterpret_cast<Word>(&T.Stack[T.FP + I.Index]) +
               static_cast<Word>(I.AuxImm));
    break;
  case MOp::AddrGlobal:
    writeD(I.D, Bases,
           reinterpret_cast<Word>(&Globals[static_cast<size_t>(I.Index)]) +
               static_cast<Word>(I.AuxImm));
    break;
  case MOp::NewObj:
  case MOp::NewArr: {
    int64_t Len = I.Op == MOp::NewArr
                      ? static_cast<int64_t>(readD(I.A, Bases))
                      : 0;
    if (I.Op == MOp::NewArr && Len < 0)
      return fail("negative open array length");
    CurAllocSite = I.Site;
    Word Obj = allocate(static_cast<unsigned>(I.Index), Len, T.PC + 1);
    CurAllocSite = NoAllocSite;
    if (Obj == 0)
      return false;
    writeD(I.D, Bases, Obj);
    break;
  }
  case MOp::Call: {
    if (__builtin_expect(Profiler != nullptr, 0))
      Profiler->onCall(*this, T, I.IsGcPoint, T.PC + 1);
    const CompiledFunction &Callee =
        Prog.Funcs[static_cast<size_t>(I.Index)];
    uint32_t CtlBase = T.FP + I.CallerFrameWords;
    uint32_t NewFP = CtlBase + CtlWords;
    if (NewFP + Callee.FrameWords >= T.StackWords)
      return fail("stack overflow calling " + Callee.Name);
    T.Stack[CtlBase] = T.AP;
    T.Stack[CtlBase + 1] = T.FP;
    T.Stack[CtlBase + 2] = T.PC + 1;
    // Prologue: save the callee-saved registers this function uses.
    for (size_t K = 0; K != Callee.SavedRegs.size(); ++K)
      T.Stack[NewFP + K] = T.R[Callee.SavedRegs[K]];
    // Poison the rest of the frame: only table-described state may be
    // touched by the collector.
    for (uint32_t W = NewFP + Callee.SavedRegs.size();
         W != NewFP + Callee.FrameWords; ++W)
      T.Stack[W] = FramePoison;
    T.AP = T.FP + I.ArgBase;
    T.FP = NewFP;
    T.PC = Callee.EntryIndex;
    return true;
  }
  case MOp::CallRt: {
    switch (static_cast<ir::RtFn>(I.Index)) {
    case ir::RtFn::PutInt:
      Out += std::to_string(
          static_cast<int64_t>(T.Stack[T.FP + I.ArgBase]));
      break;
    case ir::RtFn::PutChar:
      Out += static_cast<char>(T.Stack[T.FP + I.ArgBase] & 0xff);
      break;
    case ir::RtFn::PutLn:
      Out += '\n';
      break;
    case ir::RtFn::GcCollect:
      if (__builtin_expect(Profiler != nullptr, 0))
        Profiler->onPoint(*this, T, T.PC + 1);
      if (!collect(T.PC + 1))
        return false;
      break;
    case ir::RtFn::Halt:
      T.Finished = true;
      T.Live = false;
      return false;
    case ir::RtFn::ReqDone:
      finishRequest();
      break;
    }
    break;
  }
  case MOp::WriteBarrier:
    // Records [A + disp] in the remembered set when it is an old-space slot
    // now holding a nursery pointer.  A no-op outside generational mode, so
    // barrier-compiled binaries still run identically under the default
    // collector.
    if (Opts.GenGc) {
      ++Stats.WriteBarriersRun;
      Word Slot = readD(I.A, Bases) + static_cast<Word>(I.AuxImm);
      if (TheHeap.writeBarrier(Slot))
        ++Stats.RemSetRecords;
    }
    break;
  case MOp::GcPoll:
    // A voluntary gc-point; nothing happens unless a collection is in
    // progress, in which case the rendezvous loop stops *before* executing
    // this instruction.
    if (__builtin_expect(Profiler != nullptr, 0))
      Profiler->onPoint(*this, T, T.PC + 1);
    break;
  case MOp::Jump:
    T.PC = I.Target0;
    return true;
  case MOp::Branch:
    T.PC = readD(I.A, Bases) != 0 ? I.Target0 : I.Target1;
    return true;
  case MOp::Ret: {
    if (__builtin_expect(Profiler != nullptr, 0))
      Profiler->onRet(T);
    const CompiledFunction &F = Prog.Funcs[I.FuncIdx];
    // Epilogue: restore saved registers.
    for (size_t K = 0; K != F.SavedRegs.size(); ++K)
      T.R[F.SavedRegs[K]] = T.Stack[T.FP + K];
    uint32_t RetPC = static_cast<uint32_t>(T.Stack[T.FP - 1]);
    uint32_t OldFP = static_cast<uint32_t>(T.Stack[T.FP - 2]);
    uint32_t OldAP = static_cast<uint32_t>(T.Stack[T.FP - 3]);
    if (RetPC == SentinelRetPC) {
      T.Finished = true;
      T.Live = false;
      return false;
    }
    T.PC = RetPC;
    T.FP = OldFP;
    T.AP = OldAP;
    return true;
  }
  case MOp::Trap: {
    static const char *Reasons[] = {
        "function ended without RETURN", "array index out of bounds",
        "NIL dereference"};
    int R = I.Index;
    return fail(std::string("trap: ") +
                (R >= 0 && R < 3 ? Reasons[R] : "unknown"));
  }
  }
  if (!Error.empty())
    return false;
  T.PC += 1;
  return true;
}

void VM::finishRequest() {
  ++Stats.Requests;
  ReqSample Smp;
  Smp.Seq = Stats.Requests;
  Smp.Instrs = Stats.Instrs - ReqMarkInstrs;
  Smp.GcNanos = ReqGcNanosAccum;
  Smp.Collections = Stats.Collections - ReqMarkCollections;
  ReqMarkInstrs = Stats.Instrs;
  ReqMarkCollections = Stats.Collections;
  ReqGcNanosAccum = 0;
  if (Tracer)
    Tracer->recordRequest(Smp.Seq, Smp.Instrs, Smp.GcNanos, Smp.Collections);
  if (Profiler)
    Profiler->onRequestDone(Smp.Seq);
  if (RequestHook)
    RequestHook(*this, Smp);
}

void VM::runQuantumSwitch(ThreadContext &T, uint64_t Max) {
  for (uint64_t Q = 0; Q != Max && T.Live; ++Q)
    if (!step(T))
      break;
}

bool VM::run() {
  const bool Threaded = activeDispatch() == DispatchTier::Threaded;
  // Round-robin with instruction-level pre-emption.
  while (true) {
    bool AnyLive = false;
    for (size_t K = 0; K != Threads.size(); ++K) {
      CurThread = static_cast<unsigned>((CurThread + (K != 0 ? 1 : 0)) %
                                        Threads.size());
      if (Threads[CurThread]->Live) {
        AnyLive = true;
        break;
      }
    }
    if (!AnyLive)
      break;

    ThreadContext &T = *Threads[CurThread];
    if (Threaded)
      runQuantumThreaded(T, Opts.Quantum);
    else
      runQuantumSwitch(T, Opts.Quantum);
    if (!Error.empty())
      return false;
    // Checked per quantum, not per instruction: cheap, and still a
    // deterministic point in the schedule.
    if (Opts.InstrBudget && Stats.Instrs > Opts.InstrBudget)
      return fail("instruction budget exceeded");
    CurThread = static_cast<unsigned>((CurThread + 1) % Threads.size());
  }
  return Error.empty();
}
