//===- vm/Threaded.cpp - Load-time translation + computed-goto tier -------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
//
// Two halves:
//
//  1. decodeProgram(): the load-time translator.  One MInstr becomes one
//     DInstr at the same index (the PC mapping across tiers is the
//     identity).  Operands are resolved to base/index pairs, immediates
//     are interned into a constant pool, and the per-instruction
//     funcOfPC() binary searches of Call/Ret are folded into the record.
//
//  2. VM::execThreaded(): the direct-threaded executor.  Dispatch is
//     `goto *I->Handler` over a DInstr* iterator — advancing is `++I`, so
//     the next handler address is computable the moment a handler starts
//     and the dispatch load mostly hides behind the handler body.  The
//     canonical PC is materialized (I - Code) only at sync points.  The
//     quantum budget and the retired-instruction count live in locals
//     synced back to ThreadContext/VMStats at every point the GC
//     machinery (or an error path) can observe them — before
//     allocate()/collect(), on every fail, and at quantum end.
//
//     On top of the 26 generic handlers, installHandlers() selects
//     *specialized* variants per instruction where the operand pattern
//     allows it (all-direct moves/compares/arithmetic, one-sided memory
//     moves, direct branch conditions), eliminating the per-operand
//     memory-form tests from the hottest paths.  Handlers replicate the
//     reference interpreter's semantics *mechanically*, including its
//     quirks (a failing memory read yields 0 and execution continues to
//     the instruction's remaining effects; the error is only acted on at
//     the bottom-of-step check, which Jump/Branch/Call/Ret skip), so the
//     two tiers stay bit-identical on every observable, not just on the
//     happy path.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "obs/Profile.h"

#include <cassert>
#include <unordered_map>

using namespace mgc;
using namespace mgc::vm;

//===----------------------------------------------------------------------===//
// Load-time translation
//===----------------------------------------------------------------------===//

DecodedProgram vm::decodeProgram(const Program &P) {
  DecodedProgram D;
  D.ConstPool.push_back(0); // Slot 0: the value None operands resolve to.
  std::unordered_map<Word, int32_t> Interned;
  Interned.emplace(0, 0);
  auto PoolOf = [&](int64_t Imm) {
    Word W = static_cast<Word>(Imm);
    auto [It, New] =
        Interned.try_emplace(W, static_cast<int32_t>(D.ConstPool.size()));
    if (New)
      D.ConstPool.push_back(W);
    return It->second;
  };
  auto Conv = [&](const MOperand &O) {
    DOperand R;
    switch (O.K) {
    case MOperand::Kind::None:
      break; // Const pool slot 0; never meaningfully accessed.
    case MOperand::Kind::Reg:
      R.Base = DBaseReg;
      R.Index = O.Reg;
      break;
    case MOperand::Kind::Slot:
      R.Base = DBaseFP;
      R.Index = O.Index;
      break;
    case MOperand::Kind::ASlot:
      R.Base = DBaseAP;
      R.Index = O.Index;
      break;
    case MOperand::Kind::Global:
      R.Base = DBaseGlobal;
      R.Index = O.Index;
      break;
    case MOperand::Kind::Imm:
      R.Base = DBaseConst;
      R.Index = PoolOf(O.Imm);
      break;
    case MOperand::Kind::MemReg:
      R.Base = DBaseReg;
      R.Index = O.Reg;
      R.Mem = true;
      R.Disp = O.Disp;
      break;
    case MOperand::Kind::MemSlot:
      R.Base = DBaseFP;
      R.Index = O.Index;
      R.Mem = true;
      R.Disp = O.Disp;
      break;
    case MOperand::Kind::MemASlot:
      R.Base = DBaseAP;
      R.Index = O.Index;
      R.Mem = true;
      R.Disp = O.Disp;
      break;
    }
    return R;
  };

  D.Code.reserve(P.Code.size());
  for (uint32_t PC = 0; PC != P.Code.size(); ++PC) {
    const MInstr &I = P.Code[PC];
    DInstr T;
    T.Op = I.Op;
    T.Index = I.Index;
    T.Target0 = I.Target0;
    T.Target1 = I.Target1;
    T.Site = I.Site;
    T.ArgBase = I.ArgBase;
    T.IsGcPoint = I.isGcPoint();
    T.D = Conv(I.D);
    T.A = Conv(I.A);
    T.B = Conv(I.B);
    // The destination of a value-producing op must be writable; the
    // translator enforces what the reference interpreter asserted.
    assert((T.D.Base != DBaseConst || I.D.K == MOperand::Kind::None) &&
           "write to an immediate operand");
    switch (I.Op) {
    case MOp::Call:
      T.CallerFrameWords = P.Funcs[P.funcOfPC(PC)].FrameWords;
      break;
    case MOp::Ret:
      T.FuncIdx = P.funcOfPC(PC);
      break;
    case MOp::AddrSlot:
    case MOp::AddrGlobal:
      // The byte displacement rides in A.Imm regardless of A's kind.
      T.AuxImm = I.A.Imm;
      break;
    case MOp::WriteBarrier:
      T.AuxImm = I.B.Imm;
      break;
    default:
      break;
    }
    D.Code.push_back(T);
  }
  return D;
}

//===----------------------------------------------------------------------===//
// Handler selection
//===----------------------------------------------------------------------===//

namespace {

/// Indices of the specialized handler variants that follow the generic
/// (MOp-ordered) entries in the executor's label table.  A specialized
/// handler computes exactly what its generic counterpart would, minus the
/// operand-form tests the translation already answered.
enum SpecializedHandler : size_t {
  SMovDirect = static_cast<size_t>(MOp::Trap) + 1, ///< Mov, no mem operand.
  SMovLoad,  ///< Mov, memory source, direct destination.
  SMovStore, ///< Mov, direct source, memory destination.
  SAddDirect,
  SSubDirect,
  SCmpEqDirect,
  SCmpNeDirect,
  SCmpLtDirect,
  SCmpLeDirect,
  SCmpGtDirect,
  SCmpGeDirect,
  SBranchDirect, ///< Branch with a direct condition operand.
  SNumHandlers
};

} // namespace

void VM::installHandlers() {
#if MGC_COMPUTED_GOTO
  if (Opts.Dispatch != DispatchTier::Threaded)
    return;
  const void *const *Labels = nullptr;
  execThreaded(nullptr, 0, &Labels);
  for (DInstr &I : DProg.Code) {
    size_t H = static_cast<size_t>(I.Op);
    bool Direct3 = !I.D.Mem && !I.A.Mem && !I.B.Mem;
    switch (I.Op) {
    case MOp::Mov:
      if (!I.D.Mem && !I.A.Mem)
        H = SMovDirect;
      else if (!I.D.Mem)
        H = SMovLoad;
      else if (!I.A.Mem)
        H = SMovStore;
      break;
    case MOp::Add:
      if (Direct3)
        H = SAddDirect;
      break;
    case MOp::Sub:
      if (Direct3)
        H = SSubDirect;
      break;
    case MOp::CmpEq:
      if (Direct3)
        H = SCmpEqDirect;
      break;
    case MOp::CmpNe:
      if (Direct3)
        H = SCmpNeDirect;
      break;
    case MOp::CmpLt:
      if (Direct3)
        H = SCmpLtDirect;
      break;
    case MOp::CmpLe:
      if (Direct3)
        H = SCmpLeDirect;
      break;
    case MOp::CmpGt:
      if (Direct3)
        H = SCmpGtDirect;
      break;
    case MOp::CmpGe:
      if (Direct3)
        H = SCmpGeDirect;
      break;
    case MOp::Branch:
      if (!I.A.Mem)
        H = SBranchDirect;
      break;
    default:
      break;
    }
    I.Handler = Labels[H];
  }
#endif
}

void VM::runQuantumThreaded(ThreadContext &T, uint64_t Max) {
#if MGC_COMPUTED_GOTO
  execThreaded(&T, Max, nullptr);
#else
  runQuantumSwitch(T, Max);
#endif
}

//===----------------------------------------------------------------------===//
// The computed-goto executor
//===----------------------------------------------------------------------===//

#if MGC_COMPUTED_GOTO

bool VM::execThreaded(ThreadContext *TP, uint64_t Max,
                      const void *const **LabelsOut) {
  // Handler table: the first 26 entries are in MOp declaration order
  // (codegen/Machine.h); the rest are the specialized variants, in
  // SpecializedHandler order.
  static const void *const Labels[] = {
      &&L_Mov,        &&L_Add,          &&L_Sub,       &&L_Mul,
      &&L_Div,        &&L_Mod,          &&L_Neg,       &&L_Not,
      &&L_CmpEq,      &&L_CmpNe,        &&L_CmpLt,     &&L_CmpLe,
      &&L_CmpGt,      &&L_CmpGe,        &&L_AddrSlot,  &&L_AddrGlobal,
      &&L_NewObj,     &&L_NewArr,       &&L_Call,      &&L_CallRt,
      &&L_GcPoll,     &&L_WriteBarrier, &&L_Jump,      &&L_Branch,
      &&L_Ret,        &&L_Trap,
      // Specialized variants.
      &&L_MovDirect,  &&L_MovLoad,      &&L_MovStore,  &&L_AddDirect,
      &&L_SubDirect,  &&L_CmpEqDirect,  &&L_CmpNeDirect,
      &&L_CmpLtDirect, &&L_CmpLeDirect, &&L_CmpGtDirect,
      &&L_CmpGeDirect, &&L_BranchDirect,
  };
  static_assert(sizeof(Labels) / sizeof(Labels[0]) == SNumHandlers,
                "handler table out of sync with MOp/SpecializedHandler");
  if (LabelsOut) {
    *LabelsOut = Labels;
    return true;
  }

  ThreadContext &T = *TP;
  if (!T.Live || Max == 0)
    return true;

  const DInstr *const Code = DProg.Code.data();
  const DInstr *I = Code + T.PC; // Canonical PC is (I - Code).
  uint64_t Remaining = Max;      // Quantum budget, counted down per dispatch.
  uint64_t Flushed = 0; // Retired instructions already in Stats.Instrs.
  // The operand base table; FP/AP entries are refreshed by Call/Ret.
  Word *Bases[DNumBases] = {T.R, T.Stack.get() + T.FP,
                            T.Stack.get() + T.AP, Globals.data(),
                            DProg.ConstPool.data()};

// Publish PC and the retired-instruction count: required before anything
// that can observe them (collect() reads Stats.Instrs and walks stacks;
// run() checks the instruction budget after the quantum).  The retired
// count is derived from the budget (Max - Remaining) instead of a second
// per-instruction counter.
#define MGC_SYNC()                                                            \
  do {                                                                        \
    T.PC = static_cast<uint32_t>(I - Code);                                   \
    uint64_t Retired = Max - Remaining;                                       \
    Stats.Instrs += Retired - Flushed;                                        \
    Flushed = Retired;                                                        \
  } while (0)

// Dispatch *I.  The instruction is counted as retired *before* its
// handler runs, matching the reference step()'s ++Stats.Instrs placement.
// Control-transfer handlers set I and dispatch; fall-through handlers
// advance via MGC_FALL.
#define MGC_DISPATCH()                                                        \
  do {                                                                        \
    if (Remaining == 0) {                                                     \
      MGC_SYNC();                                                             \
      return true;                                                            \
    }                                                                         \
    --Remaining;                                                              \
    goto *I->Handler;                                                         \
  } while (0)

// Bottom-of-step for fall-through instructions: act on a pending error
// (set by this instruction, or left behind by a preceding Branch whose
// condition read failed — the reference interpreter's quirk), else
// advance.  Jump/Branch/Call/Ret bypass this, exactly like the early
// `return true`s in step().
#define MGC_FALL()                                                            \
  do {                                                                        \
    if (__builtin_expect(!Error.empty(), 0)) {                                \
      MGC_SYNC();                                                             \
      return false;                                                           \
    }                                                                         \
    ++I;                                                                      \
    MGC_DISPATCH();                                                           \
  } while (0)

#define MGC_FAIL(Msg)                                                         \
  do {                                                                        \
    MGC_SYNC();                                                               \
    fail(Msg);                                                                \
    return false;                                                             \
  } while (0)

  MGC_DISPATCH();

L_Mov:
  writeD(I->D, Bases, readD(I->A, Bases));
  MGC_FALL();

L_Add: {
  Word A = readD(I->A, Bases), B = readD(I->B, Bases);
  writeD(I->D, Bases, A + B);
  MGC_FALL();
}

L_Sub: {
  Word A = readD(I->A, Bases), B = readD(I->B, Bases);
  writeD(I->D, Bases, A - B);
  MGC_FALL();
}

L_Mul: {
  Word A = readD(I->A, Bases), B = readD(I->B, Bases);
  writeD(I->D, Bases,
         static_cast<Word>(static_cast<int64_t>(A) * static_cast<int64_t>(B)));
  MGC_FALL();
}

L_Div: {
  int64_t B = static_cast<int64_t>(readD(I->B, Bases));
  if (B == 0)
    MGC_FAIL("integer division by zero");
  writeD(I->D, Bases,
         static_cast<Word>(static_cast<int64_t>(readD(I->A, Bases)) / B));
  MGC_FALL();
}

L_Mod: {
  int64_t B = static_cast<int64_t>(readD(I->B, Bases));
  if (B == 0)
    MGC_FAIL("integer modulus by zero");
  writeD(I->D, Bases,
         static_cast<Word>(static_cast<int64_t>(readD(I->A, Bases)) % B));
  MGC_FALL();
}

L_Neg:
  writeD(I->D, Bases,
         static_cast<Word>(-static_cast<int64_t>(readD(I->A, Bases))));
  MGC_FALL();

L_Not:
  writeD(I->D, Bases, readD(I->A, Bases) == 0 ? 1 : 0);
  MGC_FALL();

L_CmpEq: {
  Word A = readD(I->A, Bases), B = readD(I->B, Bases);
  writeD(I->D, Bases, A == B ? 1 : 0);
  MGC_FALL();
}

L_CmpNe: {
  Word A = readD(I->A, Bases), B = readD(I->B, Bases);
  writeD(I->D, Bases, A != B ? 1 : 0);
  MGC_FALL();
}

L_CmpLt: {
  Word A = readD(I->A, Bases), B = readD(I->B, Bases);
  writeD(I->D, Bases,
         static_cast<int64_t>(A) < static_cast<int64_t>(B) ? 1 : 0);
  MGC_FALL();
}

L_CmpLe: {
  Word A = readD(I->A, Bases), B = readD(I->B, Bases);
  writeD(I->D, Bases,
         static_cast<int64_t>(A) <= static_cast<int64_t>(B) ? 1 : 0);
  MGC_FALL();
}

L_CmpGt: {
  Word A = readD(I->A, Bases), B = readD(I->B, Bases);
  writeD(I->D, Bases,
         static_cast<int64_t>(A) > static_cast<int64_t>(B) ? 1 : 0);
  MGC_FALL();
}

L_CmpGe: {
  Word A = readD(I->A, Bases), B = readD(I->B, Bases);
  writeD(I->D, Bases,
         static_cast<int64_t>(A) >= static_cast<int64_t>(B) ? 1 : 0);
  MGC_FALL();
}

L_AddrSlot:
  writeD(I->D, Bases,
         reinterpret_cast<Word>(&T.Stack[T.FP + I->Index]) +
             static_cast<Word>(I->AuxImm));
  MGC_FALL();

L_AddrGlobal:
  writeD(I->D, Bases,
         reinterpret_cast<Word>(&Globals[static_cast<size_t>(I->Index)]) +
             static_cast<Word>(I->AuxImm));
  MGC_FALL();

L_NewObj:
L_NewArr: {
  int64_t Len =
      I->Op == MOp::NewArr ? static_cast<int64_t>(readD(I->A, Bases)) : 0;
  if (I->Op == MOp::NewArr && Len < 0)
    MGC_FAIL("negative open array length");
  CurAllocSite = I->Site;
  MGC_SYNC(); // allocate() can collect: PC and Instrs must be current.
  Word Obj = allocate(static_cast<unsigned>(I->Index), Len, T.PC + 1);
  CurAllocSite = NoAllocSite;
  if (Obj == 0)
    return false;
  writeD(I->D, Bases, Obj);
  MGC_FALL();
}

L_Call: {
  if (__builtin_expect(Profiler != nullptr, 0)) {
    MGC_SYNC(); // The due-check and sample read Stats.Instrs and T.PC.
    Profiler->onCall(*this, T, I->IsGcPoint,
                     static_cast<uint32_t>(I - Code) + 1);
  }
  const CompiledFunction &Callee = Prog.Funcs[static_cast<size_t>(I->Index)];
  uint32_t CtlBase = T.FP + I->CallerFrameWords;
  uint32_t NewFP = CtlBase + CtlWords;
  if (NewFP + Callee.FrameWords >= T.StackWords)
    MGC_FAIL("stack overflow calling " + Callee.Name);
  T.Stack[CtlBase] = T.AP;
  T.Stack[CtlBase + 1] = T.FP;
  T.Stack[CtlBase + 2] = static_cast<uint32_t>(I - Code) + 1;
  for (size_t K = 0; K != Callee.SavedRegs.size(); ++K)
    T.Stack[NewFP + K] = T.R[Callee.SavedRegs[K]];
  for (uint32_t W = NewFP + Callee.SavedRegs.size();
       W != NewFP + Callee.FrameWords; ++W)
    T.Stack[W] = FramePoison;
  T.AP = T.FP + I->ArgBase;
  T.FP = NewFP;
  I = Code + Callee.EntryIndex;
  Bases[DBaseFP] = T.Stack.get() + T.FP;
  Bases[DBaseAP] = T.Stack.get() + T.AP;
  MGC_DISPATCH();
}

L_CallRt:
  switch (static_cast<ir::RtFn>(I->Index)) {
  case ir::RtFn::PutInt:
    Out += std::to_string(static_cast<int64_t>(T.Stack[T.FP + I->ArgBase]));
    break;
  case ir::RtFn::PutChar:
    Out += static_cast<char>(T.Stack[T.FP + I->ArgBase] & 0xff);
    break;
  case ir::RtFn::PutLn:
    Out += '\n';
    break;
  case ir::RtFn::GcCollect:
    MGC_SYNC();
    if (__builtin_expect(Profiler != nullptr, 0))
      Profiler->onPoint(*this, T, T.PC + 1);
    if (!collect(T.PC + 1))
      return false;
    break;
  case ir::RtFn::Halt:
    T.Finished = true;
    T.Live = false;
    MGC_SYNC();
    return true; // Thread done; not an error.
  case ir::RtFn::ReqDone:
    // Sync first so Stats.Instrs (and T.PC, for hooks) match the switch
    // tier bit-for-bit at the marker.
    MGC_SYNC();
    finishRequest();
    break;
  }
  MGC_FALL();

L_GcPoll:
  // A voluntary gc-point; the rendezvous loop stops *before* executing it.
  if (__builtin_expect(Profiler != nullptr, 0)) {
    MGC_SYNC();
    Profiler->onPoint(*this, T, T.PC + 1);
  }
  MGC_FALL();

L_WriteBarrier:
  if (Opts.GenGc) {
    ++Stats.WriteBarriersRun;
    Word Slot = readD(I->A, Bases) + static_cast<Word>(I->AuxImm);
    if (TheHeap.writeBarrier(Slot))
      ++Stats.RemSetRecords;
  }
  MGC_FALL();

L_Jump:
  I = Code + I->Target0;
  MGC_DISPATCH();

L_Branch:
  // No error check here — the reference interpreter's early `return true`
  // means a failing condition read only stops execution at the next
  // fall-through instruction (see MGC_FALL).
  I = Code + (readD(I->A, Bases) != 0 ? I->Target0 : I->Target1);
  MGC_DISPATCH();

L_Ret: {
  if (__builtin_expect(Profiler != nullptr, 0))
    Profiler->onRet(T);
  const CompiledFunction &F = Prog.Funcs[I->FuncIdx];
  for (size_t K = 0; K != F.SavedRegs.size(); ++K)
    T.R[F.SavedRegs[K]] = T.Stack[T.FP + K];
  uint32_t RetPC = static_cast<uint32_t>(T.Stack[T.FP - 1]);
  uint32_t OldFP = static_cast<uint32_t>(T.Stack[T.FP - 2]);
  uint32_t OldAP = static_cast<uint32_t>(T.Stack[T.FP - 3]);
  if (RetPC == SentinelRetPC) {
    T.Finished = true;
    T.Live = false;
    MGC_SYNC();
    return true; // Thread done; not an error.
  }
  I = Code + RetPC;
  T.FP = OldFP;
  T.AP = OldAP;
  Bases[DBaseFP] = T.Stack.get() + T.FP;
  Bases[DBaseAP] = T.Stack.get() + T.AP;
  MGC_DISPATCH();
}

L_Trap: {
  static const char *Reasons[] = {
      "function ended without RETURN", "array index out of bounds",
      "NIL dereference"};
  int R = I->Index;
  MGC_FAIL(std::string("trap: ") +
           (R >= 0 && R < 3 ? Reasons[R] : "unknown"));
}

  //===--- Specialized variants -------------------------------------------===
  // Each computes exactly what its generic counterpart would for the
  // operand pattern installHandlers() matched; MGC_FALL's error check is
  // kept even where the handler itself cannot fail, because a preceding
  // Branch may have left a pending error (the quirk above).

L_MovDirect:
  Bases[I->D.Base][I->D.Index] = Bases[I->A.Base][I->A.Index];
  MGC_FALL();

L_MovLoad: {
  Word Addr =
      Bases[I->A.Base][I->A.Index] + static_cast<Word>(I->A.Disp);
  Word V;
  if (__builtin_expect(Addr < NilGuard, 0)) {
    fail("NIL dereference (address " + std::to_string(Addr) + ")");
    V = 0; // A failing read yields 0; the write still happens.
  } else {
    V = *reinterpret_cast<Word *>(Addr);
  }
  Bases[I->D.Base][I->D.Index] = V;
  MGC_FALL();
}

L_MovStore: {
  Word V = Bases[I->A.Base][I->A.Index];
  Word Addr =
      Bases[I->D.Base][I->D.Index] + static_cast<Word>(I->D.Disp);
  if (__builtin_expect(Addr < NilGuard, 0))
    fail("NIL dereference (address " + std::to_string(Addr) + ")");
  else
    *reinterpret_cast<Word *>(Addr) = V;
  MGC_FALL();
}

L_AddDirect:
  Bases[I->D.Base][I->D.Index] =
      Bases[I->A.Base][I->A.Index] + Bases[I->B.Base][I->B.Index];
  MGC_FALL();

L_SubDirect:
  Bases[I->D.Base][I->D.Index] =
      Bases[I->A.Base][I->A.Index] - Bases[I->B.Base][I->B.Index];
  MGC_FALL();

L_CmpEqDirect:
  Bases[I->D.Base][I->D.Index] =
      Bases[I->A.Base][I->A.Index] == Bases[I->B.Base][I->B.Index] ? 1 : 0;
  MGC_FALL();

L_CmpNeDirect:
  Bases[I->D.Base][I->D.Index] =
      Bases[I->A.Base][I->A.Index] != Bases[I->B.Base][I->B.Index] ? 1 : 0;
  MGC_FALL();

L_CmpLtDirect:
  Bases[I->D.Base][I->D.Index] =
      static_cast<int64_t>(Bases[I->A.Base][I->A.Index]) <
              static_cast<int64_t>(Bases[I->B.Base][I->B.Index])
          ? 1
          : 0;
  MGC_FALL();

L_CmpLeDirect:
  Bases[I->D.Base][I->D.Index] =
      static_cast<int64_t>(Bases[I->A.Base][I->A.Index]) <=
              static_cast<int64_t>(Bases[I->B.Base][I->B.Index])
          ? 1
          : 0;
  MGC_FALL();

L_CmpGtDirect:
  Bases[I->D.Base][I->D.Index] =
      static_cast<int64_t>(Bases[I->A.Base][I->A.Index]) >
              static_cast<int64_t>(Bases[I->B.Base][I->B.Index])
          ? 1
          : 0;
  MGC_FALL();

L_CmpGeDirect:
  Bases[I->D.Base][I->D.Index] =
      static_cast<int64_t>(Bases[I->A.Base][I->A.Index]) >=
              static_cast<int64_t>(Bases[I->B.Base][I->B.Index])
          ? 1
          : 0;
  MGC_FALL();

L_BranchDirect:
  I = Code +
      (Bases[I->A.Base][I->A.Index] != 0 ? I->Target0 : I->Target1);
  MGC_DISPATCH();

#undef MGC_FAIL
#undef MGC_FALL
#undef MGC_DISPATCH
#undef MGC_SYNC
}

#else // !MGC_COMPUTED_GOTO

bool VM::execThreaded(ThreadContext *, uint64_t, const void *const **) {
  return true; // Unreachable: runQuantumThreaded falls back to the switch.
}

#endif // MGC_COMPUTED_GOTO
