//===- frontend/Sema.h - MG type checker ------------------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resolves names, types every expression, checks assignability and call
/// signatures, and computes the storage annotations the lowerer relies on
/// (NeedsMemory / AddressTaken).  Because MG is statically typed, after this
/// pass the compiler knows exactly which locations hold pointers — the
/// property the paper's gc tables are built from.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_FRONTEND_SEMA_H
#define MGC_FRONTEND_SEMA_H

#include "frontend/AST.h"
#include "support/Diagnostics.h"

namespace mgc {

/// Checks \p Module in place.  Returns false (with diagnostics) on error.
bool checkModule(ModuleAST &Module, Diagnostics &Diags);

} // namespace mgc

#endif // MGC_FRONTEND_SEMA_H
