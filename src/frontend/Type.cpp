//===- frontend/Type.cpp --------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Type.h"

#include <cassert>
#include <set>

using namespace mgc;

const RecordField *Type::findField(const std::string &Name) const {
  assert(isRecord() && "findField on non-record");
  for (const RecordField &F : Fields)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

unsigned Type::sizeInWords() const {
  switch (TheKind) {
  case Kind::Integer:
  case Kind::Boolean:
  case Kind::Nil:
  case Kind::Ref:
    return 1;
  case Kind::Array:
    return static_cast<unsigned>(length()) * Elem->sizeInWords();
  case Kind::Record: {
    unsigned Size = 0;
    for (const RecordField &F : Fields)
      Size += F.Ty->sizeInWords();
    return Size;
  }
  case Kind::OpenArray:
    assert(false && "open arrays have no inline size");
    return 0;
  }
  return 0;
}

void Type::collectPointerOffsets(unsigned Base,
                                 std::vector<unsigned> &Out) const {
  switch (TheKind) {
  case Kind::Integer:
  case Kind::Boolean:
    return;
  case Kind::Nil:
  case Kind::Ref:
    Out.push_back(Base);
    return;
  case Kind::Array: {
    unsigned Stride = Elem->sizeInWords();
    for (int64_t I = 0; I != length(); ++I)
      Elem->collectPointerOffsets(Base + static_cast<unsigned>(I) * Stride,
                                  Out);
    return;
  }
  case Kind::Record:
    for (const RecordField &F : Fields)
      F.Ty->collectPointerOffsets(Base + F.OffsetWords, Out);
    return;
  case Kind::OpenArray:
    assert(false && "open arrays have no inline pointer layout");
    return;
  }
}

namespace {
/// Pairs assumed equal during the structural comparison, to terminate on
/// cyclic types.
using AssumptionSet = std::set<std::pair<const Type *, const Type *>>;

bool equalRec(const Type *A, const Type *B, AssumptionSet &Assumed) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  auto Key = std::make_pair(A, B);
  if (Assumed.count(Key))
    return true;
  Assumed.insert(Key);
  switch (A->kind()) {
  case Type::Kind::Integer:
  case Type::Kind::Boolean:
  case Type::Kind::Nil:
    return true;
  case Type::Kind::Ref:
  case Type::Kind::OpenArray:
    return equalRec(A->elem(), B->elem(), Assumed);
  case Type::Kind::Array:
    return A->lo() == B->lo() && A->hi() == B->hi() &&
           equalRec(A->elem(), B->elem(), Assumed);
  case Type::Kind::Record: {
    if (A->fields().size() != B->fields().size())
      return false;
    for (size_t I = 0, E = A->fields().size(); I != E; ++I) {
      const RecordField &FA = A->fields()[I];
      const RecordField &FB = B->fields()[I];
      if (FA.Name != FB.Name || !equalRec(FA.Ty, FB.Ty, Assumed))
        return false;
    }
    return true;
  }
  }
  return false;
}
} // namespace

bool Type::structurallyEqual(const Type *A, const Type *B) {
  AssumptionSet Assumed;
  return equalRec(A, B, Assumed);
}

bool Type::assignable(const Type *Dst, const Type *Src) {
  if (Src->isNil())
    return Dst->isRef() || Dst->isNil();
  return structurallyEqual(Dst, Src);
}

namespace {
std::string strImpl(const Type *T, std::set<const Type *> &InProgress) {
  // Recursive types (cycles through REF) print a back-reference marker.
  if (InProgress.count(T))
    return "<rec>";
  InProgress.insert(T);
  std::string S;
  switch (T->kind()) {
  case Type::Kind::Integer:
    S = "INTEGER";
    break;
  case Type::Kind::Boolean:
    S = "BOOLEAN";
    break;
  case Type::Kind::Nil:
    S = "NIL";
    break;
  case Type::Kind::Ref:
    S = "REF " + strImpl(T->elem(), InProgress);
    break;
  case Type::Kind::Array:
    S = "ARRAY [" + std::to_string(T->lo()) + ".." +
        std::to_string(T->hi()) + "] OF " + strImpl(T->elem(), InProgress);
    break;
  case Type::Kind::OpenArray:
    S = "ARRAY OF " + strImpl(T->elem(), InProgress);
    break;
  case Type::Kind::Record: {
    S = "RECORD ";
    for (const RecordField &F : T->fields())
      S += F.Name + ": " + (F.Ty ? strImpl(F.Ty, InProgress) : "?") + "; ";
    S += "END";
    break;
  }
  }
  InProgress.erase(T);
  return S;
}
} // namespace

std::string Type::str() const {
  std::set<const Type *> InProgress;
  return strImpl(this, InProgress);
}

TypeContext::TypeContext() {
  IntegerTy = create(Type::Kind::Integer);
  BooleanTy = create(Type::Kind::Boolean);
  NilTy = create(Type::Kind::Nil);
}

Type *TypeContext::create(Type::Kind K) {
  Owned.push_back(std::unique_ptr<Type>(new Type(K)));
  return Owned.back().get();
}

const Type *TypeContext::getRef(const Type *Elem) {
  Type *T = create(Type::Kind::Ref);
  T->Elem = Elem;
  return T;
}

const Type *TypeContext::getArray(int64_t Lo, int64_t Hi, const Type *Elem) {
  assert(Hi >= Lo && "empty array type");
  Type *T = create(Type::Kind::Array);
  T->Lo = Lo;
  T->Hi = Hi;
  T->Elem = Elem;
  return T;
}

const Type *TypeContext::getOpenArray(const Type *Elem) {
  Type *T = create(Type::Kind::OpenArray);
  T->Elem = Elem;
  return T;
}

const Type *TypeContext::getRecord(std::vector<RecordField> Fields) {
  Type *T = beginRecord();
  completeRecord(T, std::move(Fields));
  return T;
}

Type *TypeContext::beginRecord() { return create(Type::Kind::Record); }

Type *TypeContext::beginRef() { return create(Type::Kind::Ref); }

void TypeContext::completeRef(Type *Ref, const Type *Elem) {
  assert(Ref->isRef() && !Ref->Elem && "ref already complete");
  Ref->Elem = Elem;
}

void TypeContext::completeRecord(Type *Rec, std::vector<RecordField> Fields) {
  assert(Rec->isRecord() && Rec->Fields.empty() && "record already complete");
  unsigned Offset = 0;
  for (RecordField &F : Fields) {
    F.OffsetWords = Offset;
    Offset += F.Ty->sizeInWords();
  }
  Rec->Fields = std::move(Fields);
}
