//===- frontend/Parser.cpp ------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cassert>

using namespace mgc;

namespace {

//===----------------------------------------------------------------------===//
// Type expressions (parser-internal)
//===----------------------------------------------------------------------===//

/// A syntactic type, resolved against the module's type environment after a
/// whole TYPE section has been read.
struct TypeExpr {
  enum class Kind { Named, Integer, Boolean, Ref, Array, OpenArray, Record };
  Kind K;
  SourceLoc Loc;
  std::string Name;                        ///< Named.
  std::unique_ptr<TypeExpr> Elem;          ///< Ref/Array/OpenArray.
  int64_t Lo = 0, Hi = -1;                 ///< Array bounds.
  std::vector<std::pair<std::vector<std::string>, std::unique_ptr<TypeExpr>>>
      Fields;                              ///< Record.
};

class Parser {
public:
  Parser(const std::string &Source, Diagnostics &Diags)
      : Lex(Source, Diags), Diags(Diags) {
    Tok = Lex.next();
  }

  std::unique_ptr<ModuleAST> parse();

private:
  //===--------------------------------------------------------------------===
  // Token plumbing
  //===--------------------------------------------------------------------===

  void consume() { Tok = Lex.next(); }

  bool at(TokKind K) const { return Tok.Kind == K; }

  bool accept(TokKind K) {
    if (!at(K))
      return false;
    consume();
    return true;
  }

  bool expect(TokKind K) {
    if (accept(K))
      return true;
    error(std::string("expected ") + tokKindName(K) + ", found " +
          tokKindName(Tok.Kind));
    return false;
  }

  std::string expectIdent() {
    if (at(TokKind::Ident)) {
      std::string Name = Tok.Text;
      consume();
      return Name;
    }
    error(std::string("expected identifier, found ") + tokKindName(Tok.Kind));
    return "";
  }

  void error(const std::string &Msg) {
    // Avoid diagnostic floods after the first syntax error.
    if (!Failed)
      Diags.error(Tok.Loc, Msg);
    Failed = true;
  }

  //===--------------------------------------------------------------------===
  // Declarations
  //===--------------------------------------------------------------------===

  void parseDeclSeq(ProcDecl *Proc);
  void parseConstSection();
  void parseTypeSection();
  void parseVarSection(ProcDecl *Proc);
  void parseProcDecl();

  //===--------------------------------------------------------------------===
  // Types
  //===--------------------------------------------------------------------===

  std::unique_ptr<TypeExpr> parseTypeExpr();
  const Type *resolveTypeExpr(const TypeExpr &TE, bool UnderRef);
  const Type *resolveNamed(const std::string &Name, SourceLoc Loc,
                           bool UnderRef);
  /// Parses a type and resolves it immediately (contexts outside a TYPE
  /// section, where forward references are not allowed).
  const Type *parseAndResolveType();

  //===--------------------------------------------------------------------===
  // Constant expressions
  //===--------------------------------------------------------------------===

  int64_t parseConstExpr();
  int64_t parseConstTerm();
  int64_t parseConstFactor();

  //===--------------------------------------------------------------------===
  // Statements and expressions
  //===--------------------------------------------------------------------===

  StmtList parseStmtSeq();
  StmtPtr parseStmt();
  ExprPtr parseExpr();
  ExprPtr parseSimpleExpr();
  ExprPtr parseTerm();
  ExprPtr parseFactor();
  ExprPtr parseDesignatorOrCall();
  ExprPtr parseDesignatorSuffixes(ExprPtr Base);

  //===--------------------------------------------------------------------===
  // State
  //===--------------------------------------------------------------------===

  Lexer Lex;
  Diagnostics &Diags;
  Token Tok;
  bool Failed = false;

  std::unique_ptr<ModuleAST> Module;
  /// Module-level type environment.  Shell entries are created for the
  /// current TYPE section before resolution so cycles through REF work.
  std::map<std::string, const Type *> TypeEnv;
  /// Types whose definition is not yet complete (record/ref shells of the
  /// TYPE section currently being resolved).
  std::map<std::string, Type *> IncompleteTypes;
  std::map<std::string, int64_t> ConstEnv;
};

//===----------------------------------------------------------------------===//
// Module structure
//===----------------------------------------------------------------------===//

std::unique_ptr<ModuleAST> Parser::parse() {
  Module = std::make_unique<ModuleAST>();
  expect(TokKind::KwModule);
  Module->Name = expectIdent();
  expect(TokKind::Semi);

  parseDeclSeq(/*Proc=*/nullptr);

  expect(TokKind::KwBegin);
  Module->MainBody = parseStmtSeq();
  expect(TokKind::KwEnd);
  std::string Trailer = expectIdent();
  if (!Failed && Trailer != Module->Name)
    error("module trailer '" + Trailer + "' does not match module name '" +
          Module->Name + "'");
  expect(TokKind::Dot);

  if (Failed || Diags.hasErrors())
    return nullptr;
  return std::move(Module);
}

void Parser::parseDeclSeq(ProcDecl *Proc) {
  while (!Failed) {
    if (at(TokKind::KwConst)) {
      parseConstSection();
    } else if (at(TokKind::KwType)) {
      if (Proc) {
        error("TYPE sections are only permitted at module level");
        return;
      }
      parseTypeSection();
    } else if (at(TokKind::KwVar)) {
      parseVarSection(Proc);
    } else if (at(TokKind::KwProcedure)) {
      if (Proc) {
        error("nested procedures are not supported");
        return;
      }
      parseProcDecl();
    } else {
      return;
    }
  }
}

void Parser::parseConstSection() {
  expect(TokKind::KwConst);
  while (at(TokKind::Ident)) {
    std::string Name = expectIdent();
    expect(TokKind::Equal);
    int64_t Value = parseConstExpr();
    expect(TokKind::Semi);
    ConstEnv[Name] = Value;
    auto Sym = std::make_unique<Symbol>(Symbol::Kind::Constant, Name);
    Sym->Ty = Module->Types.integerType();
    Sym->ConstValue = Value;
    Module->OtherSymbols.push_back(std::move(Sym));
  }
}

void Parser::parseTypeSection() {
  expect(TokKind::KwType);
  std::vector<std::pair<std::string, std::unique_ptr<TypeExpr>>> Decls;
  while (at(TokKind::Ident)) {
    std::string Name = expectIdent();
    expect(TokKind::Equal);
    auto TE = parseTypeExpr();
    expect(TokKind::Semi);
    if (!TE)
      return;
    Decls.emplace_back(std::move(Name), std::move(TE));
  }

  // Pass 1: register shells for REF and RECORD declarations so later (and
  // mutually recursive) declarations in this section can name them.
  for (auto &[Name, TE] : Decls) {
    if (TypeEnv.count(Name)) {
      error("duplicate type name '" + Name + "'");
      return;
    }
    if (TE->K == TypeExpr::Kind::Record) {
      Type *Shell = Module->Types.beginRecord();
      TypeEnv[Name] = Shell;
      IncompleteTypes[Name] = Shell;
    } else if (TE->K == TypeExpr::Kind::Ref) {
      Type *Shell = Module->Types.beginRef();
      TypeEnv[Name] = Shell;
      IncompleteTypes[Name] = Shell;
    }
  }

  // Pass 2: complete each declaration in order.
  for (auto &[Name, TE] : Decls) {
    if (Failed)
      return;
    if (TE->K == TypeExpr::Kind::Record) {
      Type *Shell = IncompleteTypes[Name];
      std::vector<RecordField> Fields;
      for (auto &[FieldNames, FieldTE] : TE->Fields) {
        const Type *FT = resolveTypeExpr(*FieldTE, /*UnderRef=*/false);
        if (!FT)
          return;
        for (const std::string &FN : FieldNames)
          Fields.push_back({FN, FT, 0});
      }
      Module->Types.completeRecord(Shell, std::move(Fields));
      IncompleteTypes.erase(Name);
    } else if (TE->K == TypeExpr::Kind::Ref) {
      Type *Shell = IncompleteTypes[Name];
      const Type *Elem = resolveTypeExpr(*TE->Elem, /*UnderRef=*/true);
      if (!Elem)
        return;
      Module->Types.completeRef(Shell, Elem);
      IncompleteTypes.erase(Name);
    } else {
      const Type *T = resolveTypeExpr(*TE, /*UnderRef=*/false);
      if (!T)
        return;
      TypeEnv[Name] = T;
    }
    // Expose the name to Sema (NEW's argument is a type name).
    auto Sym = std::make_unique<Symbol>(Symbol::Kind::TypeName, Name);
    Sym->Ty = TypeEnv[Name];
    Module->OtherSymbols.push_back(std::move(Sym));
  }
}

void Parser::parseVarSection(ProcDecl *Proc) {
  expect(TokKind::KwVar);
  while (at(TokKind::Ident)) {
    std::vector<std::string> Names;
    Names.push_back(expectIdent());
    while (accept(TokKind::Comma))
      Names.push_back(expectIdent());
    expect(TokKind::Colon);
    const Type *Ty = parseAndResolveType();
    expect(TokKind::Semi);
    if (!Ty)
      return;
    for (const std::string &Name : Names) {
      auto Sym = std::make_unique<Symbol>(
          Proc ? Symbol::Kind::LocalVar : Symbol::Kind::GlobalVar, Name);
      Sym->Ty = Ty;
      if (Proc)
        Proc->Locals.push_back(std::move(Sym));
      else
        Module->Globals.push_back(std::move(Sym));
    }
  }
}

void Parser::parseProcDecl() {
  expect(TokKind::KwProcedure);
  auto Proc = std::make_unique<ProcDecl>();
  Proc->Loc = Tok.Loc;
  Proc->Name = expectIdent();
  expect(TokKind::LParen);
  unsigned ParamIndex = 0;
  if (!at(TokKind::RParen)) {
    do {
      bool IsVar = accept(TokKind::KwVar);
      std::vector<std::string> Names;
      Names.push_back(expectIdent());
      while (accept(TokKind::Comma))
        Names.push_back(expectIdent());
      expect(TokKind::Colon);
      const Type *Ty = parseAndResolveType();
      if (!Ty)
        return;
      for (const std::string &Name : Names) {
        auto Sym = std::make_unique<Symbol>(Symbol::Kind::Param, Name);
        Sym->Ty = Ty;
        Sym->IsVarParam = IsVar;
        Sym->ParamIndex = ParamIndex++;
        Proc->Params.push_back(std::move(Sym));
      }
    } while (accept(TokKind::Semi));
  }
  expect(TokKind::RParen);
  if (accept(TokKind::Colon))
    Proc->RetTy = parseAndResolveType();
  expect(TokKind::Semi);

  parseDeclSeq(Proc.get());

  expect(TokKind::KwBegin);
  Proc->Body = parseStmtSeq();
  expect(TokKind::KwEnd);
  std::string Trailer = expectIdent();
  if (!Failed && Trailer != Proc->Name)
    error("procedure trailer '" + Trailer + "' does not match '" + Proc->Name +
          "'");
  expect(TokKind::Semi);
  Module->Procs.push_back(std::move(Proc));
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

std::unique_ptr<TypeExpr> Parser::parseTypeExpr() {
  auto TE = std::make_unique<TypeExpr>();
  TE->Loc = Tok.Loc;
  if (accept(TokKind::KwInteger)) {
    TE->K = TypeExpr::Kind::Integer;
    return TE;
  }
  if (accept(TokKind::KwBoolean)) {
    TE->K = TypeExpr::Kind::Boolean;
    return TE;
  }
  if (at(TokKind::Ident)) {
    TE->K = TypeExpr::Kind::Named;
    TE->Name = expectIdent();
    return TE;
  }
  if (accept(TokKind::KwRef)) {
    TE->K = TypeExpr::Kind::Ref;
    TE->Elem = parseTypeExpr();
    if (!TE->Elem)
      return nullptr;
    return TE;
  }
  if (accept(TokKind::KwArray)) {
    if (accept(TokKind::LBracket)) {
      TE->K = TypeExpr::Kind::Array;
      TE->Lo = parseConstExpr();
      expect(TokKind::DotDot);
      TE->Hi = parseConstExpr();
      expect(TokKind::RBracket);
    } else {
      TE->K = TypeExpr::Kind::OpenArray;
    }
    expect(TokKind::KwOf);
    TE->Elem = parseTypeExpr();
    if (!TE->Elem)
      return nullptr;
    return TE;
  }
  if (accept(TokKind::KwRecord)) {
    TE->K = TypeExpr::Kind::Record;
    while (at(TokKind::Ident)) {
      std::vector<std::string> Names;
      Names.push_back(expectIdent());
      while (accept(TokKind::Comma))
        Names.push_back(expectIdent());
      expect(TokKind::Colon);
      auto FieldTE = parseTypeExpr();
      if (!FieldTE)
        return nullptr;
      TE->Fields.emplace_back(std::move(Names), std::move(FieldTE));
      // The semicolon after the last field is optional (Modula-3 style).
      if (!accept(TokKind::Semi))
        break;
    }
    expect(TokKind::KwEnd);
    return TE;
  }
  error(std::string("expected a type, found ") + tokKindName(Tok.Kind));
  return nullptr;
}

const Type *Parser::resolveNamed(const std::string &Name, SourceLoc Loc,
                                 bool UnderRef) {
  auto It = TypeEnv.find(Name);
  if (It == TypeEnv.end()) {
    if (!Failed)
      Diags.error(Loc, "unknown type '" + Name + "'");
    Failed = true;
    return nullptr;
  }
  auto Incomplete = IncompleteTypes.find(Name);
  if (!UnderRef && Incomplete != IncompleteTypes.end() &&
      !Incomplete->second->isRef()) {
    // An incomplete record has unknown size; only REF may point at it.
    // Incomplete REF shells are fine anywhere: a REF is one word no
    // matter what it will eventually point to.
    if (!Failed)
      Diags.error(Loc, "type '" + Name +
                           "' is used before its definition is complete "
                           "(only REF may forward-reference)");
    Failed = true;
    return nullptr;
  }
  return It->second;
}

const Type *Parser::resolveTypeExpr(const TypeExpr &TE, bool UnderRef) {
  TypeContext &Types = Module->Types;
  switch (TE.K) {
  case TypeExpr::Kind::Integer:
    return Types.integerType();
  case TypeExpr::Kind::Boolean:
    return Types.booleanType();
  case TypeExpr::Kind::Named:
    return resolveNamed(TE.Name, TE.Loc, UnderRef);
  case TypeExpr::Kind::Ref: {
    const Type *Elem = resolveTypeExpr(*TE.Elem, /*UnderRef=*/true);
    return Elem ? Types.getRef(Elem) : nullptr;
  }
  case TypeExpr::Kind::Array: {
    if (TE.Hi < TE.Lo) {
      Diags.error(TE.Loc, "array upper bound below lower bound");
      Failed = true;
      return nullptr;
    }
    const Type *Elem = resolveTypeExpr(*TE.Elem, /*UnderRef=*/false);
    return Elem ? Types.getArray(TE.Lo, TE.Hi, Elem) : nullptr;
  }
  case TypeExpr::Kind::OpenArray: {
    if (!UnderRef) {
      Diags.error(TE.Loc, "open arrays are only permitted under REF");
      Failed = true;
      return nullptr;
    }
    const Type *Elem = resolveTypeExpr(*TE.Elem, /*UnderRef=*/false);
    return Elem ? Types.getOpenArray(Elem) : nullptr;
  }
  case TypeExpr::Kind::Record: {
    std::vector<RecordField> Fields;
    for (const auto &[Names, FieldTE] : TE.Fields) {
      const Type *FT = resolveTypeExpr(*FieldTE, /*UnderRef=*/false);
      if (!FT)
        return nullptr;
      for (const std::string &FN : Names)
        Fields.push_back({FN, FT, 0});
    }
    return Types.getRecord(std::move(Fields));
  }
  }
  return nullptr;
}

const Type *Parser::parseAndResolveType() {
  auto TE = parseTypeExpr();
  if (!TE)
    return nullptr;
  return resolveTypeExpr(*TE, /*UnderRef=*/false);
}

//===----------------------------------------------------------------------===//
// Constant expressions
//===----------------------------------------------------------------------===//

int64_t Parser::parseConstExpr() {
  int64_t V = parseConstTerm();
  while (at(TokKind::Plus) || at(TokKind::Minus)) {
    bool IsAdd = at(TokKind::Plus);
    consume();
    int64_t R = parseConstTerm();
    V = IsAdd ? V + R : V - R;
  }
  return V;
}

int64_t Parser::parseConstTerm() {
  int64_t V = parseConstFactor();
  while (at(TokKind::Star) || at(TokKind::KwDiv) || at(TokKind::KwMod)) {
    TokKind Op = Tok.Kind;
    consume();
    int64_t R = parseConstFactor();
    if (Op == TokKind::Star) {
      V *= R;
    } else if (R == 0) {
      error("division by zero in constant expression");
    } else if (Op == TokKind::KwDiv) {
      V /= R;
    } else {
      V %= R;
    }
  }
  return V;
}

int64_t Parser::parseConstFactor() {
  if (at(TokKind::IntLit)) {
    int64_t V = Tok.IntValue;
    consume();
    return V;
  }
  if (accept(TokKind::Minus))
    return -parseConstFactor();
  if (accept(TokKind::LParen)) {
    int64_t V = parseConstExpr();
    expect(TokKind::RParen);
    return V;
  }
  if (at(TokKind::Ident)) {
    std::string Name = expectIdent();
    auto It = ConstEnv.find(Name);
    if (It != ConstEnv.end())
      return It->second;
    error("unknown constant '" + Name + "'");
    return 0;
  }
  error(std::string("expected constant expression, found ") +
        tokKindName(Tok.Kind));
  return 0;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtList Parser::parseStmtSeq() {
  StmtList List;
  while (!Failed) {
    // Empty statements: stray semicolons are permitted.
    while (accept(TokKind::Semi))
      ;
    if (at(TokKind::KwEnd) || at(TokKind::KwElse) || at(TokKind::KwElsif) ||
        at(TokKind::KwUntil) || at(TokKind::Eof))
      return List;
    StmtPtr S = parseStmt();
    if (!S)
      return List;
    List.push_back(std::move(S));
    if (!at(TokKind::Semi) && !at(TokKind::KwEnd) && !at(TokKind::KwElse) &&
        !at(TokKind::KwElsif) && !at(TokKind::KwUntil)) {
      error(std::string("expected ';' or block end, found ") +
            tokKindName(Tok.Kind));
      return List;
    }
  }
  return List;
}

StmtPtr Parser::parseStmt() {
  SourceLoc Loc = Tok.Loc;

  if (accept(TokKind::KwIf)) {
    auto S = std::make_unique<IfStmt>();
    S->Loc = Loc;
    do {
      IfStmt::Arm Arm;
      Arm.Cond = parseExpr();
      expect(TokKind::KwThen);
      Arm.Body = parseStmtSeq();
      S->Arms.push_back(std::move(Arm));
    } while (accept(TokKind::KwElsif));
    if (accept(TokKind::KwElse))
      S->Else = parseStmtSeq();
    expect(TokKind::KwEnd);
    return S;
  }

  if (accept(TokKind::KwWhile)) {
    auto S = std::make_unique<WhileStmt>();
    S->Loc = Loc;
    S->Cond = parseExpr();
    expect(TokKind::KwDo);
    S->Body = parseStmtSeq();
    expect(TokKind::KwEnd);
    return S;
  }

  if (accept(TokKind::KwRepeat)) {
    auto S = std::make_unique<RepeatStmt>();
    S->Loc = Loc;
    S->Body = parseStmtSeq();
    expect(TokKind::KwUntil);
    S->Cond = parseExpr();
    return S;
  }

  if (accept(TokKind::KwLoop)) {
    auto S = std::make_unique<LoopStmt>();
    S->Loc = Loc;
    S->Body = parseStmtSeq();
    expect(TokKind::KwEnd);
    return S;
  }

  if (accept(TokKind::KwExit)) {
    auto S = std::make_unique<ExitStmt>();
    S->Loc = Loc;
    return S;
  }

  if (accept(TokKind::KwFor)) {
    auto S = std::make_unique<ForStmt>();
    S->Loc = Loc;
    S->IndexName = expectIdent();
    expect(TokKind::Assign);
    S->From = parseExpr();
    expect(TokKind::KwTo);
    S->To = parseExpr();
    if (accept(TokKind::KwBy))
      S->By = parseConstExpr();
    expect(TokKind::KwDo);
    S->Body = parseStmtSeq();
    expect(TokKind::KwEnd);
    return S;
  }

  if (accept(TokKind::KwReturn)) {
    auto S = std::make_unique<ReturnStmt>();
    S->Loc = Loc;
    if (!at(TokKind::Semi) && !at(TokKind::KwEnd) && !at(TokKind::KwElse) &&
        !at(TokKind::KwElsif) && !at(TokKind::KwUntil))
      S->Value = parseExpr();
    return S;
  }

  if (accept(TokKind::KwWith)) {
    auto S = std::make_unique<WithStmt>();
    S->Loc = Loc;
    S->AliasName = expectIdent();
    expect(TokKind::Equal);
    S->Target = parseDesignatorOrCall();
    expect(TokKind::KwDo);
    S->Body = parseStmtSeq();
    expect(TokKind::KwEnd);
    return S;
  }

  if (at(TokKind::Ident)) {
    // INC/DEC are spelled as ordinary identifiers.
    if (Tok.Text == "INC" || Tok.Text == "DEC") {
      bool IsInc = Tok.Text == "INC";
      consume();
      auto S = std::make_unique<IncDecStmt>(IsInc);
      S->Loc = Loc;
      expect(TokKind::LParen);
      S->Target = parseDesignatorOrCall();
      if (accept(TokKind::Comma))
        S->Amount = parseExpr();
      expect(TokKind::RParen);
      return S;
    }

    ExprPtr D = parseDesignatorOrCall();
    if (!D)
      return nullptr;
    if (accept(TokKind::Assign)) {
      ExprPtr V = parseExpr();
      auto S = std::make_unique<AssignStmt>(std::move(D), std::move(V));
      S->Loc = Loc;
      return S;
    }
    if (D->ExprKind == Expr::Kind::Call) {
      auto S = std::make_unique<CallStmt>(
          std::unique_ptr<CallExpr>(static_cast<CallExpr *>(D.release())));
      S->Loc = Loc;
      return S;
    }
    error("expected ':=' or a procedure call");
    return nullptr;
  }

  error(std::string("expected a statement, found ") + tokKindName(Tok.Kind));
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() {
  ExprPtr L = parseSimpleExpr();
  if (!L)
    return nullptr;
  BinOp Op;
  switch (Tok.Kind) {
  case TokKind::Equal: Op = BinOp::Eq; break;
  case TokKind::NotEqual: Op = BinOp::Ne; break;
  case TokKind::Less: Op = BinOp::Lt; break;
  case TokKind::LessEq: Op = BinOp::Le; break;
  case TokKind::Greater: Op = BinOp::Gt; break;
  case TokKind::GreaterEq: Op = BinOp::Ge; break;
  default:
    return L;
  }
  SourceLoc Loc = Tok.Loc;
  consume();
  ExprPtr R = parseSimpleExpr();
  if (!R)
    return nullptr;
  auto E = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R));
  E->Loc = Loc;
  return E;
}

ExprPtr Parser::parseSimpleExpr() {
  bool Negate = false;
  SourceLoc SignLoc = Tok.Loc;
  if (at(TokKind::Plus) || at(TokKind::Minus)) {
    Negate = at(TokKind::Minus);
    consume();
  }
  ExprPtr L = parseTerm();
  if (!L)
    return nullptr;
  if (Negate) {
    auto N = std::make_unique<UnaryExpr>(UnOp::Neg, std::move(L));
    N->Loc = SignLoc;
    L = std::move(N);
  }
  while (at(TokKind::Plus) || at(TokKind::Minus) || at(TokKind::KwOr)) {
    BinOp Op = at(TokKind::Plus)    ? BinOp::Add
               : at(TokKind::Minus) ? BinOp::Sub
                                    : BinOp::Or;
    SourceLoc Loc = Tok.Loc;
    consume();
    ExprPtr R = parseTerm();
    if (!R)
      return nullptr;
    auto E = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R));
    E->Loc = Loc;
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseTerm() {
  ExprPtr L = parseFactor();
  if (!L)
    return nullptr;
  while (at(TokKind::Star) || at(TokKind::KwDiv) || at(TokKind::KwMod) ||
         at(TokKind::KwAnd)) {
    BinOp Op = at(TokKind::Star)    ? BinOp::Mul
               : at(TokKind::KwDiv) ? BinOp::Div
               : at(TokKind::KwMod) ? BinOp::Mod
                                    : BinOp::And;
    SourceLoc Loc = Tok.Loc;
    consume();
    ExprPtr R = parseFactor();
    if (!R)
      return nullptr;
    auto E = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R));
    E->Loc = Loc;
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseFactor() {
  SourceLoc Loc = Tok.Loc;
  if (at(TokKind::IntLit)) {
    auto E = std::make_unique<IntLitExpr>(Tok.IntValue);
    E->Loc = Loc;
    consume();
    return E;
  }
  if (accept(TokKind::KwTrue)) {
    auto E = std::make_unique<BoolLitExpr>(true);
    E->Loc = Loc;
    return E;
  }
  if (accept(TokKind::KwFalse)) {
    auto E = std::make_unique<BoolLitExpr>(false);
    E->Loc = Loc;
    return E;
  }
  if (accept(TokKind::KwNil)) {
    auto E = std::make_unique<NilLitExpr>();
    E->Loc = Loc;
    return E;
  }
  if (at(TokKind::StrLit)) {
    auto E = std::make_unique<StrLitExpr>(Tok.Text);
    E->Loc = Loc;
    consume();
    return parseDesignatorSuffixes(std::move(E));
  }
  if (accept(TokKind::KwNot)) {
    ExprPtr Sub = parseFactor();
    if (!Sub)
      return nullptr;
    auto E = std::make_unique<UnaryExpr>(UnOp::Not, std::move(Sub));
    E->Loc = Loc;
    return E;
  }
  if (accept(TokKind::LParen)) {
    ExprPtr E = parseExpr();
    expect(TokKind::RParen);
    return E;
  }
  if (at(TokKind::Ident))
    return parseDesignatorOrCall();
  error(std::string("expected an expression, found ") +
        tokKindName(Tok.Kind));
  return nullptr;
}

ExprPtr Parser::parseDesignatorOrCall() {
  SourceLoc Loc = Tok.Loc;
  std::string Name = expectIdent();
  if (at(TokKind::LParen)) {
    consume();
    std::vector<ExprPtr> Args;
    if (!at(TokKind::RParen)) {
      do {
        ExprPtr A = parseExpr();
        if (!A)
          return nullptr;
        Args.push_back(std::move(A));
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen);
    auto E = std::make_unique<CallExpr>(std::move(Name), std::move(Args));
    E->Loc = Loc;
    // Function results may be further selected (e.g. `head(l)^.x`).
    return parseDesignatorSuffixes(std::move(E));
  }
  auto E = std::make_unique<NameExpr>(std::move(Name));
  E->Loc = Loc;
  return parseDesignatorSuffixes(std::move(E));
}

ExprPtr Parser::parseDesignatorSuffixes(ExprPtr Base) {
  while (true) {
    SourceLoc Loc = Tok.Loc;
    if (accept(TokKind::Caret)) {
      auto E = std::make_unique<DerefExpr>(std::move(Base));
      E->Loc = Loc;
      Base = std::move(E);
      continue;
    }
    if (accept(TokKind::Dot)) {
      std::string Field = expectIdent();
      auto E = std::make_unique<FieldExpr>(std::move(Base), std::move(Field));
      E->Loc = Loc;
      Base = std::move(E);
      continue;
    }
    if (accept(TokKind::LBracket)) {
      // `a[i, j]` is sugar for `a[i][j]`.
      do {
        ExprPtr Index = parseExpr();
        if (!Index)
          return nullptr;
        auto E =
            std::make_unique<IndexExpr>(std::move(Base), std::move(Index));
        E->Loc = Loc;
        Base = std::move(E);
      } while (accept(TokKind::Comma));
      expect(TokKind::RBracket);
      continue;
    }
    return Base;
  }
}

} // namespace

std::unique_ptr<ModuleAST> mgc::parseModule(const std::string &Source,
                                            Diagnostics &Diags) {
  Parser P(Source, Diags);
  return P.parse();
}
