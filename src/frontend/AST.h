//===- frontend/AST.h - MG abstract syntax ----------------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for MG.  The parser builds these; the type checker
/// (Sema) fills in the annotation fields (types, resolved symbols); the
/// lowerer consumes them.  Nodes use a Kind enum plus static_cast dispatch,
/// in the spirit of LLVM's hand-rolled RTTI, since the project builds
/// without RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_FRONTEND_AST_H
#define MGC_FRONTEND_AST_H

#include "frontend/Type.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mgc {

class ProcDecl;

//===----------------------------------------------------------------------===//
// Symbols
//===----------------------------------------------------------------------===//

/// A named entity.  Variables carry the storage-relevant annotations the
/// lowerer needs: whether the variable must live in memory (its address is
/// taken, or it is an aggregate) and its index within its storage class.
class Symbol {
public:
  enum class Kind {
    GlobalVar,
    LocalVar,
    Param,
    WithAlias, ///< WITH alias: a name bound to the address of a designator.
    ForIndex,  ///< FOR loop index, implicitly declared.
    Constant,
    TypeName,
    Proc,
  };

  Kind SymKind;
  std::string Name;
  const Type *Ty = nullptr;

  /// Param: whether passed by reference.
  bool IsVarParam = false;
  /// Param: 0-based position.
  unsigned ParamIndex = 0;
  /// Variables: true when the variable must live in a frame/global slot
  /// rather than a virtual register (aggregates; VAR-passed locals).
  bool NeedsMemory = false;
  /// Set by Sema when the variable is passed as a VAR argument somewhere.
  bool AddressTaken = false;

  /// Constant: its value.
  int64_t ConstValue = 0;
  /// Proc symbol: the declaration.
  ProcDecl *Proc = nullptr;

  Symbol(Kind K, std::string Name) : SymKind(K), Name(std::move(Name)) {}

  bool isVariable() const {
    return SymKind == Kind::GlobalVar || SymKind == Kind::LocalVar ||
           SymKind == Kind::Param || SymKind == Kind::ForIndex;
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class BinOp {
  Add, Sub, Mul, Div, Mod,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or, ///< Short-circuit.
};

enum class UnOp { Neg, Not };

/// Builtin procedures and functions, resolved by name in Sema.
enum class Builtin {
  None,
  New,      ///< NEW(T) / NEW(T, n)
  Number,   ///< NUMBER(a): element count of an array
  First,    ///< FIRST(a): low bound
  Last,     ///< LAST(a): high bound
  Abs,
  PutInt,
  PutChar,
  PutLn,
  GcCollect, ///< Force a collection (testing hook).
  Halt,
  ReqDone,  ///< Server-workload request boundary marker (not a gc-point).
};

class Expr {
public:
  enum class Kind {
    IntLit, BoolLit, NilLit, StrLit, Name,
    Binary, Unary, Index, Field, Deref, Call,
  };

  Kind ExprKind;
  SourceLoc Loc;
  /// Filled in by Sema.
  const Type *Ty = nullptr;

  explicit Expr(Kind K) : ExprKind(K) {}
  virtual ~Expr() = default;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLitExpr : public Expr {
public:
  int64_t Value;
  explicit IntLitExpr(int64_t V) : Expr(Kind::IntLit), Value(V) {}
};

class BoolLitExpr : public Expr {
public:
  bool Value;
  explicit BoolLitExpr(bool V) : Expr(Kind::BoolLit), Value(V) {}
};

class NilLitExpr : public Expr {
public:
  NilLitExpr() : Expr(Kind::NilLit) {}
};

/// A string literal, typed REF ARRAY OF INTEGER (character codes) and
/// materialized as a freshly allocated open array — so a string literal is
/// an allocation and therefore a gc-point.
class StrLitExpr : public Expr {
public:
  std::string Value;
  explicit StrLitExpr(std::string V)
      : Expr(Kind::StrLit), Value(std::move(V)) {}
};

class NameExpr : public Expr {
public:
  std::string Name;
  /// Resolved by Sema; may denote a variable, constant, or type name (the
  /// last only as a NEW argument).
  Symbol *Sym = nullptr;
  explicit NameExpr(std::string N) : Expr(Kind::Name), Name(std::move(N)) {}
};

class BinaryExpr : public Expr {
public:
  BinOp Op;
  ExprPtr LHS, RHS;
  BinaryExpr(BinOp Op, ExprPtr L, ExprPtr R)
      : Expr(Kind::Binary), Op(Op), LHS(std::move(L)), RHS(std::move(R)) {}
};

class UnaryExpr : public Expr {
public:
  UnOp Op;
  ExprPtr Sub;
  UnaryExpr(UnOp Op, ExprPtr S) : Expr(Kind::Unary), Op(Op), Sub(std::move(S)) {}
};

/// `Base[Index]`.  When Base has REF-to-array type the REF is implicitly
/// dereferenced (Modula-3 style); Sema records that in BaseIsRef.
class IndexExpr : public Expr {
public:
  ExprPtr Base, Index;
  bool BaseIsRef = false;
  IndexExpr(ExprPtr B, ExprPtr I)
      : Expr(Kind::Index), Base(std::move(B)), Index(std::move(I)) {}
};

/// `Base.Field`, with implicit dereference of REF-to-record bases.
class FieldExpr : public Expr {
public:
  ExprPtr Base;
  std::string FieldName;
  const RecordField *Field = nullptr;
  bool BaseIsRef = false;
  FieldExpr(ExprPtr B, std::string F)
      : Expr(Kind::Field), Base(std::move(B)), FieldName(std::move(F)) {}
};

/// `Base^`.
class DerefExpr : public Expr {
public:
  ExprPtr Base;
  explicit DerefExpr(ExprPtr B) : Expr(Kind::Deref), Base(std::move(B)) {}
};

/// A call of a user procedure or builtin, in expression or statement
/// position.
class CallExpr : public Expr {
public:
  std::string Callee;
  std::vector<ExprPtr> Args;
  /// Resolution results.
  Builtin BuiltinKind = Builtin::None;
  ProcDecl *Proc = nullptr;
  /// For NEW: the referent type being allocated (Ty is the REF type).
  const Type *AllocType = nullptr;
  CallExpr(std::string C, std::vector<ExprPtr> A)
      : Expr(Kind::Call), Callee(std::move(C)), Args(std::move(A)) {}
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind {
    Assign, Call, If, While, Repeat, Loop, Exit, For, Return, With, IncDec,
  };

  Kind StmtKind;
  SourceLoc Loc;

  explicit Stmt(Kind K) : StmtKind(K) {}
  virtual ~Stmt() = default;
};

using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

class AssignStmt : public Stmt {
public:
  ExprPtr Target, Value;
  AssignStmt(ExprPtr T, ExprPtr V)
      : Stmt(Kind::Assign), Target(std::move(T)), Value(std::move(V)) {}
};

class CallStmt : public Stmt {
public:
  std::unique_ptr<CallExpr> Call;
  explicit CallStmt(std::unique_ptr<CallExpr> C)
      : Stmt(Kind::Call), Call(std::move(C)) {}
};

class IfStmt : public Stmt {
public:
  struct Arm {
    ExprPtr Cond;
    StmtList Body;
  };
  std::vector<Arm> Arms; ///< IF plus any ELSIFs.
  StmtList Else;
  IfStmt() : Stmt(Kind::If) {}
};

class WhileStmt : public Stmt {
public:
  ExprPtr Cond;
  StmtList Body;
  WhileStmt() : Stmt(Kind::While) {}
};

class RepeatStmt : public Stmt {
public:
  StmtList Body;
  ExprPtr Cond; ///< UNTIL condition.
  RepeatStmt() : Stmt(Kind::Repeat) {}
};

class LoopStmt : public Stmt {
public:
  StmtList Body;
  LoopStmt() : Stmt(Kind::Loop) {}
};

class ExitStmt : public Stmt {
public:
  ExitStmt() : Stmt(Kind::Exit) {}
};

class ForStmt : public Stmt {
public:
  std::string IndexName;
  Symbol *IndexSym = nullptr; ///< Implicitly declared INTEGER, set by Sema.
  ExprPtr From, To;
  int64_t By = 1;
  StmtList Body;
  ForStmt() : Stmt(Kind::For) {}
};

class ReturnStmt : public Stmt {
public:
  ExprPtr Value; ///< Null for plain RETURN.
  ReturnStmt() : Stmt(Kind::Return) {}
};

/// `WITH alias = designator DO ... END`: binds the *address* of the
/// designator, creating an interior pointer when the designator denotes a
/// heap location — one of the paper's sources of untidy pointers.
class WithStmt : public Stmt {
public:
  std::string AliasName;
  Symbol *AliasSym = nullptr;
  ExprPtr Target;
  StmtList Body;
  WithStmt() : Stmt(Kind::With) {}
};

class IncDecStmt : public Stmt {
public:
  ExprPtr Target;
  ExprPtr Amount; ///< Null means 1.
  bool IsInc;
  explicit IncDecStmt(bool IsInc) : Stmt(Kind::IncDec), IsInc(IsInc) {}
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

class ProcDecl {
public:
  std::string Name;
  SourceLoc Loc;
  std::vector<std::unique_ptr<Symbol>> Params;
  const Type *RetTy = nullptr; ///< Null for proper procedures.
  /// All locally declared variables (including FOR indices and WITH
  /// aliases, added by Sema).
  std::vector<std::unique_ptr<Symbol>> Locals;
  StmtList Body;
  /// Assigned by Sema: position in the module's procedure list.
  unsigned Index = 0;
};

/// A parsed (and, after Sema, checked) MG module.
class ModuleAST {
public:
  std::string Name;
  TypeContext Types;
  std::vector<std::unique_ptr<Symbol>> Globals;
  std::vector<std::unique_ptr<Symbol>> OtherSymbols; ///< Consts, type names.
  std::vector<std::unique_ptr<ProcDecl>> Procs;
  StmtList MainBody;
  /// FOR indices and WITH aliases synthesized by Sema for the main body.
  std::vector<std::unique_ptr<Symbol>> MainLocals;

  ProcDecl *findProc(const std::string &Name) const {
    for (const auto &P : Procs)
      if (P->Name == Name)
        return P.get();
    return nullptr;
  }
};

} // namespace mgc

#endif // MGC_FRONTEND_AST_H
