//===- frontend/Lexer.cpp -------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace mgc;

const char *mgc::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof: return "end of input";
  case TokKind::Ident: return "identifier";
  case TokKind::IntLit: return "integer literal";
  case TokKind::StrLit: return "string literal";
  case TokKind::KwModule: return "'MODULE'";
  case TokKind::KwBegin: return "'BEGIN'";
  case TokKind::KwEnd: return "'END'";
  case TokKind::KwVar: return "'VAR'";
  case TokKind::KwType: return "'TYPE'";
  case TokKind::KwConst: return "'CONST'";
  case TokKind::KwProcedure: return "'PROCEDURE'";
  case TokKind::KwIf: return "'IF'";
  case TokKind::KwThen: return "'THEN'";
  case TokKind::KwElsif: return "'ELSIF'";
  case TokKind::KwElse: return "'ELSE'";
  case TokKind::KwWhile: return "'WHILE'";
  case TokKind::KwDo: return "'DO'";
  case TokKind::KwRepeat: return "'REPEAT'";
  case TokKind::KwUntil: return "'UNTIL'";
  case TokKind::KwFor: return "'FOR'";
  case TokKind::KwTo: return "'TO'";
  case TokKind::KwBy: return "'BY'";
  case TokKind::KwReturn: return "'RETURN'";
  case TokKind::KwWith: return "'WITH'";
  case TokKind::KwNil: return "'NIL'";
  case TokKind::KwTrue: return "'TRUE'";
  case TokKind::KwFalse: return "'FALSE'";
  case TokKind::KwDiv: return "'DIV'";
  case TokKind::KwMod: return "'MOD'";
  case TokKind::KwAnd: return "'AND'";
  case TokKind::KwOr: return "'OR'";
  case TokKind::KwNot: return "'NOT'";
  case TokKind::KwArray: return "'ARRAY'";
  case TokKind::KwOf: return "'OF'";
  case TokKind::KwRecord: return "'RECORD'";
  case TokKind::KwRef: return "'REF'";
  case TokKind::KwInteger: return "'INTEGER'";
  case TokKind::KwBoolean: return "'BOOLEAN'";
  case TokKind::KwExit: return "'EXIT'";
  case TokKind::KwLoop: return "'LOOP'";
  case TokKind::Assign: return "':='";
  case TokKind::Equal: return "'='";
  case TokKind::NotEqual: return "'#'";
  case TokKind::Less: return "'<'";
  case TokKind::LessEq: return "'<='";
  case TokKind::Greater: return "'>'";
  case TokKind::GreaterEq: return "'>='";
  case TokKind::Plus: return "'+'";
  case TokKind::Minus: return "'-'";
  case TokKind::Star: return "'*'";
  case TokKind::LParen: return "'('";
  case TokKind::RParen: return "')'";
  case TokKind::LBracket: return "'['";
  case TokKind::RBracket: return "']'";
  case TokKind::Semi: return "';'";
  case TokKind::Colon: return "':'";
  case TokKind::Comma: return "','";
  case TokKind::Dot: return "'.'";
  case TokKind::DotDot: return "'..'";
  case TokKind::Caret: return "'^'";
  }
  return "?";
}

namespace {
const std::unordered_map<std::string, TokKind> &keywordTable() {
  static const std::unordered_map<std::string, TokKind> Table = {
      {"MODULE", TokKind::KwModule},   {"BEGIN", TokKind::KwBegin},
      {"END", TokKind::KwEnd},         {"VAR", TokKind::KwVar},
      {"TYPE", TokKind::KwType},       {"CONST", TokKind::KwConst},
      {"PROCEDURE", TokKind::KwProcedure},
      {"IF", TokKind::KwIf},           {"THEN", TokKind::KwThen},
      {"ELSIF", TokKind::KwElsif},     {"ELSE", TokKind::KwElse},
      {"WHILE", TokKind::KwWhile},     {"DO", TokKind::KwDo},
      {"REPEAT", TokKind::KwRepeat},   {"UNTIL", TokKind::KwUntil},
      {"FOR", TokKind::KwFor},         {"TO", TokKind::KwTo},
      {"BY", TokKind::KwBy},           {"RETURN", TokKind::KwReturn},
      {"WITH", TokKind::KwWith},       {"NIL", TokKind::KwNil},
      {"TRUE", TokKind::KwTrue},       {"FALSE", TokKind::KwFalse},
      {"DIV", TokKind::KwDiv},         {"MOD", TokKind::KwMod},
      {"AND", TokKind::KwAnd},         {"OR", TokKind::KwOr},
      {"NOT", TokKind::KwNot},         {"ARRAY", TokKind::KwArray},
      {"OF", TokKind::KwOf},           {"RECORD", TokKind::KwRecord},
      {"REF", TokKind::KwRef},         {"INTEGER", TokKind::KwInteger},
      {"BOOLEAN", TokKind::KwBoolean}, {"EXIT", TokKind::KwExit},
      {"LOOP", TokKind::KwLoop},
  };
  return Table;
}
} // namespace

Lexer::Lexer(const std::string &Source, Diagnostics &Diags)
    : Src(Source), Diags(Diags) {}

void Lexer::advance() {
  if (Pos >= Src.size())
    return;
  if (Src[Pos] == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  ++Pos;
}

void Lexer::skipTrivia() {
  while (true) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '(' && peekAt(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      unsigned Depth = 1;
      while (Depth != 0) {
        if (Pos >= Src.size()) {
          Diags.error(Start, "unterminated comment");
          return;
        }
        if (peek() == '(' && peekAt(1) == '*') {
          advance();
          advance();
          ++Depth;
        } else if (peek() == '*' && peekAt(1) == ')') {
          advance();
          advance();
          --Depth;
        } else {
          advance();
        }
      }
      continue;
    }
    return;
  }
}

Token Lexer::next() {
  skipTrivia();
  Token T;
  T.Loc = here();
  char C = peek();
  if (C == '\0') {
    T.Kind = TokKind::Eof;
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(C))) {
    std::string Word;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
      Word.push_back(peek());
      advance();
    }
    auto It = keywordTable().find(Word);
    if (It != keywordTable().end()) {
      T.Kind = It->second;
    } else {
      T.Kind = TokKind::Ident;
      T.Text = std::move(Word);
    }
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = 0;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      Value = Value * 10 + (peek() - '0');
      advance();
    }
    T.Kind = TokKind::IntLit;
    T.IntValue = Value;
    return T;
  }

  if (C == '"') {
    advance();
    std::string Text;
    while (peek() != '"') {
      if (peek() == '\0' || peek() == '\n') {
        Diags.error(T.Loc, "unterminated string literal");
        break;
      }
      if (peek() == '\\') {
        advance();
        char E = peek();
        advance();
        switch (E) {
        case 'n': Text.push_back('\n'); break;
        case 't': Text.push_back('\t'); break;
        default: Text.push_back(E); break;
        }
        continue;
      }
      Text.push_back(peek());
      advance();
    }
    if (peek() == '"')
      advance();
    T.Kind = TokKind::StrLit;
    T.Text = std::move(Text);
    return T;
  }

  advance();
  switch (C) {
  case ':':
    if (peek() == '=') {
      advance();
      T.Kind = TokKind::Assign;
    } else {
      T.Kind = TokKind::Colon;
    }
    return T;
  case '=': T.Kind = TokKind::Equal; return T;
  case '#': T.Kind = TokKind::NotEqual; return T;
  case '<':
    if (peek() == '=') {
      advance();
      T.Kind = TokKind::LessEq;
    } else {
      T.Kind = TokKind::Less;
    }
    return T;
  case '>':
    if (peek() == '=') {
      advance();
      T.Kind = TokKind::GreaterEq;
    } else {
      T.Kind = TokKind::Greater;
    }
    return T;
  case '+': T.Kind = TokKind::Plus; return T;
  case '-': T.Kind = TokKind::Minus; return T;
  case '*': T.Kind = TokKind::Star; return T;
  case '(': T.Kind = TokKind::LParen; return T;
  case ')': T.Kind = TokKind::RParen; return T;
  case '[': T.Kind = TokKind::LBracket; return T;
  case ']': T.Kind = TokKind::RBracket; return T;
  case ';': T.Kind = TokKind::Semi; return T;
  case ',': T.Kind = TokKind::Comma; return T;
  case '^': T.Kind = TokKind::Caret; return T;
  case '.':
    if (peek() == '.') {
      advance();
      T.Kind = TokKind::DotDot;
    } else {
      T.Kind = TokKind::Dot;
    }
    return T;
  default:
    Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
    return next();
  }
}
