//===- frontend/Lower.cpp -------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"

#include <cassert>
#include <map>

using namespace mgc;
using namespace mgc::ir;

namespace {

constexpr unsigned HeaderBytes = WordSize;     ///< One descriptor word.
constexpr unsigned OpenLenBytes = WordSize;    ///< Length word of open arrays.

/// Where a value lives, as computed for a designator.
struct Place {
  enum class Kind {
    VRegDirect,   ///< A scalar living in a vreg.
    SlotDirect,   ///< A scalar frame slot.
    GlobalDirect, ///< A scalar global word.
    Indirect,     ///< mem[Addr + Disp].
  };
  Kind K = Kind::VRegDirect;
  VReg R = NoVReg;       ///< VRegDirect / Indirect address.
  int Slot = -1;         ///< SlotDirect.
  int GlobalWord = -1;   ///< GlobalDirect.
  int64_t Disp = 0;      ///< Indirect.

  static Place vreg(VReg R) { return {Kind::VRegDirect, R, -1, -1, 0}; }
  static Place slot(int S) { return {Kind::SlotDirect, NoVReg, S, -1, 0}; }
  static Place global(int W) { return {Kind::GlobalDirect, NoVReg, -1, W, 0}; }
  static Place indirect(VReg Addr, int64_t Disp) {
    return {Kind::Indirect, Addr, -1, -1, Disp};
  }
};

class Lowerer {
public:
  explicit Lowerer(const ModuleAST &M) : M(M) {}

  std::unique_ptr<IRModule> run();

private:
  //===--- Emission helpers ------------------------------------------------===

  void emit(Instr I) {
    I.Loc = CurLoc;
    Cur->Instrs.push_back(std::move(I));
  }

  BasicBlock *newBlock() { return F->newBlock(); }

  void setBlock(BasicBlock *BB) { Cur = BB; }

  /// Terminates the current block with a jump if it is still open, then
  /// switches to \p BB.
  void jumpTo(BasicBlock *BB) {
    if (!Cur->hasTerminator())
      emit(Instr::jump(BB->Id));
    setBlock(BB);
  }

  VReg temp(PtrKind K) { return F->newVReg(K); }

  /// Materializes an operand into a vreg of kind \p K.
  VReg toVReg(Operand O, PtrKind K) {
    if (O.isReg())
      return O.R;
    VReg R = temp(K);
    emit(Instr::mov(R, O));
    return R;
  }

  /// Emits heap or frame address arithmetic: Base + Off bytes.  Heap-like
  /// bases use DeriveAdd (a derived value); frame addresses use plain Add.
  VReg emitAddrAdd(VReg Base, Operand Off) {
    PtrKind BK = F->kindOf(Base);
    if (BK == PtrKind::FrameAddr) {
      VReg Dst = temp(PtrKind::FrameAddr);
      emit(Instr::bin(Opcode::Add, Dst, Operand::reg(Base), Off));
      return Dst;
    }
    VReg Dst = temp(PtrKind::Derived);
    emit(Instr::bin(Opcode::DeriveAdd, Dst, Operand::reg(Base), Off));
    return Dst;
  }

  //===--- Declaration processing ------------------------------------------===

  void layoutGlobals();
  int typeDescFor(const Type *Referent);
  void bindProcStorage(const ProcDecl &P);
  void bindLocal(Symbol *Sym);
  void lowerFunctionBody(Function *Fn, const StmtList &Body,
                         const std::vector<std::unique_ptr<Symbol>> &Locals,
                         const ProcDecl *P);

  //===--- Statements -------------------------------------------------------===

  void lowerBody(const StmtList &Body);
  void lowerStmt(const Stmt &S);

  //===--- Expressions ------------------------------------------------------===

  Operand lowerExpr(const Expr &E);
  Operand lowerCall(const CallExpr &E);
  Operand lowerBuiltin(const CallExpr &E);
  /// Lowers a condition, branching to \p TrueBB / \p FalseBB (with
  /// short-circuit AND/OR).
  void lowerCond(const Expr &E, BasicBlock *TrueBB, BasicBlock *FalseBB);

  /// Computes the Place of a designator.
  Place lowerPlace(const Expr &E);
  Operand loadPlace(const Place &P, const Type *Ty);
  void storePlace(const Place &P, Operand Val);
  /// The address of a place, for VAR arguments and WITH.
  VReg addrOfPlace(const Place &P);

  PtrKind kindForType(const Type *Ty) const {
    return Ty && (Ty->isRef() || Ty->isNil()) ? PtrKind::Tidy
                                              : PtrKind::NonPtr;
  }

  //===--- State ------------------------------------------------------------===

  const ModuleAST &M;
  std::unique_ptr<IRModule> Out;
  Function *F = nullptr;
  BasicBlock *Cur = nullptr;
  SourceLoc CurLoc;

  /// Storage binding for every variable symbol in the current function
  /// (plus globals, bound once).
  struct Storage {
    enum class Where { VRegHome, Slot, Global } W = Where::VRegHome;
    VReg R = NoVReg;
    int Slot = -1;
    int GlobalWord = -1;
  };
  std::map<const Symbol *, Storage> Bindings;
  std::map<std::string, int> DescCache;
  std::vector<BasicBlock *> ExitTargets; ///< EXIT destinations, innermost last.
};

//===----------------------------------------------------------------------===//
// Module structure
//===----------------------------------------------------------------------===//

std::unique_ptr<IRModule> Lowerer::run() {
  Out = std::make_unique<IRModule>();
  Out->Name = M.Name;

  layoutGlobals();

  // Create all functions first so calls can reference them by index.
  for (const auto &P : M.Procs) {
    Function *Fn = Out->newFunction(P->Name);
    Fn->HasRet = P->RetTy != nullptr;
    for (const auto &Param : P->Params) {
      ParamInfo PI;
      PI.Name = Param->Name;
      PI.IsVarParam = Param->IsVarParam;
      PI.Kind = Param->IsVarParam ? PtrKind::IncomingAddr
                                  : kindForType(Param->Ty);
      Fn->Params.push_back(PI);
    }
    assert(Fn->Index == P->Index && "function index drift");
  }
  Function *Main = Out->newFunction("@main");
  Out->MainIndex = Main->Index;

  for (const auto &P : M.Procs)
    lowerFunctionBody(Out->Functions[P->Index].get(), P->Body, P->Locals,
                      P.get());
  lowerFunctionBody(Main, M.MainBody, M.MainLocals, nullptr);

  return std::move(Out);
}

void Lowerer::layoutGlobals() {
  unsigned NextWord = 0;
  for (const auto &G : M.Globals) {
    GlobalInfo GI;
    GI.Name = G->Name;
    GI.BaseWord = NextWord;
    GI.SizeWords = G->Ty->sizeInWords();
    G->Ty->collectPointerOffsets(0, GI.PtrOffsets);
    NextWord += GI.SizeWords;
    Storage St;
    St.W = Storage::Where::Global;
    St.GlobalWord = static_cast<int>(GI.BaseWord);
    Bindings[G.get()] = St;
    Out->Globals.push_back(std::move(GI));
  }
  Out->GlobalAreaWords = NextWord;
}

int Lowerer::typeDescFor(const Type *Referent) {
  std::string Key = Referent->str();
  auto It = DescCache.find(Key);
  if (It != DescCache.end())
    return It->second;
  TypeDesc D;
  D.Name = Key;
  if (Referent->isOpenArray()) {
    D.IsOpenArray = true;
    D.SizeWords = 1; // The length word.
    D.ElemSizeWords = Referent->elem()->sizeInWords();
    Referent->elem()->collectPointerOffsets(0, D.ElemPtrOffsets);
  } else {
    D.SizeWords = Referent->sizeInWords();
    Referent->collectPointerOffsets(0, D.PtrOffsets);
  }
  int Index = static_cast<int>(Out->TypeDescs.size());
  Out->TypeDescs.push_back(std::move(D));
  DescCache[Key] = Index;
  return Index;
}

void Lowerer::bindLocal(Symbol *Sym) {
  Storage St;
  if (Sym->NeedsMemory) {
    SlotInfo SI;
    SI.Name = Sym->Name;
    SI.SizeWords = Sym->Ty->sizeInWords();
    Sym->Ty->collectPointerOffsets(0, SI.PtrOffsets);
    SI.IsPtrScalar = Sym->Ty->isScalar() && kindForType(Sym->Ty) == PtrKind::Tidy;
    St.W = Storage::Where::Slot;
    St.Slot = F->newSlot(std::move(SI));
  } else {
    St.W = Storage::Where::VRegHome;
    St.R = F->newVReg(kindForType(Sym->Ty), Sym->Name, /*IsUserVar=*/true);
  }
  Bindings[Sym] = St;
}

void Lowerer::lowerFunctionBody(
    Function *Fn, const StmtList &Body,
    const std::vector<std::unique_ptr<Symbol>> &Locals, const ProcDecl *P) {
  F = Fn;
  Cur = F->newBlock();
  ExitTargets.clear();

  // Parameters occupy vregs 0..N-1.
  if (P) {
    for (const auto &Param : P->Params) {
      VReg R = F->newVReg(Param->IsVarParam ? PtrKind::IncomingAddr
                                            : kindForType(Param->Ty),
                          Param->Name, /*IsUserVar=*/true);
      Storage St;
      St.W = Storage::Where::VRegHome;
      St.R = R;
      Bindings[Param.get()] = St;
      (void)R;
    }
  }

  for (const auto &L : Locals) {
    // WITH aliases are bound when their statement is lowered.
    if (L->SymKind == Symbol::Kind::WithAlias)
      continue;
    bindLocal(L.get());
  }

  lowerBody(Body);

  if (!Cur->hasTerminator()) {
    if (F->HasRet)
      emit(Instr::trap(TrapKind::MissingReturn));
    else
      emit(Instr::ret(Operand()));
  }
  F->removeUnreachableBlocks();
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Lowerer::lowerBody(const StmtList &Body) {
  for (const auto &S : Body) {
    if (Cur->hasTerminator())
      setBlock(newBlock()); // Unreachable; removed later.
    lowerStmt(*S);
  }
}

void Lowerer::lowerStmt(const Stmt &S) {
  CurLoc = S.Loc;
  switch (S.StmtKind) {
  case Stmt::Kind::Assign: {
    auto &A = static_cast<const AssignStmt &>(S);
    Place P = lowerPlace(*A.Target);
    Operand V = lowerExpr(*A.Value);
    storePlace(P, V);
    return;
  }

  case Stmt::Kind::Call: {
    auto &C = static_cast<const CallStmt &>(S);
    lowerCall(*C.Call);
    return;
  }

  case Stmt::Kind::If: {
    auto &I = static_cast<const IfStmt &>(S);
    BasicBlock *Join = newBlock();
    for (const auto &Arm : I.Arms) {
      BasicBlock *Then = newBlock();
      BasicBlock *Next = newBlock();
      lowerCond(*Arm.Cond, Then, Next);
      setBlock(Then);
      lowerBody(Arm.Body);
      jumpTo(Join);
      setBlock(Next);
    }
    lowerBody(I.Else);
    jumpTo(Join);
    return;
  }

  case Stmt::Kind::While: {
    auto &W = static_cast<const WhileStmt &>(S);
    BasicBlock *Header = newBlock();
    BasicBlock *BodyBB = newBlock();
    BasicBlock *Exit = newBlock();
    jumpTo(Header);
    lowerCond(*W.Cond, BodyBB, Exit);
    setBlock(BodyBB);
    ExitTargets.push_back(Exit);
    lowerBody(W.Body);
    ExitTargets.pop_back();
    jumpTo(Header);
    setBlock(Exit);
    return;
  }

  case Stmt::Kind::Repeat: {
    auto &R = static_cast<const RepeatStmt &>(S);
    BasicBlock *BodyBB = newBlock();
    BasicBlock *Exit = newBlock();
    jumpTo(BodyBB);
    ExitTargets.push_back(Exit);
    lowerBody(R.Body);
    ExitTargets.pop_back();
    if (!Cur->hasTerminator())
      lowerCond(*R.Cond, Exit, BodyBB);
    setBlock(Exit);
    return;
  }

  case Stmt::Kind::Loop: {
    auto &L = static_cast<const LoopStmt &>(S);
    BasicBlock *BodyBB = newBlock();
    BasicBlock *Exit = newBlock();
    jumpTo(BodyBB);
    ExitTargets.push_back(Exit);
    lowerBody(L.Body);
    ExitTargets.pop_back();
    jumpTo(BodyBB); // Back edge; EXIT leaves the loop.
    setBlock(Exit);
    return;
  }

  case Stmt::Kind::Exit: {
    assert(!ExitTargets.empty() && "EXIT outside loop survived Sema");
    emit(Instr::jump(ExitTargets.back()->Id));
    return;
  }

  case Stmt::Kind::For: {
    auto &FS = static_cast<const ForStmt &>(S);
    // Bind the index variable.
    bindLocal(FS.IndexSym);
    const Storage &St = Bindings[FS.IndexSym];

    Operand From = lowerExpr(*FS.From);
    Operand To = lowerExpr(*FS.To);
    // Evaluate the bound once.
    VReg Limit = toVReg(To, PtrKind::NonPtr);

    auto LoadIndex = [&]() -> VReg {
      if (St.W == Storage::Where::VRegHome)
        return St.R;
      VReg R = temp(PtrKind::NonPtr);
      emit(Instr::loadSlot(R, St.Slot));
      return R;
    };
    auto StoreIndex = [&](Operand V) {
      if (St.W == Storage::Where::VRegHome)
        emit(Instr::mov(St.R, V));
      else
        emit(Instr::storeSlot(St.Slot, V));
    };

    StoreIndex(From);
    BasicBlock *Header = newBlock();
    BasicBlock *BodyBB = newBlock();
    BasicBlock *Exit = newBlock();
    jumpTo(Header);
    VReg Idx = LoadIndex();
    VReg Cond = temp(PtrKind::NonPtr);
    emit(Instr::bin(FS.By > 0 ? Opcode::CmpLe : Opcode::CmpGe, Cond,
                    Operand::reg(Idx), Operand::reg(Limit)));
    emit(Instr::branch(Cond, BodyBB->Id, Exit->Id));
    setBlock(BodyBB);
    ExitTargets.push_back(Exit);
    lowerBody(FS.Body);
    ExitTargets.pop_back();
    if (!Cur->hasTerminator()) {
      if (St.W == Storage::Where::VRegHome) {
        // Self-update form (i := i + by), the shape the strength-reduction
        // pass recognizes as a basic induction variable.
        emit(Instr::bin(Opcode::Add, St.R, Operand::reg(St.R),
                        Operand::imm(FS.By)));
      } else {
        VReg Idx2 = LoadIndex();
        VReg Next = temp(PtrKind::NonPtr);
        emit(Instr::bin(Opcode::Add, Next, Operand::reg(Idx2),
                        Operand::imm(FS.By)));
        StoreIndex(Operand::reg(Next));
      }
      emit(Instr::jump(Header->Id));
    }
    setBlock(Exit);
    return;
  }

  case Stmt::Kind::Return: {
    auto &R = static_cast<const ReturnStmt &>(S);
    Operand V = R.Value ? lowerExpr(*R.Value) : Operand();
    emit(Instr::ret(V));
    return;
  }

  case Stmt::Kind::With: {
    auto &W = static_cast<const WithStmt &>(S);
    Place Target = lowerPlace(*W.Target);
    VReg Addr = addrOfPlace(Target);
    Storage St;
    St.W = Storage::Where::VRegHome;
    St.R = Addr;
    Bindings[W.AliasSym] = St;
    lowerBody(W.Body);
    return;
  }

  case Stmt::Kind::IncDec: {
    auto &I = static_cast<const IncDecStmt &>(S);
    Place P = lowerPlace(*I.Target);
    Operand Amount = I.Amount ? lowerExpr(*I.Amount) : Operand::imm(1);
    Operand Old = loadPlace(P, I.Target->Ty);
    VReg New = temp(PtrKind::NonPtr);
    emit(Instr::bin(I.IsInc ? Opcode::Add : Opcode::Sub, New, Old, Amount));
    storePlace(P, Operand::reg(New));
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Places
//===----------------------------------------------------------------------===//

Place Lowerer::lowerPlace(const Expr &E) {
  switch (E.ExprKind) {
  case Expr::Kind::Name: {
    auto &N = static_cast<const NameExpr &>(E);
    const Symbol *Sym = N.Sym;
    assert(Sym && "unresolved name survived Sema");
    if (Sym->SymKind == Symbol::Kind::WithAlias) {
      const Storage &St = Bindings[Sym];
      return Place::indirect(St.R, 0);
    }
    const Storage &St = Bindings[Sym];
    switch (St.W) {
    case Storage::Where::VRegHome:
      if (Sym->SymKind == Symbol::Kind::Param && Sym->IsVarParam)
        return Place::indirect(St.R, 0);
      return Place::vreg(St.R);
    case Storage::Where::Slot:
      if (Sym->Ty->isScalar())
        return Place::slot(St.Slot);
      else {
        VReg Addr = temp(PtrKind::FrameAddr);
        emit(Instr::addrSlot(Addr, St.Slot, 0));
        return Place::indirect(Addr, 0);
      }
    case Storage::Where::Global:
      if (Sym->Ty->isScalar())
        return Place::global(St.GlobalWord);
      else {
        VReg Addr = temp(PtrKind::FrameAddr);
        emit(Instr::addrGlobal(Addr, St.GlobalWord, 0));
        return Place::indirect(Addr, 0);
      }
    }
    return Place::vreg(St.R);
  }

  case Expr::Kind::Deref: {
    auto &D = static_cast<const DerefExpr &>(E);
    Operand Ref = lowerExpr(*D.Base);
    VReg R = toVReg(Ref, PtrKind::Tidy);
    int64_t Disp = HeaderBytes;
    if (D.Base->Ty->elem()->isOpenArray())
      Disp += OpenLenBytes;
    return Place::indirect(R, Disp);
  }

  case Expr::Kind::Field: {
    auto &FE = static_cast<const FieldExpr &>(E);
    int64_t FieldOff =
        static_cast<int64_t>(FE.Field->OffsetWords) * WordSize;
    if (FE.BaseIsRef) {
      Operand Ref = lowerExpr(*FE.Base);
      VReg R = toVReg(Ref, PtrKind::Tidy);
      return Place::indirect(R, HeaderBytes + FieldOff);
    }
    Place Base = lowerPlace(*FE.Base);
    assert(Base.K == Place::Kind::Indirect && "aggregate base not indirect");
    Base.Disp += FieldOff;
    return Base;
  }

  case Expr::Kind::Index: {
    auto &IE = static_cast<const IndexExpr &>(E);
    const Type *ArrTy = IE.Base->Ty;
    VReg BaseAddr;
    int64_t BaseDisp = 0;
    if (IE.BaseIsRef) {
      ArrTy = ArrTy->elem();
      Operand Ref = lowerExpr(*IE.Base);
      BaseAddr = toVReg(Ref, PtrKind::Tidy);
      BaseDisp = HeaderBytes + (ArrTy->isOpenArray() ? OpenLenBytes : 0);
    } else {
      Place Base = lowerPlace(*IE.Base);
      assert(Base.K == Place::Kind::Indirect && "array base not indirect");
      BaseAddr = Base.R;
      BaseDisp = Base.Disp;
    }
    unsigned Stride = ArrTy->elem()->sizeInWords() * WordSize;
    int64_t Lo = ArrTy->isOpenArray() ? 0 : ArrTy->lo();

    Operand Idx = lowerExpr(*IE.Index);
    if (Idx.isImm()) {
      // Constant index: fold into the displacement.
      BaseDisp += (Idx.Imm - Lo) * Stride;
      return Place::indirect(BaseAddr, BaseDisp);
    }
    // addr = base + (i - lo) * stride   (the "obvious method" of §2; the
    // virtual-array-origin optimization rewrites this later).
    VReg Rel = Idx.R;
    if (Lo != 0) {
      Rel = temp(PtrKind::NonPtr);
      emit(Instr::bin(Opcode::Sub, Rel, Idx, Operand::imm(Lo)));
    }
    VReg Off = temp(PtrKind::NonPtr);
    emit(Instr::bin(Opcode::Mul, Off, Operand::reg(Rel),
                    Operand::imm(Stride)));
    VReg Addr = emitAddrAdd(BaseAddr, Operand::reg(Off));
    return Place::indirect(Addr, BaseDisp);
  }

  default:
    assert(false && "not a designator");
    return Place::vreg(NoVReg);
  }
}

Operand Lowerer::loadPlace(const Place &P, const Type *Ty) {
  PtrKind K = kindForType(Ty);
  switch (P.K) {
  case Place::Kind::VRegDirect:
    return Operand::reg(P.R);
  case Place::Kind::SlotDirect: {
    VReg R = temp(K);
    emit(Instr::loadSlot(R, P.Slot));
    return Operand::reg(R);
  }
  case Place::Kind::GlobalDirect: {
    VReg R = temp(K);
    emit(Instr::loadGlobal(R, P.GlobalWord));
    return Operand::reg(R);
  }
  case Place::Kind::Indirect: {
    VReg R = temp(K);
    emit(Instr::load(R, P.R, P.Disp));
    return Operand::reg(R);
  }
  }
  return Operand();
}

void Lowerer::storePlace(const Place &P, Operand Val) {
  switch (P.K) {
  case Place::Kind::VRegDirect:
    emit(Instr::mov(P.R, Val));
    return;
  case Place::Kind::SlotDirect:
    emit(Instr::storeSlot(P.Slot, Val));
    return;
  case Place::Kind::GlobalDirect:
    emit(Instr::storeGlobal(P.GlobalWord, Val));
    return;
  case Place::Kind::Indirect:
    emit(Instr::store(P.R, P.Disp, Val));
    return;
  }
}

VReg Lowerer::addrOfPlace(const Place &P) {
  switch (P.K) {
  case Place::Kind::SlotDirect: {
    VReg R = temp(PtrKind::FrameAddr);
    emit(Instr::addrSlot(R, P.Slot, 0));
    return R;
  }
  case Place::Kind::GlobalDirect: {
    VReg R = temp(PtrKind::FrameAddr);
    emit(Instr::addrGlobal(R, P.GlobalWord, 0));
    return R;
  }
  case Place::Kind::Indirect:
    if (P.Disp == 0)
      return P.R;
    return emitAddrAdd(P.R, Operand::imm(P.Disp));
  case Place::Kind::VRegDirect:
    assert(false && "address of a register value (Sema should have "
                    "forced it into memory)");
    return NoVReg;
  }
  return NoVReg;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

void Lowerer::lowerCond(const Expr &E, BasicBlock *TrueBB,
                        BasicBlock *FalseBB) {
  if (E.ExprKind == Expr::Kind::Binary) {
    auto &B = static_cast<const BinaryExpr &>(E);
    if (B.Op == BinOp::And) {
      BasicBlock *Mid = newBlock();
      lowerCond(*B.LHS, Mid, FalseBB);
      setBlock(Mid);
      lowerCond(*B.RHS, TrueBB, FalseBB);
      return;
    }
    if (B.Op == BinOp::Or) {
      BasicBlock *Mid = newBlock();
      lowerCond(*B.LHS, TrueBB, Mid);
      setBlock(Mid);
      lowerCond(*B.RHS, TrueBB, FalseBB);
      return;
    }
  }
  if (E.ExprKind == Expr::Kind::Unary) {
    auto &U = static_cast<const UnaryExpr &>(E);
    if (U.Op == UnOp::Not) {
      lowerCond(*U.Sub, FalseBB, TrueBB);
      return;
    }
  }
  Operand C = lowerExpr(E);
  VReg R = toVReg(C, PtrKind::NonPtr);
  emit(Instr::branch(R, TrueBB->Id, FalseBB->Id));
}

Operand Lowerer::lowerExpr(const Expr &E) {
  CurLoc = E.Loc.isValid() ? E.Loc : CurLoc;
  switch (E.ExprKind) {
  case Expr::Kind::IntLit:
    return Operand::imm(static_cast<const IntLitExpr &>(E).Value);
  case Expr::Kind::BoolLit:
    return Operand::imm(static_cast<const BoolLitExpr &>(E).Value ? 1 : 0);
  case Expr::Kind::NilLit:
    return Operand::imm(0);

  case Expr::Kind::StrLit: {
    // Allocate an open INTEGER array and fill in the character codes.
    auto &S = static_cast<const StrLitExpr &>(E);
    int Desc = typeDescFor(E.Ty->elem());
    Instr NewI;
    NewI.Op = Opcode::NewArray;
    NewI.Dst = temp(PtrKind::Tidy);
    NewI.Index = Desc;
    NewI.A = Operand::imm(static_cast<int64_t>(S.Value.size()));
    VReg Str = NewI.Dst;
    emit(std::move(NewI));
    for (size_t I = 0; I != S.Value.size(); ++I)
      emit(Instr::store(Str,
                        HeaderBytes + OpenLenBytes +
                            static_cast<int64_t>(I) * WordSize,
                        Operand::imm(static_cast<unsigned char>(S.Value[I]))));
    return Operand::reg(Str);
  }

  case Expr::Kind::Name: {
    auto &N = static_cast<const NameExpr &>(E);
    if (N.Sym->SymKind == Symbol::Kind::Constant)
      return Operand::imm(N.Sym->ConstValue);
    Place P = lowerPlace(E);
    return loadPlace(P, E.Ty);
  }

  case Expr::Kind::Binary: {
    auto &B = static_cast<const BinaryExpr &>(E);
    if (B.Op == BinOp::And || B.Op == BinOp::Or) {
      // Short-circuit via control flow into a result vreg.
      VReg R = temp(PtrKind::NonPtr);
      BasicBlock *TrueBB = newBlock();
      BasicBlock *FalseBB = newBlock();
      BasicBlock *Join = newBlock();
      lowerCond(E, TrueBB, FalseBB);
      setBlock(TrueBB);
      emit(Instr::mov(R, Operand::imm(1)));
      emit(Instr::jump(Join->Id));
      setBlock(FalseBB);
      emit(Instr::mov(R, Operand::imm(0)));
      emit(Instr::jump(Join->Id));
      setBlock(Join);
      return Operand::reg(R);
    }
    Operand L = lowerExpr(*B.LHS);
    Operand R = lowerExpr(*B.RHS);
    Opcode Op;
    switch (B.Op) {
    case BinOp::Add: Op = Opcode::Add; break;
    case BinOp::Sub: Op = Opcode::Sub; break;
    case BinOp::Mul: Op = Opcode::Mul; break;
    case BinOp::Div: Op = Opcode::Div; break;
    case BinOp::Mod: Op = Opcode::Mod; break;
    case BinOp::Eq: Op = Opcode::CmpEq; break;
    case BinOp::Ne: Op = Opcode::CmpNe; break;
    case BinOp::Lt: Op = Opcode::CmpLt; break;
    case BinOp::Le: Op = Opcode::CmpLe; break;
    case BinOp::Gt: Op = Opcode::CmpGt; break;
    case BinOp::Ge: Op = Opcode::CmpGe; break;
    default: Op = Opcode::Add; break;
    }
    VReg Dst = temp(PtrKind::NonPtr);
    emit(Instr::bin(Op, Dst, L, R));
    return Operand::reg(Dst);
  }

  case Expr::Kind::Unary: {
    auto &U = static_cast<const UnaryExpr &>(E);
    Operand S = lowerExpr(*U.Sub);
    VReg Dst = temp(PtrKind::NonPtr);
    emit(Instr::un(U.Op == UnOp::Neg ? Opcode::Neg : Opcode::Not, Dst, S));
    return Operand::reg(Dst);
  }

  case Expr::Kind::Index:
  case Expr::Kind::Field:
  case Expr::Kind::Deref: {
    Place P = lowerPlace(E);
    return loadPlace(P, E.Ty);
  }

  case Expr::Kind::Call:
    return lowerCall(static_cast<const CallExpr &>(E));
  }
  return Operand();
}

Operand Lowerer::lowerCall(const CallExpr &E) {
  if (E.BuiltinKind != Builtin::None)
    return lowerBuiltin(E);

  const ProcDecl *P = E.Proc;
  std::vector<Operand> Args;
  for (size_t I = 0, N = E.Args.size(); I != N; ++I) {
    if (P->Params[I]->IsVarParam) {
      Place Pl = lowerPlace(*E.Args[I]);
      Args.push_back(Operand::reg(addrOfPlace(Pl)));
    } else {
      Args.push_back(lowerExpr(*E.Args[I]));
    }
  }
  Instr I;
  I.Op = Opcode::Call;
  I.Index = static_cast<int>(P->Index);
  I.Args = std::move(Args);
  if (P->RetTy)
    I.Dst = temp(kindForType(P->RetTy));
  VReg Dst = I.Dst;
  emit(std::move(I));
  return Dst == NoVReg ? Operand() : Operand::reg(Dst);
}

Operand Lowerer::lowerBuiltin(const CallExpr &E) {
  switch (E.BuiltinKind) {
  case Builtin::New: {
    int Desc = typeDescFor(E.AllocType);
    Instr I;
    I.Dst = temp(PtrKind::Tidy);
    I.Index = Desc;
    if (E.AllocType->isOpenArray()) {
      I.Op = Opcode::NewArray;
      Operand Len = lowerExpr(*E.Args[1]);
      I.A = Len;
    } else {
      I.Op = Opcode::New;
    }
    VReg Dst = I.Dst;
    emit(std::move(I));
    return Operand::reg(Dst);
  }

  case Builtin::Number:
  case Builtin::First:
  case Builtin::Last: {
    const Expr &Arg = *E.Args[0];
    const Type *AT = Arg.Ty;
    bool ViaRef = AT->isRef();
    if (ViaRef)
      AT = AT->elem();
    if (AT->isArray()) {
      // Compile-time constants for fixed arrays.
      int64_t V = E.BuiltinKind == Builtin::Number ? AT->length()
                  : E.BuiltinKind == Builtin::First ? AT->lo()
                                                    : AT->hi();
      return Operand::imm(V);
    }
    // Open array: length stored in the word after the header.
    if (E.BuiltinKind == Builtin::First)
      return Operand::imm(0);
    Operand Ref = lowerExpr(Arg);
    VReg R = toVReg(Ref, PtrKind::Tidy);
    VReg Len = temp(PtrKind::NonPtr);
    emit(Instr::load(Len, R, HeaderBytes));
    if (E.BuiltinKind == Builtin::Number)
      return Operand::reg(Len);
    VReg Last = temp(PtrKind::NonPtr);
    emit(Instr::bin(Opcode::Sub, Last, Operand::reg(Len), Operand::imm(1)));
    return Operand::reg(Last);
  }

  case Builtin::Abs: {
    Operand V = lowerExpr(*E.Args[0]);
    VReg R = toVReg(V, PtrKind::NonPtr);
    VReg Res = temp(PtrKind::NonPtr);
    BasicBlock *NegBB = newBlock();
    BasicBlock *PosBB = newBlock();
    BasicBlock *Join = newBlock();
    VReg C = temp(PtrKind::NonPtr);
    emit(Instr::bin(Opcode::CmpLt, C, Operand::reg(R), Operand::imm(0)));
    emit(Instr::branch(C, NegBB->Id, PosBB->Id));
    setBlock(NegBB);
    emit(Instr::un(Opcode::Neg, Res, Operand::reg(R)));
    emit(Instr::jump(Join->Id));
    setBlock(PosBB);
    emit(Instr::mov(Res, Operand::reg(R)));
    emit(Instr::jump(Join->Id));
    setBlock(Join);
    return Operand::reg(Res);
  }

  case Builtin::PutInt:
  case Builtin::PutChar: {
    Operand V = lowerExpr(*E.Args[0]);
    Instr I;
    I.Op = Opcode::CallRt;
    I.Rt = E.BuiltinKind == Builtin::PutInt ? RtFn::PutInt : RtFn::PutChar;
    I.Args.push_back(V);
    emit(std::move(I));
    return Operand();
  }

  case Builtin::PutLn:
  case Builtin::GcCollect:
  case Builtin::Halt:
  case Builtin::ReqDone: {
    Instr I;
    I.Op = Opcode::CallRt;
    I.Rt = E.BuiltinKind == Builtin::PutLn      ? RtFn::PutLn
           : E.BuiltinKind == Builtin::GcCollect ? RtFn::GcCollect
           : E.BuiltinKind == Builtin::ReqDone   ? RtFn::ReqDone
                                                 : RtFn::Halt;
    emit(std::move(I));
    return Operand();
  }

  case Builtin::None:
    break;
  }
  return Operand();
}

} // namespace

std::unique_ptr<ir::IRModule> mgc::lowerModule(const ModuleAST &Module) {
  Lowerer L(Module);
  return L.run();
}
