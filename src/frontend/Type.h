//===- frontend/Type.h - MG semantic types ----------------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic types for MG, the statically typed Modula-3 subset this project
/// compiles.  The compile-time knowledge the paper exploits lives here: for
/// any type we can compute its size in words and the word offsets of every
/// contained pointer, which drives both the heap type descriptors and the
/// ground tables for frame-allocated aggregates.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_FRONTEND_TYPE_H
#define MGC_FRONTEND_TYPE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mgc {

class Type;

/// A named field of a record type.
struct RecordField {
  std::string Name;
  const Type *Ty = nullptr;
  /// Word offset within the record, computed on creation.
  unsigned OffsetWords = 0;
};

/// An MG type.  Types are immutable once created and owned by a TypeContext.
/// Named declarations are aliases; identity is structural (see
/// structurallyEqual), mirroring Modula-3's structural equivalence.
class Type {
public:
  enum class Kind {
    Integer,
    Boolean,
    Nil,       ///< The type of the NIL literal; assignable to any REF.
    Ref,       ///< REF T, a tidy pointer to a heap object.
    Array,     ///< ARRAY [Lo..Hi] OF Elem, inline storage.
    OpenArray, ///< ARRAY OF Elem; only permitted under REF.
    Record,    ///< RECORD fields END, inline storage.
  };

  Kind kind() const { return TheKind; }
  bool isInteger() const { return TheKind == Kind::Integer; }
  bool isBoolean() const { return TheKind == Kind::Boolean; }
  bool isNil() const { return TheKind == Kind::Nil; }
  bool isRef() const { return TheKind == Kind::Ref; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isOpenArray() const { return TheKind == Kind::OpenArray; }
  bool isRecord() const { return TheKind == Kind::Record; }
  /// True for the word-sized types a vreg can hold.
  bool isScalar() const {
    return TheKind == Kind::Integer || TheKind == Kind::Boolean ||
           TheKind == Kind::Ref || TheKind == Kind::Nil;
  }

  /// REF and ARRAY element type; Record has none.
  const Type *elem() const { return Elem; }
  /// Array bounds (fixed arrays only).
  int64_t lo() const { return Lo; }
  int64_t hi() const { return Hi; }
  int64_t length() const { return Hi - Lo + 1; }

  const std::vector<RecordField> &fields() const { return Fields; }
  const RecordField *findField(const std::string &Name) const;

  /// Size of an inline value of this type, in words.  Open arrays have no
  /// inline size (they exist only on the heap); asking is a programming
  /// error.
  unsigned sizeInWords() const;

  /// Appends the word offsets (relative to \p Base) of every pointer
  /// contained in an inline value of this type.
  void collectPointerOffsets(unsigned Base, std::vector<unsigned> &Out) const;

  /// Structural equivalence with cycle tolerance (the algorithm typereg
  /// implements in MG as well).
  static bool structurallyEqual(const Type *A, const Type *B);

  /// Whether a value of type \p Src may be assigned to a location of type
  /// \p Dst (equality, or NIL into any REF).
  static bool assignable(const Type *Dst, const Type *Src);

  std::string str() const;

private:
  friend class TypeContext;
  explicit Type(Kind K) : TheKind(K) {}

  Kind TheKind;
  const Type *Elem = nullptr;
  int64_t Lo = 0, Hi = -1;
  std::vector<RecordField> Fields;
};

/// Owns every Type of a compilation and hands out the builtin singletons.
class TypeContext {
public:
  TypeContext();

  const Type *integerType() const { return IntegerTy; }
  const Type *booleanType() const { return BooleanTy; }
  const Type *nilType() const { return NilTy; }

  const Type *getRef(const Type *Elem);
  const Type *getArray(int64_t Lo, int64_t Hi, const Type *Elem);
  const Type *getOpenArray(const Type *Elem);
  /// Creates a record type; field offsets are computed here.
  const Type *getRecord(std::vector<RecordField> Fields);

  /// Creates an empty record whose fields are filled in later, enabling
  /// recursive types (REF to a record under construction).  The caller must
  /// invoke completeRecord exactly once.
  Type *beginRecord();
  void completeRecord(Type *Rec, std::vector<RecordField> Fields);

  /// Same two-step protocol for REF shells, so mutually recursive named
  /// types (`List = REF ListRec; ListRec = RECORD ... next: List ... END`)
  /// can be resolved.
  Type *beginRef();
  void completeRef(Type *Ref, const Type *Elem);

private:
  Type *create(Type::Kind K);

  std::vector<std::unique_ptr<Type>> Owned;
  const Type *IntegerTy;
  const Type *BooleanTy;
  const Type *NilTy;
};

} // namespace mgc

#endif // MGC_FRONTEND_TYPE_H
