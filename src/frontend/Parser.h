//===- frontend/Parser.h - MG recursive-descent parser ----------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses an MG module.  Types and named constants are resolved during
/// parsing (with shell pre-registration so REF/RECORD cycles work);
/// expression and statement name resolution is left to Sema.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_FRONTEND_PARSER_H
#define MGC_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Lexer.h"

#include <map>
#include <memory>

namespace mgc {

/// Parses \p Source into a ModuleAST.  Returns null when parsing fails;
/// details are in \p Diags.
std::unique_ptr<ModuleAST> parseModule(const std::string &Source,
                                       Diagnostics &Diags);

} // namespace mgc

#endif // MGC_FRONTEND_PARSER_H
