//===- frontend/Lower.h - AST to IR lowering --------------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a checked ModuleAST to the three-address IR.  All heap address
/// arithmetic is emitted through the Derive* opcodes so derived values are
/// identifiable from birth; VAR parameters become IncomingAddr vregs pinned
/// by later phases to their argument slots.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_FRONTEND_LOWER_H
#define MGC_FRONTEND_LOWER_H

#include "frontend/AST.h"
#include "ir/IR.h"

#include <memory>

namespace mgc {

/// Lowers \p Module (which must have passed checkModule).  Never fails for
/// checked input.
std::unique_ptr<ir::IRModule> lowerModule(const ModuleAST &Module);

} // namespace mgc

#endif // MGC_FRONTEND_LOWER_H
