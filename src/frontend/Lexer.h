//===- frontend/Lexer.h - MG lexer ------------------------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens and the hand-written lexer for MG.  Comments are Modula-style
/// `(* ... *)` and nest.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_FRONTEND_LEXER_H
#define MGC_FRONTEND_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>

namespace mgc {

enum class TokKind {
  Eof,
  Ident,
  IntLit,
  StrLit,
  // Keywords.
  KwModule, KwBegin, KwEnd, KwVar, KwType, KwConst, KwProcedure,
  KwIf, KwThen, KwElsif, KwElse, KwWhile, KwDo, KwRepeat, KwUntil,
  KwFor, KwTo, KwBy, KwReturn, KwWith, KwNil, KwTrue, KwFalse,
  KwDiv, KwMod, KwAnd, KwOr, KwNot, KwArray, KwOf, KwRecord, KwRef,
  KwInteger, KwBoolean, KwExit, KwLoop,
  // Punctuation and operators.
  Assign,     // :=
  Equal,      // =
  NotEqual,   // #
  Less, LessEq, Greater, GreaterEq,
  Plus, Minus, Star,
  LParen, RParen, LBracket, RBracket,
  Semi, Colon, Comma, Dot, DotDot, Caret,
};

/// Renders a token kind for diagnostics ("':='", "identifier", ...).
const char *tokKindName(TokKind K);

struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;  ///< Identifier spelling.
  int64_t IntValue = 0;

  bool is(TokKind K) const { return Kind == K; }
};

/// A one-token-lookahead lexer over an in-memory source buffer.
class Lexer {
public:
  Lexer(const std::string &Source, Diagnostics &Diags);

  /// Lexes and returns the next token.
  Token next();

private:
  char peek() const { return Pos < Src.size() ? Src[Pos] : '\0'; }
  char peekAt(size_t Off) const {
    return Pos + Off < Src.size() ? Src[Pos + Off] : '\0';
  }
  void advance();
  void skipTrivia();
  SourceLoc here() const { return {Line, Col}; }

  const std::string &Src;
  Diagnostics &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace mgc

#endif // MGC_FRONTEND_LEXER_H
