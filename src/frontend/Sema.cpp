//===- frontend/Sema.cpp --------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include <cassert>
#include <map>
#include <vector>

using namespace mgc;

namespace {

class Sema {
public:
  Sema(ModuleAST &M, Diagnostics &Diags) : M(M), Diags(Diags) {}

  bool run();

private:
  //===--------------------------------------------------------------------===
  // Scopes
  //===--------------------------------------------------------------------===

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  void declare(Symbol *Sym) { Scopes.back()[Sym->Name] = Sym; }

  Symbol *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return nullptr;
  }

  void error(SourceLoc Loc, const std::string &Msg) { Diags.error(Loc, Msg); }

  //===--------------------------------------------------------------------===
  // Statements
  //===--------------------------------------------------------------------===

  void checkBody(StmtList &Body);
  void checkStmt(Stmt &S);

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===

  /// Types \p E; returns its type or null on error (diagnostic emitted).
  const Type *checkExpr(Expr &E);
  const Type *checkCall(CallExpr &E, bool AsStatement);
  const Type *checkBuiltin(CallExpr &E, Builtin B);

  /// True when \p E denotes a mutable location.
  bool isDesignator(const Expr &E) const;
  /// Marks a whole-variable designator's symbol as address-taken.
  void noteAddressTaken(Expr &E);

  Symbol *makeLocal(Symbol::Kind K, const std::string &Name, const Type *Ty);

  ModuleAST &M;
  Diagnostics &Diags;
  std::vector<std::map<std::string, Symbol *>> Scopes;
  ProcDecl *CurProc = nullptr; ///< Null while checking the main body.
  unsigned LoopDepth = 0;
};

bool Sema::run() {
  pushScope();
  for (auto &Sym : M.OtherSymbols)
    declare(Sym.get());
  for (auto &Sym : M.Globals)
    declare(Sym.get());
  unsigned Index = 0;
  for (auto &P : M.Procs) {
    P->Index = Index++;
    auto Sym = std::make_unique<Symbol>(Symbol::Kind::Proc, P->Name);
    Sym->Proc = P.get();
    declare(Sym.get());
    M.OtherSymbols.push_back(std::move(Sym));
  }

  for (auto &P : M.Procs) {
    CurProc = P.get();
    pushScope();
    for (auto &Param : P->Params)
      declare(Param.get());
    for (auto &Local : P->Locals)
      declare(Local.get());
    checkBody(P->Body);
    popScope();
  }

  CurProc = nullptr;
  checkBody(M.MainBody);
  popScope();

  // Storage classification: aggregates and address-taken variables must
  // live in memory (frame or global slots); everything else may live in a
  // virtual register.
  auto Classify = [](Symbol &Sym) {
    if (!Sym.isVariable())
      return;
    if (!Sym.Ty)
      return;
    bool Aggregate = !Sym.Ty->isScalar();
    Sym.NeedsMemory = Aggregate || Sym.AddressTaken;
  };
  for (auto &G : M.Globals)
    Classify(*G);
  for (auto &P : M.Procs) {
    for (auto &Param : P->Params)
      Classify(*Param);
    for (auto &L : P->Locals)
      Classify(*L);
  }
  for (auto &L : M.MainLocals)
    Classify(*L);

  return !Diags.hasErrors();
}

Symbol *Sema::makeLocal(Symbol::Kind K, const std::string &Name,
                        const Type *Ty) {
  auto Sym = std::make_unique<Symbol>(K, Name);
  Sym->Ty = Ty;
  Symbol *Raw = Sym.get();
  if (CurProc)
    CurProc->Locals.push_back(std::move(Sym));
  else
    M.MainLocals.push_back(std::move(Sym));
  return Raw;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Sema::checkBody(StmtList &Body) {
  for (auto &S : Body)
    checkStmt(*S);
}

void Sema::checkStmt(Stmt &S) {
  switch (S.StmtKind) {
  case Stmt::Kind::Assign: {
    auto &A = static_cast<AssignStmt &>(S);
    const Type *TT = checkExpr(*A.Target);
    const Type *VT = checkExpr(*A.Value);
    if (!TT || !VT)
      return;
    if (!isDesignator(*A.Target)) {
      error(S.Loc, "assignment target is not a designator");
      return;
    }
    if (!TT->isScalar()) {
      error(S.Loc, "only scalar and REF values can be assigned");
      return;
    }
    if (!Type::assignable(TT, VT))
      error(S.Loc, "cannot assign " + VT->str() + " to " + TT->str());
    return;
  }
  case Stmt::Kind::Call: {
    auto &C = static_cast<CallStmt &>(S);
    checkCall(*C.Call, /*AsStatement=*/true);
    return;
  }
  case Stmt::Kind::If: {
    auto &I = static_cast<IfStmt &>(S);
    for (auto &Arm : I.Arms) {
      const Type *CT = checkExpr(*Arm.Cond);
      if (CT && !CT->isBoolean())
        error(Arm.Cond->Loc, "IF condition must be BOOLEAN");
      checkBody(Arm.Body);
    }
    checkBody(I.Else);
    return;
  }
  case Stmt::Kind::While: {
    auto &W = static_cast<WhileStmt &>(S);
    const Type *CT = checkExpr(*W.Cond);
    if (CT && !CT->isBoolean())
      error(W.Cond->Loc, "WHILE condition must be BOOLEAN");
    ++LoopDepth;
    checkBody(W.Body);
    --LoopDepth;
    return;
  }
  case Stmt::Kind::Repeat: {
    auto &R = static_cast<RepeatStmt &>(S);
    ++LoopDepth;
    checkBody(R.Body);
    --LoopDepth;
    const Type *CT = checkExpr(*R.Cond);
    if (CT && !CT->isBoolean())
      error(R.Cond->Loc, "UNTIL condition must be BOOLEAN");
    return;
  }
  case Stmt::Kind::Loop: {
    auto &L = static_cast<LoopStmt &>(S);
    ++LoopDepth;
    checkBody(L.Body);
    --LoopDepth;
    return;
  }
  case Stmt::Kind::Exit:
    if (LoopDepth == 0)
      error(S.Loc, "EXIT outside of a loop");
    return;
  case Stmt::Kind::For: {
    auto &F = static_cast<ForStmt &>(S);
    const Type *FromT = checkExpr(*F.From);
    const Type *ToT = checkExpr(*F.To);
    if (FromT && !FromT->isInteger())
      error(F.From->Loc, "FOR bounds must be INTEGER");
    if (ToT && !ToT->isInteger())
      error(F.To->Loc, "FOR bounds must be INTEGER");
    if (F.By == 0)
      error(S.Loc, "FOR step must be nonzero");
    F.IndexSym = makeLocal(Symbol::Kind::ForIndex, F.IndexName,
                           M.Types.integerType());
    pushScope();
    declare(F.IndexSym);
    ++LoopDepth;
    checkBody(F.Body);
    --LoopDepth;
    popScope();
    return;
  }
  case Stmt::Kind::Return: {
    auto &R = static_cast<ReturnStmt &>(S);
    const Type *RetTy = CurProc ? CurProc->RetTy : nullptr;
    if (R.Value) {
      const Type *VT = checkExpr(*R.Value);
      if (!RetTy)
        error(S.Loc, "RETURN with a value in a proper procedure");
      else if (VT && !Type::assignable(RetTy, VT))
        error(S.Loc, "RETURN type mismatch: expected " + RetTy->str() +
                         ", got " + VT->str());
    } else if (RetTy) {
      error(S.Loc, "RETURN without a value in a function procedure");
    }
    return;
  }
  case Stmt::Kind::With: {
    auto &W = static_cast<WithStmt &>(S);
    const Type *TT = checkExpr(*W.Target);
    if (!TT)
      return;
    if (!isDesignator(*W.Target)) {
      error(S.Loc, "WITH target must be a designator");
      return;
    }
    noteAddressTaken(*W.Target);
    W.AliasSym = makeLocal(Symbol::Kind::WithAlias, W.AliasName, TT);
    pushScope();
    declare(W.AliasSym);
    checkBody(W.Body);
    popScope();
    return;
  }
  case Stmt::Kind::IncDec: {
    auto &I = static_cast<IncDecStmt &>(S);
    const Type *TT = checkExpr(*I.Target);
    if (TT && !TT->isInteger())
      error(S.Loc, "INC/DEC target must be INTEGER");
    if (TT && !isDesignator(*I.Target))
      error(S.Loc, "INC/DEC target must be a designator");
    if (I.Amount) {
      const Type *AT = checkExpr(*I.Amount);
      if (AT && !AT->isInteger())
        error(I.Amount->Loc, "INC/DEC amount must be INTEGER");
    }
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

bool Sema::isDesignator(const Expr &E) const {
  switch (E.ExprKind) {
  case Expr::Kind::Name: {
    const Symbol *Sym = static_cast<const NameExpr &>(E).Sym;
    return Sym && (Sym->isVariable() || Sym->SymKind == Symbol::Kind::WithAlias);
  }
  case Expr::Kind::Index:
  case Expr::Kind::Field:
  case Expr::Kind::Deref:
    return true; // Components checked during typing.
  default:
    return false;
  }
}

void Sema::noteAddressTaken(Expr &E) {
  if (E.ExprKind != Expr::Kind::Name)
    return;
  Symbol *Sym = static_cast<NameExpr &>(E).Sym;
  if (Sym && Sym->isVariable())
    Sym->AddressTaken = true;
}

const Type *Sema::checkExpr(Expr &E) {
  switch (E.ExprKind) {
  case Expr::Kind::IntLit:
    E.Ty = M.Types.integerType();
    return E.Ty;
  case Expr::Kind::BoolLit:
    E.Ty = M.Types.booleanType();
    return E.Ty;
  case Expr::Kind::NilLit:
    E.Ty = M.Types.nilType();
    return E.Ty;
  case Expr::Kind::StrLit:
    E.Ty = M.Types.getRef(M.Types.getOpenArray(M.Types.integerType()));
    return E.Ty;

  case Expr::Kind::Name: {
    auto &N = static_cast<NameExpr &>(E);
    N.Sym = lookup(N.Name);
    if (!N.Sym) {
      error(E.Loc, "unknown identifier '" + N.Name + "'");
      return nullptr;
    }
    switch (N.Sym->SymKind) {
    case Symbol::Kind::Constant:
    case Symbol::Kind::GlobalVar:
    case Symbol::Kind::LocalVar:
    case Symbol::Kind::Param:
    case Symbol::Kind::ForIndex:
    case Symbol::Kind::WithAlias:
      E.Ty = N.Sym->Ty;
      return E.Ty;
    case Symbol::Kind::TypeName:
      error(E.Loc, "type name '" + N.Name + "' used as a value");
      return nullptr;
    case Symbol::Kind::Proc:
      error(E.Loc, "procedure '" + N.Name + "' used as a value");
      return nullptr;
    }
    return nullptr;
  }

  case Expr::Kind::Binary: {
    auto &B = static_cast<BinaryExpr &>(E);
    const Type *LT = checkExpr(*B.LHS);
    const Type *RT = checkExpr(*B.RHS);
    if (!LT || !RT)
      return nullptr;
    switch (B.Op) {
    case BinOp::Add: case BinOp::Sub: case BinOp::Mul:
    case BinOp::Div: case BinOp::Mod:
      if (!LT->isInteger() || !RT->isInteger()) {
        error(E.Loc, "arithmetic requires INTEGER operands");
        return nullptr;
      }
      E.Ty = M.Types.integerType();
      return E.Ty;
    case BinOp::Lt: case BinOp::Le: case BinOp::Gt: case BinOp::Ge:
      if (!LT->isInteger() || !RT->isInteger()) {
        error(E.Loc, "ordering comparison requires INTEGER operands");
        return nullptr;
      }
      E.Ty = M.Types.booleanType();
      return E.Ty;
    case BinOp::Eq: case BinOp::Ne: {
      bool Ok = (LT->isInteger() && RT->isInteger()) ||
                (LT->isBoolean() && RT->isBoolean()) ||
                ((LT->isRef() || LT->isNil()) && (RT->isRef() || RT->isNil()));
      if (!Ok) {
        error(E.Loc, "incomparable operand types " + LT->str() + " and " +
                         RT->str());
        return nullptr;
      }
      E.Ty = M.Types.booleanType();
      return E.Ty;
    }
    case BinOp::And: case BinOp::Or:
      if (!LT->isBoolean() || !RT->isBoolean()) {
        error(E.Loc, "AND/OR require BOOLEAN operands");
        return nullptr;
      }
      E.Ty = M.Types.booleanType();
      return E.Ty;
    }
    return nullptr;
  }

  case Expr::Kind::Unary: {
    auto &U = static_cast<UnaryExpr &>(E);
    const Type *ST = checkExpr(*U.Sub);
    if (!ST)
      return nullptr;
    if (U.Op == UnOp::Neg) {
      if (!ST->isInteger()) {
        error(E.Loc, "unary '-' requires INTEGER");
        return nullptr;
      }
      E.Ty = M.Types.integerType();
    } else {
      if (!ST->isBoolean()) {
        error(E.Loc, "NOT requires BOOLEAN");
        return nullptr;
      }
      E.Ty = M.Types.booleanType();
    }
    return E.Ty;
  }

  case Expr::Kind::Index: {
    auto &I = static_cast<IndexExpr &>(E);
    const Type *BT = checkExpr(*I.Base);
    const Type *IT = checkExpr(*I.Index);
    if (!BT || !IT)
      return nullptr;
    if (!IT->isInteger()) {
      error(I.Index->Loc, "array index must be INTEGER");
      return nullptr;
    }
    if (BT->isRef() && (BT->elem()->isArray() || BT->elem()->isOpenArray())) {
      I.BaseIsRef = true;
      BT = BT->elem();
    }
    if (!BT->isArray() && !BT->isOpenArray()) {
      error(E.Loc, "indexing a non-array of type " + BT->str());
      return nullptr;
    }
    E.Ty = BT->elem();
    return E.Ty;
  }

  case Expr::Kind::Field: {
    auto &F = static_cast<FieldExpr &>(E);
    const Type *BT = checkExpr(*F.Base);
    if (!BT)
      return nullptr;
    if (BT->isRef() && BT->elem()->isRecord()) {
      F.BaseIsRef = true;
      BT = BT->elem();
    }
    if (!BT->isRecord()) {
      error(E.Loc, "selecting field of a non-record of type " + BT->str());
      return nullptr;
    }
    F.Field = BT->findField(F.FieldName);
    if (!F.Field) {
      error(E.Loc, "no field '" + F.FieldName + "' in " + BT->str());
      return nullptr;
    }
    E.Ty = F.Field->Ty;
    return E.Ty;
  }

  case Expr::Kind::Deref: {
    auto &D = static_cast<DerefExpr &>(E);
    const Type *BT = checkExpr(*D.Base);
    if (!BT)
      return nullptr;
    if (!BT->isRef()) {
      error(E.Loc, "dereference of a non-REF of type " + BT->str());
      return nullptr;
    }
    E.Ty = BT->elem();
    return E.Ty;
  }

  case Expr::Kind::Call:
    return checkCall(static_cast<CallExpr &>(E), /*AsStatement=*/false);
  }
  return nullptr;
}

const Type *Sema::checkCall(CallExpr &E, bool AsStatement) {
  static const std::map<std::string, Builtin> Builtins = {
      {"NEW", Builtin::New},         {"NUMBER", Builtin::Number},
      {"FIRST", Builtin::First},     {"LAST", Builtin::Last},
      {"ABS", Builtin::Abs},         {"PutInt", Builtin::PutInt},
      {"PutChar", Builtin::PutChar}, {"PutLn", Builtin::PutLn},
      {"GcCollect", Builtin::GcCollect}, {"HALT", Builtin::Halt},
      {"ReqDone", Builtin::ReqDone},
  };
  auto BIt = Builtins.find(E.Callee);
  if (BIt != Builtins.end()) {
    E.BuiltinKind = BIt->second;
    bool IsProper = BIt->second == Builtin::PutInt ||
                    BIt->second == Builtin::PutChar ||
                    BIt->second == Builtin::PutLn ||
                    BIt->second == Builtin::GcCollect ||
                    BIt->second == Builtin::Halt ||
                    BIt->second == Builtin::ReqDone;
    if (IsProper && !AsStatement) {
      error(E.Loc, "proper builtin '" + E.Callee + "' used in an expression");
      return nullptr;
    }
    return checkBuiltin(E, BIt->second);
  }

  Symbol *Sym = lookup(E.Callee);
  if (!Sym || Sym->SymKind != Symbol::Kind::Proc) {
    error(E.Loc, "call of unknown procedure '" + E.Callee + "'");
    return nullptr;
  }
  ProcDecl *P = Sym->Proc;
  E.Proc = P;
  if (E.Args.size() != P->Params.size()) {
    error(E.Loc, "call of '" + E.Callee + "' with " +
                     std::to_string(E.Args.size()) + " argument(s), expected " +
                     std::to_string(P->Params.size()));
    return nullptr;
  }
  for (size_t I = 0, N = E.Args.size(); I != N; ++I) {
    Symbol *Param = P->Params[I].get();
    const Type *AT = checkExpr(*E.Args[I]);
    if (!AT)
      continue;
    if (Param->IsVarParam) {
      if (!isDesignator(*E.Args[I])) {
        error(E.Args[I]->Loc, "VAR argument must be a designator");
        continue;
      }
      if (!Type::structurallyEqual(Param->Ty, AT)) {
        error(E.Args[I]->Loc, "VAR argument type " + AT->str() +
                                  " does not match parameter type " +
                                  Param->Ty->str());
        continue;
      }
      noteAddressTaken(*E.Args[I]);
    } else {
      if (!AT->isScalar()) {
        error(E.Args[I]->Loc,
              "aggregate arguments must be passed VAR or by REF");
        continue;
      }
      if (!Type::assignable(Param->Ty, AT))
        error(E.Args[I]->Loc, "argument type " + AT->str() +
                                  " does not match parameter type " +
                                  Param->Ty->str());
    }
  }
  if (!AsStatement && !P->RetTy) {
    error(E.Loc, "proper procedure '" + E.Callee + "' used in an expression");
    return nullptr;
  }
  E.Ty = P->RetTy;
  return E.Ty;
}

const Type *Sema::checkBuiltin(CallExpr &E, Builtin B) {
  auto RequireArgs = [&](size_t Min, size_t Max) {
    if (E.Args.size() < Min || E.Args.size() > Max) {
      error(E.Loc, "wrong number of arguments to " + E.Callee);
      return false;
    }
    return true;
  };

  switch (B) {
  case Builtin::New: {
    if (!RequireArgs(1, 2))
      return nullptr;
    // The first argument must be a type name denoting a REF type.
    if (E.Args[0]->ExprKind != Expr::Kind::Name) {
      error(E.Loc, "first argument of NEW must be a REF type name");
      return nullptr;
    }
    auto &N = static_cast<NameExpr &>(*E.Args[0]);
    Symbol *Sym = lookup(N.Name);
    if (!Sym || Sym->SymKind != Symbol::Kind::TypeName || !Sym->Ty->isRef()) {
      error(E.Loc, "first argument of NEW must be a REF type name");
      return nullptr;
    }
    N.Sym = Sym;
    N.Ty = Sym->Ty;
    E.AllocType = Sym->Ty->elem();
    bool IsOpen = E.AllocType->isOpenArray();
    if (IsOpen && E.Args.size() != 2) {
      error(E.Loc, "NEW of an open array requires a length argument");
      return nullptr;
    }
    if (!IsOpen && E.Args.size() != 1) {
      error(E.Loc, "NEW of a fixed-shape type takes no length argument");
      return nullptr;
    }
    if (E.Args.size() == 2) {
      const Type *LT = checkExpr(*E.Args[1]);
      if (LT && !LT->isInteger()) {
        error(E.Args[1]->Loc, "NEW length must be INTEGER");
        return nullptr;
      }
    }
    E.Ty = Sym->Ty;
    return E.Ty;
  }

  case Builtin::Number:
  case Builtin::First:
  case Builtin::Last: {
    if (!RequireArgs(1, 1))
      return nullptr;
    const Type *AT = checkExpr(*E.Args[0]);
    if (!AT)
      return nullptr;
    if (AT->isRef())
      AT = AT->elem();
    if (!AT->isArray() && !AT->isOpenArray()) {
      error(E.Args[0]->Loc, E.Callee + " requires an array");
      return nullptr;
    }
    E.Ty = M.Types.integerType();
    return E.Ty;
  }

  case Builtin::Abs: {
    if (!RequireArgs(1, 1))
      return nullptr;
    const Type *AT = checkExpr(*E.Args[0]);
    if (AT && !AT->isInteger()) {
      error(E.Args[0]->Loc, "ABS requires INTEGER");
      return nullptr;
    }
    E.Ty = M.Types.integerType();
    return E.Ty;
  }

  case Builtin::PutInt:
  case Builtin::PutChar: {
    if (!RequireArgs(1, 1))
      return nullptr;
    const Type *AT = checkExpr(*E.Args[0]);
    if (AT && !AT->isInteger())
      error(E.Args[0]->Loc, E.Callee + " requires INTEGER");
    return nullptr; // Proper procedure.
  }

  case Builtin::PutLn:
  case Builtin::GcCollect:
  case Builtin::Halt:
  case Builtin::ReqDone:
    RequireArgs(0, 0);
    return nullptr; // Proper procedures.

  case Builtin::None:
    break;
  }
  return nullptr;
}

} // namespace

bool mgc::checkModule(ModuleAST &Module, Diagnostics &Diags) {
  Sema S(Module, Diags);
  return S.run();
}
