//===- codegen/Serialize.h - Code image serialization -----------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes machine instructions into a byte image.  The interpreter
/// executes the in-memory MInstr form; the byte image defines "code size"
/// for Table 1/2 (table sizes are reported as a percentage of it) and the
/// per-instruction byte offsets give gc-points their code addresses for the
/// pc-map's 2-byte-distance accounting.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_CODEGEN_SERIALIZE_H
#define MGC_CODEGEN_SERIALIZE_H

#include "codegen/Machine.h"

#include <cstdint>
#include <vector>

namespace mgc {
namespace codegen {

struct CodeImage {
  std::vector<uint8_t> Bytes;
  /// Byte offset of each instruction.
  std::vector<uint32_t> InstrOffsets;
};

CodeImage serializeCode(const std::vector<vm::MInstr> &Code);

} // namespace codegen
} // namespace mgc

#endif // MGC_CODEGEN_SERIALIZE_H
