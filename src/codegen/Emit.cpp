//===- codegen/Emit.cpp ---------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/Emit.h"

#include "analysis/Derivations.h"
#include "analysis/Liveness.h"
#include "codegen/RegAlloc.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace mgc;
using namespace mgc::codegen;
using namespace mgc::ir;
using namespace mgc::vm;

namespace {

class Emitter {
public:
  Emitter(Function &F, const gcsafety::GcSafetyInfo &Safety,
          const EmitOptions &Opts)
      : F(F), Safety(Safety), Opts(Opts) {}

  EmitResult run();

private:
  MOperand operandOf(const Operand &O) const {
    if (O.isImm())
      return MOperand::imm(O.Imm);
    assert(O.isReg() && "emitting a None operand");
    return locOperand(O.R);
  }

  MOperand locOperand(VReg R) const {
    const Location &L = Loc[static_cast<size_t>(R)];
    switch (L.K) {
    case Location::Kind::Reg:
      return MOperand::reg(L.Index);
    case Location::Kind::FpSlot:
      return MOperand::slot(L.Index);
    case Location::Kind::ApSlot:
      return MOperand::aslot(L.Index);
    case Location::Kind::None:
      break;
    }
    assert(false && "vreg without a home");
    return MOperand::none();
  }

  /// Memory operand [value(Base) + Disp].
  MOperand memOperand(VReg Base, int64_t Disp) const {
    const Location &L = Loc[static_cast<size_t>(Base)];
    switch (L.K) {
    case Location::Kind::Reg:
      return MOperand::memReg(L.Index, Disp);
    case Location::Kind::FpSlot:
      return MOperand::memSlot(L.Index, Disp);
    case Location::Kind::ApSlot:
      return MOperand::memASlot(L.Index, Disp);
    case Location::Kind::None:
      break;
    }
    assert(false && "address vreg without a home");
    return MOperand::none();
  }

  void push(MInstr I) { Code.push_back(std::move(I)); }

  void emitInstr(const BasicBlock &BB, unsigned Index);
  void recordGcPoint(const BasicBlock &BB, unsigned Index,
                     uint32_t GcInstrLocalIdx);

  Function &F;
  const gcsafety::GcSafetyInfo &Safety;
  const EmitOptions &Opts;

  std::vector<Location> Loc; ///< Final vreg homes (FP offsets resolved).
  std::vector<int> SlotWordOff;
  unsigned OutArgBase = 0;
  std::vector<unsigned> UseCount;

  std::vector<MInstr> Code;
  std::vector<uint32_t> BlockStart;
  struct Fixup {
    size_t InstrIdx;
    bool IsSecond;
    unsigned Block;
  };
  std::vector<Fixup> Fixups;

  /// Pending CISC fold: vreg -> memory operand replacing it.
  std::map<VReg, MOperand> PendingFold;

  std::unique_ptr<analysis::DerivationAnalysis> DA;
  std::unique_ptr<analysis::Liveness> LV;

  EmitResult Result;
};

EmitResult Emitter::run() {
  Assignment Asg = allocateRegisters(F);

  // Frame layout: [save area][slots][outgoing args].
  unsigned NumSaved = static_cast<unsigned>(Asg.UsedRegs.size());
  SlotWordOff.assign(F.Slots.size(), 0);
  unsigned NextWord = NumSaved;
  for (size_t S = 0; S != F.Slots.size(); ++S) {
    SlotWordOff[S] = static_cast<int>(NextWord);
    NextWord += F.Slots[S].SizeWords;
  }
  unsigned MaxOutArgs = 0;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::Call || I.Op == Opcode::CallRt)
        MaxOutArgs = std::max(MaxOutArgs,
                              static_cast<unsigned>(I.Args.size()));
  OutArgBase = NextWord;

  Result.Meta.Name = F.Name;
  Result.Meta.FrameWords = OutArgBase + MaxOutArgs;
  Result.Meta.NumParams = static_cast<uint16_t>(F.numParams());
  Result.Meta.HasRet = F.HasRet;
  Result.Meta.SavedRegs = Asg.UsedRegs;

  // Resolve spill-slot ids in the assignment to FP word offsets.
  Loc = Asg.LocOf;
  for (Location &L : Loc)
    if (L.K == Location::Kind::FpSlot)
      L = Location::fpSlot(SlotWordOff[static_cast<size_t>(L.Index)]);

  // Use counts for the CISC fold.
  UseCount.assign(F.VRegs.size(), 0);
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs) {
      std::vector<VReg> Uses;
      I.collectUses(Uses);
      for (VReg R : Uses)
        ++UseCount[static_cast<size_t>(R)];
    }

  DA = std::make_unique<analysis::DerivationAnalysis>(F);
  auto Extra = DA->computeExtraUses();
  LV = std::make_unique<analysis::Liveness>(F, &Extra);

  // Prologue: zero-initialize pointer words of lowering-created slots so
  // their always-live ground entries are valid from entry.
  for (size_t S = 0; S != F.Slots.size(); ++S) {
    const SlotInfo &SI = F.Slots[S];
    if (SI.IsSpill)
      continue;
    for (unsigned Off : SI.PtrOffsets) {
      MInstr I;
      I.Op = MOp::Mov;
      I.D = MOperand::slot(SlotWordOff[S] + static_cast<int>(Off));
      I.A = MOperand::imm(0);
      push(I);
    }
  }

  BlockStart.assign(F.Blocks.size(), 0);
  for (const auto &BB : F.Blocks) {
    BlockStart[BB->Id] = static_cast<uint32_t>(Code.size());
    PendingFold.clear();
    for (unsigned I = 0; I != BB->Instrs.size(); ++I)
      emitInstr(*BB, I);
  }

  for (const Fixup &Fx : Fixups) {
    MInstr &I = Code[Fx.InstrIdx];
    if (Fx.IsSecond)
      I.Target1 = BlockStart[Fx.Block];
    else
      I.Target0 = BlockStart[Fx.Block];
  }

  Result.Meta.NumInstrs = static_cast<uint32_t>(Code.size());
  Result.Code = std::move(Code);
  return std::move(Result);
}

//===----------------------------------------------------------------------===//
// GC-point table data
//===----------------------------------------------------------------------===//

void Emitter::recordGcPoint(const BasicBlock &BB, unsigned Index,
                            uint32_t GcInstrLocalIdx) {
  if (!Opts.GcSafe)
    return;
  gcmaps::GcPointData P;
  P.RetPC = GcInstrLocalIdx + 1;

  DynBitset Live = LV->liveBefore(BB.Id, Index);
  const Instr &GcIns = BB.Instrs[Index];

  uint16_t RegMask = 0;
  std::vector<Location> Slots;

  Live.forEach([&](size_t R) {
    if (F.kindOf(static_cast<VReg>(R)) != PtrKind::Tidy)
      return;
    const Location &L = Loc[R];
    if (L.K == Location::Kind::Reg)
      RegMask |= static_cast<uint16_t>(1u << L.Index);
    else
      Slots.push_back(L);
  });

  // Lowering-created pointer slots (aggregates, address-taken REFs) are
  // described at every gc-point; they are zeroed in the prologue.
  for (size_t S = 0; S != F.Slots.size(); ++S) {
    const SlotInfo &SI = F.Slots[S];
    if (SI.IsSpill)
      continue;
    for (unsigned Off : SI.PtrOffsets)
      Slots.push_back(
          Location::fpSlot(SlotWordOff[S] + static_cast<int>(Off)));
  }

  // Derivations of live derived values.
  analysis::DerivMap State = DA->stateBefore(BB.Id, Index);

  auto BasesToRefs = [&](const analysis::Derivation &D) {
    std::vector<gcmaps::BaseRef> Refs;
    for (const auto &[BaseR, Coeff] : D.Bases) {
      gcmaps::BaseRef Ref;
      Ref.Loc = Loc[static_cast<size_t>(BaseR)];
      assert(Ref.Loc.K != Location::Kind::None && "base without a home");
      Ref.Coeff = Coeff;
      Refs.push_back(Ref);
    }
    return Refs;
  };

  std::vector<gcmaps::DerivationRecord> Derivs;
  auto AddDerived = [&](VReg R, Location Target) {
    auto It = State.find(R);
    assert(It != State.end() && "live derived value with unknown state");
    const analysis::DerivState &S = It->second;
    gcmaps::DerivationRecord Rec;
    Rec.Target = Target;
    if (S.K == analysis::DerivState::Kind::Single) {
      Rec.Bases = BasesToRefs(S.D);
      if (Rec.Bases.empty())
        return; // Pure-E value: nothing to adjust.
    } else {
      assert(S.K == analysis::DerivState::Kind::Ambiguous);
      auto PV = Safety.PathVars.find(R);
      assert(PV != Safety.PathVars.end() &&
             "ambiguous derivation without a path variable");
      Rec.Ambiguous = true;
      Rec.PathVar = Location::fpSlot(
          SlotWordOff[static_cast<size_t>(PV->second.Slot)]);
      for (const analysis::Derivation &Alt : S.Alts) {
        gcmaps::DerivationAlt A;
        bool Found = false;
        for (const auto &[D, Value] : PV->second.Values)
          if (D == Alt) {
            A.PathValue = Value;
            Found = true;
            break;
          }
        assert(Found && "alternative derivation lacks a path value");
        (void)Found;
        A.Bases = BasesToRefs(Alt);
        Rec.Alts.push_back(std::move(A));
      }
    }
    Derivs.push_back(std::move(Rec));
  };

  Live.forEach([&](size_t R) {
    if (F.kindOf(static_cast<VReg>(R)) == PtrKind::Derived)
      AddDerived(static_cast<VReg>(R), Loc[R]);
  });

  // Outgoing argument slots of a call hold copies the callee reads through
  // AP; the caller's table must keep them correct (tidy args are traced,
  // derived and forwarded-VAR args adjusted).
  if (GcIns.Op == Opcode::Call) {
    for (size_t A = 0; A != GcIns.Args.size(); ++A) {
      const Operand &O = GcIns.Args[A];
      if (!O.isReg())
        continue;
      Location ArgLoc =
          Location::fpSlot(static_cast<int>(OutArgBase + A));
      switch (F.kindOf(O.R)) {
      case PtrKind::Tidy:
        Slots.push_back(ArgLoc);
        break;
      case PtrKind::Derived:
        AddDerived(O.R, ArgLoc);
        break;
      case PtrKind::IncomingAddr: {
        // Forwarding a VAR parameter: the copy is derived (+1) from the
        // incoming argument slot, which the *caller's* caller maintains.
        gcmaps::DerivationRecord Rec;
        Rec.Target = ArgLoc;
        gcmaps::BaseRef Ref;
        Ref.Loc = Loc[static_cast<size_t>(O.R)];
        Ref.Coeff = 1;
        Rec.Bases.push_back(Ref);
        Derivs.push_back(std::move(Rec));
        break;
      }
      default:
        break;
      }
    }
  }

  std::sort(Slots.begin(), Slots.end());
  Slots.erase(std::unique(Slots.begin(), Slots.end()), Slots.end());

  P.LiveSlots = std::move(Slots);
  P.RegMask = RegMask;
  P.Derivs = std::move(Derivs);
  Result.Tables.Points.push_back(std::move(P));
}

//===----------------------------------------------------------------------===//
// Instruction selection
//===----------------------------------------------------------------------===//

void Emitter::emitInstr(const BasicBlock &BB, unsigned Index) {
  const Instr &I = BB.Instrs[Index];

  // Resolve a source operand, applying any pending CISC fold.
  auto Src = [&](const Operand &O) -> MOperand {
    if (O.isReg()) {
      auto It = PendingFold.find(O.R);
      if (It != PendingFold.end()) {
        MOperand M = It->second;
        PendingFold.erase(It);
        return M;
      }
    }
    return operandOf(O);
  };

  switch (I.Op) {
  case Opcode::Mov: {
    MInstr M;
    M.Op = MOp::Mov;
    M.D = locOperand(I.Dst);
    M.A = Src(I.A);
    push(M);
    return;
  }

  case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
  case Opcode::Mod: case Opcode::CmpEq: case Opcode::CmpNe:
  case Opcode::CmpLt: case Opcode::CmpLe: case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::DeriveAdd: case Opcode::DeriveSub: case Opcode::DeriveDiff: {
    static const std::map<Opcode, MOp> OpMap = {
        {Opcode::Add, MOp::Add},       {Opcode::Sub, MOp::Sub},
        {Opcode::Mul, MOp::Mul},       {Opcode::Div, MOp::Div},
        {Opcode::Mod, MOp::Mod},       {Opcode::CmpEq, MOp::CmpEq},
        {Opcode::CmpNe, MOp::CmpNe},   {Opcode::CmpLt, MOp::CmpLt},
        {Opcode::CmpLe, MOp::CmpLe},   {Opcode::CmpGt, MOp::CmpGt},
        {Opcode::CmpGe, MOp::CmpGe},   {Opcode::DeriveAdd, MOp::Add},
        {Opcode::DeriveSub, MOp::Sub}, {Opcode::DeriveDiff, MOp::Sub},
    };
    MInstr M;
    M.Op = OpMap.at(I.Op);
    M.D = locOperand(I.Dst);
    M.A = Src(I.A);
    M.B = Src(I.B);
    push(M);
    return;
  }

  case Opcode::Neg: case Opcode::Not: {
    MInstr M;
    M.Op = I.Op == Opcode::Neg ? MOp::Neg : MOp::Not;
    M.D = locOperand(I.Dst);
    M.A = Src(I.A);
    push(M);
    return;
  }

  case Opcode::Load: {
    // CISC fold: a single-use load whose consumer follows in the same
    // block (with no intervening memory effect or redefinition) becomes a
    // memory operand of the consumer — VAX-style addressing.  The gc
    // restriction (§4's indirect references): when the loaded value is a
    // *pointer* the tables may need to update — as a derivation base or as
    // a tidy argument live at a call gc-point — so it must be preserved in
    // a register or slot instead.
    if (Opts.CiscFold && I.A.isReg() &&
        UseCount[static_cast<size_t>(I.Dst)] == 1) {
      const Instr *Consumer = nullptr;
      for (unsigned K = Index + 1; K != BB.Instrs.size(); ++K) {
        const Instr &Cand = BB.Instrs[K];
        auto UsesT = [&](const Instr &C) {
          std::vector<VReg> Uses;
          C.collectUses(Uses);
          return std::find(Uses.begin(), Uses.end(), I.Dst) != Uses.end();
        };
        bool Consumes = false;
        if (Cand.isPure() && Cand.Op != Opcode::Mov &&
            ((Cand.A.isReg() && Cand.A.R == I.Dst) ||
             (Cand.B.isReg() && Cand.B.R == I.Dst)) &&
            Cand.Dst != I.Dst)
          Consumes = true;
        else if ((Cand.Op == Opcode::Call || Cand.Op == Opcode::CallRt) &&
                 UsesT(Cand))
          Consumes = true;
        if (Consumes) {
          Consumer = &Cand;
          break;
        }
        // Legality of scanning past Cand: no memory writes, no gc-points,
        // no redefinition of the loaded value or the address base.
        bool MemoryEffect = Cand.Op == Opcode::Store ||
                            Cand.Op == Opcode::StoreSlot ||
                            Cand.Op == Opcode::StoreGlobal ||
                            Cand.Op == Opcode::Call ||
                            Cand.Op == Opcode::CallRt ||
                            Cand.Op == Opcode::New ||
                            Cand.Op == Opcode::NewArray ||
                            Cand.isTerminator();
        if (MemoryEffect || Cand.Dst == I.Dst || Cand.Dst == I.A.R)
          break;
      }
      if (Consumer) {
        PtrKind TK = F.kindOf(I.Dst);
        bool PointerLike = TK == PtrKind::Tidy || TK == PtrKind::Derived ||
                           TK == PtrKind::IncomingAddr;
        if (Opts.GcSafe && PointerLike) {
          // Preserve the intermediate reference (emit the plain load).
          ++Result.CiscFoldsBlocked;
        } else {
          PendingFold[I.Dst] = memOperand(I.A.R, I.Disp);
          ++Result.CiscFoldsApplied;
          return;
        }
      }
    }
    MInstr M;
    M.Op = MOp::Mov;
    M.D = locOperand(I.Dst);
    M.A = memOperand(I.A.R, I.Disp);
    push(M);
    return;
  }

  case Opcode::Store: {
    MInstr M;
    M.Op = MOp::Mov;
    M.D = memOperand(I.A.R, I.Disp);
    M.A = Src(I.B);
    push(M);
    return;
  }

  case Opcode::LoadSlot: {
    MInstr M;
    M.Op = MOp::Mov;
    M.D = locOperand(I.Dst);
    M.A = MOperand::slot(SlotWordOff[static_cast<size_t>(I.Index)]);
    push(M);
    return;
  }
  case Opcode::StoreSlot: {
    MInstr M;
    M.Op = MOp::Mov;
    M.D = MOperand::slot(SlotWordOff[static_cast<size_t>(I.Index)]);
    M.A = Src(I.B);
    push(M);
    return;
  }
  case Opcode::LoadGlobal: {
    MInstr M;
    M.Op = MOp::Mov;
    M.D = locOperand(I.Dst);
    M.A = MOperand::global(I.Index);
    push(M);
    return;
  }
  case Opcode::StoreGlobal: {
    MInstr M;
    M.Op = MOp::Mov;
    M.D = MOperand::global(I.Index);
    M.A = Src(I.B);
    push(M);
    return;
  }

  case Opcode::AddrSlot: {
    MInstr M;
    M.Op = MOp::AddrSlot;
    M.D = locOperand(I.Dst);
    M.Index = SlotWordOff[static_cast<size_t>(I.Index)];
    M.A = MOperand::imm(I.Disp);
    push(M);
    return;
  }
  case Opcode::AddrGlobal: {
    MInstr M;
    M.Op = MOp::AddrGlobal;
    M.D = locOperand(I.Dst);
    M.Index = I.Index;
    M.A = MOperand::imm(I.Disp);
    push(M);
    return;
  }

  case Opcode::New:
  case Opcode::NewArray: {
    uint32_t GcIdx = static_cast<uint32_t>(Code.size());
    recordGcPoint(BB, Index, GcIdx);
    Result.AllocSites.push_back({GcIdx, I.Loc.Line, I.Loc.Col,
                                 static_cast<uint32_t>(I.Index)});
    MInstr M;
    M.Op = I.Op == Opcode::New ? MOp::NewObj : MOp::NewArr;
    M.D = locOperand(I.Dst);
    M.Index = I.Index;
    if (I.Op == Opcode::NewArray)
      M.A = Src(I.A);
    push(M);
    return;
  }

  case Opcode::Call: {
    // Argument moves precede the call.
    for (size_t A = 0; A != I.Args.size(); ++A) {
      MInstr M;
      M.Op = MOp::Mov;
      M.D = MOperand::slot(static_cast<int>(OutArgBase + A));
      M.A = Src(I.Args[A]);
      push(M);
    }
    if (!I.NoGcCallee) {
      uint32_t GcIdx = static_cast<uint32_t>(Code.size());
      recordGcPoint(BB, Index, GcIdx);
    }
    MInstr M;
    M.Op = MOp::Call;
    M.NoGcCallee = I.NoGcCallee;
    M.Index = I.Index;
    M.ArgBase = static_cast<uint16_t>(OutArgBase);
    M.NArgs = static_cast<uint16_t>(I.Args.size());
    push(M);
    if (I.Dst != NoVReg) {
      MInstr R;
      R.Op = MOp::Mov;
      R.D = locOperand(I.Dst);
      R.A = MOperand::reg(static_cast<int>(RetValReg));
      push(R);
    }
    return;
  }

  case Opcode::CallRt: {
    for (size_t A = 0; A != I.Args.size(); ++A) {
      MInstr M;
      M.Op = MOp::Mov;
      M.D = MOperand::slot(static_cast<int>(OutArgBase + A));
      M.A = Src(I.Args[A]);
      push(M);
    }
    if (I.Rt == RtFn::GcCollect) {
      uint32_t GcIdx = static_cast<uint32_t>(Code.size());
      recordGcPoint(BB, Index, GcIdx);
    }
    MInstr M;
    M.Op = MOp::CallRt;
    M.Index = static_cast<int>(I.Rt);
    M.ArgBase = static_cast<uint16_t>(OutArgBase);
    M.NArgs = static_cast<uint16_t>(I.Args.size());
    push(M);
    return;
  }

  case Opcode::WriteBarrier: {
    // Not a gc-point: the barrier neither allocates nor yields.  The slot
    // address is recomputed from the base's home so no extra value is live
    // across it.
    MInstr M;
    M.Op = MOp::WriteBarrier;
    M.A = locOperand(I.A.R);
    M.B = MOperand::imm(I.Disp);
    push(M);
    return;
  }

  case Opcode::GcPoll: {
    uint32_t GcIdx = static_cast<uint32_t>(Code.size());
    recordGcPoint(BB, Index, GcIdx);
    MInstr M;
    M.Op = MOp::GcPoll;
    push(M);
    return;
  }

  case Opcode::Jump: {
    MInstr M;
    M.Op = MOp::Jump;
    Fixups.push_back({Code.size(), false, I.Target0});
    push(M);
    return;
  }
  case Opcode::Branch: {
    MInstr M;
    M.Op = MOp::Branch;
    M.A = Src(I.A);
    Fixups.push_back({Code.size(), false, I.Target0});
    Fixups.push_back({Code.size(), true, I.Target1});
    push(M);
    return;
  }
  case Opcode::Ret: {
    if (!I.A.isNone()) {
      MInstr M;
      M.Op = MOp::Mov;
      M.D = MOperand::reg(static_cast<int>(RetValReg));
      M.A = Src(I.A);
      push(M);
    }
    MInstr M;
    M.Op = MOp::Ret;
    push(M);
    return;
  }
  case Opcode::Trap: {
    MInstr M;
    M.Op = MOp::Trap;
    M.Index = I.Index;
    push(M);
    return;
  }
  }
}

} // namespace

EmitResult codegen::emitFunction(Function &F,
                                 const gcsafety::GcSafetyInfo &Safety,
                                 const EmitOptions &Opts) {
  Emitter E(F, Safety, Opts);
  return E.run();
}
