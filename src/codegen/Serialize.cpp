//===- codegen/Serialize.cpp ----------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/Serialize.h"

#include "support/ByteCodec.h"

using namespace mgc;
using namespace mgc::codegen;
using namespace mgc::vm;

namespace {
void serializeOperand(std::vector<uint8_t> &Out, const MOperand &O) {
  Out.push_back(static_cast<uint8_t>(O.K));
  switch (O.K) {
  case MOperand::Kind::None:
    break;
  case MOperand::Kind::Reg:
    Out.push_back(static_cast<uint8_t>(O.Reg));
    break;
  case MOperand::Kind::Slot:
  case MOperand::Kind::ASlot:
  case MOperand::Kind::Global:
    appendPacked(Out, O.Index);
    break;
  case MOperand::Kind::Imm:
    appendPacked(Out, static_cast<int32_t>(O.Imm));
    break;
  case MOperand::Kind::MemReg:
    Out.push_back(static_cast<uint8_t>(O.Reg));
    appendPacked(Out, static_cast<int32_t>(O.Disp));
    break;
  case MOperand::Kind::MemSlot:
  case MOperand::Kind::MemASlot:
    appendPacked(Out, O.Index);
    appendPacked(Out, static_cast<int32_t>(O.Disp));
    break;
  }
}
} // namespace

CodeImage codegen::serializeCode(const std::vector<MInstr> &Code) {
  CodeImage Img;
  for (const MInstr &I : Code) {
    Img.InstrOffsets.push_back(static_cast<uint32_t>(Img.Bytes.size()));
    Img.Bytes.push_back(static_cast<uint8_t>(I.Op));
    serializeOperand(Img.Bytes, I.D);
    serializeOperand(Img.Bytes, I.A);
    serializeOperand(Img.Bytes, I.B);
    switch (I.Op) {
    case MOp::NewObj:
    case MOp::NewArr:
    case MOp::Trap:
      appendPacked(Img.Bytes, I.Index);
      break;
    case MOp::Call:
    case MOp::CallRt:
      appendPacked(Img.Bytes, I.Index);
      appendPacked(Img.Bytes, I.ArgBase);
      appendPacked(Img.Bytes, I.NArgs);
      break;
    case MOp::AddrSlot:
    case MOp::AddrGlobal:
      appendPacked(Img.Bytes, I.Index);
      break;
    case MOp::Jump:
      for (int S = 0; S != 4; ++S)
        Img.Bytes.push_back(
            static_cast<uint8_t>((I.Target0 >> (8 * S)) & 0xff));
      break;
    case MOp::Branch:
      for (uint32_t T : {I.Target0, I.Target1})
        for (int S = 0; S != 4; ++S)
          Img.Bytes.push_back(static_cast<uint8_t>((T >> (8 * S)) & 0xff));
      break;
    default:
      break;
    }
  }
  return Img;
}
