//===- codegen/RegAlloc.h - Linear-scan register allocation -----*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns every virtual register one home for its entire lifetime: a
/// machine register, a frame (spill) slot, or — for parameters — its
/// AP-relative argument slot.  Because the target accepts memory operands,
/// spilled vregs are simply addressed in place; no reload code is needed.
/// Liveness here includes the dead-base extension so that base values
/// remain allocatable (and locatable by the collector) wherever a value
/// derived from them lives.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_CODEGEN_REGALLOC_H
#define MGC_CODEGEN_REGALLOC_H

#include "codegen/Machine.h"
#include "ir/IR.h"

#include <vector>

namespace mgc {
namespace codegen {

struct Assignment {
  /// Home of each vreg (None for vregs that never occur).
  std::vector<vm::Location> LocOf;
  /// Machine registers used by the function (saved in the prologue; all
  /// allocatable registers are callee-saved).
  std::vector<uint8_t> UsedRegs;
};

/// Allocates registers for \p F.  Appends spill slots to F.Slots.
Assignment allocateRegisters(ir::Function &F);

} // namespace codegen
} // namespace mgc

#endif // MGC_CODEGEN_REGALLOC_H
