//===- codegen/Disasm.h - Machine code disassembler -------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef MGC_CODEGEN_DISASM_H
#define MGC_CODEGEN_DISASM_H

#include "vm/Program.h"

#include <string>

namespace mgc {
namespace codegen {

/// Renders one instruction ("mov r3, [r1+8]").
std::string disassemble(const vm::Program &Prog, const vm::MInstr &I);

/// Renders a whole function, annotating gc-points with their decoded
/// tables when \p WithTables is set.
std::string disassembleFunction(const vm::Program &Prog, unsigned FuncIdx,
                                bool WithTables);

} // namespace codegen
} // namespace mgc

#endif // MGC_CODEGEN_DISASM_H
