//===- codegen/Disasm.cpp -------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/Disasm.h"

#include "gcmaps/GcTables.h"

using namespace mgc;
using namespace mgc::codegen;
using namespace mgc::vm;

namespace {
std::string operandStr(const MOperand &O) {
  switch (O.K) {
  case MOperand::Kind::None:
    return "_";
  case MOperand::Kind::Reg:
    return "r" + std::to_string(O.Reg);
  case MOperand::Kind::Slot:
    return "fp[" + std::to_string(O.Index) + "]";
  case MOperand::Kind::ASlot:
    return "ap[" + std::to_string(O.Index) + "]";
  case MOperand::Kind::Global:
    return "g[" + std::to_string(O.Index) + "]";
  case MOperand::Kind::Imm:
    return "#" + std::to_string(O.Imm);
  case MOperand::Kind::MemReg:
    return "[r" + std::to_string(O.Reg) + "+" + std::to_string(O.Disp) + "]";
  case MOperand::Kind::MemSlot:
    return "[fp[" + std::to_string(O.Index) + "]+" + std::to_string(O.Disp) +
           "]";
  case MOperand::Kind::MemASlot:
    return "[ap[" + std::to_string(O.Index) + "]+" + std::to_string(O.Disp) +
           "]";
  }
  return "?";
}

const char *opName(MOp Op) {
  switch (Op) {
  case MOp::Mov: return "mov";
  case MOp::Add: return "add";
  case MOp::Sub: return "sub";
  case MOp::Mul: return "mul";
  case MOp::Div: return "div";
  case MOp::Mod: return "mod";
  case MOp::Neg: return "neg";
  case MOp::Not: return "not";
  case MOp::CmpEq: return "cmpeq";
  case MOp::CmpNe: return "cmpne";
  case MOp::CmpLt: return "cmplt";
  case MOp::CmpLe: return "cmple";
  case MOp::CmpGt: return "cmpgt";
  case MOp::CmpGe: return "cmpge";
  case MOp::AddrSlot: return "addrslot";
  case MOp::AddrGlobal: return "addrglobal";
  case MOp::NewObj: return "newobj";
  case MOp::NewArr: return "newarr";
  case MOp::Call: return "call";
  case MOp::CallRt: return "callrt";
  case MOp::GcPoll: return "gcpoll";
  case MOp::WriteBarrier: return "wrbar";
  case MOp::Jump: return "jump";
  case MOp::Branch: return "branch";
  case MOp::Ret: return "ret";
  case MOp::Trap: return "trap";
  }
  return "?";
}
} // namespace

std::string codegen::disassemble(const Program &Prog, const MInstr &I) {
  std::string S = opName(I.Op);
  auto Append = [&](const std::string &Part) {
    S += S.size() == std::string(opName(I.Op)).size() ? " " : ", ";
    S += Part;
  };
  switch (I.Op) {
  case MOp::Jump:
    Append("@" + std::to_string(I.Target0));
    break;
  case MOp::Branch:
    Append(operandStr(I.A));
    Append("@" + std::to_string(I.Target0));
    Append("@" + std::to_string(I.Target1));
    break;
  case MOp::Call:
    Append(Prog.Funcs[static_cast<size_t>(I.Index)].Name);
    Append("args@fp[" + std::to_string(I.ArgBase) + "]x" +
           std::to_string(I.NArgs));
    break;
  case MOp::CallRt: {
    static const char *RtNames[] = {"PutInt", "PutChar", "PutLn",
                                    "GcCollect", "Halt", "ReqDone"};
    Append(RtNames[I.Index]);
    if (I.NArgs)
      Append("args@fp[" + std::to_string(I.ArgBase) + "]x" +
             std::to_string(I.NArgs));
    break;
  }
  case MOp::NewObj:
  case MOp::NewArr:
    Append(operandStr(I.D));
    Append("desc#" + std::to_string(I.Index) + " (" +
           Prog.TypeDescs[static_cast<size_t>(I.Index)].Name + ")");
    if (I.Op == MOp::NewArr)
      Append("len=" + operandStr(I.A));
    break;
  case MOp::AddrSlot:
  case MOp::AddrGlobal:
    Append(operandStr(I.D));
    Append((I.Op == MOp::AddrSlot ? "&fp[" : "&g[") +
           std::to_string(I.Index) + "]+" + std::to_string(I.A.Imm));
    break;
  case MOp::Trap:
    Append("#" + std::to_string(I.Index));
    break;
  case MOp::WriteBarrier:
    Append("[" + operandStr(I.A) + "+" + std::to_string(I.B.Imm) + "]");
    break;
  default:
    if (!I.D.isNone())
      Append(operandStr(I.D));
    if (!I.A.isNone())
      Append(operandStr(I.A));
    if (!I.B.isNone())
      Append(operandStr(I.B));
    break;
  }
  return S;
}

std::string codegen::disassembleFunction(const Program &Prog,
                                         unsigned FuncIdx, bool WithTables) {
  const CompiledFunction &F = Prog.Funcs[FuncIdx];
  const gcmaps::EncodedFuncMaps *Maps =
      FuncIdx < Prog.Maps.size() ? &Prog.Maps[FuncIdx] : nullptr;

  std::string S = F.Name + ":  (frame " + std::to_string(F.FrameWords) +
                  " words, " + std::to_string(F.SavedRegs.size()) +
                  " saved regs";
  if (Maps)
    S += ", " + std::to_string(Maps->RetPCs.size()) + " gc-points, " +
         std::to_string(Maps->Blob.size()) + " table bytes";
  S += ")\n";

  for (uint32_t PC = F.EntryIndex; PC != F.EntryIndex + F.NumInstrs; ++PC) {
    S += "  " + std::to_string(PC) + ":\t" +
         disassemble(Prog, Prog.Code[PC]) + "\n";
    if (!WithTables || !Maps)
      continue;
    int Ord = gcmaps::findGcPoint(*Maps, PC + 1);
    if (Ord < 0)
      continue;
    gcmaps::GcPointInfo Info =
        gcmaps::decodeGcPoint(*Maps, static_cast<unsigned>(Ord));
    S += "        ; gc-point " + std::to_string(Ord) + ": live ptrs {";
    bool First = true;
    for (const auto &L : Info.LiveSlots) {
      if (!First)
        S += ", ";
      S += L.str();
      First = false;
    }
    for (unsigned R = 0; R != NumRegs; ++R)
      if (Info.RegMask & (1u << R)) {
        if (!First)
          S += ", ";
        S += "r" + std::to_string(R);
        First = false;
      }
    S += "}";
    for (const auto &D : Info.Derivs) {
      S += "  " + D.Target.str() + " = ";
      if (D.Ambiguous) {
        S += "<path " + D.PathVar.str() + ">{";
        for (size_t K = 0; K != D.Alts.size(); ++K) {
          if (K)
            S += " | ";
          S += std::to_string(D.Alts[K].PathValue) + ": ";
          for (const auto &B : D.Alts[K].Bases)
            S += (B.Coeff >= 0 ? "+" : "-") + B.Loc.str();
          S += "+E";
        }
        S += "}";
      } else {
        for (const auto &B : D.Bases)
          S += (B.Coeff >= 0 ? "+" : "-") + B.Loc.str();
        S += "+E";
      }
    }
    S += "\n";
  }
  return S;
}
