//===- codegen/Emit.h - Machine code and gc-table emission ------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers an IR function to machine instructions and, at every gc-point,
/// records the raw table data (live tidy pointer locations, register mask,
/// derivation records) that the gcmaps encoders turn into the compile-time
/// tables.  Also implements the optional CISC addressing-mode fold, whose
/// gc-safety restriction (§4's indirect references / §6.2's measurement)
/// preserves intermediate pointer references in registers or slots instead
/// of folding them into memory operands.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_CODEGEN_EMIT_H
#define MGC_CODEGEN_EMIT_H

#include "codegen/Machine.h"
#include "gcmaps/GcTables.h"
#include "gcmaps/SiteTable.h"
#include "gcsafety/GcSafety.h"
#include "ir/IR.h"

namespace mgc {
namespace codegen {

struct EmitOptions {
  /// Emit gc tables and honor gc restrictions.  (Code is identical either
  /// way except where the CISC fold is blocked — §6.2's result.)
  bool GcSafe = true;
  /// Fold single-use loads into memory operands of the consuming
  /// instruction (VAX-style addressing).
  bool CiscFold = false;
};

/// One allocation instruction's raw site data, before the driver
/// deduplicates sites program-wide.
struct RawAllocSite {
  uint32_t LocalPC = 0; ///< Function-local index of the NewObj/NewArr.
  uint32_t Line = 0;    ///< Source position of the NEW (0 = synthesized).
  uint32_t Col = 0;
  uint32_t Desc = 0;    ///< Heap type descriptor index.
};

struct EmitResult {
  /// Function-local code; Jump/Branch targets are local instruction
  /// indices, rebased by the linker.
  std::vector<vm::MInstr> Code;
  vm::CompiledFunction Meta;
  /// Raw gc tables; RetPCs are local instruction indices.
  gcmaps::FuncTableData Tables;
  /// One entry per emitted NewObj/NewArr, in code order; the driver turns
  /// these into the program-wide allocation-site table.
  std::vector<RawAllocSite> AllocSites;
  unsigned CiscFoldsApplied = 0;
  unsigned CiscFoldsBlocked = 0;
};

/// Emits \p F.  May mutate \p F (register allocation adds spill slots).
EmitResult emitFunction(ir::Function &F,
                        const gcsafety::GcSafetyInfo &Safety,
                        const EmitOptions &Opts);

} // namespace codegen
} // namespace mgc

#endif // MGC_CODEGEN_EMIT_H
