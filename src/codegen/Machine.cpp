//===- codegen/Machine.cpp ------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/Machine.h"

using namespace mgc;
using namespace mgc::vm;

std::string Location::str() const {
  switch (K) {
  case Kind::Reg:
    return "r" + std::to_string(Index);
  case Kind::FpSlot:
    return "FP+" + std::to_string(Index);
  case Kind::ApSlot:
    return "AP+" + std::to_string(Index);
  case Kind::None:
    break;
  }
  return "<none>";
}
