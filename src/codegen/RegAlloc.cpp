//===- codegen/RegAlloc.cpp -----------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/RegAlloc.h"

#include "analysis/Derivations.h"
#include "analysis/Liveness.h"

#include <algorithm>
#include <cassert>

using namespace mgc;
using namespace mgc::codegen;
using namespace mgc::ir;
using namespace mgc::vm;

namespace {
struct Interval {
  VReg R = NoVReg;
  int Start = -1;
  int End = -1;
};
} // namespace

Assignment codegen::allocateRegisters(Function &F) {
  Assignment Out;
  Out.LocOf.assign(F.VRegs.size(), Location());

  // Parameters live in their AP slots for the function's lifetime; the
  // preference for stack homes over registers follows the paper's §4
  // base-selection heuristic and keeps VAR parameters updatable in place.
  for (unsigned I = 0; I != F.numParams(); ++I)
    Out.LocOf[I] = Location::apSlot(static_cast<int>(I));

  // Linear positions: blocks in id order, two positions per instruction so
  // def-after-use at the same instruction orders correctly.
  analysis::DerivationAnalysis DA(F);
  auto Extra = DA.computeExtraUses();
  analysis::Liveness LV(F, &Extra);

  std::vector<Interval> Intervals(F.VRegs.size());
  for (size_t R = 0; R != F.VRegs.size(); ++R)
    Intervals[R].R = static_cast<VReg>(R);

  int Pos = 0;
  std::vector<int> BlockStart(F.Blocks.size(), 0);
  for (const auto &BB : F.Blocks) {
    BlockStart[BB->Id] = Pos;
    Pos += 2 * static_cast<int>(BB->Instrs.size()) + 2;
  }

  auto Touch = [&](VReg R, int P) {
    Interval &IV = Intervals[static_cast<size_t>(R)];
    if (IV.Start < 0 || P < IV.Start)
      IV.Start = P;
    if (P > IV.End)
      IV.End = P;
  };

  for (const auto &BB : F.Blocks) {
    int Base = BlockStart[BB->Id];
    // Live-in and live-out extend intervals across the block boundary.
    LV.liveIn(BB->Id).forEach([&](size_t R) { Touch(static_cast<VReg>(R), Base); });
    LV.liveOut(BB->Id).forEach([&](size_t R) {
      Touch(static_cast<VReg>(R),
            Base + 2 * static_cast<int>(BB->Instrs.size()) + 1);
    });
    // Walk instructions, extending intervals at uses/defs and at every
    // point a vreg is live (loop liveness makes ranges conservative).
    LV.visitBlock(BB->Id, [&](unsigned Index, const DynBitset &After,
                              const DynBitset &Before) {
      int P = Base + 2 * static_cast<int>(Index);
      Before.forEach([&](size_t R) { Touch(static_cast<VReg>(R), P); });
      After.forEach([&](size_t R) { Touch(static_cast<VReg>(R), P + 1); });
      const Instr &I = BB->Instrs[Index];
      if (I.Dst != NoVReg)
        Touch(I.Dst, P + 1);
      std::vector<VReg> Uses;
      I.collectUses(Uses);
      for (VReg R : Uses)
        Touch(R, P);
    });
  }

  // Linear scan.
  std::vector<Interval> Sorted;
  for (const Interval &IV : Intervals)
    if (IV.Start >= 0 && static_cast<unsigned>(IV.R) >= F.numParams())
      Sorted.push_back(IV);
  std::sort(Sorted.begin(), Sorted.end(), [](const Interval &A,
                                             const Interval &B) {
    return A.Start < B.Start || (A.Start == B.Start && A.R < B.R);
  });

  std::vector<Interval> Active; // Sorted by End.
  std::vector<bool> RegBusy(NumAllocatableRegs, false);
  std::vector<bool> RegEverUsed(NumAllocatableRegs, false);

  auto SpillToSlot = [&](VReg R) {
    SlotInfo SI;
    SI.Name = "spill." + std::to_string(R);
    SI.SizeWords = 1;
    SI.IsSpill = true;
    if (F.kindOf(R) == PtrKind::Tidy) {
      SI.IsPtrScalar = true;
      SI.PtrOffsets.push_back(0);
    }
    int Slot = F.newSlot(std::move(SI));
    Out.LocOf[static_cast<size_t>(R)] =
        Location::fpSlot(Slot); // Encoded as a slot id; Emit resolves the
                                // actual FP word offset.
  };

  for (const Interval &Cur : Sorted) {
    // Expire finished intervals.
    for (size_t I = Active.size(); I-- > 0;)
      if (Active[I].End < Cur.Start) {
        int Reg = Out.LocOf[static_cast<size_t>(Active[I].R)].Index;
        RegBusy[static_cast<size_t>(Reg)] = false;
        Active.erase(Active.begin() + static_cast<long>(I));
      }

    int FreeReg = -1;
    for (unsigned R = 0; R != NumAllocatableRegs; ++R)
      if (!RegBusy[R]) {
        FreeReg = static_cast<int>(R);
        break;
      }

    if (FreeReg >= 0) {
      Out.LocOf[static_cast<size_t>(Cur.R)] = Location::reg(FreeReg);
      RegBusy[static_cast<size_t>(FreeReg)] = true;
      RegEverUsed[static_cast<size_t>(FreeReg)] = true;
      Active.push_back(Cur);
      std::sort(Active.begin(), Active.end(),
                [](const Interval &A, const Interval &B) {
                  return A.End < B.End;
                });
      continue;
    }

    // All registers busy: spill the interval that ends last.
    Interval &Victim = Active.back();
    if (Victim.End > Cur.End) {
      Location VictimLoc = Out.LocOf[static_cast<size_t>(Victim.R)];
      SpillToSlot(Victim.R);
      Out.LocOf[static_cast<size_t>(Cur.R)] = VictimLoc;
      Active.back() = Cur;
      std::sort(Active.begin(), Active.end(),
                [](const Interval &A, const Interval &B) {
                  return A.End < B.End;
                });
    } else {
      SpillToSlot(Cur.R);
    }
  }

  for (unsigned R = 0; R != NumAllocatableRegs; ++R)
    if (RegEverUsed[R])
      Out.UsedRegs.push_back(static_cast<uint8_t>(R));
  return Out;
}
