//===- codegen/Machine.h - VAX-like target machine --------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target machine: a register machine in the VAX mould, chosen because
/// the paper's implementation targets a VAX and several of its problems
/// (register reconstruction from save areas, FP/AP-relative ground-table
/// entries, indirect references through memory operands) only arise on such
/// a machine.
///
///   - 16 registers; r0..r11 are allocatable and callee-saved, r15 carries
///     return values across calls (never live at a gc-point).
///   - Instructions take general operands: register, frame slot
///     (FP-relative), argument slot (AP-relative), immediate, global word,
///     or memory through a register/slot base with displacement — the
///     CISC addressing that makes §4's indirect-reference problem real.
///   - Frames: AP → incoming args (in the caller's outgoing area); a
///     3-word control area (saved AP, saved FP, return PC); FP → the
///     callee-save area, then local/spill slots, then the outgoing args.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_CODEGEN_MACHINE_H
#define MGC_CODEGEN_MACHINE_H

#include "ir/IR.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mgc {
namespace vm {

constexpr unsigned NumRegs = 16;
constexpr unsigned NumAllocatableRegs = 12;
constexpr unsigned RetValReg = 15;
/// Words of control information pushed by a call (saved AP, saved FP,
/// return PC).
constexpr unsigned CtlWords = 3;

enum class MOp : uint8_t {
  Mov,
  Add, Sub, Mul, Div, Mod, Neg, Not,
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  AddrSlot,   ///< D = FP-slot address + Disp-in-Imm bytes
  AddrGlobal, ///< D = global word address + Disp-in-Imm bytes
  NewObj,     ///< D = allocate(desc Index); gc-point
  NewArr,     ///< D = allocate(desc Index, len A); gc-point
  Call,       ///< call Funcs[Index]; args at outgoing slots; gc-point
  CallRt,     ///< runtime intrinsic Index; gc-point only for GcCollect
  GcPoll,     ///< gc-point
  WriteBarrier, ///< generational barrier: record slot A + Imm-in-B if old→young
  Jump, Branch, Ret, Trap,
};

/// A general machine operand.
struct MOperand {
  enum class Kind : uint8_t {
    None,
    Reg,      ///< R[Reg]
    Slot,     ///< stack[FP + Index]
    ASlot,    ///< stack[AP + Index]
    Global,   ///< globals[Index]
    Imm,      ///< Imm
    MemReg,   ///< mem[R[Reg] + Disp]
    MemSlot,  ///< mem[stack[FP + Index] + Disp]  (memory indirect)
    MemASlot, ///< mem[stack[AP + Index] + Disp]
  };
  Kind K = Kind::None;
  int Reg = -1;
  int Index = -1;
  int64_t Imm = 0;
  int64_t Disp = 0;

  static MOperand none() { return MOperand(); }
  static MOperand reg(int R) {
    MOperand O;
    O.K = Kind::Reg;
    O.Reg = R;
    return O;
  }
  static MOperand slot(int S) {
    MOperand O;
    O.K = Kind::Slot;
    O.Index = S;
    return O;
  }
  static MOperand aslot(int S) {
    MOperand O;
    O.K = Kind::ASlot;
    O.Index = S;
    return O;
  }
  static MOperand global(int W) {
    MOperand O;
    O.K = Kind::Global;
    O.Index = W;
    return O;
  }
  static MOperand imm(int64_t V) {
    MOperand O;
    O.K = Kind::Imm;
    O.Imm = V;
    return O;
  }
  static MOperand memReg(int R, int64_t D) {
    MOperand O;
    O.K = Kind::MemReg;
    O.Reg = R;
    O.Disp = D;
    return O;
  }
  static MOperand memSlot(int S, int64_t D) {
    MOperand O;
    O.K = Kind::MemSlot;
    O.Index = S;
    O.Disp = D;
    return O;
  }
  static MOperand memASlot(int S, int64_t D) {
    MOperand O;
    O.K = Kind::MemASlot;
    O.Index = S;
    O.Disp = D;
    return O;
  }

  bool isNone() const { return K == Kind::None; }
  bool isMem() const {
    return K == Kind::MemReg || K == Kind::MemSlot || K == Kind::MemASlot;
  }
};

/// Sentinel allocation-site id: the instruction has no attribution (set
/// only before the driver links the site table, or on hand-built code).
constexpr uint32_t NoAllocSite = 0xFFFFFFFFu;

struct MInstr {
  MOp Op;
  MOperand D, A, B;
  int Index = -1;          ///< Callee / descriptor / intrinsic / trap code.
  uint32_t Target0 = 0, Target1 = 0; ///< Global instruction indices.
  /// NewObj/NewArr: allocation-site id into Program::SiteTab, assigned by
  /// the driver from the decoded site table.  Carried in the in-memory
  /// instruction only; the byte image excludes it (the encoded site table
  /// accounts for the full cost of site attribution).
  uint32_t Site = NoAllocSite;
  uint16_t ArgBase = 0;    ///< Call/CallRt: first outgoing arg slot.
  uint16_t NArgs = 0;
  /// §5.3 interprocedural refinement: the callee can never trigger a
  /// collection, so this call is not a gc-point.
  bool NoGcCallee = false;

  bool isGcPoint() const {
    switch (Op) {
    case MOp::NewObj:
    case MOp::NewArr:
    case MOp::GcPoll:
      return true;
    case MOp::Call:
      return !NoGcCallee;
    case MOp::CallRt:
      return Index == static_cast<int>(ir::RtFn::GcCollect);
    default:
      return false;
    }
  }
};

/// Where a virtual register lives for its entire lifetime.
struct Location {
  enum class Kind : uint8_t { None, Reg, FpSlot, ApSlot };
  Kind K = Kind::None;
  int Index = -1; ///< Register number or word offset from FP/AP.

  static Location reg(int R) { return {Kind::Reg, R}; }
  static Location fpSlot(int S) { return {Kind::FpSlot, S}; }
  static Location apSlot(int S) { return {Kind::ApSlot, S}; }
  bool operator==(const Location &O) const {
    return K == O.K && Index == O.Index;
  }
  bool operator<(const Location &O) const {
    return std::tie(K, Index) < std::tie(O.K, O.Index);
  }
  std::string str() const;
};

/// Metadata for one compiled function.
struct CompiledFunction {
  std::string Name;
  uint32_t EntryIndex = 0; ///< First instruction in the flat code array.
  uint32_t NumInstrs = 0;
  uint32_t FrameWords = 0; ///< Save area + slots + outgoing args.
  uint16_t NumParams = 0;
  bool HasRet = false;
  /// Registers saved in the prologue (to FP+0 .. FP+n-1, in this order).
  std::vector<uint8_t> SavedRegs;
};

} // namespace vm
} // namespace mgc

#endif // MGC_CODEGEN_MACHINE_H
