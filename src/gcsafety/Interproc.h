//===- gcsafety/Interproc.h - Interprocedural gc-point elision --*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.3's future-work refinement: "If the compiler performs
/// inter-procedural analysis then it can determine that some procedures
/// never allocate any heap storage and thus calls to them need not be
/// gc-points."
///
/// A function *may trigger* a collection if it contains an allocation, an
/// explicit GcCollect, or a loop poll — or calls a function that may.
/// Calls to non-triggering functions are demoted from gc-points: no tables
/// are emitted for them and the collector will never see their return
/// addresses on the stack (a collection cannot start while such a callee
/// is active).  Run after loop-poll insertion, before path variables.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_GCSAFETY_INTERPROC_H
#define MGC_GCSAFETY_INTERPROC_H

#include "ir/IR.h"

#include <vector>

namespace mgc {
namespace gcsafety {

/// Per-function may-trigger-collection bits, computed to a fixpoint over
/// the call graph (recursion-safe: the analysis only ever *sets* bits).
std::vector<bool> computeMayTriggerGc(const ir::IRModule &M);

/// Demotes calls to non-triggering callees (sets Instr::NoGcCallee).
/// Returns the number of calls demoted.
unsigned elideNonTriggeringGcPoints(ir::IRModule &M);

} // namespace gcsafety
} // namespace mgc

#endif // MGC_GCSAFETY_INTERPROC_H
