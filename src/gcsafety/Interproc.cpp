//===- gcsafety/Interproc.cpp ---------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "gcsafety/Interproc.h"

using namespace mgc;
using namespace mgc::gcsafety;
using namespace mgc::ir;

std::vector<bool> gcsafety::computeMayTriggerGc(const IRModule &M) {
  size_t N = M.Functions.size();
  std::vector<bool> Triggers(N, false);

  // Seed with local triggers: allocations, explicit collections, and loop
  // polls (a pre-empted thread blocks there during a collection, so the
  // caller's frame must be walkable).
  for (size_t F = 0; F != N; ++F)
    for (const auto &BB : M.Functions[F]->Blocks)
      for (const Instr &I : BB->Instrs) {
        bool Local = I.Op == Opcode::New || I.Op == Opcode::NewArray ||
                     I.Op == Opcode::GcPoll ||
                     (I.Op == Opcode::CallRt && I.Rt == RtFn::GcCollect);
        if (Local)
          Triggers[F] = true;
      }

  // Propagate over the call graph to a fixpoint (cycles simply keep their
  // seeded values: a recursive function with no allocation anywhere in the
  // cycle never triggers).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t F = 0; F != N; ++F) {
      if (Triggers[F])
        continue;
      for (const auto &BB : M.Functions[F]->Blocks)
        for (const Instr &I : BB->Instrs)
          if (I.Op == Opcode::Call &&
              Triggers[static_cast<size_t>(I.Index)]) {
            Triggers[F] = true;
            Changed = true;
          }
    }
  }
  return Triggers;
}

unsigned gcsafety::elideNonTriggeringGcPoints(IRModule &M) {
  std::vector<bool> Triggers = computeMayTriggerGc(M);
  unsigned Demoted = 0;
  for (auto &F : M.Functions)
    for (auto &BB : F->Blocks)
      for (Instr &I : BB->Instrs)
        if (I.Op == Opcode::Call &&
            !Triggers[static_cast<size_t>(I.Index)] && !I.NoGcCallee) {
          I.NoGcCallee = true;
          ++Demoted;
        }
  return Demoted;
}
