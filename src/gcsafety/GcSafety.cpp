//===- gcsafety/GcSafety.cpp ----------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "gcsafety/GcSafety.h"

#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "support/DynBitset.h"

#include <algorithm>
#include <cassert>

using namespace mgc;
using namespace mgc::gcsafety;
using namespace mgc::ir;
using namespace mgc::analysis;

//===----------------------------------------------------------------------===//
// Loop polls (§5.3)
//===----------------------------------------------------------------------===//

namespace {
/// Iterative dominator sets over blocks (bitset formulation; functions are
/// small).
std::vector<DynBitset> computeDominators(const Function &F) {
  size_t N = F.Blocks.size();
  std::vector<DynBitset> Dom(N, DynBitset(N));
  DynBitset All(N);
  for (size_t I = 0; I != N; ++I)
    All.set(I);
  for (size_t I = 0; I != N; ++I)
    Dom[I] = All;
  Dom[0] = DynBitset(N);
  Dom[0].set(0);
  auto Preds = F.predecessors();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B : F.reversePostOrder()) {
      if (B == 0)
        continue;
      DynBitset New = All;
      bool Any = false;
      for (unsigned P : Preds[B]) {
        if (!Any) {
          New = Dom[P];
          Any = true;
        } else {
          // Intersection.
          DynBitset Tmp(N);
          New.forEach([&](size_t I) {
            if (Dom[P].test(I))
              Tmp.set(I);
          });
          New = Tmp;
        }
      }
      if (!Any)
        New = DynBitset(N);
      New.set(B);
      if (!(New == Dom[B])) {
        Dom[B] = std::move(New);
        Changed = true;
      }
    }
  }
  return Dom;
}

bool blockHasGcPoint(const BasicBlock &BB) {
  for (const Instr &I : BB.Instrs)
    if (I.isGcPoint())
      return true;
  return false;
}
} // namespace

unsigned gcsafety::insertLoopPolls(Function &F) {
  unsigned Inserted = 0;
  bool Restart = true;
  while (Restart) {
    Restart = false;
    LoopInfo LI(F);
    std::vector<DynBitset> Dom = computeDominators(F);
    for (const Loop &L : LI.loops()) {
      // A loop has a *guaranteed* gc-point if some block containing one
      // dominates every latch: every trip around the loop passes it.
      bool Guaranteed = false;
      L.Blocks.forEach([&](size_t B) {
        if (Guaranteed || !blockHasGcPoint(*F.Blocks[B]))
          return;
        bool DominatesAll = true;
        for (unsigned Latch : L.Latches)
          if (!Dom[Latch].test(B))
            DominatesAll = false;
        if (DominatesAll)
          Guaranteed = true;
      });
      if (Guaranteed)
        continue;
      // The header executes on every iteration; poll there.
      Instr Poll;
      Poll.Op = Opcode::GcPoll;
      BasicBlock &Header = *F.Blocks[L.Header];
      Header.Instrs.insert(Header.Instrs.begin(), Poll);
      ++Inserted;
      Restart = true; // Loop info indices may shift; recompute.
      break;
    }
  }
  return Inserted;
}

//===----------------------------------------------------------------------===//
// Write barriers (generational mode)
//===----------------------------------------------------------------------===//

unsigned gcsafety::insertWriteBarriers(Function &F) {
  unsigned Inserted = 0;
  for (const auto &BB : F.Blocks) {
    for (size_t I = 0; I != BB->Instrs.size(); ++I) {
      const Instr &Ins = BB->Instrs[I];
      if (Ins.Op != Opcode::Store)
        continue;
      // Only stores that can create a heap→heap edge need a barrier: the
      // stored value must be a tidy pointer and the address must possibly
      // point into the heap.  Frame/global stores are collector roots.
      if (!Ins.B.isReg() || F.kindOf(Ins.B.R) != PtrKind::Tidy)
        continue;
      PtrKind AK = Ins.A.isReg() ? F.kindOf(Ins.A.R) : PtrKind::NonPtr;
      if (AK != PtrKind::Tidy && AK != PtrKind::Derived &&
          AK != PtrKind::IncomingAddr)
        continue;
      BB->Instrs.insert(BB->Instrs.begin() + I + 1,
                        Instr::writeBarrier(Ins.A.R, Ins.Disp));
      ++Inserted;
      ++I; // Skip the barrier just inserted.
    }
  }
  return Inserted;
}

//===----------------------------------------------------------------------===//
// Path variables (§4)
//===----------------------------------------------------------------------===//

GcSafetyInfo gcsafety::assignPathVariables(Function &F) {
  GcSafetyInfo Info;

  DerivationAnalysis DA(F);
  auto Extra = DA.computeExtraUses();
  Liveness LV(F, &Extra);

  // Find derived vregs whose state is ambiguous at some gc-point where they
  // are live.
  std::vector<VReg> Needy;
  for (const auto &BB : F.Blocks) {
    DerivMap State = DA.blockIn(BB->Id);
    for (unsigned I = 0; I != BB->Instrs.size(); ++I) {
      const Instr &Ins = BB->Instrs[I];
      if (Ins.isGcPoint()) {
        DynBitset Live = LV.liveBefore(BB->Id, I);
        for (const auto &[R, S] : State) {
          if (S.K != DerivState::Kind::Ambiguous)
            continue;
          if (!Live.test(static_cast<size_t>(R)))
            continue;
          if (Info.PathVars.count(R) ||
              std::find(Needy.begin(), Needy.end(), R) != Needy.end())
            continue;
          Needy.push_back(R);
        }
      }
      DerivationAnalysis::transfer(F, Ins, State);
    }
  }

  if (Needy.empty())
    return Info;

  // Gather every definition of each needy vreg, with the derivation state
  // it produces and the vreg it was derived/copied from.
  struct DefSite {
    unsigned Block;
    unsigned Index;
    DerivState Post;
    VReg Source = NoVReg; ///< Operand A when it is a vreg.
  };
  std::map<VReg, std::vector<DefSite>> Defs;
  for (const auto &BB : F.Blocks) {
    DerivMap State = DA.blockIn(BB->Id);
    for (unsigned I = 0; I != BB->Instrs.size(); ++I) {
      const Instr &Ins = BB->Instrs[I];
      DerivationAnalysis::transfer(F, Ins, State);
      if (Ins.Dst == NoVReg || F.kindOf(Ins.Dst) != PtrKind::Derived)
        continue;
      DefSite D;
      D.Block = BB->Id;
      D.Index = I;
      D.Post = State[Ins.Dst];
      if (Ins.A.isReg())
        D.Source = Ins.A.R;
      Defs[Ins.Dst].push_back(std::move(D));
    }
  }

  // Transitive closure: a needy vreg whose ambiguity is inherited from a
  // source vreg needs that source's path variable, even when the source
  // itself is never live at a gc-point (e.g. the hoisted merge value a
  // strength-reduced pointer was based on).
  for (size_t K = 0; K != Needy.size(); ++K)
    for (const DefSite &D : Defs[Needy[K]])
      if (D.Post.K == DerivState::Kind::Ambiguous && D.Source != NoVReg &&
          D.Source != Needy[K] &&
          F.kindOf(D.Source) == PtrKind::Derived &&
          std::find(Needy.begin(), Needy.end(), D.Source) == Needy.end())
        Needy.push_back(D.Source);

  // Resolve each needy vreg.  A vreg whose every definition yields a
  // *single* derivation gets its own path variable: a fresh slot assigned
  // a distinct constant after each definition.  A vreg whose definitions
  // inherit an ambiguous state from another vreg (e.g. a strength-reduced
  // pointer based on an ambiguous merge) *shares* that vreg's path
  /// variable: the same runtime constant discriminates both.
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (VReg R : Needy) {
      if (Info.PathVars.count(R))
        continue;
      auto &DS = Defs[R];
      bool AllSingle = true;
      for (const DefSite &D : DS)
        if (D.Post.K != DerivState::Kind::Single)
          AllSingle = false;

      if (AllSingle) {
        PathVarInfo PV;
        SlotInfo SI;
        SI.Name = "pathvar." + std::to_string(R);
        SI.SizeWords = 1;
        PV.Slot = F.newSlot(std::move(SI));
        for (const DefSite &D : DS) {
          int32_t Value = static_cast<int32_t>(PV.Values.size());
          PV.Values.emplace_back(D.Post.D, Value);
        }
        Info.PathVars[R] = std::move(PV);
        Progress = true;
        continue;
      }

      // Try to inherit from a source vreg that is already resolved and
      // whose value mapping covers every alternative of every definition.
      VReg Donor = NoVReg;
      for (const DefSite &D : DS)
        if (D.Source != NoVReg && D.Source != R &&
            Info.PathVars.count(D.Source))
          Donor = D.Source;
      if (Donor == NoVReg)
        continue;
      const PathVarInfo &DonorPV = Info.PathVars[Donor];
      auto Covered = [&](const Derivation &D) {
        for (const auto &[Known, Value] : DonorPV.Values)
          if (Known == D)
            return true;
        return false;
      };
      bool Ok = true;
      for (const DefSite &D : DS) {
        if (D.Post.K == DerivState::Kind::Single)
          Ok &= Covered(D.Post.D);
        else
          for (const Derivation &Alt : D.Post.Alts)
            Ok &= Covered(Alt);
      }
      if (!Ok)
        continue;
      Info.PathVars[R] = DonorPV; // Shared slot and value mapping.
      Progress = true;
    }
  }

  for (VReg R : Needy)
    assert(Info.PathVars.count(R) &&
           "unresolvable ambiguous derivation (no path variable strategy)");

  // Insert `StoreSlot pathSlot, #k` after every all-single definition site
  // (inherited path variables need no stores: the donor's constant already
  // discriminates).
  std::map<unsigned, std::vector<std::pair<unsigned, Instr>>> InsertionsByBB;
  for (VReg R : Needy) {
    auto &DS = Defs[R];
    bool AllSingle = true;
    for (const DefSite &D : DS)
      if (D.Post.K != DerivState::Kind::Single)
        AllSingle = false;
    if (!AllSingle)
      continue;
    const PathVarInfo &PV = Info.PathVars[R];
    for (size_t K = 0; K != DS.size(); ++K)
      InsertionsByBB[DS[K].Block].emplace_back(
          DS[K].Index + 1,
          Instr::storeSlot(PV.Slot,
                           Operand::imm(PV.Values[K].second)));
  }
  for (auto &[BBId, Insertions] : InsertionsByBB) {
    std::sort(Insertions.begin(), Insertions.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    BasicBlock &BB = *F.Blocks[BBId];
    for (size_t K = Insertions.size(); K-- > 0;) {
      BB.Instrs.insert(BB.Instrs.begin() + Insertions[K].first,
                       Insertions[K].second);
      ++Info.PathAssignsInserted;
    }
  }
  return Info;
}
