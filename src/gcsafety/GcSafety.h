//===- gcsafety/GcSafety.h - GC-point selection and safety ------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gc-safety phase of the compiler (§4, §5.3):
///
///  - insertLoopPolls: in threaded mode, a loop without a *guaranteed*
///    gc-point (one executed on every iteration regardless of path) gets a
///    GcPoll in its header, so a pre-empted thread reaches a gc-point in
///    bounded time.
///  - assignPathVariables: every derived value with multiple reaching
///    derivations live at a gc-point receives a path variable — a frame
///    slot assigned a distinct constant after each contributing definition;
///    the collector consults it to select the right derivations table.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_GCSAFETY_GCSAFETY_H
#define MGC_GCSAFETY_GCSAFETY_H

#include "analysis/Derivations.h"
#include "ir/IR.h"

#include <map>
#include <vector>

namespace mgc {
namespace gcsafety {

/// Inserts GcPoll instructions per §5.3.  Returns the number inserted.
unsigned insertLoopPolls(ir::Function &F);

/// Generational mode: inserts a WriteBarrier after every Store of a tidy
/// pointer through a possibly-heap address (Tidy/Derived/IncomingAddr
/// base; frame addresses are roots and need no barrier).  Runs after
/// optimization so barriers sit adjacent to the final stores; the barrier
/// is not a gc-point and its base-register use is visible to liveness, so
/// gc-maps at neighbouring points stay correct.  Returns the number
/// inserted.
unsigned insertWriteBarriers(ir::Function &F);

/// Path-variable assignment results for one function.
struct PathVarInfo {
  int Slot = -1; ///< Frame slot holding the path constant.
  /// Derivation reached after each contributing definition, with the
  /// constant stored on that path.
  std::vector<std::pair<analysis::Derivation, int32_t>> Values;
};

struct GcSafetyInfo {
  std::map<ir::VReg, PathVarInfo> PathVars;
  unsigned PathAssignsInserted = 0;
};

/// Detects ambiguously derived values live at gc-points and materializes
/// path variables for them (§4).  Mutates \p F (new slots, StoreSlot
/// instructions after each contributing definition).
GcSafetyInfo assignPathVariables(ir::Function &F);

} // namespace gcsafety
} // namespace mgc

#endif // MGC_GCSAFETY_GCSAFETY_H
