//===- workload/Server.cpp - Server-workload request harness --------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "workload/Server.h"

#include "fuzz/Rng.h"
#include "obs/Trace.h"

#include <algorithm>
#include <chrono>

using namespace mgc;
using namespace mgc::workload;

//===----------------------------------------------------------------------===//
// Program generation
//===----------------------------------------------------------------------===//

std::string workload::generateServerProgram(const ServerProgramConfig &C) {
  // Per-seed workload constants: request-size spread, session-cache
  // geometry, and churn period.  Drawn from the shared splitmix stream so
  // distinct seeds give visibly different allocation graphs while equal
  // seeds reproduce the program byte for byte.
  fuzz::Rng R(C.Seed * 0x9e3779b97f4a7c15ULL + 1);
  const long Mult = 2 * R.range(1, 3) + 1;   // 3, 5, or 7
  const long Spread = R.range(5, 11);        // list length spread
  const long Slots = R.range(8, 32);         // session-cache slots
  const long Churn = R.range(3, 6);          // evict every Nth request

  std::string S;
  S += "MODULE Srv;\n";
  S += "TYPE\n";
  S += "  Cell = REF CellRec;\n";
  S += "  CellRec = RECORD v: INTEGER; next: Cell END;\n";
  S += "  Sess = REF ARRAY OF Cell;\n";
  S += "VAR\n";
  S += "  sess: Sess;\n";
  S += "  sink, r, n: INTEGER;\n";
  S += "  done: BOOLEAN;\n";
  S += "\n";
  S += "PROCEDURE BuildReq(n: INTEGER): Cell;\n";
  S += "VAR l, c: Cell; i: INTEGER;\n";
  S += "BEGIN\n";
  S += "  l := NIL;\n";
  S += "  FOR i := 1 TO n DO\n";
  S += "    c := NEW(Cell);\n";
  S += "    c^.v := i;\n";
  S += "    c^.next := l;\n";
  S += "    l := c\n";
  S += "  END;\n";
  S += "  RETURN l\n";
  S += "END BuildReq;\n";
  S += "\n";
  S += "PROCEDURE SumReq(l: Cell): INTEGER;\n";
  S += "VAR s: INTEGER;\n";
  S += "BEGIN\n";
  S += "  s := 0;\n";
  S += "  WHILE l # NIL DO\n";
  S += "    s := (s + l^.v) MOD 1000000007;\n";
  S += "    l := l^.next\n";
  S += "  END;\n";
  S += "  RETURN s\n";
  S += "END SumReq;\n";
  if (C.Spin) {
    S += "\n";
    S += "PROCEDURE Spin();\n";
    S += "VAR i: INTEGER;\n";
    S += "BEGIN\n";
    S += "  i := 0;\n";
    S += "  WHILE NOT done DO INC(i) END\n";
    S += "END Spin;\n";
  }
  S += "\n";
  S += "BEGIN\n";
  S += "  done := FALSE;\n";
  S += "  sink := 0;\n";
  S += "  sess := NEW(Sess, " + std::to_string(Slots) + ");\n";
  S += "  FOR r := 1 TO " + std::to_string(C.Requests) + " DO\n";
  S += "    n := 3 + ((r * " + std::to_string(Mult) + ") MOD " +
       std::to_string(Spread) + ");\n";
  S += "    sess[r MOD " + std::to_string(Slots) + "] := BuildReq(n);\n";
  S += "    sink := (sink + SumReq(sess[r MOD " + std::to_string(Slots) +
       "])) MOD 1000000007;\n";
  S += "    IF r MOD " + std::to_string(Churn) + " = 0 THEN\n";
  S += "      sess[(r * 7) MOD " + std::to_string(Slots) + "] := NIL\n";
  S += "    END;\n";
  S += "    ReqDone()\n";
  S += "  END;\n";
  S += "  done := TRUE;\n";
  S += "  PutInt(sink); PutLn()\n";
  S += "END Srv.\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Arrival schedules
//===----------------------------------------------------------------------===//

std::vector<uint64_t> workload::arrivalSchedule(const ScheduleConfig &C,
                                                size_t N) {
  std::vector<uint64_t> A;
  A.reserve(N);
  fuzz::Rng R(C.Seed * 0x2545f4914f6cdd1dULL + 7);
  const uint64_t Mean = std::max<uint64_t>(C.MeanGapInstrs, 1);
  uint64_t T = 0;
  if (C.Kind == ArrivalKind::Uniform) {
    // Jitter uniformly in [Mean/2, 3*Mean/2] — mean preserved.
    for (size_t I = 0; I != N; ++I) {
      uint64_t Lo = Mean / 2;
      T += Lo + static_cast<uint64_t>(
                    R.range(0, static_cast<long>(Mean - Lo + Mean / 2)));
      A.push_back(T);
    }
  } else {
    // Bursts of BurstLen back-to-back arrivals separated by idle gaps
    // sized so the long-run mean gap still equals Mean.
    const unsigned Len = std::max(1u, C.BurstLen);
    const uint64_t IdleGap = Mean * Len;
    for (size_t I = 0; I != N; ++I) {
      if (I != 0 && I % Len == 0)
        T += IdleGap / 2 +
             static_cast<uint64_t>(R.range(0, static_cast<long>(IdleGap)));
      A.push_back(T);
    }
  }
  return A;
}

uint64_t workload::percentile(std::vector<uint64_t> V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t I = static_cast<size_t>(P * static_cast<double>(V.size() - 1) + 0.5);
  return V[std::min(I, V.size() - 1)];
}

//===----------------------------------------------------------------------===//
// Running
//===----------------------------------------------------------------------===//

ServerRunResult workload::runServer(const vm::Program &Prog,
                                    const ServerRunConfig &Config) {
  using Clock = std::chrono::steady_clock;
  ServerRunResult R;

  vm::VM M(Prog, Config.VO);
  gc::installPreciseCollector(M, Config.GCO);

  if (Config.SpinThreads) {
    unsigned SpinFunc = 0;
    bool Found = false;
    for (unsigned I = 0; I != Prog.Funcs.size(); ++I)
      if (Prog.Funcs[I].Name == "Spin") {
        SpinFunc = I;
        Found = true;
      }
    if (!Found) {
      R.Error = "server program has no Spin() procedure to spawn";
      return R;
    }
    for (unsigned I = 0; I != Config.SpinThreads; ++I)
      M.spawnThread(SpinFunc);
  }

  // The tracer supplies the GC attribution ground truth: per-event
  // TotalNanos accumulated via PostGcHook (exact regardless of the event
  // ring's capacity), and per-request aggregation via recordRequest.
  obs::TracerConfig TC;
  TC.ProgramName = "server";
  TC.Seed = Config.Sched.Seed;
  obs::Tracer Tr(TC);
  Tr.enable(nullptr);
  M.Tracer = &Tr;

  std::unique_ptr<obs::Profiler> Prof;
  if (Config.Profile) {
    obs::ProfilerConfig PC;
    PC.IntervalInstrs = Config.ProfileInterval;
    PC.UseMapIndex = Config.GCO.UseMapIndex;
    PC.Seed = Config.Sched.Seed;
    Prof = std::make_unique<obs::Profiler>(Prog, PC);
    M.Profiler = Prof.get();
  }
  M.PostGcHook = [&](vm::VM &) {
    if (const obs::GcEvent *Ev = Tr.lastCommitted())
      R.TracerGcNanosTotal += Ev->TotalNanos;
  };
  M.RequestHook = [&](vm::VM &, const vm::VM::ReqSample &Smp) {
    R.ServiceInstrs.push_back(Smp.Instrs);
    R.GcNanos.push_back(Smp.GcNanos);
    R.Collections.push_back(Smp.Collections);
  };

  Clock::time_point T0 = Clock::now();
  bool Ok = M.run();
  R.WallNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - T0)
          .count());
  R.Out = M.Out;
  R.Stats = M.Stats;
  if (Prof) {
    Prof->finish(Ok, M.Error, M.Stats.Instrs);
    R.Prof = Prof->buildProfile();
    R.HasProf = true;
  }
  R.HeapGrowths = M.TheHeap.HeapGrowths;
  R.NurseryResizes = M.TheHeap.NurseryResizes;
  R.FinalHeapBytes = M.TheHeap.capacityBytes();
  if (!Ok) {
    R.Error = M.Error;
    return R;
  }
  R.Ok = true;

  uint64_t AttributedGc = 0;
  for (uint64_t G : R.GcNanos)
    AttributedGc += G;
  R.UnattributedGcNanos = R.TracerGcNanosTotal > AttributedGc
                              ? R.TracerGcNanosTotal - AttributedGc
                              : 0;

  // Open-loop queueing overlay in virtual time: seeded arrivals, FIFO
  // service at the measured per-request cost.
  const size_t N = R.ServiceInstrs.size();
  std::vector<uint64_t> Arrivals = arrivalSchedule(Config.Sched, N);
  R.LatencyInstrs.reserve(N);
  uint64_t Completion = 0;
  for (size_t I = 0; I != N; ++I) {
    uint64_t Start = std::max(Arrivals[I], Completion);
    Completion = Start + R.ServiceInstrs[I];
    R.LatencyInstrs.push_back(Completion - Arrivals[I]);
  }

  // Wall-time conversion: ns/instr from the run's mutator span, plus the
  // request's own GC nanos on top of its virtual latency.
  const uint64_t MutatorNanos = R.WallNanos > R.TracerGcNanosTotal
                                    ? R.WallNanos - R.TracerGcNanosTotal
                                    : 0;
  const double NsPerInstr =
      R.Stats.Instrs ? static_cast<double>(MutatorNanos) /
                           static_cast<double>(R.Stats.Instrs)
                     : 0.0;
  std::vector<uint64_t> LatNs;
  LatNs.reserve(N);
  for (size_t I = 0; I != N; ++I)
    LatNs.push_back(static_cast<uint64_t>(
                        static_cast<double>(R.LatencyInstrs[I]) * NsPerInstr) +
                    R.GcNanos[I]);
  R.LatP50Ns = percentile(LatNs, 0.50);
  R.LatP99Ns = percentile(LatNs, 0.99);
  R.LatMaxNs = percentile(LatNs, 1.0);
  R.LatP50Instr = percentile(R.LatencyInstrs, 0.50);
  R.LatP99Instr = percentile(R.LatencyInstrs, 0.99);
  R.LatMaxInstr = percentile(R.LatencyInstrs, 1.0);

  if (R.WallNanos) {
    R.Rps = static_cast<double>(N) * 1e9 / static_cast<double>(R.WallNanos);
    R.Utilization = 1.0 - static_cast<double>(R.TracerGcNanosTotal) /
                              static_cast<double>(R.WallNanos);
    if (R.Utilization < 0)
      R.Utilization = 0;
  }
  return R;
}
