//===- workload/Server.h - Server-workload request harness ------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic server-workload harness: generates MG "server" programs
/// (a request loop over per-request allocation graphs feeding a session
/// cache with old-to-young churn, each iteration ending in a ReqDone()
/// marker), runs them to steady state, and derives per-request latency
/// percentiles with GC pause attribution.
///
/// Determinism contract: request *service* cost is measured in virtual
/// time — instructions retired between consecutive ReqDone markers — so
/// the same seed yields bit-identical service samples on any host, any
/// dispatch tier, and any --gc-threads level.  Queueing latency is an
/// open-loop overlay in the same virtual clock: arrivals come from a
/// seeded schedule (uniform or bursty gaps, in instructions), requests
/// are served FIFO, and latency_i = completion_i - arrival_i.  Wall-time
/// figures (requests/sec, nanosecond latency, mutator utilization) are
/// derived afterwards from the run's measured ns/instruction and the
/// tracer's per-collection nanos; they are reported, never gated.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_WORKLOAD_SERVER_H
#define MGC_WORKLOAD_SERVER_H

#include "gc/Collector.h"
#include "obs/Profile.h"
#include "vm/VM.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mgc {
namespace workload {

//===----------------------------------------------------------------------===//
// Server program generation
//===----------------------------------------------------------------------===//

/// Shape of a generated MG server program.  Every field is folded into
/// the emitted source, so equal configs produce byte-identical programs.
struct ServerProgramConfig {
  uint64_t Seed = 1;      ///< Drives the per-seed workload constants.
  unsigned Requests = 400; ///< Request-loop iterations (ReqDone markers).
  bool Spin = false;       ///< Emit a Spin() proc for mutator threads.
};

/// Renders the MG source of a server program: BuildReq/SumReq over a
/// linked-cell request graph, a session-cache array holding survivors
/// across requests (old-to-young churn under the generational collector),
/// and a main request loop calling ReqDone() per iteration.  With
/// \p Config.Spin, a poll-carrying Spin() procedure is included for
/// spawning allocation-free mutator threads (compile with ThreadedPolls).
std::string generateServerProgram(const ServerProgramConfig &Config);

//===----------------------------------------------------------------------===//
// Arrival schedules
//===----------------------------------------------------------------------===//

enum class ArrivalKind {
  Uniform, ///< Seeded jitter around a fixed mean gap.
  Bursty,  ///< Alternating back-to-back bursts and long idle gaps.
};

struct ScheduleConfig {
  ArrivalKind Kind = ArrivalKind::Uniform;
  uint64_t Seed = 1;
  uint64_t MeanGapInstrs = 2000; ///< Mean inter-arrival gap, instructions.
  unsigned BurstLen = 8;         ///< Requests per burst (Bursty only).
};

/// Produces \p N arrival times (virtual instructions since run start),
/// monotone nondecreasing, fully determined by \p Config.
std::vector<uint64_t> arrivalSchedule(const ScheduleConfig &Config, size_t N);

/// Nearest-rank percentile over a copy of \p V (same index formula as the
/// tracer's pause percentiles): index = P * (n - 1) + 0.5, clamped.
uint64_t percentile(std::vector<uint64_t> V, double P);

//===----------------------------------------------------------------------===//
// Running a server program
//===----------------------------------------------------------------------===//

struct ServerRunConfig {
  vm::VMOptions VO;             ///< Heap/dispatch/policy knobs.
  gc::CollectorOptions GCO;     ///< --gc-threads / crosscheck.
  ScheduleConfig Sched;         ///< Arrival overlay.
  unsigned SpinThreads = 0;     ///< Extra threads running Spin().
  /// Attach the sampling profiler (obs/Profile.h) for the run: per-request
  /// sample/alloc attribution lands in ServerRunResult::Prof alongside the
  /// latency percentiles, tying hot stacks to request cost.
  bool Profile = false;
  uint64_t ProfileInterval = 4096; ///< Instructions between samples.
};

/// Everything one server run produces.  The per-request vectors are
/// positionally parallel (index = request sequence - 1).
struct ServerRunResult {
  bool Ok = false;
  std::string Error;
  std::string Out;
  vm::VMStats Stats;

  // Deterministic virtual-time samples.
  std::vector<uint64_t> ServiceInstrs; ///< Instrs between ReqDone markers.
  std::vector<uint64_t> GcNanos;       ///< GC nanos attributed per request.
  std::vector<uint64_t> Collections;   ///< Collections within the request.
  std::vector<uint64_t> LatencyInstrs; ///< Queueing-overlay latency.

  // GC attribution cross-check material.
  uint64_t TracerGcNanosTotal = 0;  ///< Sum of per-event TotalNanos.
  uint64_t UnattributedGcNanos = 0; ///< Tail GC work after the last marker.

  // Heap-sizing policy outcomes.
  uint64_t HeapGrowths = 0;     ///< Semispace doublings taken.
  uint64_t NurseryResizes = 0;  ///< Nursery half resizes taken.
  uint64_t FinalHeapBytes = 0;  ///< Semispace capacity at exit.

  // Wall-time derived figures (reported, never gated).
  uint64_t WallNanos = 0;
  double Rps = 0.0;         ///< Requests per wall second.
  double Utilization = 0.0; ///< 1 - gc_nanos / wall_nanos.
  uint64_t LatP50Ns = 0, LatP99Ns = 0, LatMaxNs = 0;
  uint64_t LatP50Instr = 0, LatP99Instr = 0, LatMaxInstr = 0;

  /// Sampling profile of the run (ServerRunConfig::Profile); per-request
  /// rows align with the service samples by sequence number.
  bool HasProf = false;
  obs::Profile Prof;
};

/// Runs \p Prog (a compiled server program) to completion under
/// \p Config: installs the precise collector, spawns the requested spin
/// threads, records one sample per ReqDone via VM::RequestHook, overlays
/// the seeded arrival schedule, and fills every ServerRunResult field.
ServerRunResult runServer(const vm::Program &Prog,
                          const ServerRunConfig &Config);

} // namespace workload
} // namespace mgc

#endif // MGC_WORKLOAD_SERVER_H
