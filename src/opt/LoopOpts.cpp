//===- opt/LoopOpts.cpp - LICM, strength reduction, virtual origins -------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "analysis/Loops.h"

#include <map>
#include <vector>

using namespace mgc;
using namespace mgc::ir;
using namespace mgc::analysis;

namespace {
/// Number of defining instructions per vreg across the whole function.
std::vector<unsigned> countDefs(const Function &F) {
  std::vector<unsigned> Defs(F.VRegs.size(), 0);
  // Parameters are defined on entry.
  for (unsigned I = 0; I != F.numParams(); ++I)
    ++Defs[I];
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Dst != NoVReg)
        ++Defs[static_cast<size_t>(I.Dst)];
  return Defs;
}

/// Vregs with at least one definition inside the loop.
DynBitset defsInLoop(const Function &F, const Loop &L) {
  DynBitset Set(F.VRegs.size());
  L.Blocks.forEach([&](size_t B) {
    for (const Instr &I : F.Blocks[B]->Instrs)
      if (I.Dst != NoVReg)
        Set.set(static_cast<size_t>(I.Dst));
  });
  return Set;
}

bool operandInvariant(const Operand &O, const DynBitset &LoopDefs) {
  return !O.isReg() || !LoopDefs.test(static_cast<size_t>(O.R));
}
} // namespace

//===----------------------------------------------------------------------===//
// Loop-invariant code motion
//===----------------------------------------------------------------------===//

bool opt::hoistLoopInvariants(Function &F) {
  bool Changed = false;
  // Recompute loop info after each change to keep things simple; loops are
  // few and functions small.
  bool Restart = true;
  while (Restart) {
    Restart = false;
    LoopInfo LI(F);
    std::vector<unsigned> Defs = countDefs(F);
    for (const Loop &L : LI.loops()) {
      DynBitset LoopDefs = defsInLoop(F, L);
      // Collect hoistable instructions: pure, single-def dst, invariant
      // operands.  Hoisting is speculative (pure ops cannot trap), matching
      // the aggressive motion gcc performs on address computations.
      std::vector<std::pair<unsigned, unsigned>> Hoist; // (block, index)
      L.Blocks.forEach([&](size_t B) {
        const BasicBlock &BB = *F.Blocks[B];
        for (unsigned I = 0; I != BB.Instrs.size(); ++I) {
          const Instr &Ins = BB.Instrs[I];
          if (!Ins.isPure() || Ins.Dst == NoVReg)
            continue;
          if (Defs[static_cast<size_t>(Ins.Dst)] != 1)
            continue;
          if (!operandInvariant(Ins.A, LoopDefs) ||
              !operandInvariant(Ins.B, LoopDefs))
            continue;
          Hoist.emplace_back(static_cast<unsigned>(B), I);
        }
      });
      if (Hoist.empty())
        continue;
      unsigned Pre = ensurePreheader(F, L);
      BasicBlock &PreBB = *F.Blocks[Pre];
      // Move in block order; preserve relative order for dependent chains.
      // (A hoisted instr's operands are defined outside the loop, which
      // includes previously hoisted instrs once they sit in the preheader;
      // iteration to fixpoint handles chains.)
      unsigned InsertAt = static_cast<unsigned>(PreBB.Instrs.size()) - 1;
      for (size_t K = Hoist.size(); K-- > 0;) {
        auto [B, I] = Hoist[K];
        BasicBlock &BB = *F.Blocks[B];
        PreBB.Instrs.insert(PreBB.Instrs.begin() + InsertAt,
                            BB.Instrs[I]);
        BB.Instrs.erase(BB.Instrs.begin() + I);
      }
      Changed = true;
      Restart = true;
      break; // Loop structures changed; recompute.
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Virtual array origin
//===----------------------------------------------------------------------===//

bool opt::rewriteVirtualOrigins(Function &F) {
  bool Changed = false;
  for (auto &BB : F.Blocks) {
    // Single-def-in-block map for pattern matching.
    std::map<VReg, int> DefIdx;
    std::map<VReg, unsigned> DefCount;
    for (unsigned I = 0; I != BB->Instrs.size(); ++I) {
      VReg D = BB->Instrs[I].Dst;
      if (D != NoVReg) {
        DefIdx[D] = static_cast<int>(I);
        ++DefCount[D];
      }
    }
    for (unsigned I = 0; I != BB->Instrs.size(); ++I) {
      Instr &DA = BB->Instrs[I];
      // Pattern: a = DeriveAdd base, off
      //          off = Mul rel, s        (earlier in block, single def)
      //          rel = Sub i, lo         (earlier in block, single def)
      // Rewrite: vb = DeriveSub base, lo*s ; off2 = Mul i, s
      //          a  = DeriveAdd vb, off2
      if (DA.Op != Opcode::DeriveAdd || !DA.B.isReg())
        continue;
      VReg Off = DA.B.R;
      auto OffIt = DefIdx.find(Off);
      if (OffIt == DefIdx.end() || DefCount[Off] != 1 ||
          OffIt->second >= static_cast<int>(I))
        continue;
      Instr &MulI = BB->Instrs[OffIt->second];
      if (MulI.Op != Opcode::Mul || !MulI.A.isReg() || !MulI.B.isImm())
        continue;
      VReg Rel = MulI.A.R;
      auto RelIt = DefIdx.find(Rel);
      if (RelIt == DefIdx.end() || DefCount[Rel] != 1 ||
          RelIt->second >= OffIt->second)
        continue;
      Instr &SubI = BB->Instrs[RelIt->second];
      if (SubI.Op != Opcode::Sub || !SubI.A.isReg() || !SubI.B.isImm() ||
          SubI.B.Imm == 0)
        continue;
      int64_t Stride = MulI.B.Imm;
      int64_t Lo = SubI.B.Imm;
      VReg Base = DA.A.R;
      VReg Idx = SubI.A.R;

      VReg VB = F.newVReg(PtrKind::Derived, "", false);
      VReg Off2 = F.newVReg(PtrKind::NonPtr, "", false);
      Instr VBI = Instr::bin(Opcode::DeriveSub, VB, Operand::reg(Base),
                             Operand::imm(Lo * Stride));
      Instr Mul2 = Instr::bin(Opcode::Mul, Off2, Operand::reg(Idx),
                              Operand::imm(Stride));
      DA.A = Operand::reg(VB);
      DA.B = Operand::reg(Off2);
      // Insert the two new instructions just before the DeriveAdd.
      BB->Instrs.insert(BB->Instrs.begin() + I, {VBI, Mul2});
      Changed = true;
      // Indices moved; rebuild the def maps for this block.
      DefIdx.clear();
      DefCount.clear();
      for (unsigned K = 0; K != BB->Instrs.size(); ++K) {
        VReg D = BB->Instrs[K].Dst;
        if (D != NoVReg) {
          DefIdx[D] = static_cast<int>(K);
          ++DefCount[D];
        }
      }
      I += 2; // Skip past the rewritten DeriveAdd.
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Strength reduction
//===----------------------------------------------------------------------===//

bool opt::reduceStrength(Function &F) {
  bool Changed = false;
  LoopInfo LI(F);
  std::vector<unsigned> Defs = countDefs(F);

  for (const Loop &L : LI.loops()) {
    DynBitset LoopDefs = defsInLoop(F, L);

    // Find basic induction variables: i with exactly two defs, the one
    // inside the loop being `i = Add i, c`.
    struct IV {
      VReg R;
      int64_t Step;
      unsigned UpdateBlock;
      unsigned UpdateIndex;
    };
    std::vector<IV> IVs;
    L.Blocks.forEach([&](size_t B) {
      const BasicBlock &BB = *F.Blocks[B];
      for (unsigned I = 0; I != BB.Instrs.size(); ++I) {
        const Instr &Ins = BB.Instrs[I];
        if (Ins.Op == Opcode::Add && Ins.Dst != NoVReg && Ins.A.isReg() &&
            Ins.A.R == Ins.Dst && Ins.B.isImm() &&
            Defs[static_cast<size_t>(Ins.Dst)] == 2)
          IVs.push_back({Ins.Dst, Ins.B.Imm, static_cast<unsigned>(B), I});
      }
    });
    // A basic IV's *other* definition (its initialization) must lie outside
    // the loop: an inner-loop index viewed from an enclosing loop has both
    // definitions inside and is re-initialized every outer iteration — a
    // reduced pointer could not track that.
    std::erase_if(IVs, [&](const IV &Iv) {
      unsigned DefsInLoop = 0;
      L.Blocks.forEach([&](size_t B) {
        for (const Instr &Ins : F.Blocks[B]->Instrs)
          if (Ins.Dst == Iv.R)
            ++DefsInLoop;
      });
      return DefsInLoop != 1;
    });
    if (IVs.empty())
      continue;

    for (const IV &Iv : IVs) {
      // Find `off = Mul iv, s` + `a = DeriveAdd base, off` in the loop with
      // an invariant base.
      struct Candidate {
        unsigned MulBlock, MulIndex;
        unsigned AddBlock, AddIndex;
        VReg Base;
        int64_t Stride;
      };
      std::vector<Candidate> Cands;
      L.Blocks.forEach([&](size_t B) {
        const BasicBlock &BB = *F.Blocks[B];
        for (unsigned I = 0; I != BB.Instrs.size(); ++I) {
          const Instr &MulI = BB.Instrs[I];
          if (MulI.Op != Opcode::Mul || !MulI.A.isReg() ||
              MulI.A.R != Iv.R || !MulI.B.isImm() || MulI.Dst == NoVReg)
            continue;
          if (Defs[static_cast<size_t>(MulI.Dst)] != 1)
            continue;
          // Locate the unique DeriveAdd consumer in the same block.
          for (unsigned K = I + 1; K != BB.Instrs.size(); ++K) {
            const Instr &AddI = BB.Instrs[K];
            if (AddI.Op == Opcode::DeriveAdd && AddI.B.isReg() &&
                AddI.B.R == MulI.Dst && AddI.A.isReg() &&
                !LoopDefs.test(static_cast<size_t>(AddI.A.R)) &&
                AddI.Dst != NoVReg &&
                Defs[static_cast<size_t>(AddI.Dst)] == 1) {
              Cands.push_back({static_cast<unsigned>(B), I,
                               static_cast<unsigned>(B), K, AddI.A.R,
                               MulI.B.Imm});
              break;
            }
          }
        }
      });
      if (Cands.empty())
        continue;

      unsigned Pre = ensurePreheader(F, L);
      // Process one candidate per invocation: insertions shift indices, and
      // the pipeline reruns the pass to a fixpoint anyway.
      Cands.resize(1);
      for (const Candidate &C : Cands) {
        // Preheader: off0 = Mul iv, s ; p = DeriveAdd base, off0.
        VReg Off0 = F.newVReg(PtrKind::NonPtr);
        VReg P = F.newVReg(PtrKind::Derived, "sr");
        BasicBlock &PreBB = *F.Blocks[Pre];
        auto InsertPos = PreBB.Instrs.end() - 1;
        InsertPos = PreBB.Instrs.insert(
            InsertPos, Instr::bin(Opcode::Mul, Off0, Operand::reg(Iv.R),
                                  Operand::imm(C.Stride)));
        PreBB.Instrs.insert(InsertPos + 1,
                            Instr::bin(Opcode::DeriveAdd, P,
                                       Operand::reg(C.Base),
                                       Operand::reg(Off0)));
        // After the IV update: p = DeriveAdd p, step*s.
        BasicBlock &UpBB = *F.Blocks[Iv.UpdateBlock];
        UpBB.Instrs.insert(UpBB.Instrs.begin() + Iv.UpdateIndex + 1,
                           Instr::bin(Opcode::DeriveAdd, P, Operand::reg(P),
                                      Operand::imm(Iv.Step * C.Stride)));
        // Replace the address computation with the reduced pointer.  The
        // p-update insertion above shifts indices in the same block.
        unsigned AddIndex = C.AddIndex;
        if (C.AddBlock == Iv.UpdateBlock && C.AddIndex > Iv.UpdateIndex)
          ++AddIndex;
        Instr &AddI = F.Blocks[C.AddBlock]->Instrs[AddIndex];
        AddI = Instr::mov(AddI.Dst, Operand::reg(P));
        Changed = true;
      }
      // Defs changed; handle one IV per loop per invocation for simplicity.
      break;
    }
    if (Changed)
      break; // Loop info stale; caller reruns the pass pipeline.
  }
  return Changed;
}
