//===- opt/Diamond.cpp - Cross-jumping, diamond hoisting, unswitching -----===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three transformations around control-flow diamonds.  Their composition
/// with LICM reproduces §4's ambiguous-derivation scenario: cross-jumping
/// merges the two arms' address uses into one vreg fed by per-arm copies,
/// and diamond hoisting then lifts the invariant diamond out of the loop,
/// leaving a derived value with two possible derivations live across every
/// gc-point in the loop.  unswitchLoops is the Figure 2 alternative that
/// duplicates the loop instead.
///
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "analysis/Loops.h"

#include <map>
#include <optional>

using namespace mgc;
using namespace mgc::ir;
using namespace mgc::analysis;

namespace {

std::vector<unsigned> countDefs(const Function &F) {
  std::vector<unsigned> Defs(F.VRegs.size(), 0);
  for (unsigned I = 0; I != F.numParams(); ++I)
    ++Defs[I];
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Dst != NoVReg)
        ++Defs[static_cast<size_t>(I.Dst)];
  return Defs;
}

/// A diamond: D branches to distinct arms A1/A2 (single blocks whose only
/// predecessor is D), both of which jump to the same join J.
struct Diamond {
  unsigned D, A1, A2, J;
};

std::optional<Diamond> matchDiamond(const Function &F,
                                    const std::vector<std::vector<unsigned>> &Preds,
                                    unsigned D) {
  const BasicBlock &BB = *F.Blocks[D];
  if (!BB.hasTerminator() || BB.terminator().Op != Opcode::Branch)
    return std::nullopt;
  unsigned A1 = BB.terminator().Target0;
  unsigned A2 = BB.terminator().Target1;
  if (A1 == A2 || A1 == D || A2 == D)
    return std::nullopt;
  for (unsigned A : {A1, A2}) {
    if (Preds[A].size() != 1 || Preds[A][0] != D)
      return std::nullopt;
    const BasicBlock &Arm = *F.Blocks[A];
    if (!Arm.hasTerminator() || Arm.terminator().Op != Opcode::Jump)
      return std::nullopt;
  }
  unsigned J1 = F.Blocks[A1]->terminator().Target0;
  unsigned J2 = F.Blocks[A2]->terminator().Target0;
  if (J1 != J2 || J1 == A1 || J1 == A2)
    return std::nullopt;
  return Diamond{D, A1, A2, J1};
}

/// Merged-vreg kind for a pair of operands flowing into one vreg.
PtrKind unifyKinds(const Function &F, const Operand &O1, const Operand &O2) {
  auto KindOf = [&](const Operand &O) {
    return O.isReg() ? F.kindOf(O.R) : PtrKind::NonPtr;
  };
  PtrKind K1 = KindOf(O1), K2 = KindOf(O2);
  if (K1 == K2)
    return K1;
  // Mixed pointer provenance: the merged value needs derivation tracking.
  return PtrKind::Derived;
}

} // namespace

//===----------------------------------------------------------------------===//
// Cross-jumping (tail merging)
//===----------------------------------------------------------------------===//

bool opt::mergeDiamondTails(Function &F) {
  auto Preds = F.predecessors();
  std::vector<unsigned> Defs = countDefs(F);

  for (auto &DBB : F.Blocks) {
    auto DOpt = matchDiamond(F, Preds, DBB->Id);
    if (!DOpt)
      continue;
    Diamond Dia = *DOpt;
    // The join must be reached only through the two arms.
    if (Preds[Dia.J].size() != 2)
      continue;

    BasicBlock &Arm1 = *F.Blocks[Dia.A1];
    BasicBlock &Arm2 = *F.Blocks[Dia.A2];
    size_t Len = Arm1.Instrs.size();
    if (Len != Arm2.Instrs.size() || Len < 2)
      continue; // Terminator plus at least one instruction.

    // Attempt a structural match of the whole arms (minus terminators).
    // DstPairs maps (d1,d2) of matched defining instructions to a merged
    // vreg; ParamPairs maps mismatched *source* operands to a merged vreg
    // that each arm will initialize with a Mov.
    std::map<std::pair<VReg, VReg>, VReg> DstPairs;
    struct Param {
      Operand O1, O2;
      VReg M;
    };
    std::vector<Param> Params;
    bool Ok = true;
    std::vector<Instr> Merged;

    auto MatchOperand = [&](const Operand &O1, const Operand &O2,
                            bool AllowImm) -> std::optional<Operand> {
      if (O1.isNone() && O2.isNone())
        return Operand();
      if (O1.isNone() || O2.isNone())
        return std::nullopt;
      if (O1 == O2) {
        if (O1.isReg()) {
          // A matched dst rename shadows the raw register.
          for (const auto &[Pair, M] : DstPairs)
            if (Pair.first == O1.R && Pair.second == O1.R)
              return Operand::reg(M);
        }
        return O1;
      }
      if (O1.isReg() && O2.isReg()) {
        auto It = DstPairs.find({O1.R, O2.R});
        if (It != DstPairs.end())
          return Operand::reg(It->second);
      }
      if (!AllowImm && (O1.isImm() || O2.isImm()))
        return std::nullopt;
      // Parameterize the mismatch.
      for (const Param &P : Params)
        if (P.O1 == O1 && P.O2 == O2)
          return Operand::reg(P.M);
      VReg M = F.newVReg(unifyKinds(F, O1, O2), "merge");
      Params.push_back({O1, O2, M});
      return Operand::reg(M);
    };

    for (size_t I = 0; Ok && I + 1 < Len; ++I) {
      const Instr &I1 = Arm1.Instrs[I];
      const Instr &I2 = Arm2.Instrs[I];
      if (I1.Op != I2.Op || I1.Disp != I2.Disp || I1.Index != I2.Index ||
          I1.Rt != I2.Rt || I1.Args.size() != I2.Args.size() ||
          (I1.Dst == NoVReg) != (I2.Dst == NoVReg)) {
        Ok = false;
        break;
      }
      Instr NewI = I1;
      auto MA = MatchOperand(I1.A, I2.A, /*AllowImm=*/true);
      auto MB = MatchOperand(I1.B, I2.B, /*AllowImm=*/true);
      if (!MA || !MB) {
        Ok = false;
        break;
      }
      NewI.A = *MA;
      NewI.B = *MB;
      for (size_t K = 0; Ok && K != I1.Args.size(); ++K) {
        auto MArg = MatchOperand(I1.Args[K], I2.Args[K], /*AllowImm=*/true);
        if (!MArg) {
          Ok = false;
          break;
        }
        NewI.Args[K] = *MArg;
      }
      if (!Ok)
        break;
      if (I1.Dst != NoVReg) {
        if (I1.Dst == I2.Dst) {
          // Same dst on both paths: moving the def to the join is safe
          // only if these are its sole definitions.
          if (Defs[static_cast<size_t>(I1.Dst)] != 2) {
            Ok = false;
            break;
          }
          DstPairs[{I1.Dst, I2.Dst}] = I1.Dst;
        } else {
          if (Defs[static_cast<size_t>(I1.Dst)] != 1 ||
              Defs[static_cast<size_t>(I2.Dst)] != 1) {
            Ok = false;
            break;
          }
          VReg M = F.newVReg(unifyKinds(F, Operand::reg(I1.Dst),
                                        Operand::reg(I2.Dst)),
                             "merge");
          DstPairs[{I1.Dst, I2.Dst}] = M;
          NewI.Dst = M;
        }
      }
      Merged.push_back(std::move(NewI));
    }
    if (!Ok || Merged.empty())
      continue;
    // Skip degenerate merges where nothing was actually shared (identical
    // arms with zero instructions handled by Len check above).

    // Rewrite: arms keep only the parameter moves; the merged body moves to
    // the front of the join.
    unsigned JId = Dia.J;
    std::vector<Instr> NewArm1, NewArm2;
    for (const Param &P : Params) {
      NewArm1.push_back(Instr::mov(P.M, P.O1));
      NewArm2.push_back(Instr::mov(P.M, P.O2));
    }
    NewArm1.push_back(Instr::jump(JId));
    NewArm2.push_back(Instr::jump(JId));
    Arm1.Instrs = std::move(NewArm1);
    Arm2.Instrs = std::move(NewArm2);

    BasicBlock &Join = *F.Blocks[JId];
    Merged.insert(Merged.end(),
                  std::make_move_iterator(Join.Instrs.begin()),
                  std::make_move_iterator(Join.Instrs.end()));
    Join.Instrs = std::move(Merged);

    // Rewrite external uses of renamed dsts to the merged vreg.
    for (auto &BB : F.Blocks)
      for (Instr &I : BB->Instrs)
        for (const auto &[Pair, M] : DstPairs) {
          if (Pair.first != M)
            I.replaceUses(Pair.first, M);
          if (Pair.second != M)
            I.replaceUses(Pair.second, M);
        }
    return true; // One diamond per invocation; the pipeline iterates.
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Invariant diamond hoisting
//===----------------------------------------------------------------------===//

bool opt::hoistInvariantDiamonds(Function &F) {
  LoopInfo LI(F);
  for (const Loop &L : LI.loops()) {
    auto Preds = F.predecessors();
    std::optional<Diamond> Found;
    L.Blocks.forEach([&](size_t B) {
      if (Found)
        return;
      auto DOpt = matchDiamond(F, Preds, static_cast<unsigned>(B));
      if (!DOpt)
        return;
      if (!L.contains(DOpt->A1) || !L.contains(DOpt->A2) ||
          !L.contains(DOpt->J))
        return;
      Found = DOpt;
    });
    if (!Found)
      continue;
    Diamond Dia = *Found;

    // Loop-defined vregs, excluding definitions inside the diamond arms
    // (those move out with the diamond).
    DynBitset LoopDefs(F.VRegs.size());
    L.Blocks.forEach([&](size_t B) {
      if (B == Dia.A1 || B == Dia.A2)
        return;
      for (const Instr &I : F.Blocks[B]->Instrs)
        if (I.Dst != NoVReg)
          LoopDefs.set(static_cast<size_t>(I.Dst));
    });

    const Instr &Br = F.Blocks[Dia.D]->terminator();
    if (Br.A.isReg() && LoopDefs.test(static_cast<size_t>(Br.A.R)))
      continue; // Variant condition.

    bool ArmsInvariant = true;
    for (unsigned A : {Dia.A1, Dia.A2}) {
      const BasicBlock &Arm = *F.Blocks[A];
      for (size_t I = 0; I + 1 < Arm.Instrs.size(); ++I) {
        const Instr &Ins = Arm.Instrs[I];
        if (!Ins.isPure() || Ins.Dst == NoVReg ||
            (Ins.A.isReg() && LoopDefs.test(static_cast<size_t>(Ins.A.R))) ||
            (Ins.B.isReg() && LoopDefs.test(static_cast<size_t>(Ins.B.R)))) {
          ArmsInvariant = false;
          break;
        }
      }
    }
    if (!ArmsInvariant)
      continue;

    // Build the hoisted copy of the diamond ahead of the preheader's jump.
    unsigned Pre = ensurePreheader(F, L);
    BasicBlock *ND = F.newBlock();
    BasicBlock *NA1 = F.newBlock();
    BasicBlock *NA2 = F.newBlock();
    BasicBlock *NJ = F.newBlock();

    BasicBlock &PreBB = *F.Blocks[Pre];
    unsigned LoopEntry = PreBB.terminator().Target0;
    PreBB.Instrs.back() = Instr::jump(ND->Id);

    Instr NewBr = F.Blocks[Dia.D]->terminator();
    NewBr.Target0 = NA1->Id;
    NewBr.Target1 = NA2->Id;
    ND->Instrs.push_back(NewBr);

    auto MoveArm = [&](unsigned From, BasicBlock *To) {
      BasicBlock &Arm = *F.Blocks[From];
      for (size_t I = 0; I + 1 < Arm.Instrs.size(); ++I)
        To->Instrs.push_back(Arm.Instrs[I]);
      To->Instrs.push_back(Instr::jump(NJ->Id));
      Arm.Instrs.clear();
      Arm.Instrs.push_back(Instr::jump(Dia.J));
    };
    MoveArm(Dia.A1, NA1);
    MoveArm(Dia.A2, NA2);
    NJ->Instrs.push_back(Instr::jump(LoopEntry));

    // Inside the loop the diamond decision disappears.
    F.Blocks[Dia.D]->Instrs.back() = Instr::jump(Dia.J);

    F.removeUnreachableBlocks();
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Loop unswitching (path splitting, Figure 2)
//===----------------------------------------------------------------------===//

bool opt::unswitchLoops(Function &F) {
  LoopInfo LI(F);
  for (const Loop &L : LI.loops()) {
    DynBitset LoopDefs(F.VRegs.size());
    L.Blocks.forEach([&](size_t B) {
      for (const Instr &I : F.Blocks[B]->Instrs)
        if (I.Dst != NoVReg)
          LoopDefs.set(static_cast<size_t>(I.Dst));
    });

    // Find an invariant two-way branch fully inside the loop.
    int DId = -1;
    L.Blocks.forEach([&](size_t B) {
      if (DId >= 0)
        return;
      const BasicBlock &BB = *F.Blocks[B];
      if (!BB.hasTerminator() || BB.terminator().Op != Opcode::Branch)
        return;
      const Instr &Br = BB.terminator();
      if (Br.Target0 == Br.Target1)
        return;
      if (!L.contains(Br.Target0) || !L.contains(Br.Target1))
        return;
      if (Br.A.isReg() && LoopDefs.test(static_cast<size_t>(Br.A.R)))
        return;
      DId = static_cast<int>(B);
    });
    if (DId < 0)
      continue;

    unsigned Pre = ensurePreheader(F, L);
    Instr Cond = F.Blocks[DId]->terminator();

    // Clone every loop block; targets inside the loop are remapped.
    std::map<unsigned, unsigned> CloneOf;
    L.Blocks.forEach([&](size_t B) {
      BasicBlock *C = F.newBlock();
      CloneOf[static_cast<unsigned>(B)] = C->Id;
    });
    L.Blocks.forEach([&](size_t B) {
      BasicBlock *C = F.Blocks[CloneOf[static_cast<unsigned>(B)]].get();
      C->Instrs = F.Blocks[B]->Instrs;
      if (C->hasTerminator()) {
        Instr &T = C->Instrs.back();
        if (T.Op == Opcode::Jump || T.Op == Opcode::Branch) {
          auto It = CloneOf.find(T.Target0);
          if (It != CloneOf.end())
            T.Target0 = It->second;
          if (T.Op == Opcode::Branch) {
            auto It1 = CloneOf.find(T.Target1);
            if (It1 != CloneOf.end())
              T.Target1 = It1->second;
          }
        }
      }
    });

    // Resolve the branch: original loop takes the true arm, clone the
    // false arm.
    unsigned TrueArm = F.Blocks[DId]->terminator().Target0;
    unsigned FalseArmClone =
        CloneOf.count(Cond.Target1) ? CloneOf[Cond.Target1] : Cond.Target1;
    F.Blocks[DId]->Instrs.back() = Instr::jump(TrueArm);
    BasicBlock &CloneD = *F.Blocks[CloneOf[static_cast<unsigned>(DId)]];
    CloneD.Instrs.back() = Instr::jump(FalseArmClone);

    // Dispatch on the invariant condition ahead of the loop.
    BasicBlock *Dispatch = F.newBlock();
    BasicBlock &PreBB = *F.Blocks[Pre];
    unsigned Header = PreBB.terminator().Target0;
    PreBB.Instrs.back() = Instr::jump(Dispatch->Id);
    Instr Br;
    Br.Op = Opcode::Branch;
    Br.A = Cond.A;
    Br.Target0 = Header;
    Br.Target1 = CloneOf[Header];
    Dispatch->Instrs.push_back(Br);

    F.removeUnreachableBlocks();
    return true;
  }
  return false;
}
