//===- opt/Scalar.cpp - Constant folding, copy prop, CSE, DCE -------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "analysis/Derivations.h"
#include "analysis/Liveness.h"

#include <map>
#include <set>

using namespace mgc;
using namespace mgc::ir;

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

namespace {
bool foldBinary(Instr &I) {
  if (!I.A.isImm() || !I.B.isImm())
    return false;
  int64_t A = I.A.Imm, B = I.B.Imm, R;
  switch (I.Op) {
  case Opcode::Add: R = A + B; break;
  case Opcode::Sub: R = A - B; break;
  case Opcode::Mul: R = A * B; break;
  case Opcode::Div:
    if (B == 0)
      return false;
    R = A / B;
    break;
  case Opcode::Mod:
    if (B == 0)
      return false;
    R = A % B;
    break;
  case Opcode::CmpEq: R = A == B; break;
  case Opcode::CmpNe: R = A != B; break;
  case Opcode::CmpLt: R = A < B; break;
  case Opcode::CmpLe: R = A <= B; break;
  case Opcode::CmpGt: R = A > B; break;
  case Opcode::CmpGe: R = A >= B; break;
  default:
    return false;
  }
  I = Instr::mov(I.Dst, Operand::imm(R));
  return true;
}

bool foldAlgebraic(Instr &I) {
  switch (I.Op) {
  case Opcode::Add:
    if (I.B.isImm() && I.B.Imm == 0) {
      I = Instr::mov(I.Dst, I.A);
      return true;
    }
    if (I.A.isImm() && I.A.Imm == 0) {
      I = Instr::mov(I.Dst, I.B);
      return true;
    }
    return false;
  case Opcode::Sub:
    if (I.B.isImm() && I.B.Imm == 0) {
      I = Instr::mov(I.Dst, I.A);
      return true;
    }
    return false;
  case Opcode::Mul:
    if ((I.B.isImm() && I.B.Imm == 1)) {
      I = Instr::mov(I.Dst, I.A);
      return true;
    }
    if ((I.A.isImm() && I.A.Imm == 1)) {
      I = Instr::mov(I.Dst, I.B);
      return true;
    }
    if ((I.A.isImm() && I.A.Imm == 0) || (I.B.isImm() && I.B.Imm == 0)) {
      I = Instr::mov(I.Dst, Operand::imm(0));
      return true;
    }
    return false;
  case Opcode::DeriveAdd:
  case Opcode::DeriveSub:
    // base +- 0 is a plain copy (still a derived value).
    if (I.B.isImm() && I.B.Imm == 0) {
      I = Instr::mov(I.Dst, I.A);
      return true;
    }
    return false;
  default:
    return false;
  }
}
} // namespace

bool opt::foldConstants(Function &F) {
  bool Changed = false;
  for (auto &BB : F.Blocks) {
    for (Instr &I : BB->Instrs) {
      if (I.Dst != NoVReg && (foldBinary(I) || foldAlgebraic(I))) {
        Changed = true;
        continue;
      }
      if (I.Op == Opcode::Neg && I.A.isImm()) {
        I = Instr::mov(I.Dst, Operand::imm(-I.A.Imm));
        Changed = true;
      } else if (I.Op == Opcode::Not && I.A.isImm()) {
        I = Instr::mov(I.Dst, Operand::imm(I.A.Imm == 0 ? 1 : 0));
        Changed = true;
      } else if (I.Op == Opcode::Branch && I.A.isImm()) {
        unsigned Target = I.A.Imm != 0 ? I.Target0 : I.Target1;
        I = Instr::jump(Target);
        Changed = true;
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Local copy/constant propagation
//===----------------------------------------------------------------------===//

namespace {
/// Whether operand position \p IsAddressBase may hold an immediate.
bool substitutionAllowed(const Instr &I, const Operand &NewVal, bool IsA) {
  if (NewVal.isReg())
    return true;
  // Immediates may not appear as addresses or derive bases.
  switch (I.Op) {
  case Opcode::Load:
  case Opcode::Store:
  case Opcode::DeriveAdd:
  case Opcode::DeriveSub:
    return !IsA;
  case Opcode::DeriveDiff:
    return false;
  case Opcode::Branch:
    return true; // Folded later.
  default:
    return true;
  }
}
} // namespace

bool opt::propagateCopiesLocal(Function &F) {
  bool Changed = false;
  for (auto &BB : F.Blocks) {
    std::map<VReg, Operand> Env;
    auto Invalidate = [&](VReg R) {
      Env.erase(R);
      for (auto It = Env.begin(); It != Env.end();) {
        if (It->second.isReg() && It->second.R == R)
          It = Env.erase(It);
        else
          ++It;
      }
    };
    for (Instr &I : BB->Instrs) {
      auto Subst = [&](Operand &O, bool IsA) {
        if (!O.isReg())
          return;
        auto It = Env.find(O.R);
        if (It == Env.end())
          return;
        if (substitutionAllowed(I, It->second, IsA))
          if (!(It->second == O)) {
            O = It->second;
            Changed = true;
          }
      };
      Subst(I.A, true);
      Subst(I.B, false);
      for (Operand &O : I.Args)
        Subst(O, false);

      if (I.Dst != NoVReg)
        Invalidate(I.Dst);
      if (I.Op == Opcode::Mov && I.Dst != NoVReg &&
          !(I.A.isReg() && I.A.R == I.Dst))
        Env[I.Dst] = I.A;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Local CSE
//===----------------------------------------------------------------------===//

namespace {
struct ExprKey {
  Opcode Op;
  Operand A, B;
  int64_t Disp;
  int Index;

  bool operator<(const ExprKey &O) const {
    auto Tup = [](const ExprKey &K) {
      return std::tuple(static_cast<int>(K.Op), static_cast<int>(K.A.K),
                        K.A.R, K.A.Imm, static_cast<int>(K.B.K), K.B.R,
                        K.B.Imm, K.Disp, K.Index);
    };
    return Tup(*this) < Tup(O);
  }
};
} // namespace

bool opt::cseLocal(Function &F) {
  bool Changed = false;
  for (auto &BB : F.Blocks) {
    std::map<ExprKey, VReg> Table;
    for (Instr &I : BB->Instrs) {
      if (I.Dst != NoVReg) {
        // Drop expressions that used the redefined register (as operand or
        // result).
        for (auto It = Table.begin(); It != Table.end();) {
          const ExprKey &K = It->first;
          bool Uses = (K.A.isReg() && K.A.R == I.Dst) ||
                      (K.B.isReg() && K.B.R == I.Dst) ||
                      It->second == I.Dst;
          It = Uses ? Table.erase(It) : ++It;
        }
      }
      if (!I.isPure() || I.Dst == NoVReg || I.Op == Opcode::Mov)
        continue;
      ExprKey Key{I.Op, I.A, I.B, I.Disp, I.Index};
      auto It = Table.find(Key);
      if (It != Table.end()) {
        I = Instr::mov(I.Dst, Operand::reg(It->second));
        Changed = true;
      } else {
        Table[Key] = I.Dst;
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// CFG simplification
//===----------------------------------------------------------------------===//

bool opt::simplifyCFG(Function &F) {
  bool Changed = false;

  // Jump threading: a target block containing only `jump X` is bypassed.
  auto UltimateTarget = [&](unsigned T) {
    std::set<unsigned> Seen;
    while (Seen.insert(T).second) {
      const BasicBlock &BB = *F.Blocks[T];
      if (BB.Instrs.size() == 1 && BB.Instrs[0].Op == Opcode::Jump)
        T = BB.Instrs[0].Target0;
      else
        break;
    }
    return T;
  };
  for (auto &BB : F.Blocks) {
    if (!BB->hasTerminator())
      continue;
    Instr &T = BB->Instrs.back();
    if (T.Op == Opcode::Jump) {
      unsigned U = UltimateTarget(T.Target0);
      if (U != T.Target0) {
        T.Target0 = U;
        Changed = true;
      }
    } else if (T.Op == Opcode::Branch) {
      unsigned U0 = UltimateTarget(T.Target0);
      unsigned U1 = UltimateTarget(T.Target1);
      if (U0 != T.Target0 || U1 != T.Target1) {
        T.Target0 = U0;
        T.Target1 = U1;
        Changed = true;
      }
      if (U0 == U1) {
        T = Instr::jump(U0);
        Changed = true;
      }
    }
  }

  // Merge B -> S when B jumps to S and S has exactly one predecessor.
  auto Preds = F.predecessors();
  for (auto &BB : F.Blocks) {
    while (BB->hasTerminator() && BB->terminator().Op == Opcode::Jump) {
      unsigned S = BB->terminator().Target0;
      if (S == BB->Id || S == 0 || Preds[S].size() != 1)
        break;
      BasicBlock &Succ = *F.Blocks[S];
      if (&Succ == BB.get())
        break;
      BB->Instrs.pop_back();
      for (Instr &I : Succ.Instrs)
        BB->Instrs.push_back(std::move(I));
      Succ.Instrs.clear();
      Succ.Instrs.push_back(Instr::trap(TrapKind::MissingReturn));
      // Predecessor info for the moved successor edges now belongs to BB.
      Preds = F.predecessors();
      Changed = true;
    }
  }

  F.removeUnreachableBlocks();
  return Changed;
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

bool opt::eliminateDeadCode(Function &F) {
  bool Changed = false;
  bool LocalChange = true;
  while (LocalChange) {
    LocalChange = false;
    analysis::DerivationAnalysis DA(F);
    auto Extra = DA.computeExtraUses();
    analysis::Liveness LV(F, &Extra);
    for (auto &BB : F.Blocks) {
      std::vector<char> Dead(BB->Instrs.size(), 0);
      LV.visitBlock(BB->Id, [&](unsigned Index, const DynBitset &After,
                                const DynBitset &) {
        const Instr &I = BB->Instrs[Index];
        if (I.Dst == NoVReg || !I.isPure())
          return;
        if (!After.test(static_cast<size_t>(I.Dst)))
          Dead[Index] = 1;
      });
      for (size_t I = BB->Instrs.size(); I-- > 0;) {
        if (Dead[I]) {
          BB->Instrs.erase(BB->Instrs.begin() + static_cast<long>(I));
          LocalChange = true;
        }
      }
      // Also drop dead self-moves (mov %x, %x) even if live.
      for (size_t I = BB->Instrs.size(); I-- > 0;) {
        const Instr &Ins = BB->Instrs[I];
        if (Ins.Op == Opcode::Mov && Ins.A.isReg() && Ins.A.R == Ins.Dst) {
          BB->Instrs.erase(BB->Instrs.begin() + static_cast<long>(I));
          LocalChange = true;
        }
      }
    }
    Changed |= LocalChange;
  }
  return Changed;
}
