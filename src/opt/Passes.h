//===- opt/Passes.h - Optimization passes -----------------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization passes.  Each returns true when it changed the
/// function.  Together they reproduce the derived-value-creating
/// optimizations §2 of the paper lists:
///
///   - reduceStrength: array-walk loops become pointer increments
///     (`*p++ = 13`), leaving the original base possibly dead (§4's dead
///     base problem).
///   - rewriteVirtualOrigins: `base + (i-lo)*s` becomes
///     `(base - lo*s) + i*s`, a derived pointer that can point *outside*
///     its object.
///   - cseLocal: shares address subexpressions (`&A[i]` reused for
///     `A[i,j]` and `A[i,k]`).
///   - hoistLoopInvariants: speculatively hoists pure invariant
///     computations (including Derive*) to preheaders.
///   - mergeDiamondTails + hoistInvariantDiamonds: cross-jumping of
///     diamond arms and hoisting of invariant diamonds, which together
///     manufacture §4's *ambiguous derivations* (resolved later with path
///     variables).
///   - unswitchLoops: the alternative *path splitting* transformation of
///     Figure 2 — duplicates the loop so each copy sees one derivation.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_OPT_PASSES_H
#define MGC_OPT_PASSES_H

#include "ir/IR.h"

namespace mgc {
namespace opt {

/// Constant folding and trivial algebraic simplification.
bool foldConstants(ir::Function &F);

/// Block-local copy and constant propagation.
bool propagateCopiesLocal(ir::Function &F);

/// Block-local common subexpression elimination over pure instructions.
bool cseLocal(ir::Function &F);

/// Jump threading, merging of straight-line block pairs, unreachable-block
/// removal.
bool simplifyCFG(ir::Function &F);

/// Removes pure instructions whose results are dead.  Liveness includes the
/// dead-base extension so derivation bases are never dropped while a value
/// derived from them lives.
bool eliminateDeadCode(ir::Function &F);

/// Loop-invariant code motion of single-def pure instructions.
bool hoistLoopInvariants(ir::Function &F);

/// Classic strength reduction of `base + (i*s)` address computations on
/// basic induction variables.
bool reduceStrength(ir::Function &F);

/// The virtual array origin rewrite for non-zero lower bounds.
bool rewriteVirtualOrigins(ir::Function &F);

/// Cross-jumping: merges structurally identical diamond arms, introducing
/// merged vregs (and, for pointer operands, merged derived values).
bool mergeDiamondTails(ir::Function &F);

/// Hoists a fully invariant diamond (invariant condition, invariant pure
/// arms) out of its loop.  After mergeDiamondTails this leaves an
/// ambiguously derived value live across the loop.
bool hoistInvariantDiamonds(ir::Function &F);

/// Loop unswitching on an invariant branch: duplicates the loop per arm
/// (the paper's path-splitting alternative, Figure 2).
bool unswitchLoops(ir::Function &F);

} // namespace opt
} // namespace mgc

#endif // MGC_OPT_PASSES_H
