//===- gc/Snapshot.h - Heap snapshot capture and validation -----*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Captures precise heap snapshots (obs/HeapSnapshot.h) out of a live VM.
/// The capture re-runs the table-driven three-phase root walk the precise
/// collector uses — return-address lookup, gc-point decode, register
/// reconstruction from callee-save areas, ambiguous-derivation selection
/// through path variables — but keeps the *provenance* of every root
/// (thread, frame depth, function, slot kind and index) instead of just
/// the pointer, then breadth-first walks the object graph through the
/// heap type descriptors.  Capture is a rare, pause-time operation: it
/// always decodes through the reference decoder (gcmaps::decodeGcPoint)
/// and touches no collector state, so it cannot pollute the decoded-point
/// cache or the mutator hot path.
///
/// Capture runs at safe points only: inside a VM::PostGcHook (threads
/// suspended at gc-points, heap freshly compacted) or after run() returns.
/// On VM error paths thread stacks are not at gc-points; pass
/// WalkStacks=false to take a globals-only post-mortem snapshot instead
/// (flagged in the snapshot so analyses know the node set is partial).
///
/// crosscheckSnapshot is the --gc-crosscheck / fuzz-oracle validator: the
/// snapshot's node set must equal an independently recomputed precise
/// reachable set (count and total bytes), and every node must fall inside
/// the conservative-trace superset (gc/Collector.h) — precise ⊆
/// conservative is the paper's correctness ordering.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_GC_SNAPSHOT_H
#define MGC_GC_SNAPSHOT_H

#include "obs/HeapSnapshot.h"
#include "vm/VM.h"

#include <string>

namespace mgc {
namespace gc {

/// Captures the current heap graph into \p Out (cleared first; reusing one
/// snapshot across captures reuses its vector storage).  \p WalkStacks
/// must be true only when every live thread is suspended at a gc-point
/// (PostGcHook, or after a successful run when no threads remain); false
/// enumerates globals only.  Returns false and sets \p Err on a
/// malformed heap or table (never aborts — tools report and exit).
bool captureHeapSnapshot(vm::VM &M, obs::HeapSnapshot &Out, bool WalkStacks,
                         std::string &Err);

/// Validates \p S against the live VM it was just captured from:
///  - node count and total shallow bytes equal an independent precise
///    mark traversal from the same root set;
///  - every node address is inside the conservative-trace mark set.
/// Returns false and sets \p Err on any violation.
bool crosscheckSnapshot(vm::VM &M, const obs::HeapSnapshot &S,
                        bool WalkStacks, std::string &Err);

} // namespace gc
} // namespace mgc

#endif // MGC_GC_SNAPSHOT_H
