//===- gc/Collector.cpp ---------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/Collector.h"

#include "gcmaps/GcTables.h"
#include "gcmaps/MapIndex.h"
#include "obs/Trace.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_set>
#include <vector>

using namespace mgc;
using namespace mgc::gc;
using namespace mgc::vm;

namespace {

constexpr uint32_t SentinelPC = 0xFFFFFFFFu;

// The tracer resolves first-collection survival by reading the forwarding
// tag out of from-space headers (obs::Tracer::sweepSurvivors hardcodes
// bit 0 to stay below the vm layer); pin the correspondence here.
static_assert(Heap::ForwardBit == 1,
              "obs survival sweep assumes the forwarding tag is bit 0");

/// One resolved derived-value entry: the target word and its base words
/// with signs (bases were required live, so they have resolved homes too).
struct DerivedEntry {
  Word *Target;
  std::vector<std::pair<Word *, int>> Bases;
};

/// The installed collector.  One instance lives for the life of the VM
/// (captured by the Collector closure), so the decoded-point cache and the
/// root/derived/scratch buffers persist across collections: steady-state
/// collections decode from cache and allocate nothing.
class PreciseCollector {
public:
  explicit PreciseCollector(const CollectorOptions &Opts)
      : Opts(Opts), Cache(Opts.CacheLines) {}

  void collect(VM &M);

private:
  void walkThread(VM &M, ThreadContext &T, uint32_t TablePC);
  /// The full two-space Cheney copy (also evacuates the nursery in
  /// generational mode).
  void traceFull(VM &M);
  /// Generational mode: evacuates only the nursery, using the remembered
  /// set for the old→young roots.
  void traceMinor(VM &M);
  /// --gc-crosscheck after a minor collection: a full reachability
  /// traversal proving no live object was left behind in the evacuated
  /// nursery half via a stale remembered set.  Runs before the nursery
  /// halves swap.
  void crosscheckAfterMinor(VM &M);
  /// The decoded tables for gc-point \p Ordinal of function \p FuncIdx,
  /// through the configured path (cache+index, or the reference decoder).
  const gcmaps::GcPointInfo &pointInfo(VM &M, unsigned FuncIdx,
                                       unsigned Ordinal);
  Word *resolve(const vm::Location &L, uint32_t FP, uint32_t AP,
                ThreadContext &T, Word **RegHome);

  CollectorOptions Opts;
  /// The in-flight observability event (null when tracing is off); set at
  /// the top of collect() so traceMinor can time the remset rebuild.
  obs::GcEvent *CurEv = nullptr;
  gcmaps::DecodedPointCache Cache;
  uint64_t CacheHitsReported = 0;
  uint64_t CacheMissesReported = 0;
  /// Reference-decoder scratch (UseMapIndex == false).
  gcmaps::GcPointInfo RefInfo;
  std::vector<Word *> TidyRoots;
  /// Persistent arena: entries beyond DerivedUsed keep their base-vector
  /// capacity between collections instead of being destroyed.
  std::vector<DerivedEntry> Derived;
  size_t DerivedUsed = 0;
};

const gcmaps::GcPointInfo &PreciseCollector::pointInfo(VM &M,
                                                       unsigned FuncIdx,
                                                       unsigned Ordinal) {
  const gcmaps::EncodedFuncMaps &Maps = M.Prog.Maps[FuncIdx];
  const gcmaps::GcPointInfo *Info;
  if (Opts.UseMapIndex) {
    assert(FuncIdx < M.Prog.MapIndexes.size() &&
           "program installed without map indexes");
    const gcmaps::FuncMapIndex &Index = M.Prog.MapIndexes[FuncIdx];
    Info = Cache.lookup(FuncIdx, Ordinal);
    if (!Info) {
      gcmaps::GcPointInfo &Slot = Cache.insert(FuncIdx, Ordinal);
      gcmaps::decodeGcPointIndexed(Maps, Index, Ordinal, Slot,
                                   &M.Stats.DecodeBytesSkipped);
      Info = &Slot;
    }
    M.Stats.DecodeCacheHits += Cache.hits() - CacheHitsReported;
    M.Stats.DecodeCacheMisses += Cache.misses() - CacheMissesReported;
    CacheHitsReported = Cache.hits();
    CacheMissesReported = Cache.misses();
  } else {
    RefInfo = gcmaps::decodeGcPoint(Maps, Ordinal);
    Info = &RefInfo;
  }
  if (Opts.CrossCheck &&
      !(*Info == gcmaps::decodeGcPoint(Maps, Ordinal))) {
    std::fprintf(stderr,
                 "gc cross-check: accelerated decode of func %u point %u "
                 "disagrees with the reference decoder\n",
                 FuncIdx, Ordinal);
    std::abort();
  }
  return *Info;
}

Word *PreciseCollector::resolve(const vm::Location &L, uint32_t FP,
                                uint32_t AP, ThreadContext &T,
                                Word **RegHome) {
  switch (L.K) {
  case vm::Location::Kind::FpSlot:
    return &T.Stack[FP + static_cast<unsigned>(L.Index)];
  case vm::Location::Kind::ApSlot:
    return &T.Stack[AP + static_cast<unsigned>(L.Index)];
  case vm::Location::Kind::Reg:
    return RegHome[L.Index];
  case vm::Location::Kind::None:
    break;
  }
  assert(false && "unresolvable location");
  return nullptr;
}

void PreciseCollector::walkThread(VM &M, ThreadContext &T, uint32_t TablePC) {
  // Register reconstruction state: where each register's value *as of the
  // frame being processed* lives.  Innermost frame: the live register file;
  // moving outward, registers saved by a frame are found in its save area.
  Word *RegHome[NumRegs];
  for (unsigned R = 0; R != NumRegs; ++R)
    RegHome[R] = &T.R[R];

  uint32_t PC = TablePC;
  uint32_t FP = T.FP;
  uint32_t AP = T.AP;

  while (true) {
    ++M.Stats.FramesTraced;
    unsigned FuncIdx = M.Prog.funcOfPC(PC - 1);
    const CompiledFunction &F = M.Prog.Funcs[FuncIdx];
    const gcmaps::EncodedFuncMaps &Maps = M.Prog.Maps[FuncIdx];

    int Ordinal = gcmaps::findGcPoint(Maps, PC);
    assert(Ordinal >= 0 && "suspension point is not a known gc-point");
    const gcmaps::GcPointInfo &Info =
        pointInfo(M, FuncIdx, static_cast<unsigned>(Ordinal));

    for (const vm::Location &L : Info.LiveSlots)
      TidyRoots.push_back(resolve(L, FP, AP, T, RegHome));
    for (unsigned R = 0; R != NumRegs; ++R)
      if (Info.RegMask & (1u << R))
        TidyRoots.push_back(RegHome[R]);

    for (const gcmaps::DerivationRecord &Rec : Info.Derivs) {
      if (DerivedUsed == Derived.size())
        Derived.emplace_back();
      DerivedEntry &E = Derived[DerivedUsed++];
      E.Bases.clear();
      E.Target = resolve(Rec.Target, FP, AP, T, RegHome);
      const std::vector<gcmaps::BaseRef> *Bases = &Rec.Bases;
      if (Rec.Ambiguous) {
        // Consult the path variable to select the derivation that actually
        // happened (§4).  Alts are encoded sorted by path value, so this
        // is a binary search rather than a linear scan.
        Word PathValue = *resolve(Rec.PathVar, FP, AP, T, RegHome);
        const gcmaps::DerivationAlt *Chosen = gcmaps::findDerivationAlt(
            Rec, static_cast<int32_t>(PathValue));
        assert(Chosen && "path variable selects no known derivation");
        Bases = &Chosen->Bases;
      }
      for (const gcmaps::BaseRef &B : *Bases)
        E.Bases.emplace_back(resolve(B.Loc, FP, AP, T, RegHome), B.Coeff);
    }

    // Step to the caller: registers this frame saved now live in its save
    // area as far as outer frames are concerned.
    for (size_t K = 0; K != F.SavedRegs.size(); ++K)
      RegHome[F.SavedRegs[K]] = &T.Stack[FP + K];

    uint32_t RetPC = static_cast<uint32_t>(T.Stack[FP - 1]);
    if (RetPC == SentinelPC)
      break;
    uint32_t CallerFP = static_cast<uint32_t>(T.Stack[FP - 2]);
    uint32_t CallerAP = static_cast<uint32_t>(T.Stack[FP - 3]);
    PC = RetPC;
    FP = CallerFP;
    AP = CallerAP;
  }
}

void PreciseCollector::traceFull(VM &M) {
  Heap &H = M.TheHeap;
  H.beginCollection();

  // --- Trace: forward every tidy root, then Cheney-scan the copied
  // objects using the heap type descriptors.
  for (Word *Root : TidyRoots) {
    ++M.Stats.RootsTraced;
    if (*Root == 0)
      continue;
    // The same word can be described twice (e.g. an outgoing argument slot
    // by the caller's FP entry and the callee's AP entry); a second visit
    // sees the already-updated pointer.
    if (H.inToSpace(*Root))
      continue;
    assert(H.inFromSpace(*Root) && "tidy root does not point into the heap "
                                   "(stale table or liveness bug)");
    *Root = H.forward(*Root);
  }

  Word Scan = H.scanStart();
  while (Scan < H.toAlloc()) {
    // Every object in to-space was evacuated by this collection.
    ++M.Stats.ObjectsCopied;
    Word *Obj = reinterpret_cast<Word *>(Scan);
    const ir::TypeDesc &D =
        M.Prog.TypeDescs[Heap::headerDesc(Obj[0])];
    for (unsigned Off : D.PtrOffsets) {
      Word &Field = Obj[1 + Off];
      if (Field != 0)
        Field = H.forward(Field);
    }
    size_t Words = 1 + D.SizeWords;
    if (D.IsOpenArray) {
      int64_t Len = static_cast<int64_t>(Obj[1]);
      for (int64_t E = 0; E != Len; ++E)
        for (unsigned Off : D.ElemPtrOffsets) {
          Word &Field = Obj[2 + static_cast<size_t>(E) * D.ElemSizeWords + Off];
          if (Field != 0)
            Field = H.forward(Field);
        }
      Words += static_cast<size_t>(Len) * D.ElemSizeWords;
    }
    Scan += Words * sizeof(Word);
  }

  M.Stats.BytesCopied += H.toAlloc() - H.scanStart();
  // Survival + attribution sweep: from-space headers (and nursery headers
  // in generational mode) remain readable until the swap below.
  if (M.Tracer)
    M.Tracer->sweepSurvivors(H, /*Minor=*/false);
  H.endCollection();
}

void PreciseCollector::traceMinor(VM &M) {
  Heap &H = M.TheHeap;
  assert(H.minorHeadroomOk() &&
         "minor collection started without promotion headroom");
  H.beginMinorCollection();

  // The remembered set rebuilt for the next cycle: surviving old→young
  // edges plus any created by promotion during this collection.
  std::unordered_set<Word> NewRem;

  // Forwards a field's target out of the nursery if it is young.  Fields
  // of *old-space* objects that end up pointing at a survivor are
  // old→young edges and must enter the new remembered set.
  auto FwdField = [&](Word &Field, bool InOldObject) {
    if (H.inNursery(Field))
      Field = H.forwardYoung(Field);
    if (InOldObject && H.inNurseryTo(Field))
      NewRem.insert(reinterpret_cast<Word>(&Field));
  };

  // --- Roots: the same table-driven tidy roots as a full collection...
  for (Word *Root : TidyRoots) {
    ++M.Stats.RootsTraced;
    Word V = *Root;
    if (V == 0)
      continue;
    assert((H.inOld(V) || H.inNursery(V) || H.inNurseryTo(V)) &&
           "tidy root does not point into the heap (stale table or "
           "liveness bug)");
    if (H.inNursery(V))
      *Root = H.forwardYoung(V);
  }
  // ...plus every remembered old-space slot that still holds a young
  // pointer (the barrier records slots eagerly; stores since may have
  // overwritten them).
  for (Word Slot : H.remSet()) {
    Word &Field = *reinterpret_cast<Word *>(Slot);
    if (H.inNursery(Field))
      Field = H.forwardYoung(Field);
  }

  // --- Cheney scan over both target regions: the survivor half and the
  // region of old space filled by promotion.  Scanning either can grow
  // both, so alternate until neither advances.
  auto ScanObject = [&](Word Scan, bool InOldObject) -> size_t {
    // Every scanned object was evacuated (survivor half or promotion).
    ++M.Stats.ObjectsCopied;
    Word *Obj = reinterpret_cast<Word *>(Scan);
    const ir::TypeDesc &D =
        M.Prog.TypeDescs[Heap::headerDesc(Obj[0])];
    for (unsigned Off : D.PtrOffsets)
      FwdField(Obj[1 + Off], InOldObject);
    size_t Words = 1 + D.SizeWords;
    if (D.IsOpenArray) {
      int64_t Len = static_cast<int64_t>(Obj[1]);
      for (int64_t E = 0; E != Len; ++E)
        for (unsigned Off : D.ElemPtrOffsets)
          FwdField(Obj[2 + static_cast<size_t>(E) * D.ElemSizeWords + Off],
                   InOldObject);
      Words += static_cast<size_t>(Len) * D.ElemSizeWords;
    }
    return Words * sizeof(Word);
  };

  Word NurScan = H.nurScanStart();
  Word OldScan = H.oldScanStart();
  while (NurScan < H.nurToAlloc() || OldScan < H.oldAllocPtr()) {
    while (NurScan < H.nurToAlloc())
      NurScan += ScanObject(NurScan, /*InOldObject=*/false);
    while (OldScan < H.oldAllocPtr())
      OldScan += ScanObject(OldScan, /*InOldObject=*/true);
  }

  M.Stats.BytesCopied += (H.nurToAlloc() - H.nurScanStart()) +
                         (H.oldAllocPtr() - H.oldScanStart());

  if (Opts.CrossCheck)
    crosscheckAfterMinor(M);

  // Remembered-set rebuild (timed as its own phase): surviving entries of
  // the old set — slots still holding a young pointer once their target
  // moved to the survivor half — join the edges recorded during the scan.
  using Clock = std::chrono::steady_clock;
  Clock::time_point RemT0;
  if (CurEv)
    RemT0 = Clock::now();
  for (Word Slot : H.remSet()) {
    Word V = *reinterpret_cast<const Word *>(Slot);
    if (H.inNurseryTo(V))
      NewRem.insert(Slot);
  }
  H.remSet().swap(NewRem);
  if (CurEv)
    CurEv->Phases.RemsetRebuild = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             RemT0)
            .count());

  // Survival + attribution sweep: evacuated nursery-half headers remain
  // readable until the swap below.
  if (M.Tracer)
    M.Tracer->sweepSurvivors(H, /*Minor=*/true);
  H.endMinorCollection();
}

void PreciseCollector::crosscheckAfterMinor(VM &M) {
  // Full-heap reachability verification: starting from every tidy root,
  // no reachable pointer may still target the evacuated nursery half — a
  // violation means a live object was missed via a stale remembered set.
  // The traversal also exercises objectWords on every reachable object,
  // asserting each open-array length round-trips its allocation size.
  Heap &H = M.TheHeap;
  std::unordered_set<Word> Visited;
  std::vector<Word> Work;
  auto Push = [&](Word V) {
    if (V == 0)
      return;
    if (H.inNursery(V)) {
      std::fprintf(stderr,
                   "gc cross-check: reachable object left in the evacuated "
                   "nursery half (stale remembered set)\n");
      std::abort();
    }
    if (!H.inOld(V) && !H.inNurseryTo(V))
      return;
    if (Visited.insert(V).second)
      Work.push_back(V);
  };
  for (Word *Root : TidyRoots)
    Push(*Root);
  while (!Work.empty()) {
    Word Obj = Work.back();
    Work.pop_back();
    const Word *P = reinterpret_cast<const Word *>(Obj);
    const ir::TypeDesc &D = H.descOf(Obj);
    (void)H.objectWords(Obj); // Asserts the header is sane.
    for (unsigned Off : D.PtrOffsets)
      Push(P[1 + Off]);
    if (D.IsOpenArray) {
      int64_t Len = static_cast<int64_t>(P[1]);
      for (int64_t E = 0; E != Len; ++E)
        for (unsigned Off : D.ElemPtrOffsets)
          Push(P[2 + static_cast<size_t>(E) * D.ElemSizeWords + Off]);
    }
  }
}

void PreciseCollector::collect(VM &M) {
  using Clock = std::chrono::steady_clock;
  auto Nanos = [](Clock::time_point A, Clock::time_point B) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(B - A).count());
  };
  auto T0 = Clock::now();

  // The VM begins the observability event before invoking us; fill in the
  // per-phase breakdown as each phase completes.  Extra clock reads happen
  // only while an event is in flight.
  CurEv = M.Tracer ? M.Tracer->current() : nullptr;

  bool Minor = M.TheHeap.generational() && M.RequestedGc == GcKind::Minor;

  TidyRoots.clear();
  DerivedUsed = 0;

  // --- Stack tracing: locate tables, decode, gather roots (timed
  // separately; this is §6.3's measured quantity).  A minor collection
  // gathers the identical root set — only the trace differs.
  for (size_t TI = 0; TI != M.Threads.size(); ++TI) {
    ThreadContext &T = *M.Threads[TI];
    if (!T.Live)
      continue; // Finished threads have no frames to scan.
    uint32_t TablePC = M.SuspendPCs.empty() ? 0 : M.SuspendPCs[TI];
    if (TablePC == SentinelPC || TablePC == 0)
      continue;
    walkThread(M, T, TablePC);
  }
  for (unsigned W : M.Prog.GlobalPtrWords)
    TidyRoots.push_back(&M.Globals[W]);

  auto T1 = Clock::now();
  if (CurEv)
    CurEv->Phases.StackTrace = Nanos(T0, T1);
  auto Mark = T1;

  // --- Phase 1 (§3): un-derive, innermost frames first, leaving E in each
  // derived location.
  for (size_t K = 0; K != DerivedUsed; ++K) {
    const DerivedEntry &E = Derived[K];
    Word V = *E.Target;
    for (const auto &[BaseLoc, Coeff] : E.Bases)
      V -= static_cast<Word>(static_cast<int64_t>(Coeff)) * *BaseLoc;
    *E.Target = V;
    ++M.Stats.DerivedAdjusted;
  }

  if (CurEv) {
    auto Now = Clock::now();
    CurEv->Phases.Underive = Nanos(Mark, Now);
    Mark = Now;
  }

  if (Minor) {
    ++M.Stats.MinorCollections;
    traceMinor(M);
  } else {
    traceFull(M);
  }

  if (CurEv) {
    auto Now = Clock::now();
    // traceMinor timed its remset rebuild separately; the rest of the
    // evacuation span is the copy phase.
    CurEv->Phases.Copy = Nanos(Mark, Now) - CurEv->Phases.RemsetRebuild;
    Mark = Now;
  }

  // --- Phase 2 of the update (§3): re-derive from the new base values, in
  // exactly the reverse order.
  for (size_t K = DerivedUsed; K-- > 0;) {
    const DerivedEntry &E = Derived[K];
    Word V = *E.Target;
    for (const auto &[BaseLoc, Coeff] : E.Bases)
      V += static_cast<Word>(static_cast<int64_t>(Coeff)) * *BaseLoc;
    *E.Target = V;
  }

  auto T2 = Clock::now();
  if (CurEv) {
    CurEv->Phases.Rederive = Nanos(Mark, T2);
    CurEv = nullptr; // The VM commits the event after we return.
  }
  M.Stats.StackTraceNanos += Nanos(T0, T1);
  uint64_t Total = Nanos(T0, T2);
  M.Stats.GcNanos += Total;
  if (Minor)
    M.Stats.MinorGcNanos += Total;
}

} // namespace

void gc::installPreciseCollector(VM &M, const CollectorOptions &Opts) {
  // The collector instance is shared by every collection of this VM: the
  // decoded-point cache and the root/derived buffers persist, so only the
  // first collections pay decode allocations.
  auto State = std::make_shared<PreciseCollector>(Opts);
  M.Collector = [State](VM &Inner) { State->collect(Inner); };
}

//===----------------------------------------------------------------------===//
// Conservative (ambiguous roots) baseline
//===----------------------------------------------------------------------===//

ConservativeStats gc::conservativeTrace(VM &M,
                                        std::unordered_set<Word> *MarkedOut) {
  using Clock = std::chrono::steady_clock;
  auto T0 = Clock::now();
  ConservativeStats S;

  Heap &H = M.TheHeap;
  // Hash-based mark set: the conservative baseline should pay for its lack
  // of liveness information, not for red-black-tree rebalancing.
  std::unordered_set<Word> Marked;
  Marked.reserve(1024);
  std::vector<Word> Work;
  Work.reserve(256);

  auto Consider = [&](Word V) {
    ++S.WordsScanned;
    if (!H.plausibleObject(V))
      return;
    ++S.CandidatePointers;
    if (Marked.insert(V).second)
      Work.push_back(V);
  };

  for (const auto &T : M.Threads) {
    if (!T->Live)
      continue;
    // The whole used portion of the stack is ambiguous root material; the
    // conservative collector has no liveness information.
    uint32_t Top = T->FP;
    const CompiledFunction &F = M.Prog.Funcs[M.Prog.funcOfPC(T->PC)];
    Top += F.FrameWords;
    for (uint32_t W = 0; W < Top && W < T->StackWords; ++W)
      Consider(T->Stack[W]);
    for (unsigned R = 0; R != NumRegs; ++R)
      Consider(T->R[R]);
  }
  for (Word G : M.Globals)
    Consider(G);

  while (!Work.empty()) {
    Word Obj = Work.back();
    Work.pop_back();
    ++S.ObjectsReached;
    const ir::TypeDesc &D = H.descOf(Obj);
    const Word *P = reinterpret_cast<const Word *>(Obj);
    for (unsigned Off : D.PtrOffsets) {
      Word V = P[1 + Off];
      if (H.plausibleObject(V) && Marked.insert(V).second)
        Work.push_back(V);
    }
    if (D.IsOpenArray) {
      int64_t Len = static_cast<int64_t>(P[1]);
      for (int64_t E = 0; E != Len; ++E)
        for (unsigned Off : D.ElemPtrOffsets) {
          Word V = P[2 + static_cast<size_t>(E) * D.ElemSizeWords + Off];
          if (H.plausibleObject(V) && Marked.insert(V).second)
            Work.push_back(V);
        }
    }
  }

  auto T1 = Clock::now();
  S.Nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0).count());
  if (MarkedOut)
    *MarkedOut = std::move(Marked);
  return S;
}
