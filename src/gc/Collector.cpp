//===- gc/Collector.cpp ---------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/Collector.h"

#include "gcmaps/GcTables.h"
#include "gcmaps/MapIndex.h"
#include "obs/Trace.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

using namespace mgc;
using namespace mgc::gc;
using namespace mgc::vm;

namespace {

constexpr uint32_t SentinelPC = 0xFFFFFFFFu;

// The tracer resolves first-collection survival by reading the forwarding
// tag out of from-space headers (obs::Tracer::sweepSurvivors hardcodes
// bit 0 to stay below the vm layer); pin the correspondence here.
static_assert(Heap::ForwardBit == 1,
              "obs survival sweep assumes the forwarding tag is bit 0");

/// One resolved derived-value entry: the target word and its base words
/// with signs (bases were required live, so they have resolved homes too).
struct DerivedEntry {
  Word *Target;
  std::vector<std::pair<Word *, int>> Bases;
};

/// Per-worker collection state (--gc-threads).  Worker 0 doubles as the
/// serial collector's state, so the N=1 path runs through exactly the same
/// caches and arenas as before the parallel split.  Everything here is
/// touched by only its owning worker during a parallel phase — except Pub,
/// the public half of the work-stealing scan queue, which is guarded by
/// PubMu.  Stat counters accumulate locally and are flushed into VMStats in
/// worker order once the phase joins, so totals are deterministic at every
/// N and identical to the serial collector at N=1.
struct WorkerState {
  explicit WorkerState(unsigned CacheLines) : Cache(CacheLines) {}

  /// Decoded-point cache: per-worker so the parallel stack walk stays
  /// allocation-free and lock-free on the PR-1 decode path.  (At N>1 the
  /// aggregate hit/miss counts legitimately differ from serial: each
  /// worker's cache is cold for points another worker already decoded.)
  gcmaps::DecodedPointCache Cache;
  uint64_t CacheHitsReported = 0;
  uint64_t CacheMissesReported = 0;
  /// Reference-decoder scratch (UseMapIndex == false).
  gcmaps::GcPointInfo RefInfo;

  /// Roots gathered by this worker's share of the stack walk; merged into
  /// the collector's TidyRoots in worker order after the walk joins.
  std::vector<Word *> Roots;
  /// Persistent derived-entry arena (entries beyond Used keep their
  /// base-vector capacity between collections).
  std::vector<DerivedEntry> Derived;
  size_t DerivedUsed = 0;

  // Stat deltas for the current collection, flushed in worker order.
  uint64_t FramesTraced = 0;
  uint64_t DecodeCacheHits = 0;
  uint64_t DecodeCacheMisses = 0;
  uint64_t DecodeBytesSkipped = 0;
  uint64_t ObjectsCopied = 0;
  uint64_t BytesCopied = 0;
  // Per-phase spans for the tracer's per-worker breakdown.
  uint64_t TraceNanos = 0;
  uint64_t CopyNanos = 0;

  /// Leak-detector slab (tracer-owned; null when the detector is off or
  /// this is a minor collection): each object this worker copies adds its
  /// bytes to slot [site id]; Tracer::sampleCollection merges and zeroes
  /// the slabs after the workers join.  Only the full-collection copy
  /// paths wire this in — minor samples would flag every site.
  uint64_t *LeakAcc = nullptr;
  size_t LeakSites = 0;

  /// Work-stealing scan queue over grey (copied, unscanned) to-space
  /// objects.  Grey is the private LIFO only the owner touches; Pub is the
  /// public deque thieves steal from (owner pops the back, thieves the
  /// front).  PubCount mirrors Pub.size() so idle workers can poll victims
  /// without taking locks.
  std::vector<Word> Grey;
  std::deque<Word> Pub;
  std::mutex PubMu;
  std::atomic<size_t> PubCount{0};

  void resetForCollection() {
    Roots.clear();
    DerivedUsed = 0;
    FramesTraced = DecodeCacheHits = DecodeCacheMisses = 0;
    DecodeBytesSkipped = ObjectsCopied = BytesCopied = 0;
    TraceNanos = CopyNanos = 0;
    LeakAcc = nullptr;
    LeakSites = 0;
    Grey.clear();
    Pub.clear();
    PubCount.store(0, std::memory_order_relaxed);
  }
};

/// A persistent pool of NW-1 helper threads for the parallel collection
/// phases; the mutator's OS thread acts as worker 0.  Helpers sleep on a
/// condition variable between phases (collections are rare; spinning
/// between them would burn a core per helper for nothing) and are joined
/// when the collector is destroyed.
class GcWorkerPool {
public:
  explicit GcWorkerPool(unsigned NHelpers) {
    Helpers.reserve(NHelpers);
    for (unsigned I = 0; I != NHelpers; ++I)
      Helpers.emplace_back([this, I] { helperLoop(I + 1); });
  }

  ~GcWorkerPool() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Shutdown = true;
    }
    Cv.notify_all();
    for (std::thread &T : Helpers)
      T.join();
  }

  /// Runs \p Fn(WI) on every worker — helpers get 1..NHelpers, the calling
  /// thread runs worker 0 — and returns once all have finished.
  void run(const std::function<void(unsigned)> &Fn) {
    {
      std::lock_guard<std::mutex> L(Mu);
      Work = &Fn;
      Remaining = static_cast<unsigned>(Helpers.size());
      ++Generation;
    }
    Cv.notify_all();
    Fn(0);
    std::unique_lock<std::mutex> L(Mu);
    DoneCv.wait(L, [this] { return Remaining == 0; });
    Work = nullptr;
  }

private:
  void helperLoop(unsigned WI) {
    uint64_t SeenGen = 0;
    for (;;) {
      const std::function<void(unsigned)> *Fn;
      {
        std::unique_lock<std::mutex> L(Mu);
        Cv.wait(L, [&] { return Shutdown || Generation != SeenGen; });
        if (Shutdown)
          return;
        SeenGen = Generation;
        Fn = Work;
      }
      (*Fn)(WI);
      std::lock_guard<std::mutex> L(Mu);
      if (--Remaining == 0)
        DoneCv.notify_one();
    }
  }

  std::vector<std::thread> Helpers;
  std::mutex Mu;
  std::condition_variable Cv, DoneCv;
  const std::function<void(unsigned)> *Work = nullptr;
  uint64_t Generation = 0;
  unsigned Remaining = 0;
  bool Shutdown = false;
};

/// The installed collector.  One instance lives for the life of the VM
/// (captured by the Collector closure), so the decoded-point cache and the
/// root/derived/scratch buffers persist across collections: steady-state
/// collections decode from cache and allocate nothing.
class PreciseCollector {
public:
  explicit PreciseCollector(const CollectorOptions &Opts) : Opts(Opts) {
    // Clamp to the tracer's per-worker array bound; N=1 is the serial
    // collector.
    if (this->Opts.Threads < 1)
      this->Opts.Threads = 1;
    if (this->Opts.Threads > obs::MaxGcWorkers)
      this->Opts.Threads = obs::MaxGcWorkers;
    NW = this->Opts.Threads;
    Workers.reserve(NW);
    for (unsigned I = 0; I != NW; ++I)
      Workers.push_back(std::make_unique<WorkerState>(Opts.CacheLines));
  }

  void collect(VM &M);

private:
  void walkThread(VM &M, WorkerState &W, ThreadContext &T, uint32_t TablePC);
  /// The full two-space Cheney copy (also evacuates the nursery in
  /// generational mode).
  void traceFull(VM &M);
  /// The same evacuation split across the worker pool: roots are deduped
  /// and sliced per worker, grey objects flow through the per-worker
  /// work-stealing queues, and every copy goes through the claim-then-copy
  /// CAS in Heap::forwardParallel.
  void traceFullParallel(VM &M);
  /// One worker's share of traceFullParallel: forward a root slice, then
  /// scan/steal until global quiescence.
  void evacuateWorker(VM &M, unsigned WI, size_t NRoots);
  /// Forwards one field through the parallel protocol, pushing the new
  /// copy on \p W's grey queue when this worker won the claim.
  void forwardFieldParallel(Heap &H, WorkerState &W, Word &Field);
  /// Generational mode: evacuates only the nursery, using the remembered
  /// set for the old→young roots.
  void traceMinor(VM &M);
  /// --gc-crosscheck after a minor collection: a full reachability
  /// traversal proving no live object was left behind in the evacuated
  /// nursery half via a stale remembered set.  Runs before the nursery
  /// halves swap.
  void crosscheckAfterMinor(VM &M);
  /// The decoded tables for gc-point \p Ordinal of function \p FuncIdx,
  /// through the configured path (worker-local cache+index, or the
  /// reference decoder).
  const gcmaps::GcPointInfo &pointInfo(VM &M, WorkerState &W,
                                       unsigned FuncIdx, unsigned Ordinal);
  Word *resolve(const vm::Location &L, uint32_t FP, uint32_t AP,
                ThreadContext &T, Word **RegHome);

  CollectorOptions Opts;
  unsigned NW = 1;
  /// The in-flight observability event (null when tracing is off); set at
  /// the top of collect() so traceMinor can time the remset rebuild.
  obs::GcEvent *CurEv = nullptr;
  /// Per-worker state; Workers[0] is also the serial collector's state.
  std::vector<std::unique_ptr<WorkerState>> Workers;
  /// Helper threads (NW-1 of them), created lazily on the first parallel
  /// collection so --gc-threads 1 never spawns an OS thread.
  std::unique_ptr<GcWorkerPool> Pool;
  /// Workers currently out of work during a parallel evacuation; the phase
  /// terminates when all NW are idle at once (pushes only happen from
  /// non-idle workers, so that state is stable).
  std::atomic<unsigned> NIdle{0};
  /// The merged root set (serial: gathered directly; parallel: per-worker
  /// shares appended in worker order, preserving the serial ordering).
  std::vector<Word *> TidyRoots;
};

const gcmaps::GcPointInfo &PreciseCollector::pointInfo(VM &M, WorkerState &W,
                                                       unsigned FuncIdx,
                                                       unsigned Ordinal) {
  const gcmaps::EncodedFuncMaps &Maps = M.Prog.Maps[FuncIdx];
  const gcmaps::GcPointInfo *Info;
  if (Opts.UseMapIndex) {
    assert(FuncIdx < M.Prog.MapIndexes.size() &&
           "program installed without map indexes");
    const gcmaps::FuncMapIndex &Index = M.Prog.MapIndexes[FuncIdx];
    Info = W.Cache.lookup(FuncIdx, Ordinal);
    if (!Info) {
      gcmaps::GcPointInfo &Slot = W.Cache.insert(FuncIdx, Ordinal);
      gcmaps::decodeGcPointIndexed(Maps, Index, Ordinal, Slot,
                                   &W.DecodeBytesSkipped);
      Info = &Slot;
    }
    // Accumulate into worker-local deltas; the phase join flushes them
    // into VMStats in worker order (other workers may be walking frames
    // concurrently, so VMStats must not be touched here).
    W.DecodeCacheHits += W.Cache.hits() - W.CacheHitsReported;
    W.DecodeCacheMisses += W.Cache.misses() - W.CacheMissesReported;
    W.CacheHitsReported = W.Cache.hits();
    W.CacheMissesReported = W.Cache.misses();
  } else {
    W.RefInfo = gcmaps::decodeGcPoint(Maps, Ordinal);
    Info = &W.RefInfo;
  }
  if (Opts.CrossCheck &&
      !(*Info == gcmaps::decodeGcPoint(Maps, Ordinal))) {
    std::fprintf(stderr,
                 "gc cross-check: accelerated decode of func %u point %u "
                 "disagrees with the reference decoder\n",
                 FuncIdx, Ordinal);
    std::abort();
  }
  return *Info;
}

Word *PreciseCollector::resolve(const vm::Location &L, uint32_t FP,
                                uint32_t AP, ThreadContext &T,
                                Word **RegHome) {
  switch (L.K) {
  case vm::Location::Kind::FpSlot:
    return &T.Stack[FP + static_cast<unsigned>(L.Index)];
  case vm::Location::Kind::ApSlot:
    return &T.Stack[AP + static_cast<unsigned>(L.Index)];
  case vm::Location::Kind::Reg:
    return RegHome[L.Index];
  case vm::Location::Kind::None:
    break;
  }
  assert(false && "unresolvable location");
  return nullptr;
}

void PreciseCollector::walkThread(VM &M, WorkerState &W, ThreadContext &T,
                                  uint32_t TablePC) {
  // Register reconstruction state: where each register's value *as of the
  // frame being processed* lives.  Innermost frame: the live register file;
  // moving outward, registers saved by a frame are found in its save area.
  Word *RegHome[NumRegs];
  for (unsigned R = 0; R != NumRegs; ++R)
    RegHome[R] = &T.R[R];

  uint32_t PC = TablePC;
  uint32_t FP = T.FP;
  uint32_t AP = T.AP;

  while (true) {
    ++W.FramesTraced;
    unsigned FuncIdx = M.Prog.funcOfPC(PC - 1);
    const CompiledFunction &F = M.Prog.Funcs[FuncIdx];
    const gcmaps::EncodedFuncMaps &Maps = M.Prog.Maps[FuncIdx];

    int Ordinal = gcmaps::findGcPoint(Maps, PC);
    assert(Ordinal >= 0 && "suspension point is not a known gc-point");
    const gcmaps::GcPointInfo &Info =
        pointInfo(M, W, FuncIdx, static_cast<unsigned>(Ordinal));

    for (const vm::Location &L : Info.LiveSlots)
      W.Roots.push_back(resolve(L, FP, AP, T, RegHome));
    for (unsigned R = 0; R != NumRegs; ++R)
      if (Info.RegMask & (1u << R))
        W.Roots.push_back(RegHome[R]);

    for (const gcmaps::DerivationRecord &Rec : Info.Derivs) {
      if (W.DerivedUsed == W.Derived.size())
        W.Derived.emplace_back();
      DerivedEntry &E = W.Derived[W.DerivedUsed++];
      E.Bases.clear();
      E.Target = resolve(Rec.Target, FP, AP, T, RegHome);
      const std::vector<gcmaps::BaseRef> *Bases = &Rec.Bases;
      if (Rec.Ambiguous) {
        // Consult the path variable to select the derivation that actually
        // happened (§4).  Alts are encoded sorted by path value, so this
        // is a binary search rather than a linear scan.
        Word PathValue = *resolve(Rec.PathVar, FP, AP, T, RegHome);
        const gcmaps::DerivationAlt *Chosen = gcmaps::findDerivationAlt(
            Rec, static_cast<int32_t>(PathValue));
        assert(Chosen && "path variable selects no known derivation");
        Bases = &Chosen->Bases;
      }
      for (const gcmaps::BaseRef &B : *Bases)
        E.Bases.emplace_back(resolve(B.Loc, FP, AP, T, RegHome), B.Coeff);
    }

    // Step to the caller: registers this frame saved now live in its save
    // area as far as outer frames are concerned.
    for (size_t K = 0; K != F.SavedRegs.size(); ++K)
      RegHome[F.SavedRegs[K]] = &T.Stack[FP + K];

    uint32_t RetPC = static_cast<uint32_t>(T.Stack[FP - 1]);
    if (RetPC == SentinelPC)
      break;
    uint32_t CallerFP = static_cast<uint32_t>(T.Stack[FP - 2]);
    uint32_t CallerAP = static_cast<uint32_t>(T.Stack[FP - 3]);
    PC = RetPC;
    FP = CallerFP;
    AP = CallerAP;
  }
}

void PreciseCollector::traceFull(VM &M) {
  Heap &H = M.TheHeap;
  H.beginCollection();

  // --- Trace: forward every tidy root, then Cheney-scan the copied
  // objects using the heap type descriptors.
  for (Word *Root : TidyRoots) {
    ++M.Stats.RootsTraced;
    if (*Root == 0)
      continue;
    // The same word can be described twice (e.g. an outgoing argument slot
    // by the caller's FP entry and the callee's AP entry); a second visit
    // sees the already-updated pointer.
    if (H.inToSpace(*Root))
      continue;
    assert(H.inFromSpace(*Root) && "tidy root does not point into the heap "
                                   "(stale table or liveness bug)");
    *Root = H.forward(*Root);
  }

  // In-copy leak sampling: the scan below visits every evacuated object
  // exactly once, so per-site live bytes accumulate here for free instead
  // of a separate O(live) heap walk at sample time (which would cost a
  // significant fraction of the pause itself on GC-bound workloads —
  // bench/leak gates the detector at <= 3% mutator cost).
  uint64_t *LeakAcc = M.Tracer ? M.Tracer->leakAccumulator(0) : nullptr;
  size_t LeakSites = LeakAcc ? M.Tracer->leakSiteCount() : 0;

  Word Scan = H.scanStart();
  while (Scan < H.toAlloc()) {
    // Every object in to-space was evacuated by this collection.
    ++M.Stats.ObjectsCopied;
    Word *Obj = reinterpret_cast<Word *>(Scan);
    const ir::TypeDesc &D =
        M.Prog.TypeDescs[Heap::headerDesc(Obj[0])];
    for (unsigned Off : D.PtrOffsets) {
      Word &Field = Obj[1 + Off];
      if (Field != 0)
        Field = H.forward(Field);
    }
    size_t Words = 1 + D.SizeWords;
    if (D.IsOpenArray) {
      int64_t Len = static_cast<int64_t>(Obj[1]);
      for (int64_t E = 0; E != Len; ++E)
        for (unsigned Off : D.ElemPtrOffsets) {
          Word &Field = Obj[2 + static_cast<size_t>(E) * D.ElemSizeWords + Off];
          if (Field != 0)
            Field = H.forward(Field);
        }
      Words += static_cast<size_t>(Len) * D.ElemSizeWords;
    }
    if (LeakAcc) {
      uint32_t Site = Heap::headerSite(Obj[0]);
      if (Site < LeakSites)
        LeakAcc[Site] += Words * sizeof(Word);
    }
    Scan += Words * sizeof(Word);
  }

  M.Stats.BytesCopied += H.toAlloc() - H.scanStart();
  // Survival + attribution sweep: from-space headers (and nursery headers
  // in generational mode) remain readable until the swap below.
  if (M.Tracer)
    M.Tracer->sweepSurvivors(H, /*Minor=*/false);
  H.endCollection();
}

void PreciseCollector::forwardFieldParallel(Heap &H, WorkerState &W,
                                            Word &Field) {
  // Fields of an unscanned to-space copy always point at from-space: the
  // claimer copied them verbatim, and only this worker (the one scanning
  // the object) ever rewrites them.
  assert(H.inFromSpace(Field) && "tidy field does not point into the heap "
                                 "(stale table or liveness bug)");
  bool Copied;
  size_t Bytes;
  Word New = H.forwardParallel(Field, Copied, Bytes);
  Field = New;
  if (Copied) {
    ++W.ObjectsCopied;
    W.BytesCopied += Bytes;
    // In-copy leak sampling: the CAS winner counts the object exactly
    // once, into its own slab.  Sums are merged by sampleCollection;
    // integer addition is order-independent, so the merged sample matches
    // the serial collector's bit for bit at any worker count.
    if (W.LeakAcc) {
      uint32_t Site = Heap::headerSite(*reinterpret_cast<Word *>(New));
      if (Site < W.LeakSites)
        W.LeakAcc[Site] += Bytes;
    }
    W.Grey.push_back(New);
  }
}

void PreciseCollector::evacuateWorker(VM &M, unsigned WI, size_t NRoots) {
  using Clock = std::chrono::steady_clock;
  auto T0 = Clock::now();
  Heap &H = M.TheHeap;
  WorkerState &W = *Workers[WI];

  // evacuateWorker runs for full collections only, so wiring the leak
  // slab here can never pollute a minor sample.
  W.LeakAcc = M.Tracer ? M.Tracer->leakAccumulator(WI) : nullptr;
  W.LeakSites = W.LeakAcc ? M.Tracer->leakSiteCount() : 0;

  // --- Root slice: roots were deduped (distinct slots), so no other
  // worker writes these words; values still point at from-space.
  size_t Lo = WI * NRoots / NW, Hi = (WI + 1) * NRoots / NW;
  for (size_t I = Lo; I != Hi; ++I) {
    Word *Root = TidyRoots[I];
    if (*Root == 0)
      continue;
    forwardFieldParallel(H, W, *Root);
  }

  // --- Grey scan with work stealing.  Each copied object is pushed by
  // exactly one worker (its claimer) and scanned by exactly one worker
  // (whoever pops it), so every to-space field is written once.
  auto ScanObject = [&](Word Scan) {
    Word *Obj = reinterpret_cast<Word *>(Scan);
    const ir::TypeDesc &D = M.Prog.TypeDescs[Heap::headerDesc(Obj[0])];
    for (unsigned Off : D.PtrOffsets) {
      Word &Field = Obj[1 + Off];
      if (Field != 0)
        forwardFieldParallel(H, W, Field);
    }
    if (D.IsOpenArray) {
      int64_t Len = static_cast<int64_t>(Obj[1]);
      for (int64_t E = 0; E != Len; ++E)
        for (unsigned Off : D.ElemPtrOffsets) {
          Word &Field = Obj[2 + static_cast<size_t>(E) * D.ElemSizeWords +
                            Off];
          if (Field != 0)
            forwardFieldParallel(H, W, Field);
        }
    }
  };

  // Take from the private stack first, then the own public deque.
  auto TakeLocal = [&]() -> Word {
    if (!W.Grey.empty()) {
      Word O = W.Grey.back();
      W.Grey.pop_back();
      return O;
    }
    if (W.PubCount.load(std::memory_order_relaxed) != 0) {
      std::lock_guard<std::mutex> L(W.PubMu);
      if (!W.Pub.empty()) {
        Word O = W.Pub.back();
        W.Pub.pop_back();
        W.PubCount.store(W.Pub.size(), std::memory_order_relaxed);
        return O;
      }
    }
    return 0;
  };

  // Steal up to half of a victim's public queue (oldest entries first).
  auto Steal = [&]() -> Word {
    for (unsigned K = 1; K != NW; ++K) {
      WorkerState &V = *Workers[(WI + K) % NW];
      if (V.PubCount.load(std::memory_order_relaxed) == 0)
        continue;
      std::lock_guard<std::mutex> L(V.PubMu);
      if (V.Pub.empty())
        continue;
      size_t Take = (V.Pub.size() + 1) / 2;
      for (size_t J = 1; J != Take; ++J) {
        W.Grey.push_back(V.Pub.front());
        V.Pub.pop_front();
      }
      Word O = V.Pub.front();
      V.Pub.pop_front();
      V.PubCount.store(V.Pub.size(), std::memory_order_relaxed);
      return O;
    }
    return 0;
  };

  // Donate the oldest half of a deep private stack when our public queue
  // is empty and someone might be starving.
  auto MaybeDonate = [&] {
    if (NW == 1 || W.Grey.size() <= 16 ||
        W.PubCount.load(std::memory_order_relaxed) != 0)
      return;
    size_t Give = W.Grey.size() / 2;
    std::lock_guard<std::mutex> L(W.PubMu);
    W.Pub.insert(W.Pub.end(), W.Grey.begin(),
                 W.Grey.begin() + static_cast<ptrdiff_t>(Give));
    W.Grey.erase(W.Grey.begin(), W.Grey.begin() + static_cast<ptrdiff_t>(Give));
    W.PubCount.store(W.Pub.size(), std::memory_order_relaxed);
  };

  // Termination: a worker only goes idle with its own queues empty and
  // nothing stealable in sight, and only non-idle workers can publish new
  // work — so "all NW idle at once" is stable and means global quiescence.
  bool Idle = false;
  for (;;) {
    Word Obj = TakeLocal();
    if (Obj == 0)
      Obj = Steal();
    if (Obj != 0) {
      if (Idle) {
        NIdle.fetch_sub(1);
        Idle = false;
      }
      MaybeDonate();
      ScanObject(Obj);
      continue;
    }
    if (!Idle) {
      NIdle.fetch_add(1);
      Idle = true;
    }
    if (NIdle.load() == NW)
      break;
    std::this_thread::yield();
  }

  W.CopyNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - T0)
          .count());
}

void PreciseCollector::traceFullParallel(VM &M) {
  Heap &H = M.TheHeap;
  H.beginCollection();

  // RootsTraced counts table-described root slots, like the serial
  // collector — before deduplication, so the total matches serial at any N.
  M.Stats.RootsTraced += TidyRoots.size();
  // Dedup: the same stack word can carry two table entries (caller FP slot
  // and callee AP slot).  The serial loop tolerates duplicates by checking
  // inToSpace on the second visit; in parallel a duplicate would be a
  // write-write race between two workers' root slices, so dedup up front.
  std::sort(TidyRoots.begin(), TidyRoots.end());
  TidyRoots.erase(std::unique(TidyRoots.begin(), TidyRoots.end()),
                  TidyRoots.end());

  NIdle.store(0);
  for (auto &W : Workers) {
    W->Grey.clear();
    W->Pub.clear();
    W->PubCount.store(0, std::memory_order_relaxed);
  }
  size_t NRoots = TidyRoots.size();
  Pool->run([&](unsigned WI) { evacuateWorker(M, WI, NRoots); });
  assert(H.toAlloc() - H.scanStart() ==
             [&] {
               uint64_t B = 0;
               for (auto &W : Workers)
                 B += W->BytesCopied;
               return B;
             }() &&
         "parallel copy byte accounting does not cover to-space");

  // ObjectsCopied/BytesCopied flush in worker order (totals are
  // N-independent; the per-worker split is the load-balance view).
  for (auto &W : Workers) {
    M.Stats.ObjectsCopied += W->ObjectsCopied;
    M.Stats.BytesCopied += W->BytesCopied;
  }
  if (CurEv)
    for (unsigned I = 0; I != NW && I != obs::MaxGcWorkers; ++I)
      CurEv->WorkerCopyNanos[I] = Workers[I]->CopyNanos;

  // Survival + attribution sweep: from-space headers (and nursery headers
  // in generational mode) remain readable until the swap below.
  if (M.Tracer)
    M.Tracer->sweepSurvivors(H, /*Minor=*/false);
  H.endCollection();
}

void PreciseCollector::traceMinor(VM &M) {
  Heap &H = M.TheHeap;
  assert(H.minorHeadroomOk() &&
         "minor collection started without promotion headroom");
  H.beginMinorCollection();

  // The remembered set rebuilt for the next cycle: surviving old→young
  // edges plus any created by promotion during this collection.
  std::unordered_set<Word> NewRem;

  // Forwards a field's target out of the nursery if it is young.  Fields
  // of *old-space* objects that end up pointing at a survivor are
  // old→young edges and must enter the new remembered set.
  auto FwdField = [&](Word &Field, bool InOldObject) {
    if (H.inNursery(Field))
      Field = H.forwardYoung(Field);
    if (InOldObject && H.inNurseryTo(Field))
      NewRem.insert(reinterpret_cast<Word>(&Field));
  };

  // --- Roots: the same table-driven tidy roots as a full collection...
  for (Word *Root : TidyRoots) {
    ++M.Stats.RootsTraced;
    Word V = *Root;
    if (V == 0)
      continue;
    assert((H.inOld(V) || H.inNursery(V) || H.inNurseryTo(V)) &&
           "tidy root does not point into the heap (stale table or "
           "liveness bug)");
    if (H.inNursery(V))
      *Root = H.forwardYoung(V);
  }
  // ...plus every remembered old-space slot that still holds a young
  // pointer (the barrier records slots eagerly; stores since may have
  // overwritten them).
  for (Word Slot : H.remSet()) {
    Word &Field = *reinterpret_cast<Word *>(Slot);
    if (H.inNursery(Field))
      Field = H.forwardYoung(Field);
  }

  // --- Cheney scan over both target regions: the survivor half and the
  // region of old space filled by promotion.  Scanning either can grow
  // both, so alternate until neither advances.
  auto ScanObject = [&](Word Scan, bool InOldObject) -> size_t {
    // Every scanned object was evacuated (survivor half or promotion).
    ++M.Stats.ObjectsCopied;
    Word *Obj = reinterpret_cast<Word *>(Scan);
    const ir::TypeDesc &D =
        M.Prog.TypeDescs[Heap::headerDesc(Obj[0])];
    for (unsigned Off : D.PtrOffsets)
      FwdField(Obj[1 + Off], InOldObject);
    size_t Words = 1 + D.SizeWords;
    if (D.IsOpenArray) {
      int64_t Len = static_cast<int64_t>(Obj[1]);
      for (int64_t E = 0; E != Len; ++E)
        for (unsigned Off : D.ElemPtrOffsets)
          FwdField(Obj[2 + static_cast<size_t>(E) * D.ElemSizeWords + Off],
                   InOldObject);
      Words += static_cast<size_t>(Len) * D.ElemSizeWords;
    }
    return Words * sizeof(Word);
  };

  Word NurScan = H.nurScanStart();
  Word OldScan = H.oldScanStart();
  while (NurScan < H.nurToAlloc() || OldScan < H.oldAllocPtr()) {
    while (NurScan < H.nurToAlloc())
      NurScan += ScanObject(NurScan, /*InOldObject=*/false);
    while (OldScan < H.oldAllocPtr())
      OldScan += ScanObject(OldScan, /*InOldObject=*/true);
  }

  M.Stats.BytesCopied += (H.nurToAlloc() - H.nurScanStart()) +
                         (H.oldAllocPtr() - H.oldScanStart());

  if (Opts.CrossCheck)
    crosscheckAfterMinor(M);

  // Remembered-set rebuild (timed as its own phase): surviving entries of
  // the old set — slots still holding a young pointer once their target
  // moved to the survivor half — join the edges recorded during the scan.
  using Clock = std::chrono::steady_clock;
  Clock::time_point RemT0;
  if (CurEv)
    RemT0 = Clock::now();
  for (Word Slot : H.remSet()) {
    Word V = *reinterpret_cast<const Word *>(Slot);
    if (H.inNurseryTo(V))
      NewRem.insert(Slot);
  }
  H.remSet().swap(NewRem);
  if (CurEv)
    CurEv->Phases.RemsetRebuild = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             RemT0)
            .count());

  // Survival + attribution sweep: evacuated nursery-half headers remain
  // readable until the swap below.
  if (M.Tracer)
    M.Tracer->sweepSurvivors(H, /*Minor=*/true);
  H.endMinorCollection();
}

void PreciseCollector::crosscheckAfterMinor(VM &M) {
  // Full-heap reachability verification: starting from every tidy root,
  // no reachable pointer may still target the evacuated nursery half — a
  // violation means a live object was missed via a stale remembered set.
  // The traversal also exercises objectWords on every reachable object,
  // asserting each open-array length round-trips its allocation size.
  Heap &H = M.TheHeap;
  std::unordered_set<Word> Visited;
  std::vector<Word> Work;
  auto Push = [&](Word V) {
    if (V == 0)
      return;
    if (H.inNursery(V)) {
      std::fprintf(stderr,
                   "gc cross-check: reachable object left in the evacuated "
                   "nursery half (stale remembered set)\n");
      std::abort();
    }
    if (!H.inOld(V) && !H.inNurseryTo(V))
      return;
    if (Visited.insert(V).second)
      Work.push_back(V);
  };
  for (Word *Root : TidyRoots)
    Push(*Root);
  while (!Work.empty()) {
    Word Obj = Work.back();
    Work.pop_back();
    const Word *P = reinterpret_cast<const Word *>(Obj);
    const ir::TypeDesc &D = H.descOf(Obj);
    (void)H.objectWords(Obj); // Asserts the header is sane.
    for (unsigned Off : D.PtrOffsets)
      Push(P[1 + Off]);
    if (D.IsOpenArray) {
      int64_t Len = static_cast<int64_t>(P[1]);
      for (int64_t E = 0; E != Len; ++E)
        for (unsigned Off : D.ElemPtrOffsets)
          Push(P[2 + static_cast<size_t>(E) * D.ElemSizeWords + Off]);
    }
  }
}

void PreciseCollector::collect(VM &M) {
  using Clock = std::chrono::steady_clock;
  auto Nanos = [](Clock::time_point A, Clock::time_point B) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(B - A).count());
  };
  auto T0 = Clock::now();

  // The VM begins the observability event before invoking us; fill in the
  // per-phase breakdown as each phase completes.  Extra clock reads happen
  // only while an event is in flight.  The timing skeleton (T0 → walk → T1
  // → underive → trace → copy → rederive → T2) is shared by the serial and
  // parallel paths, so the phase-partition invariant — phase nanos sum
  // exactly to the collector span at every N — holds by construction.
  CurEv = M.Tracer ? M.Tracer->current() : nullptr;
  if (CurEv)
    CurEv->Workers = NW;

  bool Minor = M.TheHeap.generational() && M.RequestedGc == GcKind::Minor;

  TidyRoots.clear();
  for (auto &W : Workers)
    W->resetForCollection();

  // --- Stack tracing: locate tables, decode, gather roots (timed
  // separately; this is §6.3's measured quantity).  A minor collection
  // gathers the identical root set — only the trace differs.  Live
  // suspended threads are dealt round-robin to the workers; each thread's
  // frames are walked by exactly one worker, preserving the §3 callee-
  // before-caller ordering of its derived entries inside that worker's
  // arena.
  std::vector<std::pair<ThreadContext *, uint32_t>> Walks;
  for (size_t TI = 0; TI != M.Threads.size(); ++TI) {
    ThreadContext &T = *M.Threads[TI];
    if (!T.Live)
      continue; // Finished threads have no frames to scan.
    uint32_t TablePC = M.SuspendPCs.empty() ? 0 : M.SuspendPCs[TI];
    if (TablePC == SentinelPC || TablePC == 0)
      continue;
    Walks.emplace_back(&T, TablePC);
  }
  if (NW == 1) {
    for (auto &[T, TablePC] : Walks)
      walkThread(M, *Workers[0], *T, TablePC);
  } else {
    if (!Pool)
      Pool = std::make_unique<GcWorkerPool>(NW - 1);
    Pool->run([&](unsigned WI) {
      auto WT0 = Clock::now();
      WorkerState &W = *Workers[WI];
      for (size_t I = WI; I < Walks.size(); I += NW)
        walkThread(M, W, *Walks[I].first, Walks[I].second);
      W.TraceNanos = Nanos(WT0, Clock::now());
    });
  }

  // Merge + flush in worker order: the root set, walk-stat deltas, and the
  // per-worker trace spans.  At N=1 this reproduces the serial collector's
  // exact root ordering and stat totals.
  for (auto &W : Workers)
    TidyRoots.insert(TidyRoots.end(), W->Roots.begin(), W->Roots.end());
  for (unsigned W : M.Prog.GlobalPtrWords)
    TidyRoots.push_back(&M.Globals[W]);
  for (auto &W : Workers) {
    M.Stats.FramesTraced += W->FramesTraced;
    M.Stats.DecodeCacheHits += W->DecodeCacheHits;
    M.Stats.DecodeCacheMisses += W->DecodeCacheMisses;
    M.Stats.DecodeBytesSkipped += W->DecodeBytesSkipped;
    // Evacuation counters flush after the trace phase below; reset the
    // walk deltas so the copy flush does not double-count.
    W->FramesTraced = W->DecodeCacheHits = W->DecodeCacheMisses = 0;
    W->DecodeBytesSkipped = 0;
  }

  auto T1 = Clock::now();
  if (CurEv) {
    CurEv->Phases.StackTrace = Nanos(T0, T1);
    if (NW == 1)
      CurEv->WorkerTraceNanos[0] = CurEv->Phases.StackTrace;
    else
      for (unsigned I = 0; I != NW && I != obs::MaxGcWorkers; ++I)
        CurEv->WorkerTraceNanos[I] = Workers[I]->TraceNanos;
  }
  auto Mark = T1;

  // --- Phase 1 (§3): un-derive, innermost frames first, leaving E in each
  // derived location.  Worker arenas are visited in worker order; entries
  // within an arena are in walk order, so each thread's frames keep the
  // required callee-before-caller ordering (threads' derived values are
  // independent of each other).
  for (auto &WP : Workers) {
    WorkerState &W = *WP;
    for (size_t K = 0; K != W.DerivedUsed; ++K) {
      const DerivedEntry &E = W.Derived[K];
      Word V = *E.Target;
      for (const auto &[BaseLoc, Coeff] : E.Bases)
        V -= static_cast<Word>(static_cast<int64_t>(Coeff)) * *BaseLoc;
      *E.Target = V;
      ++M.Stats.DerivedAdjusted;
    }
  }

  if (CurEv) {
    auto Now = Clock::now();
    CurEv->Phases.Underive = Nanos(Mark, Now);
    Mark = Now;
  }

  if (Minor) {
    ++M.Stats.MinorCollections;
    traceMinor(M);
  } else if (NW == 1) {
    traceFull(M);
  } else {
    traceFullParallel(M);
  }

  if (CurEv) {
    auto Now = Clock::now();
    // traceMinor timed its remset rebuild separately; the rest of the
    // evacuation span is the copy phase.
    CurEv->Phases.Copy = Nanos(Mark, Now) - CurEv->Phases.RemsetRebuild;
    if (NW == 1 && !Minor)
      CurEv->WorkerCopyNanos[0] = CurEv->Phases.Copy;
    Mark = Now;
  }

  // --- Phase 2 of the update (§3): re-derive from the new base values, in
  // exactly the reverse order.
  for (size_t WI = Workers.size(); WI-- > 0;) {
    WorkerState &W = *Workers[WI];
    for (size_t K = W.DerivedUsed; K-- > 0;) {
      const DerivedEntry &E = W.Derived[K];
      Word V = *E.Target;
      for (const auto &[BaseLoc, Coeff] : E.Bases)
        V += static_cast<Word>(static_cast<int64_t>(Coeff)) * *BaseLoc;
      *E.Target = V;
    }
  }

  // Leak-detector sample: workers are joined, so merging the per-worker
  // in-copy accumulators here is single-threaded.  The copy loops above
  // already attributed every evacuated object's bytes to its site, so the
  // sample costs O(sites), not O(live).
  if (M.Tracer)
    M.Tracer->sampleCollection(M.Stats.Collections, Minor);

  auto T2 = Clock::now();
  if (CurEv) {
    CurEv->Phases.Rederive = Nanos(Mark, T2);
    CurEv = nullptr; // The VM commits the event after we return.
  }
  M.Stats.StackTraceNanos += Nanos(T0, T1);
  uint64_t Total = Nanos(T0, T2);
  M.Stats.GcNanos += Total;
  if (Minor)
    M.Stats.MinorGcNanos += Total;
}

} // namespace

void gc::installPreciseCollector(VM &M, const CollectorOptions &Opts) {
  // The collector instance is shared by every collection of this VM: the
  // decoded-point cache and the root/derived buffers persist, so only the
  // first collections pay decode allocations.
  auto State = std::make_shared<PreciseCollector>(Opts);
  M.Collector = [State](VM &Inner) { State->collect(Inner); };
}

//===----------------------------------------------------------------------===//
// Conservative (ambiguous roots) baseline
//===----------------------------------------------------------------------===//

ConservativeStats gc::conservativeTrace(VM &M,
                                        std::unordered_set<Word> *MarkedOut) {
  using Clock = std::chrono::steady_clock;
  auto T0 = Clock::now();
  ConservativeStats S;

  Heap &H = M.TheHeap;
  // Hash-based mark set: the conservative baseline should pay for its lack
  // of liveness information, not for red-black-tree rebalancing.
  std::unordered_set<Word> Marked;
  Marked.reserve(1024);
  std::vector<Word> Work;
  Work.reserve(256);

  auto Consider = [&](Word V) {
    ++S.WordsScanned;
    if (!H.plausibleObject(V))
      return;
    ++S.CandidatePointers;
    if (Marked.insert(V).second)
      Work.push_back(V);
  };

  for (const auto &T : M.Threads) {
    if (!T->Live)
      continue;
    // The whole used portion of the stack is ambiguous root material; the
    // conservative collector has no liveness information.
    uint32_t Top = T->FP;
    const CompiledFunction &F = M.Prog.Funcs[M.Prog.funcOfPC(T->PC)];
    Top += F.FrameWords;
    for (uint32_t W = 0; W < Top && W < T->StackWords; ++W)
      Consider(T->Stack[W]);
    for (unsigned R = 0; R != NumRegs; ++R)
      Consider(T->R[R]);
  }
  for (Word G : M.Globals)
    Consider(G);

  while (!Work.empty()) {
    Word Obj = Work.back();
    Work.pop_back();
    ++S.ObjectsReached;
    const ir::TypeDesc &D = H.descOf(Obj);
    const Word *P = reinterpret_cast<const Word *>(Obj);
    for (unsigned Off : D.PtrOffsets) {
      Word V = P[1 + Off];
      if (H.plausibleObject(V) && Marked.insert(V).second)
        Work.push_back(V);
    }
    if (D.IsOpenArray) {
      int64_t Len = static_cast<int64_t>(P[1]);
      for (int64_t E = 0; E != Len; ++E)
        for (unsigned Off : D.ElemPtrOffsets) {
          Word V = P[2 + static_cast<size_t>(E) * D.ElemSizeWords + Off];
          if (H.plausibleObject(V) && Marked.insert(V).second)
            Work.push_back(V);
        }
    }
  }

  auto T1 = Clock::now();
  S.Nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0).count());
  if (MarkedOut)
    *MarkedOut = std::move(Marked);
  return S;
}
