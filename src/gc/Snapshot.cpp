//===- gc/Snapshot.cpp ----------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/Snapshot.h"

#include "gc/Collector.h"
#include "gcmaps/GcTables.h"
#include "gcmaps/MapIndex.h"
#include "obs/Trace.h"
#include "support/Provenance.h"

#include <unordered_map>
#include <unordered_set>

using namespace mgc;
using namespace mgc::gc;
using namespace mgc::vm;

namespace {

constexpr uint32_t SentinelPC = 0xFFFFFFFFu;

/// One enumerated root: the record's provenance plus the tidy pointer it
/// holds (for derived values: the anchor base object's pointer).
struct RootVal {
  obs::HeapSnapshot::Root Rec;
  Word Value = 0;
};

Word *resolveLoc(const vm::Location &L, uint32_t FP, uint32_t AP,
                 ThreadContext &T, Word **RegHome) {
  switch (L.K) {
  case vm::Location::Kind::FpSlot:
    return &T.Stack[FP + static_cast<unsigned>(L.Index)];
  case vm::Location::Kind::ApSlot:
    return &T.Stack[AP + static_cast<unsigned>(L.Index)];
  case vm::Location::Kind::Reg:
    return RegHome[L.Index];
  case vm::Location::Kind::None:
    break;
  }
  return nullptr;
}

obs::HeapSnapshot::RootKind kindOf(const vm::Location &L) {
  switch (L.K) {
  case vm::Location::Kind::ApSlot:
    return obs::HeapSnapshot::RootKind::ApSlot;
  case vm::Location::Kind::Reg:
    return obs::HeapSnapshot::RootKind::Reg;
  default:
    return obs::HeapSnapshot::RootKind::FpSlot;
  }
}

/// The provenance-keeping mirror of the collector's walkThread: same
/// return-address chain, same register reconstruction, same ambiguous
/// derivation selection — but through the reference decoder (capture is
/// rare; the decoded-point cache stays untouched) and recording where
/// every root lives.
bool walkThreadRoots(VM &M, size_t TI, std::vector<RootVal> &Roots,
                     std::string &Err) {
  ThreadContext &T = *M.Threads[TI];
  Word *RegHome[NumRegs];
  for (unsigned R = 0; R != NumRegs; ++R)
    RegHome[R] = &T.R[R];

  uint32_t PC = M.SuspendPCs[TI];
  uint32_t FP = T.FP;
  uint32_t AP = T.AP;
  uint32_t Frame = 0;

  while (true) {
    unsigned FuncIdx = M.Prog.funcOfPC(PC - 1);
    const CompiledFunction &F = M.Prog.Funcs[FuncIdx];
    const gcmaps::EncodedFuncMaps &Maps = M.Prog.Maps[FuncIdx];

    int Ordinal = gcmaps::findGcPoint(Maps, PC);
    if (Ordinal < 0) {
      Err = "snapshot: thread " + std::to_string(TI) +
            " is suspended at pc " + std::to_string(PC) +
            ", which is not a gc-point of " + F.Name;
      return false;
    }
    gcmaps::GcPointInfo Info =
        gcmaps::decodeGcPoint(Maps, static_cast<unsigned>(Ordinal));

    auto Provenance = [&](obs::HeapSnapshot::RootKind Kind, int32_t Index) {
      obs::HeapSnapshot::Root R;
      R.Kind = Kind;
      R.Thread = static_cast<uint32_t>(TI);
      R.Frame = Frame;
      R.Func = FuncIdx;
      R.Index = Index;
      return R;
    };

    for (const vm::Location &L : Info.LiveSlots) {
      RootVal R;
      R.Rec = Provenance(kindOf(L), L.Index);
      R.Value = *resolveLoc(L, FP, AP, T, RegHome);
      Roots.push_back(R);
    }
    for (unsigned Rg = 0; Rg != NumRegs; ++Rg)
      if (Info.RegMask & (1u << Rg)) {
        RootVal R;
        R.Rec = Provenance(obs::HeapSnapshot::RootKind::Reg,
                           static_cast<int32_t>(Rg));
        R.Value = *RegHome[Rg];
        Roots.push_back(R);
      }

    for (const gcmaps::DerivationRecord &Rec : Info.Derivs) {
      const std::vector<gcmaps::BaseRef> *Bases = &Rec.Bases;
      if (Rec.Ambiguous) {
        Word PathValue = *resolveLoc(Rec.PathVar, FP, AP, T, RegHome);
        const gcmaps::DerivationAlt *Chosen = gcmaps::findDerivationAlt(
            Rec, static_cast<int32_t>(PathValue));
        if (!Chosen) {
          Err = "snapshot: path variable selects no known derivation in " +
                F.Name;
          return false;
        }
        Bases = &Chosen->Bases;
      }
      // A derived value introduces no reachability of its own: the tables
      // keep its bases live (§3), so the record is pure provenance.  The
      // anchor is the first base holding a tidy pointer.
      for (const gcmaps::BaseRef &B : *Bases) {
        Word V = *resolveLoc(B.Loc, FP, AP, T, RegHome);
        if (V == 0)
          continue;
        RootVal R;
        R.Rec = Provenance(obs::HeapSnapshot::RootKind::Derived,
                           Rec.Target.Index);
        R.Value = V;
        Roots.push_back(R);
        break;
      }
    }

    for (size_t K = 0; K != F.SavedRegs.size(); ++K)
      RegHome[F.SavedRegs[K]] = &T.Stack[FP + K];

    uint32_t RetPC = static_cast<uint32_t>(T.Stack[FP - 1]);
    if (RetPC == SentinelPC)
      break;
    uint32_t CallerFP = static_cast<uint32_t>(T.Stack[FP - 2]);
    uint32_t CallerAP = static_cast<uint32_t>(T.Stack[FP - 3]);
    PC = RetPC;
    FP = CallerFP;
    AP = CallerAP;
    ++Frame;
  }
  return true;
}

/// Enumerates every root with provenance: each live thread's frames
/// (innermost first) when \p WalkStacks, then the global pointer words.
bool collectRoots(VM &M, bool WalkStacks, std::vector<RootVal> &Roots,
                  std::string &Err) {
  Roots.clear();
  if (WalkStacks) {
    for (size_t TI = 0; TI != M.Threads.size(); ++TI) {
      ThreadContext &T = *M.Threads[TI];
      if (!T.Live || TI >= M.SuspendPCs.size())
        continue;
      uint32_t TablePC = M.SuspendPCs[TI];
      if (TablePC == SentinelPC || TablePC == 0)
        continue;
      if (!walkThreadRoots(M, TI, Roots, Err))
        return false;
    }
  }
  for (unsigned W : M.Prog.GlobalPtrWords) {
    RootVal R;
    R.Rec.Kind = obs::HeapSnapshot::RootKind::Global;
    R.Rec.Func = obs::NoFunc;
    R.Rec.Index = static_cast<int32_t>(W);
    R.Value = M.Globals[W];
    Roots.push_back(R);
  }
  return true;
}

/// Applies \p Fn to every non-NIL pointer field of \p Obj with the field's
/// payload word index (header = word 0).
template <typename FnT>
void forEachField(const VM &M, Word Obj, FnT Fn) {
  const Word *P = reinterpret_cast<const Word *>(Obj);
  const ir::TypeDesc &D = M.Prog.TypeDescs[Heap::headerDesc(P[0])];
  for (unsigned Off : D.PtrOffsets) {
    if (P[1 + Off] != 0)
      Fn(1 + Off, P[1 + Off]);
  }
  if (D.IsOpenArray) {
    int64_t Len = static_cast<int64_t>(P[1]);
    for (int64_t E = 0; E != Len; ++E)
      for (unsigned Off : D.ElemPtrOffsets) {
        size_t Slot = 2 + static_cast<size_t>(E) * D.ElemSizeWords + Off;
        if (P[Slot] != 0)
          Fn(Slot, P[Slot]);
      }
  }
}

} // namespace

bool gc::captureHeapSnapshot(VM &M, obs::HeapSnapshot &Out, bool WalkStacks,
                             std::string &Err) {
  Heap &H = M.TheHeap;
  Out.clear();
  Out.Program = M.Prog.Name;
  Out.ToolVersion = support::ToolVersion;
  Out.BuildFlags = support::buildFlags();
  Out.GenGc = H.generational();
  Out.StacksWalked = WalkStacks;
  Out.Collections = M.Stats.Collections;
  Out.FuncNames.reserve(M.Prog.Funcs.size());
  for (const CompiledFunction &F : M.Prog.Funcs)
    Out.FuncNames.push_back(F.Name);
  Out.TypeNames.reserve(M.Prog.TypeDescs.size());
  for (const ir::TypeDesc &D : M.Prog.TypeDescs)
    Out.TypeNames.push_back(D.Name);
  Out.Sites.reserve(M.Prog.SiteTab.Sites.size());
  for (const gcmaps::AllocSite &St : M.Prog.SiteTab.Sites)
    Out.Sites.push_back({St.Func, St.Line, St.Col, St.Desc});

  std::vector<RootVal> Roots;
  if (!collectRoots(M, WalkStacks, Roots, Err))
    return false;

  // --- Pass 1: breadth-first discovery.  Node ids are discovery order, so
  // a deterministic program yields a bit-identical snapshot every run.
  std::unordered_map<Word, uint32_t> NodeId;
  NodeId.reserve(1024);
  std::vector<Word> Addrs; // Node id -> address; doubles as the BFS queue.
  auto Discover = [&](Word V) {
    auto [It, New] = NodeId.emplace(V, static_cast<uint32_t>(Addrs.size()));
    if (New)
      Addrs.push_back(V);
    return It->second;
  };

  for (RootVal &R : Roots) {
    if (R.Value == 0)
      continue;
    if (!H.plausibleObject(R.Value)) {
      Err = "snapshot: root does not point at a heap object (stale table "
            "or liveness bug)";
      return false;
    }
    R.Rec.Node = Discover(R.Value);
    Out.Roots.push_back(R.Rec);
  }
  for (size_t Head = 0; Head != Addrs.size(); ++Head) {
    bool Ok = true;
    forEachField(M, Addrs[Head], [&](size_t, Word V) {
      if (!H.plausibleObject(V))
        Ok = false;
      else
        Discover(V);
    });
    if (!Ok) {
      Err = "snapshot: heap field does not point at a heap object";
      return false;
    }
  }

  // --- Pass 2: emit nodes in id order with contiguous (CSR) edge runs;
  // every target already has an id.
  Out.Nodes.reserve(Addrs.size());
  for (Word A : Addrs) {
    obs::HeapSnapshot::Node N;
    N.Gen = H.inNursery(A) ? 1 : 0;
    N.OffsetWords =
        (A - (N.Gen ? H.nurseryBase() : H.fromSpaceBase())) / sizeof(Word);
    N.Desc = static_cast<uint32_t>(
        Heap::headerDesc(*reinterpret_cast<const Word *>(A)));
    N.ShallowBytes =
        static_cast<uint32_t>(H.objectWords(A) * sizeof(Word));
    // Site and collection-count age are header-borne (vm/Heap.h), so
    // attribution is exact and tracer-independent; the header sentinel
    // (instructions predating site linking, or ids past the 23-bit field)
    // maps to the snapshot's NoSite.
    Word Hd = *reinterpret_cast<const Word *>(A);
    uint32_t S = Heap::headerSite(Hd);
    N.Site = S == Heap::NoSiteHdr ? obs::NoSite : S;
    N.Age = Heap::headerAge(Hd);
    N.FirstEdge = static_cast<uint32_t>(Out.Edges.size());
    forEachField(M, A, [&](size_t Slot, Word V) {
      Out.Edges.push_back({static_cast<uint32_t>(Slot), NodeId[V]});
    });
    N.NumEdges = static_cast<uint32_t>(Out.Edges.size()) - N.FirstEdge;
    Out.Nodes.push_back(N);
  }
  return true;
}

bool gc::crosscheckSnapshot(VM &M, const obs::HeapSnapshot &S,
                            bool WalkStacks, std::string &Err) {
  Heap &H = M.TheHeap;

  // --- Independent precise recount: a plain mark traversal (no snapshot
  // structures, depth-first, separate visited set) must see exactly the
  // snapshot's node count and byte total.
  std::vector<RootVal> Roots;
  if (!collectRoots(M, WalkStacks, Roots, Err))
    return false;
  std::unordered_set<Word> Marked;
  Marked.reserve(S.Nodes.size() * 2 + 16);
  std::vector<Word> Work;
  auto Push = [&](Word V) {
    if (V != 0 && Marked.insert(V).second)
      Work.push_back(V);
  };
  for (const RootVal &R : Roots)
    Push(R.Value);
  uint64_t Bytes = 0;
  while (!Work.empty()) {
    Word Obj = Work.back();
    Work.pop_back();
    Bytes += H.objectWords(Obj) * sizeof(Word);
    forEachField(M, Obj, [&](size_t, Word V) { Push(V); });
  }
  if (Marked.size() != S.Nodes.size() || Bytes != S.totalBytes()) {
    Err = "snapshot cross-check: snapshot has " +
          std::to_string(S.Nodes.size()) + " nodes / " +
          std::to_string(S.totalBytes()) +
          " bytes, precise re-trace found " +
          std::to_string(Marked.size()) + " / " + std::to_string(Bytes);
    return false;
  }

  // --- Conservative superset: precise ⊆ conservative (the paper's
  // ordering); any snapshot node outside the conservative mark set means
  // one of the two traversals is wrong.
  std::unordered_set<Word> Cons;
  conservativeTrace(M, &Cons);
  for (size_t I = 0; I != S.Nodes.size(); ++I) {
    const obs::HeapSnapshot::Node &N = S.Nodes[I];
    Word A = (N.Gen ? H.nurseryBase() : H.fromSpaceBase()) +
             N.OffsetWords * sizeof(Word);
    if (!Cons.count(A)) {
      Err = "snapshot cross-check: node #" + std::to_string(I) +
            " is outside the conservative-trace superset";
      return false;
    }
  }
  return true;
}
