//===- gc/Collector.h - Precise compacting collection -----------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The table-driven collectors:
///
///  - installPreciseCollector: a two-space copying (Cheney) collector whose
///    root enumeration is driven entirely by the compile-time tables.  The
///    stack walk extracts return addresses, maps each to its gc-point
///    (§3's pc→tables search), reconstructs register contents from
///    callee-save areas, and applies the derived-value update protocol:
///    un-derive (callee before caller, §3's ordering), trace and update
///    every tidy root, copy/scan, then re-derive in exactly reverse order.
///
///  - conservativeTrace: an ambiguous-roots baseline in the style of
///    Boehm-Weiser (§7): every word of every stack, register file, and the
///    global area is tested against the heap; no object moves.  Used by
///    the ablation benchmarks to ground the precise-vs-conservative
///    comparison.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_GC_COLLECTOR_H
#define MGC_GC_COLLECTOR_H

#include "vm/VM.h"

#include <cstdint>
#include <unordered_set>

namespace mgc {
namespace gc {

/// How the precise collector resolves gc-point tables.
struct CollectorOptions {
  /// Use the load-time FuncMapIndex + decoded-point cache (MapIndex.h).
  /// When false, every frame decodes through the reference walk-from-start
  /// decoder — the §6.3 measured artifact (`--no-map-index` in mgc).
  bool UseMapIndex = true;
  /// Re-decode every gc-point through the reference decoder as well and
  /// abort on any disagreement with the indexed/cached result.
  bool CrossCheck = false;
  /// Decoded-point cache lines (power of two).
  unsigned CacheLines = 64;
  /// GC worker threads for the stop-the-world root walk and full-copy
  /// evacuation (--gc-threads).  1 (the default) is the serial collector,
  /// bit-identical to the pre-parallel implementation on every GC
  /// observable; N > 1 splits the stack walk round-robin across workers
  /// (each with its own decoded-point cache, so the decode path stays
  /// allocation-free) and runs the Cheney copy over per-worker
  /// work-stealing scan queues.  Clamped to [1, obs::MaxGcWorkers].
  unsigned Threads = 1;
};

/// Installs the precise copying collector on \p M.  The collector's decode
/// state (point cache, root/derived buffers) persists across collections,
/// so steady-state collections perform no decode allocations.
void installPreciseCollector(vm::VM &M, const CollectorOptions &Opts = {});

/// Statistics of a conservative (non-moving) trace.
struct ConservativeStats {
  uint64_t WordsScanned = 0;
  uint64_t CandidatePointers = 0;
  uint64_t ObjectsReached = 0;
  uint64_t Nanos = 0;
};

/// Scans every word of all thread stacks, register files, and globals as a
/// potential pointer and marks transitively reachable objects, without
/// moving anything.  Returns counts and timing.  When \p MarkedOut is
/// non-null the reached object addresses are also copied into it (the
/// snapshot cross-check's superset test).
ConservativeStats conservativeTrace(vm::VM &M,
                                    std::unordered_set<vm::Word> *MarkedOut =
                                        nullptr);

} // namespace gc
} // namespace mgc

#endif // MGC_GC_COLLECTOR_H
