//===- driver/Compiler.h - Compilation pipeline -----------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the compiler: MG source in, linked Program
/// out.  Options select the optimization level, whether gc tables are
/// emitted, the ambiguous-derivation strategy (path variables vs path
/// splitting, §4/Fig. 2), threaded-mode loop polls (§5.3), and the CISC
/// addressing fold (§6.2's indirect references).
///
//===----------------------------------------------------------------------===//

#ifndef MGC_DRIVER_COMPILER_H
#define MGC_DRIVER_COMPILER_H

#include "support/Diagnostics.h"
#include "vm/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace mgc {
namespace driver {

enum class Disambiguation {
  PathVariables, ///< §4's chosen scheme: a runtime path variable.
  PathSplitting, ///< Figure 2: duplicate the loop per derivation path.
};

struct CompilerOptions {
  int OptLevel = 2; ///< 0 or 2.
  bool GcTables = true;
  bool CiscFold = false;
  bool ThreadedPolls = false;
  /// §5.3's interprocedural refinement: calls to procedures that can never
  /// trigger a collection are not gc-points (fewer, smaller tables).
  bool InterprocGcPoints = false;
  /// Generational support: emit a write barrier after every store of a
  /// tidy pointer through a possibly-heap address.  Required for running
  /// under VMOptions::GenGc; harmless (no-op barriers) otherwise.
  bool WriteBarriers = false;
  Disambiguation Mode = Disambiguation::PathVariables;
};

struct CompileResult {
  std::unique_ptr<vm::Program> Prog; ///< Null on error.
  Diagnostics Diags;
  /// IR dump after optimization (before emission), for tests and tools.
  std::string IRDump;
};

/// Compiles one MG module.
CompileResult compile(const std::string &Source,
                      const CompilerOptions &Options = CompilerOptions());

/// Compiles one source under several option sets (the differential
/// fuzzer's mode matrix).  Results are positionally parallel to
/// \p Options.  Each configuration runs the full pipeline from its own
/// parse: Sema and Lower annotate the AST in place, so sharing a single
/// front-end pass between configurations would not be sound.
std::vector<CompileResult>
compileBatch(const std::string &Source,
             const std::vector<CompilerOptions> &Options);

} // namespace driver
} // namespace mgc

#endif // MGC_DRIVER_COMPILER_H
