//===- driver/Compiler.cpp ------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "codegen/Emit.h"
#include "frontend/Lower.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "gcsafety/GcSafety.h"
#include "gcsafety/Interproc.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"

#include <algorithm>
#include <cassert>

using namespace mgc;
using namespace mgc::driver;
using namespace mgc::ir;

namespace {

void runCleanupRound(Function &F) {
  bool Changed = true;
  unsigned Rounds = 0;
  while (Changed && Rounds++ < 8) {
    Changed = false;
    Changed |= opt::simplifyCFG(F);
    Changed |= opt::foldConstants(F);
    Changed |= opt::propagateCopiesLocal(F);
    Changed |= opt::cseLocal(F);
    Changed |= opt::eliminateDeadCode(F);
  }
}

void optimizeFunction(Function &F, const CompilerOptions &Options) {
  runCleanupRound(F);

  // The derived-value factories (§2's optimizations).
  bool Changed = true;
  unsigned Rounds = 0;
  while (Changed && Rounds++ < 8) {
    Changed = false;
    Changed |= opt::rewriteVirtualOrigins(F);
    Changed |= opt::hoistLoopInvariants(F);
    if (Options.Mode == Disambiguation::PathSplitting) {
      Changed |= opt::unswitchLoops(F);
    } else {
      Changed |= opt::mergeDiamondTails(F);
      Changed |= opt::hoistInvariantDiamonds(F);
    }
    Changed |= opt::reduceStrength(F);
    if (Changed)
      runCleanupRound(F);
  }
  runCleanupRound(F);
}

} // namespace

CompileResult driver::compile(const std::string &Source,
                              const CompilerOptions &Options) {
  CompileResult Result;

  auto AST = parseModule(Source, Result.Diags);
  if (!AST)
    return Result;
  if (!checkModule(*AST, Result.Diags))
    return Result;

  std::unique_ptr<IRModule> M = lowerModule(*AST);

  if (Options.OptLevel >= 2)
    for (auto &F : M->Functions)
      optimizeFunction(*F, Options);

  unsigned GcPointsElided = 0;
  if (Options.InterprocGcPoints)
    GcPointsElided = gcsafety::elideNonTriggeringGcPoints(*M);

  unsigned LoopPolls = 0;
  if (Options.ThreadedPolls)
    for (auto &F : M->Functions)
      LoopPolls += gcsafety::insertLoopPolls(*F);

  // Barriers go in after optimization so they sit adjacent to the final
  // stores (the optimizer never has to reason about them).
  unsigned WriteBarriers = 0;
  if (Options.WriteBarriers)
    for (auto &F : M->Functions)
      WriteBarriers += gcsafety::insertWriteBarriers(*F);

  if (Options.InterprocGcPoints && Options.ThreadedPolls) {
    // Loop polls are gc-points: functions that gained one may now trigger
    // a collection, so calls to them must be gc-points after all.
    std::vector<bool> Triggers = gcsafety::computeMayTriggerGc(*M);
    for (auto &F : M->Functions)
      for (auto &BB : F->Blocks)
        for (ir::Instr &I : BB->Instrs)
          if (I.Op == ir::Opcode::Call && I.NoGcCallee &&
              Triggers[static_cast<size_t>(I.Index)]) {
            I.NoGcCallee = false;
            --GcPointsElided;
          }
  }

  std::vector<gcsafety::GcSafetyInfo> Safety(M->Functions.size());
  unsigned PathVars = 0, PathAssigns = 0;
  if (Options.GcTables)
    for (size_t I = 0; I != M->Functions.size(); ++I) {
      Safety[I] = gcsafety::assignPathVariables(*M->Functions[I]);
      PathVars += static_cast<unsigned>(Safety[I].PathVars.size());
      PathAssigns += Safety[I].PathAssignsInserted;
    }

  {
    std::vector<std::string> Issues = verifyModule(*M);
    for (const std::string &Issue : Issues)
      Result.Diags.error(SourceLoc(), "internal: IR verification: " + Issue);
    if (!Issues.empty())
      return Result;
  }

  Result.IRDump = toString(*M);

  // Emit every function and link.
  auto Prog = std::make_unique<vm::Program>();
  Prog->Name = M->Name;
  Prog->MainFunc = M->MainIndex;
  Prog->TypeDescs = M->TypeDescs;
  Prog->GlobalAreaWords = M->GlobalAreaWords;
  Prog->GlobalPtrWords = M->globalPointerWords();
  Prog->LoopPolls = LoopPolls;
  Prog->GcPointsElided = GcPointsElided;
  Prog->PathVars = PathVars;
  Prog->PathAssigns = PathAssigns;
  Prog->WriteBarriersEmitted = WriteBarriers;

  codegen::EmitOptions EO;
  EO.GcSafe = Options.GcTables;
  EO.CiscFold = Options.CiscFold;

  std::vector<gcmaps::FuncTableData> RawTables;
  // (Func, global PC, raw site) triples, accumulated across functions and
  // turned into the deduplicated program-wide site table below.
  struct PendingSite {
    uint32_t PC;
    gcmaps::AllocSite Site;
  };
  std::vector<PendingSite> PendingSites;
  for (size_t I = 0; I != M->Functions.size(); ++I) {
    codegen::EmitResult ER =
        codegen::emitFunction(*M->Functions[I], Safety[I], EO);
    uint32_t Entry = static_cast<uint32_t>(Prog->Code.size());
    ER.Meta.EntryIndex = Entry;
    // Rebase control-flow targets and gc-point return addresses.
    for (vm::MInstr &MI : ER.Code) {
      if (MI.Op == vm::MOp::Jump || MI.Op == vm::MOp::Branch) {
        MI.Target0 += Entry;
        if (MI.Op == vm::MOp::Branch)
          MI.Target1 += Entry;
      }
      Prog->Code.push_back(MI);
    }
    for (gcmaps::GcPointData &P : ER.Tables.Points)
      P.RetPC += Entry;
    for (const codegen::RawAllocSite &RS : ER.AllocSites) {
      gcmaps::AllocSite S;
      S.Func = static_cast<uint32_t>(I);
      S.Line = RS.Line;
      S.Col = RS.Col;
      S.Desc = RS.Desc;
      PendingSites.push_back({Entry + RS.LocalPC, S});
    }
    Prog->Funcs.push_back(ER.Meta);
    RawTables.push_back(std::move(ER.Tables));
    Prog->CiscFoldsApplied += ER.CiscFoldsApplied;
    Prog->CiscFoldsBlocked += ER.CiscFoldsBlocked;
  }

  // Build the program-wide allocation-site table.  Sites deduplicate on
  // (Func, Line, Col, Desc) and are sorted, so ids are deterministic and
  // stable across optimization levels: when the optimizer duplicates a NEW
  // (e.g. loop unswitching), both copies attribute to the one source site.
  {
    gcmaps::SiteTable Raw;
    for (const PendingSite &P : PendingSites)
      Raw.Sites.push_back(P.Site);
    std::sort(Raw.Sites.begin(), Raw.Sites.end());
    Raw.Sites.erase(std::unique(Raw.Sites.begin(), Raw.Sites.end()),
                    Raw.Sites.end());
    for (const PendingSite &P : PendingSites) {
      auto It = std::lower_bound(Raw.Sites.begin(), Raw.Sites.end(), P.Site);
      assert(It != Raw.Sites.end() && *It == P.Site);
      Raw.Attrs.push_back(
          {P.PC, static_cast<uint32_t>(It - Raw.Sites.begin())});
    }
    // Attrs are already in ascending PC order (functions are emitted in
    // entry order, sites in code order within each).
    std::vector<uint8_t> Blob = gcmaps::encodeSiteTable(Raw);
    Prog->Sizes.SiteTableBytes = Blob.size();
    // Install the *decoded* table and patch instruction attributions from
    // it, so every compile round-trips the codec.
    Prog->SiteTab = gcmaps::decodeSiteTable(Blob);
    for (const gcmaps::SiteAttribution &A : Prog->SiteTab.Attrs) {
      assert(A.PC < Prog->Code.size());
      Prog->Code[A.PC].Site = A.Site;
    }
  }

  for (const gcmaps::FuncTableData &T : RawTables)
    Prog->Maps.push_back(
        gcmaps::encodeFunction(T, Prog->Sizes, Prog->Stats));
  // Install-time decode acceleration (§6.3's decode cost, amortized): the
  // collector resolves gc-points through these side indexes by default.
  Prog->buildMapIndexes();

  Prog->Image = codegen::serializeCode(Prog->Code);
  Result.Prog = std::move(Prog);
  return Result;
}

std::vector<CompileResult>
driver::compileBatch(const std::string &Source,
                     const std::vector<CompilerOptions> &Options) {
  std::vector<CompileResult> Results;
  Results.reserve(Options.size());
  for (const CompilerOptions &O : Options)
    Results.push_back(compile(Source, O));
  return Results;
}
