//===- ir/IR.h - Three-address intermediate representation ------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizer-level IR.  It is a conventional three-address code over
/// virtual registers, with one deliberate feature from the paper: pointer
/// arithmetic is expressed only through the Derive* opcodes, so every
/// *derived value* (§2 of the paper) is syntactically identifiable and its
/// base values are the operands of its defining instruction.
///
/// Virtual registers carry a pointer kind:
///   - Tidy:         a heap reference pointing at an object header; traced
///                   and updated by the collector via the stack/register
///                   pointer tables.
///   - Derived:      a value produced by Derive*; never traced, but
///                   un-derived/re-derived around a collection via the
///                   derivations tables.
///   - FrameAddr:    the address of a frame slot or global (VM stack /
///                   global area); invisible to the collector since frames
///                   do not move.
///   - IncomingAddr: a VAR parameter — an address whose provenance (heap
///                   interior or frame) only the caller knows.  The caller's
///                   tables keep the argument slot correct; the callee never
///                   copies such a value across a gc-point (enforced by the
///                   gc-safety pass) and may use it as a derivation base.
///   - NonPtr:       everything else.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_IR_IR_H
#define MGC_IR_IR_H

#include "support/Diagnostics.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mgc {
namespace ir {

/// Bytes per VM word (all MG values are word sized).
constexpr unsigned WordSize = 8;

using VReg = int;
constexpr VReg NoVReg = -1;

enum class PtrKind : uint8_t { NonPtr, Tidy, Derived, FrameAddr, IncomingAddr };

const char *ptrKindName(PtrKind K);

enum class Opcode : uint8_t {
  // Moves and integer arithmetic.
  Mov, Add, Sub, Mul, Div, Mod, Neg, Not,
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  // Memory access through a computed address.
  Load,       ///< Dst = mem[A + Disp]
  Store,      ///< mem[A + Disp] = B
  // Direct access to named storage.
  LoadSlot,   ///< Dst = frame slot #Index (scalar memory locals)
  StoreSlot,  ///< frame slot #Index = B
  LoadGlobal, ///< Dst = global word #Index
  StoreGlobal,///< global word #Index = B
  AddrSlot,   ///< Dst = address of frame slot #Index (+Disp bytes)
  AddrGlobal, ///< Dst = address of global word #Index (+Disp bytes)
  // Pointer arithmetic: the only creators of derived values.
  DeriveAdd,  ///< Dst = A + B, A pointer-like, B an integer byte offset
  DeriveSub,  ///< Dst = A - B, likewise
  DeriveDiff, ///< Dst = A - B, both pointer-like (double indexing)
  // Allocation and calls.
  New,        ///< Dst = allocate(TypeDesc #Index); gc-point
  NewArray,   ///< Dst = allocate(TypeDesc #Index, length A); gc-point
  Call,       ///< Dst? = Functions[Index](Args...); gc-point
  CallRt,     ///< Runtime intrinsic #Rt(Args...); gc-point only for GcCollect
  GcPoll,     ///< Loop gc-point for threaded mode (§5.3)
  WriteBarrier, ///< Generational barrier: record slot A + Disp if old→young
  // Terminators.
  Jump,       ///< goto Target0
  Branch,     ///< if A goto Target0 else Target1
  Ret,        ///< return [A]
  Trap,       ///< runtime error #Index
};

const char *opcodeName(Opcode Op);

/// Runtime intrinsics; all except GcCollect are statically known not to
/// allocate, so calls to them are not gc-points (§5.3).
enum class RtFn : uint8_t { PutInt, PutChar, PutLn, GcCollect, Halt, ReqDone };

/// Trap reasons.
enum class TrapKind : uint8_t { MissingReturn, BoundsCheck, NilDeref };

struct Operand {
  enum class Kind : uint8_t { None, Reg, Imm };
  Kind K = Kind::None;
  VReg R = NoVReg;
  int64_t Imm = 0;

  Operand() = default;
  static Operand reg(VReg R) {
    Operand O;
    O.K = Kind::Reg;
    O.R = R;
    return O;
  }
  static Operand imm(int64_t V) {
    Operand O;
    O.K = Kind::Imm;
    O.Imm = V;
    return O;
  }
  bool isReg() const { return K == Kind::Reg; }
  bool isImm() const { return K == Kind::Imm; }
  bool isNone() const { return K == Kind::None; }

  bool operator==(const Operand &O) const {
    return K == O.K && R == O.R && Imm == O.Imm;
  }
};

struct Instr {
  Opcode Op;
  VReg Dst = NoVReg;
  Operand A, B;
  int64_t Disp = 0;       ///< Byte displacement for Load/Store/Addr*.
  int Index = -1;         ///< Slot/global/typedesc/function/trap index.
  RtFn Rt = RtFn::PutInt; ///< For CallRt.
  unsigned Target0 = 0, Target1 = 0; ///< Block ids for Jump/Branch.
  std::vector<Operand> Args;         ///< Call/CallRt arguments.
  SourceLoc Loc;
  /// Interprocedural refinement (§5.3): the callee is statically known
  /// never to trigger a collection, so this call is not a gc-point.
  bool NoGcCallee = false;

  bool isTerminator() const {
    return Op == Opcode::Jump || Op == Opcode::Branch || Op == Opcode::Ret ||
           Op == Opcode::Trap;
  }

  /// Whether a collection can occur at this instruction (§5.3: calls to
  /// possibly-allocating procedures, allocations, and loop polls).
  bool isGcPoint() const {
    switch (Op) {
    case Opcode::New:
    case Opcode::NewArray:
    case Opcode::GcPoll:
      return true;
    case Opcode::Call:
      return !NoGcCallee;
    case Opcode::CallRt:
      return Rt == RtFn::GcCollect;
    default:
      return false;
    }
  }

  bool isDerive() const {
    return Op == Opcode::DeriveAdd || Op == Opcode::DeriveSub ||
           Op == Opcode::DeriveDiff;
  }

  /// Instructions with no side effect other than defining Dst; candidates
  /// for CSE/LICM/DCE.
  bool isPure() const {
    switch (Op) {
    case Opcode::Mov: case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
    case Opcode::Neg: case Opcode::Not:
    case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
    case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
    case Opcode::AddrSlot: case Opcode::AddrGlobal:
    case Opcode::DeriveAdd: case Opcode::DeriveSub: case Opcode::DeriveDiff:
      return true;
    // Div/Mod can trap on zero; keep them out of speculative motion.
    default:
      return false;
    }
  }

  /// Appends every vreg this instruction reads to \p Uses.
  void collectUses(std::vector<VReg> &Uses) const;
  /// Rewrites every use of \p From into \p To; returns true on change.
  bool replaceUses(VReg From, VReg To);

  //===--- Factories -------------------------------------------------------===
  static Instr mov(VReg Dst, Operand Src) {
    Instr I;
    I.Op = Opcode::Mov;
    I.Dst = Dst;
    I.A = Src;
    return I;
  }
  static Instr bin(Opcode Op, VReg Dst, Operand A, Operand B) {
    Instr I;
    I.Op = Op;
    I.Dst = Dst;
    I.A = A;
    I.B = B;
    return I;
  }
  static Instr un(Opcode Op, VReg Dst, Operand A) {
    Instr I;
    I.Op = Op;
    I.Dst = Dst;
    I.A = A;
    return I;
  }
  static Instr load(VReg Dst, VReg Addr, int64_t Disp) {
    Instr I;
    I.Op = Opcode::Load;
    I.Dst = Dst;
    I.A = Operand::reg(Addr);
    I.Disp = Disp;
    return I;
  }
  static Instr store(VReg Addr, int64_t Disp, Operand Val) {
    Instr I;
    I.Op = Opcode::Store;
    I.A = Operand::reg(Addr);
    I.B = Val;
    I.Disp = Disp;
    return I;
  }
  static Instr loadSlot(VReg Dst, int Slot) {
    Instr I;
    I.Op = Opcode::LoadSlot;
    I.Dst = Dst;
    I.Index = Slot;
    return I;
  }
  static Instr storeSlot(int Slot, Operand Val) {
    Instr I;
    I.Op = Opcode::StoreSlot;
    I.B = Val;
    I.Index = Slot;
    return I;
  }
  static Instr loadGlobal(VReg Dst, int Word) {
    Instr I;
    I.Op = Opcode::LoadGlobal;
    I.Dst = Dst;
    I.Index = Word;
    return I;
  }
  static Instr storeGlobal(int Word, Operand Val) {
    Instr I;
    I.Op = Opcode::StoreGlobal;
    I.B = Val;
    I.Index = Word;
    return I;
  }
  static Instr addrSlot(VReg Dst, int Slot, int64_t Disp) {
    Instr I;
    I.Op = Opcode::AddrSlot;
    I.Dst = Dst;
    I.Index = Slot;
    I.Disp = Disp;
    return I;
  }
  static Instr addrGlobal(VReg Dst, int Word, int64_t Disp) {
    Instr I;
    I.Op = Opcode::AddrGlobal;
    I.Dst = Dst;
    I.Index = Word;
    I.Disp = Disp;
    return I;
  }
  static Instr jump(unsigned Target) {
    Instr I;
    I.Op = Opcode::Jump;
    I.Target0 = Target;
    return I;
  }
  static Instr branch(VReg Cond, unsigned T, unsigned F) {
    Instr I;
    I.Op = Opcode::Branch;
    I.A = Operand::reg(Cond);
    I.Target0 = T;
    I.Target1 = F;
    return I;
  }
  static Instr ret(Operand Val) {
    Instr I;
    I.Op = Opcode::Ret;
    I.A = Val;
    return I;
  }
  static Instr trap(TrapKind K) {
    Instr I;
    I.Op = Opcode::Trap;
    I.Index = static_cast<int>(K);
    return I;
  }
  static Instr writeBarrier(VReg Addr, int64_t Disp) {
    Instr I;
    I.Op = Opcode::WriteBarrier;
    I.A = Operand::reg(Addr);
    I.Disp = Disp;
    return I;
  }
};

class BasicBlock {
public:
  unsigned Id = 0;
  std::vector<Instr> Instrs;

  bool hasTerminator() const {
    return !Instrs.empty() && Instrs.back().isTerminator();
  }
  const Instr &terminator() const {
    assert(hasTerminator() && "block lacks a terminator");
    return Instrs.back();
  }

  /// Successor block ids in CFG order.
  std::vector<unsigned> successors() const {
    std::vector<unsigned> Out;
    if (!hasTerminator())
      return Out;
    const Instr &T = Instrs.back();
    if (T.Op == Opcode::Jump) {
      Out.push_back(T.Target0);
    } else if (T.Op == Opcode::Branch) {
      Out.push_back(T.Target0);
      if (T.Target1 != T.Target0)
        Out.push_back(T.Target1);
    }
    return Out;
  }
};

/// Per-vreg metadata.
struct VRegInfo {
  PtrKind Kind = PtrKind::NonPtr;
  std::string Name;      ///< User variable name, if any.
  bool IsUserVar = false;
};

/// A frame slot: a memory-resident local (aggregate, address-taken scalar,
/// or a spill created by the register allocator).
struct SlotInfo {
  std::string Name;
  unsigned SizeWords = 1;
  /// Word offsets within the slot that hold tidy pointers (for aggregates,
  /// each contained pointer is a separate ground-table candidate, as in the
  /// paper's implementation).
  std::vector<unsigned> PtrOffsets;
  bool IsPtrScalar = false; ///< Scalar slot holding a tidy pointer.
  /// Spill slots have liveness-tracked pointer contents (listed in the
  /// tables only where live); lowering-created slots holding pointers are
  /// zero-initialized in the prologue and described at every gc-point.
  bool IsSpill = false;
};

/// Information about one function parameter.
struct ParamInfo {
  std::string Name;
  PtrKind Kind = PtrKind::NonPtr; ///< Tidy / IncomingAddr / NonPtr.
  bool IsVarParam = false;
};

class Function {
public:
  std::string Name;
  unsigned Index = 0;
  std::vector<ParamInfo> Params;
  bool HasRet = false;
  std::vector<VRegInfo> VRegs;
  std::vector<SlotInfo> Slots;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;

  /// Parameter I is virtual register I.
  VReg paramVReg(unsigned I) const { return static_cast<VReg>(I); }
  unsigned numParams() const { return static_cast<unsigned>(Params.size()); }

  VReg newVReg(PtrKind K, std::string Name = "", bool IsUserVar = false) {
    VRegs.push_back({K, std::move(Name), IsUserVar});
    return static_cast<VReg>(VRegs.size() - 1);
  }

  PtrKind kindOf(VReg R) const {
    assert(R >= 0 && static_cast<size_t>(R) < VRegs.size());
    return VRegs[R].Kind;
  }

  int newSlot(SlotInfo Info) {
    Slots.push_back(std::move(Info));
    return static_cast<int>(Slots.size() - 1);
  }

  BasicBlock *newBlock() {
    auto BB = std::make_unique<BasicBlock>();
    BB->Id = static_cast<unsigned>(Blocks.size());
    Blocks.push_back(std::move(BB));
    return Blocks.back().get();
  }

  BasicBlock *entry() const { return Blocks.front().get(); }
  BasicBlock *block(unsigned Id) const {
    assert(Id < Blocks.size());
    return Blocks[Id].get();
  }

  /// Computes predecessor lists (indexed by block id).
  std::vector<std::vector<unsigned>> predecessors() const;

  /// Blocks in reverse post-order from the entry.
  std::vector<unsigned> reversePostOrder() const;

  /// Removes blocks unreachable from the entry and renumbers the rest,
  /// fixing branch targets.
  void removeUnreachableBlocks();
};

/// A heap type descriptor (Modula-3 requires one per heap type; the
/// collector uses it to size objects and find interior pointers).
struct TypeDesc {
  std::string Name;
  bool IsOpenArray = false;
  /// Payload words, excluding the header.  For open arrays this is the
  /// fixed part (the length word).
  unsigned SizeWords = 0;
  /// Payload word offsets holding pointers (fixed part only).
  std::vector<unsigned> PtrOffsets;
  /// Open arrays: element stride and pointer offsets within an element.
  unsigned ElemSizeWords = 0;
  std::vector<unsigned> ElemPtrOffsets;
};

/// A module-level variable flattened into the global area.
struct GlobalInfo {
  std::string Name;
  unsigned BaseWord = 0;
  unsigned SizeWords = 1;
  std::vector<unsigned> PtrOffsets; ///< Relative to BaseWord.
};

class IRModule {
public:
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
  unsigned MainIndex = 0;
  std::vector<GlobalInfo> Globals;
  unsigned GlobalAreaWords = 0;
  std::vector<TypeDesc> TypeDescs;

  Function *newFunction(std::string Name) {
    auto F = std::make_unique<Function>();
    F->Name = std::move(Name);
    F->Index = static_cast<unsigned>(Functions.size());
    Functions.push_back(std::move(F));
    return Functions.back().get();
  }

  Function *mainFunction() const { return Functions[MainIndex].get(); }

  /// Absolute global-area word offsets holding pointers (the collector's
  /// global roots).
  std::vector<unsigned> globalPointerWords() const;
};

} // namespace ir
} // namespace mgc

#endif // MGC_IR_IR_H
