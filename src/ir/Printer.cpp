//===- ir/Printer.cpp -----------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

using namespace mgc;
using namespace mgc::ir;

namespace {
std::string regStr(const Function &F, VReg R) {
  std::string S = "%" + std::to_string(R);
  S += ":";
  S += ptrKindName(F.kindOf(R));
  if (!F.VRegs[R].Name.empty())
    S += "(" + F.VRegs[R].Name + ")";
  return S;
}

std::string operandStr(const Function &F, const Operand &O) {
  if (O.isReg())
    return regStr(F, O.R);
  if (O.isImm())
    return std::to_string(O.Imm);
  return "_";
}
} // namespace

std::string ir::toString(const Function &F, const Instr &I) {
  std::string S;
  if (I.Dst != NoVReg)
    S += regStr(F, I.Dst) + " = ";
  S += opcodeName(I.Op);

  switch (I.Op) {
  case Opcode::Load:
    S += " [" + operandStr(F, I.A) + " + " + std::to_string(I.Disp) + "]";
    break;
  case Opcode::Store:
    S += " [" + operandStr(F, I.A) + " + " + std::to_string(I.Disp) +
         "], " + operandStr(F, I.B);
    break;
  case Opcode::LoadSlot:
  case Opcode::LoadGlobal:
    S += " #" + std::to_string(I.Index);
    break;
  case Opcode::StoreSlot:
  case Opcode::StoreGlobal:
    S += " #" + std::to_string(I.Index) + ", " + operandStr(F, I.B);
    break;
  case Opcode::AddrSlot:
  case Opcode::AddrGlobal:
    S += " #" + std::to_string(I.Index) + " + " + std::to_string(I.Disp);
    break;
  case Opcode::New:
    S += " desc#" + std::to_string(I.Index);
    break;
  case Opcode::NewArray:
    S += " desc#" + std::to_string(I.Index) + ", len=" + operandStr(F, I.A);
    break;
  case Opcode::Call: {
    S += " fn#" + std::to_string(I.Index) + "(";
    for (size_t K = 0; K != I.Args.size(); ++K) {
      if (K)
        S += ", ";
      S += operandStr(F, I.Args[K]);
    }
    S += ")";
    break;
  }
  case Opcode::CallRt: {
    S += " rt#" + std::to_string(static_cast<int>(I.Rt)) + "(";
    for (size_t K = 0; K != I.Args.size(); ++K) {
      if (K)
        S += ", ";
      S += operandStr(F, I.Args[K]);
    }
    S += ")";
    break;
  }
  case Opcode::Jump:
    S += " bb" + std::to_string(I.Target0);
    break;
  case Opcode::Branch:
    S += " " + operandStr(F, I.A) + ", bb" + std::to_string(I.Target0) +
         ", bb" + std::to_string(I.Target1);
    break;
  case Opcode::Ret:
    if (!I.A.isNone())
      S += " " + operandStr(F, I.A);
    break;
  case Opcode::Trap:
    S += " #" + std::to_string(I.Index);
    break;
  case Opcode::WriteBarrier:
    S += " [" + operandStr(F, I.A) + " + " + std::to_string(I.Disp) + "]";
    break;
  default: {
    bool First = true;
    for (const Operand *O : {&I.A, &I.B}) {
      if (O->isNone())
        continue;
      S += First ? " " : ", ";
      S += operandStr(F, *O);
      First = false;
    }
    break;
  }
  }
  return S;
}

std::string ir::toString(const Function &F) {
  std::string S = "func " + F.Name + "(" + std::to_string(F.numParams()) +
                  ")" + (F.HasRet ? ": ret" : "") + " {\n";
  for (const auto &BB : F.Blocks) {
    S += "bb" + std::to_string(BB->Id) + ":\n";
    for (const Instr &I : BB->Instrs) {
      S += "  " + toString(F, I);
      if (I.isGcPoint())
        S += "   ; gc-point";
      S += "\n";
    }
  }
  S += "}\n";
  return S;
}

std::string ir::toString(const IRModule &M) {
  std::string S = "module " + M.Name + "\n";
  for (const auto &F : M.Functions)
    S += toString(*F);
  return S;
}
