//===- ir/Verifier.cpp ----------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Printer.h"

using namespace mgc;
using namespace mgc::ir;

namespace {
class Verifier {
public:
  explicit Verifier(const IRModule &M) : M(M) {}

  std::vector<std::string> run() {
    for (const auto &F : M.Functions)
      verifyFunction(*F);
    return std::move(Issues);
  }

private:
  void issue(const Function &F, const Instr *I, const std::string &Msg) {
    std::string S = F.Name + ": " + Msg;
    if (I)
      S += " in '" + toString(F, *I) + "'";
    Issues.push_back(std::move(S));
  }

  bool pointerLike(PtrKind K) const {
    return K == PtrKind::Tidy || K == PtrKind::Derived ||
           K == PtrKind::FrameAddr || K == PtrKind::IncomingAddr;
  }

  void verifyFunction(const Function &F) {
    if (F.Blocks.empty()) {
      issue(F, nullptr, "function has no blocks");
      return;
    }
    if (F.numParams() > F.VRegs.size())
      issue(F, nullptr, "fewer vregs than parameters");

    for (const auto &BB : F.Blocks) {
      if (!BB->hasTerminator()) {
        issue(F, nullptr,
              "bb" + std::to_string(BB->Id) + " lacks a terminator");
        continue;
      }
      for (size_t K = 0; K != BB->Instrs.size(); ++K) {
        const Instr &I = BB->Instrs[K];
        bool IsLast = K + 1 == BB->Instrs.size();
        if (I.isTerminator() != IsLast) {
          issue(F, &I, "terminator placement");
          continue;
        }
        verifyInstr(F, I);
      }
    }
  }

  void checkReg(const Function &F, const Instr &I, VReg R) {
    if (R < 0 || static_cast<size_t>(R) >= F.VRegs.size())
      issue(F, &I, "vreg out of range");
  }

  void verifyInstr(const Function &F, const Instr &I) {
    if (I.Dst != NoVReg)
      checkReg(F, I, I.Dst);
    std::vector<VReg> Uses;
    I.collectUses(Uses);
    for (VReg R : Uses)
      checkReg(F, I, R);
    for (VReg R : Uses)
      if (R < 0 || static_cast<size_t>(R) >= F.VRegs.size())
        return; // Range errors already reported.

    auto KindOfOperand = [&](const Operand &O) {
      return O.isReg() ? F.kindOf(O.R) : PtrKind::NonPtr;
    };

    switch (I.Op) {
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
    case Opcode::Div: case Opcode::Mod: case Opcode::Neg:
      // Plain arithmetic may involve frame addresses (which the collector
      // ignores) but never heap pointers: those must use Derive*.
      if (KindOfOperand(I.A) == PtrKind::Tidy ||
          KindOfOperand(I.A) == PtrKind::Derived ||
          KindOfOperand(I.B) == PtrKind::Tidy ||
          KindOfOperand(I.B) == PtrKind::Derived)
        issue(F, &I, "integer arithmetic on a heap pointer (use Derive*)");
      break;
    case Opcode::DeriveAdd:
    case Opcode::DeriveSub:
      if (!I.A.isReg() || !pointerLike(F.kindOf(I.A.R)))
        issue(F, &I, "Derive base is not pointer-like");
      if (I.B.isReg() && pointerLike(F.kindOf(I.B.R)))
        issue(F, &I, "Derive offset must be an integer");
      if (I.Dst == NoVReg || F.kindOf(I.Dst) != PtrKind::Derived)
        issue(F, &I, "Derive result must have Derived kind");
      break;
    case Opcode::DeriveDiff:
      if (!I.A.isReg() || !pointerLike(F.kindOf(I.A.R)) || !I.B.isReg() ||
          !pointerLike(F.kindOf(I.B.R)))
        issue(F, &I, "DeriveDiff operands must be pointer-like");
      if (I.Dst == NoVReg || F.kindOf(I.Dst) != PtrKind::Derived)
        issue(F, &I, "DeriveDiff result must have Derived kind");
      break;
    case Opcode::Load:
      if (!I.A.isReg() || !pointerLike(F.kindOf(I.A.R)))
        issue(F, &I, "Load address is not pointer-like");
      break;
    case Opcode::Store:
      if (!I.A.isReg() || !pointerLike(F.kindOf(I.A.R)))
        issue(F, &I, "Store address is not pointer-like");
      break;
    case Opcode::WriteBarrier:
      if (!I.A.isReg() || !pointerLike(F.kindOf(I.A.R)))
        issue(F, &I, "WriteBarrier address is not pointer-like");
      break;
    case Opcode::LoadSlot:
    case Opcode::StoreSlot:
    case Opcode::AddrSlot:
      if (I.Index < 0 || static_cast<size_t>(I.Index) >= F.Slots.size())
        issue(F, &I, "slot index out of range");
      break;
    case Opcode::LoadGlobal:
    case Opcode::StoreGlobal:
    case Opcode::AddrGlobal:
      if (I.Index < 0 || static_cast<unsigned>(I.Index) >= M.GlobalAreaWords)
        issue(F, &I, "global word out of range");
      break;
    case Opcode::New:
    case Opcode::NewArray:
      if (I.Index < 0 || static_cast<size_t>(I.Index) >= M.TypeDescs.size())
        issue(F, &I, "type descriptor out of range");
      if (I.Dst == NoVReg || F.kindOf(I.Dst) != PtrKind::Tidy)
        issue(F, &I, "allocation result must be Tidy");
      break;
    case Opcode::Call: {
      if (I.Index < 0 || static_cast<size_t>(I.Index) >= M.Functions.size()) {
        issue(F, &I, "callee index out of range");
        break;
      }
      const Function &Callee = *M.Functions[I.Index];
      if (I.Args.size() != Callee.numParams())
        issue(F, &I, "argument count mismatch");
      if ((I.Dst != NoVReg) && !Callee.HasRet)
        issue(F, &I, "result taken from a proper procedure");
      break;
    }
    case Opcode::Jump:
      if (I.Target0 >= F.Blocks.size())
        issue(F, &I, "jump target out of range");
      break;
    case Opcode::Branch:
      if (I.Target0 >= F.Blocks.size() || I.Target1 >= F.Blocks.size())
        issue(F, &I, "branch target out of range");
      break;
    default:
      break;
    }
  }

  const IRModule &M;
  std::vector<std::string> Issues;
};
} // namespace

std::vector<std::string> ir::verifyModule(const IRModule &M) {
  return Verifier(M).run();
}

bool ir::isValid(const IRModule &M) { return verifyModule(M).empty(); }
