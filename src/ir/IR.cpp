//===- ir/IR.cpp ----------------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <algorithm>

using namespace mgc;
using namespace mgc::ir;

const char *ir::ptrKindName(PtrKind K) {
  switch (K) {
  case PtrKind::NonPtr: return "i";
  case PtrKind::Tidy: return "t";
  case PtrKind::Derived: return "d";
  case PtrKind::FrameAddr: return "fa";
  case PtrKind::IncomingAddr: return "ia";
  }
  return "?";
}

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Mov: return "mov";
  case Opcode::Add: return "add";
  case Opcode::Sub: return "sub";
  case Opcode::Mul: return "mul";
  case Opcode::Div: return "div";
  case Opcode::Mod: return "mod";
  case Opcode::Neg: return "neg";
  case Opcode::Not: return "not";
  case Opcode::CmpEq: return "cmpeq";
  case Opcode::CmpNe: return "cmpne";
  case Opcode::CmpLt: return "cmplt";
  case Opcode::CmpLe: return "cmple";
  case Opcode::CmpGt: return "cmpgt";
  case Opcode::CmpGe: return "cmpge";
  case Opcode::Load: return "load";
  case Opcode::Store: return "store";
  case Opcode::LoadSlot: return "loadslot";
  case Opcode::StoreSlot: return "storeslot";
  case Opcode::LoadGlobal: return "loadglobal";
  case Opcode::StoreGlobal: return "storeglobal";
  case Opcode::AddrSlot: return "addrslot";
  case Opcode::AddrGlobal: return "addrglobal";
  case Opcode::DeriveAdd: return "deriveadd";
  case Opcode::DeriveSub: return "derivesub";
  case Opcode::DeriveDiff: return "derivediff";
  case Opcode::New: return "new";
  case Opcode::NewArray: return "newarray";
  case Opcode::Call: return "call";
  case Opcode::CallRt: return "callrt";
  case Opcode::GcPoll: return "gcpoll";
  case Opcode::WriteBarrier: return "wrbar";
  case Opcode::Jump: return "jump";
  case Opcode::Branch: return "branch";
  case Opcode::Ret: return "ret";
  case Opcode::Trap: return "trap";
  }
  return "?";
}

void Instr::collectUses(std::vector<VReg> &Uses) const {
  if (A.isReg())
    Uses.push_back(A.R);
  if (B.isReg())
    Uses.push_back(B.R);
  for (const Operand &O : Args)
    if (O.isReg())
      Uses.push_back(O.R);
}

bool Instr::replaceUses(VReg From, VReg To) {
  bool Changed = false;
  auto Fix = [&](Operand &O) {
    if (O.isReg() && O.R == From) {
      O.R = To;
      Changed = true;
    }
  };
  Fix(A);
  Fix(B);
  for (Operand &O : Args)
    Fix(O);
  return Changed;
}

std::vector<std::vector<unsigned>> Function::predecessors() const {
  std::vector<std::vector<unsigned>> Preds(Blocks.size());
  for (const auto &BB : Blocks)
    for (unsigned Succ : BB->successors())
      Preds[Succ].push_back(BB->Id);
  return Preds;
}

std::vector<unsigned> Function::reversePostOrder() const {
  std::vector<unsigned> PostOrder;
  std::vector<uint8_t> State(Blocks.size(), 0); // 0=unseen 1=open 2=done
  // Iterative DFS to avoid deep recursion on long block chains.
  std::vector<std::pair<unsigned, size_t>> Stack;
  Stack.emplace_back(0, 0);
  State[0] = 1;
  while (!Stack.empty()) {
    unsigned Id = Stack.back().first;
    std::vector<unsigned> Succs = Blocks[Id]->successors();
    if (Stack.back().second < Succs.size()) {
      unsigned S = Succs[Stack.back().second++];
      // Note: emplace_back below may invalidate references into Stack, so
      // all reads of the current entry happen before it.
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    State[Id] = 2;
    PostOrder.push_back(Id);
    Stack.pop_back();
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}

void Function::removeUnreachableBlocks() {
  std::vector<unsigned> Order = reversePostOrder();
  std::vector<int> NewId(Blocks.size(), -1);
  for (unsigned I = 0; I != Order.size(); ++I)
    NewId[Order[I]] = static_cast<int>(I);

  std::vector<std::unique_ptr<BasicBlock>> Kept(Order.size());
  for (auto &BB : Blocks) {
    int Id = NewId[BB->Id];
    if (Id < 0)
      continue;
    BB->Id = static_cast<unsigned>(Id);
    if (BB->hasTerminator()) {
      Instr &T = BB->Instrs.back();
      if (T.Op == Opcode::Jump || T.Op == Opcode::Branch) {
        T.Target0 = static_cast<unsigned>(NewId[T.Target0]);
        if (T.Op == Opcode::Branch)
          T.Target1 = static_cast<unsigned>(NewId[T.Target1]);
      }
    }
    Kept[BB->Id] = std::move(BB);
  }
  Blocks = std::move(Kept);
}

std::vector<unsigned> IRModule::globalPointerWords() const {
  std::vector<unsigned> Words;
  for (const GlobalInfo &G : Globals)
    for (unsigned Off : G.PtrOffsets)
      Words.push_back(G.BaseWord + Off);
  return Words;
}
