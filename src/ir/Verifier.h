//===- ir/Verifier.h - IR structural checks ---------------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef MGC_IR_VERIFIER_H
#define MGC_IR_VERIFIER_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace mgc {
namespace ir {

/// Checks structural invariants of \p M: every block terminated, targets in
/// range, operand vregs in range, pointer-kind discipline (Derive* only on
/// pointer-like operands, integer arithmetic never on Tidy/Derived values).
/// Returns a list of violations; empty means valid.
std::vector<std::string> verifyModule(const IRModule &M);

/// Convenience for asserts in tests and the driver.
bool isValid(const IRModule &M);

} // namespace ir
} // namespace mgc

#endif // MGC_IR_VERIFIER_H
