//===- ir/Printer.h - IR text rendering -------------------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef MGC_IR_PRINTER_H
#define MGC_IR_PRINTER_H

#include "ir/IR.h"

#include <string>

namespace mgc {
namespace ir {

/// Renders one instruction ("%5:t = deriveadd %3, 8").
std::string toString(const Function &F, const Instr &I);
/// Renders a whole function with block labels.
std::string toString(const Function &F);
/// Renders the whole module.
std::string toString(const IRModule &M);

} // namespace ir
} // namespace mgc

#endif // MGC_IR_PRINTER_H
