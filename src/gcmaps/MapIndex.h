//===- gcmaps/MapIndex.h - Load-time gc-map acceleration -------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decode acceleration layer on top of the operational δ-main blobs.
///
/// The reference decoder (`decodeGcPoint`) re-walks a function's whole blob
/// from byte 0 for every query: it re-expands the ground table and replays
/// every predecessor record to resolve identical-to-previous chains — the
/// §6.3 decode cost, paid per *frame* during stack tracing.  Real runtimes
/// amortize exactly this with side tables built once at load time; this
/// file provides two such layers:
///
///  - `FuncMapIndex`: built once per function at program-install time.  It
///    holds the pre-expanded ground table (run-lengths unrolled, locations
///    decoded) and, per gc-point, the resolved blob offset of each table
///    kind's payload with same-as-previous chains collapsed, so decoding
///    ordinal N reads at most one delta bitmap, one register word, and one
///    derivations record — O(frame tables), independent of N.
///
///  - `DecodedPointCache`: a small direct-mapped cache of fully decoded
///    gc-points keyed by (function, ordinal).  Collections hit the same
///    handful of gc-points over and over (destroy's hot loop especially),
///    so steady-state lookups return a `const GcPointInfo &` with zero
///    decoding and zero allocation.
///
/// The blobs themselves are unchanged: the reference decoder remains the
/// measured §6.3 artifact, and `crossCheck` asserts the accelerated decode
/// agrees with it bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_GCMAPS_MAPINDEX_H
#define MGC_GCMAPS_MAPINDEX_H

#include "gcmaps/GcTables.h"

#include <cstdint>
#include <vector>

namespace mgc {
namespace gcmaps {

/// Sentinel payload offset: the table is empty at this gc-point.
constexpr uint32_t EmptyPayload = 0xFFFFFFFFu;

/// Resolved payload offsets for one gc-point.  Same-as-previous chains are
/// collapsed at build time: each field points directly at the record that
/// actually carries the bytes (which may belong to an earlier ordinal).
struct PointIndexEntry {
  uint32_t DescOff = 0;            ///< Offset of this point's descriptor byte.
  uint32_t DeltaOff = EmptyPayload; ///< Liveness bitmap bytes.
  uint32_t RegOff = EmptyPayload;   ///< Packed register mask.
  uint32_t DerivOff = EmptyPayload; ///< Packed derivations record.
};

/// Per-function side index, built once at program-install time.
struct FuncMapIndex {
  /// Ground table with run-length groups unrolled and entries decoded.
  std::vector<vm::Location> Ground;
  std::vector<PointIndexEntry> Points;
  /// Bytes per delta bitmap: ceil(Ground.size() / 8).
  uint32_t DeltaBytes = 0;
  /// Offset of the first gc-point record (end of the encoded ground table).
  uint32_t FirstPointOff = 0;
};

/// Builds the side index for \p Maps.  One forward walk of the blob.
FuncMapIndex buildFuncMapIndex(const EncodedFuncMaps &Maps);

/// Decodes gc-point \p Ordinal through the index, filling \p Out.  The
/// output vectors are cleared but keep their capacity, so repeated decodes
/// into the same GcPointInfo stop allocating once warm.  When \p
/// BytesSkipped is non-null it is incremented by the number of blob bytes
/// the reference decoder would have traversed but this decode did not.
void decodeGcPointIndexed(const EncodedFuncMaps &Maps,
                          const FuncMapIndex &Index, unsigned Ordinal,
                          GcPointInfo &Out,
                          uint64_t *BytesSkipped = nullptr);

/// The alternative of \p Rec selected by \p PathValue, or null.  Alts are
/// encoded sorted by PathValue, so this is a binary search.
const DerivationAlt *findDerivationAlt(const DerivationRecord &Rec,
                                       int32_t PathValue);

//===----------------------------------------------------------------------===//
// Decoded-point cache
//===----------------------------------------------------------------------===//

/// Direct-mapped cache of decoded gc-points keyed by (function, ordinal).
class DecodedPointCache {
public:
  /// \p SizePow2 must be a power of two (number of cache lines).
  explicit DecodedPointCache(unsigned SizePow2 = 64)
      : Lines(SizePow2), Mask(SizePow2 - 1) {}

  /// The cached decode of (\p Func, \p Ordinal), or null on a miss.
  const GcPointInfo *lookup(uint32_t Func, uint32_t Ordinal) {
    Line &L = Lines[slot(Func, Ordinal)];
    if (L.Func == Func && L.Ordinal == Ordinal) {
      ++Hits;
      return &L.Info;
    }
    ++Misses;
    return nullptr;
  }

  /// Claims the cache line for (\p Func, \p Ordinal) and returns its info
  /// slot for the caller to fill (evicting whatever was there; the slot's
  /// vectors keep their capacity across evictions).
  GcPointInfo &insert(uint32_t Func, uint32_t Ordinal) {
    Line &L = Lines[slot(Func, Ordinal)];
    L.Func = Func;
    L.Ordinal = Ordinal;
    return L.Info;
  }

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  struct Line {
    uint32_t Func = 0xFFFFFFFFu;
    uint32_t Ordinal = 0xFFFFFFFFu;
    GcPointInfo Info;
  };

  size_t slot(uint32_t Func, uint32_t Ordinal) const {
    // Cheap mix; functions have few gc-points so spread mostly by ordinal.
    return (Func * 0x9E3779B9u + Ordinal) & Mask;
  }

  std::vector<Line> Lines;
  uint32_t Mask;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

//===----------------------------------------------------------------------===//
// Cross-checking
//===----------------------------------------------------------------------===//

bool operator==(const BaseRef &A, const BaseRef &B);
bool operator==(const DerivationAlt &A, const DerivationAlt &B);
bool operator==(const DerivationRecord &A, const DerivationRecord &B);
bool operator==(const GcPointInfo &A, const GcPointInfo &B);

/// True when the indexed decode of \p Ordinal equals the reference
/// `decodeGcPoint` result.  Used by `--gc-crosscheck` and the tests.
bool crossCheckPoint(const EncodedFuncMaps &Maps, const FuncMapIndex &Index,
                     unsigned Ordinal);

} // namespace gcmaps
} // namespace mgc

#endif // MGC_GCMAPS_MAPINDEX_H
