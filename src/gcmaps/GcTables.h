//===- gcmaps/GcTables.h - GC table model, encoding, decoding ---*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-time gc tables of §3/§5, their encodings, and the decoder
/// the collector uses.
///
/// Per procedure (δ-main scheme, §5.1):
///   - a *ground table* of every frame location holding a tidy pointer at
///     some gc-point, each entry a 2-bit base register (FP/SP/AP, plus a
///     Register escape) and a word offset (Fig. 4);
///   - per gc-point: a descriptor byte (empty / identical-to-previous flags
///     per table), a *delta* liveness bitmap over the ground table, a
///     *register pointers* bitmask (one bit per hard register), and a
///     *derivations* table describing every live derived value as
///     Σ pi − Σ qj + E, possibly ambiguous with a path variable (§4).
///
/// Four encodings are measured (Table 2): full-information vs δ-main,
/// each plain (32-bit words) or byte-packed (Fig. 3), with and without the
/// identical-to-previous descriptor compression.  The operational format —
/// what the collector actually decodes — is δ-main with both compressions.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_GCMAPS_GCTABLES_H
#define MGC_GCMAPS_GCTABLES_H

#include "codegen/Machine.h"
#include "support/ByteCodec.h"

#include <cstdint>
#include <vector>

namespace mgc {
namespace gcmaps {

//===----------------------------------------------------------------------===//
// Location encoding (Fig. 4)
//===----------------------------------------------------------------------===//

enum class BaseReg : uint8_t { FP = 0, SP = 1, AP = 2, Register = 3 };

/// Encodes a location as (offset << 2) | base.  SP is defined for
/// faithfulness but unused: our outgoing arguments are FP-relative.
int32_t encodeLocation(const vm::Location &Loc);
vm::Location decodeLocation(int32_t Word);

//===----------------------------------------------------------------------===//
// Raw (pre-encoding) table data, produced by the code generator
//===----------------------------------------------------------------------===//

struct BaseRef {
  vm::Location Loc;
  int Coeff = 1; ///< Signed; ±1 in practice.
};

struct DerivationAlt {
  int32_t PathValue = 0;
  std::vector<BaseRef> Bases;
};

struct DerivationRecord {
  vm::Location Target;
  bool Ambiguous = false;
  std::vector<BaseRef> Bases;       ///< When unambiguous.
  vm::Location PathVar;             ///< When ambiguous: selects the alt.
  std::vector<DerivationAlt> Alts;
};

struct GcPointData {
  /// The return address identifying this gc-point (global instruction
  /// index of the instruction after the call/poll).
  uint32_t RetPC = 0;
  /// Frame locations (FP/AP slots) holding live tidy pointers.
  std::vector<vm::Location> LiveSlots;
  /// Registers holding live tidy pointers.
  uint16_t RegMask = 0;
  /// Live derived values, ordered derived-before-base (§3).
  std::vector<DerivationRecord> Derivs;
};

struct FuncTableData {
  std::vector<GcPointData> Points;
};

//===----------------------------------------------------------------------===//
// Encoded tables
//===----------------------------------------------------------------------===//

/// Descriptor byte bits (§5.1: "a descriptor at each gc-point which
/// indicates if any of the tables at that gc-point are empty, or if they
/// are identical to the table at the preceding gc-point").
enum DescriptorBits : uint8_t {
  DeltaEmpty = 1 << 0,
  DeltaSame = 1 << 1,
  RegEmpty = 1 << 2,
  RegSame = 1 << 3,
  DerivEmpty = 1 << 4,
  DerivSame = 1 << 5,
};

/// The operational encoding of one function's tables.
struct EncodedFuncMaps {
  std::vector<uint8_t> Blob;     ///< δ-main, packed, previous-compressed.
  std::vector<uint32_t> RetPCs;  ///< Sorted gc-point return addresses.
  uint32_t GroundCount = 0;
};

/// Byte sizes of every scheme variant, for Table 2.
struct SchemeSizes {
  size_t FullPlain = 0;
  size_t FullPack = 0;
  size_t DeltaPlain = 0;
  size_t DeltaPrev = 0;  ///< Plain words + previous compression.
  size_t DeltaPack = 0;  ///< Packed, no previous compression.
  size_t DeltaPP = 0;    ///< Packed + previous (the operational format).
  size_t PcMapBytes = 0; ///< 2-byte gc-point distances + module anchor.
  /// Encoded allocation-site table (SiteTable.h).  Observability support,
  /// NOT part of any gc-table scheme: it is reported on its own line and
  /// never added into the Table 2 columns above.
  size_t SiteTableBytes = 0;
};

/// Table 1 statistics.
struct TableStats {
  unsigned NGC = 0;   ///< Gc-points with at least one non-empty table.
  unsigned NPTRS = 0; ///< Distinct pointer homes (ground entries + regs).
  unsigned NDEL = 0;  ///< Delta tables emitted (non-empty, not same-as-prev).
  unsigned NREG = 0;  ///< Register tables emitted.
  unsigned NDER = 0;  ///< Derivations tables emitted.
};

/// Encodes \p Data in the operational format and accumulates sizes/stats.
EncodedFuncMaps encodeFunction(const FuncTableData &Data, SchemeSizes &Sizes,
                               TableStats &Stats);

//===----------------------------------------------------------------------===//
// Decoding (used by the collector during stack tracing)
//===----------------------------------------------------------------------===//

/// A fully decoded gc-point.
struct GcPointInfo {
  std::vector<vm::Location> LiveSlots;
  uint16_t RegMask = 0;
  std::vector<DerivationRecord> Derivs;
};

/// The gc-point ordinal for \p RetPC, or -1 when \p RetPC is not a
/// gc-point of this function.
int findGcPoint(const EncodedFuncMaps &Maps, uint32_t RetPC);

/// Decodes gc-point \p Ordinal.  Walks the blob from the start resolving
/// identical-to-previous chains, as the runtime does (§6.3's decode cost).
/// This is the reference decoder; MapIndex.h provides the accelerated path
/// that the collector uses by default.
GcPointInfo decodeGcPoint(const EncodedFuncMaps &Maps, unsigned Ordinal);

/// Reads one packed derivations record (the count-prefixed form emitted by
/// the encoder) at \p R's position.  Ambiguous alternatives are encoded
/// sorted by PathValue, so decoded `Alts` support binary search.
std::vector<DerivationRecord> readDerivationRecords(PackedReader &R);

/// Advances \p R past one packed derivations record without materializing
/// it (used by the load-time index builder).
void skipDerivationRecords(PackedReader &R);

} // namespace gcmaps
} // namespace mgc

#endif // MGC_GCMAPS_GCTABLES_H
