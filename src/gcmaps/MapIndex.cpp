//===- gcmaps/MapIndex.cpp ------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "gcmaps/MapIndex.h"

#include <algorithm>
#include <cassert>

using namespace mgc;
using namespace mgc::gcmaps;
using namespace mgc::vm;

//===----------------------------------------------------------------------===//
// Index construction
//===----------------------------------------------------------------------===//

FuncMapIndex gcmaps::buildFuncMapIndex(const EncodedFuncMaps &Maps) {
  FuncMapIndex Index;
  if (Maps.Blob.empty())
    return Index; // No tables (compiled without gc maps).

  PackedReader R(Maps.Blob);

  // Ground table: unroll run-length groups and decode each entry once.
  int32_t GroupCount = R.readPackedWord();
  Index.Ground.reserve(Maps.GroundCount);
  for (int32_t G = 0; G != GroupCount; ++G) {
    int32_t Entry = R.readPackedWord();
    int32_t Start = Entry >> 1;
    int32_t Count = (Entry & 1) ? R.readPackedWord() : 1;
    for (int32_t K = 0; K != Count; ++K)
      Index.Ground.push_back(decodeLocation(Start + 4 * K));
  }
  Index.DeltaBytes = static_cast<uint32_t>((Index.Ground.size() + 7) / 8);
  Index.FirstPointOff = static_cast<uint32_t>(R.position());

  // One forward walk over the gc-point records, collapsing same-as-previous
  // chains: a Same flag copies the *resolved* offset of the previous point,
  // so every entry lands directly on a payload (or EmptyPayload).
  Index.Points.reserve(Maps.RetPCs.size());
  const PointIndexEntry *Prev = nullptr;
  for (size_t P = 0; P != Maps.RetPCs.size(); ++P) {
    PointIndexEntry E;
    E.DescOff = static_cast<uint32_t>(R.position());
    uint8_t Desc = R.readByte();

    if (Desc & DeltaEmpty) {
      E.DeltaOff = EmptyPayload;
    } else if (Desc & DeltaSame) {
      assert(Prev && "same-as-previous at the first gc-point");
      E.DeltaOff = Prev->DeltaOff;
    } else {
      E.DeltaOff = static_cast<uint32_t>(R.position());
      R.seek(R.position() + Index.DeltaBytes);
    }

    if (Desc & RegEmpty) {
      E.RegOff = EmptyPayload;
    } else if (Desc & RegSame) {
      assert(Prev && "same-as-previous at the first gc-point");
      E.RegOff = Prev->RegOff;
    } else {
      E.RegOff = static_cast<uint32_t>(R.position());
      (void)R.readPackedWord();
    }

    if (Desc & DerivEmpty) {
      E.DerivOff = EmptyPayload;
    } else if (Desc & DerivSame) {
      assert(Prev && "same-as-previous at the first gc-point");
      E.DerivOff = Prev->DerivOff;
    } else {
      E.DerivOff = static_cast<uint32_t>(R.position());
      skipDerivationRecords(R);
    }

    Index.Points.push_back(E);
    Prev = &Index.Points.back();
  }
  return Index;
}

//===----------------------------------------------------------------------===//
// Indexed decoding
//===----------------------------------------------------------------------===//

void gcmaps::decodeGcPointIndexed(const EncodedFuncMaps &Maps,
                                  const FuncMapIndex &Index, unsigned Ordinal,
                                  GcPointInfo &Out, uint64_t *BytesSkipped) {
  assert(Ordinal < Index.Points.size() && "gc-point ordinal out of range");
  const PointIndexEntry &E = Index.Points[Ordinal];
  Out.LiveSlots.clear();
  Out.RegMask = 0;
  Out.Derivs.clear();

  uint64_t BytesRead = 0;
  if (E.DeltaOff != EmptyPayload) {
    const uint8_t *Bits = Maps.Blob.data() + E.DeltaOff;
    for (size_t I = 0, N = Index.Ground.size(); I != N; ++I)
      if (Bits[I / 8] & (1u << (I % 8)))
        Out.LiveSlots.push_back(Index.Ground[I]);
    BytesRead += Index.DeltaBytes;
  }
  if (E.RegOff != EmptyPayload) {
    PackedReader R(Maps.Blob);
    R.seek(E.RegOff);
    Out.RegMask = static_cast<uint16_t>(R.readPackedWord());
    BytesRead += R.position() - E.RegOff;
  }
  if (E.DerivOff != EmptyPayload) {
    PackedReader R(Maps.Blob);
    R.seek(E.DerivOff);
    Out.Derivs = readDerivationRecords(R);
    BytesRead += R.position() - E.DerivOff;
  }

  if (BytesSkipped) {
    // The reference decoder traverses the blob from byte 0 through the end
    // of this ordinal's record; the indexed decode read only the payloads.
    uint64_t RefBytes = Ordinal + 1 < Index.Points.size()
                            ? Index.Points[Ordinal + 1].DescOff
                            : Maps.Blob.size();
    *BytesSkipped += RefBytes - BytesRead;
  }
}

const DerivationAlt *gcmaps::findDerivationAlt(const DerivationRecord &Rec,
                                               int32_t PathValue) {
  auto It = std::lower_bound(
      Rec.Alts.begin(), Rec.Alts.end(), PathValue,
      [](const DerivationAlt &A, int32_t V) { return A.PathValue < V; });
  if (It == Rec.Alts.end() || It->PathValue != PathValue)
    return nullptr;
  return &*It;
}

//===----------------------------------------------------------------------===//
// Cross-checking
//===----------------------------------------------------------------------===//

bool gcmaps::operator==(const BaseRef &A, const BaseRef &B) {
  return A.Loc == B.Loc && A.Coeff == B.Coeff;
}

bool gcmaps::operator==(const DerivationAlt &A, const DerivationAlt &B) {
  return A.PathValue == B.PathValue && A.Bases == B.Bases;
}

bool gcmaps::operator==(const DerivationRecord &A, const DerivationRecord &B) {
  return A.Target == B.Target && A.Ambiguous == B.Ambiguous &&
         A.Bases == B.Bases && A.PathVar == B.PathVar && A.Alts == B.Alts;
}

bool gcmaps::operator==(const GcPointInfo &A, const GcPointInfo &B) {
  return A.LiveSlots == B.LiveSlots && A.RegMask == B.RegMask &&
         A.Derivs == B.Derivs;
}

bool gcmaps::crossCheckPoint(const EncodedFuncMaps &Maps,
                             const FuncMapIndex &Index, unsigned Ordinal) {
  GcPointInfo Fast;
  decodeGcPointIndexed(Maps, Index, Ordinal, Fast);
  return Fast == decodeGcPoint(Maps, Ordinal);
}
