//===- gcmaps/GcTables.cpp ------------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "gcmaps/GcTables.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace mgc;
using namespace mgc::gcmaps;
using namespace mgc::vm;

//===----------------------------------------------------------------------===//
// Location encoding (Fig. 4)
//===----------------------------------------------------------------------===//

int32_t gcmaps::encodeLocation(const Location &Loc) {
  switch (Loc.K) {
  case Location::Kind::FpSlot:
    return (Loc.Index << 2) | static_cast<int>(BaseReg::FP);
  case Location::Kind::ApSlot:
    return (Loc.Index << 2) | static_cast<int>(BaseReg::AP);
  case Location::Kind::Reg:
    return (Loc.Index << 2) | static_cast<int>(BaseReg::Register);
  case Location::Kind::None:
    break;
  }
  assert(false && "encoding an invalid location");
  return 0;
}

Location gcmaps::decodeLocation(int32_t Word) {
  int Offset = Word >> 2;
  switch (static_cast<BaseReg>(Word & 3)) {
  case BaseReg::FP:
    return Location::fpSlot(Offset);
  case BaseReg::AP:
    return Location::apSlot(Offset);
  case BaseReg::Register:
    return Location::reg(Offset);
  case BaseReg::SP:
    break;
  }
  assert(false && "SP-based locations are never emitted");
  return Location();
}

//===----------------------------------------------------------------------===//
// Encoding helpers
//===----------------------------------------------------------------------===//

namespace {

/// The per-point byte encodings of each table, used both for the
/// operational blob and for same-as-previous comparison.
struct PointEncoding {
  std::vector<uint8_t> DeltaBits; ///< Raw bitmap, ceil(ground/8) bytes.
  uint16_t RegMask = 0;
  std::vector<uint8_t> DerivBytes; ///< Packed derivations table.
  bool DeltaEmptyFlag = false;
  bool RegEmptyFlag = false;
  bool DerivEmptyFlag = false;
};

void packBaseRefs(std::vector<uint8_t> &Out,
                  const std::vector<BaseRef> &Bases) {
  unsigned N = 0;
  for (const BaseRef &B : Bases)
    N += static_cast<unsigned>(B.Coeff < 0 ? -B.Coeff : B.Coeff);
  appendPacked(Out, static_cast<int32_t>(N));
  for (const BaseRef &B : Bases) {
    int Mag = B.Coeff < 0 ? -B.Coeff : B.Coeff;
    int32_t Entry = (encodeLocation(B.Loc) << 1) | (B.Coeff < 0 ? 1 : 0);
    for (int K = 0; K != Mag; ++K)
      appendPacked(Out, Entry);
  }
}

std::vector<uint8_t> packDerivs(const std::vector<DerivationRecord> &Recs) {
  std::vector<uint8_t> Out;
  if (Recs.empty())
    return Out;
  appendPacked(Out, static_cast<int32_t>(Recs.size()));
  for (const DerivationRecord &R : Recs) {
    appendPacked(Out, encodeLocation(R.Target));
    appendPacked(Out, R.Ambiguous ? 1 : 0);
    if (!R.Ambiguous) {
      packBaseRefs(Out, R.Bases);
    } else {
      appendPacked(Out, encodeLocation(R.PathVar));
      appendPacked(Out, static_cast<int32_t>(R.Alts.size()));
      // Emit alternatives sorted by path value so the collector's alt
      // selection can binary-search instead of scanning linearly.
      std::vector<const DerivationAlt *> Sorted;
      Sorted.reserve(R.Alts.size());
      for (const DerivationAlt &Alt : R.Alts)
        Sorted.push_back(&Alt);
      std::sort(Sorted.begin(), Sorted.end(),
                [](const DerivationAlt *A, const DerivationAlt *B) {
                  return A->PathValue < B->PathValue;
                });
      for (const DerivationAlt *Alt : Sorted) {
        appendPacked(Out, Alt->PathValue);
        packBaseRefs(Out, Alt->Bases);
      }
    }
  }
  return Out;
}

/// Word-count of the plain (32-bit word) encoding of a derivations table.
size_t derivPlainWords(const std::vector<DerivationRecord> &Recs) {
  size_t Words = 1; // Count word.
  for (const DerivationRecord &R : Recs) {
    Words += 2; // Target + ambiguous flag.
    auto BaseWords = [](const std::vector<BaseRef> &Bases) {
      size_t W = 1;
      for (const BaseRef &B : Bases)
        W += static_cast<size_t>(B.Coeff < 0 ? -B.Coeff : B.Coeff);
      return W;
    };
    if (!R.Ambiguous) {
      Words += BaseWords(R.Bases);
    } else {
      Words += 2; // Path var + alt count.
      for (const DerivationAlt &Alt : R.Alts)
        Words += 1 + BaseWords(Alt.Bases);
    }
  }
  return Words;
}

PointEncoding encodePoint(const GcPointData &P,
                          const std::vector<int32_t> &Ground) {
  PointEncoding E;
  E.DeltaBits.assign((Ground.size() + 7) / 8, 0);
  for (const Location &L : P.LiveSlots) {
    int32_t Enc = encodeLocation(L);
    auto It = std::find(Ground.begin(), Ground.end(), Enc);
    assert(It != Ground.end() && "live slot missing from ground table");
    size_t Bit = static_cast<size_t>(It - Ground.begin());
    E.DeltaBits[Bit / 8] |= static_cast<uint8_t>(1u << (Bit % 8));
  }
  E.RegMask = P.RegMask;
  E.DerivBytes = packDerivs(P.Derivs);
  E.DeltaEmptyFlag = P.LiveSlots.empty();
  E.RegEmptyFlag = P.RegMask == 0;
  E.DerivEmptyFlag = P.Derivs.empty();
  // Hidden fault-injection hook for validating the differential fuzzer:
  // drop the highest set delta bit, silently un-rooting one live slot at
  // every gc-point.  Both decoders read the same (broken) table, so only
  // a behavioral divergence — not the decode cross-check — can catch it.
  // Queried per call (not cached): tests toggle it with setenv/unsetenv.
  if (std::getenv("MGC_FUZZ_DROP_DELTA_BIT")) {
    for (size_t I = E.DeltaBits.size(); I-- > 0;)
      if (E.DeltaBits[I]) {
        uint8_t B = E.DeltaBits[I];
        uint8_t Hi = 1;
        while (B >>= 1)
          Hi <<= 1;
        E.DeltaBits[I] = static_cast<uint8_t>(E.DeltaBits[I] & ~Hi);
        E.DeltaEmptyFlag = true;
        for (uint8_t Byte : E.DeltaBits)
          if (Byte)
            E.DeltaEmptyFlag = false;
        break;
      }
  }
  return E;
}

} // namespace

//===----------------------------------------------------------------------===//
// Encoding
//===----------------------------------------------------------------------===//

EncodedFuncMaps gcmaps::encodeFunction(const FuncTableData &Data,
                                       SchemeSizes &Sizes,
                                       TableStats &Stats) {
  EncodedFuncMaps Out;

  // Ground table: every frame location live at some gc-point.  Entries are
  // sorted so that runs of consecutive slots (frame arrays of pointers —
  // §5.2's "starting from address a, the next 200 stack locations are
  // pointers") can be run-length encoded.
  std::vector<int32_t> Ground;
  for (const GcPointData &P : Data.Points)
    for (const Location &L : P.LiveSlots) {
      int32_t Enc = encodeLocation(L);
      if (std::find(Ground.begin(), Ground.end(), Enc) == Ground.end())
        Ground.push_back(Enc);
    }
  std::sort(Ground.begin(), Ground.end());
  Out.GroundCount = static_cast<uint32_t>(Ground.size());

  // Group into runs: an entry is either (loc<<1) or (loc<<1|1, count) for
  // `count` consecutive same-base slots starting at loc.
  struct GroundGroup {
    int32_t Start;
    int32_t Count;
  };
  std::vector<GroundGroup> Groups;
  for (size_t I = 0; I != Ground.size();) {
    size_t J = I + 1;
    // Consecutive word offsets with the same base register differ by 1<<2.
    while (J != Ground.size() && Ground[J] == Ground[J - 1] + 4)
      ++J;
    Groups.push_back({Ground[I], static_cast<int32_t>(J - I)});
    I = J;
  }

  PackedWriter W;
  W.writePacked(static_cast<int32_t>(Groups.size()));
  for (const GroundGroup &G : Groups) {
    if (G.Count == 1) {
      W.writePacked(G.Start << 1);
    } else {
      W.writePacked((G.Start << 1) | 1);
      W.writePacked(G.Count);
    }
  }

  uint16_t RegUnion = 0;
  const PointEncoding *Prev = nullptr;
  PointEncoding PrevStorage;

  // Scheme accounting accumulators.
  size_t FullPlain = 0, FullPack = 0;
  size_t DeltaPlainBody = 0, DeltaPrevBody = 0, DeltaPackBody = 0;
  std::vector<uint8_t> Scratch;

  for (const GcPointData &P : Data.Points) {
    Out.RetPCs.push_back(P.RetPC);
    PointEncoding E = encodePoint(P, Ground);
    RegUnion |= E.RegMask;

    uint8_t Desc = 0;
    bool DeltaSameFlag = false, RegSameFlag = false, DerivSameFlag = false;
    if (E.DeltaEmptyFlag)
      Desc |= DeltaEmpty;
    else if (Prev && Prev->DeltaBits == E.DeltaBits &&
             !Prev->DeltaEmptyFlag) {
      Desc |= DeltaSame;
      DeltaSameFlag = true;
    }
    if (E.RegEmptyFlag)
      Desc |= RegEmpty;
    else if (Prev && Prev->RegMask == E.RegMask && !Prev->RegEmptyFlag) {
      Desc |= RegSame;
      RegSameFlag = true;
    }
    if (E.DerivEmptyFlag)
      Desc |= DerivEmpty;
    else if (Prev && Prev->DerivBytes == E.DerivBytes &&
             !Prev->DerivEmptyFlag) {
      Desc |= DerivSame;
      DerivSameFlag = true;
    }

    // Operational blob: δ-main + packing + previous.
    W.writeByte(Desc);
    if (!E.DeltaEmptyFlag && !DeltaSameFlag)
      for (uint8_t B : E.DeltaBits)
        W.writeByte(B);
    if (!E.RegEmptyFlag && !RegSameFlag)
      W.writePacked(static_cast<int32_t>(E.RegMask));
    if (!E.DerivEmptyFlag && !DerivSameFlag)
      for (uint8_t B : E.DerivBytes)
        W.writeByte(B);

    // Statistics (counts reflect the operational encoding).
    if (!E.DeltaEmptyFlag || !E.RegEmptyFlag || !E.DerivEmptyFlag)
      ++Stats.NGC;
    if (!E.DeltaEmptyFlag && !DeltaSameFlag)
      ++Stats.NDEL;
    if (!E.RegEmptyFlag && !RegSameFlag)
      ++Stats.NREG;
    if (!E.DerivEmptyFlag && !DerivSameFlag)
      ++Stats.NDER;

    // Scheme size accounting -------------------------------------------------
    size_t DerivPlain = P.Derivs.empty() ? 4 : derivPlainWords(P.Derivs) * 4;
    size_t DerivPack = E.DerivBytes.size();

    // Full information: complete live-pointer list at every point.
    FullPlain += 4 * (1 + P.LiveSlots.size()) + 4 + DerivPlain;
    Scratch.clear();
    appendPacked(Scratch, static_cast<int32_t>(P.LiveSlots.size()));
    for (const Location &L : P.LiveSlots)
      appendPacked(Scratch, encodeLocation(L));
    appendPacked(Scratch, static_cast<int32_t>(E.RegMask));
    FullPack += Scratch.size() + DerivPack + (P.Derivs.empty() ? 1 : 0);

    // δ-main variants.
    size_t DeltaWordBytes =
        Ground.empty() ? 0 : ((Ground.size() + 31) / 32) * 4;
    size_t RegPack = static_cast<size_t>(
        packedSize(static_cast<int32_t>(E.RegMask)));
    size_t DeltaBitBytes = E.DeltaBits.size();

    DeltaPlainBody += DeltaWordBytes + 4 + DerivPlain;
    DeltaPrevBody += 1 +
                     ((DeltaSameFlag || E.DeltaEmptyFlag) ? 0 : DeltaWordBytes) +
                     ((RegSameFlag || E.RegEmptyFlag) ? 0 : 4) +
                     ((DerivSameFlag || E.DerivEmptyFlag) ? 0 : DerivPlain);
    DeltaPackBody += 1 + (E.DeltaEmptyFlag ? 0 : DeltaBitBytes) +
                     (E.RegEmptyFlag ? 0 : RegPack) +
                     (E.DerivEmptyFlag ? 0 : DerivPack);

    PrevStorage = std::move(E);
    Prev = &PrevStorage;
  }

  // Ground table cost for the δ-main schemes.  The plain scheme stores one
  // word per entry; the packed scheme benefits from the run-length groups.
  size_t GroundPlain = 4 * (1 + Ground.size());
  size_t GroundPack = static_cast<size_t>(packedSize(
      static_cast<int32_t>(Groups.size())));
  for (const GroundGroup &G : Groups) {
    GroundPack += static_cast<size_t>(packedSize(G.Start << 1));
    if (G.Count != 1)
      GroundPack += static_cast<size_t>(packedSize(G.Count));
  }

  if (!Data.Points.empty()) {
    Sizes.FullPlain += FullPlain;
    Sizes.FullPack += FullPack;
    Sizes.DeltaPlain += GroundPlain + DeltaPlainBody;
    Sizes.DeltaPrev += GroundPlain + DeltaPrevBody;
    Sizes.DeltaPack += GroundPack + DeltaPackBody;
    Sizes.DeltaPP += W.size();
    // PC map: a 4-byte module anchor amortized per function plus 2-byte
    // distances between consecutive gc-points (§5.2).
    Sizes.PcMapBytes += 4 + 2 * Data.Points.size();
  }

  Stats.NPTRS += static_cast<unsigned>(Ground.size()) +
                 static_cast<unsigned>(__builtin_popcount(RegUnion));

  Out.Blob = W.takeBytes();
  return Out;
}

//===----------------------------------------------------------------------===//
// Decoding
//===----------------------------------------------------------------------===//

int gcmaps::findGcPoint(const EncodedFuncMaps &Maps, uint32_t RetPC) {
  auto It = std::lower_bound(Maps.RetPCs.begin(), Maps.RetPCs.end(), RetPC);
  if (It == Maps.RetPCs.end() || *It != RetPC)
    return -1;
  return static_cast<int>(It - Maps.RetPCs.begin());
}

namespace {
std::vector<BaseRef> readBaseRefs(PackedReader &R) {
  std::vector<BaseRef> Bases;
  int32_t N = R.readPackedWord();
  for (int32_t I = 0; I != N; ++I) {
    int32_t Entry = R.readPackedWord();
    BaseRef B;
    B.Loc = decodeLocation(Entry >> 1);
    B.Coeff = (Entry & 1) ? -1 : 1;
    Bases.push_back(B);
  }
  return Bases;
}

void skipBaseRefs(PackedReader &R) {
  int32_t N = R.readPackedWord();
  for (int32_t I = 0; I != N; ++I)
    (void)R.readPackedWord();
}
} // namespace

std::vector<DerivationRecord> gcmaps::readDerivationRecords(PackedReader &R) {
  std::vector<DerivationRecord> Recs;
  int32_t N = R.readPackedWord();
  for (int32_t I = 0; I != N; ++I) {
    DerivationRecord Rec;
    Rec.Target = decodeLocation(R.readPackedWord());
    Rec.Ambiguous = R.readPackedWord() != 0;
    if (!Rec.Ambiguous) {
      Rec.Bases = readBaseRefs(R);
    } else {
      Rec.PathVar = decodeLocation(R.readPackedWord());
      int32_t NAlts = R.readPackedWord();
      for (int32_t K = 0; K != NAlts; ++K) {
        DerivationAlt Alt;
        Alt.PathValue = R.readPackedWord();
        Alt.Bases = readBaseRefs(R);
        Rec.Alts.push_back(std::move(Alt));
      }
    }
    Recs.push_back(std::move(Rec));
  }
  return Recs;
}

void gcmaps::skipDerivationRecords(PackedReader &R) {
  int32_t N = R.readPackedWord();
  for (int32_t I = 0; I != N; ++I) {
    (void)R.readPackedWord(); // Target.
    bool Ambiguous = R.readPackedWord() != 0;
    if (!Ambiguous) {
      skipBaseRefs(R);
    } else {
      (void)R.readPackedWord(); // Path variable.
      int32_t NAlts = R.readPackedWord();
      for (int32_t K = 0; K != NAlts; ++K) {
        (void)R.readPackedWord(); // Path value.
        skipBaseRefs(R);
      }
    }
  }
}

GcPointInfo gcmaps::decodeGcPoint(const EncodedFuncMaps &Maps,
                                  unsigned Ordinal) {
  assert(Ordinal < Maps.RetPCs.size() && "gc-point ordinal out of range");
  PackedReader R(Maps.Blob);

  // Ground table: expand run-length groups back into individual entries.
  int32_t GroupCount = R.readPackedWord();
  std::vector<int32_t> Ground;
  for (int32_t G = 0; G != GroupCount; ++G) {
    int32_t Entry = R.readPackedWord();
    int32_t Start = Entry >> 1;
    int32_t Count = (Entry & 1) ? R.readPackedWord() : 1;
    for (int32_t K = 0; K != Count; ++K)
      Ground.push_back(Start + 4 * K);
  }
  size_t DeltaBytes = (Ground.size() + 7) / 8;

  // Walk gc-points, maintaining the current (possibly inherited) tables.
  std::vector<uint8_t> CurDelta(DeltaBytes, 0);
  uint16_t CurReg = 0;
  std::vector<DerivationRecord> CurDerivs;

  for (unsigned P = 0;; ++P) {
    uint8_t Desc = R.readByte();
    if (Desc & DeltaEmpty)
      std::fill(CurDelta.begin(), CurDelta.end(), 0);
    else if (!(Desc & DeltaSame))
      for (uint8_t &B : CurDelta)
        B = R.readByte();
    if (Desc & RegEmpty)
      CurReg = 0;
    else if (!(Desc & RegSame))
      CurReg = static_cast<uint16_t>(R.readPackedWord());
    if (Desc & DerivEmpty)
      CurDerivs.clear();
    else if (!(Desc & DerivSame))
      CurDerivs = readDerivationRecords(R);

    if (P == Ordinal)
      break;
  }

  GcPointInfo Info;
  for (size_t I = 0; I != Ground.size(); ++I)
    if (CurDelta[I / 8] & (1u << (I % 8)))
      Info.LiveSlots.push_back(decodeLocation(Ground[I]));
  Info.RegMask = CurReg;
  Info.Derivs = CurDerivs;
  return Info;
}
