//===- gcmaps/SiteTable.h - Allocation-site table ---------------*- C++ -*-===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler-emitted *allocation-site table*: one record per static NEW
/// in the program, carrying the source position and heap type, plus the
/// pc -> site attributions that let the runtime charge every allocation to
/// its site.  The table rides alongside the gc tables (same byte-packed
/// Figure-3 codec) but is kept strictly separate in all size accounting:
/// observability support must never inflate the paper's
/// table-size-vs-code-size figures, so its encoded size is reported as its
/// own line (`SchemeSizes::SiteTableBytes`) and is included in no scheme
/// column.
///
/// Sites are deduplicated by (function, line, column, type descriptor) and
/// sorted on that key, so site ids are deterministic and stable across
/// optimization levels: an allocation duplicated by loop unswitching or
/// path splitting still reports as the single source-level site it came
/// from.
///
//===----------------------------------------------------------------------===//

#ifndef MGC_GCMAPS_SITETABLE_H
#define MGC_GCMAPS_SITETABLE_H

#include <cstdint>
#include <tuple>
#include <vector>

namespace mgc {
namespace gcmaps {

/// One static allocation site (a NEW expression, or a synthesized
/// allocation such as a string literal's open array).
struct AllocSite {
  uint32_t Func = 0; ///< Function index in the linked program.
  uint32_t Line = 0; ///< 1-based source line; 0 for synthesized sites.
  uint32_t Col = 0;  ///< 1-based source column; 0 for synthesized sites.
  uint32_t Desc = 0; ///< Heap type descriptor index.

  bool operator==(const AllocSite &O) const {
    return Func == O.Func && Line == O.Line && Col == O.Col && Desc == O.Desc;
  }
  bool operator<(const AllocSite &O) const {
    return std::tie(Func, Line, Col, Desc) <
           std::tie(O.Func, O.Line, O.Col, O.Desc);
  }
};

/// Charges the allocation instruction at global instruction index \p PC to
/// site \p Site.  Several instructions may share one site (optimizer
/// duplication); every NewObj/NewArr has exactly one attribution.
struct SiteAttribution {
  uint32_t PC = 0;
  uint32_t Site = 0;
};

/// The per-program site table: deduplicated sites in sorted order plus the
/// pc-ordered attributions.
struct SiteTable {
  std::vector<AllocSite> Sites;
  std::vector<SiteAttribution> Attrs; ///< Sorted by PC.
};

/// Encodes \p Table with the Figure-3 byte packing: site records are
/// delta-encoded on the sorted (Func, Line) key and attributions on the pc
/// order.  The blob's size is the honest cost of allocation-site
/// observability.
std::vector<uint8_t> encodeSiteTable(const SiteTable &Table);

/// Decodes a blob produced by encodeSiteTable.  The driver installs the
/// *decoded* table, so every compile round-trips the codec.
SiteTable decodeSiteTable(const std::vector<uint8_t> &Blob);

} // namespace gcmaps
} // namespace mgc

#endif // MGC_GCMAPS_SITETABLE_H
