//===- gcmaps/SiteTable.cpp -----------------------------------------------===//
//
// Part of the mgc project (PLDI 1992 gc-tables reproduction).
//
//===----------------------------------------------------------------------===//

#include "gcmaps/SiteTable.h"

#include "support/ByteCodec.h"

#include <cassert>

using namespace mgc;
using namespace mgc::gcmaps;

// Layout (every word Figure-3 byte-packed):
//
//   nsites
//   per site, delta-encoded on the sorted (Func, Line, Col, Desc) key:
//     dFunc            (0 = same function as the previous site)
//     line or dLine    (absolute when dFunc != 0, else delta)
//     col              (absolute; columns do not compress usefully)
//     desc             (absolute descriptor index)
//   nattrs
//   per attribution, in pc order:
//     dPC              (delta from the previous attribution's pc)
//     site             (absolute site id)

std::vector<uint8_t> gcmaps::encodeSiteTable(const SiteTable &Table) {
  PackedWriter W;
  W.writePacked(static_cast<int32_t>(Table.Sites.size()));
  uint32_t PrevFunc = 0, PrevLine = 0;
  for (const AllocSite &S : Table.Sites) {
    uint32_t DFunc = S.Func - PrevFunc;
    W.writePacked(static_cast<int32_t>(DFunc));
    if (DFunc != 0)
      W.writePacked(static_cast<int32_t>(S.Line));
    else
      W.writePacked(static_cast<int32_t>(S.Line - PrevLine));
    W.writePacked(static_cast<int32_t>(S.Col));
    W.writePacked(static_cast<int32_t>(S.Desc));
    PrevFunc = S.Func;
    PrevLine = S.Line;
  }
  W.writePacked(static_cast<int32_t>(Table.Attrs.size()));
  uint32_t PrevPC = 0;
  for (const SiteAttribution &A : Table.Attrs) {
    assert(A.PC >= PrevPC && "attributions must be sorted by pc");
    W.writePacked(static_cast<int32_t>(A.PC - PrevPC));
    W.writePacked(static_cast<int32_t>(A.Site));
    PrevPC = A.PC;
  }
  return W.takeBytes();
}

SiteTable gcmaps::decodeSiteTable(const std::vector<uint8_t> &Blob) {
  SiteTable Table;
  if (Blob.empty())
    return Table;
  PackedReader R(Blob);
  uint32_t NSites = static_cast<uint32_t>(R.readPackedWord());
  Table.Sites.reserve(NSites);
  uint32_t PrevFunc = 0, PrevLine = 0;
  for (uint32_t I = 0; I != NSites; ++I) {
    AllocSite S;
    uint32_t DFunc = static_cast<uint32_t>(R.readPackedWord());
    S.Func = PrevFunc + DFunc;
    uint32_t LineWord = static_cast<uint32_t>(R.readPackedWord());
    S.Line = DFunc != 0 ? LineWord : PrevLine + LineWord;
    S.Col = static_cast<uint32_t>(R.readPackedWord());
    S.Desc = static_cast<uint32_t>(R.readPackedWord());
    PrevFunc = S.Func;
    PrevLine = S.Line;
    Table.Sites.push_back(S);
  }
  uint32_t NAttrs = static_cast<uint32_t>(R.readPackedWord());
  Table.Attrs.reserve(NAttrs);
  uint32_t PrevPC = 0;
  for (uint32_t I = 0; I != NAttrs; ++I) {
    SiteAttribution A;
    A.PC = PrevPC + static_cast<uint32_t>(R.readPackedWord());
    A.Site = static_cast<uint32_t>(R.readPackedWord());
    PrevPC = A.PC;
    Table.Attrs.push_back(A);
  }
  assert(R.position() == Blob.size() && "trailing bytes in site-table blob");
  return Table;
}
